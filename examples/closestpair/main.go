// Closest pair of points: divide and conquer on the goroutine runtime, with
// a wall-clock speedup sweep over p — the real-hardware face of Theorem 1,
// Case 2 (T(n) = 2T(n/2) + Θ(n)).
//
//	go run ./examples/closestpair
package main

import (
	"fmt"
	"math"
	"runtime"
	"time"

	"lopram/internal/core"
	"lopram/internal/dandc"
	"lopram/internal/palrt"
	"lopram/internal/workload"
)

func main() {
	const n = 1 << 19
	r := workload.NewRNG(5)
	pts := workload.Points(r, n)
	fmt.Printf("closest pair among %d random points in the unit square\n", n)
	fmt.Printf("model processor budget for this n: p = %d; host cores: %d\n\n",
		core.ProcsFor(n), runtime.GOMAXPROCS(0))

	// Sequential baseline.
	start := time.Now()
	want := dandc.ClosestPairSeq(pts)
	seqTime := time.Since(start)
	fmt.Printf("sequential: d = %.9f (%v)\n\n", math.Sqrt(want), seqTime.Round(time.Microsecond))

	fmt.Printf("%4s %14s %10s %8s\n", "p", "wall time", "speedup", "correct")
	for _, p := range []int{1, 2, 4, 8, 16} {
		if p > runtime.GOMAXPROCS(0) {
			break
		}
		rt := palrt.New(p)
		best := time.Duration(math.MaxInt64)
		var got float64
		for rep := 0; rep < 3; rep++ {
			start := time.Now()
			got = dandc.ClosestPair(rt, pts)
			if d := time.Since(start); d < best {
				best = d
			}
		}
		fmt.Printf("%4d %14v %10.2f %8v\n",
			p, best.Round(time.Microsecond), float64(seqTime)/float64(best), got == want)
	}

	fmt.Println("\nnote: speedups flatten once p exceeds the memory-bandwidth limit of the host —")
	fmt.Println("the LoPRAM premise p = O(log n) keeps the model inside the regime where they hold.")
}
