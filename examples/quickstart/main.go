// Quickstart: sort a slice on a LoPRAM with p = Θ(log n) processors.
//
// This is the paper's §3.1 example — the palthreads mergesort — behind the
// library facade. Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"lopram/internal/core"
	"lopram/internal/workload"
)

func main() {
	const n = 1 << 20
	r := workload.NewRNG(2024)
	data := workload.Ints(r, n, 1<<30)

	// A LoPRAM sized for n keys: p = ⌊log₂ n⌋ processors.
	m := core.New(n)
	fmt.Printf("LoPRAM model: n = %d keys, p = %d processors (⌊log₂ n⌋)\n", n, m.P)

	m.Sort(data)

	sorted := true
	for i := 1; i < len(data); i++ {
		if data[i-1] > data[i] {
			sorted = false
			break
		}
	}
	fmt.Printf("sorted: %v — first/last: %d … %d\n", sorted, data[0], data[n-1])

	// The same model answers DP queries through Algorithm 1 and
	// memoization, all bounded by the same p processors.
	d, err := m.EditDistance("low-degree parallelism", "low degree parallel")
	if err != nil {
		panic(err)
	}
	fmt.Printf("edit distance demo: %d\n", d)

	cost := m.MatrixChain([]int{30, 35, 15, 5, 10, 20, 25})
	fmt.Printf("matrix chain demo (CLRS instance): %d scalar multiplications\n", cost)
}
