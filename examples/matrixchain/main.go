// Matrix chain ordering via parallel memoization (§4.5 of the paper).
//
// The same Equation (6) specification drives both evaluation strategies:
// bottom-up (package dp) and top-down memoized (package memo). The program
// runs both, verifies they agree with the classical O(n³) oracle, and prints
// the §4.5 accounting — computes (exactly once per reachable sub-problem),
// probes (the k−1 overhead), and hits.
//
//	go run ./examples/matrixchain
package main

import (
	"fmt"

	"lopram/internal/dp"
	"lopram/internal/memo"
	"lopram/internal/palrt"
	"lopram/internal/workload"
)

func main() {
	r := workload.NewRNG(99)
	const nMatrices = 64
	dims := workload.ChainDims(r, nMatrices, 5, 100)
	fmt.Printf("chain of %d matrices, dimensions in [5,100]\n\n", nMatrices)

	spec := dp.NewMatrixChain(dims)
	root := spec.Cells() - 1 // the packed id of the full interval
	oracle := dp.MatrixChain(dims)

	fmt.Printf("%4s %14s %10s %10s %10s %8s\n", "p", "optimal cost", "computes", "probes", "hits", "ok")
	for _, p := range []int{1, 2, 4, 8} {
		rt := palrt.New(p)
		got, st := memo.Run(rt, spec, root)
		fmt.Printf("%4d %14d %10d %10d %10d %8v\n",
			p, got, st.Computes, st.Probes, st.Hits, got == oracle)
	}

	// Laziness: ask for a sub-chain; only its triangle of sub-problems is
	// computed.
	rt := palrt.New(4)
	tbl := memo.NewTable(spec)
	n := len(dims) - 1
	subLen := 10
	subID := 0
	for l := 0; l < subLen-1; l++ {
		subID += n - l
	}
	memo.RunOn(rt, tbl, subID)
	fmt.Printf("\nsub-chain query (first %d matrices): computed %d of %d cells (reachable: %d)\n",
		subLen, tbl.Stats().Computes, spec.Cells(), memo.Reachable(spec, subID))

	// Incremental reuse: extending the query reuses everything computed.
	before := tbl.Stats().Computes
	memo.RunOn(rt, tbl, root)
	fmt.Printf("extending to the full chain computed %d more cells (table size %d)\n",
		tbl.Stats().Computes-before, spec.Cells())
}
