// Edit distance via the parallel DP framework (§4.2–§4.4 of the paper).
//
// The program spells out the full pipeline the facade hides: declare the DP
// as an Equation (6) specification, build the dependency DAG in parallel,
// inspect its antichain structure (the anti-diagonals), and execute it with
// the counter scheduler of Algorithm 1 — then cross-check against the
// sequential oracle and report the speedup measured on the deterministic
// simulator.
//
//	go run ./examples/editdistance
package main

import (
	"fmt"

	"lopram/internal/core"
	"lopram/internal/dp"
	"lopram/internal/palrt"
	"lopram/internal/sim"
	"lopram/internal/workload"
)

func main() {
	r := workload.NewRNG(7)
	a, b := workload.RelatedStrings(r, 400, 6, 40)
	fmt.Printf("strings: |a| = %d, |b| = %d (≤ 40 random edits apart)\n", len(a), len(b))

	// 1. The declarative spec: cells, dependencies, recurrence.
	spec := dp.NewEditDistance(a, b)

	// 2. Dependency DAG, built in parallel across the runtime (§4.4:
	//    O(m·n²/p) with no cross-cell dependencies).
	p := core.ProcsFor(spec.Cells())
	rt := palrt.New(p)
	g := dp.BuildGraphParallel(rt, spec)
	profile, err := g.ParallelismProfile()
	if err != nil {
		panic(err)
	}
	fmt.Printf("DAG: %d cells, %d edges; antichain layers = %d (the anti-diagonals), widest = %d\n",
		g.N(), g.Edges(), profile.CriticalPath, profile.MaxWidth)

	// 3. Algorithm 1: counter scheduler on p workers.
	vals, err := dp.RunCounter(spec, g, p)
	if err != nil {
		panic(err)
	}
	got := spec.Distance(vals)
	want := dp.EditDistance(a, b)
	fmt.Printf("parallel result %d, sequential oracle %d, agree: %v\n", got, want, got == want)

	// 4. Speedup on the deterministic simulator (exact step counts).
	smallA, smallB := workload.RelatedStrings(r, 120, 6, 12)
	small := dp.NewEditDistance(smallA, smallB)
	sg := dp.BuildGraph(small)
	steps := func(p int) int64 {
		prog, _ := dp.Program(small, sg, dp.SimOptions{})
		return sim.New(sim.Config{P: p}).MustRun(prog).Steps
	}
	t1 := steps(1)
	fmt.Println("\nsimulated Algorithm 1 on a 121×121 table:")
	fmt.Printf("%4s %12s %10s %10s\n", "p", "steps", "speedup", "efficiency")
	for _, pp := range []int{1, 2, 4, 8} {
		tp := steps(pp)
		fmt.Printf("%4d %12d %10.2f %10.2f\n",
			pp, tp, float64(t1)/float64(tp), float64(t1)/float64(tp)/float64(pp))
	}
}
