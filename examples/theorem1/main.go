// Theorem 1 interactively: pick a divide-and-conquer recurrence, classify it
// under the Master theorem, predict its parallel behaviour on a LoPRAM, and
// verify the prediction against the deterministic machine simulator — for
// p = 2^k, by exact equality with Equation (3) / Equation (5).
//
//	go run ./examples/theorem1
//	go run ./examples/theorem1 -a 2 -e 2 -pm   # Case 3 with parallel merge
package main

import (
	"flag"
	"fmt"

	"lopram/internal/dandc"
	"lopram/internal/master"
	"lopram/internal/sim"
)

func main() {
	a := flag.Int("a", 2, "subproblem count a")
	e := flag.Float64("e", 1, "merge-cost exponent: f(n) = n^e (e in {0,1,2,3})")
	n := flag.Int64("n", 1<<12, "input size (power of two)")
	pm := flag.Bool("pm", false, "parallelize the merge (Equation 5)")
	flag.Parse()

	// Symbolic classification.
	rec := master.Recurrence{
		A: float64(*a), B: 2, C: 1, E: *e, K: 0, Cutoff: 1, Base: 1,
	}
	if err := rec.Validate(); err != nil {
		panic(err)
	}
	fmt.Printf("recurrence: T(n) = %d·T(n/2) + n^%.3g   (critical exponent log₂ %d = %.3f)\n",
		*a, *e, *a, rec.CriticalExponent())
	fmt.Printf("Master theorem: %v, sequential %s\n", rec.Classify(), rec.ThetaString())
	fmt.Printf("Theorem 1 prediction: T_p = %s\n\n", rec.ParallelThetaString(*pm))

	// Integer cost model for the simulator.
	irec := master.IntRec{
		A: *a, B: 2, Cutoff: 1,
		Divide: dandc.Unit,
		Base:   dandc.Unit,
		Merge: func(sz int64) int64 {
			switch {
			case *e == 0:
				return 1
			case *e == 1:
				return sz
			case *e == 2:
				return sz * sz
			default:
				return sz * sz * sz
			}
		},
	}
	mode := dandc.SeqMerge
	if *pm {
		mode = dandc.ParMerge
	}

	seq := irec.Seq(*n)
	fmt.Printf("%4s %14s %14s %10s %12s\n", "p", "T_p (sim)", "T_p (exact eq)", "speedup", "exact match")
	for _, p := range []int{1, 2, 4, 8, 16} {
		frontier := master.FrontierDepth(p, *a)
		cm := dandc.CostModel{Rec: irec, Mode: mode, SpawnDepth: frontier + 2}
		if *pm {
			cm.MergeChunks = p
		}
		res := sim.New(sim.Config{P: p}).MustRun(cm.Program(*n))

		exact := "-"
		match := "n/a"
		if p == 1 || master.IsPowerOf(p, *a) {
			var want int64
			if *pm {
				want = irec.ParParMerge(*n, p)
			} else {
				want = irec.ParSeqMerge(*n, p)
			}
			exact = fmt.Sprintf("%d", want)
			if want == res.Steps {
				match = "yes"
			} else {
				match = "NO"
			}
		}
		fmt.Printf("%4d %14d %14s %10.2f %12s\n",
			p, res.Steps, exact, float64(seq)/float64(res.Steps), match)
	}
	fmt.Println("\n(speedup ≈ p in Cases 1/2; pinned at Θ(1) in Case 3 unless -pm restores it)")
}
