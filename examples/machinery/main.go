// Machinery tour: the parts of the LoPRAM machine the algorithm examples
// don't show — standard threads multitasking next to the pal-thread tree
// (§3.1's two thread types), and the audited CREW shared memory with
// transparent violation detection (§3).
//
//	go run ./examples/machinery
package main

import (
	"fmt"

	"lopram/internal/crew"
	"lopram/internal/sim"
)

func main() {
	stdVsPal()
	auditedMemory()
	violation()
}

// stdVsPal contrasts the two thread types on one machine: the pal tree gets
// dedicated processors; the standard threads multitask over the leftovers.
func stdVsPal() {
	fmt.Println("— standard threads vs pal-threads (p = 2) —")
	m := sim.New(sim.Config{P: 2, Trace: true})
	res := m.MustRun(func(tc *sim.TC) {
		// Background work: three standard threads of 6 units each.
		tc.Launch(
			func(tc *sim.TC) { tc.Work(6) },
			func(tc *sim.TC) { tc.Work(6) },
			func(tc *sim.TC) { tc.Work(6) },
		)
		// Foreground: a pal block that owns both processors for a while.
		tc.Do(
			func(tc *sim.TC) { tc.Work(4) },
			func(tc *sim.TC) { tc.Work(4) },
		)
	})
	fmt.Printf("total work %d over %d steps on 2 processors (utilization %.2f)\n",
		res.Work, res.Steps, res.Utilization(2))
	fmt.Println("pal children run steps 1-4 on dedicated processors; the 18 units of")
	fmt.Println("standard work multitask on whatever frees up — round-robin, no starvation.")
	fmt.Println()
}

// auditedMemory runs a CREW-legal tree sum through the machine's audited
// shared memory.
func auditedMemory() {
	fmt.Println("— audited CREW memory: parallel tree sum —")
	const leaves = 8
	m := sim.New(sim.Config{P: 4}).AttachMemory(2*leaves, crew.Record)
	var node func(k int) sim.Func
	node = func(k int) sim.Func {
		return func(tc *sim.TC) {
			if k >= leaves-1 {
				tc.Write(k, int64(k-leaves+2))
				tc.Work(1)
				return
			}
			tc.Do(node(2*k+1), node(2*k+2))
			tc.Work(1)
			tc.Write(k, tc.Read(2*k+1)+tc.Read(2*k+2))
		}
	}
	res := m.MustRun(node(0))
	reads, writes := m.Memory().Accesses()
	fmt.Printf("Σ 1..%d = %d in %d steps; %d reads, %d writes, %d CREW violations\n",
		leaves, m.Memory().Peek(0), res.Steps, reads, writes, len(m.Memory().Violations()))
	fmt.Println()
}

// violation shows the auditor catching the paper's undefined behaviour.
func violation() {
	fmt.Println("— an unserialized concurrent write —")
	m := sim.New(sim.Config{P: 2}).AttachMemory(4, crew.Record)
	m.MustRun(func(tc *sim.TC) {
		tc.Do(
			func(tc *sim.TC) { tc.Write(0, 1); tc.Work(1) },
			func(tc *sim.TC) { tc.Write(0, 2); tc.Work(1) },
		)
	})
	for _, v := range m.Memory().Violations() {
		fmt.Println("detected:", v)
	}
	fmt.Println("(§3: \"If an unserialized variable is concurrently written this has")
	fmt.Println("undefined arbitrary behaviour\" — with crew.Abort the run is suspended instead.)")
}
