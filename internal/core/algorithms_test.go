package core

import (
	"sort"
	"testing"

	"lopram/internal/dandc"
	"lopram/internal/dp"
	"lopram/internal/workload"
)

func TestModelPrefixSumsAndReduce(t *testing.T) {
	r := workload.NewRNG(1)
	m := New(1 << 16)
	a := workload.Int64s(r, 1<<16)
	var want int64
	for i := range a {
		a[i] %= 1000
		want += a[i]
	}
	ps := m.PrefixSums(a)
	if ps[len(ps)-1] != want {
		t.Fatalf("final prefix %d, want %d", ps[len(ps)-1], want)
	}
	if got := m.ReduceSum(a); got != want {
		t.Fatalf("reduce %d, want %d", got, want)
	}
}

func TestModelSelectMedian(t *testing.T) {
	r := workload.NewRNG(2)
	m := New(1 << 15)
	a := workload.Ints(r, 1<<15, 1<<20)
	sorted := append([]int(nil), a...)
	sort.Ints(sorted)
	if got := m.Select(a, 1000); got != sorted[1000] {
		t.Fatalf("select = %d, want %d", got, sorted[1000])
	}
	if got := m.Median(a); got != sorted[(len(a)-1)/2] {
		t.Fatalf("median = %d, want %d", got, sorted[(len(a)-1)/2])
	}
}

func TestModelConvolvePolyMul(t *testing.T) {
	m := New(1 << 10)
	a := []int64{1, 2, 3}
	b := []int64{4, 5}
	want := []int64{4, 13, 22, 15}
	for name, got := range map[string][]int64{
		"convolve":  m.Convolve(a, b),
		"karatsuba": m.PolyMul(a, b),
	} {
		if len(got) != len(want) {
			t.Fatalf("%s: len %d", name, len(got))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s: coef %d = %d, want %d", name, i, got[i], want[i])
			}
		}
	}
}

func TestModelStrassen(t *testing.T) {
	r := workload.NewRNG(3)
	m := New(128)
	a := dandc.Mat{N: 96, Data: workload.Floats(r, 96*96)}
	b := dandc.Mat{N: 96, Data: workload.Floats(r, 96*96)}
	if !dandc.MatEqual(m.Strassen(a, b), dandc.MatMulSeq(a, b), 1e-7) {
		t.Fatal("Strassen diverged")
	}
}

func TestModelKnapsack(t *testing.T) {
	m := New(1 << 10)
	best, items, err := m.Knapsack([]int{5, 4, 6, 3}, []int{10, 40, 30, 50}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if best != 90 {
		t.Fatalf("best = %d, want 90", best)
	}
	var tv int64
	for _, i := range items {
		tv += int64([]int{10, 40, 30, 50}[i])
	}
	if tv != 90 {
		t.Fatalf("items sum to %d", tv)
	}
}

func TestModelLIS(t *testing.T) {
	m := New(1 << 10)
	length, sub, err := m.LIS([]int{10, 9, 2, 5, 3, 7, 101, 18})
	if err != nil {
		t.Fatal(err)
	}
	if length != 4 || len(sub) != 4 {
		t.Fatalf("LIS = %d (%v), want 4", length, sub)
	}
	_, empty, err := m.LIS(nil)
	if err != nil || empty != nil {
		t.Fatal("empty LIS mishandled")
	}
}

func TestModelViterbi(t *testing.T) {
	h := dp.HMM{
		States: 2, Symbols: 2,
		Trans: []int64{1, 3, 3, 1},
		Emit:  []int64{1, 5, 5, 1},
		Start: []int64{0, 0},
	}
	obs := []int{0, 0, 1, 1}
	m := New(1 << 8)
	cost, path, err := m.Viterbi(h, obs)
	if err != nil {
		t.Fatal(err)
	}
	if want := dp.Viterbi(h, obs); cost != want {
		t.Fatalf("cost = %d, want %d", cost, want)
	}
	// Cheap decoding: stay in 0 while seeing 0, switch to 1 for the 1s.
	want := []int{0, 0, 1, 1}
	for i := range want {
		if path[i] != want[i] {
			t.Fatalf("path = %v, want %v", path, want)
		}
	}
}

func TestModelLPS(t *testing.T) {
	m := New(1 << 8)
	if got := m.LPS("bbbab"); got != 4 {
		t.Fatalf("LPS = %d, want 4", got)
	}
	if got := m.LPS(""); got != 0 {
		t.Fatalf("empty LPS = %d", got)
	}
}

func TestModelMatrixChainPlan(t *testing.T) {
	m := New(8)
	cost, plan, err := m.MatrixChainPlan([]int{30, 35, 15, 5, 10, 20, 25})
	if err != nil {
		t.Fatal(err)
	}
	if cost != 15125 {
		t.Fatalf("cost = %d", cost)
	}
	if plan != "((A1 (A2 A3)) ((A4 A5) A6))" {
		t.Fatalf("plan = %s", plan)
	}
}
