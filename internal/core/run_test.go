package core

import "testing"

func TestCatalogueValidation(t *testing.T) {
	if len(Algorithms()) < 8 {
		t.Fatalf("catalogue has %d algorithms, want >= 8", len(Algorithms()))
	}
	for _, name := range Algorithms() {
		engines := EnginesFor(name)
		if len(engines) == 0 {
			t.Errorf("%s: no engines", name)
		}
		for _, e := range engines {
			if MaxN(name, e) < 1 {
				t.Errorf("%s/%s: MaxN = %d", name, e, MaxN(name, e))
			}
			if err := ValidateSpec(name, e, 16, 0); err != nil {
				t.Errorf("%s/%s: valid spec rejected: %v", name, e, err)
			}
			if err := ValidateSpec(name, e, MaxN(name, e)+1, 2); err == nil {
				t.Errorf("%s/%s: oversized n admitted", name, e)
			}
		}
	}
	if _, err := ParseEngine("sim"); err != nil {
		t.Error(err)
	}
	if _, err := ParseEngine("bogus"); err == nil {
		t.Error("ParseEngine accepted bogus engine")
	}
	if err := ValidateSpec("mergesort", EngineSim, 16, MaxProcs+1); err == nil {
		t.Error("p > MaxProcs admitted")
	}
}

// TestRunDeterminism: same spec, same outcome — the property the result
// cache depends on.
func TestRunDeterminism(t *testing.T) {
	for _, name := range Algorithms() {
		for _, e := range EnginesFor(name) {
			n := 32
			if maxN := MaxN(name, e); n > maxN {
				n = maxN
			}
			a, err := RunAlgorithm(name, e, n, 2, 7)
			if err != nil {
				t.Fatalf("%s/%s: %v", name, e, err)
			}
			b, err := RunAlgorithm(name, e, n, 2, 7)
			if err != nil {
				t.Fatalf("%s/%s rerun: %v", name, e, err)
			}
			// The scheduler's spawn/steal/inline split is timing-dependent,
			// but the number of children offered to it is a property of the
			// algorithm's task tree and must reproduce.
			if (a.Sched != nil) != (e == EnginePalrt) {
				t.Errorf("%s/%s: scheduler stats presence wrong: %+v", name, e, a.Sched)
			}
			if a.Sched != nil && b.Sched != nil && a.Sched.Offered() != b.Sched.Offered() {
				t.Errorf("%s/%s: offered children diverged: %d vs %d",
					name, e, a.Sched.Offered(), b.Sched.Offered())
			}
			a.Sched, b.Sched = nil, nil
			if a != b {
				t.Errorf("%s/%s: outcomes diverged: %+v vs %+v", name, e, a, b)
			}
		}
	}
}

// TestSimSpeedupShape: on the deterministic engine, more processors must
// not slow a job down, and mergesort at p=4 must beat p=1 — the serving
// layer's sanity check that it is dispatching onto a real parallel model.
func TestSimSpeedupShape(t *testing.T) {
	t1, err := RunAlgorithm("mergesort", EngineSim, 1<<14, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	t4, err := RunAlgorithm("mergesort", EngineSim, 1<<14, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if t4.Steps >= t1.Steps {
		t.Fatalf("p=4 steps %d >= p=1 steps %d", t4.Steps, t1.Steps)
	}
	if speedup := float64(t1.Steps) / float64(t4.Steps); speedup < 2 {
		t.Fatalf("speedup %.2f at p=4, want >= 2", speedup)
	}
}

// TestPRAMBaselineWorkSuboptimal: the Brent-emulated Hillis–Steele scan
// must do asymptotically more work than n — the paper's motivating gap.
func TestPRAMBaselineWorkSuboptimal(t *testing.T) {
	n := 1 << 10
	out, err := RunAlgorithm("prefixsums", EnginePRAM, n, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	if out.Work < int64(n)*5 {
		t.Fatalf("Hillis–Steele work %d for n=%d; expected Θ(n log n)", out.Work, n)
	}
}
