package core

import (
	"testing"

	"lopram/internal/dp"
	"lopram/internal/workload"
)

func TestProcsFor(t *testing.T) {
	cases := map[int]int{
		0: 1, 1: 1, 2: 1, 3: 1, 4: 2, 7: 2, 8: 3,
		1 << 10: 10, 1 << 20: 20, (1 << 20) + 5: 20,
	}
	for n, want := range cases {
		if got := ProcsFor(n); got != want {
			t.Errorf("ProcsFor(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestWithinModel(t *testing.T) {
	if !WithinModel(10, 1<<10) {
		t.Error("p=10 should fit n=2^10")
	}
	if WithinModel(11, 1<<10) {
		t.Error("p=11 should violate n=2^10")
	}
}

func TestSpawnSaturated(t *testing.T) {
	// Theorem 1's boundary: parallelism saturates when b^{log_a p} ≥ n.
	// For a=b=2 that is p ≥ n.
	if SpawnSaturated(1024, 16, 2, 2) {
		t.Error("p=16, n=1024 wrongly saturated")
	}
	if !SpawnSaturated(8, 16, 2, 2) {
		t.Error("p=16, n=8 should be saturated")
	}
	if SpawnSaturated(100, 1, 2, 2) {
		t.Error("p=1 can never saturate")
	}
}

func TestModelSort(t *testing.T) {
	r := workload.NewRNG(1)
	a := workload.Ints(r, 10000, 1<<20)
	m := New(len(a))
	if m.P != 13 { // log2(10000) = 13.28…
		t.Fatalf("P = %d, want 13", m.P)
	}
	m.Sort(a)
	for i := 1; i < len(a); i++ {
		if a[i-1] > a[i] {
			t.Fatal("not sorted")
		}
	}
}

func TestModelQuickSort(t *testing.T) {
	r := workload.NewRNG(2)
	a := workload.Ints(r, 5000, 100)
	New(len(a)).QuickSort(a)
	for i := 1; i < len(a); i++ {
		if a[i-1] > a[i] {
			t.Fatal("not sorted")
		}
	}
}

func TestModelEditDistance(t *testing.T) {
	m := New(1 << 12)
	got, err := m.EditDistance("kitten", "sitting")
	if err != nil {
		t.Fatal(err)
	}
	if got != 3 {
		t.Fatalf("distance = %d, want 3", got)
	}
}

func TestModelLCS(t *testing.T) {
	m := New(1 << 12)
	got, err := m.LCS("abcbdab", "bdcaba")
	if err != nil {
		t.Fatal(err)
	}
	if got != 4 {
		t.Fatalf("LCS = %d, want 4", got)
	}
}

func TestModelMatrixChain(t *testing.T) {
	dims := []int{30, 35, 15, 5, 10, 20, 25}
	m := New(len(dims))
	if got := m.MatrixChain(dims); got != 15125 {
		t.Fatalf("cost = %d, want 15125", got)
	}
}

func TestModelClosestPair(t *testing.T) {
	r := workload.NewRNG(3)
	pts := workload.Points(r, 400)
	m := New(len(pts))
	want := 1e18
	for i := range pts {
		for j := i + 1; j < len(pts); j++ {
			dx, dy := pts[i].X-pts[j].X, pts[i].Y-pts[j].Y
			if d := dx*dx + dy*dy; d < want {
				want = d
			}
		}
	}
	if got := m.ClosestPair(pts); got != want {
		t.Fatalf("closest = %v, want %v", got, want)
	}
}

func TestModelMaxSubarray(t *testing.T) {
	m := New(8)
	if got := m.MaxSubarray([]int{-2, 1, -3, 4, -1, 2, 1, -5, 4}); got != 6 {
		t.Fatalf("max subarray = %d, want 6", got)
	}
}

func TestNewWithProcsClamp(t *testing.T) {
	m := NewWithProcs(100, 0)
	if m.P != 1 {
		t.Fatalf("P = %d, want 1", m.P)
	}
	if m.Runtime().P() != 1 {
		t.Fatal("runtime P mismatch")
	}
}

func TestMachinesUseModelP(t *testing.T) {
	m := NewWithProcs(1000, 5)
	if m.Machine().P() != 5 || m.TracedMachine().P() != 5 {
		t.Fatal("machine processor count mismatch")
	}
}

// TestEditDistanceAgainstOracleSweep cross-checks the facade against the
// plain oracle on random related strings.
func TestEditDistanceAgainstOracleSweep(t *testing.T) {
	r := workload.NewRNG(4)
	m := New(1 << 10)
	for trial := 0; trial < 5; trial++ {
		a, b := workload.RelatedStrings(r, 30+r.Intn(30), 5, 8)
		got, err := m.EditDistance(a, b)
		if err != nil {
			t.Fatal(err)
		}
		if want := dp.EditDistance(a, b); got != want {
			t.Fatalf("EditDistance(%q,%q) = %d, want %d", a, b, got, want)
		}
	}
}
