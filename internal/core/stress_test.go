package core

import (
	"fmt"
	"sync"
	"testing"
)

// stressN picks a small-but-parallel input size per algorithm so the full
// catalogue stress stays fast under -race on one core.
func stressN(name string, engine Engine) int {
	n := 1 << 12
	if maxN := MaxN(name, engine); n > maxN {
		n = maxN
	}
	if n > 96 {
		// DP tables are Θ(n²); keep the quadratic entries modest.
		switch name {
		case "editdistance", "lcs", "knapsack", "matrixchain":
			n = 96
		}
	}
	return n
}

// TestWorkStealingCrossEngineStress hammers the work-stealing runtime with
// concurrent runs of every catalogue algorithm at several processor counts
// and cross-checks each outcome against (a) the p=1 fully-sequential palrt
// run — scheduling must never change an answer — and (b) the deterministic
// sim engine where the algorithm exists on both and reports a value. Run
// under -race this is the scheduler's memory-safety stress.
func TestWorkStealingCrossEngineStress(t *testing.T) {
	const seed = 11
	for _, name := range Algorithms() {
		name := name
		t.Run(name, func(t *testing.T) {
			n := stressN(name, EnginePalrt)
			want, err := RunAlgorithm(name, EnginePalrt, n, 1, seed)
			if err != nil {
				t.Fatalf("p=1 baseline: %v", err)
			}
			// Cross-engine: the sim engine runs the same spec wherever the
			// catalogue defines it and its answer is engine-independent.
			if MaxN(name, EngineSim) >= n {
				sim, err := RunAlgorithm(name, EngineSim, n, 2, seed)
				if err != nil {
					t.Fatalf("sim: %v", err)
				}
				// Cost-model sim entries (mergesort, reduce, closestpair,
				// maxsubarray) report schedule steps only; compare answers
				// where the sim run actually computes one.
				if sim.Value != 0 && sim.Value != want.Value {
					t.Fatalf("sim value %d != palrt value %d", sim.Value, want.Value)
				}
				if sim.Check != 0 && want.Check != 0 && sim.Check != want.Check {
					t.Fatalf("sim check %x != palrt check %x", sim.Check, want.Check)
				}
			}

			// The spawn/steal/inline split is timing-dependent, but the
			// total number of children offered is a property of the task
			// tree, which for a fixed (spec, p) must reproduce across
			// concurrent repetitions. (It may legitimately vary across p:
			// several algorithms pick grains from rt.P().)
			const reps = 2
			var wg sync.WaitGroup
			ps := []int{2, 4, 8}
			offered := make([][]int64, len(ps))
			errs := make(chan error, 16)
			for pi, p := range ps {
				offered[pi] = make([]int64, reps)
				for rep := 0; rep < reps; rep++ {
					wg.Add(1)
					go func(pi, rep, p int) {
						defer wg.Done()
						got, err := RunAlgorithm(name, EnginePalrt, n, p, seed)
						if err != nil {
							errs <- fmt.Errorf("p=%d: %v", p, err)
							return
						}
						if got.Value != want.Value || got.Check != want.Check {
							errs <- fmt.Errorf("p=%d: outcome (%d, %x) != sequential (%d, %x)",
								p, got.Value, got.Check, want.Value, want.Check)
							return
						}
						if got.Sched == nil {
							errs <- fmt.Errorf("p=%d: missing scheduler stats", p)
							return
						}
						offered[pi][rep] = got.Sched.Offered()
					}(pi, rep, p)
				}
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				t.Error(err)
			}
			for pi, p := range ps {
				for rep := 1; rep < reps; rep++ {
					if offered[pi][rep] != offered[pi][0] {
						t.Errorf("p=%d: offered children diverged across reps: %d vs %d",
							p, offered[pi][rep], offered[pi][0])
					}
				}
			}
		})
	}
}
