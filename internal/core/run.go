package core

import (
	"fmt"
	"hash/fnv"
	"math"
	"sort"

	"lopram/internal/dandc"
	"lopram/internal/dp"
	"lopram/internal/master"
	"lopram/internal/memo"
	"lopram/internal/palrt"
	"lopram/internal/pram"
	"lopram/internal/sim"
	"lopram/internal/workload"
)

// This file is the named-algorithm dispatch surface: every algorithm the
// serving layer can run, addressable by (name, engine, n, p, seed). Inputs
// are derived deterministically from the seed, so two runs of the same spec
// — on the same engine or across engines where the result is engine
// independent — produce identical Outcomes. internal/jobqueue dispatches
// through RunAlgorithm; cmd/lopramd exposes it over HTTP.

// Engine selects which execution engine runs a job.
type Engine string

const (
	// EngineSim is the deterministic discrete-time machine simulator:
	// exact simulated step counts under the §3.1 scheduler.
	EngineSim Engine = "sim"
	// EnginePalrt is the goroutine palthreads runtime: real execution on
	// the host's cores.
	EnginePalrt Engine = "palrt"
	// EnginePRAM is the classical Θ(n)-processor PRAM baseline emulated
	// on p processors via Brent's Lemma (§2) — the work-suboptimal
	// comparison point.
	EnginePRAM Engine = "pram"
)

// ParseEngine converts a wire string into an Engine.
func ParseEngine(s string) (Engine, error) {
	switch Engine(s) {
	case EngineSim, EnginePalrt, EnginePRAM:
		return Engine(s), nil
	}
	return "", fmt.Errorf("unknown engine %q (want sim, palrt or pram)", s)
}

// Outcome is the engine-reported result of one algorithm run.
type Outcome struct {
	// Steps is the simulated time: T_p machine steps for EngineSim, the
	// Brent-emulated Σ⌈opsᵢ/p⌉ for EnginePRAM, 0 for EnginePalrt (real
	// time is the caller's to measure).
	Steps int64 `json:"steps,omitempty"`
	// Work is the total declared work (sim) or operation count (pram).
	Work int64 `json:"work,omitempty"`
	// Threads is the number of pal-threads created (sim only).
	Threads int `json:"threads,omitempty"`
	// Value is the algorithm's scalar answer where it has one (edit
	// distance, optimal cost, max subarray sum, Σa, …).
	Value int64 `json:"value"`
	// Check is an FNV-1a checksum of the algorithm's full output, used
	// to confirm cross-engine and cache-vs-recompute agreement.
	Check uint64 `json:"check"`
	// Sched is the work-stealing scheduler's spawn/steal/inline breakdown
	// for the run (EnginePalrt only). The split is timing-dependent; the
	// total offered children (Sched.Offered) is deterministic for a spec.
	Sched *palrt.SchedulerStats `json:"sched,omitempty"`
}

// runner executes one (algorithm, engine) pair. Inputs derive from seed.
type runner func(n, p int, seed uint64) (Outcome, error)

// algorithm is one catalogue entry.
type algorithm struct {
	engines map[Engine]runner
	// maxN bounds the admissible input size per engine (admission
	// control: the simulator and the Brent emulator do Θ(n)–Θ(n²) model
	// bookkeeping per run, so unbounded n is a denial of service).
	maxN map[Engine]int
}

// Algorithms returns the catalogue's algorithm names, sorted.
func Algorithms() []string {
	names := make([]string, 0, len(catalogue))
	for name := range catalogue {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// EnginesFor returns the engines supporting the named algorithm, sorted.
func EnginesFor(name string) []Engine {
	a, ok := catalogue[name]
	if !ok {
		return nil
	}
	engines := make([]Engine, 0, len(a.engines))
	for e := range a.engines {
		engines = append(engines, e)
	}
	sort.Slice(engines, func(i, j int) bool { return engines[i] < engines[j] })
	return engines
}

// MaxN returns the largest admissible input size for (name, engine), or 0
// if the pair is unsupported.
func MaxN(name string, engine Engine) int {
	a, ok := catalogue[name]
	if !ok {
		return 0
	}
	if _, ok := a.engines[engine]; !ok {
		return 0
	}
	return a.maxN[engine]
}

// MaxProcs is the largest processor count RunAlgorithm accepts. The LoPRAM
// premise is p = O(log n), so 64 processors already covers n beyond 2⁶⁴;
// larger p is a spec error, not a bigger machine.
const MaxProcs = 64

// ValidateSpec checks (name, engine, n, p) against the catalogue without
// running anything. p = 0 means "model default" (ProcsFor(n)) and is valid.
func ValidateSpec(name string, engine Engine, n, p int) error {
	a, ok := catalogue[name]
	if !ok {
		return fmt.Errorf("unknown algorithm %q", name)
	}
	if _, ok := a.engines[engine]; !ok {
		return fmt.Errorf("algorithm %q does not support engine %q (supported: %v)", name, engine, EnginesFor(name))
	}
	if n < 1 {
		return fmt.Errorf("n must be >= 1, got %d", n)
	}
	if maxN := a.maxN[engine]; n > maxN {
		return fmt.Errorf("n=%d exceeds the %s engine's limit %d for %q", n, engine, maxN, name)
	}
	if p < 0 || p > MaxProcs {
		return fmt.Errorf("p must be in [0, %d], got %d", MaxProcs, p)
	}
	return nil
}

// RunAlgorithm runs the named algorithm at input size n with p processors
// (p = 0 selects ProcsFor(n)) on the given engine, deriving inputs from
// seed. Runs are not preemptible — like an activated pal-thread, a job
// "remains active just like a standard thread" once started — so callers
// enforcing deadlines do it around this call; ValidateSpec's size limits
// keep every admissible run bounded.
func RunAlgorithm(name string, engine Engine, n, p int, seed uint64) (Outcome, error) {
	if err := ValidateSpec(name, engine, n, p); err != nil {
		return Outcome{}, err
	}
	if p == 0 {
		p = ProcsFor(n)
	}
	return catalogue[name].engines[engine](n, p, seed)
}

// ---- checksum helpers ----

func checksumInts(a []int) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	for _, v := range a {
		putUint64(&buf, uint64(int64(v)))
		h.Write(buf[:])
	}
	return h.Sum64()
}

func checksumInt64s(a []int64) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	for _, v := range a {
		putUint64(&buf, uint64(v))
		h.Write(buf[:])
	}
	return h.Sum64()
}

func putUint64(buf *[8]byte, v uint64) {
	for i := 0; i < 8; i++ {
		buf[i] = byte(v >> (8 * i))
	}
}

// ---- engine runner builders ----

// simCostModel runs the recurrence's straightforward parallelization on the
// machine simulator, truncated below the spawn frontier (which provably
// does not change the schedule — see CostModel.SpawnDepth).
func simCostModel(rec func() master.IntRec) runner {
	return func(n, p int, _ uint64) (Outcome, error) {
		r := rec()
		cm := dandc.CostModel{Rec: r, SpawnDepth: master.FrontierDepth(p, r.A) + 2}
		res := sim.New(sim.Config{P: p}).MustRun(cm.Program(int64(n)))
		return Outcome{Steps: res.Steps, Work: res.Work, Threads: res.Threads}, nil
	}
}

// simDP runs a DP spec through Algorithm 1 on the simulator.
func simDP(build func(n int, seed uint64) (dp.Spec, func(vals []int64) int64)) runner {
	return func(n, p int, seed uint64) (Outcome, error) {
		spec, answer := build(n, seed)
		g := dp.BuildGraph(spec)
		prog, vals := dp.Program(spec, g, dp.SimOptions{})
		res := sim.New(sim.Config{P: p}).MustRun(prog)
		return Outcome{
			Steps: res.Steps, Work: res.Work, Threads: res.Threads,
			Value: answer(vals), Check: checksumInt64s(vals),
		}, nil
	}
}

// palrtRunner builds an EnginePalrt runner: it owns the runtime's
// lifecycle and attaches the scheduler snapshot to the outcome, so every
// palrt engine reports its spawn/steal/inline split without call-site
// churn.
func palrtRunner(run func(rt *palrt.RT, n int, seed uint64) (Outcome, error)) runner {
	return func(n, p int, seed uint64) (Outcome, error) {
		rt := palrt.New(p)
		out, err := run(rt, n, seed)
		if err != nil {
			return out, err
		}
		s := rt.StatsSnapshot()
		out.Sched = &s
		return out, nil
	}
}

// palrtDP runs a DP spec through the counter scheduler on the goroutine
// runtime.
func palrtDP(build func(n int, seed uint64) (dp.Spec, func(vals []int64) int64)) runner {
	return palrtRunner(func(rt *palrt.RT, n int, seed uint64) (Outcome, error) {
		spec, answer := build(n, seed)
		g := dp.BuildGraphParallel(rt, spec)
		vals, err := dp.RunCounter(spec, g, rt.P())
		if err != nil {
			return Outcome{}, err
		}
		return Outcome{Value: answer(vals), Check: checksumInt64s(vals)}, nil
	})
}

// pramProgram Brent-emulates a classical PRAM program on p processors.
func pramProgram(build func(n int, seed uint64) (pram.Program, func(res pram.Result) (int64, uint64))) runner {
	return func(n, p int, seed uint64) (Outcome, error) {
		prog, answer := build(n, seed)
		res := pram.Emulate(prog, p)
		value, check := answer(res)
		return Outcome{Steps: res.TimeP, Work: res.Work, Value: value, Check: check}, nil
	}
}

// pow2Floor rounds n down to a power of two (the PRAM network programs
// require power-of-two inputs).
func pow2Floor(n int) int {
	p := 1
	for p*2 <= n {
		p *= 2
	}
	return p
}

// ---- DP spec builders (shared by the sim and palrt runners so both
// engines see identical inputs for a given seed) ----

func editDistanceSpec(n int, seed uint64) (dp.Spec, func([]int64) int64) {
	r := workload.NewRNG(seed)
	a, b := workload.RelatedStrings(r, n, 4, n/8+1)
	spec := dp.NewEditDistance(a, b)
	return spec, func(vals []int64) int64 { return spec.Distance(vals) }
}

func lcsSpec(n int, seed uint64) (dp.Spec, func([]int64) int64) {
	r := workload.NewRNG(seed)
	a := workload.String(r, n, 4)
	b := workload.String(r, n, 4)
	spec := dp.NewLCS(a, b)
	return spec, func(vals []int64) int64 { return spec.Length(vals) }
}

func knapsackSpec(n int, seed uint64) (dp.Spec, func([]int64) int64) {
	r := workload.NewRNG(seed)
	weights, values := workload.Weights(r, n, 16, 100)
	capacity := 4 * n // half the expected total weight
	spec := dp.NewKnapsack(weights, values, capacity)
	return spec, func(vals []int64) int64 { return spec.Best(vals) }
}

func matrixChainDims(n int, seed uint64) []int {
	return workload.ChainDims(workload.NewRNG(seed), n, 2, 64)
}

// ---- the catalogue ----

var catalogue = map[string]algorithm{
	"mergesort": {
		engines: map[Engine]runner{
			// The Case 2 cost model T(n) = 2T(n/2) + n on the exact
			// scheduler.
			EngineSim: simCostModel(dandc.Mergesort),
			EnginePalrt: palrtRunner(func(rt *palrt.RT, n int, seed uint64) (Outcome, error) {
				a := workload.Ints(workload.NewRNG(seed), n, 1<<30)
				dandc.MergeSort(rt, a)
				if !sort.IntsAreSorted(a) {
					return Outcome{}, fmt.Errorf("mergesort produced unsorted output")
				}
				return Outcome{Check: checksumInts(a)}, nil
			}),
			// Batcher's bitonic network: the Θ(n log² n)-work baseline.
			EnginePRAM: pramProgram(func(n int, seed uint64) (pram.Program, func(pram.Result) (int64, uint64)) {
				n = pow2Floor(n)
				in := workload.Int64s(workload.NewRNG(seed), n)
				b := pram.BitonicSort{Input: in}
				return b, func(res pram.Result) (int64, uint64) {
					return 0, checksumInt64s(b.Sorted(res))
				}
			}),
		},
		maxN: map[Engine]int{EngineSim: 1 << 30, EnginePalrt: 1 << 22, EnginePRAM: 1 << 14},
	},
	"quicksort": {
		engines: map[Engine]runner{
			EnginePalrt: palrtRunner(func(rt *palrt.RT, n int, seed uint64) (Outcome, error) {
				a := workload.Ints(workload.NewRNG(seed), n, 1<<30)
				dandc.QuickSort(rt, a)
				if !sort.IntsAreSorted(a) {
					return Outcome{}, fmt.Errorf("quicksort produced unsorted output")
				}
				return Outcome{Check: checksumInts(a)}, nil
			}),
		},
		maxN: map[Engine]int{EnginePalrt: 1 << 22},
	},
	"reduce": {
		engines: map[Engine]runner{
			// Binary tree reduction T(n) = 2T(n/2) + 1.
			EngineSim: simCostModel(func() master.IntRec {
				return master.IntRec{A: 2, B: 2, Cutoff: 1, Divide: dandc.Unit, Merge: dandc.Unit, Base: dandc.Unit}
			}),
			EnginePalrt: palrtRunner(func(rt *palrt.RT, n int, seed uint64) (Outcome, error) {
				a := workload.Int64s(workload.NewRNG(seed), n)
				// Bound entries so Σa fits in int64 regardless of n.
				for i := range a {
					a[i] %= 1 << 32
				}
				sum := dandc.ReduceSum(rt, a)
				return Outcome{Value: sum}, nil
			}),
			EnginePRAM: pramProgram(func(n int, seed uint64) (pram.Program, func(pram.Result) (int64, uint64)) {
				n = pow2Floor(n)
				in := workload.Int64s(workload.NewRNG(seed), n)
				for i := range in {
					in[i] %= 1 << 32
				}
				return pram.SumReduction{Input: in}, func(res pram.Result) (int64, uint64) {
					return res.Mem[0], 0
				}
			}),
		},
		maxN: map[Engine]int{EngineSim: 1 << 30, EnginePalrt: 1 << 24, EnginePRAM: 1 << 16},
	},
	"prefixsums": {
		engines: map[Engine]runner{
			EnginePalrt: palrtRunner(func(rt *palrt.RT, n int, seed uint64) (Outcome, error) {
				a := workload.Int64s(workload.NewRNG(seed), n)
				for i := range a {
					a[i] %= 1 << 32
				}
				out := dandc.PrefixSums(rt, a)
				return Outcome{Value: out[len(out)-1], Check: checksumInt64s(out)}, nil
			}),
			// Hillis–Steele: Θ(n log n) work, the canonical
			// work-suboptimal PRAM scan.
			EnginePRAM: pramProgram(func(n int, seed uint64) (pram.Program, func(pram.Result) (int64, uint64)) {
				in := workload.Int64s(workload.NewRNG(seed), n)
				for i := range in {
					in[i] %= 1 << 32
				}
				h := pram.HillisSteele{Input: in}
				return h, func(res pram.Result) (int64, uint64) {
					scan := h.Scan(res)
					return scan[len(scan)-1], checksumInt64s(scan)
				}
			}),
		},
		maxN: map[Engine]int{EnginePalrt: 1 << 24, EnginePRAM: 1 << 14},
	},
	"editdistance": {
		engines: map[Engine]runner{
			EngineSim:   simDP(editDistanceSpec),
			EnginePalrt: palrtDP(editDistanceSpec),
		},
		// The DP table is Θ(n²) cells; 512 keeps a single sim run in the
		// hundreds of milliseconds.
		maxN: map[Engine]int{EngineSim: 512, EnginePalrt: 1 << 11},
	},
	"lcs": {
		engines: map[Engine]runner{
			EngineSim:   simDP(lcsSpec),
			EnginePalrt: palrtDP(lcsSpec),
		},
		maxN: map[Engine]int{EngineSim: 512, EnginePalrt: 1 << 11},
	},
	"knapsack": {
		engines: map[Engine]runner{
			EngineSim:   simDP(knapsackSpec),
			EnginePalrt: palrtDP(knapsackSpec),
		},
		maxN: map[Engine]int{EngineSim: 96, EnginePalrt: 1 << 10},
	},
	"matrixchain": {
		engines: map[Engine]runner{
			// Top-down parallel memoization (§4.5) on the simulator.
			EngineSim: func(n, p int, seed uint64) (Outcome, error) {
				spec := dp.NewMatrixChain(matrixChainDims(n, seed))
				prog, vals, _ := memo.Program(spec, spec.Cells()-1)
				res := sim.New(sim.Config{P: p}).MustRun(prog)
				return Outcome{
					Steps: res.Steps, Work: res.Work, Threads: res.Threads,
					Value: vals[spec.Cells()-1],
				}, nil
			},
			EnginePalrt: palrtRunner(func(rt *palrt.RT, n int, seed uint64) (Outcome, error) {
				spec := dp.NewMatrixChain(matrixChainDims(n, seed))
				v, _ := memo.Run(rt, spec, spec.Cells()-1)
				return Outcome{Value: v}, nil
			}),
		},
		maxN: map[Engine]int{EngineSim: 96, EnginePalrt: 512},
	},
	"closestpair": {
		engines: map[Engine]runner{
			// T(n) = 2T(n/2) + n: the divide/combine of §4.1's closest
			// pair on the exact scheduler.
			EngineSim: simCostModel(dandc.Mergesort),
			EnginePalrt: palrtRunner(func(rt *palrt.RT, n int, seed uint64) (Outcome, error) {
				pts := workload.Points(workload.NewRNG(seed), n)
				d := dandc.ClosestPair(rt, pts)
				return Outcome{Check: math.Float64bits(d)}, nil
			}),
		},
		maxN: map[Engine]int{EngineSim: 1 << 30, EnginePalrt: 1 << 20},
	},
	"maxsubarray": {
		engines: map[Engine]runner{
			EngineSim: simCostModel(dandc.Mergesort),
			EnginePalrt: palrtRunner(func(rt *palrt.RT, n int, seed uint64) (Outcome, error) {
				a := workload.Ints(workload.NewRNG(seed), n, 2001)
				for i := range a {
					a[i] -= 1000 // mixed-sign input, the interesting case
				}
				return Outcome{Value: int64(dandc.MaxSubarray(rt, a))}, nil
			}),
		},
		maxN: map[Engine]int{EngineSim: 1 << 30, EnginePalrt: 1 << 22},
	},
}
