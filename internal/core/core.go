package core

import (
	"math"
	"math/bits"

	"lopram/internal/dandc"
	"lopram/internal/dp"
	"lopram/internal/memo"
	"lopram/internal/palrt"
	"lopram/internal/sim"
	"lopram/internal/workload"
)

// ProcsFor returns the LoPRAM processor count for input size n: ⌊log₂ n⌋,
// at least 1. This is the model's defining premise — "the number of
// processors p available can effectively be assumed to be O(log n)" — with
// the constant fixed at 1 for concreteness.
func ProcsFor(n int) int {
	if n < 2 {
		return 1
	}
	return bits.Len(uint(n)) - 1
}

// WithinModel reports whether a processor count p respects the LoPRAM
// premise p = O(log n) for input size n, using the same constant as
// ProcsFor. Experiment E7 probes what breaks when it is violated.
func WithinModel(p, n int) bool { return p <= ProcsFor(n) }

// SpawnSaturated reports the boundary condition from the proof of
// Theorem 1: parallel calls with no sequential component would require
// b^{log_a p} ≥ n, i.e. p ≥ n^{log_b a}; under p = O(log n) this cannot
// happen. The experiments use it to locate the regime where the theorem's
// premise fails.
func SpawnSaturated(n float64, p int, a, b float64) bool {
	if p <= 1 {
		return false
	}
	depth := math.Log(float64(p)) / math.Log(a)
	return math.Pow(b, depth) >= n
}

// Model is a LoPRAM instance sized for inputs of length N.
type Model struct {
	// N is the nominal input size the model was sized for.
	N int
	// P is the processor count, Θ(log N) by default.
	P int

	rt *palrt.RT
}

// New returns a model with p = ProcsFor(n) processors.
func New(n int) *Model { return NewWithProcs(n, ProcsFor(n)) }

// NewWithProcs returns a model with an explicit processor count (the
// multiprogramming scenario of §3.2: "the number of cores made available by
// the operating system may vary"; algorithms must run correctly for any p).
func NewWithProcs(n, p int) *Model {
	if p < 1 {
		p = 1
	}
	return &Model{N: n, P: p, rt: palrt.New(p)}
}

// Runtime returns the goroutine execution engine.
func (m *Model) Runtime() *palrt.RT { return m.rt }

// Machine returns a fresh deterministic simulator with the model's
// processor count.
func (m *Model) Machine() *sim.Machine {
	return sim.New(sim.Config{P: m.P})
}

// TracedMachine returns a simulator that records the full schedule.
func (m *Model) TracedMachine() *sim.Machine {
	return sim.New(sim.Config{P: m.P, Trace: true})
}

// Sort sorts a in place with the parallel mergesort of §3.1.
func (m *Model) Sort(a []int) { dandc.MergeSort(m.rt, a) }

// QuickSort sorts a in place with parallel quicksort.
func (m *Model) QuickSort(a []int) { dandc.QuickSort(m.rt, a) }

// EditDistance returns the Levenshtein distance of a and b computed by the
// parallel DP scheduler (Algorithm 1).
func (m *Model) EditDistance(a, b string) (int64, error) {
	spec := dp.NewEditDistance(a, b)
	g := dp.BuildGraphParallel(m.rt, spec)
	vals, err := dp.RunCounter(spec, g, m.P)
	if err != nil {
		return 0, err
	}
	return spec.Distance(vals), nil
}

// LCS returns the longest-common-subsequence length of a and b via the
// parallel DP scheduler.
func (m *Model) LCS(a, b string) (int64, error) {
	spec := dp.NewLCS(a, b)
	g := dp.BuildGraphParallel(m.rt, spec)
	vals, err := dp.RunCounter(spec, g, m.P)
	if err != nil {
		return 0, err
	}
	return spec.Length(vals), nil
}

// MatrixChain returns the optimal matrix-chain-multiplication cost via
// parallel memoization (§4.5).
func (m *Model) MatrixChain(dims []int) int64 {
	spec := dp.NewMatrixChain(dims)
	root := spec.Cells() - 1 // the full interval is the last packed cell
	v, _ := memo.Run(m.rt, spec, root)
	return v
}

// ClosestPair returns the squared distance of the closest pair of points.
func (m *Model) ClosestPair(pts []workload.Point) float64 {
	return dandc.ClosestPair(m.rt, pts)
}

// MaxSubarray returns the maximum contiguous subarray sum of a.
func (m *Model) MaxSubarray(a []int) int {
	return dandc.MaxSubarray(m.rt, a)
}
