package core

import (
	"lopram/internal/dandc"
	"lopram/internal/dp"
	"lopram/internal/memo"
)

// This file extends the facade with the rest of the algorithm catalogue.
// Everything here routes through the same p-processor runtime as Sort and
// EditDistance, so a Model is a single coherent LoPRAM machine.

// PrefixSums returns the inclusive scan of a via the two-pass parallel scan.
func (m *Model) PrefixSums(a []int64) []int64 {
	return dandc.PrefixSums(m.rt, a)
}

// ReduceSum returns Σa via parallel tree reduction.
func (m *Model) ReduceSum(a []int64) int64 {
	return dandc.ReduceSum(m.rt, a)
}

// Select returns the k-th smallest element of a (0-based) with a parallel
// three-way partition; a is not modified.
func (m *Model) Select(a []int, k int) int {
	return dandc.Select(m.rt, a, k)
}

// Median returns the lower median of a.
func (m *Model) Median(a []int) int {
	return dandc.Median(m.rt, a)
}

// Convolve multiplies two integer polynomials via parallel FFT.
func (m *Model) Convolve(a, b []int64) []int64 {
	return dandc.Convolve(m.rt, a, b)
}

// Strassen multiplies two n×n matrices with parallel Strassen.
func (m *Model) Strassen(a, b dandc.Mat) dandc.Mat {
	return dandc.Strassen(m.rt, a, b)
}

// PolyMul multiplies two integer polynomials with parallel Karatsuba
// (exact for arbitrary int64 coefficient magnitudes, unlike Convolve).
func (m *Model) PolyMul(a, b []int64) []int64 {
	return dandc.Karatsuba(m.rt, a, b)
}

// Knapsack solves 0/1 knapsack with the parallel DP scheduler and returns
// the best value together with one optimal item set (0-based indices).
func (m *Model) Knapsack(weights, values []int, capacity int) (int64, []int, error) {
	spec := dp.NewKnapsack(weights, values, capacity)
	g := dp.BuildGraphParallel(m.rt, spec)
	vals, err := dp.RunCounter(spec, g, m.P)
	if err != nil {
		return 0, nil, err
	}
	return spec.Best(vals), spec.Items(vals), nil
}

// LIS returns the length of the longest increasing subsequence of data and
// one witness subsequence.
func (m *Model) LIS(data []int) (int64, []int, error) {
	if len(data) == 0 {
		return 0, nil, nil
	}
	spec := dp.NewLIS(data)
	g := dp.BuildGraphParallel(m.rt, spec)
	vals, err := dp.RunCounter(spec, g, m.P)
	if err != nil {
		return 0, nil, err
	}
	return spec.Length(vals), spec.Subsequence(vals), nil
}

// Viterbi returns the cheapest decoding cost and state path of obs under
// the model.
func (m *Model) Viterbi(h dp.HMM, obs []int) (int64, []int, error) {
	spec := dp.NewViterbi(h, obs)
	g := dp.BuildGraphParallel(m.rt, spec)
	vals, err := dp.RunCounter(spec, g, m.P)
	if err != nil {
		return 0, nil, err
	}
	return spec.Best(vals), spec.Path(vals), nil
}

// LPS returns the longest-palindromic-subsequence length of s via parallel
// memoization (the interval DP evaluated top-down, §4.5).
func (m *Model) LPS(s string) int64 {
	if len(s) == 0 {
		return 0
	}
	spec := dp.NewLPS(s)
	v, _ := memo.Run(m.rt, spec, spec.Cells()-1)
	return v
}

// MatrixChainPlan returns the optimal cost and parenthesization of the
// chain, computed bottom-up with Algorithm 1.
func (m *Model) MatrixChainPlan(dims []int) (int64, string, error) {
	spec := dp.NewMatrixChain(dims)
	g := dp.BuildGraphParallel(m.rt, spec)
	vals, err := dp.RunCounter(spec, g, m.P)
	if err != nil {
		return 0, "", err
	}
	return spec.OptimalCost(vals), spec.Parenthesization(vals), nil
}
