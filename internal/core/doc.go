// Package core is the public facade of the LoPRAM library and the named-
// algorithm catalogue the serving stack dispatches through.
//
// As a library it bundles the machine model (a PRAM with p = O(log n)
// processors, §3), the two execution engines (the deterministic simulator
// and the goroutine runtime), and ready-made parallelizations of the
// paper's algorithm families. The quickest way in:
//
//	m := core.New(len(data))        // p = Θ(log n) processors
//	m.Sort(data)                    // §3.1's parallel mergesort
//
// As the serving layer's contract it is the catalogue: every algorithm a
// job can name, addressable as (algorithm, engine, n, p, seed) through
// RunAlgorithm, with ValidateSpec as the admission check and MaxN /
// MaxProcs as the per-engine size limits. Inputs derive deterministically
// from the seed, so a spec is a complete description of a run and equal
// specs produce identical Outcomes — the invariant internal/jobqueue's
// result cache and coalescer are built on. Engines: EngineSim (exact
// simulated step counts), EnginePalrt (real execution on the host's
// cores, scheduler stats attached), EnginePRAM (the work-suboptimal
// Brent-emulated baseline).
//
// For the frameworks, see lopram/internal/dandc (divide and conquer,
// Theorem 1), lopram/internal/dp (parallel dynamic programming, Algorithm 1)
// and lopram/internal/memo (parallel memoization).
package core
