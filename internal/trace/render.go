package trace

import (
	"fmt"
	"sort"
	"strings"

	"lopram/internal/sim"
)

// RenderTree draws the execution tree of a complete binary recursion of the
// given height as stacked levels, one node per column position, labelled
// with each call's activation step and coloured per Figure 1 at time step t:
//
//	[n]  black — activated (pal-request being executed or finished)
//	(n)  gray  — pal-requested but not yet activated
//	 ·   white — not yet pal-requested
//
// Calls that never appear in the trace render as white.
func RenderTree(tr *sim.Trace, height int, at int64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "execution tree at t = %d   [n]=black (activated at n)  (n)=gray (requested)  ·=white\n", at)
	width := 1 << height // leaves
	cell := 6            // column width per leaf slot
	for level := 0; level <= height; level++ {
		nodes := 1 << level
		span := width * cell / nodes
		for k := 0; k < nodes; k++ {
			path := pathOf(k, level)
			label := nodeLabel(tr, path, at)
			pad := (span - len([]rune(label))) / 2
			if pad < 0 {
				pad = 0
			}
			b.WriteString(strings.Repeat(" ", pad))
			b.WriteString(label)
			b.WriteString(strings.Repeat(" ", span-pad-len([]rune(label))))
		}
		b.WriteString("\n")
	}
	return b.String()
}

// pathOf converts heap position k at the given level into a root path.
func pathOf(k, level int) []int32 {
	path := make([]int32, level)
	for i := level - 1; i >= 0; i-- {
		path[i] = int32(k & 1)
		k >>= 1
	}
	return path
}

func nodeLabel(tr *sim.Trace, path []int32, at int64) string {
	switch tr.ColorAt(at, path...) {
	case sim.Black:
		n := tr.Node(path...)
		return fmt.Sprintf("[%d]", n.ActivatedAt)
	case sim.Gray:
		return "(·)"
	default:
		return "·"
	}
}

// RenderLabels draws the same tree with every node's final activation label,
// the full numbering of Figure 1.
func RenderLabels(tr *sim.Trace, height int) string {
	return RenderTree(tr, height, tr.MaxTime())
}

// Gantt renders per-processor busy intervals up to maxT as one row per
// processor; each busy step prints the last digit of the running thread's
// id, idle steps print '.'. Wide runs are truncated with an ellipsis.
func Gantt(tr *sim.Trace, maxT int64) string {
	const limit = 120
	truncated := false
	if maxT > limit {
		maxT = limit
		truncated = true
	}
	var b strings.Builder
	for p := range tr.Intervals {
		fmt.Fprintf(&b, "proc %2d |", p)
		row := make([]byte, maxT)
		for i := range row {
			row[i] = '.'
		}
		for _, iv := range tr.Intervals[p] {
			for t := iv.From; t < iv.To && t-1 < maxT; t++ {
				if t >= 1 {
					row[t-1] = byte('0' + iv.Thread%10)
				}
			}
		}
		b.Write(row)
		if truncated {
			b.WriteString("…")
		}
		b.WriteString("|\n")
	}
	return b.String()
}

// Table is a simple aligned text table builder for the experiment reports.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable returns a table with the given column headers.
func NewTable(header ...string) *Table { return &Table{header: header} }

// AddRow appends a row; each cell is rendered with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3g", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// String renders the table with aligned columns in Markdown pipe syntax.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len([]rune(h))
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len([]rune(c)) > widths[i] {
				widths[i] = len([]rune(c))
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		b.WriteString("|")
		for i, w := range widths {
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			fmt.Fprintf(&b, " %-*s |", w, c)
		}
		b.WriteString("\n")
	}
	writeRow(t.header)
	b.WriteString("|")
	for _, w := range widths {
		b.WriteString(strings.Repeat("-", w+2))
		b.WriteString("|")
	}
	b.WriteString("\n")
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// SortRowsByFirstColumn orders rows lexicographically by their first cell;
// numeric-looking cells compare numerically.
func (t *Table) SortRowsByFirstColumn() {
	sort.SliceStable(t.rows, func(i, j int) bool {
		var a, b float64
		na, errA := fmt.Sscanf(t.rows[i][0], "%g", &a)
		nb, errB := fmt.Sscanf(t.rows[j][0], "%g", &b)
		if na == 1 && nb == 1 && errA == nil && errB == nil {
			return a < b
		}
		return t.rows[i][0] < t.rows[j][0]
	})
}
