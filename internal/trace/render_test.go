package trace

import (
	"strings"
	"testing"

	"lopram/internal/sim"
)

func msortFig(n int) sim.Func {
	return func(tc *sim.TC) {
		tc.Work(1)
		if n <= 1 {
			return
		}
		tc.Do(msortFig(n/2), msortFig(n-n/2))
	}
}

func figure1Trace(t *testing.T) *sim.Trace {
	t.Helper()
	m := sim.New(sim.Config{P: 4, Trace: true})
	res, err := m.Run(msortFig(16))
	if err != nil {
		t.Fatal(err)
	}
	return res.Trace
}

func TestRenderTreeFigure1Snapshot(t *testing.T) {
	tr := figure1Trace(t)
	out := RenderTree(tr, 4, 6)
	// The t=6 snapshot must show the root activated at 1, gray right
	// eighths, and white leaves.
	if !strings.Contains(out, "[1]") {
		t.Errorf("missing root label:\n%s", out)
	}
	if !strings.Contains(out, "(·)") {
		t.Errorf("missing gray nodes:\n%s", out)
	}
	if strings.Count(out, "(·)") != 4 {
		t.Errorf("want exactly 4 gray nodes at t=6:\n%s", out)
	}
	// Leaves activated at 5 and 6 are black; 8s and 9s must not appear.
	if strings.Contains(out, "[8]") || strings.Contains(out, "[9]") {
		t.Errorf("future activations visible at t=6:\n%s", out)
	}
	if !strings.Contains(out, "[6]") {
		t.Errorf("t=6 activation missing:\n%s", out)
	}
}

func TestRenderLabelsComplete(t *testing.T) {
	tr := figure1Trace(t)
	out := RenderLabels(tr, 4)
	// Full numbering of Figure 1: each label count matches the figure.
	for label, count := range map[string]int{
		"[1]": 1, "[2]": 2, "[3]": 4,
		"[4]": 4, "[5]": 4, "[6]": 4, "[7]": 4, "[8]": 4, "[9]": 4,
	} {
		if got := strings.Count(out, label); got != count {
			t.Errorf("label %s appears %d times, want %d\n%s", label, got, count, out)
		}
	}
	if strings.Contains(out, "(·)") || strings.Contains(out, " · ") {
		t.Errorf("final tree should be all black:\n%s", out)
	}
}

func TestGanttShape(t *testing.T) {
	tr := figure1Trace(t)
	out := Gantt(tr, 12)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("gantt rows = %d, want 4 processors:\n%s", len(lines), out)
	}
	for _, l := range lines {
		if !strings.HasPrefix(l, "proc") {
			t.Fatalf("bad row %q", l)
		}
	}
	// Processor 0 is busy at t=1 (the root): first slot not idle.
	if strings.Contains(lines[0][9:10], ".") && strings.Contains(lines[1][9:10], ".") &&
		strings.Contains(lines[2][9:10], ".") && strings.Contains(lines[3][9:10], ".") {
		t.Fatalf("no processor busy at t=1:\n%s", out)
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("n", "p", "speedup")
	tb.AddRow(1024, 4, 3.91)
	tb.AddRow(64, 2, 1.97)
	out := tb.String()
	if !strings.Contains(out, "| n ") || !strings.Contains(out, "speedup") {
		t.Fatalf("header missing:\n%s", out)
	}
	if !strings.Contains(out, "3.91") {
		t.Fatalf("float cell missing:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 { // header + separator + 2 rows
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	// All rows same width.
	for _, l := range lines[1:] {
		if len([]rune(l)) != len([]rune(lines[0])) {
			t.Fatalf("ragged table:\n%s", out)
		}
	}
}

func TestTableSort(t *testing.T) {
	tb := NewTable("n", "v")
	tb.AddRow(256, "c")
	tb.AddRow(16, "a")
	tb.AddRow(64, "b")
	tb.SortRowsByFirstColumn()
	out := tb.String()
	i16 := strings.Index(out, "16")
	i64 := strings.Index(out, "64")
	i256 := strings.Index(out, "256")
	if !(i16 < i64 && i64 < i256) {
		t.Fatalf("rows not numerically sorted:\n%s", out)
	}
}
