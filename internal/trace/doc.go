// Package trace renders simulator traces and report tables: the
// execution-tree snapshots of Figure 1 (node labels and colours at a
// chosen time step), per-processor Gantt charts of which pal-thread held
// which processor when, and the aligned text/Markdown tables
// (trace.Table) every experiment report and serving summary prints.
// Everything renders to plain strings, so the same artifacts appear in
// test logs, CLI output and Markdown reports unchanged.
package trace
