package palrt

import (
	"sync"
	"sync/atomic"
)

// PermitRT is the runtime this package used before the work-stealing
// scheduler: a single global permit channel holding p-1 tokens, a goroutine
// spawned per handed-off child. It realizes the same §3.1 semantics — a
// failed token grab runs the child inline — but every spawn attempt
// serializes on the one channel and pays a goroutine creation, which is
// what the deque scheduler exists to fix. Retained as the A/B baseline for
// BenchmarkPalrtDandC and the scheduler regression suite; new code should
// use RT.
type PermitRT struct {
	p       int
	permits chan struct{}
	spawns  atomic.Int64
	inlines atomic.Int64
}

// NewPermit returns a permit-channel runtime with p processors (p < 1 is
// treated as 1).
func NewPermit(p int) *PermitRT {
	if p < 1 {
		p = 1
	}
	rt := &PermitRT{p: p, permits: make(chan struct{}, p-1)}
	for i := 0; i < p-1; i++ {
		rt.permits <- struct{}{}
	}
	return rt
}

// P returns the processor budget.
func (rt *PermitRT) P() int { return rt.p }

// Stats returns the spawned/inline split, mirroring RT.Stats.
func (rt *PermitRT) Stats() (spawned, inline int64) {
	return rt.spawns.Load(), rt.inlines.Load()
}

// Do executes a palthreads block under the permit discipline: children
// 1..k-1 are offered to idle processors via the token channel; failures run
// inline after child 0, in creation order.
func (rt *PermitRT) Do(children ...func()) {
	switch len(children) {
	case 0:
		return
	case 1:
		children[0]()
		return
	}
	var wg sync.WaitGroup
	tryHand := func(f func()) bool {
		select {
		case <-rt.permits:
			wg.Add(1)
			rt.spawns.Add(1)
			go func() {
				defer wg.Done()
				f()
				rt.permits <- struct{}{}
			}()
			return true
		default:
			return false
		}
	}
	deferred := children[1:]
	handed := make([]bool, len(deferred))
	for i, child := range deferred {
		handed[i] = tryHand(child)
	}
	children[0]()
	for i, child := range deferred {
		if handed[i] {
			continue
		}
		if tryHand(child) {
			continue
		}
		rt.inlines.Add(1)
		child()
	}
	wg.Wait()
}

// For mirrors RT.For on the permit runtime, for like-for-like benchmarks.
func (rt *PermitRT) For(lo, hi, grain int, f func(lo, hi int)) {
	if grain < 1 {
		grain = 1
	}
	if hi-lo <= grain {
		f(lo, hi)
		return
	}
	mid := lo + (hi-lo)/2
	rt.Do(
		func() { rt.For(lo, mid, grain, f) },
		func() { rt.For(mid, hi, grain, f) },
	)
}
