package palrt

import (
	"runtime"
	"sync/atomic"
	"testing"
)

// offeredTree runs a recursive Do tree on rt and returns how many children
// were offered to the scheduler (every child after the first of each
// multi-child block).
func offeredTree(rt *RT, depth, fanout int, leaves *atomic.Int64) int64 {
	var offered atomic.Int64
	var rec func(depth int)
	rec = func(depth int) {
		if depth == 0 {
			leaves.Add(1)
			return
		}
		jobs := make([]func(), fanout)
		for i := range jobs {
			jobs[i] = func() { rec(depth - 1) }
		}
		if fanout > 1 {
			offered.Add(int64(fanout - 1))
		}
		rt.Do(jobs...)
	}
	rec(depth)
	return offered.Load()
}

// TestInlineFallbackInvariants is the table-driven check of the §4.1
// scheduling discipline across runtime shapes: p=1 never spawns; every
// offered child is accounted for as exactly one of spawned or inlined;
// steals are a subset of spawns; and Run resets the counters between
// computations.
func TestInlineFallbackInvariants(t *testing.T) {
	cases := []struct {
		name          string
		p             int
		depth, fanout int
	}{
		{"p1-binary", 1, 6, 2},
		{"p1-wide", 1, 2, 16},
		{"p2-binary", 2, 8, 2},
		{"p3-ternary", 3, 5, 3},
		{"p4-wide", 4, 3, 8},
		{"p8-binary", 8, 10, 2},
		{"p8-wide", 8, 2, 64},
		{"p16-deep", 16, 12, 2},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			rt := New(tc.p)
			var leaves atomic.Int64
			var offered int64
			s := rt.Run(func() {
				offered = offeredTree(rt, tc.depth, tc.fanout, &leaves)
			})

			wantLeaves := int64(1)
			for i := 0; i < tc.depth; i++ {
				wantLeaves *= int64(tc.fanout)
			}
			if leaves.Load() != wantLeaves {
				t.Fatalf("ran %d leaves, want %d", leaves.Load(), wantLeaves)
			}
			if s.Spawned+s.Inlined != offered {
				t.Errorf("spawned %d + inlined %d != offered %d", s.Spawned, s.Inlined, offered)
			}
			if s.Offered() != offered {
				t.Errorf("Offered() = %d, want %d", s.Offered(), offered)
			}
			if tc.p == 1 {
				if s.Spawned != 0 || s.Stolen != 0 || s.WorkersStarted != 0 {
					t.Errorf("p=1 runtime spawned: %+v", s)
				}
			}
			if s.Stolen > s.Spawned {
				t.Errorf("stolen %d exceeds spawned %d", s.Stolen, s.Spawned)
			}

			// Stats reset between Runs: a second, smaller computation must
			// report only its own children.
			var leaves2 atomic.Int64
			var offered2 int64
			s2 := rt.Run(func() {
				offered2 = offeredTree(rt, 1, 2, &leaves2)
			})
			if s2.Offered() != offered2 {
				t.Errorf("second Run offered %d, stats say %d (not reset?)", offered2, s2.Offered())
			}
		})
	}
}

// TestGoOfferAccounting: Go children obey the same accounting — each Go is
// one offered child, resolved as spawned or inlined by Wait time.
func TestGoOfferAccounting(t *testing.T) {
	for _, p := range []int{1, 2, 4} {
		rt := New(p)
		const k = 20
		var ran atomic.Int64
		s := rt.Run(func() {
			joins := make([]*Join, k)
			for i := range joins {
				joins[i] = rt.Go(func() { ran.Add(1) })
			}
			for _, j := range joins {
				j.Wait()
			}
		})
		if ran.Load() != k {
			t.Fatalf("p=%d: ran %d of %d Go children", p, ran.Load(), k)
		}
		if s.Offered() != k {
			t.Errorf("p=%d: spawned %d + inlined %d != %d Go children", p, s.Spawned, s.Inlined, k)
		}
	}
}

// TestDequeOverflowFallsBackInline: offering more children than the deque
// holds must not lose or duplicate any — the overflow runs inline.
func TestDequeOverflowFallsBackInline(t *testing.T) {
	rt := New(2)
	const k = dequeCap + 100
	var count atomic.Int64
	jobs := make([]func(), k)
	for i := range jobs {
		jobs[i] = func() { count.Add(1) }
	}
	s := rt.Run(func() { rt.Do(jobs...) })
	if count.Load() != k {
		t.Fatalf("ran %d of %d children", count.Load(), k)
	}
	if s.Offered() != k-1 {
		t.Errorf("offered accounting: %d, want %d", s.Offered(), k-1)
	}
}

// TestFramePoolReuse: repeated blocks on one runtime must stabilize to the
// pooled arena (no per-spawn allocations on the steady path).
func TestFramePoolReuse(t *testing.T) {
	rt := New(4)
	noop := func() {}
	// Warm the pool and workers.
	for i := 0; i < 100; i++ {
		rt.Do(noop, noop)
	}
	allocs := testing.AllocsPerRun(500, func() {
		rt.Do(noop, noop)
	})
	// One variadic []func() escape is inherent to the call; frames, tasks
	// and join state must all come from the pool.
	if allocs > 2 {
		t.Errorf("Do(noop, noop) allocates %.1f objects/op, want <= 2 (arena not pooling)", allocs)
	}
}

// TestStaleEntriesDoNotWedgeScheduler is the regression test for the ring
// wedging bug: fine-grained blocks whose children are always reclaimed by
// the parent leave stale entries behind, and before compact-on-full those
// entries permanently filled every ring — an idle runtime then refused all
// offers and degraded to sequential execution forever.
func TestStaleEntriesDoNotWedgeScheduler(t *testing.T) {
	rt := New(4)
	noop := func() {}
	// Fill every ring with stale entries many times over.
	for i := 0; i < 10*dequeCap*4; i++ {
		rt.Do(noop, noop)
	}
	// Offers must still be accepted: a slow block's children must be
	// claimable by workers, not forced inline by wedged rings.
	block := make(chan struct{})
	done := make(chan struct{})
	go func() {
		rt.Do(
			func() { <-block },
			func() { <-block },
		)
		close(done)
	}()
	// The parent is parked in child 0; a worker must be able to claim
	// child 1. Spin briefly waiting for a spawn.
	spawnedNow := func() int64 { s, _ := rt.Stats(); return s }
	deadline := make(chan struct{})
	go func() {
		for i := 0; i < 1000; i++ {
			if spawnedNow() > 0 {
				close(deadline)
				return
			}
			runtime.Gosched()
		}
		close(deadline)
	}()
	<-deadline
	if spawnedNow() == 0 {
		close(block)
		<-done
		t.Fatal("no worker could claim a child after stale-entry churn: rings wedged")
	}
	close(block)
	<-done
}
