// Package palrt is the goroutine-backed LoPRAM runtime: it executes the same
// pal-thread programs as the simulator, but for real, on the host's cores.
//
// The runtime owns p logical processors represented by permits. A palthreads
// block (Do) offers its children to idle processors and executes the rest
// inline on the parent's processor — the exact behaviour §4.1 relies on:
// "as there are no more free cores available, the sequential version of the
// algorithm is used", and crucially "this condition is never explicitly
// tested for by the scheduling algorithm, rather it is a natural consequence
// of the proposed order of execution of the parent child threads". Here too:
// no code tests the recursion depth; the handoff attempt simply fails when
// all permits are taken and the parent recurses sequentially.
package palrt

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// RT is a LoPRAM runtime with a fixed processor budget. Create one per
// computation (or reuse across computations; it is stateless between calls).
// The zero value is not usable; call New.
type RT struct {
	p int
	// permits holds p-1 tokens: the caller of Run holds the p-th
	// processor implicitly, exactly like the main thread of the model.
	permits chan struct{}
	spawns  atomic.Int64 // children actually handed to another processor
	inlines atomic.Int64 // children executed inline by their parent
}

// New returns a runtime with p processors. p < 1 is treated as 1.
// The runtime does not call runtime.GOMAXPROCS; the permit discipline alone
// bounds parallelism, so a single process can host several runtimes.
func New(p int) *RT {
	if p < 1 {
		p = 1
	}
	rt := &RT{p: p, permits: make(chan struct{}, p-1)}
	for i := 0; i < p-1; i++ {
		rt.permits <- struct{}{}
	}
	return rt
}

// NewHost returns a runtime sized to the host: min(maxP, GOMAXPROCS).
func NewHost(maxP int) *RT {
	p := runtime.GOMAXPROCS(0)
	if maxP > 0 && p > maxP {
		p = maxP
	}
	return New(p)
}

// P returns the processor budget.
func (rt *RT) P() int { return rt.p }

// Stats returns how many pal-thread children were executed on a fresh
// processor versus inline on their parent's processor since the runtime was
// created. Used by the spawn-policy ablation and the scheduler tests.
func (rt *RT) Stats() (spawned, inline int64) {
	return rt.spawns.Load(), rt.inlines.Load()
}

// Do executes a palthreads block: the children run, possibly in parallel,
// and Do returns when all have completed (the block's implicit wait).
//
// Child 0 always runs inline: when the parent suspends at the wait, its
// processor is assigned to the first child (§3.1), and running it on the
// same goroutine realizes that handoff with zero cost. Children 1..k-1 are
// offered to idle processors in creation order; each one that finds no idle
// processor runs inline after its predecessors, which is precisely the
// "processor is assigned sequentially to the children, in order of
// creation" rule.
func (rt *RT) Do(children ...func()) {
	switch len(children) {
	case 0:
		return
	case 1:
		children[0]()
		return
	}
	var wg sync.WaitGroup
	tryHand := func(f func()) bool {
		select {
		case <-rt.permits:
			wg.Add(1)
			rt.spawns.Add(1)
			go func() {
				defer wg.Done()
				f()
				rt.permits <- struct{}{}
			}()
			return true
		default:
			return false
		}
	}
	deferred := children[1:]
	handed := make([]bool, len(deferred))
	for i, child := range deferred {
		handed[i] = tryHand(child)
	}
	children[0]()
	for i, child := range deferred {
		if handed[i] {
			continue
		}
		// A processor may have become idle while earlier children ran;
		// pending pal-threads are activated as resources free up, so
		// offer the child again before falling back to inline.
		if tryHand(child) {
			continue
		}
		rt.inlines.Add(1)
		child()
	}
	wg.Wait()
}

// Go starts a single pal-thread with nowait semantics and returns a Join
// handle. If no processor is idle the child runs inline immediately and the
// returned join is a no-op — the degenerate but correct realization of
// nowait on a saturated machine.
func (rt *RT) Go(child func()) *Join {
	select {
	case <-rt.permits:
		rt.spawns.Add(1)
		j := &Join{ch: make(chan struct{})}
		go func() {
			child()
			rt.permits <- struct{}{}
			close(j.ch)
		}()
		return j
	default:
		rt.inlines.Add(1)
		child()
		return &Join{done: true}
	}
}

// Join is the handle returned by Go.
type Join struct {
	ch   chan struct{}
	done bool
}

// Wait blocks until the pal-thread completes.
func (j *Join) Wait() {
	if j.done {
		return
	}
	<-j.ch
}

// For executes f over [lo, hi) in parallel with optimal speedup, splitting
// the range by recursive halving until segments reach grain. It implements
// the "parallel merging" capability of §4.1 (Equation 5): a D&C algorithm
// whose merge is a data-parallel loop can wrap it in For to move from Case 3
// sequential-merge behaviour (no speedup) to Θ(f(n)/p).
func (rt *RT) For(lo, hi, grain int, f func(lo, hi int)) {
	if grain < 1 {
		grain = 1
	}
	rt.pfor(lo, hi, grain, f)
}

func (rt *RT) pfor(lo, hi, grain int, f func(lo, hi int)) {
	if hi-lo <= grain {
		f(lo, hi)
		return
	}
	mid := lo + (hi-lo)/2
	rt.Do(
		func() { rt.pfor(lo, mid, grain, f) },
		func() { rt.pfor(mid, hi, grain, f) },
	)
}

// AlwaysSpawn is the naive policy used by the spawn-policy ablation: every
// child gets its own goroutine regardless of processor availability, so the
// scheduler (Go's, here) sees the full a^depth thread explosion the paper's
// design avoids. Exported for benchmarks only.
func AlwaysSpawn(children ...func()) {
	var wg sync.WaitGroup
	wg.Add(len(children))
	for _, child := range children {
		go func(f func()) {
			defer wg.Done()
			f()
		}(child)
	}
	wg.Wait()
}
