// Package palrt is the goroutine-backed LoPRAM runtime: it executes the same
// pal-thread programs as the simulator, but for real, on the host's cores.
//
// The runtime is a work-stealing scheduler with the paper's §3.1/§4.1
// semantics. Each of the p logical processors owns a bounded deque. A
// palthreads block (Do) offers its children in one batch to a processor's
// deque; idle processors claim work — their own deque newest-first (LIFO,
// the cache-hot end), other processors' deques oldest-first (FIFO, the end
// rooting the largest unexplored subtree). When the block reaches its
// implicit wait, the parent runs child 0 inline (the §3.1 handoff of the
// suspended parent's processor to its first child) and then reclaims every
// child no processor picked up, running them sequentially in creation
// order.
//
// That reclaim is exactly the property §4.1 relies on: "as there are no
// more free cores available, the sequential version of the algorithm is
// used", and crucially "this condition is never explicitly tested for by
// the scheduling algorithm, rather it is a natural consequence of the
// proposed order of execution of the parent child threads". No code here
// tests the recursion depth or counts free cores: a child runs elsewhere
// only if an idle processor claimed it first; otherwise the parent's own
// arrival at the wait runs it inline. A full deque fails the offer outright
// — the saturated machine — and the child falls back the same way.
//
// Compared to the earlier permit-channel runtime (kept as PermitRT for A/B
// benchmarks), no goroutine is created per spawned child: at most p-1
// worker goroutines serve all claims, parking and retiring when the
// machine goes idle, and per-spawn bookkeeping comes from a sync.Pool task
// arena, so the steady-state spawn path allocates nothing.
package palrt

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// RT is a LoPRAM runtime with a fixed processor budget. Create one per
// computation (or reuse across computations; idle workers retire on their
// own, so there is nothing to close). The zero value is not usable; call
// New.
type RT struct {
	p      int
	deques []deque // one inbox per logical processor
	rotor  atomic.Uint32
	// pending is the pushed-but-unclaimed task hint; see claim.
	pending   atomic.Int64
	live      atomic.Int32 // running worker goroutines, always <= p-1
	parked    atomic.Int32
	workerSeq atomic.Uint32
	wake      chan struct{}

	spawned        atomic.Int64 // children claimed by a worker
	stolen         atomic.Int64 // of those, claimed from a non-owned deque
	inlined        atomic.Int64 // children run sequentially by their parent
	workersStarted atomic.Int64

	// framePool is this runtime's task arena; per-RT so stale deque
	// entries can never alias another runtime's tasks (see getFrame).
	framePool sync.Pool
}

// New returns a runtime with p processors. p < 1 is treated as 1.
// The runtime does not call runtime.GOMAXPROCS; the worker budget alone
// bounds parallelism, so a single process can host several runtimes.
func New(p int) *RT {
	if p < 1 {
		p = 1
	}
	return &RT{p: p, deques: make([]deque, p), wake: make(chan struct{}, p)}
}

// NewHost returns a runtime sized to the host: min(maxP, GOMAXPROCS).
func NewHost(maxP int) *RT {
	p := runtime.GOMAXPROCS(0)
	if maxP > 0 && p > maxP {
		p = maxP
	}
	return New(p)
}

// P returns the processor budget.
func (rt *RT) P() int { return rt.p }

// Stats returns how many pal-thread children were executed on a fresh
// processor versus inline on their parent's processor since the runtime was
// created (or last reset). Used by the spawn-policy ablation and the
// scheduler tests; StatsSnapshot returns the full breakdown.
func (rt *RT) Stats() (spawned, inline int64) {
	return rt.spawned.Load(), rt.inlined.Load()
}

// StatsSnapshot returns the full scheduler counters for this runtime.
func (rt *RT) StatsSnapshot() SchedulerStats {
	return SchedulerStats{
		P:              rt.p,
		Spawned:        rt.spawned.Load(),
		Stolen:         rt.stolen.Load(),
		Inlined:        rt.inlined.Load(),
		WorkersStarted: rt.workersStarted.Load(),
	}
}

// ResetStats zeroes this runtime's counters (the process-wide aggregates
// behind GlobalStats keep accumulating).
func (rt *RT) ResetStats() {
	rt.spawned.Store(0)
	rt.stolen.Store(0)
	rt.inlined.Store(0)
	rt.workersStarted.Store(0)
}

// Run executes root with fresh counters and returns the scheduler
// statistics of exactly that computation. It is the preferred entry point
// when the caller wants per-run stats: counters reset between Runs.
func (rt *RT) Run(root func()) SchedulerStats {
	rt.ResetStats()
	root()
	return rt.StatsSnapshot()
}

// Do executes a palthreads block: the children run, possibly in parallel,
// and Do returns when all have completed (the block's implicit wait).
//
// Child 0 always runs inline: when the parent suspends at the wait, its
// processor is assigned to the first child (§3.1), and running it on the
// same goroutine realizes that handoff with zero cost. Children 1..k-1 are
// offered to a processor's deque in creation order; each one that no idle
// processor claims is reclaimed by the parent at the wait and runs inline
// after its predecessors, which is precisely the "processor is assigned
// sequentially to the children, in order of creation" rule.
func (rt *RT) Do(children ...func()) {
	k := len(children)
	switch k {
	case 0:
		return
	case 1:
		children[0]()
		return
	}
	if rt.p == 1 {
		// One processor: no worker may exist, so every child runs inline
		// in creation order — the sequential execution §4.1 falls back to.
		for _, child := range children {
			child()
		}
		rt.addInlined(int64(k - 1))
		return
	}
	f := rt.getFrame(k - 1)
	f.wg.Add(k - 1)
	for i := 1; i < k; i++ {
		t := &f.tasks[i-1]
		t.fn = children[i]
		t.frame = f
		t.state.Store(taskPending)
	}
	target := int(rt.rotor.Add(1) % uint32(rt.p))
	pushed := rt.deques[target].pushBatch(f.tasks)
	if pushed > 0 {
		rt.pending.Add(int64(pushed))
		rt.wakeWorkers(pushed)
	}
	children[0]()
	// The wait: reclaim every child still unclaimed — including any that
	// did not fit in the deque — and run it inline, in creation order.
	var inlined int64
	for i := range f.tasks {
		t := &f.tasks[i]
		if t.state.CompareAndSwap(taskPending, taskInline) {
			if i < pushed {
				rt.pending.Add(-1)
			}
			t.fn()
			t.fn = nil
			inlined++
			f.wg.Done()
		}
	}
	if inlined > 0 {
		rt.addInlined(inlined)
	}
	// Every child is now resolved (taken or inline); drop this block's
	// leftover ring entries before the frame can be recycled.
	rt.deques[target].purge(f)
	f.wg.Wait()
	rt.putFrame(f)
}

// Go starts a single pal-thread with nowait semantics and returns a Join
// handle. The child is offered to a deque like a Do child; if the machine
// is saturated (full inbox, or p = 1) it runs inline immediately and the
// returned join is a no-op — the degenerate but correct realization of
// nowait on a saturated machine. A child still unclaimed when Wait is
// called runs inline there, completing the same fallback.
func (rt *RT) Go(child func()) *Join {
	if rt.p == 1 {
		rt.addInlined(1)
		child()
		return &Join{}
	}
	f := rt.getFrame(1)
	f.wg.Add(1)
	t := &f.tasks[0]
	t.fn = child
	t.frame = f
	t.state.Store(taskPending)
	target := int(rt.rotor.Add(1) % uint32(rt.p))
	if rt.deques[target].pushBatch(f.tasks) == 0 {
		rt.addInlined(1)
		t.fn = nil
		child()
		f.wg.Done()
		rt.putFrame(f)
		return &Join{}
	}
	rt.pending.Add(1)
	rt.wakeWorkers(1)
	return &Join{rt: rt, f: f, d: &rt.deques[target]}
}

// Join is the handle returned by Go. Wait may be called from multiple
// goroutines; the pal-thread completes exactly once.
type Join struct {
	rt   *RT
	f    *frame
	d    *deque
	once sync.Once
}

// Wait blocks until the pal-thread completes, running it inline if no
// processor has claimed it yet.
func (j *Join) Wait() {
	if j.f == nil {
		return
	}
	j.once.Do(func() {
		t := &j.f.tasks[0]
		if t.state.CompareAndSwap(taskPending, taskInline) {
			j.rt.pending.Add(-1)
			j.rt.addInlined(1)
			t.fn()
			t.fn = nil
			j.f.wg.Done()
		}
		j.d.purge(j.f)
		j.f.wg.Wait()
		j.rt.putFrame(j.f)
	})
}

// For executes f over [lo, hi) in parallel with optimal speedup, splitting
// the range by recursive halving until segments reach grain. It implements
// the "parallel merging" capability of §4.1 (Equation 5): a D&C algorithm
// whose merge is a data-parallel loop can wrap it in For to move from Case 3
// sequential-merge behaviour (no speedup) to Θ(f(n)/p).
func (rt *RT) For(lo, hi, grain int, f func(lo, hi int)) {
	if grain < 1 {
		grain = 1
	}
	rt.pfor(lo, hi, grain, f)
}

func (rt *RT) pfor(lo, hi, grain int, f func(lo, hi int)) {
	if hi-lo <= grain {
		f(lo, hi)
		return
	}
	mid := lo + (hi-lo)/2
	rt.Do(
		func() { rt.pfor(lo, mid, grain, f) },
		func() { rt.pfor(mid, hi, grain, f) },
	)
}

// AlwaysSpawn is the naive policy used by the spawn-policy ablation: every
// child gets its own goroutine regardless of processor availability, so the
// scheduler (Go's, here) sees the full a^depth thread explosion the paper's
// design avoids. Exported for benchmarks only.
func AlwaysSpawn(children ...func()) {
	var wg sync.WaitGroup
	wg.Add(len(children))
	for _, child := range children {
		go func(f func()) {
			defer wg.Done()
			f()
		}(child)
	}
	wg.Wait()
}
