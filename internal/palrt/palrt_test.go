package palrt

import (
	"sync/atomic"
	"testing"
)

func TestDoRunsAllChildren(t *testing.T) {
	rt := New(4)
	var count atomic.Int64
	var jobs []func()
	for i := 0; i < 100; i++ {
		jobs = append(jobs, func() { count.Add(1) })
	}
	rt.Do(jobs...)
	if count.Load() != 100 {
		t.Fatalf("ran %d of 100 children", count.Load())
	}
}

func TestDoEmptyAndSingle(t *testing.T) {
	rt := New(2)
	rt.Do() // no-op
	ran := false
	rt.Do(func() { ran = true })
	if !ran {
		t.Fatal("single child not run")
	}
}

func TestDoWaitsForChildren(t *testing.T) {
	rt := New(4)
	var done [8]atomic.Bool
	var jobs []func()
	for i := range done {
		i := i
		jobs = append(jobs, func() { done[i].Store(true) })
	}
	rt.Do(jobs...)
	for i := range done {
		if !done[i].Load() {
			t.Fatalf("child %d not finished when Do returned", i)
		}
	}
}

func TestNestedDoRecursion(t *testing.T) {
	rt := New(8)
	var sum atomic.Int64
	var rec func(depth int)
	rec = func(depth int) {
		if depth == 0 {
			sum.Add(1)
			return
		}
		rt.Do(
			func() { rec(depth - 1) },
			func() { rec(depth - 1) },
		)
	}
	rec(10)
	if sum.Load() != 1024 {
		t.Fatalf("sum = %d, want 1024", sum.Load())
	}
}

// TestConcurrencyBound verifies the permit discipline: at no instant do more
// than p children execute simultaneously.
func TestConcurrencyBound(t *testing.T) {
	const p = 3
	rt := New(p)
	var cur, max atomic.Int64
	var rec func(depth int)
	rec = func(depth int) {
		if depth > 0 {
			rt.Do(
				func() { rec(depth - 1) },
				func() { rec(depth - 1) },
			)
			return
		}
		// Only leaves occupy a processor for measurable time; parents
		// blocked at a Do's implicit wait hold no processor.
		c := cur.Add(1)
		for {
			m := max.Load()
			if c <= m || max.CompareAndSwap(m, c) {
				break
			}
		}
		for i := 0; i < 1000; i++ {
			_ = i
		}
		cur.Add(-1)
	}
	rec(8)
	if got := max.Load(); got > p {
		t.Fatalf("observed %d concurrent pal-threads, budget %d", got, p)
	}
}

func TestP1IsFullySequential(t *testing.T) {
	rt := New(1)
	order := make([]int, 0, 4)
	rt.Do(
		func() { order = append(order, 0) }, // no locking needed: p=1
		func() { order = append(order, 1) },
		func() { order = append(order, 2) },
	)
	if len(order) != 3 || order[0] != 0 || order[1] != 1 || order[2] != 2 {
		t.Fatalf("order = %v, want [0 1 2] (creation order, inline)", order)
	}
	spawned, _ := rt.Stats()
	if spawned != 0 {
		t.Fatalf("p=1 spawned %d children", spawned)
	}
}

func TestGoJoin(t *testing.T) {
	rt := New(4)
	var flag atomic.Bool
	j := rt.Go(func() { flag.Store(true) })
	j.Wait()
	if !flag.Load() {
		t.Fatal("Go child not finished after Wait")
	}
}

func TestGoInlineFallback(t *testing.T) {
	rt := New(1) // zero permits: Go must run inline
	ran := false
	j := rt.Go(func() { ran = true })
	if !ran {
		t.Fatal("inline Go did not run before returning")
	}
	j.Wait() // must not block
	_, inline := rt.Stats()
	if inline != 1 {
		t.Fatalf("inline count = %d", inline)
	}
}

func TestForCoversRange(t *testing.T) {
	rt := New(6)
	var marks [1000]atomic.Int32
	rt.For(0, len(marks), 7, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			marks[i].Add(1)
		}
	})
	for i := range marks {
		if marks[i].Load() != 1 {
			t.Fatalf("index %d visited %d times", i, marks[i].Load())
		}
	}
}

func TestForEmptyAndTiny(t *testing.T) {
	rt := New(2)
	calls := 0
	rt.For(5, 5, 1, func(lo, hi int) { calls++ })
	if calls != 1 { // one call with an empty range is fine
		t.Fatalf("calls = %d", calls)
	}
	var total atomic.Int64
	rt.For(0, 3, 0, func(lo, hi int) { total.Add(int64(hi - lo)) }) // grain clamped to 1
	if total.Load() != 3 {
		t.Fatalf("covered %d of 3", total.Load())
	}
}

func TestNewClampsP(t *testing.T) {
	if New(0).P() != 1 || New(-5).P() != 1 {
		t.Fatal("non-positive p not clamped to 1")
	}
	if NewHost(2).P() > 2 {
		t.Fatal("NewHost ignored the cap")
	}
}

func TestAlwaysSpawn(t *testing.T) {
	var count atomic.Int64
	var jobs []func()
	for i := 0; i < 50; i++ {
		jobs = append(jobs, func() { count.Add(1) })
	}
	AlwaysSpawn(jobs...)
	if count.Load() != 50 {
		t.Fatalf("ran %d of 50", count.Load())
	}
}

func TestPermitsRestoredAfterDo(t *testing.T) {
	rt := New(4)
	for round := 0; round < 50; round++ {
		rt.Do(
			func() {},
			func() {},
			func() {},
			func() {},
		)
	}
	// All permits must be back: p-1 consecutive Go calls should all
	// hand off rather than run inline.
	_, inlineBefore := rt.Stats()
	var joins []*Join
	var block = make(chan struct{})
	for i := 0; i < rt.P()-1; i++ {
		j := rt.Go(func() { <-block })
		joins = append(joins, j)
	}
	_, inlineAfter := rt.Stats()
	close(block)
	for _, j := range joins {
		j.Wait()
	}
	if inlineAfter != inlineBefore {
		t.Fatalf("permits leaked: %d Go calls ran inline", inlineAfter-inlineBefore)
	}
}
