package palrt

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// This file is the work-stealing machinery behind RT: per-processor bounded
// deques, the pooled task arena, and the lazy worker pool. The public
// surface (Do, Go, For, Run, Stats) lives in palrt.go.
//
// A task offered by Do lives in exactly one deque slot and moves through a
// three-state machine:
//
//	pending → taken   a worker claimed it (a spawn; a steal when the worker
//	                  claimed it from a deque it does not own)
//	pending → inline  its parent reclaimed it at the block's implicit wait
//	                  and ran it sequentially — §4.1's fallback
//
// The claim CAS is the only synchronization a task needs, so deque entries
// may go stale (their task already resolved elsewhere); poppers discard
// stale entries when they meet them, and a full ring compacts them away
// before refusing an offer. Because a parent reclaims every still-pending
// child before blocking, it only ever waits on tasks a live worker is
// actually executing — which makes missed wakeups and worker retirement
// harmless (lost parallelism, never lost children) and rules out join
// deadlock by induction on the task tree.

// Task states. A task slot is reused across Do calls via the frame pool;
// the state is re-armed to taskPending immediately before each offer.
const (
	taskPending int32 = iota
	taskTaken
	taskInline
)

const (
	// dequeCap bounds one processor's inbox. A full inbox fails the offer
	// and the parent runs the child sequentially, exactly like the paper's
	// saturated machine.
	dequeCap = 256
	// claimSweeps failed sweeps over all deques before a worker parks.
	claimSweeps = 4
	// workerIdleTTL is how long a parked worker waits for new work before
	// retiring its goroutine. Runtimes are created per computation all over
	// the codebase, so workers must die off on their own: RT has no Close.
	workerIdleTTL = time.Millisecond
)

// task is one offered pal-thread child.
type task struct {
	fn    func()
	frame *frame
	state atomic.Int32
}

// frame is the per-Do arena: the child tasks of one palthreads block plus
// the block's implicit-wait counter. Frames are pooled so a spawn costs no
// allocation on the steady path.
type frame struct {
	wg    sync.WaitGroup
	tasks []task
}

// getFrame takes a frame from this runtime's arena. The pool is per-RT on
// purpose: a deque entry can outlive its task's resolution (entries are
// dropped lazily), so an entry may alias a task slot that a later Do has
// re-armed. Within one runtime that alias is benign — the claimer runs a
// genuinely pending task of this runtime and the accounting balances — but
// across runtimes it would hand one RT's child to another RT's worker and
// corrupt both runtimes' pending counts.
func (rt *RT) getFrame(k int) *frame {
	f, _ := rt.framePool.Get().(*frame)
	if f == nil {
		f = new(frame)
	}
	if cap(f.tasks) < k {
		f.tasks = make([]task, k)
	} else {
		f.tasks = f.tasks[:k]
	}
	return f
}

// putFrame recycles a frame. Callers must have observed wg reach zero, so
// no worker will touch the frame again; stale deque entries pointing into
// f.tasks stay valid memory and either fail their claim CAS or — if the
// slot has been re-armed by a later block on this runtime — legitimately
// claim that block's child.
func (rt *RT) putFrame(f *frame) { rt.framePool.Put(f) }

// deque is one processor's bounded task inbox: a fixed ring under a
// per-processor mutex. The owner takes newest-first (LIFO: the freshest
// task is the cache-hottest), thieves take oldest-first (FIFO: the oldest
// task roots the largest unexplored subtree). Entries whose task already
// resolved are discarded during pops.
type deque struct {
	mu   sync.Mutex
	head int // ring index of the oldest entry
	size int
	buf  [dequeCap]*task
}

// pushBatch offers a prefix of ts to the ring in one lock acquisition and
// returns how many slots were accepted. A full ring is first compacted:
// entries whose task already resolved (parents reclaim children without
// touching the ring) are dropped, so stale entries cost amortized O(1) per
// push and can never wedge an idle runtime into permanent inline-only
// execution. Whatever still does not fit is the paper's failed offer: the
// caller runs those children inline.
func (d *deque) pushBatch(ts []task) int {
	d.mu.Lock()
	if d.size == dequeCap {
		d.compactLocked()
	}
	n := dequeCap - d.size
	if n > len(ts) {
		n = len(ts)
	}
	for i := 0; i < n; i++ {
		d.buf[(d.head+d.size+i)%dequeCap] = &ts[i]
	}
	d.size += n
	d.mu.Unlock()
	return n
}

// compactLocked drops entries whose task is no longer pending, preserving
// the order of the live ones; the caller holds d.mu. An entry observed
// non-pending is safe to drop even if its slot is later re-armed: the
// re-arming block pushes a fresh entry of its own.
func (d *deque) compactLocked() {
	kept := 0
	for i := 0; i < d.size; i++ {
		t := d.buf[(d.head+i)%dequeCap]
		if t.state.Load() == taskPending {
			d.buf[(d.head+kept)%dequeCap] = t
			kept++
		}
	}
	for i := kept; i < d.size; i++ {
		d.buf[(d.head+i)%dequeCap] = nil
	}
	d.size = kept
}

// purge removes every entry belonging to frame f. A completing block calls
// it after resolving its children and before recycling the frame, so no
// ring entry ever outlives its frame: without this, entries for
// parent-reclaimed children would linger, and once the pooled frame is
// re-armed by a later block those leftovers alias the new tasks — a full
// ring of aliases reads as "all pending" and wedges the compactor. All of
// f's tasks are already resolved when purge runs, so nothing claimable is
// lost.
func (d *deque) purge(f *frame) {
	d.mu.Lock()
	kept := 0
	for i := 0; i < d.size; i++ {
		t := d.buf[(d.head+i)%dequeCap]
		if t.frame != f {
			d.buf[(d.head+kept)%dequeCap] = t
			kept++
		}
	}
	for i := kept; i < d.size; i++ {
		d.buf[(d.head+i)%dequeCap] = nil
	}
	d.size = kept
	d.mu.Unlock()
}

// takeNewest claims the most recently pushed still-pending task (owner
// LIFO), discarding stale entries.
func (d *deque) takeNewest() *task {
	d.mu.Lock()
	for d.size > 0 {
		i := (d.head + d.size - 1) % dequeCap
		t := d.buf[i]
		d.buf[i] = nil
		d.size--
		if t.state.CompareAndSwap(taskPending, taskTaken) {
			d.mu.Unlock()
			return t
		}
	}
	d.mu.Unlock()
	return nil
}

// takeOldest claims the oldest still-pending task (thief FIFO), discarding
// stale entries.
func (d *deque) takeOldest() *task {
	d.mu.Lock()
	for d.size > 0 {
		t := d.buf[d.head]
		d.buf[d.head] = nil
		d.head = (d.head + 1) % dequeCap
		d.size--
		if t.state.CompareAndSwap(taskPending, taskTaken) {
			d.mu.Unlock()
			return t
		}
	}
	d.mu.Unlock()
	return nil
}

// ---- worker pool ----

// wakeWorkers makes up to n processors available for pending tasks: parked
// workers are woken first; below the p-1 worker budget, new goroutines are
// started. Never exceeding p-1 workers is what bounds live pal-threads by p
// (the caller of Do holds the p-th processor).
func (rt *RT) wakeWorkers(n int) {
	for ; n > 0; n-- {
		if rt.parked.Load() > 0 {
			select {
			case rt.wake <- struct{}{}:
				continue
			default:
			}
		}
		for {
			live := rt.live.Load()
			if int(live) >= rt.p-1 {
				return
			}
			if rt.live.CompareAndSwap(live, live+1) {
				rt.workersStarted.Add(1)
				globalWorkers.Add(1)
				self := 1 + int((rt.workerSeq.Add(1)-1)%uint32(rt.p-1))
				go rt.workerLoop(self)
				break
			}
		}
	}
}

// workerLoop is one logical processor: claim and run tasks until the
// machine goes idle, then park, then retire. self is the index of the deque
// this worker owns (takes LIFO from); everything else it steals FIFO.
func (rt *RT) workerLoop(self int) {
	timer := time.NewTimer(workerIdleTTL)
	defer timer.Stop()
	sweeps := 0
	for {
		if t, from := rt.claim(self); t != nil {
			sweeps = 0
			rt.runTask(t, from != self)
			continue
		}
		sweeps++
		if sweeps < claimSweeps {
			runtime.Gosched()
			continue
		}
		// Park. Re-checking the pending hint after the parked increment
		// closes the missed-wake window against a concurrent push (the
		// pusher increments pending before it reads parked).
		rt.parked.Add(1)
		if rt.pending.Load() > 0 {
			rt.parked.Add(-1)
			sweeps = 0
			continue
		}
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		timer.Reset(workerIdleTTL)
		select {
		case <-rt.wake:
			rt.parked.Add(-1)
			sweeps = 0
		case <-timer.C:
			rt.parked.Add(-1)
			rt.live.Add(-1)
			// A push racing this retirement may have seen a full worker
			// pool and skipped spawning; re-offer its processor. Even if
			// this loses too, the parents reclaim their children inline.
			if rt.pending.Load() > 0 {
				rt.wakeWorkers(1)
			}
			return
		}
	}
}

// claim finds one pending task: own deque newest-first, then the other
// processors' deques oldest-first. The pending counter is a hint that lets
// idle workers skip the lock sweep; it may transiently disagree with the
// deques (claims can race pushes), which costs parallelism, never
// correctness.
func (rt *RT) claim(self int) (t *task, from int) {
	if rt.pending.Load() <= 0 {
		return nil, 0
	}
	if t := rt.deques[self].takeNewest(); t != nil {
		rt.pending.Add(-1)
		return t, self
	}
	for off := 1; off < rt.p; off++ {
		i := (self + off) % rt.p
		if t := rt.deques[i].takeOldest(); t != nil {
			rt.pending.Add(-1)
			return t, i
		}
	}
	return nil, 0
}

// runTask executes a claimed task on this worker's processor and signals
// the parent's implicit wait.
func (rt *RT) runTask(t *task, stolen bool) {
	f := t.frame
	rt.spawned.Add(1)
	globalSpawned.Add(1)
	if stolen {
		rt.stolen.Add(1)
		globalStolen.Add(1)
	}
	t.fn()
	t.fn = nil // drop the closure before the frame returns to the pool
	f.wg.Done()
}

func (rt *RT) addInlined(n int64) {
	rt.inlined.Add(n)
	globalInlined.Add(n)
}

// ---- stats ----

// SchedulerStats is a point-in-time snapshot of scheduler activity: how
// many offered children were picked up by another processor (Spawned, of
// which Stolen came from a deque the claiming worker does not own) versus
// run sequentially by their parent (Inlined), and how many worker
// goroutines were started. Spawned+Inlined equals the number of children
// offered (every child after the first of each Do, plus each Go).
type SchedulerStats struct {
	P              int   `json:"p,omitempty"`
	Spawned        int64 `json:"spawned"`
	Stolen         int64 `json:"stolen"`
	Inlined        int64 `json:"inlined"`
	WorkersStarted int64 `json:"workers_started"`
}

// Offered returns the total number of children offered to the scheduler.
func (s SchedulerStats) Offered() int64 { return s.Spawned + s.Inlined }

// Process-wide counters aggregated across every RT, for serving-layer
// metrics (the jobqueue snapshot and lopramd /v1/metrics): runtimes are
// created per computation, so per-RT counters vanish with their runs.
var (
	globalSpawned atomic.Int64
	globalStolen  atomic.Int64
	globalInlined atomic.Int64
	globalWorkers atomic.Int64
)

// GlobalStats returns scheduler counters aggregated over all runtimes since
// process start. P is zero: the aggregate spans runtimes of different
// sizes.
func GlobalStats() SchedulerStats {
	return SchedulerStats{
		Spawned:        globalSpawned.Load(),
		Stolen:         globalStolen.Load(),
		Inlined:        globalInlined.Load(),
		WorkersStarted: globalWorkers.Load(),
	}
}
