package dp

// CYKSpec is the Cocke–Younger–Kasami parser for grammars in Chomsky normal
// form, expressed as an interval DP whose cell values are bitmasks of
// nonterminals deriving the substring. It is the string-family member of
// §4.2's problem catalogue (string editing and "other related problems" in
// Apostolico et al.'s study); its dependency structure matches matrix chain
// while the cell computation is boolean.
type Grammar struct {
	// NumNT is the number of nonterminals, at most 63; nonterminal 0 is
	// the start symbol.
	NumNT int
	// Terminal[c] is the bitmask of nonterminals with rule A → c.
	Terminal map[byte]uint64
	// Binary lists rules A → B C.
	Binary []BinaryRule
}

// BinaryRule is a CNF production A → B C.
type BinaryRule struct{ A, B, C int }

// CYKSpec parses Input under Grammar.
type CYKSpec struct {
	G     Grammar
	Input string
	ix    *intervalIndex
}

// NewCYK returns the spec for parsing input under g.
func NewCYK(g Grammar, input string) *CYKSpec {
	if g.NumNT < 1 || g.NumNT > 63 {
		panic("dp: CYK supports 1..63 nonterminals")
	}
	if len(input) == 0 {
		panic("dp: CYK needs non-empty input")
	}
	return &CYKSpec{G: g, Input: input, ix: newIntervalIndex(len(input))}
}

// Cells returns n(n+1)/2 substring cells.
func (s *CYKSpec) Cells() int { return s.ix.cells() }

// Deps lists both halves of every split of the substring.
func (s *CYKSpec) Deps(v int, buf []int) []int {
	i, j := s.ix.interval(v)
	for k := i; k < j; k++ {
		buf = append(buf, s.ix.id(i, k), s.ix.id(k+1, j))
	}
	return buf
}

// Compute returns the bitmask of nonterminals deriving Input[i..j].
func (s *CYKSpec) Compute(v int, get func(int) int64) int64 {
	i, j := s.ix.interval(v)
	if i == j {
		return int64(s.G.Terminal[s.Input[i]])
	}
	var mask uint64
	for k := i; k < j; k++ {
		left := uint64(get(s.ix.id(i, k)))
		right := uint64(get(s.ix.id(k+1, j)))
		if left == 0 || right == 0 {
			continue
		}
		for _, r := range s.G.Binary {
			if left&(1<<uint(r.B)) != 0 && right&(1<<uint(r.C)) != 0 {
				mask |= 1 << uint(r.A)
			}
		}
	}
	return int64(mask)
}

// Cost charges one unit per split point times the rule count.
func (s *CYKSpec) Cost(v int) int64 {
	i, j := s.ix.interval(v)
	if i == j {
		return 1
	}
	return int64(j-i) * int64(len(s.G.Binary))
}

// Accepts reports whether the start symbol derives the whole input, given a
// computed table.
func (s *CYKSpec) Accepts(vals []int64) bool {
	full := vals[s.ix.id(0, len(s.Input)-1)]
	return uint64(full)&1 != 0
}

// CYK is the direct O(n³·|rules|) sequential oracle.
func CYK(g Grammar, input string) bool {
	n := len(input)
	tab := make([][]uint64, n)
	for i := range tab {
		tab[i] = make([]uint64, n)
		tab[i][i] = g.Terminal[input[i]]
	}
	for l := 1; l < n; l++ {
		for i := 0; i+l < n; i++ {
			j := i + l
			var mask uint64
			for k := i; k < j; k++ {
				left, right := tab[i][k], tab[k+1][j]
				if left == 0 || right == 0 {
					continue
				}
				for _, r := range g.Binary {
					if left&(1<<uint(r.B)) != 0 && right&(1<<uint(r.C)) != 0 {
						mask |= 1 << uint(r.A)
					}
				}
			}
			tab[i][j] = mask
		}
	}
	return tab[0][n-1]&1 != 0
}

// BalancedParens returns a CNF grammar for the Dyck language of balanced
// '(' ')' strings (of length >= 2), used by the tests and examples.
//
// Nonterminals: S=0 (start), L=1 ('('), R=2 (')'), X=3 (S·R helper),
// with rules S→LR, S→LX, S→SS, X→SR.
func BalancedParens() Grammar {
	return Grammar{
		NumNT: 4,
		Terminal: map[byte]uint64{
			'(': 1 << 1,
			')': 1 << 2,
		},
		Binary: []BinaryRule{
			{A: 0, B: 1, C: 2}, // S → L R
			{A: 0, B: 1, C: 3}, // S → L X
			{A: 0, B: 0, C: 0}, // S → S S
			{A: 3, B: 0, C: 2}, // X → S R
		},
	}
}
