package dp

import "math"

// CoinChangeSpec is the minimum-coins DP: cell a is the fewest coins summing
// to amount a (or Unreachable). Like rod cutting it is a chain poset — every
// amount depends on smaller amounts — but with fan-in bounded by the number
// of denominations rather than growing with n, separating the "chain because
// of one long dependency" geometry from rod cutting's "chain because of full
// fan-in" in the antichain analyses.
type CoinChangeSpec struct {
	Coins  []int
	Amount int
}

// Unreachable marks amounts no coin combination can reach.
const Unreachable = int64(math.MaxInt64 / 2)

// NewCoinChange returns the spec for the given denominations and target.
func NewCoinChange(coins []int, amount int) *CoinChangeSpec {
	if len(coins) == 0 || amount < 0 {
		panic("dp: coin change needs coins and a non-negative amount")
	}
	for _, c := range coins {
		if c <= 0 {
			panic("dp: non-positive coin denomination")
		}
	}
	return &CoinChangeSpec{Coins: coins, Amount: amount}
}

// Cells returns Amount+1.
func (s *CoinChangeSpec) Cells() int { return s.Amount + 1 }

// Deps lists a−c for every denomination c ≤ a.
func (s *CoinChangeSpec) Deps(v int, buf []int) []int {
	for _, c := range s.Coins {
		if c <= v {
			buf = append(buf, v-c)
		}
	}
	return buf
}

// Compute evaluates 1 + min over reachable predecessors.
func (s *CoinChangeSpec) Compute(v int, get func(int) int64) int64 {
	if v == 0 {
		return 0
	}
	best := Unreachable
	for _, c := range s.Coins {
		if c <= v {
			if r := get(v - c); r+1 < best {
				best = r + 1
			}
		}
	}
	return best
}

// Cost charges the denomination loop.
func (s *CoinChangeSpec) Cost(int) int64 { return int64(len(s.Coins)) }

// Min extracts the answer for the full amount; -1 if unreachable.
func (s *CoinChangeSpec) Min(vals []int64) int64 {
	v := vals[s.Amount]
	if v >= Unreachable {
		return -1
	}
	return v
}

// CoinChange is the direct sequential oracle (-1 if unreachable).
func CoinChange(coins []int, amount int) int64 {
	dp := make([]int64, amount+1)
	for a := 1; a <= amount; a++ {
		best := Unreachable
		for _, c := range coins {
			if c <= a && dp[a-c]+1 < best {
				best = dp[a-c] + 1
			}
		}
		dp[a] = best
	}
	if dp[amount] >= Unreachable {
		return -1
	}
	return dp[amount]
}

// LongestCommonSubstringSpec is the contiguous-match variant of LCS: cell
// (i,j) holds the length of the longest common suffix of A[:i] and B[:j];
// the answer is the table maximum. Its dependency DAG is the sparsest of the
// 2-D family — each cell reads only its diagonal predecessor — giving
// anti-diagonal antichains with unit fan-in.
type LongestCommonSubstringSpec struct {
	A, B       string
	rows, cols int
}

// NewLongestCommonSubstring returns the spec for strings a and b.
func NewLongestCommonSubstring(a, b string) *LongestCommonSubstringSpec {
	return &LongestCommonSubstringSpec{A: a, B: b, rows: len(a) + 1, cols: len(b) + 1}
}

// Cells returns (len(A)+1)·(len(B)+1).
func (s *LongestCommonSubstringSpec) Cells() int { return s.rows * s.cols }

// Deps lists the diagonal predecessor on a character match.
func (s *LongestCommonSubstringSpec) Deps(v int, buf []int) []int {
	i, j := v/s.cols, v%s.cols
	if i > 0 && j > 0 && s.A[i-1] == s.B[j-1] {
		buf = append(buf, v-s.cols-1)
	}
	return buf
}

// Compute evaluates the common-suffix recurrence.
func (s *LongestCommonSubstringSpec) Compute(v int, get func(int) int64) int64 {
	i, j := v/s.cols, v%s.cols
	if i == 0 || j == 0 || s.A[i-1] != s.B[j-1] {
		return 0
	}
	return get(v-s.cols-1) + 1
}

// Cost charges one unit per cell.
func (s *LongestCommonSubstringSpec) Cost(int) int64 { return 1 }

// Longest extracts the table maximum: the longest common substring length.
func (s *LongestCommonSubstringSpec) Longest(vals []int64) int64 {
	var best int64
	for _, v := range vals {
		if v > best {
			best = v
		}
	}
	return best
}

// LongestCommonSubstring is the direct sequential oracle.
func LongestCommonSubstring(a, b string) int64 {
	prev := make([]int64, len(b)+1)
	cur := make([]int64, len(b)+1)
	var best int64
	for i := 1; i <= len(a); i++ {
		for j := 1; j <= len(b); j++ {
			if a[i-1] == b[j-1] {
				cur[j] = prev[j-1] + 1
				if cur[j] > best {
					best = cur[j]
				}
			} else {
				cur[j] = 0
			}
		}
		prev, cur = cur, prev
	}
	return best
}
