package dp

import (
	"strings"
	"testing"

	"lopram/internal/workload"
)

func TestEditScriptReconstruction(t *testing.T) {
	r := workload.NewRNG(1)
	for trial := 0; trial < 20; trial++ {
		a, b := workload.RelatedStrings(r, 20+r.Intn(40), 4, 8)
		spec := NewEditDistance(a, b)
		vals, err := RunSeq(spec)
		if err != nil {
			t.Fatal(err)
		}
		ops := spec.EditScript(vals)
		// Cost of the script equals the distance.
		cost := int64(0)
		for _, op := range ops {
			if op.Kind != "match" {
				cost++
			}
		}
		if want := spec.Distance(vals); cost != want {
			t.Fatalf("trial %d: script cost %d, distance %d", trial, cost, want)
		}
		// Applying the script transforms A into B.
		got, err := spec.ApplyEditScript(ops)
		if err != nil {
			t.Fatal(err)
		}
		if got != b {
			t.Fatalf("trial %d: script produced %q, want %q", trial, got, b)
		}
	}
}

func TestEditScriptDegenerate(t *testing.T) {
	spec := NewEditDistance("", "abc")
	vals, _ := RunSeq(spec)
	ops := spec.EditScript(vals)
	if len(ops) != 3 {
		t.Fatalf("ops = %v", ops)
	}
	out, _ := spec.ApplyEditScript(ops)
	if out != "abc" {
		t.Fatalf("out = %q", out)
	}
}

func TestParenthesizationCLRS(t *testing.T) {
	dims := []int{30, 35, 15, 5, 10, 20, 25}
	spec := NewMatrixChain(dims)
	vals, err := RunSeq(spec)
	if err != nil {
		t.Fatal(err)
	}
	got := spec.Parenthesization(vals)
	// CLRS optimal: ((A1 (A2 A3)) ((A4 A5) A6)).
	want := "((A1 (A2 A3)) ((A4 A5) A6))"
	if got != want {
		t.Fatalf("parenthesization = %s, want %s", got, want)
	}
}

func TestParenthesizationCostConsistent(t *testing.T) {
	r := workload.NewRNG(2)
	for trial := 0; trial < 10; trial++ {
		dims := workload.ChainDims(r, 3+r.Intn(10), 2, 30)
		spec := NewMatrixChain(dims)
		vals, err := RunSeq(spec)
		if err != nil {
			t.Fatal(err)
		}
		expr := spec.Parenthesization(vals)
		cost, rows, _ := evalParen(expr, dims)
		if rows != dims[0] {
			t.Fatalf("trial %d: wrong shape", trial)
		}
		if cost != spec.OptimalCost(vals) {
			t.Fatalf("trial %d: expr cost %d, table %d (%s)", trial, cost, spec.OptimalCost(vals), expr)
		}
	}
}

// evalParen parses the reconstructed expression and computes its
// multiplication cost independently.
func evalParen(expr string, dims []int) (cost int64, rows, cols int) {
	expr = strings.TrimSpace(expr)
	if strings.HasPrefix(expr, "A") {
		var idx int
		for _, c := range expr[1:] {
			idx = idx*10 + int(c-'0')
		}
		return 0, dims[idx-1], dims[idx]
	}
	// strip outer parens, split at the top-level space
	inner := expr[1 : len(expr)-1]
	depth := 0
	for i := 0; i < len(inner); i++ {
		switch inner[i] {
		case '(':
			depth++
		case ')':
			depth--
		case ' ':
			if depth == 0 {
				lc, lr, lcN := evalParen(inner[:i], dims)
				rc, rr, rcN := evalParen(inner[i+1:], dims)
				if lcN != rr {
					panic("shape mismatch")
				}
				return lc + rc + int64(lr)*int64(lcN)*int64(rcN), lr, rcN
			}
		}
	}
	panic("bad expr: " + expr)
}

func TestKnapsackItems(t *testing.T) {
	w := []int{5, 4, 6, 3}
	v := []int{10, 40, 30, 50}
	spec := NewKnapsack(w, v, 10)
	vals, err := RunSeq(spec)
	if err != nil {
		t.Fatal(err)
	}
	items := spec.Items(vals)
	var tw int
	var tv int64
	for _, i := range items {
		tw += w[i]
		tv += int64(v[i])
	}
	if tw > 10 {
		t.Fatalf("items %v exceed capacity: %d", items, tw)
	}
	if tv != spec.Best(vals) {
		t.Fatalf("items value %d, table best %d", tv, spec.Best(vals))
	}
}

func TestKnapsackItemsRandom(t *testing.T) {
	r := workload.NewRNG(3)
	for trial := 0; trial < 15; trial++ {
		n := 3 + r.Intn(12)
		ws, vs := workload.Weights(r, n, 10, 50)
		cap := 5 + r.Intn(40)
		spec := NewKnapsack(ws, vs, cap)
		vals, err := RunSeq(spec)
		if err != nil {
			t.Fatal(err)
		}
		items := spec.Items(vals)
		var tw int
		var tv int64
		for _, i := range items {
			tw += ws[i]
			tv += int64(vs[i])
		}
		if tw > cap || tv != spec.Best(vals) {
			t.Fatalf("trial %d: reconstruction inconsistent (w=%d cap=%d v=%d best=%d)",
				trial, tw, cap, tv, spec.Best(vals))
		}
	}
}

func TestLISSubsequence(t *testing.T) {
	r := workload.NewRNG(4)
	for trial := 0; trial < 15; trial++ {
		data := workload.Ints(r, 20+r.Intn(40), 60)
		spec := NewLIS(data)
		vals, err := RunSeq(spec)
		if err != nil {
			t.Fatal(err)
		}
		sub := spec.Subsequence(vals)
		if int64(len(sub)) != spec.Length(vals) {
			t.Fatalf("trial %d: reconstructed length %d, table %d", trial, len(sub), spec.Length(vals))
		}
		for i := 1; i < len(sub); i++ {
			if sub[i-1] >= sub[i] {
				t.Fatalf("trial %d: not strictly increasing: %v", trial, sub)
			}
		}
		// Subsequence of data: verify by greedy matching.
		j := 0
		for _, v := range data {
			if j < len(sub) && v == sub[j] {
				j++
			}
		}
		if j != len(sub) {
			t.Fatalf("trial %d: %v not a subsequence of %v", trial, sub, data)
		}
	}
}

func TestRodCuts(t *testing.T) {
	prices := []int{1, 5, 8, 9, 10, 17, 17, 20}
	spec := NewRodCutting(prices)
	vals, err := RunSeq(spec)
	if err != nil {
		t.Fatal(err)
	}
	cuts := spec.Cuts(vals)
	total, revenue := 0, int64(0)
	for _, c := range cuts {
		total += c
		revenue += int64(prices[c-1])
	}
	if total != len(prices) {
		t.Fatalf("cuts %v use length %d, want %d", cuts, total, len(prices))
	}
	if revenue != spec.Best(vals) {
		t.Fatalf("cuts revenue %d, best %d", revenue, spec.Best(vals))
	}
}

func TestViterbiPath(t *testing.T) {
	r := workload.NewRNG(5)
	for trial := 0; trial < 10; trial++ {
		m := randomHMM(r, 2+r.Intn(5), 2+r.Intn(3))
		obs := workload.Ints(r, 4+r.Intn(20), m.Symbols)
		spec := NewViterbi(m, obs)
		vals, err := RunSeq(spec)
		if err != nil {
			t.Fatal(err)
		}
		path := spec.Path(vals)
		if len(path) != len(obs) {
			t.Fatalf("trial %d: path length %d, want %d", trial, len(path), len(obs))
		}
		if got, want := spec.PathCost(path), spec.Best(vals); got != want {
			t.Fatalf("trial %d: path cost %d, best %d", trial, got, want)
		}
	}
}
