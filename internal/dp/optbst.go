package dp

import "math"

// OptimalBSTSpec is the optimal binary search tree DP — the second of
// Bradford's problem family cited in §4.2. Cell (i,j) holds the minimum
// expected search cost of a BST over keys i..j with integer access weights
// w[i..j]; the cost recurrence is
//
//	c(i,j) = W(i,j) + min_{r∈[i,j]} ( c(i,r-1) + c(r+1,j) )
//
// with empty intervals costing 0. Like matrix chain, the antichains are the
// interval-length diagonals but the split exposes one extra cell on each
// side, exercising slightly different dependency indexing.
type OptimalBSTSpec struct {
	Weights []int
	prefix  []int64 // prefix[i] = Σ weights[:i]
	ix      *intervalIndex
}

// NewOptimalBST returns the spec for the given access weights (one per key).
func NewOptimalBST(weights []int) *OptimalBSTSpec {
	if len(weights) == 0 {
		panic("dp: optimal BST needs at least one key")
	}
	prefix := make([]int64, len(weights)+1)
	for i, w := range weights {
		prefix[i+1] = prefix[i] + int64(w)
	}
	return &OptimalBSTSpec{
		Weights: weights,
		prefix:  prefix,
		ix:      newIntervalIndex(len(weights)),
	}
}

// Cells returns n(n+1)/2 packed interval cells.
func (s *OptimalBSTSpec) Cells() int { return s.ix.cells() }

// rangeWeight returns Σ weights[i..j].
func (s *OptimalBSTSpec) rangeWeight(i, j int) int64 {
	return s.prefix[j+1] - s.prefix[i]
}

// Deps lists the two flanking sub-intervals of every candidate root.
func (s *OptimalBSTSpec) Deps(v int, buf []int) []int {
	i, j := s.ix.interval(v)
	for r := i; r <= j; r++ {
		if r > i {
			buf = append(buf, s.ix.id(i, r-1))
		}
		if r < j {
			buf = append(buf, s.ix.id(r+1, j))
		}
	}
	return buf
}

// Compute evaluates the root-choice minimum.
func (s *OptimalBSTSpec) Compute(v int, get func(int) int64) int64 {
	i, j := s.ix.interval(v)
	if i == j {
		return int64(s.Weights[i])
	}
	best := int64(math.MaxInt64)
	for r := i; r <= j; r++ {
		c := int64(0)
		if r > i {
			c += get(s.ix.id(i, r-1))
		}
		if r < j {
			c += get(s.ix.id(r+1, j))
		}
		if c < best {
			best = c
		}
	}
	return best + s.rangeWeight(i, j)
}

// Cost charges the root-loop length.
func (s *OptimalBSTSpec) Cost(v int) int64 {
	i, j := s.ix.interval(v)
	return int64(j - i + 1)
}

// OptimalCost extracts the whole-key-range answer from a computed table.
func (s *OptimalBSTSpec) OptimalCost(vals []int64) int64 {
	return vals[s.ix.id(0, len(s.Weights)-1)]
}

// OptimalBST is the direct O(n³) sequential oracle.
func OptimalBST(weights []int) int64 {
	n := len(weights)
	if n == 0 {
		panic("dp: optimal BST needs at least one key")
	}
	prefix := make([]int64, n+1)
	for i, w := range weights {
		prefix[i+1] = prefix[i] + int64(w)
	}
	c := make([][]int64, n)
	for i := range c {
		c[i] = make([]int64, n)
		c[i][i] = int64(weights[i])
	}
	cost := func(i, j int) int64 {
		if i > j {
			return 0
		}
		return c[i][j]
	}
	for l := 1; l < n; l++ {
		for i := 0; i+l < n; i++ {
			j := i + l
			best := int64(math.MaxInt64)
			for r := i; r <= j; r++ {
				v := cost(i, r-1) + cost(r+1, j)
				if v < best {
					best = v
				}
			}
			c[i][j] = best + prefix[j+1] - prefix[i]
		}
	}
	return c[0][n-1]
}
