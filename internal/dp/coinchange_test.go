package dp

import (
	"strings"
	"testing"

	"lopram/internal/workload"
)

func TestCoinChangeKnownValues(t *testing.T) {
	cases := []struct {
		coins  []int
		amount int
		want   int64
	}{
		{[]int{1, 2, 5}, 11, 3}, // 5+5+1
		{[]int{2}, 3, -1},
		{[]int{1}, 0, 0},
		{[]int{3, 7}, 13, 3}, // 3+3+7
		{[]int{186, 419, 83, 408}, 6249, 20},
	}
	for _, c := range cases {
		if got := CoinChange(c.coins, c.amount); got != c.want {
			t.Errorf("CoinChange(%v, %d) = %d, want %d", c.coins, c.amount, got, c.want)
		}
		spec := NewCoinChange(c.coins, c.amount)
		vals, err := RunSeq(spec)
		if err != nil {
			t.Fatal(err)
		}
		if got := spec.Min(vals); got != c.want {
			t.Errorf("spec CoinChange(%v, %d) = %d, want %d", c.coins, c.amount, got, c.want)
		}
	}
}

func TestCoinChangeParallel(t *testing.T) {
	spec := NewCoinChange([]int{1, 5, 12, 19}, 500)
	g := BuildGraph(spec)
	want, err := RunSeqOn(spec, g)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []int{2, 8} {
		got, err := RunCounter(spec, g, p)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("p=%d: cell %d differs", p, i)
			}
		}
	}
}

func TestCoinChangeChainGeometry(t *testing.T) {
	// With a unit coin present, every amount depends on its predecessor:
	// the poset is a chain regardless of the other denominations.
	spec := NewCoinChange([]int{1, 4, 9}, 50)
	g := BuildGraph(spec)
	pr, err := g.ParallelismProfile()
	if err != nil {
		t.Fatal(err)
	}
	if pr.CriticalPath != 51 || pr.MaxWidth != 1 {
		t.Fatalf("profile = %+v, want chain", pr)
	}
}

func TestCoinChangeRejectsBadInput(t *testing.T) {
	for name, f := range map[string]func(){
		"no coins":      func() { NewCoinChange(nil, 5) },
		"negative":      func() { NewCoinChange([]int{1}, -1) },
		"zero coin":     func() { NewCoinChange([]int{0}, 5) },
		"negative coin": func() { NewCoinChange([]int{-2}, 5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			f()
		}()
	}
}

func TestLongestCommonSubstringKnown(t *testing.T) {
	cases := []struct {
		a, b string
		want int64
	}{
		{"abcdxyz", "xyzabcd", 4},
		{"zxabcdezy", "yzabcdezx", 6},
		{"abc", "def", 0},
		{"", "abc", 0},
		{"same", "same", 4},
	}
	for _, c := range cases {
		if got := LongestCommonSubstring(c.a, c.b); got != c.want {
			t.Errorf("LCSubstr(%q,%q) = %d, want %d", c.a, c.b, got, c.want)
		}
		spec := NewLongestCommonSubstring(c.a, c.b)
		vals, err := RunSeq(spec)
		if err != nil {
			t.Fatal(err)
		}
		if got := spec.Longest(vals); got != c.want {
			t.Errorf("spec LCSubstr(%q,%q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestLongestCommonSubstringRandom(t *testing.T) {
	r := workload.NewRNG(9)
	for trial := 0; trial < 10; trial++ {
		// Plant a known substring inside two random carriers.
		core := workload.String(r, 5+r.Intn(10), 26)
		a := workload.String(r, 10, 3) + core + workload.String(r, 10, 3)
		b := workload.String(r, 8, 3) + core + workload.String(r, 12, 3)
		got := LongestCommonSubstring(a, b)
		if got < int64(len(core)) {
			t.Fatalf("trial %d: got %d, planted %d", trial, got, len(core))
		}
		// Verify the answer is a real common substring via brute scan.
		if !hasCommonSubstring(a, b, int(got)) {
			t.Fatalf("trial %d: claimed length %d not found", trial, got)
		}
		if hasCommonSubstring(a, b, int(got)+1) {
			t.Fatalf("trial %d: longer common substring exists", trial)
		}
		// And the parallel scheduler agrees.
		spec := NewLongestCommonSubstring(a, b)
		g := BuildGraph(spec)
		vals, err := RunCounter(spec, g, 4)
		if err != nil {
			t.Fatal(err)
		}
		if spec.Longest(vals) != got {
			t.Fatalf("trial %d: parallel disagrees", trial)
		}
	}
}

func hasCommonSubstring(a, b string, k int) bool {
	if k == 0 {
		return true
	}
	if k > len(a) {
		return false
	}
	for i := 0; i+k <= len(a); i++ {
		if strings.Contains(b, a[i:i+k]) {
			return true
		}
	}
	return false
}
