package dp

import (
	"testing"
	"testing/quick"

	"lopram/internal/workload"
)

// randomHMM builds a deterministic random model.
func randomHMM(r *workload.RNG, states, symbols int) HMM {
	m := HMM{
		States:  states,
		Symbols: symbols,
		Trans:   make([]int64, states*states),
		Emit:    make([]int64, states*symbols),
		Start:   make([]int64, states),
	}
	for i := range m.Trans {
		m.Trans[i] = int64(1 + r.Intn(20))
	}
	for i := range m.Emit {
		m.Emit[i] = int64(1 + r.Intn(20))
	}
	for i := range m.Start {
		m.Start[i] = int64(r.Intn(10))
	}
	return m
}

func TestLISKnownValues(t *testing.T) {
	cases := []struct {
		data []int
		want int64
	}{
		{[]int{10, 9, 2, 5, 3, 7, 101, 18}, 4},
		{[]int{1, 2, 3, 4}, 4},
		{[]int{4, 3, 2, 1}, 1},
		{[]int{7}, 1},
		{nil, 0},
	}
	for _, c := range cases {
		if got := LIS(c.data); got != c.want {
			t.Errorf("LIS(%v) = %d, want %d", c.data, got, c.want)
		}
	}
}

func TestLISSpecMatchesOracle(t *testing.T) {
	r := workload.NewRNG(1)
	for trial := 0; trial < 10; trial++ {
		data := workload.Ints(r, 30+r.Intn(40), 50)
		spec := NewLIS(data)
		vals, err := RunSeq(spec)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := spec.Length(vals), LIS(data); got != want {
			t.Fatalf("trial %d: spec %d, oracle %d", trial, got, want)
		}
		// And through Algorithm 1.
		g := BuildGraph(spec)
		pv, err := RunCounter(spec, g, 4)
		if err != nil {
			t.Fatal(err)
		}
		if got := spec.Length(pv); got != LIS(data) {
			t.Fatalf("trial %d: parallel %d, oracle %d", trial, got, LIS(data))
		}
	}
}

func TestLPSKnownValues(t *testing.T) {
	cases := map[string]int64{
		"a":       1,
		"aa":      2,
		"ab":      1,
		"bbbab":   4,
		"cbbd":    2,
		"agbdba":  5,
		"racecar": 7,
	}
	for s, want := range cases {
		if got := LPS(s); got != want {
			t.Errorf("LPS(%q) = %d, want %d", s, got, want)
		}
		spec := NewLPS(s)
		vals, err := RunSeq(spec)
		if err != nil {
			t.Fatal(err)
		}
		if got := spec.Length(vals); got != want {
			t.Errorf("spec LPS(%q) = %d, want %d", s, got, want)
		}
	}
}

func TestLPSPalindromeProperty(t *testing.T) {
	// For any s, LPS(s + reverse(s)) == len(s)*2 is false in general, but
	// LPS of a palindrome is its length, and LPS is invariant under
	// reversal. Check both on random strings.
	r := workload.NewRNG(2)
	err := quick.Check(func(seed uint16) bool {
		rr := workload.NewRNG(uint64(seed))
		s := workload.String(rr, 1+rr.Intn(40), 3)
		rev := reverse(s)
		pal := s + rev
		if LPS(pal) < int64(len(s)) { // contains s+rev's mirrored halves
			return false
		}
		return LPS(s) == LPS(rev)
	}, &quick.Config{MaxCount: 50})
	if err != nil {
		t.Fatal(err)
	}
	_ = r
}

func reverse(s string) string {
	b := []byte(s)
	for i, j := 0, len(b)-1; i < j; i, j = i+1, j-1 {
		b[i], b[j] = b[j], b[i]
	}
	return string(b)
}

func TestRodCuttingKnownValue(t *testing.T) {
	// CLRS: prices 1,5,8,9,10,17,17,20 → r(8) = 22.
	prices := []int{1, 5, 8, 9, 10, 17, 17, 20}
	if got := RodCutting(prices); got != 22 {
		t.Fatalf("RodCutting = %d, want 22", got)
	}
	spec := NewRodCutting(prices)
	vals, err := RunSeq(spec)
	if err != nil {
		t.Fatal(err)
	}
	if got := spec.Best(vals); got != 22 {
		t.Fatalf("spec RodCutting = %d, want 22", got)
	}
}

func TestRodCuttingChainGeometry(t *testing.T) {
	// Full fan-in chain: longest chain = cells, width 1, edges = n(n+1)/2.
	spec := NewRodCutting(make([]int, 12))
	g := BuildGraph(spec)
	pr, err := g.ParallelismProfile()
	if err != nil {
		t.Fatal(err)
	}
	if pr.CriticalPath != 13 || pr.MaxWidth != 1 {
		t.Fatalf("profile = %+v, want chain", pr)
	}
	if g.Edges() != 13*12/2 {
		t.Fatalf("edges = %d, want %d", g.Edges(), 13*12/2)
	}
}

func TestViterbiMatchesOracle(t *testing.T) {
	r := workload.NewRNG(3)
	for trial := 0; trial < 10; trial++ {
		states := 2 + r.Intn(6)
		symbols := 2 + r.Intn(4)
		m := randomHMM(r, states, symbols)
		obs := workload.Ints(r, 5+r.Intn(30), symbols)
		spec := NewViterbi(m, obs)
		vals, err := RunSeq(spec)
		if err != nil {
			t.Fatal(err)
		}
		want := Viterbi(m, obs)
		if got := spec.Best(vals); got != want {
			t.Fatalf("trial %d: spec %d, oracle %d", trial, got, want)
		}
		g := BuildGraph(spec)
		pv, err := RunCounter(spec, g, 4)
		if err != nil {
			t.Fatal(err)
		}
		if got := spec.Best(pv); got != want {
			t.Fatalf("trial %d: parallel %d, oracle %d", trial, got, want)
		}
	}
}

func TestViterbiTrellisGeometry(t *testing.T) {
	r := workload.NewRNG(4)
	m := randomHMM(r, 5, 3)
	obs := workload.Ints(r, 20, 3)
	spec := NewViterbi(m, obs)
	g := BuildGraph(spec)
	pr, err := g.ParallelismProfile()
	if err != nil {
		t.Fatal(err)
	}
	if pr.CriticalPath != 20 {
		t.Fatalf("layers = %d, want 20 (one per observation)", pr.CriticalPath)
	}
	if pr.MaxWidth != 5 {
		t.Fatalf("width = %d, want 5 (states)", pr.MaxWidth)
	}
}

func TestNewProblemsRejectEmpty(t *testing.T) {
	for name, f := range map[string]func(){
		"LPS":        func() { NewLPS("") },
		"RodCutting": func() { NewRodCutting(nil) },
		"Viterbi":    func() { NewViterbi(HMM{States: 1, Symbols: 1}, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic on empty input", name)
				}
			}()
			f()
		}()
	}
}
