package dp

import (
	"testing"

	"lopram/internal/palrt"
	"lopram/internal/workload"
)

// specsForTest returns a representative instance of every problem plus the
// oracle answer and the cell holding it.
type testCase struct {
	name   string
	spec   Spec
	answer int64
	cell   int
}

func buildCases(t *testing.T) []testCase {
	t.Helper()
	r := workload.NewRNG(42)

	a, b := workload.RelatedStrings(r, 40, 4, 8)
	ed := NewEditDistance(a, b)

	la, lb := workload.RelatedStrings(r, 35, 3, 10)
	lcs := NewLCS(la, lb)

	dims := workload.ChainDims(r, 12, 5, 40)
	mc := NewMatrixChain(dims)

	ws, vs := workload.Weights(r, 14, 10, 50)
	ks := NewKnapsack(ws, vs, 60)

	bw := workload.BSTFrequencies(r, 12, 20)
	bst := NewOptimalBST(bw)

	const fwN = 7
	adj := make([]int64, fwN*fwN)
	for i := range adj {
		adj[i] = Inf
		if r.Float64() < 0.4 {
			adj[i] = int64(1 + r.Intn(9))
		}
	}
	fw := NewFloydWarshall(fwN, adj)
	fwOracle := FloydWarshall(fwN, fw.Adj)

	data := workload.Int64s(r, 50)
	for i := range data {
		data[i] %= 1000
	}
	ps := NewPrefixSum(data)
	var psWant int64
	for _, v := range data {
		psWant += v
	}

	fib := NewFib(40)

	g := BalancedParens()
	cyk := NewCYK(g, "(()(()))")

	cases := []testCase{
		{"editdist", ed, EditDistance(a, b), ed.Cells() - 1},
		{"lcs", lcs, LCS(la, lb), lcs.Cells() - 1},
		{"matrixchain", mc, MatrixChain(dims), mc.Cells() - 1},
		{"knapsack", ks, Knapsack(ws, vs, 60), ks.Cells() - 1},
		{"optbst", bst, OptimalBST(bw), bst.Cells() - 1},
		{"floydwarshall", fw, fwOracle[fwN*fwN-1-0], fw.Cells() - 1},
		{"prefixsum", ps, psWant, ps.Cells() - 1},
		{"fib", fib, Fib(40), fib.Cells() - 1},
		{"cyk", cyk, 0, cyk.Cells() - 1}, // answer checked via Accepts below
	}
	return cases
}

// TestRunSeqMatchesOracles: the framework, driven purely by each Spec's
// declarative description, reproduces every hand-written DP.
func TestRunSeqMatchesOracles(t *testing.T) {
	for _, c := range buildCases(t) {
		vals, err := RunSeq(c.spec)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		switch c.name {
		case "cyk":
			spec := c.spec.(*CYKSpec)
			if !spec.Accepts(vals) {
				t.Errorf("cyk: balanced input rejected")
			}
			if CYK(spec.G, spec.Input) != spec.Accepts(vals) {
				t.Errorf("cyk: framework disagrees with oracle")
			}
		case "floydwarshall":
			spec := c.spec.(*FloydWarshallSpec)
			want := FloydWarshall(spec.N, spec.Adj)
			got := spec.Dist(vals)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("floydwarshall: dist[%d] = %d, want %d", i, got[i], want[i])
				}
			}
		default:
			if got := vals[c.cell]; got != c.answer {
				t.Errorf("%s: got %d, want %d", c.name, got, c.answer)
			}
		}
	}
}

// TestRunCounterMatchesSeq: Algorithm 1 with p workers computes the same
// table as the sequential sweep, cell for cell, for several p.
func TestRunCounterMatchesSeq(t *testing.T) {
	for _, c := range buildCases(t) {
		g := BuildGraph(c.spec)
		want, err := RunSeqOn(c.spec, g)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range []int{1, 2, 4, 8} {
			got, err := RunCounter(c.spec, g, p)
			if err != nil {
				t.Fatalf("%s p=%d: %v", c.name, p, err)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%s p=%d: cell %d = %d, want %d", c.name, p, i, got[i], want[i])
				}
			}
		}
	}
}

// TestRunLevelsMatchesSeq: the antichain-sweep ablation is also correct.
func TestRunLevelsMatchesSeq(t *testing.T) {
	rt := palrt.New(6)
	for _, c := range buildCases(t) {
		g := BuildGraph(c.spec)
		want, err := RunSeqOn(c.spec, g)
		if err != nil {
			t.Fatal(err)
		}
		got, err := RunLevels(c.spec, g, rt)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s: cell %d = %d, want %d", c.name, i, got[i], want[i])
			}
		}
	}
}

// TestBuildGraphParallelMatches: chunked parallel construction produces the
// same graph as the sequential one.
func TestBuildGraphParallelMatches(t *testing.T) {
	rt := palrt.New(5)
	for _, c := range buildCases(t) {
		g1 := BuildGraph(c.spec)
		g2 := BuildGraphParallel(rt, c.spec)
		if g1.N() != g2.N() || g1.Edges() != g2.Edges() {
			t.Fatalf("%s: graph size mismatch", c.name)
		}
		for v := 0; v < g1.N(); v++ {
			a, b := g1.Succ(v), g2.Succ(v)
			if len(a) != len(b) {
				t.Fatalf("%s: vertex %d degree %d vs %d", c.name, v, len(a), len(b))
			}
			count := map[int32]int{}
			for _, x := range a {
				count[x]++
			}
			for _, x := range b {
				count[x]--
			}
			for _, d := range count {
				if d != 0 {
					t.Fatalf("%s: vertex %d adjacency differs", c.name, v)
				}
			}
		}
	}
}

// TestAntichainGeometry asserts the paper's §4.3 structural claims on the
// concrete problems: diagonals for the 2-D string DPs, lengths for the
// interval DPs, rows for knapsack, a path for prefix sums.
func TestAntichainGeometry(t *testing.T) {
	ed := NewEditDistance("abcde", "xyz") // 6×4 table
	g := BuildGraph(ed)
	lc, err := g.LongestChain()
	if err != nil {
		t.Fatal(err)
	}
	if lc != 6+4-1 {
		t.Errorf("edit distance longest chain = %d, want 9 (anti-diagonals)", lc)
	}

	mc := NewMatrixChain([]int{3, 4, 5, 6, 7, 8}) // 5 matrices
	g = BuildGraph(mc)
	lc, err = g.LongestChain()
	if err != nil {
		t.Fatal(err)
	}
	if lc != 5 {
		t.Errorf("matrix chain longest chain = %d, want 5 (one per length)", lc)
	}
	layers, err := g.Antichains()
	if err != nil {
		t.Fatal(err)
	}
	for l, layer := range layers {
		if len(layer) != 5-l {
			t.Errorf("matrix chain layer %d width = %d, want %d", l, len(layer), 5-l)
		}
	}

	ks := NewKnapsack([]int{2, 3}, []int{10, 20}, 5) // 3 rows × 6 cols
	g = BuildGraph(ks)
	lc, err = g.LongestChain()
	if err != nil {
		t.Fatal(err)
	}
	if lc != 3 {
		t.Errorf("knapsack longest chain = %d, want 3 (rows are antichains)", lc)
	}

	ps := NewPrefixSum(make([]int64, 20))
	g = BuildGraph(ps)
	pr, err := g.ParallelismProfile()
	if err != nil {
		t.Fatal(err)
	}
	if pr.CriticalPath != 20 || pr.MaxWidth != 1 {
		t.Errorf("prefix sum profile = %+v, want pure chain", pr)
	}
}

func TestEditDistanceOracleKnownValues(t *testing.T) {
	cases := []struct {
		a, b string
		want int64
	}{
		{"", "", 0},
		{"", "abc", 3},
		{"abc", "", 3},
		{"kitten", "sitting", 3},
		{"flaw", "lawn", 2},
		{"same", "same", 0},
	}
	for _, c := range cases {
		if got := EditDistance(c.a, c.b); got != c.want {
			t.Errorf("EditDistance(%q,%q) = %d, want %d", c.a, c.b, got, c.want)
		}
		spec := NewEditDistance(c.a, c.b)
		vals, err := RunSeq(spec)
		if err != nil {
			t.Fatal(err)
		}
		if got := spec.Distance(vals); got != c.want {
			t.Errorf("spec EditDistance(%q,%q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestLCSOracleKnownValues(t *testing.T) {
	cases := []struct {
		a, b string
		want int64
	}{
		{"abcbdab", "bdcaba", 4},
		{"", "abc", 0},
		{"abc", "abc", 3},
		{"abc", "def", 0},
	}
	for _, c := range cases {
		if got := LCS(c.a, c.b); got != c.want {
			t.Errorf("LCS(%q,%q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestMatrixChainKnownValue(t *testing.T) {
	// CLRS example: dims 30,35,15,5,10,20,25 → 15125.
	dims := []int{30, 35, 15, 5, 10, 20, 25}
	if got := MatrixChain(dims); got != 15125 {
		t.Errorf("MatrixChain = %d, want 15125", got)
	}
	spec := NewMatrixChain(dims)
	vals, err := RunSeq(spec)
	if err != nil {
		t.Fatal(err)
	}
	if got := spec.OptimalCost(vals); got != 15125 {
		t.Errorf("spec MatrixChain = %d, want 15125", got)
	}
}

func TestKnapsackKnownValue(t *testing.T) {
	// Classic: capacity 10, items (w,v): (5,10),(4,40),(6,30),(3,50) → 90.
	w := []int{5, 4, 6, 3}
	v := []int{10, 40, 30, 50}
	if got := Knapsack(w, v, 10); got != 90 {
		t.Errorf("Knapsack = %d, want 90", got)
	}
}

func TestOptimalBSTKnownValue(t *testing.T) {
	// Weights 34, 8, 50: optimal tree roots 34 high... verified by
	// exhaustive enumeration below.
	weights := []int{34, 8, 50}
	want := bstExhaustive(weights, 0, 2, 1)
	if got := OptimalBST(weights); got != want {
		t.Errorf("OptimalBST = %d, want %d", got, want)
	}
}

// bstExhaustive returns the minimum total weighted depth over all BST shapes
// (depth counted from 1 at the root).
func bstExhaustive(w []int, i, j, depth int) int64 {
	if i > j {
		return 0
	}
	best := int64(1) << 62
	for r := i; r <= j; r++ {
		c := int64(w[r])*int64(depth) +
			bstExhaustive(w, i, r-1, depth+1) +
			bstExhaustive(w, r+1, j, depth+1)
		if c < best {
			best = c
		}
	}
	return best
}

func TestOptimalBSTMatchesExhaustive(t *testing.T) {
	r := workload.NewRNG(77)
	for trial := 0; trial < 20; trial++ {
		n := 1 + r.Intn(8)
		w := workload.BSTFrequencies(r, n, 30)
		want := bstExhaustive(w, 0, n-1, 1)
		if got := OptimalBST(w); got != want {
			t.Fatalf("weights %v: OptimalBST = %d, exhaustive = %d", w, got, want)
		}
	}
}

func TestCYKKnownStrings(t *testing.T) {
	g := BalancedParens()
	for s, want := range map[string]bool{
		"()":       true,
		"(())":     true,
		"()()":     true,
		"(()())":   true,
		"(":        false,
		")(":       false,
		"())":      false,
		"((()))((": false,
	} {
		if got := CYK(g, s); got != want {
			t.Errorf("CYK(%q) = %v, want %v", s, got, want)
		}
		spec := NewCYK(g, s)
		vals, err := RunSeq(spec)
		if err != nil {
			t.Fatal(err)
		}
		if got := spec.Accepts(vals); got != want {
			t.Errorf("spec CYK(%q) = %v, want %v", s, got, want)
		}
	}
}

func TestFloydWarshallTriangleInequality(t *testing.T) {
	r := workload.NewRNG(88)
	const n = 10
	adj := make([]int64, n*n)
	for i := range adj {
		adj[i] = Inf
		if r.Float64() < 0.3 {
			adj[i] = int64(1 + r.Intn(20))
		}
	}
	d := FloydWarshall(n, adj)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			for k := 0; k < n; k++ {
				if d[i*n+k] < Inf && d[k*n+j] < Inf && d[i*n+j] > d[i*n+k]+d[k*n+j] {
					t.Fatalf("triangle inequality violated at (%d,%d,%d)", i, j, k)
				}
			}
		}
	}
}

func TestIntervalIndexRoundTrip(t *testing.T) {
	for _, n := range []int{1, 2, 5, 13} {
		ix := newIntervalIndex(n)
		if ix.cells() != n*(n+1)/2 {
			t.Fatalf("n=%d: cells = %d", n, ix.cells())
		}
		seen := map[int]bool{}
		for i := 0; i < n; i++ {
			for j := i; j < n; j++ {
				id := ix.id(i, j)
				if seen[id] {
					t.Fatalf("n=%d: duplicate id %d", n, id)
				}
				seen[id] = true
				gi, gj := ix.interval(id)
				if gi != i || gj != j {
					t.Fatalf("n=%d: roundtrip (%d,%d) → %d → (%d,%d)", n, i, j, id, gi, gj)
				}
			}
		}
	}
}

func TestIntervalIndexLengthMajorIsTopological(t *testing.T) {
	// Every interval's dependencies have smaller packed ids.
	spec := NewMatrixChain([]int{2, 3, 4, 5, 6, 7, 8, 9})
	for v := 0; v < spec.Cells(); v++ {
		for _, d := range spec.Deps(v, nil) {
			if d >= v {
				t.Fatalf("dep %d of cell %d not earlier in packed order", d, v)
			}
		}
	}
}
