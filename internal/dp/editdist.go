package dp

// EditDistanceSpec is the Levenshtein distance DP over the (len(A)+1) ×
// (len(B)+1) table: the prototypical two-dimensional DP of §4.3, whose
// dependency DAG has the anti-diagonals as antichains ("most common examples
// of two dimensional tables ... there is row, column or diagonal order which
// allows for a high degree of parallelism").
type EditDistanceSpec struct {
	A, B       string
	rows, cols int
}

// NewEditDistance returns the spec for strings a and b.
func NewEditDistance(a, b string) *EditDistanceSpec {
	return &EditDistanceSpec{A: a, B: b, rows: len(a) + 1, cols: len(b) + 1}
}

// Cells returns (len(A)+1)·(len(B)+1).
func (s *EditDistanceSpec) Cells() int { return s.rows * s.cols }

// Deps lists the up, left and diagonal neighbours.
func (s *EditDistanceSpec) Deps(v int, buf []int) []int {
	i, j := v/s.cols, v%s.cols
	if i > 0 {
		buf = append(buf, v-s.cols)
	}
	if j > 0 {
		buf = append(buf, v-1)
	}
	if i > 0 && j > 0 {
		buf = append(buf, v-s.cols-1)
	}
	return buf
}

// Compute evaluates the Levenshtein recurrence at cell v.
func (s *EditDistanceSpec) Compute(v int, get func(int) int64) int64 {
	i, j := v/s.cols, v%s.cols
	switch {
	case i == 0:
		return int64(j)
	case j == 0:
		return int64(i)
	}
	sub := get(v - s.cols - 1)
	if s.A[i-1] != s.B[j-1] {
		sub++
	}
	del := get(v-s.cols) + 1
	ins := get(v-1) + 1
	best := sub
	if del < best {
		best = del
	}
	if ins < best {
		best = ins
	}
	return best
}

// Cost charges one unit per cell.
func (s *EditDistanceSpec) Cost(int) int64 { return 1 }

// Distance extracts the final answer from a computed table.
func (s *EditDistanceSpec) Distance(vals []int64) int64 {
	return vals[len(vals)-1]
}

// EditDistance is the direct two-row sequential oracle.
func EditDistance(a, b string) int64 {
	prev := make([]int64, len(b)+1)
	cur := make([]int64, len(b)+1)
	for j := range prev {
		prev[j] = int64(j)
	}
	for i := 1; i <= len(a); i++ {
		cur[0] = int64(i)
		for j := 1; j <= len(b); j++ {
			sub := prev[j-1]
			if a[i-1] != b[j-1] {
				sub++
			}
			best := sub
			if d := prev[j] + 1; d < best {
				best = d
			}
			if d := cur[j-1] + 1; d < best {
				best = d
			}
			cur[j] = best
		}
		prev, cur = cur, prev
	}
	return prev[len(b)]
}

// LCSSpec is the longest-common-subsequence DP: identical table shape to
// edit distance with a max-recurrence instead of min.
type LCSSpec struct {
	A, B       string
	rows, cols int
}

// NewLCS returns the spec for strings a and b.
func NewLCS(a, b string) *LCSSpec {
	return &LCSSpec{A: a, B: b, rows: len(a) + 1, cols: len(b) + 1}
}

// Cells returns (len(A)+1)·(len(B)+1).
func (s *LCSSpec) Cells() int { return s.rows * s.cols }

// Deps lists the up, left and diagonal neighbours.
func (s *LCSSpec) Deps(v int, buf []int) []int {
	i, j := v/s.cols, v%s.cols
	if i > 0 && j > 0 {
		buf = append(buf, v-s.cols-1)
	}
	if i > 0 {
		buf = append(buf, v-s.cols)
	}
	if j > 0 {
		buf = append(buf, v-1)
	}
	return buf
}

// Compute evaluates the LCS recurrence at cell v.
func (s *LCSSpec) Compute(v int, get func(int) int64) int64 {
	i, j := v/s.cols, v%s.cols
	if i == 0 || j == 0 {
		return 0
	}
	if s.A[i-1] == s.B[j-1] {
		return get(v-s.cols-1) + 1
	}
	up := get(v - s.cols)
	left := get(v - 1)
	if up > left {
		return up
	}
	return left
}

// Cost charges one unit per cell.
func (s *LCSSpec) Cost(int) int64 { return 1 }

// Length extracts the final answer from a computed table.
func (s *LCSSpec) Length(vals []int64) int64 { return vals[len(vals)-1] }

// LCS is the direct sequential oracle.
func LCS(a, b string) int64 {
	prev := make([]int64, len(b)+1)
	cur := make([]int64, len(b)+1)
	for i := 1; i <= len(a); i++ {
		for j := 1; j <= len(b); j++ {
			switch {
			case a[i-1] == b[j-1]:
				cur[j] = prev[j-1] + 1
			case prev[j] >= cur[j-1]:
				cur[j] = prev[j]
			default:
				cur[j] = cur[j-1]
			}
		}
		prev, cur = cur, prev
		for j := range cur {
			cur[j] = 0
		}
	}
	return prev[len(b)]
}
