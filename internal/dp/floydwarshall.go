package dp

// FloydWarshallSpec is all-pairs shortest paths as an explicit 3-D DP:
// cell (k,i,j) is the shortest i→j distance using intermediate vertices
// < k. Layer k is a full n×n antichain (every cell of layer k depends only
// on layer k-1), so the DAG's longest chain has exactly n+1 layers — the
// canonical example of a d-dimensional table (d = 3) from §4.4 with m = 3.
//
// Inf encodes "no edge"; the spec saturates additions so Inf never
// overflows.
type FloydWarshallSpec struct {
	N      int
	Adj    []int64 // n×n row-major edge weights, Inf for absent edges
	layers int
}

// Inf is the missing-edge marker. Values must stay below Inf/2 to avoid
// saturation artifacts.
const Inf = int64(1) << 60

// NewFloydWarshall returns the spec for the given adjacency matrix (n×n
// row-major; diagonal entries are forced to 0).
func NewFloydWarshall(n int, adj []int64) *FloydWarshallSpec {
	if len(adj) != n*n {
		panic("dp: adjacency matrix size mismatch")
	}
	a := append([]int64(nil), adj...)
	for i := 0; i < n; i++ {
		a[i*n+i] = 0
	}
	return &FloydWarshallSpec{N: n, Adj: a, layers: n + 1}
}

// Cells returns (n+1)·n².
func (s *FloydWarshallSpec) Cells() int { return s.layers * s.N * s.N }

func (s *FloydWarshallSpec) decode(v int) (k, i, j int) {
	n := s.N
	k = v / (n * n)
	r := v % (n * n)
	return k, r / n, r % n
}

// Deps lists (k-1,i,j), (k-1,i,k-1) and (k-1,k-1,j) for k > 0.
func (s *FloydWarshallSpec) Deps(v int, buf []int) []int {
	k, i, j := s.decode(v)
	if k == 0 {
		return buf
	}
	n := s.N
	base := (k - 1) * n * n
	buf = append(buf, base+i*n+j)
	if d := base + i*n + (k - 1); d != base+i*n+j {
		buf = append(buf, d)
	}
	if d := base + (k-1)*n + j; d != base+i*n+j && d != base+i*n+(k-1) {
		buf = append(buf, d)
	}
	return buf
}

// Compute evaluates min(d, through) with saturating addition.
func (s *FloydWarshallSpec) Compute(v int, get func(int) int64) int64 {
	k, i, j := s.decode(v)
	n := s.N
	if k == 0 {
		return s.Adj[i*n+j]
	}
	base := (k - 1) * n * n
	d := get(base + i*n + j)
	a := get(base + i*n + (k - 1))
	b := get(base + (k-1)*n + j)
	if a < Inf && b < Inf && a+b < d {
		d = a + b
	}
	return d
}

// Cost charges one unit per cell.
func (s *FloydWarshallSpec) Cost(int) int64 { return 1 }

// Dist extracts the final distance matrix (layer n) from a computed table.
func (s *FloydWarshallSpec) Dist(vals []int64) []int64 {
	n := s.N
	out := make([]int64, n*n)
	copy(out, vals[(s.layers-1)*n*n:])
	return out
}

// FloydWarshall is the classic in-place O(n³) sequential oracle.
func FloydWarshall(n int, adj []int64) []int64 {
	d := append([]int64(nil), adj...)
	for i := 0; i < n; i++ {
		d[i*n+i] = 0
	}
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			dik := d[i*n+k]
			if dik >= Inf {
				continue
			}
			for j := 0; j < n; j++ {
				if dkj := d[k*n+j]; dkj < Inf && dik+dkj < d[i*n+j] {
					d[i*n+j] = dik + dkj
				}
			}
		}
	}
	return d
}
