package dp

// This file holds the degenerate one-dimensional DPs of §4.3: "in certain
// cases, such as one dimensional dynamic programming, the DAG is a path and
// hence there is no speedup possible". Experiment E9 runs them through the
// same framework as the 2-D problems and verifies the predicted flat
// speedup.

// PrefixSumSpec is the pure path DAG: cell i depends only on cell i-1 and
// accumulates Data[i]. Longest chain = number of cells; every antichain is a
// singleton.
type PrefixSumSpec struct {
	Data []int64
}

// NewPrefixSum returns the spec over the given values.
func NewPrefixSum(data []int64) *PrefixSumSpec { return &PrefixSumSpec{Data: data} }

// Cells returns len(Data).
func (s *PrefixSumSpec) Cells() int { return len(s.Data) }

// Deps lists the predecessor cell.
func (s *PrefixSumSpec) Deps(v int, buf []int) []int {
	if v > 0 {
		buf = append(buf, v-1)
	}
	return buf
}

// Compute accumulates the running sum.
func (s *PrefixSumSpec) Compute(v int, get func(int) int64) int64 {
	if v == 0 {
		return s.Data[0]
	}
	return get(v-1) + s.Data[v]
}

// Cost charges one unit per cell.
func (s *PrefixSumSpec) Cost(int) int64 { return 1 }

// FibSpec is the Fibonacci recurrence F(i) = F(i-1) + F(i-2) (mod 2^62 to
// avoid overflow for large indices): almost a path — cell i and cell i+1 are
// always comparable, so the longest chain still equals the cell count.
type FibSpec struct {
	N int
}

// NewFib returns the spec computing F(0..n).
func NewFib(n int) *FibSpec {
	if n < 0 {
		panic("dp: negative Fibonacci index")
	}
	return &FibSpec{N: n}
}

const fibMod = int64(1) << 62

// Cells returns N+1.
func (s *FibSpec) Cells() int { return s.N + 1 }

// Deps lists i-1 and i-2.
func (s *FibSpec) Deps(v int, buf []int) []int {
	if v >= 1 {
		buf = append(buf, v-1)
	}
	if v >= 2 {
		buf = append(buf, v-2)
	}
	return buf
}

// Compute evaluates the recurrence.
func (s *FibSpec) Compute(v int, get func(int) int64) int64 {
	if v < 2 {
		return int64(v)
	}
	return (get(v-1) + get(v-2)) % fibMod
}

// Cost charges one unit per cell.
func (s *FibSpec) Cost(int) int64 { return 1 }

// Fib is the direct sequential oracle (same modulus).
func Fib(n int) int64 {
	if n < 2 {
		return int64(n)
	}
	a, b := int64(0), int64(1)
	for i := 2; i <= n; i++ {
		a, b = b, (a+b)%fibMod
	}
	return b
}
