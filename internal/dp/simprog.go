package dp

import (
	"lopram/internal/dag"
	"lopram/internal/sim"
)

// SimOptions configure the simulated Algorithm 1 run.
type SimOptions struct {
	// CrewCounters charges ⌈log₂ p⌉ work units per dependent-counter
	// update instead of 1, modelling the CRCW-on-CREW serialization of
	// §4.6 (concurrent updates to a popular cell's counter must combine
	// through a log-depth tree).
	CrewCounters bool
	// P must mirror the machine's processor count when CrewCounters is
	// set; it sizes the log factor.
	P int
}

// Program returns a simulator program that executes the spec with
// Algorithm 1 verbatim: the root thread pal-spawns (nowait) one thread per
// base case; each computeVertex thread performs the cell's work, decrements
// its dependents' counters, and pal-spawns (nowait) every dependent that
// becomes ready. The machine's own scheduler throttles the spawned threads
// to the available processors, exactly as §4.4 intends.
//
// The returned vals slice is filled in during the run; inspect it after
// Machine.Run returns.
//
// The program carries per-run counter state and is therefore single-use:
// build a fresh one for every Machine.Run call.
func Program(s Spec, g *dag.Graph, opt SimOptions) (prog sim.Func, vals []int64) {
	n := g.N()
	vals = make([]int64, n)
	cnt := g.InDegrees()
	get := func(x int) int64 { return vals[x] }

	updateCost := int64(1)
	if opt.CrewCounters {
		updateCost = ceilLog2(opt.P)
	}

	var computeVertex func(u int) sim.Func
	computeVertex = func(u int) sim.Func {
		return func(tc *sim.TC) {
			tc.Work(s.Cost(u))
			vals[u] = s.Compute(u, get)
			succ := g.Succ(u)
			if len(succ) == 0 {
				return
			}
			tc.Work(updateCost * int64(len(succ)))
			var ready []sim.Func
			for _, v := range succ {
				cnt[v]--
				if cnt[v] == 0 {
					ready = append(ready, computeVertex(int(v)))
				}
			}
			tc.Spawn(ready...)
		}
	}

	prog = func(tc *sim.TC) {
		src := g.Sources()
		kids := make([]sim.Func, len(src))
		for i, u := range src {
			kids[i] = computeVertex(u)
		}
		tc.Spawn(kids...)
	}
	return prog, vals
}

// BuildProgram returns a simulator program modelling the parallel
// construction of the dependencies graph (§4.4): the cell range is split
// into p chunks, each charged Σ (1 + |Deps(v)|) work — one unit to locate
// the vertex and one per recorded dependency. Its wall-clock is the
// O(m·n^d/p) bound of the paper (experiment E14).
func BuildProgram(s Spec, p int) sim.Func {
	n := s.Cells()
	return func(tc *sim.TC) {
		per := (n + p - 1) / p
		var jobs []sim.Func
		buf := make([]int, 0, 8)
		for lo := 0; lo < n; lo += per {
			hi := lo + per
			if hi > n {
				hi = n
			}
			var work int64
			for v := lo; v < hi; v++ {
				buf = s.Deps(v, buf[:0])
				work += 1 + int64(len(buf))
			}
			w := work
			jobs = append(jobs, func(tc *sim.TC) { tc.Work(w) })
		}
		tc.Do(jobs...)
	}
}

func ceilLog2(p int) int64 {
	if p <= 1 {
		return 1
	}
	l := int64(0)
	for v := p - 1; v > 0; v >>= 1 {
		l++
	}
	return l
}
