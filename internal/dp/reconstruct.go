package dp

import (
	"fmt"
	"strings"
)

// Solution reconstruction (§4.2's step (iii): "recovery of the actual
// solution from the computed cost together with other ancillary
// information"). Each reconstructor walks a computed table backwards,
// re-deriving the argmin/argmax choices — no extra state is stored during
// the forward pass, so the parallel schedulers need no changes.

// EditOp is one operation of an edit script.
type EditOp struct {
	// Kind is "match", "sub", "del" or "ins".
	Kind string
	// I and J are the positions in A and B the operation consumes
	// (1-based; 0 when the string is not consumed).
	I, J int
}

// EditScript reconstructs a minimal edit script from a computed
// edit-distance table. The script length equals the distance plus the number
// of matches, and applying it to A yields B (verified by the tests).
func (s *EditDistanceSpec) EditScript(vals []int64) []EditOp {
	i, j := s.rows-1, s.cols-1
	var rev []EditOp
	at := func(i, j int) int64 { return vals[i*s.cols+j] }
	for i > 0 || j > 0 {
		switch {
		case i > 0 && j > 0 && s.A[i-1] == s.B[j-1] && at(i, j) == at(i-1, j-1):
			rev = append(rev, EditOp{Kind: "match", I: i, J: j})
			i, j = i-1, j-1
		case i > 0 && j > 0 && at(i, j) == at(i-1, j-1)+1:
			rev = append(rev, EditOp{Kind: "sub", I: i, J: j})
			i, j = i-1, j-1
		case i > 0 && at(i, j) == at(i-1, j)+1:
			rev = append(rev, EditOp{Kind: "del", I: i})
			i--
		default:
			rev = append(rev, EditOp{Kind: "ins", J: j})
			j--
		}
	}
	for l, r := 0, len(rev)-1; l < r; l, r = l+1, r-1 {
		rev[l], rev[r] = rev[r], rev[l]
	}
	return rev
}

// ApplyEditScript applies ops to a and returns the result; a convenience for
// validating reconstructed scripts.
func (s *EditDistanceSpec) ApplyEditScript(ops []EditOp) (string, error) {
	var out strings.Builder
	for _, op := range ops {
		switch op.Kind {
		case "match":
			out.WriteByte(s.A[op.I-1])
		case "sub", "ins":
			out.WriteByte(s.B[op.J-1])
		case "del":
			// consumes A[op.I-1], emits nothing
		default:
			return "", fmt.Errorf("dp: unknown edit op %q", op.Kind)
		}
	}
	return out.String(), nil
}

// Parenthesization reconstructs the optimal association order from a
// computed matrix-chain table, e.g. "((A1 A2) A3)".
func (s *MatrixChainSpec) Parenthesization(vals []int64) string {
	var build func(i, j int) string
	build = func(i, j int) string {
		if i == j {
			return fmt.Sprintf("A%d", i+1)
		}
		di := int64(s.Dims[i])
		dj := int64(s.Dims[j+1])
		want := vals[s.ix.id(i, j)]
		for k := i; k < j; k++ {
			c := vals[s.ix.id(i, k)] + vals[s.ix.id(k+1, j)] +
				di*int64(s.Dims[k+1])*dj
			if c == want {
				return "(" + build(i, k) + " " + build(k+1, j) + ")"
			}
		}
		// Unreachable on a consistent table.
		panic("dp: inconsistent matrix-chain table")
	}
	return build(0, len(s.Dims)-2)
}

// Items reconstructs one optimal item set from a computed knapsack table,
// returned as 0-based item indices in increasing order.
func (s *KnapsackSpec) Items(vals []int64) []int {
	var picked []int
	w := s.W
	at := func(i, w int) int64 { return vals[i*s.cols+w] }
	for i := len(s.Weights); i > 0; i-- {
		if at(i, w) != at(i-1, w) {
			picked = append(picked, i-1)
			w -= s.Weights[i-1]
		}
	}
	for l, r := 0, len(picked)-1; l < r; l, r = l+1, r-1 {
		picked[l], picked[r] = picked[r], picked[l]
	}
	return picked
}

// Subsequence reconstructs one longest increasing subsequence (as values)
// from a computed LIS table.
func (s *LISSpec) Subsequence(vals []int64) []int {
	// Find the cell achieving the maximum, preferring the earliest.
	best, bestIdx := int64(0), -1
	for i, v := range vals {
		if v > best {
			best, bestIdx = v, i
		}
	}
	if bestIdx < 0 {
		return nil
	}
	var rev []int
	i, need := bestIdx, best
	for i >= 0 {
		if vals[i] == need {
			rev = append(rev, s.Data[i])
			need--
			if need == 0 {
				break
			}
			// Continue leftwards for a smaller value with length
			// need.
			limit := s.Data[i]
			j := i - 1
			for j >= 0 && !(vals[j] == need && s.Data[j] < limit) {
				j--
			}
			i = j
			continue
		}
		i--
	}
	for l, r := 0, len(rev)-1; l < r; l, r = l+1, r-1 {
		rev[l], rev[r] = rev[r], rev[l]
	}
	return rev
}

// Cuts reconstructs one optimal cut multiset (piece lengths, ascending) from
// a computed rod-cutting table.
func (s *RodCuttingSpec) Cuts(vals []int64) []int {
	var cuts []int
	l := len(s.Prices)
	for l > 0 {
		for k := 1; k <= l; k++ {
			if vals[l] == int64(s.Prices[k-1])+vals[l-k] {
				cuts = append(cuts, k)
				l -= k
				break
			}
		}
	}
	// ascending order for determinism
	for i := 1; i < len(cuts); i++ {
		v := cuts[i]
		j := i - 1
		for j >= 0 && cuts[j] > v {
			cuts[j+1] = cuts[j]
			j--
		}
		cuts[j+1] = v
	}
	return cuts
}

// Path reconstructs one cheapest state sequence from a computed Viterbi
// table.
func (s *ViterbiSpec) Path(vals []int64) []int {
	T := len(s.Obs)
	states := s.M.States
	path := make([]int, T)
	// Final state: the cheapest cell of the last layer.
	last := (T - 1) * states
	best := vals[last]
	path[T-1] = 0
	for j := 1; j < states; j++ {
		if vals[last+j] < best {
			best = vals[last+j]
			path[T-1] = j
		}
	}
	// Walk backwards matching the recurrence.
	for t := T - 1; t > 0; t-- {
		cur := path[t]
		emit := s.M.Emit[cur*s.M.Symbols+s.Obs[t]]
		target := vals[t*states+cur] - emit
		base := (t - 1) * states
		for j := 0; j < states; j++ {
			if vals[base+j]+s.M.Trans[j*states+cur] == target {
				path[t-1] = j
				break
			}
		}
	}
	return path
}

// PathCost returns the total cost of a state sequence under the model; used
// to validate reconstructed paths.
func (s *ViterbiSpec) PathCost(path []int) int64 {
	cost := s.M.Start[path[0]] + s.M.Emit[path[0]*s.M.Symbols+s.Obs[0]]
	for t := 1; t < len(path); t++ {
		cost += s.M.Trans[path[t-1]*s.M.States+path[t]]
		cost += s.M.Emit[path[t]*s.M.Symbols+s.Obs[t]]
	}
	return cost
}
