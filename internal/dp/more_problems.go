package dp

import "math"

// This file extends the §4.2 problem catalogue with DPs whose dependency
// geometries differ from the diagonal/row/interval families already covered:
//
//   - LIS: triangular dependencies (cell i reads all j < i with a guard),
//     a wide-fan-in DAG whose antichain structure depends on the data;
//   - LPS (longest palindromic subsequence): an interval DP with constant
//     fan-in, contrasting matrix chain's linear fan-in;
//   - RodCutting: a chain with full fan-in — maximal m per cell, the
//     worst case for §4.6's counter-update accounting;
//   - Viterbi: a layered trellis (one antichain per observation step),
//     the standard HMM decoding workload.

// LISSpec is the O(n²) longest-increasing-subsequence DP: cell i holds the
// length of the longest increasing subsequence ending at element i.
type LISSpec struct {
	Data []int
}

// NewLIS returns the spec over the given sequence.
func NewLIS(data []int) *LISSpec { return &LISSpec{Data: data} }

// Cells returns len(Data).
func (s *LISSpec) Cells() int { return len(s.Data) }

// Deps lists every earlier index with a smaller value. (Dependencies could
// be pruned to the guard-passing subset, but the paper's construction wires
// the recurrence as written; the scheduler tolerates over-approximation.)
func (s *LISSpec) Deps(v int, buf []int) []int {
	for j := 0; j < v; j++ {
		if s.Data[j] < s.Data[v] {
			buf = append(buf, j)
		}
	}
	return buf
}

// Compute evaluates 1 + max over qualifying predecessors.
func (s *LISSpec) Compute(v int, get func(int) int64) int64 {
	best := int64(0)
	for j := 0; j < v; j++ {
		if s.Data[j] < s.Data[v] {
			if l := get(j); l > best {
				best = l
			}
		}
	}
	return best + 1
}

// Cost charges the predecessor scan.
func (s *LISSpec) Cost(v int) int64 {
	if v == 0 {
		return 1
	}
	return int64(v)
}

// Length extracts the LIS length from a computed table.
func (s *LISSpec) Length(vals []int64) int64 {
	var best int64
	for _, v := range vals {
		if v > best {
			best = v
		}
	}
	return best
}

// LIS is the direct O(n²) sequential oracle.
func LIS(data []int) int64 {
	if len(data) == 0 {
		return 0
	}
	dp := make([]int64, len(data))
	var best int64
	for i := range data {
		dp[i] = 1
		for j := 0; j < i; j++ {
			if data[j] < data[i] && dp[j]+1 > dp[i] {
				dp[i] = dp[j] + 1
			}
		}
		if dp[i] > best {
			best = dp[i]
		}
	}
	return best
}

// LPSSpec is the longest-palindromic-subsequence interval DP: cell (i,j)
// holds the LPS length of s[i..j]; fan-in is at most three.
type LPSSpec struct {
	S  string
	ix *intervalIndex
}

// NewLPS returns the spec for s (non-empty).
func NewLPS(s string) *LPSSpec {
	if len(s) == 0 {
		panic("dp: LPS needs a non-empty string")
	}
	return &LPSSpec{S: s, ix: newIntervalIndex(len(s))}
}

// Cells returns n(n+1)/2.
func (s *LPSSpec) Cells() int { return s.ix.cells() }

// Deps lists (i+1,j), (i,j-1) and, on a character match, (i+1,j-1).
func (s *LPSSpec) Deps(v int, buf []int) []int {
	i, j := s.ix.interval(v)
	if i == j {
		return buf
	}
	if s.S[i] == s.S[j] {
		if i+1 <= j-1 {
			buf = append(buf, s.ix.id(i+1, j-1))
		}
		return buf
	}
	buf = append(buf, s.ix.id(i+1, j), s.ix.id(i, j-1))
	return buf
}

// Compute evaluates the palindromic recurrence.
func (s *LPSSpec) Compute(v int, get func(int) int64) int64 {
	i, j := s.ix.interval(v)
	if i == j {
		return 1
	}
	if s.S[i] == s.S[j] {
		if i+1 > j-1 {
			return 2
		}
		return get(s.ix.id(i+1, j-1)) + 2
	}
	a := get(s.ix.id(i+1, j))
	b := get(s.ix.id(i, j-1))
	if a > b {
		return a
	}
	return b
}

// Cost charges one unit per cell.
func (s *LPSSpec) Cost(int) int64 { return 1 }

// Length extracts the full-string answer from a computed table.
func (s *LPSSpec) Length(vals []int64) int64 {
	return vals[s.ix.id(0, len(s.S)-1)]
}

// LPS is the direct O(n²) sequential oracle.
func LPS(str string) int64 {
	n := len(str)
	if n == 0 {
		return 0
	}
	tab := make([][]int64, n)
	for i := range tab {
		tab[i] = make([]int64, n)
		tab[i][i] = 1
	}
	for l := 1; l < n; l++ {
		for i := 0; i+l < n; i++ {
			j := i + l
			switch {
			case str[i] == str[j] && l == 1:
				tab[i][j] = 2
			case str[i] == str[j]:
				tab[i][j] = tab[i+1][j-1] + 2
			case tab[i+1][j] >= tab[i][j-1]:
				tab[i][j] = tab[i+1][j]
			default:
				tab[i][j] = tab[i][j-1]
			}
		}
	}
	return tab[0][n-1]
}

// RodCuttingSpec is the rod-cutting DP: cell l holds the best revenue for a
// rod of length l given Prices[k] for a piece of length k+1. Cell l depends
// on every shorter cell — a chain poset with maximal fan-in, the stress case
// for counter updates (§4.6): m grows with n while the parallelism stays 1.
type RodCuttingSpec struct {
	Prices []int
}

// NewRodCutting returns the spec for rods up to len(prices).
func NewRodCutting(prices []int) *RodCuttingSpec {
	if len(prices) == 0 {
		panic("dp: rod cutting needs at least one price")
	}
	return &RodCuttingSpec{Prices: prices}
}

// Cells returns len(Prices)+1 (lengths 0..n).
func (s *RodCuttingSpec) Cells() int { return len(s.Prices) + 1 }

// Deps lists all shorter lengths.
func (s *RodCuttingSpec) Deps(v int, buf []int) []int {
	for j := 0; j < v; j++ {
		buf = append(buf, j)
	}
	return buf
}

// Compute maximizes price[k] + best(l-k-1) over first-cut sizes.
func (s *RodCuttingSpec) Compute(v int, get func(int) int64) int64 {
	if v == 0 {
		return 0
	}
	best := int64(math.MinInt64)
	for k := 1; k <= v; k++ {
		if r := int64(s.Prices[k-1]) + get(v-k); r > best {
			best = r
		}
	}
	return best
}

// Cost charges the cut loop.
func (s *RodCuttingSpec) Cost(v int) int64 {
	if v == 0 {
		return 1
	}
	return int64(v)
}

// Best extracts the full-length revenue from a computed table.
func (s *RodCuttingSpec) Best(vals []int64) int64 { return vals[len(vals)-1] }

// RodCutting is the direct O(n²) sequential oracle.
func RodCutting(prices []int) int64 {
	n := len(prices)
	r := make([]int64, n+1)
	for l := 1; l <= n; l++ {
		best := int64(math.MinInt64)
		for k := 1; k <= l; k++ {
			if v := int64(prices[k-1]) + r[l-k]; v > best {
				best = v
			}
		}
		r[l] = best
	}
	return r[n]
}

// HMM is a hidden Markov model with integer negative-log-probability
// weights (min-sum semiring keeps the DP exact).
type HMM struct {
	States int
	// Trans[i*States+j] is the cost of moving from state i to state j.
	Trans []int64
	// Emit[s*Symbols+o] is the cost of state s emitting symbol o.
	Emit    []int64
	Symbols int
	// Start[s] is the cost of starting in state s.
	Start []int64
}

// ViterbiSpec is min-cost HMM decoding as a layered trellis DP: cell (t,s)
// is the cheapest cost of any state path explaining observations[0..t] and
// ending in state s. Layer t is a full antichain of States cells.
type ViterbiSpec struct {
	M   HMM
	Obs []int
}

// NewViterbi returns the spec decoding obs under m.
func NewViterbi(m HMM, obs []int) *ViterbiSpec {
	if len(obs) == 0 {
		panic("dp: Viterbi needs at least one observation")
	}
	return &ViterbiSpec{M: m, Obs: obs}
}

// Cells returns len(Obs)·States.
func (s *ViterbiSpec) Cells() int { return len(s.Obs) * s.M.States }

// Deps lists every state of the previous layer.
func (s *ViterbiSpec) Deps(v int, buf []int) []int {
	t := v / s.M.States
	if t == 0 {
		return buf
	}
	base := (t - 1) * s.M.States
	for j := 0; j < s.M.States; j++ {
		buf = append(buf, base+j)
	}
	return buf
}

// Compute evaluates the min-sum trellis recurrence.
func (s *ViterbiSpec) Compute(v int, get func(int) int64) int64 {
	t := v / s.M.States
	st := v % s.M.States
	emit := s.M.Emit[st*s.M.Symbols+s.Obs[t]]
	if t == 0 {
		return s.M.Start[st] + emit
	}
	base := (t - 1) * s.M.States
	best := int64(math.MaxInt64)
	for j := 0; j < s.M.States; j++ {
		if c := get(base+j) + s.M.Trans[j*s.M.States+st]; c < best {
			best = c
		}
	}
	return best + emit
}

// Cost charges the predecessor-state loop.
func (s *ViterbiSpec) Cost(v int) int64 {
	if v < s.M.States {
		return 1
	}
	return int64(s.M.States)
}

// Best extracts the cheapest final cost from a computed table.
func (s *ViterbiSpec) Best(vals []int64) int64 {
	last := (len(s.Obs) - 1) * s.M.States
	best := int64(math.MaxInt64)
	for j := 0; j < s.M.States; j++ {
		if vals[last+j] < best {
			best = vals[last+j]
		}
	}
	return best
}

// Viterbi is the direct sequential oracle.
func Viterbi(m HMM, obs []int) int64 {
	prev := make([]int64, m.States)
	cur := make([]int64, m.States)
	for s := 0; s < m.States; s++ {
		prev[s] = m.Start[s] + m.Emit[s*m.Symbols+obs[0]]
	}
	for t := 1; t < len(obs); t++ {
		for s := 0; s < m.States; s++ {
			best := int64(math.MaxInt64)
			for j := 0; j < m.States; j++ {
				if c := prev[j] + m.Trans[j*m.States+s]; c < best {
					best = c
				}
			}
			cur[s] = best + m.Emit[s*m.Symbols+obs[t]]
		}
		prev, cur = cur, prev
	}
	best := int64(math.MaxInt64)
	for _, v := range prev {
		if v < best {
			best = v
		}
	}
	return best
}
