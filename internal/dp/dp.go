// Package dp implements the paper's parallel dynamic programming framework
// (§4.2–§4.4): a DP is given by an explicit specification of the recursive
// decomposition (Equation 6); the framework derives the dependency DAG,
// reverses it into execution order, and schedules cell computations with the
// per-vertex counter scheduler of Algorithm 1 — on the goroutine runtime for
// real speedups and on the simulator for step-count experiments. A
// level-barrier antichain sweep is provided as the scheduling ablation.
package dp

import (
	"fmt"
	"sync"
	"sync/atomic"

	"lopram/internal/dag"
	"lopram/internal/palrt"
)

// Spec is the explicit dynamic-programming specification of Equation (6):
// a finite set of cells 0..Cells()-1, the dependency relation y ≺ x, and the
// recursive cost expression f. Base cases are cells with no dependencies.
// Values are int64; every DP in this repository is integral (costs,
// distances, bitmasks).
type Spec interface {
	// Cells returns the number of table cells.
	Cells() int
	// Deps appends the cells that cell v reads (the {y_i : y_i ≺ x} of
	// Equation 6) to buf and returns the extended slice. It must be
	// deterministic and acyclic.
	Deps(v int, buf []int) []int
	// Compute returns the value of cell v; get provides the values of
	// cells listed by Deps(v), which are guaranteed to be computed.
	Compute(v int, get func(int) int64) int64
	// Cost returns the simulated work of computing cell v, for the
	// simulator experiments. Real executions ignore it.
	Cost(v int) int64
}

// BuildGraph constructs the execution DAG of the spec: an edge u→v for every
// dependency of v on u. In the paper's pipeline this is steps (i) and (ii):
// the dependencies graph is determined per cell and reversed; we emit the
// reversed (execution-order) graph directly.
func BuildGraph(s Spec) *dag.Graph {
	n := s.Cells()
	g := dag.New(n)
	buf := make([]int, 0, 8)
	for v := 0; v < n; v++ {
		buf = s.Deps(v, buf[:0])
		for _, u := range buf {
			g.AddEdge(u, v)
		}
	}
	return g
}

// BuildGraphParallel constructs the same graph with the cell range chunked
// across the runtime's processors — the O(m·n^d/p) parallel construction of
// §4.4. Chunks accumulate edges privately and splice them afterwards, so no
// two processors write the same adjacency list.
func BuildGraphParallel(rt *palrt.RT, s Spec) *dag.Graph {
	n := s.Cells()
	p := rt.P()
	if p < 1 {
		p = 1
	}
	type edge struct{ u, v int32 }
	chunks := make([][]edge, p)
	per := (n + p - 1) / p
	var jobs []func()
	for w := 0; w < p; w++ {
		lo, hi := w*per, (w+1)*per
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		w, lo, hi := w, lo, hi
		jobs = append(jobs, func() {
			buf := make([]int, 0, 8)
			var out []edge
			for v := lo; v < hi; v++ {
				buf = s.Deps(v, buf[:0])
				for _, u := range buf {
					out = append(out, edge{int32(u), int32(v)})
				}
			}
			chunks[w] = out
		})
	}
	rt.Do(jobs...)
	g := dag.New(n)
	for _, ch := range chunks {
		for _, e := range ch {
			g.AddEdge(int(e.u), int(e.v))
		}
	}
	return g
}

// RunSeq computes the whole table sequentially in a topological order of the
// execution DAG and returns the cell values. It is both the baseline T(n)
// of the speedup experiments and the correctness oracle for the parallel
// schedulers.
func RunSeq(s Spec) ([]int64, error) {
	g := BuildGraph(s)
	return RunSeqOn(s, g)
}

// RunSeqOn is RunSeq with a prebuilt graph.
func RunSeqOn(s Spec, g *dag.Graph) ([]int64, error) {
	order, err := g.TopoSort()
	if err != nil {
		return nil, fmt.Errorf("dp: invalid spec: %w", err)
	}
	vals := make([]int64, g.N())
	get := func(x int) int64 { return vals[x] }
	for _, v := range order {
		vals[v] = s.Compute(v, get)
	}
	return vals, nil
}

// RunCounter executes the spec with the counter scheduler of Algorithm 1 on
// the goroutine runtime: every cell carries a counter initialised to its
// in-degree; the thread that computes a cell decrements the counters of its
// dependents and schedules those reaching zero ("pal-threads ... nowait").
// p worker goroutines model the p processors.
func RunCounter(s Spec, g *dag.Graph, p int) ([]int64, error) {
	n := g.N()
	if p < 1 {
		p = 1
	}
	order, err := g.TopoSort() // validates acyclicity up front
	if err != nil {
		return nil, fmt.Errorf("dp: invalid spec: %w", err)
	}
	_ = order

	vals := make([]int64, n)
	cnt := g.InDegrees()
	queue := make(chan int, n)
	var remaining atomic.Int64
	remaining.Store(int64(n))
	if n == 0 {
		return vals, nil
	}
	for _, src := range g.Sources() {
		queue <- src
	}

	get := func(x int) int64 { return vals[x] }
	var wg sync.WaitGroup
	for w := 0; w < p; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for u := range queue {
				vals[u] = s.Compute(u, get)
				for _, v := range g.Succ(u) {
					if atomic.AddInt32(&cnt[v], -1) == 0 {
						queue <- int(v)
					}
				}
				if remaining.Add(-1) == 0 {
					close(queue)
				}
			}
		}()
	}
	wg.Wait()
	return vals, nil
}

// RunLevels executes the spec level by level over the Mirsky antichain
// partition with a barrier between levels: the scheduling ablation to
// Algorithm 1's counters. Within a level, cells are strip-chunked across the
// runtime.
func RunLevels(s Spec, g *dag.Graph, rt *palrt.RT) ([]int64, error) {
	layers, err := g.Antichains()
	if err != nil {
		return nil, fmt.Errorf("dp: invalid spec: %w", err)
	}
	vals := make([]int64, g.N())
	get := func(x int) int64 { return vals[x] }
	for _, layer := range layers {
		layer := layer
		rt.For(0, len(layer), 1+len(layer)/(4*rt.P()+1), func(lo, hi int) {
			for _, v := range layer[lo:hi] {
				vals[v] = s.Compute(v, get)
			}
		})
	}
	return vals, nil
}
