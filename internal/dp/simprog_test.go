package dp

import (
	"testing"

	"lopram/internal/sim"
	"lopram/internal/workload"
)

// runSim executes Algorithm 1 on the simulator and returns (steps, vals).
func runSim(t *testing.T, s Spec, p int, opt SimOptions) (int64, []int64) {
	t.Helper()
	g := BuildGraph(s)
	prog, vals := Program(s, g, opt)
	m := sim.New(sim.Config{P: p})
	res, err := m.Run(prog)
	if err != nil {
		t.Fatal(err)
	}
	return res.Steps, vals
}

func TestSimProgramCorrect(t *testing.T) {
	r := workload.NewRNG(3)
	a, b := workload.RelatedStrings(r, 24, 4, 6)
	spec := NewEditDistance(a, b)
	want, err := RunSeq(spec)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []int{1, 2, 4, 8} {
		_, vals := runSim(t, spec, p, SimOptions{})
		for i := range want {
			if vals[i] != want[i] {
				t.Fatalf("p=%d: cell %d = %d, want %d", p, i, vals[i], want[i])
			}
		}
	}
}

// TestSimDPSpeedup is experiment E8 in miniature: the 2-D diagonal DP
// achieves speedup close to p on the simulator for p = O(log n).
func TestSimDPSpeedup(t *testing.T) {
	r := workload.NewRNG(4)
	a, b := workload.RelatedStrings(r, 96, 4, 10)
	spec := NewEditDistance(a, b)
	t1, _ := runSim(t, spec, 1, SimOptions{})
	for _, p := range []int{2, 4, 8} {
		tp, _ := runSim(t, spec, p, SimOptions{})
		speedup := float64(t1) / float64(tp)
		if speedup < 0.7*float64(p) {
			t.Errorf("p=%d: speedup %.2f below 0.7·p", p, speedup)
		}
		if speedup > float64(p)+0.01 {
			t.Errorf("p=%d: superlinear speedup %.2f", p, speedup)
		}
	}
}

// TestSimChainNoSpeedup is experiment E9: a 1-D chain DP gains nothing from
// more processors (§4.3: "the DAG is a path and hence there is no speedup
// possible").
func TestSimChainNoSpeedup(t *testing.T) {
	spec := NewPrefixSum(make([]int64, 300))
	t1, _ := runSim(t, spec, 1, SimOptions{})
	for _, p := range []int{2, 8} {
		tp, _ := runSim(t, spec, p, SimOptions{})
		if float64(t1)/float64(tp) > 1.05 {
			t.Errorf("p=%d: chain DP sped up: %d → %d", p, t1, tp)
		}
	}
}

// TestSimCrewCountersSlowdown: charging the §4.6 CRCW-on-CREW factor makes
// runs slower by at most ~log p and never faster.
func TestSimCrewCountersSlowdown(t *testing.T) {
	r := workload.NewRNG(5)
	a, b := workload.RelatedStrings(r, 48, 4, 6)
	spec := NewEditDistance(a, b)
	for _, p := range []int{2, 8} {
		plain, _ := runSim(t, spec, p, SimOptions{})
		crew, _ := runSim(t, spec, p, SimOptions{CrewCounters: true, P: p})
		if crew < plain {
			t.Errorf("p=%d: CREW-accounted run faster (%d < %d)", p, crew, plain)
		}
		logp := int64(1)
		for v := p - 1; v > 0; v >>= 1 {
			logp++
		}
		if crew > plain*logp {
			t.Errorf("p=%d: CREW slowdown %d/%d exceeds log p factor", p, crew, plain)
		}
	}
}

// TestBuildProgramLinearSpeedup is experiment E14: dependency-graph
// construction parallelizes perfectly (it has no dependencies of its own).
func TestBuildProgramLinearSpeedup(t *testing.T) {
	r := workload.NewRNG(6)
	a, b := workload.RelatedStrings(r, 64, 4, 6)
	spec := NewEditDistance(a, b)
	steps := func(p int) int64 {
		m := sim.New(sim.Config{P: p})
		res, err := m.Run(BuildProgram(spec, p))
		if err != nil {
			t.Fatal(err)
		}
		return res.Steps
	}
	t1 := steps(1)
	for _, p := range []int{2, 4, 8} {
		tp := steps(p)
		speedup := float64(t1) / float64(tp)
		if speedup < 0.85*float64(p) {
			t.Errorf("p=%d: build speedup %.2f, want ≈ %d", p, speedup, p)
		}
	}
}

func TestCeilLog2(t *testing.T) {
	for p, want := range map[int]int64{1: 1, 2: 1, 3: 2, 4: 2, 5: 3, 8: 3, 9: 4, 16: 4} {
		if got := ceilLog2(p); got != want {
			t.Errorf("ceilLog2(%d) = %d, want %d", p, got, want)
		}
	}
}
