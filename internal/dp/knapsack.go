package dp

// KnapsackSpec is the 0/1 knapsack DP over the (n+1) × (W+1) table:
// cell (i,w) is the best value achievable with the first i items and
// capacity w. Rows are antichains (every cell of row i depends only on row
// i-1), so the DAG parallelizes perfectly within rows — a different
// antichain geometry from the diagonal family, which the experiments use to
// show the framework does not care which geometry a problem exhibits.
type KnapsackSpec struct {
	Weights, Values []int
	W               int
	cols            int
}

// NewKnapsack returns the spec for the given items and capacity.
func NewKnapsack(weights, values []int, capacity int) *KnapsackSpec {
	if len(weights) != len(values) {
		panic("dp: knapsack weights/values length mismatch")
	}
	if capacity < 0 {
		panic("dp: negative knapsack capacity")
	}
	return &KnapsackSpec{
		Weights: weights, Values: values, W: capacity, cols: capacity + 1,
	}
}

// Cells returns (n+1)·(W+1).
func (s *KnapsackSpec) Cells() int { return (len(s.Weights) + 1) * s.cols }

// Deps lists the skip cell (i-1, w) and, if the item fits, the take cell
// (i-1, w-weight).
func (s *KnapsackSpec) Deps(v int, buf []int) []int {
	i, w := v/s.cols, v%s.cols
	if i == 0 {
		return buf
	}
	buf = append(buf, v-s.cols)
	if wt := s.Weights[i-1]; wt <= w {
		buf = append(buf, v-s.cols-wt)
	}
	return buf
}

// Compute evaluates max(skip, take + value).
func (s *KnapsackSpec) Compute(v int, get func(int) int64) int64 {
	i, w := v/s.cols, v%s.cols
	if i == 0 {
		return 0
	}
	best := get(v - s.cols)
	if wt := s.Weights[i-1]; wt <= w {
		if take := get(v-s.cols-wt) + int64(s.Values[i-1]); take > best {
			best = take
		}
	}
	return best
}

// Cost charges one unit per cell.
func (s *KnapsackSpec) Cost(int) int64 { return 1 }

// Best extracts the answer from a computed table.
func (s *KnapsackSpec) Best(vals []int64) int64 { return vals[len(vals)-1] }

// Knapsack is the direct single-row sequential oracle.
func Knapsack(weights, values []int, capacity int) int64 {
	row := make([]int64, capacity+1)
	for i, wt := range weights {
		val := int64(values[i])
		for w := capacity; w >= wt; w-- {
			if take := row[w-wt] + val; take > row[w] {
				row[w] = take
			}
		}
	}
	return row[capacity]
}
