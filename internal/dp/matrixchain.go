package dp

import "math"

// MatrixChainSpec is the optimal matrix-chain-ordering DP — one of the three
// problems Bradford's parallel-DP work (cited in §4.2) targets. Cell (i,j)
// holds the minimum scalar-multiplication cost of computing the product
// A_i···A_j; dims has length n+1 with A_k of size dims[k]×dims[k+1].
// Antichains of the dependency DAG are the interval-length diagonals.
type MatrixChainSpec struct {
	Dims []int
	ix   *intervalIndex
}

// NewMatrixChain returns the spec for the given dimension vector
// (len(dims) >= 2).
func NewMatrixChain(dims []int) *MatrixChainSpec {
	if len(dims) < 2 {
		panic("dp: matrix chain needs at least one matrix")
	}
	return &MatrixChainSpec{Dims: dims, ix: newIntervalIndex(len(dims) - 1)}
}

// Cells returns n(n+1)/2 packed interval cells.
func (s *MatrixChainSpec) Cells() int { return s.ix.cells() }

// Deps lists both halves of every split point.
func (s *MatrixChainSpec) Deps(v int, buf []int) []int {
	i, j := s.ix.interval(v)
	for k := i; k < j; k++ {
		buf = append(buf, s.ix.id(i, k), s.ix.id(k+1, j))
	}
	return buf
}

// Compute evaluates min over split points k of M[i,k] + M[k+1,j] +
// dims[i]·dims[k+1]·dims[j+1].
func (s *MatrixChainSpec) Compute(v int, get func(int) int64) int64 {
	i, j := s.ix.interval(v)
	if i == j {
		return 0
	}
	best := int64(math.MaxInt64)
	di := int64(s.Dims[i])
	dj := int64(s.Dims[j+1])
	for k := i; k < j; k++ {
		c := get(s.ix.id(i, k)) + get(s.ix.id(k+1, j)) + di*int64(s.Dims[k+1])*dj
		if c < best {
			best = c
		}
	}
	return best
}

// Cost charges the split-loop length (at least one unit).
func (s *MatrixChainSpec) Cost(v int) int64 {
	i, j := s.ix.interval(v)
	if j == i {
		return 1
	}
	return int64(j - i)
}

// OptimalCost extracts the full-chain answer from a computed table.
func (s *MatrixChainSpec) OptimalCost(vals []int64) int64 {
	return vals[s.ix.id(0, len(s.Dims)-2)]
}

// MatrixChain is the direct O(n³) sequential oracle.
func MatrixChain(dims []int) int64 {
	n := len(dims) - 1
	if n < 1 {
		panic("dp: matrix chain needs at least one matrix")
	}
	m := make([][]int64, n)
	for i := range m {
		m[i] = make([]int64, n)
	}
	for l := 1; l < n; l++ {
		for i := 0; i+l < n; i++ {
			j := i + l
			best := int64(math.MaxInt64)
			for k := i; k < j; k++ {
				c := m[i][k] + m[k+1][j] +
					int64(dims[i])*int64(dims[k+1])*int64(dims[j+1])
				if c < best {
					best = c
				}
			}
			m[i][j] = best
		}
	}
	return m[0][n-1]
}
