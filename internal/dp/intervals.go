package dp

// intervalIndex packs the upper-triangular cell set {(i,j) : 0 ≤ i ≤ j < n}
// of an interval DP (matrix chain, optimal BST) into contiguous ids ordered
// by interval length. Length-major order makes the natural id order a
// topological order and makes the Mirsky antichains exactly the length
// diagonals, which the experiments assert.
type intervalIndex struct {
	n     int
	start []int // start[l] = first id of intervals with j-i == l
	iOf   []int32
	jOf   []int32
}

func newIntervalIndex(n int) *intervalIndex {
	ix := &intervalIndex{
		n:     n,
		start: make([]int, n+1),
		iOf:   make([]int32, n*(n+1)/2),
		jOf:   make([]int32, n*(n+1)/2),
	}
	id := 0
	for l := 0; l < n; l++ {
		ix.start[l] = id
		for i := 0; i+l < n; i++ {
			ix.iOf[id] = int32(i)
			ix.jOf[id] = int32(i + l)
			id++
		}
	}
	ix.start[n] = id
	return ix
}

// cells returns the number of packed cells, n(n+1)/2.
func (ix *intervalIndex) cells() int { return len(ix.iOf) }

// id returns the packed id of interval (i, j).
func (ix *intervalIndex) id(i, j int) int {
	l := j - i
	return ix.start[l] + i
}

// interval returns (i, j) for a packed id.
func (ix *intervalIndex) interval(id int) (i, j int) {
	return int(ix.iOf[id]), int(ix.jOf[id])
}
