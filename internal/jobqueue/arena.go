package jobqueue

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"lopram/internal/core"
	"lopram/internal/jobtrace"
)

// The frame arena: pooled Job and Batch frames for the batch-first ingest
// path (modeled on palrt's task arena). A single Submit allocates a fresh
// Job per call because the Job escapes to the caller for its whole
// lifetime; a Batch submitter instead borrows frames from jobPool, reads
// the outcomes, and hands every frame back with Release — so the
// steady-state batch submit path allocates zero per job. Frames that
// escape the batch lifecycle anyway (a single-Submit caller coalesced
// onto one, or a deadline-abandoned run still holding one) are pinned and
// left to the garbage collector instead of recycled.

// jobPool recycles batch job frames. Frames produced here are marked
// pooled: the ingest path skips ID retention for them (they are not
// queryable via Get/Jobs — the batch owner holds the only reference) and
// Release recycles them once the batch is settled.
var jobPool = sync.Pool{
	New: func() any { return &Job{pooled: true, execShard: -1, stealFrom: -1} },
}

// batchPool recycles Batch frames themselves, so a steady-state
// submit–wait–release loop allocates nothing for the container either.
var batchPool = sync.Pool{
	New: func() any { return &Batch{donec: make(chan struct{}, 1)} },
}

// newFrame borrows a job frame from the arena.
func newFrame(now time.Time) *Job {
	j := jobPool.Get().(*Job)
	j.submitted = now
	j.execShard = -1
	j.stealFrom = -1
	return j
}

// release returns a settled frame to the arena. Frames that escaped —
// pinned by a coalescing single Submit, or still referenced by an
// abandoned run or a racing deadline loser (touches > 0) — are skipped
// and left to the GC: recycling them would let the stale holder write
// into the frame's next incarnation.
func (j *Job) release() {
	if j.pinned.Load() || j.touches.Load() != 0 {
		return
	}
	j.ID = 0
	j.Name = ""
	j.Spec = Spec{}
	j.fn = nil
	j.submitted = time.Time{}
	j.class = 0
	j.submitShard = 0
	j.submitEpoch = 0
	j.laneDepth = 0
	j.execShard = -1
	j.stealFrom = -1
	j.cost = CostEstimate{}
	j.status = StatusQueued
	j.result = Result{}
	j.err = nil
	j.started = time.Time{}
	j.finished = time.Time{}
	j.done = nil
	j.signaled = false
	j.notify = nil
	j.chained = j.chained[:0]
	jobPool.Put(j)
}

// Batch is a group of jobs submitted through the pooled, ring-published
// ingest path: the zero-allocation counterpart of calling Submit in a
// loop. Usage is submit → wait → read outcomes → release:
//
//	b := q.NewBatch()
//	for _, spec := range specs {
//		b.Submit(spec)
//	}
//	if err := b.Wait(ctx); err != nil { ... } // frames still in flight: skip Release
//	for i := 0; i < b.Len(); i++ {
//		res, err := b.Outcome(i)
//		...
//	}
//	b.Release()
//
// A Batch is owned by one goroutine: its methods must not be called
// concurrently (distinct Batches on distinct goroutines are fine — that
// is the intended fan-in). Batch jobs get the same admission control,
// coalescing and caching as single submissions, but are not retained for
// Get/Jobs — the Batch itself is the only handle to their outcomes.
type Batch struct {
	q    *Queue
	jobs []*Job
	// pending counts submitted-but-not-terminal frames; donec carries the
	// completion token: jobDone sends (non-blocking, capacity 1) when
	// pending reaches zero, and Wait re-checks pending after every
	// receive, so a stale token from an earlier cycle is harmless.
	pending atomic.Int64
	donec   chan struct{}
}

// NewBatch borrows a batch frame from the arena. Release returns it.
func (q *Queue) NewBatch() *Batch {
	b := batchPool.Get().(*Batch)
	b.q = q
	return b
}

// Len returns how many jobs have been submitted into the batch,
// including ones refused at submission (their Outcome carries the error).
func (b *Batch) Len() int { return len(b.jobs) }

// Submit validates a spec and publishes a pooled frame for it on its home
// shard's submit ring — without taking the shard lock on the fast path;
// a shard worker (or, when the ring is full, this goroutine helping
// drain) performs the admission, coalescing and cache steps. Every call
// appends exactly one outcome slot, so index i of Outcome always pairs
// with the i-th Submit; the returned error (validation failure, unknown
// class, ErrQueueFull at help-drain, ErrClosed) is also what that slot's
// Outcome reports. Note admission-control refusals normally surface
// through Outcome, not this return value: the frame is published first
// and admission happens at drain.
func (b *Batch) Submit(spec Spec) error { return b.SubmitSpec(&spec) }

// SubmitSpec is Submit for specs decoded in place: the binary wire
// ingest loop parses every frame into one reused Spec and hands a
// pointer here, so the spec is stamped straight into the pooled job
// frame without an intermediate copy per call. Defaults (P, Priority,
// Timeout) are resolved into *spec as a side effect; the caller may
// overwrite and reuse it as soon as the call returns.
func (b *Batch) SubmitSpec(spec *Spec) error {
	q := b.q
	now := time.Now()
	j := newFrame(now)
	class, err := q.prepare(spec)
	j.Spec = *spec
	j.class = class
	b.jobs = append(b.jobs, j)
	if err != nil {
		// Refused before entering the queue: the frame is terminal at
		// birth and never acquires a pending count.
		j.markFinished(Result{}, err, now)
		j.signalDone()
		return err
	}
	if q.cal != nil {
		j.cost = q.cal.estimate(*spec, spec.key().P)
	}
	key := spec.key()
	// Lock-free cache-hit fast path (see Submit): the frame turns
	// terminal in place without ring publication, a pending count, or —
	// on an untraced queue — any allocation. The frame never acquires a
	// notify hook, mirroring the validation-refusal path above, so
	// Wait/Outcome/Release semantics are unchanged.
	if p := q.place.Load(); p != nil {
		s := p.shardFor(key)
		if idx := s.cacheIdx.Load(); idx != nil {
			if e, ok := (*idx)[key]; ok {
				j.ID = q.newID(s.idx)
				j.submitShard = s.idx
				j.submitEpoch = p.epoch
				if j.Name == "" {
					j.Name = e.name // already rendered at settle; no allocation
				}
				q.cacheHits.Add(1)
				q.submitted.Add(1)
				q.perClass[class].submitted.Add(1)
				if q.rec != nil {
					// Record before completing: the record must be built
					// before the owner can observe completion and Release
					// the frame.
					q.recordServed(q.baseRecord(j), jobtrace.DispositionHit, s.idx, p.epoch)
				}
				j.completeCached(e.res, now)
				return nil
			}
		}
	}
	j.notify = b
	b.pending.Add(1)
	for {
		p := q.place.Load()
		s := p.shardFor(key)
		switch s.ring.publish(j) {
		case ringOK:
			q.kickWorkers()
			return nil
		case ringSealed:
			// The shard left the table: a resize retired it (follow the
			// keys to the new table) or shutdown closed it.
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				q.rejected.Add(1)
				q.perClass[class].rejected.Add(1)
				j.markFinished(Result{}, ErrClosed, now)
				j.signalDone()
				return ErrClosed
			}
			retryPlacement()
		case ringFull:
			// The drain side is saturated: help drain the backlog under
			// the shard lock, then retry the publish. FIFO is preserved —
			// the backlog is ingested before this frame republishes.
			s.mu.Lock()
			if s.retired {
				s.mu.Unlock()
				retryPlacement()
				continue
			}
			if s.closed {
				s.mu.Unlock()
				q.rejected.Add(1)
				q.perClass[class].rejected.Add(1)
				j.markFinished(Result{}, ErrClosed, now)
				j.signalDone()
				return ErrClosed
			}
			q.drainRingLocked(p, s)
			s.mu.Unlock()
		}
	}
}

// jobDone is the frame-side completion hook: signalDone calls it once per
// frame whose notify points here.
func (b *Batch) jobDone() {
	if b.pending.Add(-1) == 0 {
		select {
		case b.donec <- struct{}{}:
		default:
		}
	}
}

// Wait blocks until every submitted job is terminal or ctx expires. A nil
// return means all outcomes are readable and Release is safe; on a ctx
// error some frames are still in flight and the batch must NOT be
// released (leak it to the GC — the arena refills itself).
func (b *Batch) Wait(ctx context.Context) error {
	for {
		if b.pending.Load() <= 0 {
			return nil
		}
		select {
		case <-b.donec:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// Outcome returns the i-th submitted job's result, with the same
// semantics as Job.Result. Call only after Wait has returned nil.
func (b *Batch) Outcome(i int) (Result, error) { return b.jobs[i].Result() }

// ID returns the queue-assigned ID of the i-th submitted job (0 when the
// job was refused before ingest). Call only after Wait has returned nil.
func (b *Batch) ID(i int) uint64 { return b.jobs[i].ID }

// Release returns every settled frame, and the batch itself, to the
// arena. Call exactly once, only after Wait returned nil; the frames and
// their outcomes must not be touched afterwards.
func (b *Batch) Release() {
	for i := range b.jobs {
		b.jobs[i].release()
		b.jobs[i] = nil
	}
	b.jobs = b.jobs[:0]
	b.pending.Store(0)
	select {
	case <-b.donec: // drop a stale completion token
	default:
	}
	b.q = nil
	batchPool.Put(b)
}

// prepare is the submission-validation pipeline shared by Submit and
// Batch.Submit: it resolves the spec's processor default, class and
// deadline in place and returns the class index. On error the caller owns
// the rejected counters' class slice being unknown — only the queue-wide
// rejected counter is incremented here.
func (q *Queue) prepare(spec *Spec) (int, error) {
	if spec.P == 0 && spec.N >= 1 {
		// Freeze the model-default processor count into the spec so the
		// submitter sees the p the job actually runs with.
		spec.P = core.ProcsFor(spec.N)
	}
	if spec.Priority == "" {
		spec.Priority = q.classes.specs[0].Name
	}
	if err := core.ValidateSpec(spec.Algorithm, spec.Engine, spec.N, spec.P); err != nil {
		q.rejected.Add(1)
		return 0, fmt.Errorf("jobqueue: invalid spec: %w", err)
	}
	class, ok := q.classes.index[spec.Priority]
	if !ok {
		q.rejected.Add(1)
		return 0, fmt.Errorf("%w %q (valid classes: %s)",
			ErrUnknownClass, spec.Priority, ClassSet(q.classes.specs).Names())
	}
	if spec.Timeout == 0 {
		// The class's default deadline applies when the spec carries
		// none; zero for both defers to Config.DefaultTimeout at run
		// time. Timeout is not part of the cache key.
		spec.Timeout = q.classes.specs[class].DefaultDeadline
	}
	return class, nil
}
