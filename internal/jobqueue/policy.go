package jobqueue

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"
)

// ErrUnknownPolicy reports a dequeue or admission policy name outside
// the shipped registry. The error message lists the valid names, the
// same contract ErrUnknownClass keeps for class names.
var ErrUnknownPolicy = errors.New("jobqueue: unknown policy")

// ErrDeadlineInfeasible reports an admission-time load shed: the
// admission policy predicted the job cannot finish inside its deadline
// (predicted cost exceeds the remaining budget), so it was rejected at
// submit instead of admitted to time out. Counted as a rejection.
var ErrDeadlineInfeasible = errors.New("jobqueue: predicted cost exceeds the job's deadline")

// CostEstimate is the cost model's prediction for a queued job, carried
// into policy decisions. Units are the predictor's abstract work units
// (internal/jobcost: exact up to a per-engine constant); Wall is the
// calibrated wall-clock prediction at the queue's current per-engine
// scale. Known is false for jobs outside the model (func jobs, unknown
// algorithm/engine pairs) — policies must treat those as unordered, not
// free.
type CostEstimate struct {
	Known bool
	Units float64
	Wall  time.Duration
}

// JobView is the read-only projection of one queued job that a
// DequeuePolicy ranks. It is built by the queue at decision time from
// state the job already carries; a policy must not retain the pointer
// past the Before call or mutate anything reachable from it.
type JobView struct {
	// ID carries the global submission sequence in its high bits, so
	// comparing IDs compares arrival order queue-wide.
	ID uint64
	// Class is the job's class-set position, ClassName its name.
	Class     int
	ClassName Class
	// Submitted is the job's arrival time.
	Submitted time.Time
	// Deadline is the job's effective execution budget: the spec's
	// timeout, its class default, or the queue default — whichever
	// resolved at submit. Always positive for queue-built views.
	Deadline time.Duration
	// Cost is the cost model's prediction (zero value when the queue
	// runs without a cost-consuming policy).
	Cost CostEstimate
}

// DequeuePolicy orders the runnable jobs a worker chooses among. The
// queue consults it only inside class tiers the discipline defines:
// strict classes always outrank weighted ones and each other in set
// order regardless of policy, and the policy's Before orders jobs
// within one strict class and across the pooled weighted classes. See
// ARCHITECTURE.md for the full contract (purity, epoch interaction).
//
// Before must be a pure, deterministic strict weak ordering: given the
// same two views it must always return the same answer, and it must
// never report both Before(a, b) and Before(b, a). Implementations must
// not mutate the views, block, or read queue state beyond them.
//
// The "default" policy is special: the queue recognizes it and runs the
// native strict-then-DWRR channel discipline (weighted classes share
// dequeues in weight proportion), byte-identical to the pre-policy
// queue. Every other policy replaces the weighted round-robin with its
// Before order; DWRR weights are not honored under an ordering policy.
type DequeuePolicy interface {
	// Name returns the policy's registry name.
	Name() string
	// Before reports whether a should run before b.
	Before(a, b *JobView) bool
}

// AdmissionRequest is the state an AdmissionPolicy sees for one submit.
type AdmissionRequest struct {
	// Class is the job's class-set position, ClassName its name.
	Class     int
	ClassName Class
	// LaneUsed is the class lane's current admitted-but-not-started
	// count on the target shard; LaneDepth is the lane's admission
	// bound. The queue enforces LaneUsed < LaneDepth itself before the
	// policy runs — a policy can only be more restrictive, never admit
	// past the structural bound.
	LaneUsed  int
	LaneDepth int
	// Deadline is the job's effective execution budget (see
	// JobView.Deadline).
	Deadline time.Duration
	// Cost is the cost model's prediction for the job.
	Cost CostEstimate
	// Now is the submission's arrival time.
	Now time.Time
}

// AdmissionPolicy decides at submit whether a job is admitted. A nil
// return admits; a non-nil return rejects with that error (wrap
// ErrQueueFull for capacity/rate refusals, ErrDeadlineInfeasible for
// deadline sheds, so callers can classify). A rejecting Admit must not
// consume budget: retrying the identical request at the same Now must
// yield the identical decision.
type AdmissionPolicy interface {
	// Name returns the policy's registry name.
	Name() string
	// Admit returns nil to admit the job or the rejection error.
	Admit(req AdmissionRequest) error
}

// Policies selects the queue's decision layer. Zero value = the default
// native behavior (strict-then-DWRR dequeue, lane-quota admission),
// byte-identical to the pre-policy queue.
type Policies struct {
	// Dequeue and Admission name shipped policies —
	// DequeuePolicyNames / AdmissionPolicyNames list the valid names.
	// Empty means "default". New panics on unknown names (a
	// configuration programming error); validate user input with
	// ParseDequeuePolicy / ParseAdmissionPolicy first.
	Dequeue   string
	Admission string
	// DequeuePolicy / AdmissionPolicy inject custom implementations,
	// overriding the names when non-nil.
	DequeuePolicy   DequeuePolicy
	AdmissionPolicy AdmissionPolicy
}

// resolve returns the runtime policy instances: nil dequeue/admission
// mean "run the native default path" (the queue special-cases the
// default policies back to the original inlined code, so selecting them
// costs nothing over the pre-policy queue).
func (p Policies) resolve() (DequeuePolicy, AdmissionPolicy, error) {
	deq := p.DequeuePolicy
	if deq == nil {
		d, err := ParseDequeuePolicy(p.Dequeue)
		if err != nil {
			return nil, nil, err
		}
		deq = d
	}
	adm := p.AdmissionPolicy
	if adm == nil {
		a, err := ParseAdmissionPolicy(p.Admission)
		if err != nil {
			return nil, nil, err
		}
		adm = a
	}
	if _, ok := deq.(DefaultDequeue); ok {
		deq = nil
	}
	if _, ok := adm.(QuotaAdmission); ok {
		adm = nil
	}
	return deq, adm, nil
}

// DequeuePolicyNames lists the shipped dequeue policies in registry
// order — the valid values for Policies.Dequeue, the lopramd
// -dequeue-policy flag and scenario dequeue_policy fields.
func DequeuePolicyNames() []string {
	return []string{"default", "fcfs", "sjf", "edf"}
}

// AdmissionPolicyNames lists the shipped admission policies — the valid
// values for Policies.Admission and the corresponding flag/scenario
// fields. "token-bucket" accepts optional parameters as
// token-bucket:RATE:BURST (tokens/sec per class, bucket capacity).
func AdmissionPolicyNames() []string {
	return []string{"default", "token-bucket"}
}

// ParseDequeuePolicy resolves a dequeue policy name ("" means
// "default"). Unknown names fail with ErrUnknownPolicy listing the
// valid names — the validation layer for user-supplied input (flags,
// HTTP, scenario specs).
func ParseDequeuePolicy(name string) (DequeuePolicy, error) {
	switch name {
	case "", "default":
		return DefaultDequeue{}, nil
	case "fcfs":
		return FCFSDequeue{}, nil
	case "sjf":
		return SJFDequeue{}, nil
	case "edf":
		return EDFDequeue{}, nil
	}
	return nil, fmt.Errorf("%w %q (valid dequeue policies: %s)",
		ErrUnknownPolicy, name, strings.Join(DequeuePolicyNames(), ", "))
}

// ParseAdmissionPolicy resolves an admission policy spec ("" means
// "default"; "token-bucket" takes optional :RATE and :BURST fields).
// Unknown names fail with ErrUnknownPolicy listing the valid names.
func ParseAdmissionPolicy(spec string) (AdmissionPolicy, error) {
	name, rest, _ := strings.Cut(spec, ":")
	switch name {
	case "", "default":
		if rest != "" {
			return nil, fmt.Errorf("jobqueue: admission policy %q takes no parameters", name)
		}
		return QuotaAdmission{}, nil
	case "token-bucket":
		rate, burst := DefaultTokenRate, DefaultTokenBurst
		if rest != "" {
			parts := strings.Split(rest, ":")
			if len(parts) > 2 {
				return nil, fmt.Errorf("jobqueue: admission policy %q: want token-bucket[:RATE[:BURST]]", spec)
			}
			r, err := strconv.ParseFloat(strings.TrimSpace(parts[0]), 64)
			if err != nil || r <= 0 {
				return nil, fmt.Errorf("jobqueue: admission policy %q: bad rate %q", spec, parts[0])
			}
			rate = r
			if len(parts) == 2 {
				b, err := strconv.Atoi(strings.TrimSpace(parts[1]))
				if err != nil || b < 1 {
					return nil, fmt.Errorf("jobqueue: admission policy %q: bad burst %q", spec, parts[1])
				}
				burst = b
			}
		}
		return NewTokenBucketAdmission(rate, burst), nil
	}
	return nil, fmt.Errorf("%w %q (valid admission policies: %s)",
		ErrUnknownPolicy, name, strings.Join(AdmissionPolicyNames(), ", "))
}

// ---- dequeue policies ----

// DefaultDequeue is the "default" dequeue policy: the queue's native
// strict-then-DWRR discipline. The queue recognizes this type and runs
// the original channel-based worker loop unchanged (weighted classes
// share dequeues in weight proportion, strict classes drain first), so
// selecting it is byte-identical to the pre-policy queue. Its Before is
// the within-class arrival order (FIFO by ID), which is what the native
// FIFO lanes deliver.
type DefaultDequeue struct{}

// Name returns "default".
func (DefaultDequeue) Name() string { return "default" }

// Before orders by arrival (ID).
func (DefaultDequeue) Before(a, b *JobView) bool { return a.ID < b.ID }

// FCFSDequeue runs jobs strictly in arrival order within each tier —
// the classic first-come-first-served baseline the SJF/EDF hypotheses
// are measured against.
type FCFSDequeue struct{}

// Name returns "fcfs".
func (FCFSDequeue) Name() string { return "fcfs" }

// Before orders by arrival (ID).
func (FCFSDequeue) Before(a, b *JobView) bool { return a.ID < b.ID }

// SJFDequeue is shortest-predicted-job-first: jobs are ordered by the
// cost model's calibrated wall prediction (falling back to raw units,
// then to arrival order for unknown costs, which sort after every known
// one). Minimizes mean wait under backlog when the oracle is right.
type SJFDequeue struct{}

// Name returns "sjf".
func (SJFDequeue) Name() string { return "sjf" }

// sjfKey is the policy's sort key: predicted wall ns when calibrated,
// raw units otherwise, +Inf for unknown costs.
func sjfKey(v *JobView) float64 {
	if !v.Cost.Known {
		return inf
	}
	if v.Cost.Wall > 0 {
		return float64(v.Cost.Wall)
	}
	return v.Cost.Units
}

var inf = float64(1 << 62) // effectively +Inf, avoids math import

// Before orders by predicted cost, ties by arrival.
func (SJFDequeue) Before(a, b *JobView) bool {
	ka, kb := sjfKey(a), sjfKey(b)
	if ka != kb {
		return ka < kb
	}
	return a.ID < b.ID
}

// EDFDequeue is earliest-deadline-first: jobs are ordered by absolute
// deadline (arrival + effective budget); jobs without a deadline sort
// after every deadlined one. Minimizes deadline misses under backlog
// when deadlines are feasible.
type EDFDequeue struct{}

// Name returns "edf".
func (EDFDequeue) Name() string { return "edf" }

// Before orders by absolute deadline, ties by arrival.
func (EDFDequeue) Before(a, b *JobView) bool {
	da, db := a.Deadline > 0, b.Deadline > 0
	switch {
	case da && !db:
		return true
	case !da && db:
		return false
	case da && db:
		ta, tb := a.Submitted.Add(a.Deadline), b.Submitted.Add(b.Deadline)
		if !ta.Equal(tb) {
			return ta.Before(tb)
		}
	}
	return a.ID < b.ID
}

// ---- admission policies ----

// QuotaAdmission is the "default" admission policy: admit while the
// class lane has room, reject with ErrQueueFull at the lane bound —
// exactly the static-quota rule the queue enforces structurally. The
// queue recognizes this type and keeps the original inlined check, so
// selecting it is byte-identical to the pre-policy queue.
type QuotaAdmission struct{}

// Name returns "default".
func (QuotaAdmission) Name() string { return "default" }

// Admit rejects at the lane bound, admits otherwise.
func (QuotaAdmission) Admit(req AdmissionRequest) error {
	if req.LaneUsed >= req.LaneDepth {
		return ErrQueueFull
	}
	return nil
}

// Token-bucket defaults when the flag/scenario spec gives none: 256
// admissions/sec with a burst of 64 per class — permissive enough that
// a scenario below saturation is untouched, tight enough that a
// deliberate storm trips it.
const (
	DefaultTokenRate  = 256.0
	DefaultTokenBurst = 64
)

// TokenBucketAdmission rate-limits admissions per class with a token
// bucket and sheds deadline-infeasible jobs: a job whose predicted wall
// time already exceeds its deadline budget is rejected at submit
// (ErrDeadlineInfeasible) instead of admitted to burn a worker and time
// out. Rejections never consume tokens, so a refused retry at the same
// instant gets the same answer. Construct with NewTokenBucketAdmission.
type TokenBucketAdmission struct {
	rate  float64 // tokens per second, per class
	burst float64 // bucket capacity

	mu      sync.Mutex
	buckets map[int]*tokenBucket
}

type tokenBucket struct {
	tokens float64
	last   time.Time
}

// NewTokenBucketAdmission returns a token-bucket admission policy with
// the given per-class refill rate (tokens/sec) and bucket capacity.
// Non-positive parameters select the defaults.
func NewTokenBucketAdmission(rate float64, burst int) *TokenBucketAdmission {
	if rate <= 0 {
		rate = DefaultTokenRate
	}
	if burst < 1 {
		burst = DefaultTokenBurst
	}
	return &TokenBucketAdmission{
		rate:    rate,
		burst:   float64(burst),
		buckets: make(map[int]*tokenBucket),
	}
}

// Name returns "token-bucket".
func (p *TokenBucketAdmission) Name() string { return "token-bucket" }

// Admit applies, in order: the structural lane bound (ErrQueueFull),
// the deadline-infeasibility shed (ErrDeadlineInfeasible), and the
// class's token bucket (ErrQueueFull when empty; one token consumed
// only on admission).
func (p *TokenBucketAdmission) Admit(req AdmissionRequest) error {
	if req.LaneUsed >= req.LaneDepth {
		return ErrQueueFull
	}
	if req.Deadline > 0 && req.Cost.Known && req.Cost.Wall > req.Deadline {
		return fmt.Errorf("%w (predicted %v > deadline %v)",
			ErrDeadlineInfeasible, req.Cost.Wall.Round(time.Microsecond), req.Deadline)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	b := p.buckets[req.Class]
	if b == nil {
		b = &tokenBucket{tokens: p.burst, last: req.Now}
		p.buckets[req.Class] = b
	}
	if req.Now.After(b.last) {
		b.tokens += req.Now.Sub(b.last).Seconds() * p.rate
		if b.tokens > p.burst {
			b.tokens = p.burst
		}
		b.last = req.Now
	}
	if b.tokens < 1 {
		return fmt.Errorf("jobqueue: class %q over its admission rate: %w", req.ClassName, ErrQueueFull)
	}
	b.tokens--
	return nil
}
