package jobqueue

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"lopram/internal/core"
)

// TestShardPlacementDeterminism: a spec's shard is a pure function of its
// cache key and the shard count — stable across queue instances — and a
// realistic key population spreads across every shard.
func TestShardPlacementDeterminism(t *testing.T) {
	qa := New(Config{Workers: 4, Shards: 4})
	defer qa.Close()
	qb := New(Config{Workers: 4, Shards: 4})
	defer qb.Close()

	specs := testSpecs()
	seen := make(map[int]int)
	for _, spec := range specs {
		a, b := qa.ShardOf(spec), qb.ShardOf(spec)
		if a != b {
			t.Fatalf("spec %v: shard %d on one queue, %d on another", spec, a, b)
		}
		if a < 0 || a >= 4 {
			t.Fatalf("spec %v: shard %d out of range", spec, a)
		}
		seen[a]++
	}
	if len(seen) != 4 {
		t.Errorf("100 mixed specs hit only shards %v, want all 4", seen)
	}

	// Priority is not part of the key: both classes of the same spec meet
	// on one shard (the invariant coalescing and caching rely on).
	s := specs[0]
	s.Priority = ClassBatch
	if qa.ShardOf(s) != qa.ShardOf(specs[0]) {
		t.Error("priority changed the spec's shard placement")
	}

	// The home shard is encoded in the job ID and owns the execution
	// accounting.
	job, err := qa.Submit(Spec{Algorithm: "reduce", N: 128, P: 2, Engine: core.EngineSim, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := qa.ShardOf(job.Spec)
	if got := int(job.ID & (MaxShards - 1)); got != want {
		t.Errorf("job ID encodes shard %d, ShardOf says %d", got, want)
	}
	if _, err := job.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	m := qa.Snapshot()
	if m.PerShard[want].Executed != 1 {
		t.Errorf("home shard %d executed = %d, want 1 (per-shard: %+v)", want, m.PerShard[want].Executed, m.PerShard)
	}
}

// pinnedNames returns count distinct func-job names that all hash to the
// given shard of a shards-way queue.
func pinnedNames(shard, shards, count int) []string {
	names := make([]string, 0, count)
	for i := 0; len(names) < count; i++ {
		name := fmt.Sprintf("pinned-%d", i)
		if int(hashString(name)%uint64(shards)) == shard {
			names = append(names, name)
		}
	}
	return names
}

// TestCrossShardStealing: jobs pinned to one shard of a 4-shard queue are
// drained by the other shards' idle workers. Run it with -race: the steal
// path crosses shard boundaries on every hand-off.
func TestCrossShardStealing(t *testing.T) {
	q := New(Config{Workers: 4, Shards: 4})
	defer q.Close()

	const n = 12
	jobs := make([]*Job, 0, n)
	for _, name := range pinnedNames(1, 4, n) {
		job, err := q.SubmitFunc(name, func(context.Context) error {
			time.Sleep(3 * time.Millisecond)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if home := int(job.ID & (MaxShards - 1)); home != 1 {
			t.Fatalf("job %s homed on shard %d, want 1", job.Name, home)
		}
		jobs = append(jobs, job)
	}
	for _, job := range jobs {
		if _, err := job.Wait(context.Background()); err != nil {
			t.Fatalf("%s: %v", job.Name, err)
		}
	}
	m := q.Snapshot()
	if m.PerShard[1].Executed != n {
		t.Errorf("home shard executed = %d, want %d", m.PerShard[1].Executed, n)
	}
	for i, st := range m.PerShard {
		if i != 1 && st.Executed != 0 {
			t.Errorf("shard %d executed %d jobs, want 0 (placement leaked)", i, st.Executed)
		}
	}
	// One worker owns shard 1; with 12 serialized 3ms jobs against three
	// idle shards, the kick path must have moved work across shards.
	if m.Steals == 0 {
		t.Error("no cross-shard steals despite a single-shard hot spot")
	}
	if m.Failed != 0 || m.Rejected != 0 {
		t.Errorf("failed=%d rejected=%d, want 0", m.Failed, m.Rejected)
	}
}

// TestPerClassAdmission: the batch class is confined to its BatchShare
// slice of the shard depth, interactive may use the full depth, and each
// class's rejections are accounted separately.
func TestPerClassAdmission(t *testing.T) {
	q := New(Config{Workers: 1, Shards: 1, QueueDepth: 4, BatchShare: 0.5})
	defer q.Close()

	// Hold the only worker so admitted jobs stay queued.
	release := make(chan struct{})
	defer close(release)
	if _, err := q.SubmitFunc("blocker", func(context.Context) error { <-release; return nil }); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for q.Snapshot().Running == 0 {
		if time.Now().After(deadline) {
			t.Fatal("worker never started the blocker")
		}
		time.Sleep(time.Millisecond)
	}

	submit := func(n int, class Class) error {
		_, err := q.Submit(Spec{Algorithm: "reduce", N: n, P: 2, Engine: core.EngineSim, Seed: 42, Priority: class})
		return err
	}
	// Batch share of depth 4 is 2 slots: two admitted, the third refused.
	if err := submit(100, ClassBatch); err != nil {
		t.Fatalf("batch 1: %v", err)
	}
	if err := submit(101, ClassBatch); err != nil {
		t.Fatalf("batch 2: %v", err)
	}
	if err := submit(102, ClassBatch); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("batch 3: err = %v, want ErrQueueFull", err)
	}
	// Interactive still has its full 4-slot depth.
	for i := 0; i < 4; i++ {
		if err := submit(200+i, ClassInteractive); err != nil {
			t.Fatalf("interactive %d: %v", i, err)
		}
	}
	if err := submit(300, ClassInteractive); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("interactive overflow: err = %v, want ErrQueueFull", err)
	}
	// An unknown class never reaches a run queue.
	if err := submit(400, Class("carrier-pigeon")); err == nil {
		t.Fatal("unknown priority class was admitted")
	}

	m := q.Snapshot()
	if got := m.PerClass[ClassBatch].Rejected; got != 1 {
		t.Errorf("batch rejected = %d, want 1", got)
	}
	if got := m.PerClass[ClassInteractive].Rejected; got != 1 {
		t.Errorf("interactive rejected = %d, want 1", got)
	}
	if got := m.PerClass[ClassBatch].Submitted; got != 2 {
		t.Errorf("batch submitted = %d, want 2", got)
	}
}

// TestClassPriorityOrder: with one worker, queued interactive jobs start
// before queued batch jobs regardless of submission order, and each class
// reports its own latency percentiles.
func TestClassPriorityOrder(t *testing.T) {
	q := New(Config{Workers: 1, Shards: 1, QueueDepth: 16})
	defer q.Close()

	release := make(chan struct{})
	blocker, err := q.SubmitFunc("blocker", func(context.Context) error { <-release; return nil })
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for q.Snapshot().Running == 0 {
		if time.Now().After(deadline) {
			t.Fatal("worker never started the blocker")
		}
		time.Sleep(time.Millisecond)
	}

	// Batch first into the queue, interactive after.
	var batch, interactive []*Job
	for i := 0; i < 3; i++ {
		j, err := q.Submit(Spec{Algorithm: "reduce", N: 64 + i, P: 2, Engine: core.EngineSim, Seed: 7, Priority: ClassBatch})
		if err != nil {
			t.Fatal(err)
		}
		batch = append(batch, j)
	}
	for i := 0; i < 3; i++ {
		j, err := q.Submit(Spec{Algorithm: "reduce", N: 96 + i, P: 2, Engine: core.EngineSim, Seed: 7, Priority: ClassInteractive})
		if err != nil {
			t.Fatal(err)
		}
		interactive = append(interactive, j)
	}
	close(release)
	if _, err := blocker.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	for _, j := range append(append([]*Job(nil), batch...), interactive...) {
		if _, err := j.Wait(context.Background()); err != nil {
			t.Fatalf("%s: %v", j.Name, err)
		}
	}

	lastInteractive, firstBatch := time.Time{}, time.Time{}
	for _, j := range interactive {
		j.mu.Lock()
		if j.started.After(lastInteractive) {
			lastInteractive = j.started
		}
		j.mu.Unlock()
	}
	for _, j := range batch {
		j.mu.Lock()
		if firstBatch.IsZero() || j.started.Before(firstBatch) {
			firstBatch = j.started
		}
		j.mu.Unlock()
	}
	if firstBatch.Before(lastInteractive) {
		t.Errorf("a batch job started at %v before the last interactive start %v", firstBatch, lastInteractive)
	}

	m := q.Snapshot()
	// 4 interactive completions: the three spec jobs plus the func-job
	// blocker (func jobs run in the interactive class).
	if m.PerClass[ClassInteractive].Wall.Count != 4 {
		t.Errorf("interactive wall samples = %d, want 4", m.PerClass[ClassInteractive].Wall.Count)
	}
	if m.PerClass[ClassBatch].Wall.Count != 3 {
		t.Errorf("batch wall samples = %d, want 3", m.PerClass[ClassBatch].Wall.Count)
	}
}

// TestShardedEndToEnd replays the mixed 100-job workload of TestEndToEnd
// against a 4-shard queue: the sharded path must preserve the coalescing,
// caching and accounting invariants the single-queue path established.
func TestShardedEndToEnd(t *testing.T) {
	q := New(Config{Workers: 4, Shards: 4, QueueDepth: 256, DefaultTimeout: 2 * time.Minute})
	defer q.Close()

	specs := testSpecs()
	jobs := make([]*Job, len(specs))
	for i, spec := range specs {
		job, err := q.Submit(spec)
		if err != nil {
			t.Fatalf("submit %v: %v", spec, err)
		}
		jobs[i] = job
	}
	byKey := make(map[Key]core.Outcome)
	for i, job := range jobs {
		res, err := job.Wait(context.Background())
		if err != nil {
			t.Fatalf("job %d (%v): %v", i, specs[i], err)
		}
		key := specs[i].key()
		if prev, ok := byKey[key]; ok {
			if prev != res.Outcome {
				t.Errorf("spec %v: outcome diverged between duplicates", specs[i])
			}
		} else {
			byKey[key] = res.Outcome
		}
	}

	m := q.Snapshot()
	if m.Submitted+m.Coalesced != int64(len(specs)) {
		t.Errorf("submitted %d + coalesced %d != %d requests", m.Submitted, m.Coalesced, len(specs))
	}
	dups := int64(len(specs) - len(byKey))
	if m.CacheHits+m.Coalesced != dups {
		t.Errorf("cache hits %d + coalesced %d != %d duplicate requests", m.CacheHits, m.Coalesced, dups)
	}
	if m.Completed != int64(len(byKey)) {
		t.Errorf("executed %d jobs, want %d (one per distinct key)", m.Completed, len(byKey))
	}
	var executed int64
	for _, st := range m.PerShard {
		executed += st.Executed
	}
	if executed != m.Completed+m.Failed {
		t.Errorf("per-shard executed sums to %d, want %d", executed, m.Completed+m.Failed)
	}
}

// pinnedSpecs returns count distinct reduce/sim specs of size n whose
// keys all hash to the given shard of a shards-way table, in the given
// priority class. Distinct n per class keeps the keys disjoint (Priority
// is not part of the key, so equal keys would coalesce across classes).
func pinnedSpecs(shard, shards, count, n int, class Class) []Spec {
	specs := make([]Spec, 0, count)
	for seed := uint64(0); len(specs) < count; seed++ {
		spec := Spec{Algorithm: "reduce", N: n, P: 2, Engine: core.EngineSim, Seed: seed, Priority: class}
		if int(spec.key().hash()%uint64(shards)) == shard {
			specs = append(specs, spec)
		}
	}
	return specs
}

// TestStolenWorkStrictClassFirst is the class-aware steal regression
// test: a backlog of batch and interactive jobs pinned to one shard is
// drained by workers sweeping from elsewhere, and the sweep must follow
// the dequeue discipline — every strict (interactive) job starts before
// any weighted (batch) job, whether it was served from the home lane or
// stolen across shards.
func TestStolenWorkStrictClassFirst(t *testing.T) {
	q := New(Config{Workers: 2, Shards: 2, QueueDepth: 64, CacheSize: -1})
	defer q.Close()

	// Hold both workers so the pinned backlog accumulates unserved; the
	// blockers hash to shard 0 so shard 1's executed count stays the
	// spec jobs'.
	release := make(chan struct{})
	for _, name := range pinnedNames(0, 2, 2) {
		if _, err := q.SubmitFunc(name, func(context.Context) error { <-release; return nil }); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for q.Snapshot().Running != 2 {
		if time.Now().After(deadline) {
			t.Fatal("workers never picked up the blockers")
		}
		time.Sleep(time.Millisecond)
	}

	// Batch first into shard 1's lanes, interactive after — submission
	// order must not leak into dequeue order.
	var jobs []*Job
	for _, spec := range pinnedSpecs(1, 2, 3, 96, ClassBatch) {
		job, err := q.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, job)
	}
	for _, spec := range pinnedSpecs(1, 2, 3, 128, ClassInteractive) {
		job, err := q.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, job)
	}
	close(release)

	lastInteractive, firstBatch := time.Time{}, time.Time{}
	for _, j := range jobs {
		if _, err := j.Wait(context.Background()); err != nil {
			t.Fatalf("%s: %v", j.Name, err)
		}
		j.mu.Lock()
		switch j.Spec.Priority {
		case ClassInteractive:
			if j.started.After(lastInteractive) {
				lastInteractive = j.started
			}
		case ClassBatch:
			if firstBatch.IsZero() || j.started.Before(firstBatch) {
				firstBatch = j.started
			}
		}
		j.mu.Unlock()
	}
	if firstBatch.Before(lastInteractive) {
		t.Errorf("a batch job started at %v before the last interactive start %v: the sweep ignored strict priority", firstBatch, lastInteractive)
	}
	m := q.Snapshot()
	if m.PerShard[1].Executed != 6 {
		t.Errorf("pinned shard executed %d, want 6", m.PerShard[1].Executed)
	}
}
