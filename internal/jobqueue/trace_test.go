package jobqueue

import (
	"context"
	"errors"
	"testing"
	"time"

	"lopram/internal/core"
	"lopram/internal/jobtrace"
)

// TestTraceNoSinkNoRecorder: without a TraceSink the queue has no
// recorder at all — the hot paths take the nil branch and TraceStats
// stays zero.
func TestTraceNoSinkNoRecorder(t *testing.T) {
	q := New(Config{Workers: 2, Shards: 1})
	defer q.Close()
	if q.rec != nil {
		t.Fatal("recorder allocated without a TraceSink")
	}
	job, err := q.Submit(Spec{Algorithm: "reduce", N: 64, Engine: core.EngineSim, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := job.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if e, d := q.TraceStats(); e != 0 || d != 0 {
		t.Fatalf("TraceStats = %d, %d, want 0, 0", e, d)
	}
}

// TestTraceCardinalityMatchesMetrics is the acceptance cross-check:
// with a sink attached, every submission appears exactly once in the
// trace (or the drop counter) — emitted == (Completed+Failed) +
// CacheHits + Coalesced + Rejected, and the sink received emitted −
// dropped records.
func TestTraceCardinalityMatchesMetrics(t *testing.T) {
	sink := &jobtrace.MemorySink{}
	q := New(Config{Workers: 4, Shards: 2, TraceSink: sink})

	var jobs []*Job
	for round := 0; round < 3; round++ {
		for i := 0; i < 20; i++ {
			spec := Spec{Algorithm: "reduce", N: 64 + i, Engine: core.EngineSim, Seed: uint64(i % 7)}
			job, err := q.Submit(spec)
			if err != nil {
				t.Fatalf("submit round %d job %d: %v", round, i, err)
			}
			jobs = append(jobs, job)
		}
		// Wait out each round so later rounds hit the cache rather than
		// all coalescing — the trace must count both paths correctly.
		for _, job := range jobs {
			if _, err := job.Wait(context.Background()); err != nil {
				t.Fatal(err)
			}
		}
	}
	q.Close()

	m := q.Snapshot()
	emitted, dropped := q.TraceStats()
	recs := sink.Records()
	if int64(len(recs)) != emitted-dropped {
		t.Fatalf("sink holds %d records, want emitted %d - dropped %d", len(recs), emitted, dropped)
	}
	want := (m.Completed + m.Failed) + m.CacheHits + m.Coalesced + m.Rejected
	if emitted != want {
		t.Fatalf("emitted %d records, want (completed %d + failed %d) + hits %d + coalesced %d + rejected %d = %d",
			emitted, m.Completed, m.Failed, m.CacheHits, m.Coalesced, m.Rejected, want)
	}
	if m.TraceRecords != emitted || m.TraceDropped != dropped {
		t.Fatalf("Metrics trace counters %d/%d, want %d/%d", m.TraceRecords, m.TraceDropped, emitted, dropped)
	}

	var exec, hit, coal int64
	for _, r := range recs {
		switch r.Disposition {
		case jobtrace.DispositionExecuted:
			exec++
			if r.ExecShard < 0 || r.ExecShard >= 2 {
				t.Errorf("executed record %s has exec_shard %d", r.Key, r.ExecShard)
			}
			if r.Outcome != jobtrace.OutcomeOK {
				t.Errorf("record %s outcome %q, want ok", r.Key, r.Outcome)
			}
			if r.StartNS == 0 || r.FinishNS == 0 || r.RunMS < 0 || r.WaitMS < 0 {
				t.Errorf("executed record %s missing timings: %+v", r.Key, r)
			}
			if r.StealOrigin >= 0 && r.StealOrigin == r.ExecShard {
				t.Errorf("record %s claims a steal from its own exec shard %d", r.Key, r.ExecShard)
			}
		case jobtrace.DispositionHit:
			hit++
		case jobtrace.DispositionCoalesce:
			coal++
		default:
			t.Errorf("unexpected disposition %q", r.Disposition)
		}
		if r.Key == "" || r.Class != string(ClassInteractive) {
			t.Errorf("record missing identity: %+v", r)
		}
		if r.SubmitShard < 0 || r.SubmitShard >= 2 {
			t.Errorf("record %s submit_shard %d out of range", r.Key, r.SubmitShard)
		}
		if r.EpochSubmit != 1 || r.EpochSettle != 1 {
			t.Errorf("record %s epochs %d/%d, want 1/1 on an unresized queue", r.Key, r.EpochSubmit, r.EpochSettle)
		}
	}
	if dropped == 0 {
		if exec != m.Completed+m.Failed || hit != m.CacheHits || coal != m.Coalesced {
			t.Errorf("disposition counts exec/hit/coalesce = %d/%d/%d, metrics say %d/%d/%d",
				exec, hit, coal, m.Completed+m.Failed, m.CacheHits, m.Coalesced)
		}
	}
}

// TestTraceRejectedRecords: admission refusals emit rejected records
// whose count matches Metrics.Rejected.
func TestTraceRejectedRecords(t *testing.T) {
	sink := &jobtrace.MemorySink{}
	q := New(Config{Workers: 1, Shards: 1, QueueDepth: 2, TraceSink: sink})
	gate := make(chan struct{})
	blocker := func(context.Context) error { <-gate; return nil }

	var jobs []*Job
	rejections := 0
	// One job occupies the worker, two fill the interactive lane; the
	// rest must be refused.
	for i := 0; i < 8; i++ {
		job, err := q.SubmitFunc("blocker", blocker)
		switch {
		case err == nil:
			jobs = append(jobs, job)
		case errors.Is(err, ErrQueueFull):
			rejections++
		default:
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	if rejections == 0 {
		t.Fatal("no submission was rejected; lane bound not exercised")
	}
	close(gate)
	for _, job := range jobs {
		if _, err := job.Wait(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	q.Close()

	m := q.Snapshot()
	var rejectedRecs int64
	for _, r := range sink.Records() {
		if r.Disposition != jobtrace.DispositionRejected {
			continue
		}
		rejectedRecs++
		if r.ExecShard != -1 || r.StealOrigin != -1 || r.Outcome != "" {
			t.Errorf("rejected record carries execution fields: %+v", r)
		}
		if r.Key != "blocker" {
			t.Errorf("rejected record key %q, want blocker", r.Key)
		}
	}
	if rejectedRecs != m.Rejected || rejectedRecs != int64(rejections) {
		t.Fatalf("rejected records %d, Metrics.Rejected %d, observed rejections %d — all should agree",
			rejectedRecs, m.Rejected, rejections)
	}
}

// TestTraceTimeoutOutcomeSpec: an algorithm job with a tiny deadline
// produces an executed record with outcome timeout and an error.
func TestTraceTimeoutOutcomeSpec(t *testing.T) {
	sink := &jobtrace.MemorySink{}
	q := New(Config{Workers: 1, Shards: 1, TraceSink: sink})
	spec := Spec{Algorithm: "mergesort", N: 1 << 16, Engine: core.EnginePalrt, Seed: 1,
		Timeout: time.Microsecond}
	job, err := q.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := job.Wait(context.Background()); err == nil {
		t.Fatal("expected a deadline failure")
	}
	q.Close()
	recs := sink.Records()
	if len(recs) != 1 {
		t.Fatalf("got %d records, want 1", len(recs))
	}
	r := recs[0]
	if r.Disposition != jobtrace.DispositionExecuted || r.Outcome != jobtrace.OutcomeTimeout {
		t.Fatalf("record disposition/outcome %q/%q, want executed/timeout", r.Disposition, r.Outcome)
	}
	if r.Error == "" {
		t.Error("timeout record has no error message")
	}
}

// blockingSink blocks its first Record call until released, so a test
// can deterministically fill the recorder ring.
type blockingSink struct {
	release chan struct{}
	inner   jobtrace.MemorySink
	first   bool
}

func (b *blockingSink) Record(r jobtrace.Record) {
	if !b.first {
		b.first = true
		<-b.release
	}
	b.inner.Record(r)
}

// TestTraceDropCounting: a stuck sink with a tiny ring drops records
// instead of blocking the queue, and the drop counter accounts for
// every missing record.
func TestTraceDropCounting(t *testing.T) {
	sink := &blockingSink{release: make(chan struct{})}
	q := New(Config{Workers: 2, Shards: 1, CacheSize: -1, TraceSink: sink, TraceBuffer: 1})
	var jobs []*Job
	const n = 8
	for i := 0; i < n; i++ {
		job, err := q.Submit(Spec{Algorithm: "reduce", N: 64 + i, Engine: core.EngineSim, Seed: uint64(i)})
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, job)
	}
	for _, job := range jobs {
		if _, err := job.Wait(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	// All settles have emitted (Wait returns after settle); the sink is
	// still stuck on its first record with a 1-slot ring, so at least
	// n-2 emissions had nowhere to go.
	close(sink.release)
	q.Close()
	emitted, dropped := q.TraceStats()
	if emitted != n {
		t.Fatalf("emitted %d, want %d", emitted, n)
	}
	if dropped < n-2 {
		t.Errorf("dropped %d, want >= %d with a stuck 1-slot ring", dropped, n-2)
	}
	if got := int64(sink.inner.Len()); got != emitted-dropped {
		t.Fatalf("sink received %d, want emitted %d - dropped %d", got, emitted, dropped)
	}
}
