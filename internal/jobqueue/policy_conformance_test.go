package jobqueue_test

// The policytest conformance harness runs against every shipped policy;
// external test package so the harness (which imports jobqueue) can be
// exercised exactly the way a custom-policy author would use it.

import (
	"testing"

	"lopram/internal/jobqueue"
	"lopram/internal/jobqueue/policytest"
)

func TestDequeuePolicyConformance(t *testing.T) {
	for _, name := range jobqueue.DequeuePolicyNames() {
		p, err := jobqueue.ParseDequeuePolicy(name)
		if err != nil {
			t.Fatalf("ParseDequeuePolicy(%q): %v", name, err)
		}
		t.Run(name, func(t *testing.T) { policytest.RunDequeue(t, p) })
	}
}

func TestAdmissionPolicyConformance(t *testing.T) {
	for _, name := range jobqueue.AdmissionPolicyNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			policytest.RunAdmission(t, func() jobqueue.AdmissionPolicy {
				p, err := jobqueue.ParseAdmissionPolicy(name)
				if err != nil {
					t.Fatalf("ParseAdmissionPolicy(%q): %v", name, err)
				}
				return p
			})
		})
	}
}
