package jobqueue

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"lopram/internal/core"
)

func TestParseDequeuePolicy(t *testing.T) {
	for _, name := range DequeuePolicyNames() {
		p, err := ParseDequeuePolicy(name)
		if err != nil {
			t.Fatalf("ParseDequeuePolicy(%q): %v", name, err)
		}
		if p.Name() != name {
			t.Errorf("ParseDequeuePolicy(%q).Name() = %q", name, p.Name())
		}
	}
	if p, err := ParseDequeuePolicy(""); err != nil || p.Name() != "default" {
		t.Errorf(`ParseDequeuePolicy("") = %v, %v; want the default policy`, p, err)
	}
	_, err := ParseDequeuePolicy("wfq")
	if !errors.Is(err, ErrUnknownPolicy) {
		t.Fatalf("ParseDequeuePolicy(wfq) error = %v, want ErrUnknownPolicy", err)
	}
	for _, name := range DequeuePolicyNames() {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("unknown-policy error %q does not list valid name %q", err, name)
		}
	}
}

func TestParseAdmissionPolicy(t *testing.T) {
	for _, name := range AdmissionPolicyNames() {
		p, err := ParseAdmissionPolicy(name)
		if err != nil {
			t.Fatalf("ParseAdmissionPolicy(%q): %v", name, err)
		}
		if p.Name() != name {
			t.Errorf("ParseAdmissionPolicy(%q).Name() = %q", name, p.Name())
		}
	}
	if _, err := ParseAdmissionPolicy("token-bucket:100"); err != nil {
		t.Errorf("token-bucket:100: %v", err)
	}
	if _, err := ParseAdmissionPolicy("token-bucket:100:32"); err != nil {
		t.Errorf("token-bucket:100:32: %v", err)
	}
	for _, bad := range []string{"token-bucket:zero", "token-bucket:-1", "token-bucket:10:0",
		"token-bucket:10:8:extra", "default:5"} {
		if _, err := ParseAdmissionPolicy(bad); err == nil {
			t.Errorf("ParseAdmissionPolicy(%q) accepted", bad)
		}
	}
	_, err := ParseAdmissionPolicy("leaky-bucket")
	if !errors.Is(err, ErrUnknownPolicy) {
		t.Fatalf("ParseAdmissionPolicy(leaky-bucket) error = %v, want ErrUnknownPolicy", err)
	}
	for _, name := range AdmissionPolicyNames() {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("unknown-policy error %q does not list valid name %q", err, name)
		}
	}
}

func TestNewPanicsOnUnknownPolicy(t *testing.T) {
	for _, cfg := range []Config{
		{Policies: Policies{Dequeue: "wfq"}},
		{Policies: Policies{Admission: "leaky-bucket"}},
	} {
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Errorf("New(%+v) did not panic", cfg.Policies)
					return
				}
				err, ok := r.(error)
				if !ok || !errors.Is(err, ErrUnknownPolicy) {
					t.Errorf("New(%+v) panicked with %v, want ErrUnknownPolicy", cfg.Policies, r)
				}
			}()
			q := New(cfg)
			q.Close()
		}()
	}
}

func TestPolicyNames(t *testing.T) {
	q := New(Config{Workers: 1})
	if d, a := q.PolicyNames(); d != "default" || a != "default" {
		t.Errorf("zero-config PolicyNames() = %q, %q", d, a)
	}
	q.Close()
	q = New(Config{Workers: 1, Policies: Policies{Dequeue: "sjf", Admission: "token-bucket"}})
	if d, a := q.PolicyNames(); d != "sjf" || a != "token-bucket" {
		t.Errorf("PolicyNames() = %q, %q, want sjf, token-bucket", d, a)
	}
	if got := q.Snapshot().Policies; got.Dequeue != "sjf" || got.Admission != "token-bucket" {
		t.Errorf("Snapshot().Policies = %+v", got)
	}
	q.Close()
}

func TestSJFBefore(t *testing.T) {
	p := SJFDequeue{}
	short := &JobView{ID: 2 << 6, Cost: CostEstimate{Known: true, Units: 10, Wall: time.Millisecond}}
	long := &JobView{ID: 1 << 6, Cost: CostEstimate{Known: true, Units: 1e6, Wall: time.Second}}
	unknown := &JobView{ID: 0 << 6, Cost: CostEstimate{}}
	if !p.Before(short, long) || p.Before(long, short) {
		t.Errorf("SJF does not order short before long")
	}
	if !p.Before(long, unknown) {
		t.Errorf("SJF orders an unknown-cost job before a known-cost one")
	}
	unitsOnly := &JobView{ID: 3 << 6, Cost: CostEstimate{Known: true, Units: 5}}
	if !p.Before(unitsOnly, unknown) {
		t.Errorf("SJF ignores a units-only estimate")
	}
}

func TestEDFBefore(t *testing.T) {
	p := EDFDequeue{}
	base := time.Now()
	urgent := &JobView{ID: 2 << 6, Submitted: base, Deadline: 10 * time.Millisecond}
	relaxed := &JobView{ID: 1 << 6, Submitted: base, Deadline: time.Minute}
	none := &JobView{ID: 0 << 6, Submitted: base}
	if !p.Before(urgent, relaxed) || p.Before(relaxed, urgent) {
		t.Errorf("EDF does not order the earlier deadline first")
	}
	if !p.Before(relaxed, none) || p.Before(none, relaxed) {
		t.Errorf("EDF does not order deadlined jobs before undeadlined ones")
	}
	// Earlier arrival with the same budget = earlier absolute deadline.
	older := &JobView{ID: 3 << 6, Submitted: base.Add(-time.Second), Deadline: time.Minute}
	if !p.Before(older, relaxed) {
		t.Errorf("EDF ignores arrival time in the absolute deadline")
	}
}

func TestTokenBucketDeadlineShed(t *testing.T) {
	p := NewTokenBucketAdmission(1000, 100)
	req := AdmissionRequest{
		ClassName: "interactive", LaneDepth: 100, Deadline: time.Millisecond,
		Cost: CostEstimate{Known: true, Units: 1e9, Wall: time.Second},
		Now:  time.Now(),
	}
	err := p.Admit(req)
	if !errors.Is(err, ErrDeadlineInfeasible) {
		t.Fatalf("infeasible job admitted: %v", err)
	}
	// Unknown costs and absent deadlines must not shed.
	req.Cost = CostEstimate{}
	if err := p.Admit(req); err != nil {
		t.Errorf("unknown-cost job shed: %v", err)
	}
	req.Cost = CostEstimate{Known: true, Units: 1e9, Wall: time.Second}
	req.Deadline = 0
	if err := p.Admit(req); err != nil {
		t.Errorf("undeadlined job shed: %v", err)
	}
}

func TestTokenBucketRate(t *testing.T) {
	const burst = 8
	p := NewTokenBucketAdmission(10, burst)
	now := time.Now()
	req := AdmissionRequest{ClassName: "interactive", LaneDepth: 1 << 20, Now: now}
	for i := 0; i < burst; i++ {
		if err := p.Admit(req); err != nil {
			t.Fatalf("admit %d within burst: %v", i, err)
		}
	}
	err := p.Admit(req)
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("admit past burst = %v, want ErrQueueFull", err)
	}
	// The rejection consumed nothing and the bucket refills with time:
	// 10 tokens/sec → one token 100ms later.
	req.Now = now.Add(150 * time.Millisecond)
	if err := p.Admit(req); err != nil {
		t.Fatalf("admit after refill: %v", err)
	}
	if err := p.Admit(req); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("second admit after one-token refill = %v, want ErrQueueFull", err)
	}
	// Buckets are per class.
	other := AdmissionRequest{Class: 1, ClassName: "batch", LaneDepth: 1 << 20, Now: now}
	if err := p.Admit(other); err != nil {
		t.Fatalf("fresh class shares a drained bucket: %v", err)
	}
}

func TestTokenBucketShedOnQueue(t *testing.T) {
	// An end-to-end shed: predicted cost can never beat a 1ns deadline,
	// so the queue rejects at submit with ErrDeadlineInfeasible and the
	// scenario-facing counters see a rejection, not a timeout.
	q := New(Config{Workers: 1, Policies: Policies{Admission: "token-bucket"}})
	defer q.Close()
	_, err := q.Submit(Spec{Algorithm: "mergesort", N: 1 << 16, P: 4, Engine: core.EnginePalrt,
		Seed: 1, Timeout: time.Nanosecond})
	if !errors.Is(err, ErrDeadlineInfeasible) {
		t.Fatalf("Submit with 1ns deadline = %v, want ErrDeadlineInfeasible", err)
	}
	m := q.Snapshot()
	if m.Rejected != 1 || m.PerClass[ClassInteractive].Rejected != 1 {
		t.Errorf("shed not counted as rejection: total %d, class %d",
			m.Rejected, m.PerClass[ClassInteractive].Rejected)
	}
	// A feasible job on the same queue still runs.
	j, err := q.Submit(Spec{Algorithm: "reduce", N: 64, P: 2, Engine: core.EngineSim, Seed: 2})
	if err != nil {
		t.Fatalf("feasible submit: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if _, err := j.Wait(ctx); err != nil {
		t.Fatalf("feasible job failed: %v", err)
	}
}
