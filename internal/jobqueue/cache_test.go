package jobqueue

import (
	"testing"

	"lopram/internal/core"
)

func k(n int) Key { return Key{Algorithm: "mergesort", N: n, P: 2, Engine: core.EngineSim} }

func put(c *lru, key Key, v int64) {
	c.put(key, "job", Result{Outcome: core.Outcome{Value: v}})
}

func TestLRUEviction(t *testing.T) {
	c := newLRU(2)
	put(c, k(1), 1)
	put(c, k(2), 2)
	if _, ok := c.get(k(1)); !ok {
		t.Fatal("k1 missing before eviction")
	}
	// Eviction is insertion-ordered and lookups do not promote (the
	// lock-free read index cannot record recency, so the locked path
	// must not either): the get above leaves k1 the oldest insert, and
	// inserting k3 evicts it, not k2.
	put(c, k(3), 3)
	if _, ok := c.get(k(1)); ok {
		t.Fatal("k1 survived eviction despite being the oldest insert")
	}
	if e, ok := c.get(k(2)); !ok || e.res.Value != 2 {
		t.Fatalf("k2 lost or corrupted: %v %v", e, ok)
	}
	if e, ok := c.get(k(3)); !ok || e.res.Value != 3 {
		t.Fatalf("k3 lost or corrupted: %v %v", e, ok)
	}
	if c.len() != 2 {
		t.Fatalf("len = %d, want 2", c.len())
	}
	// A put refresh, by contrast, does promote: re-putting k2 then
	// inserting k4 evicts k3.
	put(c, k(2), 22)
	put(c, k(4), 4)
	if _, ok := c.get(k(3)); ok {
		t.Fatal("k3 survived eviction despite k2's refresh")
	}
	if e, ok := c.get(k(2)); !ok || e.res.Value != 22 {
		t.Fatalf("refreshed k2 lost or corrupted: %v %v", e, ok)
	}
}

func TestLRURefresh(t *testing.T) {
	c := newLRU(4)
	c.put(k(1), "first", Result{Outcome: core.Outcome{Value: 1}})
	c.put(k(1), "second", Result{Outcome: core.Outcome{Value: 42}})
	if c.len() != 1 {
		t.Fatalf("len = %d after double put, want 1", c.len())
	}
	if e, _ := c.get(k(1)); e.res.Value != 42 || e.name != "second" {
		t.Fatalf("refresh lost: %+v", e)
	}
}

func TestLRUZeroCapacity(t *testing.T) {
	c := newLRU(0)
	put(c, k(1), 0)
	if _, ok := c.get(k(1)); ok {
		t.Fatal("zero-capacity cache stored a result")
	}
	if c.len() != 0 {
		t.Fatal("zero-capacity cache non-empty")
	}
}
