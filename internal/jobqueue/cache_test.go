package jobqueue

import (
	"testing"

	"lopram/internal/core"
)

func k(n int) Key { return Key{Algorithm: "mergesort", N: n, P: 2, Engine: core.EngineSim} }

func TestLRUEviction(t *testing.T) {
	c := newLRU(2)
	c.put(k(1), Result{Outcome: core.Outcome{Value: 1}})
	c.put(k(2), Result{Outcome: core.Outcome{Value: 2}})
	if _, ok := c.get(k(1)); !ok {
		t.Fatal("k1 missing before eviction")
	}
	// k1 is now most recent; inserting k3 evicts k2.
	c.put(k(3), Result{Outcome: core.Outcome{Value: 3}})
	if _, ok := c.get(k(2)); ok {
		t.Fatal("k2 survived eviction")
	}
	if res, ok := c.get(k(1)); !ok || res.Value != 1 {
		t.Fatalf("k1 lost or corrupted: %v %v", res, ok)
	}
	if res, ok := c.get(k(3)); !ok || res.Value != 3 {
		t.Fatalf("k3 lost or corrupted: %v %v", res, ok)
	}
	if c.len() != 2 {
		t.Fatalf("len = %d, want 2", c.len())
	}
}

func TestLRURefresh(t *testing.T) {
	c := newLRU(4)
	c.put(k(1), Result{Outcome: core.Outcome{Value: 1}})
	c.put(k(1), Result{Outcome: core.Outcome{Value: 42}})
	if c.len() != 1 {
		t.Fatalf("len = %d after double put, want 1", c.len())
	}
	if res, _ := c.get(k(1)); res.Value != 42 {
		t.Fatalf("refresh lost: %d", res.Value)
	}
}

func TestLRUZeroCapacity(t *testing.T) {
	c := newLRU(0)
	c.put(k(1), Result{})
	if _, ok := c.get(k(1)); ok {
		t.Fatal("zero-capacity cache stored a result")
	}
	if c.len() != 0 {
		t.Fatal("zero-capacity cache non-empty")
	}
}
