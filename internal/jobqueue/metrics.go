package jobqueue

import (
	runtimemetrics "runtime/metrics"

	"lopram/internal/palrt"
	"lopram/internal/stats"
)

type algoAggregate struct {
	count, failed int64
	totalWallMS   float64
}

// maxLatencySamples bounds the retained latency samples per ring; older
// samples are overwritten FIFO. 4096 is plenty for p99 estimation.
const maxLatencySamples = 4096

// sampleRing is a fixed-capacity latency-sample window with O(1) insertion
// (the appendBounded slice it replaces memmoved the whole window on every
// completed job). gen counts insertions so readers can skip recomputing
// summaries of an unchanged window; sample order is irrelevant to the
// percentile math, so overwriting the oldest slot in place is enough.
type sampleRing struct {
	buf  []float64
	next int
	full bool
	gen  uint64
}

func (r *sampleRing) add(x float64) {
	if r.buf == nil {
		r.buf = make([]float64, maxLatencySamples)
	}
	r.buf[r.next] = x
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.full = true
	}
	r.gen++
}

// copyOut returns a fresh copy of the live samples.
func (r *sampleRing) copyOut() []float64 {
	n := r.next
	if r.full {
		n = len(r.buf)
	}
	return append([]float64(nil), r.buf[:n]...)
}

// appendTo appends the live samples to dst.
func (r *sampleRing) appendTo(dst []float64) []float64 {
	n := r.next
	if r.full {
		n = len(r.buf)
	}
	return append(dst, r.buf[:n]...)
}

// AlgoStats summarizes one algorithm's traffic.
type AlgoStats struct {
	Count      int64   `json:"count"`
	Failed     int64   `json:"failed,omitempty"`
	MeanWallMS float64 `json:"mean_wall_ms"`
}

// ClassStats is one priority class's slice of the serving statistics:
// admission counters plus the class's own latency percentiles, merged
// across shards. Rejected counts admission-control refusals only (class
// lane full, queue closed); spec-validation rejections happen before a
// job has a resolved class and appear only in the queue-wide
// Metrics.Rejected, so the per-class values can sum below the total.
type ClassStats struct {
	Submitted int64         `json:"submitted"`
	Completed int64         `json:"completed"`
	Failed    int64         `json:"failed,omitempty"`
	Rejected  int64         `json:"rejected,omitempty"`
	Wall      stats.Summary `json:"wall_ms"`
	Wait      stats.Summary `json:"wait_ms"`
}

// PolicyInfo names a queue's active decision policies — the dequeue
// order and the admission rule (see Policies).
type PolicyInfo struct {
	Dequeue   string `json:"dequeue"`
	Admission string `json:"admission"`
}

// ShardStats is one shard's view of the traffic. Executed counts runs of
// jobs placed on this shard, whichever shard's worker ran them; Stolen
// counts jobs this shard's workers claimed from other shards' run queues.
// Imbalanced Executed across shards shows a skewed key distribution;
// Stolen shows the idle-shard work stealing evening it back out.
type ShardStats struct {
	Shard     int   `json:"shard"`
	Pending   int64 `json:"pending"`
	Executed  int64 `json:"executed"`
	Stolen    int64 `json:"stolen"`
	CacheSize int   `json:"cache_size"`
	Retained  int   `json:"retained"`
}

// Metrics is a point-in-time snapshot of the queue's serving statistics,
// merged across all shards.
type Metrics struct {
	Workers int `json:"workers"`
	Shards  int `json:"shards"`
	// Epoch is the placement-table generation: 1 at queue creation, +1
	// per live resize. Placement (which shard serves which key) is
	// deterministic within an epoch; PerShard describes the current
	// epoch's table.
	Epoch uint64 `json:"epoch"`
	// Autoscale echoes the shard-autoscaler configuration (bounds,
	// interval, thresholds) when the controller is enabled.
	Autoscale  *AutoscaleConfig `json:"autoscale,omitempty"`
	QueueDepth int              `json:"queue_depth"`
	Pending    int64            `json:"pending"`
	Running    int64            `json:"running"`

	Submitted int64 `json:"submitted"`
	Completed int64 `json:"completed"`
	Failed    int64 `json:"failed"`
	Rejected  int64 `json:"rejected"`
	Timeouts  int64 `json:"timeouts"`
	Abandoned int64 `json:"abandoned_running"`
	// Steals counts jobs executed by a worker from another shard — the
	// idle-shard work stealing evening out placement skew.
	Steals int64 `json:"steals"`

	Coalesced   int64   `json:"coalesced"`
	CacheHits   int64   `json:"cache_hits"`
	CacheMisses int64   `json:"cache_misses"`
	CacheSize   int     `json:"cache_size"`
	HitRate     float64 `json:"hit_rate"`

	Wall stats.Summary `json:"wall_ms"`
	Wait stats.Summary `json:"wait_ms"`

	// Classes is the queue's configured class set in dequeue order
	// (name, weight, quota) — the key space of PerClass.
	Classes ClassSet `json:"classes"`
	// Policies names the active dequeue and admission policies
	// ("default"/"default" for the native wiring).
	Policies PolicyInfo `json:"policies"`
	// PerClass splits the traffic by priority class name, each with its
	// own latency percentiles.
	PerClass map[Class]ClassStats `json:"per_class"`
	// PerShard is the per-shard placement/execution/steal breakdown,
	// indexed by shard.
	PerShard []ShardStats `json:"per_shard,omitempty"`

	// TraceRecords and TraceDropped are the flight recorder's totals:
	// completion records emitted, and the subset dropped because the
	// recorder ring was full (sink too slow) or shutdown had begun.
	// Zero when no Config.TraceSink is attached.
	TraceRecords int64 `json:"trace_records,omitempty"`
	TraceDropped int64 `json:"trace_dropped,omitempty"`

	// RuntimeMutexWaitSeconds is the process-wide cumulative time
	// goroutines have spent blocked on sync.Mutex/RWMutex acquisition
	// (runtime/metrics "/sync/mutex/wait/total:seconds"): lock
	// contention made observable from /v1/metrics without attaching a
	// profiler. Monotonic; diff two snapshots to rate it.
	RuntimeMutexWaitSeconds float64 `json:"runtime_mutex_wait_seconds"`

	// Scheduler is the palrt work-stealing runtime's process-wide
	// spawn/steal/inline breakdown: how the goroutine engine behind every
	// EnginePalrt job scheduled its pal-threads.
	Scheduler palrt.SchedulerStats `json:"scheduler"`

	PerAlgorithm map[string]AlgoStats `json:"per_algorithm,omitempty"`
}

// summaryCache memoizes the merged latency summaries by the sum of all
// worker-ring generations: a /metrics poll of an idle queue reuses the
// previous sort instead of re-sorting up to Workers×maxLatencySamples
// samples. The generations are monotonic — worker metric shards survive
// resizes untouched — so the sum alone detects change.
type summaryCache struct {
	gen       uint64
	valid     bool
	wall      stats.Summary
	wait      stats.Summary
	classWall []stats.Summary // indexed by class-set position
	classWait []stats.Summary
}

// copyAutoscale detaches the autoscale config echoed in Metrics from the
// queue's live configuration, so mutating a snapshot cannot reconfigure
// the controller's bounds.
func copyAutoscale(a *AutoscaleConfig) *AutoscaleConfig {
	if a == nil {
		return nil
	}
	c := *a
	return &c
}

// Snapshot returns current metrics, merged across shards and worker
// metric shards. HitRate counts both cache hits and in-flight coalesces
// as served-without-execution. Each shard's lock is held only for O(1)
// reads; samples and per-algorithm aggregates are copied from the
// workers' own metric shards (one short lock each), and the percentile
// sorts run outside all of them, memoized by ring generation — so a
// metrics poll can never stall workers on an O(n log n) sort held under
// a queue lock. A snapshot that catches a live resize mid-swap retries
// against the new table, so it always describes one coherent epoch;
// Steals folds in the totals of shards retired by earlier resizes.
// Completions still sitting in a worker's flush buffer are not yet
// visible — they appear once their owning flush lands, which is always
// before their submitters' Wait returns.
func (q *Queue) Snapshot() Metrics {
	for {
		if m, ok := q.snapshotOnce(); ok {
			return m
		}
		retryPlacement()
	}
}

// snapshotOnce attempts one coherent snapshot of the current placement
// table; ok is false if a shard was caught mid-retirement. The table
// comes from retiredTotals, paired with the retired steal history, so
// Steals never loses a generation to an in-flight resize and stays
// monotonic.
func (q *Queue) snapshotOnce() (Metrics, bool) {
	p, _, retiredSteals := q.retiredTotals()
	m := Metrics{
		Workers:     p.workers,
		Shards:      len(p.shards),
		Epoch:       p.epoch,
		Autoscale:   copyAutoscale(q.cfg.Autoscale),
		QueueDepth:  q.cfg.QueueDepth,
		Pending:     q.pending.Load(),
		Running:     q.running.Load(),
		Submitted:   q.submitted.Load(),
		Completed:   q.completed.Load(),
		Failed:      q.failed.Load(),
		Rejected:    q.rejected.Load(),
		Timeouts:    q.timeouts.Load(),
		Abandoned:   q.abandonedG.Load(),
		Coalesced:   q.coalesced.Load(),
		CacheHits:   q.cacheHits.Load(),
		CacheMisses: q.cacheMiss.Load(),
	}
	served := m.CacheHits + m.Coalesced
	if total := served + m.CacheMisses; total > 0 {
		m.HitRate = float64(served) / float64(total)
	}
	m.Scheduler = palrt.GlobalStats()
	m.TraceRecords, m.TraceDropped = q.TraceStats()

	numClasses := len(q.classes.specs)
	m.Classes = q.Classes()
	m.Policies = PolicyInfo{Dequeue: q.deqName, Admission: q.admName}

	// Steal history of shards retired by earlier resizes stays part of
	// the queue totals, so Steals is monotonic across epochs.
	m.Steals += retiredSteals

	// The process-wide mutex-wait total: lock contention without a
	// profiler (the reason this queue grew a lock-light completion path).
	mutexWait := []runtimemetrics.Sample{{Name: "/sync/mutex/wait/total:seconds"}}
	runtimemetrics.Read(mutexWait)
	if mutexWait[0].Value.Kind() == runtimemetrics.KindFloat64 {
		m.RuntimeMutexWaitSeconds = mutexWait[0].Value.Float64()
	}

	// Pass 1, under each shard's lock in turn: the O(1) shard gauges.
	for _, s := range p.shards {
		s.mu.Lock()
		if s.retired {
			s.mu.Unlock()
			return Metrics{}, false
		}
		m.CacheSize += s.cache.len()
		st := ShardStats{
			Shard:     s.idx,
			Pending:   s.pending.Load(),
			Executed:  s.executed.Load(),
			Stolen:    s.stolen.Load(),
			CacheSize: s.cache.len(),
			Retained:  len(s.retained),
		}
		s.mu.Unlock()
		m.Steals += st.Stolen
		m.PerShard = append(m.PerShard, st)
	}

	// Pass 2, under each worker's metric-shard lock in turn: ring
	// generations and the per-algorithm aggregates. Worker metric shards
	// have no retirement — the pool only grows — so this pass never
	// invalidates the snapshot.
	wms := *q.workerM.Load()
	var gen uint64
	m.PerAlgorithm = make(map[string]AlgoStats)
	for _, wm := range wms {
		wm.mu.Lock()
		gen += wm.wall.gen + wm.wait.gen
		for c := 0; c < numClasses; c++ {
			gen += wm.classWall[c].gen + wm.classWait[c].gen
		}
		for name, agg := range wm.perAlgo {
			as := m.PerAlgorithm[name]
			as.Count += agg.count
			as.Failed += agg.failed
			// MeanWallMS is finalized below from the re-aggregated sum.
			as.MeanWallMS += agg.totalWallMS
			m.PerAlgorithm[name] = as
		}
		wm.mu.Unlock()
	}
	for name, as := range m.PerAlgorithm {
		if as.Count > 0 {
			as.MeanWallMS /= float64(as.Count)
		}
		m.PerAlgorithm[name] = as
	}

	// Pass 3: the latency summaries, memoized by ring generation.
	// Recomputing copies samples under each worker's metric-shard lock
	// but sorts outside all of them.
	q.sumMu.Lock()
	if !q.sums.valid || q.sums.gen != gen {
		var wall, wait []float64
		classWall := make([][]float64, numClasses)
		classWait := make([][]float64, numClasses)
		for _, wm := range wms {
			wm.mu.Lock()
			wall = wm.wall.appendTo(wall)
			wait = wm.wait.appendTo(wait)
			for c := 0; c < numClasses; c++ {
				classWall[c] = wm.classWall[c].appendTo(classWall[c])
				classWait[c] = wm.classWait[c].appendTo(classWait[c])
			}
			wm.mu.Unlock()
		}
		q.sums.wall = stats.Summarize(wall)
		q.sums.wait = stats.Summarize(wait)
		q.sums.classWall = make([]stats.Summary, numClasses)
		q.sums.classWait = make([]stats.Summary, numClasses)
		for c := 0; c < numClasses; c++ {
			q.sums.classWall[c] = stats.Summarize(classWall[c])
			q.sums.classWait[c] = stats.Summarize(classWait[c])
		}
		q.sums.gen = gen
		q.sums.valid = true
	}
	m.Wall, m.Wait = q.sums.wall, q.sums.wait
	m.PerClass = make(map[Class]ClassStats, numClasses)
	for c := 0; c < numClasses; c++ {
		m.PerClass[q.classes.specs[c].Name] = ClassStats{
			Submitted: q.perClass[c].submitted.Load(),
			Completed: q.perClass[c].completed.Load(),
			Failed:    q.perClass[c].failed.Load(),
			Rejected:  q.perClass[c].rejected.Load(),
			Wall:      q.sums.classWall[c],
			Wait:      q.sums.classWait[c],
		}
	}
	q.sumMu.Unlock()
	return m, true
}
