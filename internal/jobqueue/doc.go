// Package jobqueue is the sharded job-dispatch subsystem: a set of
// independent queue shards, each with its own worker pool, that accept
// simulation-job requests ("run algorithm A at size n with p processors on
// engine E"), validate and admission-control them per priority class,
// schedule them across workers with idle-shard work stealing, memoize
// completed results in per-shard LRU caches, and aggregate serving
// statistics into one merged snapshot.
//
// # Sharding and elasticity
//
// A Queue built with Config.Shards = N splits every mutable structure N
// ways: run queues, worker pools, in-flight coalescing maps, result
// caches, latency rings and per-algorithm aggregates. Shard addressing
// lives in one place — an immutable, epoch-versioned placement table
// swapped atomically — and a job is placed on the shard selected by an
// FNV-1a hash of its cache Key against the current table (func jobs hash
// their name), so identical specs always meet on the same shard of an
// epoch — the invariant coalescing and result caching depend on. No lock
// is global: heavy mixed traffic contends only within a shard, and
// Snapshot merges the shards' views after the fact.
//
// The shard count is not fixed at creation: Resize swaps in a table of a
// different size, migrating cached results, coalescing entries, queued
// jobs and latency samples with their keys while running jobs finish and
// settle through the new table, so no job is lost, re-executed or
// mis-cached across the swap. Config.Autoscale opts into a controller
// that calls Resize from observed contention (queue depth per shard plus
// steal pressure), growing and shrinking the table between its bounds —
// one binary serving a laptop and a big box without hand-tuning the
// shard count, the LoPRAM stance on p applied to the serving layer.
//
// Idle shards do not sit out: a worker whose own shard has no runnable
// job sweeps the other shards' run queues (interactive class first) and
// steals the oldest admitted job it finds, woken either by a queue-wide
// kick published on every enqueue or by a slow fallback poll. This is the
// same discipline internal/palrt applies to pal-threads — owner pops its
// own deque, thieves take from the others — lifted from threads to jobs.
//
// # Priority classes
//
// Every job carries a Class, drawn from the queue's runtime class set
// (Config.Classes): an ordered list of named classes, each with a
// dequeue weight and an admission quota. Admission control is per
// class: each class rides in its own lane of Quota × shard depth, so a
// flood in one class cannot crowd another out of admission. Dequeue
// order is the class set's discipline, applied queue-wide: strict
// classes (WeightStrict) drain first in set order, and the weighted
// classes share the remaining dequeues deficit-weighted round-robin —
// per worker, each round starts Weight jobs of every backlogged
// weighted class, so class throughput under saturation is proportional
// to weight and no weighted class starves. Latency percentiles and
// admission counters are kept per class so a serving report can show
// the populations separately.
//
// The default set, DefaultClasses, is strict interactive (jobs without
// a Priority, and all func jobs, run there) over weight-1 batch with a
// BatchShare admission quota — the degenerate "weights [∞, 1]"
// configuration, which reproduces the original hard-coded two-class
// behavior exactly: no batch job starts anywhere while an interactive
// job waits anywhere. A spec naming a class outside the set is refused
// at submit time with ErrUnknownClass.
//
// # Lineage
//
// The design transplants the paper's §3.1 scheduler from pal-threads to
// jobs: a fixed processor budget (the worker pools), work admitted into
// bounded pending sets and activated in creation order (the FIFO run
// queues), activated work never preempted, and saturation handled by
// refusing new work at admission (ErrQueueFull) rather than by unbounded
// queueing — the job-level analogue of a palthreads block running its
// children inline when no processor is free. Identical requests are
// coalesced while in flight and served from the result cache afterwards,
// the memoization principle of §4.5 applied to whole jobs.
package jobqueue
