// Package jobqueue is the sharded job-dispatch subsystem: a set of
// independent queue shards, each with its own worker pool, that accept
// simulation-job requests ("run algorithm A at size n with p processors on
// engine E"), validate and admission-control them per priority class,
// schedule them across workers with idle-shard work stealing, memoize
// completed results in per-shard LRU caches, and aggregate serving
// statistics into one merged snapshot.
//
// # Sharding
//
// A Queue built with Config.Shards = N splits every mutable structure N
// ways: run queues, worker pools, in-flight coalescing maps, result
// caches, latency rings and per-algorithm aggregates. A job is placed on
// the shard selected by an FNV-1a hash of its cache Key (func jobs hash
// their name), so identical specs always meet on the same shard — the
// invariant coalescing and result caching depend on. No lock is global:
// heavy mixed traffic contends only within a shard, and Snapshot merges
// the shards' views after the fact.
//
// Idle shards do not sit out: a worker whose own shard has no runnable
// job sweeps the other shards' run queues (interactive class first) and
// steals the oldest admitted job it finds, woken either by a queue-wide
// kick published on every enqueue or by a slow fallback poll. This is the
// same discipline internal/palrt applies to pal-threads — owner pops its
// own deque, thieves take from the others — lifted from threads to jobs.
//
// # Priority classes
//
// Every job carries a Class: ClassInteractive (the default) or
// ClassBatch. Admission control is per class: the interactive class owns
// each shard's full queue depth, while the batch class rides in its own
// smaller lane (Config.BatchShare of that depth) on top, so a flood in
// either class cannot crowd the other out of admission. Workers dequeue
// with strict class priority across the whole queue — no batch job
// starts anywhere while an interactive job waits anywhere — and latency
// percentiles are kept per class so a serving report can show the two
// populations separately.
//
// # Lineage
//
// The design transplants the paper's §3.1 scheduler from pal-threads to
// jobs: a fixed processor budget (the worker pools), work admitted into
// bounded pending sets and activated in creation order (the FIFO run
// queues), activated work never preempted, and saturation handled by
// refusing new work at admission (ErrQueueFull) rather than by unbounded
// queueing — the job-level analogue of a palthreads block running its
// children inline when no processor is free. Identical requests are
// coalesced while in flight and served from the result cache afterwards,
// the memoization principle of §4.5 applied to whole jobs.
package jobqueue
