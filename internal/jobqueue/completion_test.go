package jobqueue

import (
	"context"
	"sync"
	"testing"
	"time"

	"lopram/internal/jobtrace"
)

// TestBatchedSettleResizeDuplicateStorm hammers the batched completion
// path from eight single-Submit storms over a small key universe while
// the placement table moves 1→4→2 under the traffic. Every Wait must
// return (no completion lost to a flush that raced a retirement), the
// trace must show each distinct key executed exactly once (a
// double-settle would re-execute or double-record), and every duplicate
// must be served the winner's exact outcome (a mis-cache across epochs
// would hand a key some other key's result).
func TestBatchedSettleResizeDuplicateStorm(t *testing.T) {
	sink := &jobtrace.MemorySink{}
	q := New(Config{
		Workers: 4, Shards: 1, QueueDepth: 1 << 15, CacheSize: 1 << 15,
		TraceSink: sink, TraceBuffer: 1 << 16,
	})
	const submitters = 8
	const perSubmitter = 400
	const keyspace = 96

	// Outcome consistency ledger: reduce is deterministic per seed, so
	// every serve of one key — executed, cache hit, coalesced, across
	// any epoch — must report one Value.
	var ledger sync.Mutex
	valueOf := make(map[uint64]int64)

	firstDone := make(chan struct{}, submitters)
	var wg sync.WaitGroup
	for w := 0; w < submitters; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := uint64(w)*2654435761 + 1
			signaled := false
			for i := 0; i < perSubmitter; i++ {
				rng = rng*6364136223846793005 + 1442695040888963407
				seed := rng % keyspace
				job, err := q.Submit(simSpec(seed))
				if err != nil {
					t.Errorf("submitter %d: Submit: %v", w, err)
					continue
				}
				res, err := job.Wait(context.Background())
				if err != nil {
					t.Errorf("submitter %d: Wait(seed=%d): %v", w, seed, err)
					continue
				}
				ledger.Lock()
				if v, ok := valueOf[seed]; !ok {
					valueOf[seed] = res.Value
				} else if v != res.Value {
					t.Errorf("submitter %d: seed %d served value %d, earlier %d (mis-cache)", w, seed, res.Value, v)
				}
				ledger.Unlock()
				if !signaled {
					signaled = true
					firstDone <- struct{}{}
				}
			}
		}(w)
	}
	// Move the table twice mid-storm, with a short gap so submissions
	// and flushes land in all three epochs.
	<-firstDone
	if _, err := q.Resize(4); err != nil {
		t.Errorf("Resize(4): %v", err)
	}
	time.Sleep(2 * time.Millisecond)
	if _, err := q.Resize(2); err != nil {
		t.Errorf("Resize(2): %v", err)
	}
	wg.Wait()
	q.Close()

	if _, dropped := q.TraceStats(); dropped != 0 {
		t.Fatalf("recorder dropped %d records; the accounting below needs all of them", dropped)
	}
	execPerKey := make(map[string]int)
	var executed, dups, other int
	for _, r := range sink.Records() {
		switch r.Disposition {
		case jobtrace.DispositionExecuted:
			executed++
			execPerKey[r.Key]++
			if r.EpochSettle < r.EpochSubmit {
				t.Errorf("key %s settled in epoch %d before its submit epoch %d", r.Key, r.EpochSettle, r.EpochSubmit)
			}
		case jobtrace.DispositionHit, jobtrace.DispositionCoalesce:
			dups++
		default:
			other++
			t.Errorf("unexpected disposition %q for %s", r.Disposition, r.Key)
		}
	}
	for k, n := range execPerKey {
		if n != 1 {
			t.Errorf("key %s executed %d times (double settle)", k, n)
		}
	}
	if got := executed + dups + other; got != submitters*perSubmitter {
		t.Fatalf("recorded %d submissions, want %d (lost completion)", got, submitters*perSubmitter)
	}

	m := q.Snapshot()
	if m.Completed != int64(executed) {
		t.Errorf("Completed = %d, want %d", m.Completed, executed)
	}
	if m.Failed != 0 || m.Timeouts != 0 || m.Rejected != 0 {
		t.Errorf("failed=%d timeouts=%d rejected=%d, want all 0", m.Failed, m.Timeouts, m.Rejected)
	}
	if m.Pending != 0 {
		t.Errorf("Pending = %d after drain", m.Pending)
	}
	if hitsDups := m.CacheHits + m.Coalesced; hitsDups != int64(dups) {
		t.Errorf("hits+coalesced = %d, trace says %d", hitsDups, dups)
	}
	// Every outcome metric must have landed by Close (no sample stranded
	// in an unflushed buffer).
	if m.Wall.Count != executed {
		t.Errorf("Wall.Count = %d, want %d", m.Wall.Count, executed)
	}
}

// TestCacheHitSubmitAllocs pins the allocation cost of the cache-hit
// submit paths. The pooled batch path must be allocation-free: the
// frame comes from the arena and the hit is served from the lock-free
// read index without ring publication, a done channel, or a rendered
// name. The single-Submit path returns an escaping *Job — that is its
// API — so it is pinned at exactly that one allocation (the name comes
// pre-rendered from the cache entry).
func TestCacheHitSubmitAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates, distorting the counts")
	}
	q := New(Config{Workers: 1, Shards: 1, CacheSize: 1 << 10})
	defer q.Close()
	spec := simSpec(7)
	warm, err := q.Submit(spec)
	if err != nil {
		t.Fatalf("prime: %v", err)
	}
	if _, err := warm.Wait(context.Background()); err != nil {
		t.Fatalf("prime wait: %v", err)
	}
	// The priming flush has republished the read index (Wait returns
	// only after the owning flush), so everything below is fast-path.
	release := blockWorkers(t, q, 1)
	defer release()

	b := q.NewBatch()
	// Pre-grow the batch's job slice so append growth is not billed.
	for i := 0; i < 8; i++ {
		if err := b.Submit(spec); err != nil {
			t.Fatalf("pre-grow submit: %v", err)
		}
	}
	if err := b.Wait(context.Background()); err != nil {
		t.Fatalf("pre-grow wait: %v", err)
	}
	b.Release()
	allocs := testing.AllocsPerRun(200, func() {
		b := q.NewBatch()
		for i := 0; i < 8; i++ {
			if err := b.Submit(spec); err != nil {
				t.Fatalf("batch submit: %v", err)
			}
		}
		if err := b.Wait(context.Background()); err != nil {
			t.Fatalf("batch wait: %v", err)
		}
		for i := 0; i < b.Len(); i++ {
			res, err := b.Outcome(i)
			if err != nil || !res.Cached {
				t.Fatalf("outcome %d: %v cached=%v", i, err, res.Cached)
			}
		}
		b.Release()
	})
	if allocs != 0 {
		t.Errorf("pooled batch cache-hit path allocates %.1f per 8-job batch, want 0", allocs)
	}

	single := testing.AllocsPerRun(200, func() {
		job, err := q.Submit(spec)
		if err != nil {
			t.Fatalf("submit: %v", err)
		}
		res, err := job.Result()
		if err != nil || !res.Cached {
			t.Fatalf("result: %v cached=%v", err, res.Cached)
		}
	})
	// Exactly the escaping *Job — the name comes rendered from the cache
	// entry. Anything more means the fast path regressed onto the locked
	// pipeline (done channel, retention insert, name render, ...).
	if single > 1 {
		t.Errorf("single Submit cache-hit path allocates %.1f, want 1 (the returned *Job)", single)
	}
}

// TestCacheHitJobsNotRetained pins the fast-path retention semantics:
// a Submit served from the cache returns the only handle to its job —
// it is not registered for Get/Jobs, on either the lock-free or the
// locked hit path, matching the pooled batch hit behavior.
func TestCacheHitJobsNotRetained(t *testing.T) {
	q := New(Config{Workers: 1, Shards: 1, CacheSize: 1 << 10})
	defer q.Close()
	spec := simSpec(11)
	warm, err := q.Submit(spec)
	if err != nil {
		t.Fatalf("prime: %v", err)
	}
	if _, err := warm.Wait(context.Background()); err != nil {
		t.Fatalf("prime wait: %v", err)
	}
	if _, ok := q.Get(warm.ID); !ok {
		t.Fatal("executed job not retained")
	}
	hit, err := q.Submit(spec)
	if err != nil {
		t.Fatalf("hit: %v", err)
	}
	if res, err := hit.Result(); err != nil || !res.Cached {
		t.Fatalf("hit result: %v cached=%v", err, res.Cached)
	}
	if _, ok := q.Get(hit.ID); ok {
		t.Fatal("cache-hit job retained for Get; the caller holds the only handle")
	}
}
