package jobqueue

import (
	"context"
	"errors"
	"sync/atomic"
	"time"

	"lopram/internal/jobtrace"
)

// defaultTraceBuffer is the flight-recorder ring capacity when
// Config.TraceBuffer is unset: deep enough that a sink keeping up with
// steady completion throughput never drops, small enough that a stuck
// sink costs bounded memory.
const defaultTraceBuffer = 4096

// recorder is the queue's flight recorder: a bounded ring between the
// emitting hot paths (Submit, settle) and one flusher goroutine that
// feeds the configured sink. Emission is a non-blocking channel send —
// a full ring (sink too slow) drops the record and counts the drop, so
// tracing can never backpressure the queue. The ring channel is never
// closed: a Submit racing Close may still emit after the flusher has
// drained, and those records land in the drop counter instead of a
// panic.
type recorder struct {
	sink    jobtrace.Sink
	ring    chan jobtrace.Record
	stop    chan struct{}
	done    chan struct{}
	stopped atomic.Bool
	emitted atomic.Int64
	dropped atomic.Int64
}

func newRecorder(sink jobtrace.Sink, buf int) *recorder {
	if buf <= 0 {
		buf = defaultTraceBuffer
	}
	r := &recorder{
		sink: sink,
		ring: make(chan jobtrace.Record, buf),
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	go r.flush()
	return r
}

// flush is the single goroutine that moves records from the ring to the
// sink; on stop it drains whatever the ring still holds before exiting,
// so Close leaves the sink complete.
func (r *recorder) flush() {
	defer close(r.done)
	for {
		select {
		case rec := <-r.ring:
			r.sink.Record(rec)
		case <-r.stop:
			for {
				select {
				case rec := <-r.ring:
					r.sink.Record(rec)
				default:
					return
				}
			}
		}
	}
}

// emit offers one record to the ring. Every record gets a sequence
// number (so the emitted total is exact and gaps in a sink's delivered
// sequence identify drops); records that find the ring full — or arrive
// after close began draining — are dropped and counted.
func (r *recorder) emit(rec jobtrace.Record) {
	rec.Seq = uint64(r.emitted.Add(1))
	if r.stopped.Load() {
		r.dropped.Add(1)
		return
	}
	select {
	case r.ring <- rec:
	default:
		r.dropped.Add(1)
	}
}

// close stops the flusher after a final drain and waits for it. Safe to
// call more than once.
func (r *recorder) close() {
	if r.stopped.CompareAndSwap(false, true) {
		close(r.stop)
	}
	<-r.done
}

// TraceStats reports the flight recorder's accounting: how many records
// the queue emitted and how many of those were dropped (ring full, or
// emitted after shutdown drained the ring). The configured sink has
// received emitted − dropped records once Close returns. Both are zero
// when no TraceSink is configured.
func (q *Queue) TraceStats() (emitted, dropped int64) {
	if q.rec == nil {
		return 0, 0
	}
	return q.rec.emitted.Load(), q.rec.dropped.Load()
}

// baseRecord seeds a completion record with a job's identity fields.
func (q *Queue) baseRecord(job *Job) jobtrace.Record {
	rec := jobtrace.Record{
		ID:          job.ID,
		Key:         job.Name,
		Class:       string(q.classes.specs[job.class].Name),
		ExecShard:   -1,
		StealOrigin: -1,
		SubmitNS:    job.submitted.UnixNano(),
	}
	if job.fn == nil {
		rec.Algorithm = job.Spec.Algorithm
		rec.Engine = string(job.Spec.Engine)
		rec.N = job.Spec.N
		rec.P = job.Spec.key().P
		rec.Seed = job.Spec.Seed
	}
	return rec
}

// recordServed emits the record of a submission served without
// executing: a cache hit (its own completed job) or a coalesce onto an
// in-flight one. Both settle instantly under the placement epoch they
// were submitted in.
func (q *Queue) recordServed(rec jobtrace.Record, disposition string, shard int, epoch uint64) {
	rec.Disposition = disposition
	rec.Outcome = jobtrace.OutcomeOK
	rec.SubmitShard = shard
	rec.EpochSubmit = epoch
	rec.EpochSettle = epoch
	q.rec.emit(rec)
}

// recordRejected emits the record of a submission refused by admission
// control; laneBound is the class-lane capacity it hit.
func (q *Queue) recordRejected(job *Job, shard int, epoch uint64, laneBound int) {
	rec := q.baseRecord(job)
	rec.Disposition = jobtrace.DispositionRejected
	rec.SubmitShard = shard
	rec.EpochSubmit = epoch
	rec.EpochSettle = epoch
	rec.LaneDepth = laneBound
	q.rec.emit(rec)
}

// recordExecuted emits the record of a run that reached a terminal
// state, called from settle with the epoch the settle landed on.
func (q *Queue) recordExecuted(job *Job, res Result, err error, settleEpoch uint64) {
	rec := q.baseRecord(job)
	rec.Disposition = jobtrace.DispositionExecuted
	rec.SubmitShard = job.submitShard
	rec.ExecShard = job.execShard
	rec.StealOrigin = job.stealFrom
	rec.EpochSubmit = job.submitEpoch
	rec.EpochSettle = settleEpoch
	rec.LaneDepth = job.laneDepth
	switch {
	case err == nil:
		rec.Outcome = jobtrace.OutcomeOK
	case isDeadline(err):
		rec.Outcome = jobtrace.OutcomeTimeout
		rec.Error = err.Error()
	default:
		rec.Outcome = jobtrace.OutcomeError
		rec.Error = err.Error()
	}
	job.mu.Lock()
	started, finished := job.started, job.finished
	job.mu.Unlock()
	if !started.IsZero() {
		rec.StartNS = started.UnixNano()
		rec.WaitMS = float64(started.Sub(job.submitted)) / float64(time.Millisecond)
	}
	if !finished.IsZero() {
		rec.FinishNS = finished.UnixNano()
		if !started.IsZero() {
			rec.RunMS = float64(finished.Sub(started)) / float64(time.Millisecond)
		}
	}
	if err == nil && res.Sched != nil {
		rec.Sched = &jobtrace.SchedCounters{
			Spawned: res.Sched.Spawned,
			Stolen:  res.Sched.Stolen,
			Inlined: res.Sched.Inlined,
		}
	}
	q.rec.emit(rec)
}

// isDeadline matches the deadline failure settle sees for a blown
// per-job timeout (runJob wraps context.DeadlineExceeded).
func isDeadline(err error) bool {
	return errors.Is(err, context.DeadlineExceeded)
}
