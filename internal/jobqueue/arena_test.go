package jobqueue

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"lopram/internal/core"
	"lopram/internal/jobtrace"
)

func simSpec(seed uint64) Spec {
	return Spec{Algorithm: "reduce", N: 64, P: 2, Engine: core.EngineSim, Seed: seed}
}

func TestBatchSubmitWaitOutcome(t *testing.T) {
	q := New(Config{Workers: 2, Shards: 2, CacheSize: -1})
	defer q.Close()
	b := q.NewBatch()
	const n = 20
	for i := 0; i < n; i++ {
		if err := b.Submit(simSpec(uint64(i))); err != nil {
			t.Fatalf("Submit %d: %v", i, err)
		}
	}
	if b.Len() != n {
		t.Fatalf("Len = %d, want %d", b.Len(), n)
	}
	if err := b.Wait(context.Background()); err != nil {
		t.Fatalf("Wait: %v", err)
	}
	ids := make(map[uint64]bool)
	for i := 0; i < n; i++ {
		if _, err := b.Outcome(i); err != nil {
			t.Fatalf("Outcome %d: %v", i, err)
		}
		id := b.ID(i)
		if id == 0 || ids[id] {
			t.Fatalf("job %d: bad or duplicate ID %d", i, id)
		}
		ids[id] = true
	}
	b.Release()
}

func TestBatchValidationError(t *testing.T) {
	q := New(Config{Workers: 1, Shards: 1})
	defer q.Close()
	b := q.NewBatch()
	if err := b.Submit(Spec{Algorithm: "no-such-algo", N: 8, Engine: core.EngineSim}); err == nil {
		t.Fatal("invalid spec accepted")
	}
	if err := b.Submit(simSpec(1)); err != nil {
		t.Fatalf("valid spec refused: %v", err)
	}
	if err := b.Submit(Spec{Algorithm: "reduce", N: 8, Engine: core.EngineSim, Priority: "no-such-class"}); !errors.Is(err, ErrUnknownClass) {
		t.Fatalf("unknown class: got %v", err)
	}
	if err := b.Wait(context.Background()); err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if _, err := b.Outcome(0); err == nil {
		t.Fatal("Outcome(0): want validation error")
	}
	if _, err := b.Outcome(1); err != nil {
		t.Fatalf("Outcome(1): %v", err)
	}
	if _, err := b.Outcome(2); !errors.Is(err, ErrUnknownClass) {
		t.Fatalf("Outcome(2): got %v", err)
	}
	b.Release()
}

// TestBatchCoalesceAndHit submits heavy duplication through one batch and
// checks the dedup machinery served it: each distinct key executes once,
// duplicates land as cache hits or coalesces, and every outcome matches.
func TestBatchCoalesceAndHit(t *testing.T) {
	q := New(Config{Workers: 2, Shards: 2, CacheSize: 1024})
	defer q.Close()
	b := q.NewBatch()
	const n, keys = 60, 7
	for i := 0; i < n; i++ {
		if err := b.Submit(simSpec(uint64(i % keys))); err != nil {
			t.Fatalf("Submit %d: %v", i, err)
		}
	}
	if err := b.Wait(context.Background()); err != nil {
		t.Fatalf("Wait: %v", err)
	}
	bySeed := make(map[uint64]Result)
	for i := 0; i < n; i++ {
		res, err := b.Outcome(i)
		if err != nil {
			t.Fatalf("Outcome %d: %v", i, err)
		}
		seed := uint64(i % keys)
		if prev, ok := bySeed[seed]; ok && prev.Value != res.Value {
			t.Fatalf("seed %d: inconsistent results %v vs %v", seed, prev.Value, res.Value)
		}
		bySeed[seed] = res
	}
	b.Release()
	m := q.Snapshot()
	if m.Completed != keys {
		t.Fatalf("completed = %d, want %d (one execution per distinct key)", m.Completed, keys)
	}
	if m.CacheHits+m.Coalesced != n-keys {
		t.Fatalf("hits+coalesced = %d, want %d", m.CacheHits+m.Coalesced, n-keys)
	}
}

func TestBatchSubmitAfterClose(t *testing.T) {
	q := New(Config{Workers: 1, Shards: 1})
	q.Close()
	b := q.NewBatch()
	if err := b.Submit(simSpec(1)); !errors.Is(err, ErrClosed) {
		t.Fatalf("Submit after Close: got %v, want ErrClosed", err)
	}
	if err := b.Wait(context.Background()); err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if _, err := b.Outcome(0); !errors.Is(err, ErrClosed) {
		t.Fatalf("Outcome: got %v, want ErrClosed", err)
	}
	b.Release()
}

// TestBatchCloseCompletesRingBacklog proves the Close seal never strands
// a published frame: frames parked on the ring of a fully blocked queue
// turn terminal with ErrClosed, so Wait returns.
func TestBatchCloseCompletesRingBacklog(t *testing.T) {
	q := New(Config{Workers: 1, Shards: 1})
	release := blockWorkers(t, q, 1)
	b := q.NewBatch()
	for i := 0; i < 10; i++ {
		if err := b.Submit(simSpec(uint64(i))); err != nil {
			t.Fatalf("Submit: %v", err)
		}
	}
	release()
	q.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := b.Wait(ctx); err != nil {
		t.Fatalf("Wait after Close: %v", err)
	}
	for i := 0; i < b.Len(); i++ {
		if _, err := b.Outcome(i); err != nil && !errors.Is(err, ErrClosed) {
			t.Fatalf("Outcome %d: %v", i, err)
		}
	}
	b.Release()
}

func TestBatchWaitContextCanceled(t *testing.T) {
	q := New(Config{Workers: 1, Shards: 1})
	defer q.Close()
	release := blockWorkers(t, q, 1)
	b := q.NewBatch()
	if err := b.Submit(simSpec(1)); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := b.Wait(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("Wait: got %v, want context.Canceled", err)
	}
	// In-flight frames: the batch must not be released. Drain properly
	// instead and release then.
	release()
	if err := b.Wait(context.Background()); err != nil {
		t.Fatalf("second Wait: %v", err)
	}
	b.Release()
}

// TestBatchCoalescePinsEscapedFrame covers the one path where a pooled
// frame escapes its batch: a single Submit coalescing onto it. The frame
// must be pinned — never recycled — so the escaped handle stays valid
// after Release.
func TestBatchCoalescePinsEscapedFrame(t *testing.T) {
	q := New(Config{Workers: 1, Shards: 1, CacheSize: -1})
	defer q.Close()
	release := blockWorkers(t, q, 1)
	spec := simSpec(42)
	b := q.NewBatch()
	if err := b.Submit(spec); err != nil {
		t.Fatalf("Batch.Submit: %v", err)
	}
	// Ingest the frame by hand (the worker is parked), putting it into
	// the inflight map.
	p := q.place.Load()
	q.drainRing(p, p.shardFor(spec.key()))
	dup, err := q.Submit(spec)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if !dup.pooled || !dup.pinned.Load() {
		t.Fatalf("coalesced frame pooled=%v pinned=%v, want both true", dup.pooled, dup.pinned.Load())
	}
	release()
	want, err := dup.Wait(context.Background())
	if err != nil {
		t.Fatalf("dup.Wait: %v", err)
	}
	if err := b.Wait(context.Background()); err != nil {
		t.Fatalf("batch Wait: %v", err)
	}
	b.Release()
	// The escaped handle survives Release un-reset.
	got, err := dup.Result()
	if err != nil {
		t.Fatalf("dup.Result after Release: %v", err)
	}
	if got.Value != want.Value || dup.ID == 0 {
		t.Fatal("pinned frame was reset by Release")
	}
}

// TestBatchSubmitZeroAllocs is the arena's headline contract: the
// steady-state pooled submit path — validate, borrow a frame, publish to
// the shard ring — allocates nothing per job. Workers are parked so the
// measured region is exactly the publication path.
func TestBatchSubmitZeroAllocs(t *testing.T) {
	q := New(Config{Workers: 1, Shards: 1, QueueDepth: 4096})
	defer q.Close()
	release := blockWorkers(t, q, 1)
	// Prewarm the arena past the measured iteration count so Get never
	// falls through to the allocating New mid-measure.
	for i := 0; i < 256; i++ {
		jobPool.Put(&Job{pooled: true, execShard: -1, stealFrom: -1})
	}
	b := q.NewBatch()
	b.jobs = make([]*Job, 0, 256) // pre-grow: append must not resize mid-measure
	seed := uint64(0)
	allocs := testing.AllocsPerRun(100, func() {
		seed++
		if err := b.Submit(simSpec(seed)); err != nil {
			panic(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("pooled submit path: %v allocs/job, want 0", allocs)
	}
	release()
	if err := b.Wait(context.Background()); err != nil {
		t.Fatalf("Wait: %v", err)
	}
	b.Release()
}

// TestBatchCachedServeZeroAllocs measures the whole steady-state loop on
// the no-trace-sink path — submit, ring drain, cache-hit serve, wait,
// release — at 0 allocs/job. This is the trace path's zero-cost claim
// too: with no sink configured, ingest skips record construction and the
// frame never even renders a name.
func TestBatchCachedServeZeroAllocs(t *testing.T) {
	q := New(Config{Workers: 1, Shards: 1, QueueDepth: 4096, CacheSize: 1024})
	defer q.Close()
	spec := simSpec(7)
	// Prime the cache with the one real execution.
	job, err := q.Submit(spec)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if _, err := job.Wait(context.Background()); err != nil {
		t.Fatalf("Wait: %v", err)
	}
	release := blockWorkers(t, q, 1)
	defer release()
	for i := 0; i < 16; i++ {
		jobPool.Put(&Job{pooled: true, execShard: -1, stealFrom: -1})
	}
	ctx := context.Background()
	allocs := testing.AllocsPerRun(100, func() {
		b := q.NewBatch()
		if err := b.Submit(spec); err != nil {
			panic(err)
		}
		p := q.place.Load()
		q.drainRing(p, p.shardFor(spec.key()))
		if err := b.Wait(ctx); err != nil {
			panic(err)
		}
		if _, err := b.Outcome(0); err != nil {
			panic(err)
		}
		b.Release()
	})
	if allocs != 0 {
		t.Fatalf("cached serve loop: %v allocs/job, want 0", allocs)
	}
}

// TestBatchStressResizeRace is the resize invariant suite run against the
// ring path: 8 concurrent batch submitters over a shared key space while
// the table resizes 1→4→2 mid-stream. Every distinct key must execute
// exactly once and every duplicate must land as hit or coalesce — the
// same guarantees the single-submit path proves, now across ring seals
// and backlog re-homes. Run with -race in CI.
func TestBatchStressResizeRace(t *testing.T) {
	sink := &jobtrace.MemorySink{}
	q := New(Config{
		Workers: 4, Shards: 1, QueueDepth: 1 << 15, CacheSize: 1 << 15,
		TraceSink: sink, TraceBuffer: 1 << 16,
	})
	const submitters = 8
	const perSubmitter = 400
	const keyspace = 192
	const batchSize = 32
	firstBatch := make(chan struct{}, submitters)
	var wg sync.WaitGroup
	for w := 0; w < submitters; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := uint64(w)*2654435761 + 1
			b := q.NewBatch()
			flushed := false
			flush := func() {
				if err := b.Wait(context.Background()); err != nil {
					t.Errorf("submitter %d: Wait: %v", w, err)
					return
				}
				for i := 0; i < b.Len(); i++ {
					if _, err := b.Outcome(i); err != nil {
						t.Errorf("submitter %d: outcome %d: %v", w, i, err)
					}
				}
				b.Release()
				b = q.NewBatch()
				if !flushed {
					flushed = true
					firstBatch <- struct{}{}
				}
			}
			for i := 0; i < perSubmitter; i++ {
				rng = rng*6364136223846793005 + 1442695040888963407
				if err := b.Submit(simSpec(rng % keyspace)); err != nil {
					t.Errorf("submitter %d: Submit: %v", w, err)
				}
				if b.Len() >= batchSize {
					flush()
				}
			}
			if b.Len() > 0 {
				flush()
			} else {
				b.Release()
			}
		}(w)
	}
	// Resize mid-stream: wait until the traffic is demonstrably flowing,
	// then move the table twice with a short gap so submissions land in
	// every epoch.
	<-firstBatch
	if _, err := q.Resize(4); err != nil {
		t.Errorf("Resize(4): %v", err)
	}
	time.Sleep(2 * time.Millisecond)
	if _, err := q.Resize(2); err != nil {
		t.Errorf("Resize(2): %v", err)
	}
	wg.Wait()
	q.Close()

	if _, dropped := q.TraceStats(); dropped != 0 {
		t.Fatalf("recorder dropped %d records; the accounting below needs all of them", dropped)
	}
	execPerKey := make(map[string]int)
	var executed, dups, other int
	for _, r := range sink.Records() {
		switch r.Disposition {
		case jobtrace.DispositionExecuted:
			executed++
			execPerKey[r.Key]++
		case jobtrace.DispositionHit, jobtrace.DispositionCoalesce:
			dups++
		default:
			other++
			t.Errorf("unexpected disposition %q for %s", r.Disposition, r.Key)
		}
	}
	if executed != len(execPerKey) {
		for k, n := range execPerKey {
			if n != 1 {
				t.Errorf("key %s executed %d times", k, n)
			}
		}
		t.Fatalf("executed %d != %d distinct keys", executed, len(execPerKey))
	}
	if got := executed + dups + other; got != submitters*perSubmitter {
		t.Fatalf("recorded %d submissions, want %d", got, submitters*perSubmitter)
	}
}
