package jobqueue

import "container/list"

// lru is a fixed-capacity least-recently-used result cache. It memoizes
// completed job results by Key — the memoization table of §4.5 lifted from
// DP cells to whole jobs: identical requests hit the table instead of
// recomputing. Not safe for concurrent use; the Queue serializes access
// under its own mutex.
type lru struct {
	cap     int
	entries map[Key]*list.Element
	order   *list.List // front = most recently used
}

type lruEntry struct {
	key Key
	res Result
}

func newLRU(capacity int) *lru {
	return &lru{cap: capacity, entries: make(map[Key]*list.Element), order: list.New()}
}

// get returns the cached result for key, promoting it to most recently
// used.
func (c *lru) get(key Key) (Result, bool) {
	el, ok := c.entries[key]
	if !ok {
		return Result{}, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*lruEntry).res, true
}

// put inserts or refreshes key, evicting the least recently used entry when
// over capacity. A zero-capacity cache stores nothing.
func (c *lru) put(key Key, res Result) {
	if c.cap <= 0 {
		return
	}
	if el, ok := c.entries[key]; ok {
		el.Value.(*lruEntry).res = res
		c.order.MoveToFront(el)
		return
	}
	c.entries[key] = c.order.PushFront(&lruEntry{key: key, res: res})
	for c.order.Len() > c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.entries, oldest.Value.(*lruEntry).key)
	}
}

// len returns the number of cached results.
func (c *lru) len() int { return c.order.Len() }

// each visits every cached entry, least recently used first, so copying
// entries into another cache in visit order preserves the recency order.
// Resize uses it to re-hash a retiring shard's results onto the new
// placement table.
func (c *lru) each(fn func(Key, Result)) {
	for el := c.order.Back(); el != nil; el = el.Prev() {
		e := el.Value.(*lruEntry)
		fn(e.key, e.res)
	}
}
