package jobqueue

import "container/list"

// lru is a fixed-capacity result cache. It memoizes completed job
// results by Key — the memoization table of §4.5 lifted from DP cells to
// whole jobs: identical requests hit the table instead of recomputing.
// Entries carry the job's rendered name alongside the result, so serving
// a hit never re-renders the spec (the name is a pure function of the
// key, paid once at settle). Eviction is insertion-ordered (oldest
// insert/refresh out first), not read-recency-ordered: lookups are also
// served lock-free from the shard's immutable read index
// (shard.cacheIdx), which cannot record recency, so promoting on the
// locked get would make cache contents depend on which path a hit took.
// Not safe for concurrent use; the Queue serializes mutation under its
// own mutex and republishes the read index after every insert/eviction.
type lru struct {
	cap     int
	entries map[Key]*list.Element
	order   *list.List // front = most recently used
}

type lruEntry struct {
	key  Key
	name string
	res  Result
}

// cached is one read-index entry: the memoized result plus the rendered
// job name, immutable once published.
type cached struct {
	name string
	res  Result
}

func newLRU(capacity int) *lru {
	return &lru{cap: capacity, entries: make(map[Key]*list.Element), order: list.New()}
}

// get returns the cached result and rendered name for key. It does not
// promote: reads may also come from the lock-free index, so only writes
// (put) move entries in the eviction order.
func (c *lru) get(key Key) (cached, bool) {
	el, ok := c.entries[key]
	if !ok {
		return cached{}, false
	}
	e := el.Value.(*lruEntry)
	return cached{name: e.name, res: e.res}, true
}

// put inserts or refreshes key, evicting the oldest-inserted entry when
// over capacity. A zero-capacity cache stores nothing.
func (c *lru) put(key Key, name string, res Result) {
	if c.cap <= 0 {
		return
	}
	if el, ok := c.entries[key]; ok {
		e := el.Value.(*lruEntry)
		e.name, e.res = name, res
		c.order.MoveToFront(el)
		return
	}
	c.entries[key] = c.order.PushFront(&lruEntry{key: key, name: name, res: res})
	for c.order.Len() > c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.entries, oldest.Value.(*lruEntry).key)
	}
}

// len returns the number of cached results.
func (c *lru) len() int { return c.order.Len() }

// each visits every cached entry, oldest insert first, so copying
// entries into another cache in visit order preserves the eviction
// order. Resize uses it to re-hash a retiring shard's results onto the
// new placement table; republishReadIndex uses it to snapshot the
// contents into the lock-free read index.
func (c *lru) each(fn func(Key, string, Result)) {
	for el := c.order.Back(); el != nil; el = el.Prev() {
		e := el.Value.(*lruEntry)
		fn(e.key, e.name, e.res)
	}
}
