package jobqueue

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"lopram/internal/jobtrace"
)

// Errors returned by Submit and Result.
var (
	// ErrQueueFull reports that admission control refused the job: its
	// priority class's share of the target shard's pending queue is at
	// capacity. Retry later or raise Config.QueueDepth.
	ErrQueueFull = errors.New("jobqueue: queue full")
	// ErrClosed reports that the queue is shut down.
	ErrClosed = errors.New("jobqueue: queue closed")
	// ErrNotFinished reports that Result was called on a job still in
	// flight.
	ErrNotFinished = errors.New("jobqueue: job not finished")
)

const (
	// shardBits is how many low bits of a job ID encode its birth shard.
	shardBits = 6
	// MaxShards bounds Config.Shards and Resize targets: shard indices
	// must fit in the shardBits low bits of every job ID.
	MaxShards = 1 << shardBits
)

// Config sizes a Queue. The zero value selects sensible defaults.
type Config struct {
	// Workers is the total worker count across all shards: the number of
	// jobs executing concurrently. Defaults to the host's core count —
	// one dispatch worker per hardware core, mirroring the machine
	// model's fixed p. Each shard gets at least one worker, so the
	// effective total is max(Workers, Shards) — and a Resize past the
	// worker count grows the pool to keep that invariant.
	Workers int
	// Shards is the initial number of independent queue shards (run
	// queue + worker pool + cache + metric rings). Placement is by key
	// hash against the current placement table, so identical specs
	// always land on the same shard of an epoch. Default 1; capped at
	// MaxShards. The count can change at runtime via Resize or the
	// autoscaler; state migrates with the keys.
	Shards int
	// QueueDepth is the base admission capacity: the bound on
	// admitted-but-not-started jobs of a full-quota class across the
	// whole queue, sliced evenly per shard. Each priority class rides in
	// its own lane of Quota×QueueDepth on top of the others (total
	// pending is therefore bounded by Σ quotas × QueueDepth), so no
	// class can consume another's admission slots. Submissions beyond a
	// shard's class lane fail fast with ErrQueueFull. Default 1024.
	QueueDepth int
	// CacheSize is the total LRU result-cache capacity in entries,
	// divided evenly among shards. Default 512; negative disables
	// caching.
	CacheSize int
	// DefaultTimeout caps each job's execution when neither its spec nor
	// its priority class sets a deadline. Default 60s.
	DefaultTimeout time.Duration
	// Retain bounds how many terminal jobs stay queryable by ID, divided
	// evenly among shards. Default 4096.
	Retain int
	// BatchShare sizes the batch class's admission quota in the default
	// class set, as a fraction of each shard's base depth; the
	// interactive class always keeps its full depth to itself. Default
	// 0.5; values are clamped to (0, 1] and every shard keeps at least
	// one batch slot. Ignored when Classes is set — put the quota on the
	// batch class's ClassSpec instead.
	BatchShare float64
	// Classes is the priority-class set the queue serves: an ordered
	// list of named classes, each with a dequeue weight (WeightStrict
	// for strict priority, >= 1 for a deficit-weighted round-robin
	// share) and an admission quota. Empty selects
	// DefaultClasses(BatchShare) — strict interactive over weight-1
	// batch, the original two-class behavior. New panics if the set
	// fails (ClassSet).Validate; parse user input with ParseClassSet to
	// reject it gracefully first.
	Classes ClassSet
	// Policies selects the dequeue and admission policies. The zero
	// value is the native default behavior (strict-then-DWRR dequeue,
	// static lane-quota admission), byte-identical to a queue built
	// before the policy layer existed. New panics on unknown policy
	// names — validate user input with ParseDequeuePolicy /
	// ParseAdmissionPolicy first.
	Policies Policies
	// Autoscale opts the queue into contention-driven shard autoscaling:
	// a controller resizes the placement table between the configured
	// bounds from observed queue depth and steal pressure. Nil (the
	// default) keeps the shard count fixed unless Resize is called
	// explicitly. New panics if the config fails Validate.
	Autoscale *AutoscaleConfig
	// TraceSink attaches a flight recorder: every submission the queue
	// settles (executed, cache hit, coalesced) or refuses (class lane
	// full) emits one jobtrace.Record through a bounded ring to this
	// sink. Nil (the default) disables the recorder entirely — the hot
	// paths then skip record construction, so tracing costs nothing
	// when off. The queue never closes the sink; Close drains the ring
	// first, so once it returns the sink holds every non-dropped record
	// (see TraceStats).
	TraceSink jobtrace.Sink
	// TraceBuffer is the recorder ring's capacity in records; a full
	// ring drops records (counted in TraceStats / Metrics) rather than
	// block the queue. Default 4096.
	TraceBuffer int
}

func (c Config) withDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = 1
	}
	if c.Shards > MaxShards {
		c.Shards = MaxShards
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 1024
	}
	if c.CacheSize == 0 {
		c.CacheSize = 512
	}
	if c.CacheSize < 0 {
		c.CacheSize = 0
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 60 * time.Second
	}
	if c.Retain <= 0 {
		c.Retain = 4096
	}
	if c.BatchShare <= 0 || c.BatchShare > 1 {
		c.BatchShare = 0.5
	}
	return c
}

// perShard divides a queue-wide budget into an even per-shard slice,
// rounding up so no shard gets zero.
func perShard(total, shards int) int {
	return (total + shards - 1) / shards
}

// Queue is the dispatch service. Create with New, stop with Close. All
// methods are safe for concurrent use.
type Queue struct {
	cfg     Config
	classes classSet
	// place is the current epoch's placement table — the one authority
	// on shard addressing. Swapped atomically by Resize; readers load it
	// once per operation and retry if they catch a shard mid-retirement.
	place   atomic.Pointer[placement]
	nextSeq atomic.Uint64
	// kick wakes one idle worker when any shard enqueues a job, so
	// cross-shard stealing reacts immediately instead of waiting for the
	// fallback poll. Capacity 1: a pending kick means some worker will
	// sweep every shard, which discovers all stealable work.
	kick    chan struct{}
	closeMu sync.Mutex
	closed  bool

	// resizeMu serializes Resize against itself and against Close, so a
	// placement swap and a shutdown can never interleave their shard
	// retirement.
	resizeMu sync.Mutex
	// retiredShards keeps the most recent generation of shards swapped
	// out by a resize: their executed/stolen counters stay part of the
	// queue totals (a worker that raced the swap may still increment
	// them), so Metrics.Steals and the autoscaler's deltas remain
	// monotonic across epochs. The next resize folds them into the
	// aggregate counters below, so the list is bounded by one table's
	// width, not by resize count; the heavy per-shard state is freed at
	// migration either way.
	retiredMu     sync.Mutex
	retiredShards []*shard
	retiredExec   atomic.Int64
	retiredStolen atomic.Int64

	workers      sync.WaitGroup
	totalWorkers int // guarded by resizeMu after New; snapshot in placement.workers
	orphans      sync.WaitGroup

	// workerM holds every worker's metric shard, indexed by the worker's
	// stable pool index. The slice only grows (a resize past the pool
	// size appends, then stores, before spawning — so a new worker always
	// finds its slot) and existing entries are never replaced, so workers
	// cache their own pointer and Snapshot iterates a loaded slice.
	workerM atomic.Pointer[[]*workerMetrics]

	stopScaler chan struct{}
	scalerWG   sync.WaitGroup

	// rec is the flight recorder, nil unless Config.TraceSink is set.
	// Fixed at New: every emission site is behind a nil check, so the
	// untraced hot path costs one predictable branch and zero
	// allocations.
	rec *recorder

	// deq/adm are the resolved non-default policies, nil when the
	// native path serves (the "default" policies resolve to nil, so the
	// pre-policy hot paths run unchanged — no interface dispatch). Both
	// are fixed at New. cal is the per-engine cost calibrator feeding
	// CostEstimate.Wall, created only when a policy consumes cost.
	deq     DequeuePolicy
	adm     AdmissionPolicy
	cal     *costCalibrator
	deqName string
	admName string

	// Counters (atomics: hot path, read by Snapshot without any lock).
	submitted  atomic.Int64
	completed  atomic.Int64
	failed     atomic.Int64
	rejected   atomic.Int64
	coalesced  atomic.Int64
	cacheHits  atomic.Int64
	cacheMiss  atomic.Int64
	timeouts   atomic.Int64
	pending    atomic.Int64
	running    atomic.Int64
	abandonedG atomic.Int64    // live abandoned runs (gauge)
	perClass   []classCounters // indexed by class-set position

	// Memoized merged latency summaries — see Snapshot.
	sumMu sync.Mutex
	sums  summaryCache
}

// classCounters is the per-priority-class slice of the queue counters.
type classCounters struct {
	submitted atomic.Int64
	completed atomic.Int64
	failed    atomic.Int64
	rejected  atomic.Int64
}

// New returns a running queue. It panics if Config.Classes fails
// (ClassSet).Validate, Config.Autoscale fails Validate, or
// Config.Policies names an unknown policy — an invalid class set,
// autoscale config or policy selection is a configuration programming
// error; validate user-supplied input first.
func New(cfg Config) *Queue {
	cfg = cfg.withDefaults()
	classes, err := resolveClasses(cfg.Classes, cfg.BatchShare)
	if err != nil {
		panic(err)
	}
	deq, adm, err := cfg.Policies.resolve()
	if err != nil {
		panic(err)
	}
	if cfg.Autoscale != nil {
		if err := cfg.Autoscale.Validate(); err != nil {
			panic(err)
		}
		a := cfg.Autoscale.withDefaults()
		cfg.Autoscale = &a
	}
	q := &Queue{
		cfg:      cfg,
		classes:  classes,
		perClass: make([]classCounters, len(classes.specs)),
		kick:     make(chan struct{}, 1),
		deq:      deq,
		adm:      adm,
		deqName:  "default",
		admName:  "default",
	}
	if deq != nil {
		q.deqName = deq.Name()
	}
	if adm != nil {
		q.admName = adm.Name()
	}
	if deq != nil || adm != nil {
		// Any non-default policy may consume cost predictions; the
		// default path never builds them, so the pre-policy hot path
		// stays untouched.
		q.cal = newCostCalibrator()
	}
	if cfg.TraceSink != nil {
		q.rec = newRecorder(cfg.TraceSink, cfg.TraceBuffer)
	}
	depth := perShard(cfg.QueueDepth, cfg.Shards)
	depths := make([]int, len(classes.specs))
	for c := range depths {
		depths[c] = classes.laneDepth(c, depth)
	}
	cacheCap := 0
	if cfg.CacheSize > 0 {
		cacheCap = perShard(cfg.CacheSize, cfg.Shards)
	}
	retain := perShard(cfg.Retain, cfg.Shards)
	shards := make([]*shard, cfg.Shards)
	for i := 0; i < cfg.Shards; i++ {
		shards[i] = newShard(i, depths, nil, cacheCap, retain)
	}
	if cfg.Workers < cfg.Shards {
		cfg.Workers = cfg.Shards // every shard gets at least one worker
	}
	q.totalWorkers = cfg.Workers
	wms := make([]*workerMetrics, cfg.Workers)
	for i := range wms {
		wms[i] = newWorkerMetrics(len(classes.specs))
	}
	q.workerM.Store(&wms)
	q.place.Store(&placement{epoch: 1, workers: cfg.Workers, shards: shards})
	q.workers.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go q.worker(i) // homes dealt fair-share over the current table
	}
	if cfg.Autoscale != nil {
		q.stopScaler = make(chan struct{})
		q.scalerWG.Add(1)
		go q.autoscaleLoop(*cfg.Autoscale)
	}
	return q
}

// isClosed reports whether Close has begun.
func (q *Queue) isClosed() bool {
	q.closeMu.Lock()
	defer q.closeMu.Unlock()
	return q.closed
}

// Close stops admission, drains already-admitted jobs, and waits for all
// workers (and any deadline-abandoned runs) to finish. The autoscaler, if
// any, is stopped first so no resize can race the teardown.
func (q *Queue) Close() {
	q.closeMu.Lock()
	if q.closed {
		q.closeMu.Unlock()
		return
	}
	q.closed = true
	q.closeMu.Unlock()
	if q.stopScaler != nil {
		close(q.stopScaler)
		q.scalerWG.Wait()
	}
	// Serialize against any in-flight Resize, then tear down the current
	// table: stop admission on every shard before closing any run queue
	// (a Submit holding a shard lock finishes its send before the flag
	// flips, and later Submits see the flag — no send on a closed
	// channel either way).
	q.resizeMu.Lock()
	p := q.place.Load()
	for _, s := range p.shards {
		s.mu.Lock()
		s.closed = true
		// Clear the lock-free read index so post-shutdown submissions
		// miss and fall through to the locked path's ErrClosed; the
		// closed flag keeps any concurrent flush from republishing it.
		s.cacheIdx.Store(nil)
		s.mu.Unlock()
	}
	// Seal the submit rings now that every shard refuses ingest: late
	// batch publishers bounce off the seal and fail with ErrClosed, and
	// any frame published before the seal is completed with ErrClosed
	// here — no frame is silently dropped, so every Batch.Wait returns.
	for _, s := range p.shards {
		for _, j := range s.ring.seal() {
			q.rejected.Add(1)
			q.perClass[j.class].rejected.Add(1)
			j.markFinished(Result{}, ErrClosed, time.Now())
			j.signalDone()
		}
	}
	if q.deq == nil {
		// Native path: closed channels are what unblock parked workers
		// and mark lanes drained.
		for _, s := range p.shards {
			for _, ch := range s.runq {
				close(ch)
			}
		}
	} else {
		// Ordered path: workers only ever receive under the shard lock
		// (drain-pick-putback), so the channels are never closed — the
		// closed flag plus a kick cascade retires the pool instead, and
		// a putback can never hit a closed channel.
		q.kickWorkers()
	}
	q.resizeMu.Unlock()
	q.workers.Wait()
	q.orphans.Wait()
	if q.rec != nil {
		// Every settle has run by now; drain the recorder so the sink
		// holds the complete trace before Close returns.
		q.rec.close()
	}
}

// Classes returns the queue's resolved class set in dequeue order, quota
// defaults applied — the configuration lopramd serves at /v1/classes.
func (q *Queue) Classes() ClassSet {
	return append(ClassSet(nil), q.classes.specs...)
}

// PolicyNames reports the active dequeue and admission policy names
// ("default" for the native paths) — the configuration lopramd serves
// at /v1/policies.
func (q *Queue) PolicyNames() (dequeue, admission string) {
	return q.deqName, q.admName
}

// ShardOf reports which shard the spec would be placed on under the
// current placement epoch — the shard its cache key hashes to. Placement
// is deterministic per epoch: equal keys always map to the same shard of
// any queue at the same shard count.
func (q *Queue) ShardOf(spec Spec) int {
	return q.place.Load().shardFor(spec.key()).idx
}

// newID allocates the next job ID for a job homed on shard idx: a global
// sequence number in the high bits (IDs stay submission-ordered across
// shards) and the birth shard in the low shardBits (Get routes by them,
// modulo the current shard count after resizes).
func (q *Queue) newID(idx int) uint64 {
	return q.nextSeq.Add(1)<<shardBits | uint64(idx)
}

// Submit validates, admission-controls and enqueues an algorithm job on
// the shard its key hashes to under the current placement epoch.
// Duplicate requests are served without re-execution: a spec whose key is
// already in flight returns the in-flight job (coalescing), and one whose
// result is cached returns an already-completed job — guarantees that
// hold across live resizes, because the coalescing entries and cached
// results migrate with the keys.
func (q *Queue) Submit(spec Spec) (*Job, error) {
	class, err := q.prepare(&spec)
	if err != nil {
		return nil, err
	}
	key := spec.key()
	// Lock-free cache-hit fast path: serve the hit from the home shard's
	// immutable read index without touching its mutex. A hit that races
	// an insert, eviction, resize migration or shutdown linearizes
	// before it — the index snapshot was the cache's published contents,
	// and cached results are immutable. Misses (index nil, caching off,
	// key absent) fall through to the locked pipeline below.
	if p := q.place.Load(); p != nil {
		s := p.shardFor(key)
		if idx := s.cacheIdx.Load(); idx != nil {
			if e, ok := (*idx)[key]; ok {
				now := time.Now()
				// The entry's rendered name rides along so the hit does
				// not re-render the spec.
				job := &Job{ID: q.newID(s.idx), Name: e.name, Spec: spec,
					submitted: now, class: class, execShard: -1, stealFrom: -1}
				q.cacheHits.Add(1)
				q.submitted.Add(1)
				q.perClass[class].submitted.Add(1)
				// Cached serves are near-instant and skip the latency
				// samples; Wall reports the original run's cost.
				job.completeCached(e.res, now)
				if q.rec != nil {
					q.recordServed(q.baseRecord(job), jobtrace.DispositionHit, s.idx, p.epoch)
				}
				return job, nil
			}
		}
	}
	var cost CostEstimate
	if q.cal != nil {
		// A policy consumes cost predictions: price the job once, up
		// front (the estimate depends only on the spec).
		cost = q.cal.estimate(spec, key.P)
	}
	for {
		p := q.place.Load()
		s := p.shardFor(key)
		now := time.Now()
		s.mu.Lock()
		if s.retired {
			// A resize is migrating this shard's keys; follow them.
			s.mu.Unlock()
			retryPlacement()
			continue
		}
		if s.closed {
			s.mu.Unlock()
			q.rejected.Add(1)
			q.perClass[class].rejected.Add(1)
			return nil, ErrClosed
		}
		if e, ok := s.cache.get(key); ok {
			// The locked twin of the fast path above, for hits the read
			// index has not republished yet. Like the fast path, the hit
			// job is not retained for Get/Jobs: the caller holds the only
			// handle, matching the pooled batch hit semantics.
			job := newJob(q.newID(s.idx), e.name, spec, nil, now)
			job.class = class
			s.mu.Unlock()
			q.cacheHits.Add(1)
			q.submitted.Add(1)
			q.perClass[class].submitted.Add(1)
			// Cached serves are near-instant and skip the latency samples;
			// Wall in the result reports the original run's cost.
			job.completeCached(e.res, now)
			if q.rec != nil {
				q.recordServed(q.baseRecord(job), jobtrace.DispositionHit, s.idx, p.epoch)
			}
			return job, nil
		}
		if dup, ok := s.inflight[key]; ok {
			if dup.pooled {
				// The pooled frame escapes its batch lifecycle: this
				// caller holds it indefinitely, so it must never be
				// recycled. Pinning under s.mu while the frame is still
				// inflight orders the pin before any Release.
				dup.pinned.Store(true)
			}
			s.mu.Unlock()
			q.coalesced.Add(1)
			if q.rec != nil {
				// The record describes this submission — its own class
				// and arrival — served by the in-flight job's ID.
				rec := q.baseRecord(dup)
				rec.ID = dup.ID
				rec.Class = string(q.classes.specs[class].Name)
				rec.SubmitNS = now.UnixNano()
				q.recordServed(rec, jobtrace.DispositionCoalesce, s.idx, p.epoch)
			}
			return dup, nil
		}
		q.cacheMiss.Add(1)
		job := newJob(q.newID(s.idx), spec.String(), spec, nil, now)
		job.class = class
		job.submitShard = s.idx
		job.submitEpoch = p.epoch
		job.cost = cost
		if err := q.enqueueLocked(s, job, key); err != nil {
			s.mu.Unlock()
			if q.rec != nil && (errors.Is(err, ErrQueueFull) || errors.Is(err, ErrDeadlineInfeasible)) {
				q.recordRejected(job, s.idx, p.epoch, s.laneDepths[class])
			}
			return nil, err
		}
		s.mu.Unlock()
		q.kickWorkers()
		return job, nil
	}
}

// SubmitFunc enqueues an arbitrary work item on the same pools, subject
// to the same admission control and deadlines but bypassing spec
// validation, coalescing and the result cache. Placement hashes the name
// against the current placement table, so equal names share a shard; the
// job runs in the class set's first (default) class. The experiment suite
// uses it to run E1–E18 through the queue as a load test.
func (q *Queue) SubmitFunc(name string, fn func(ctx context.Context) error) (*Job, error) {
	if fn == nil {
		return nil, fmt.Errorf("jobqueue: nil func for %q", name)
	}
	for {
		p := q.place.Load()
		s := p.shardForName(name)
		s.mu.Lock()
		if s.retired {
			s.mu.Unlock()
			retryPlacement()
			continue
		}
		if s.closed {
			s.mu.Unlock()
			q.rejected.Add(1)
			return nil, ErrClosed
		}
		job := newJob(q.newID(s.idx), name, Spec{}, fn, time.Now())
		job.submitShard = s.idx
		job.submitEpoch = p.epoch
		if err := q.enqueueLocked(s, job, Key{}); err != nil {
			s.mu.Unlock()
			if q.rec != nil && (errors.Is(err, ErrQueueFull) || errors.Is(err, ErrDeadlineInfeasible)) {
				q.recordRejected(job, s.idx, p.epoch, s.laneDepths[job.class])
			}
			return nil, err
		}
		s.mu.Unlock()
		q.kickWorkers()
		return job, nil
	}
}

// enqueueLocked admits a job to its class's run queue on shard s; the
// caller holds s.mu. The admission bound is the lane counter, not the
// channel (which a resize may have sized larger to hold a migrated
// backlog); the non-blocking send is a backstop that cannot fire while
// the counter invariant holds.
func (q *Queue) enqueueLocked(s *shard, job *Job, key Key) error {
	used := s.laneUsed[job.class].Load()
	if used >= int64(s.laneDepths[job.class]) {
		q.rejected.Add(1)
		q.perClass[job.class].rejected.Add(1)
		return ErrQueueFull
	}
	if q.adm != nil {
		// The structural lane bound above always applies; the policy
		// can only refuse further (rate limits, deadline sheds).
		err := q.adm.Admit(AdmissionRequest{
			Class:     job.class,
			ClassName: q.classes.specs[job.class].Name,
			LaneUsed:  int(used),
			LaneDepth: s.laneDepths[job.class],
			Deadline:  q.effectiveDeadline(job),
			Cost:      job.cost,
			Now:       job.submitted,
		})
		if err != nil {
			q.rejected.Add(1)
			q.perClass[job.class].rejected.Add(1)
			return err
		}
	}
	// The admitted-ahead count at admission, kept for the flight
	// recorder's completion record.
	job.laneDepth = int(used)
	select {
	case s.runq[job.class] <- job:
	default:
		q.rejected.Add(1)
		q.perClass[job.class].rejected.Add(1)
		return ErrQueueFull
	}
	s.laneUsed[job.class].Add(1)
	if !job.pooled {
		// Pooled batch frames are not retained for Get/Jobs: the batch
		// owner holds the only handle, and retention would keep recycled
		// frames reachable.
		s.insertLocked(job)
	}
	if job.fn == nil {
		s.inflight[key] = job
	}
	q.submitted.Add(1)
	q.perClass[job.class].submitted.Add(1)
	q.pending.Add(1)
	s.pending.Add(1)
	return nil
}

// ingestLocked runs the admission pipeline of Submit for one
// ring-published frame: ID assignment, cache lookup, coalescing, enqueue.
// The caller either holds s.mu with the shard neither retired nor closed
// (a draining worker or a help-draining Batch.Submit) or owns the shard
// exclusively (Resize re-homing a sealed backlog onto an unpublished
// table). The frame's spec was validated and defaulted at Batch.Submit;
// failures here (admission control) turn the frame terminal in place.
func (q *Queue) ingestLocked(s *shard, epoch uint64, j *Job) {
	now := time.Now()
	key := j.Spec.key()
	j.ID = q.newID(s.idx)
	j.submitShard = s.idx
	j.submitEpoch = epoch
	if q.rec != nil && j.Name == "" {
		// Only a tracing queue pays for the rendered name; the untraced
		// hot path keeps the frame allocation-free.
		j.Name = j.Spec.String()
	}
	if e, ok := s.cache.get(key); ok {
		if j.Name == "" {
			j.Name = e.name // already rendered at settle
		}
		q.cacheHits.Add(1)
		q.submitted.Add(1)
		q.perClass[j.class].submitted.Add(1)
		if q.rec != nil {
			// Record before completing: completeCached signals the
			// owning batch, whose Release may recycle the frame while a
			// later record construction would still be reading it.
			q.recordServed(q.baseRecord(j), jobtrace.DispositionHit, s.idx, epoch)
		}
		j.completeCached(e.res, now)
		return
	}
	if dup, ok := s.inflight[key]; ok {
		q.coalesced.Add(1)
		if q.rec != nil {
			rec := q.baseRecord(dup)
			rec.ID = dup.ID
			rec.Class = string(q.classes.specs[j.class].Name)
			rec.SubmitNS = now.UnixNano()
			q.recordServed(rec, jobtrace.DispositionCoalesce, s.idx, epoch)
		}
		dup.mu.Lock()
		if dup.status == StatusDone || dup.status == StatusFailed {
			// The in-flight winner finished but has not settled yet (it
			// is terminal while still in the map only inside the
			// finish→settle window, and settle's chained drain may
			// already have run): serve its outcome directly.
			res, err := dup.result, dup.err
			dup.mu.Unlock()
			j.markFinished(res, err, now)
			j.signalDone()
			return
		}
		// Chain the frame onto the in-flight winner; settle completes it
		// with the winner's outcome after the cache holds it.
		dup.chained = append(dup.chained, j)
		dup.mu.Unlock()
		return
	}
	q.cacheMiss.Add(1)
	if err := q.enqueueLocked(s, j, key); err != nil {
		if q.rec != nil && (errors.Is(err, ErrQueueFull) || errors.Is(err, ErrDeadlineInfeasible)) {
			q.recordRejected(j, s.idx, epoch, s.laneDepths[j.class])
		}
		j.markFinished(Result{}, err, now)
		j.signalDone()
	}
}

// drainRingLocked ingests every frame currently published on s's submit
// ring, bounded to one full lap so a concurrent publisher cannot pin the
// drainer. The caller holds s.mu with the shard neither retired nor
// closed (which is what excludes seal — the only other consumer).
func (q *Queue) drainRingLocked(p *placement, s *shard) int {
	n := 0
	for range s.ring.slots {
		j := s.ring.pop()
		if j == nil {
			break
		}
		q.ingestLocked(s, p.epoch, j)
		n++
	}
	return n
}

// drainRing is the worker-side ring drain: a cheap lock-free emptiness
// probe, then a locked drain. Backing off when the shard is retired or
// closed leaves those rings to seal (Resize / Close), the sole consumer
// once either flag is set.
func (q *Queue) drainRing(p *placement, s *shard) int {
	if s.ring.empty() {
		return 0
	}
	s.mu.Lock()
	if s.retired || s.closed {
		s.mu.Unlock()
		return 0
	}
	n := q.drainRingLocked(p, s)
	s.mu.Unlock()
	if n > 0 {
		q.kickWorkers()
	}
	return n
}

// kickWorkers wakes one idle worker to sweep the shards for stealable
// work. Non-blocking: a pending kick already guarantees a sweep.
func (q *Queue) kickWorkers() {
	select {
	case q.kick <- struct{}{}:
	default:
	}
}

// Get returns the job with the given ID, if still retained. The route —
// the ID's birth-shard bits modulo the current shard count — is the same
// rule resizes migrate retention entries by, so IDs stay resolvable
// across epochs.
func (q *Queue) Get(id uint64) (*Job, bool) {
	for {
		s := q.place.Load().shardForID(id)
		s.mu.Lock()
		if s.retired {
			s.mu.Unlock()
			retryPlacement()
			continue
		}
		j, ok := s.byID[id]
		s.mu.Unlock()
		return j, ok
	}
}

// Jobs returns views of the most recent jobs across all shards, newest
// first, up to limit (limit <= 0 means all retained).
func (q *Queue) Jobs(limit int) []View {
retry:
	for {
		p := q.place.Load()
		var views []View
		for _, s := range p.shards {
			s.mu.Lock()
			if s.retired {
				s.mu.Unlock()
				retryPlacement()
				continue retry
			}
			for i := len(s.retained) - 1; i >= 0; i-- {
				if limit > 0 && i < len(s.retained)-limit {
					break // deeper entries cannot make the newest-limit cut
				}
				if j, ok := s.byID[s.retained[i]]; ok {
					views = append(views, j.View())
				}
			}
			s.mu.Unlock()
		}
		// IDs carry the global submission sequence in their high bits, so
		// sorting by ID descending is newest-first across shards.
		sort.Slice(views, func(i, j int) bool { return views[i].ID > views[j].ID })
		if limit > 0 && len(views) > limit {
			views = views[:limit]
		}
		return views
	}
}
