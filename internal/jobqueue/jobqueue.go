// Package jobqueue is the job-dispatch subsystem: a bounded worker pool
// that accepts simulation-job requests ("run algorithm A at size n with p
// processors on engine E"), validates and admission-controls them,
// schedules them across workers, memoizes completed results in an LRU
// cache, and aggregates serving statistics.
//
// The design transplants the paper's §3.1 scheduler from pal-threads to
// jobs: a fixed processor budget (the worker pool), work admitted into a
// bounded pending set and activated in creation order (the FIFO run queue),
// activated work never preempted, and saturation handled by refusing new
// work at admission (ErrQueueFull) rather than by unbounded queueing — the
// job-level analogue of a palthreads block running its children inline when
// no processor is free. Identical requests are coalesced while in flight
// and served from the result cache afterwards, the memoization principle of
// §4.5 applied to whole jobs.
package jobqueue

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"lopram/internal/core"
	"lopram/internal/palrt"
	"lopram/internal/stats"
)

// Errors returned by Submit and Result.
var (
	// ErrQueueFull: admission control refused the job; the pending queue
	// is at capacity. Retry later or raise Config.QueueDepth.
	ErrQueueFull = errors.New("jobqueue: queue full")
	// ErrClosed: the queue is shut down.
	ErrClosed = errors.New("jobqueue: queue closed")
	// ErrNotFinished: Result was called on a job still in flight.
	ErrNotFinished = errors.New("jobqueue: job not finished")
)

// Config sizes a Queue. The zero value selects sensible defaults.
type Config struct {
	// Workers is the worker-pool size: the number of jobs executing
	// concurrently. Defaults to the host's core count — one dispatch
	// worker per hardware core, mirroring the machine model's fixed p.
	Workers int
	// QueueDepth bounds the admitted-but-not-started set; submissions
	// beyond it fail fast with ErrQueueFull. Default 1024.
	QueueDepth int
	// CacheSize is the LRU result-cache capacity in entries. Default
	// 512; negative disables caching.
	CacheSize int
	// DefaultTimeout caps each job's execution when its spec does not
	// set one. Default 60s.
	DefaultTimeout time.Duration
	// Retain bounds how many terminal jobs stay queryable by ID.
	// Default 4096.
	Retain int
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 1024
	}
	if c.CacheSize == 0 {
		c.CacheSize = 512
	}
	if c.CacheSize < 0 {
		c.CacheSize = 0
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 60 * time.Second
	}
	if c.Retain <= 0 {
		c.Retain = 4096
	}
	return c
}

// Queue is the dispatch service. Create with New, stop with Close. All
// methods are safe for concurrent use.
type Queue struct {
	cfg    Config
	runq   chan *Job
	nextID atomic.Uint64
	// detach is the orphan budget: a worker may abandon a deadline-blown
	// run (leaving it to finish in the background) only while a slot is
	// free, so hostile timeout traffic cannot accumulate unbounded
	// concurrent runs. With the budget exhausted the worker waits for
	// its run to finish — backpressure instead of runaway concurrency.
	detach chan struct{}

	mu       sync.Mutex
	closed   bool
	byID     map[uint64]*Job
	retained []uint64 // submission order, for retention eviction
	inflight map[Key]*Job
	cache    *lru
	wall     sampleRing                // recent execution latencies (ms)
	wait     sampleRing                // recent queueing latencies (ms)
	perAlgo  map[string]*algoAggregate // keyed by algorithm (or func-job name)

	// Memoized latency summaries: Summarize sorts its sample, so Snapshot
	// computes it outside q.mu from a copied-out sample and caches the
	// result by ring generation — a /metrics poll can never stall workers
	// on an O(n log n) sort held under the queue lock.
	sumMu      sync.Mutex
	wallSum    stats.Summary
	wallSumGen uint64
	waitSum    stats.Summary
	waitSumGen uint64

	workers sync.WaitGroup
	orphans sync.WaitGroup

	// Counters (atomics: hot path, read by Snapshot without the lock).
	submitted  atomic.Int64
	completed  atomic.Int64
	failed     atomic.Int64
	rejected   atomic.Int64
	coalesced  atomic.Int64
	cacheHits  atomic.Int64
	cacheMiss  atomic.Int64
	timeouts   atomic.Int64
	pending    atomic.Int64
	running    atomic.Int64
	abandonedG atomic.Int64 // live abandoned runs (gauge)
}

type algoAggregate struct {
	count, failed int64
	totalWallMS   float64
}

// maxLatencySamples bounds the retained latency samples; older samples are
// overwritten FIFO. 4096 is plenty for p99 estimation.
const maxLatencySamples = 4096

// sampleRing is a fixed-capacity latency-sample window with O(1) insertion
// (the appendBounded slice it replaces memmoved the whole window on every
// completed job). gen counts insertions so readers can skip recomputing
// summaries of an unchanged window; sample order is irrelevant to the
// percentile math, so overwriting the oldest slot in place is enough.
type sampleRing struct {
	buf  []float64
	next int
	full bool
	gen  uint64
}

func (r *sampleRing) add(x float64) {
	if r.buf == nil {
		r.buf = make([]float64, maxLatencySamples)
	}
	r.buf[r.next] = x
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.full = true
	}
	r.gen++
}

// copyOut returns a fresh copy of the live samples.
func (r *sampleRing) copyOut() []float64 {
	n := r.next
	if r.full {
		n = len(r.buf)
	}
	return append([]float64(nil), r.buf[:n]...)
}

// New returns a running queue.
func New(cfg Config) *Queue {
	cfg = cfg.withDefaults()
	q := &Queue{
		cfg:      cfg,
		runq:     make(chan *Job, cfg.QueueDepth),
		detach:   make(chan struct{}, 2*cfg.Workers),
		byID:     make(map[uint64]*Job),
		inflight: make(map[Key]*Job),
		cache:    newLRU(cfg.CacheSize),
		perAlgo:  make(map[string]*algoAggregate),
	}
	q.workers.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go q.worker()
	}
	return q
}

// Close stops admission, drains already-admitted jobs, and waits for all
// workers (and any deadline-abandoned runs) to finish.
func (q *Queue) Close() {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return
	}
	q.closed = true
	close(q.runq)
	q.mu.Unlock()
	q.workers.Wait()
	q.orphans.Wait()
}

// Submit validates, admission-controls and enqueues an algorithm job.
// Duplicate requests are served without re-execution: a spec whose key is
// already in flight returns the in-flight job (coalescing), and one whose
// result is cached returns an already-completed job.
func (q *Queue) Submit(spec Spec) (*Job, error) {
	if spec.P == 0 && spec.N >= 1 {
		// Freeze the model-default processor count into the spec so the
		// submitter sees the p the job actually runs with.
		spec.P = core.ProcsFor(spec.N)
	}
	if err := core.ValidateSpec(spec.Algorithm, spec.Engine, spec.N, spec.P); err != nil {
		q.rejected.Add(1)
		return nil, fmt.Errorf("jobqueue: invalid spec: %w", err)
	}
	key := spec.key()
	now := time.Now()

	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		q.rejected.Add(1)
		return nil, ErrClosed
	}
	if res, ok := q.cache.get(key); ok {
		job := newJob(q.nextID.Add(1), spec.String(), spec, nil, now)
		q.insertLocked(job)
		q.mu.Unlock()
		q.cacheHits.Add(1)
		q.submitted.Add(1)
		// Cached serves are near-instant and skip the latency samples;
		// Wall in the result reports the original run's cost.
		job.completeCached(res, now)
		return job, nil
	}
	if dup, ok := q.inflight[key]; ok {
		q.mu.Unlock()
		q.coalesced.Add(1)
		return dup, nil
	}
	q.cacheMiss.Add(1)
	job := newJob(q.nextID.Add(1), spec.String(), spec, nil, now)
	if err := q.enqueueLocked(job, key); err != nil {
		q.mu.Unlock()
		return nil, err
	}
	q.mu.Unlock()
	return job, nil
}

// SubmitFunc enqueues an arbitrary work item on the same pool, subject to
// the same admission control and deadlines but bypassing spec validation,
// coalescing and the result cache. The experiment suite uses it to run
// E1–E18 through the queue as a load test.
func (q *Queue) SubmitFunc(name string, fn func(ctx context.Context) error) (*Job, error) {
	if fn == nil {
		return nil, fmt.Errorf("jobqueue: nil func for %q", name)
	}
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		q.rejected.Add(1)
		return nil, ErrClosed
	}
	job := newJob(q.nextID.Add(1), name, Spec{}, fn, time.Now())
	if err := q.enqueueLocked(job, Key{}); err != nil {
		q.mu.Unlock()
		return nil, err
	}
	q.mu.Unlock()
	return job, nil
}

// enqueueLocked admits a job to the run queue; the caller holds q.mu.
func (q *Queue) enqueueLocked(job *Job, key Key) error {
	select {
	case q.runq <- job:
	default:
		q.rejected.Add(1)
		return ErrQueueFull
	}
	q.insertLocked(job)
	if job.fn == nil {
		q.inflight[key] = job
	}
	q.submitted.Add(1)
	q.pending.Add(1)
	return nil
}

// insertLocked registers the job for Get/Jobs and evicts over-retention
// terminal jobs; the caller holds q.mu.
func (q *Queue) insertLocked(job *Job) {
	q.byID[job.ID] = job
	q.retained = append(q.retained, job.ID)
	for len(q.retained) > q.cfg.Retain {
		id := q.retained[0]
		old := q.byID[id]
		if old != nil {
			if st := old.Status(); st != StatusDone && st != StatusFailed {
				break // oldest job still in flight; retention resumes later
			}
			delete(q.byID, id)
		}
		q.retained = q.retained[1:]
	}
}

// Get returns the job with the given ID, if still retained.
func (q *Queue) Get(id uint64) (*Job, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	j, ok := q.byID[id]
	return j, ok
}

// Jobs returns views of the most recent jobs, newest first, up to limit
// (limit <= 0 means all retained).
func (q *Queue) Jobs(limit int) []View {
	q.mu.Lock()
	defer q.mu.Unlock()
	if limit <= 0 || limit > len(q.retained) {
		limit = len(q.retained)
	}
	views := make([]View, 0, limit)
	for i := len(q.retained) - 1; i >= 0 && len(views) < limit; i-- {
		if j, ok := q.byID[q.retained[i]]; ok {
			views = append(views, j.View())
		}
	}
	return views
}

// worker is the run loop of one pool worker: activate jobs in admission
// order until the queue closes.
func (q *Queue) worker() {
	defer q.workers.Done()
	for job := range q.runq {
		q.runJob(job)
	}
}

// runJob executes one job under its deadline. The engine run itself is not
// preemptible (an activated job "remains active just like a standard
// thread"), so a blown deadline fails the job immediately; the worker then
// either abandons the run to finish in the background (its result dropped)
// if the orphan budget allows, or waits it out to bound total concurrency.
func (q *Queue) runJob(job *Job) {
	q.pending.Add(-1)
	start := time.Now()
	if !job.markRunning(start) {
		return
	}
	q.running.Add(1)
	defer q.running.Add(-1)

	timeout := q.cfg.DefaultTimeout
	if job.Spec.Timeout > 0 {
		timeout = job.Spec.Timeout
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()

	runnerDone := make(chan struct{})
	q.orphans.Add(1)
	go func() {
		defer q.orphans.Done()
		defer close(runnerDone)
		var res Result
		var err error
		if job.fn != nil {
			err = job.fn(ctx)
		} else {
			var o core.Outcome
			o, err = core.RunAlgorithm(job.Spec.Algorithm, job.Spec.Engine, job.Spec.N, job.Spec.P, job.Spec.Seed)
			res = Result{Outcome: o}
		}
		res.Wall = time.Since(start)
		// Loses against the worker's deadline finish when the job was
		// abandoned; the computed result is dropped.
		if job.finish(res, err, time.Now()) {
			q.settle(job, res, err, start)
		}
	}()

	select {
	case <-runnerDone:
	case <-ctx.Done():
		err := fmt.Errorf("jobqueue: job %s exceeded its %v deadline: %w", job.Name, timeout, context.DeadlineExceeded)
		if !job.finish(Result{}, err, time.Now()) {
			// The runner finished in the same instant and won.
			return
		}
		q.timeouts.Add(1)
		q.settle(job, Result{}, err, start)
		select {
		case q.detach <- struct{}{}:
			// Budget available: abandon the run and free this worker. A
			// watcher returns the slot when the run drains.
			q.abandonedG.Add(1)
			q.orphans.Add(1)
			go func() {
				defer q.orphans.Done()
				<-runnerDone
				<-q.detach
				q.abandonedG.Add(-1)
			}()
		default:
			// Orphan budget exhausted: hold this worker until the run
			// completes so deadline abuse cannot stack up unbounded
			// concurrent runs.
			<-runnerDone
		}
	}
}

// settle updates cache, inflight tracking and aggregates after a job
// reaches its terminal state.
func (q *Queue) settle(job *Job, res Result, err error, start time.Time) {
	wall := time.Since(start)
	q.mu.Lock()
	if job.fn == nil {
		key := job.Spec.key()
		if q.inflight[key] == job {
			delete(q.inflight, key)
		}
		if err == nil {
			q.cache.put(key, res)
		}
	}
	q.mu.Unlock()
	if err != nil {
		q.failed.Add(1)
	} else {
		q.completed.Add(1)
	}
	q.recordDone(job, wall, err != nil)
}

// recordDone folds one terminal job into the latency samples and
// per-algorithm aggregates.
func (q *Queue) recordDone(job *Job, wall time.Duration, failed bool) {
	name := job.Spec.Algorithm
	if name == "" {
		name = job.Name
	}
	wallMS := float64(wall) / float64(time.Millisecond)
	waitMS := 0.0
	job.mu.Lock()
	if !job.started.IsZero() {
		waitMS = float64(job.started.Sub(job.submitted)) / float64(time.Millisecond)
	}
	job.mu.Unlock()

	q.mu.Lock()
	defer q.mu.Unlock()
	q.wall.add(wallMS)
	q.wait.add(waitMS)
	agg := q.perAlgo[name]
	if agg == nil {
		agg = &algoAggregate{}
		q.perAlgo[name] = agg
	}
	agg.count++
	if failed {
		agg.failed++
	}
	agg.totalWallMS += wallMS
}

// AlgoStats summarizes one algorithm's traffic.
type AlgoStats struct {
	Count      int64   `json:"count"`
	Failed     int64   `json:"failed,omitempty"`
	MeanWallMS float64 `json:"mean_wall_ms"`
}

// Metrics is a point-in-time snapshot of the queue's serving statistics.
type Metrics struct {
	Workers    int   `json:"workers"`
	QueueDepth int   `json:"queue_depth"`
	Pending    int64 `json:"pending"`
	Running    int64 `json:"running"`

	Submitted int64 `json:"submitted"`
	Completed int64 `json:"completed"`
	Failed    int64 `json:"failed"`
	Rejected  int64 `json:"rejected"`
	Timeouts  int64 `json:"timeouts"`
	Abandoned int64 `json:"abandoned_running"`

	Coalesced   int64   `json:"coalesced"`
	CacheHits   int64   `json:"cache_hits"`
	CacheMisses int64   `json:"cache_misses"`
	CacheSize   int     `json:"cache_size"`
	HitRate     float64 `json:"hit_rate"`

	Wall stats.Summary `json:"wall_ms"`
	Wait stats.Summary `json:"wait_ms"`

	// Scheduler is the palrt work-stealing runtime's process-wide
	// spawn/steal/inline breakdown: how the goroutine engine behind every
	// EnginePalrt job scheduled its pal-threads.
	Scheduler palrt.SchedulerStats `json:"scheduler"`

	PerAlgorithm map[string]AlgoStats `json:"per_algorithm,omitempty"`
}

// Snapshot returns current metrics. HitRate counts both cache hits and
// in-flight coalesces as served-without-execution.
func (q *Queue) Snapshot() Metrics {
	m := Metrics{
		Workers:     q.cfg.Workers,
		QueueDepth:  q.cfg.QueueDepth,
		Pending:     q.pending.Load(),
		Running:     q.running.Load(),
		Submitted:   q.submitted.Load(),
		Completed:   q.completed.Load(),
		Failed:      q.failed.Load(),
		Rejected:    q.rejected.Load(),
		Timeouts:    q.timeouts.Load(),
		Abandoned:   q.abandonedG.Load(),
		Coalesced:   q.coalesced.Load(),
		CacheHits:   q.cacheHits.Load(),
		CacheMisses: q.cacheMiss.Load(),
	}
	served := m.CacheHits + m.Coalesced
	if total := served + m.CacheMisses; total > 0 {
		m.HitRate = float64(served) / float64(total)
	}
	m.Scheduler = palrt.GlobalStats()

	// Under q.mu: only O(1) reads and the sample copy-out. The sorts the
	// summaries need run after the lock is released.
	q.mu.Lock()
	m.CacheSize = q.cache.len()
	wallGen, waitGen := q.wall.gen, q.wait.gen
	var wallCopy, waitCopy []float64
	q.sumMu.Lock()
	if wallGen != q.wallSumGen {
		wallCopy = q.wall.copyOut()
	}
	if waitGen != q.waitSumGen {
		waitCopy = q.wait.copyOut()
	}
	q.sumMu.Unlock()
	m.PerAlgorithm = make(map[string]AlgoStats, len(q.perAlgo))
	for name, agg := range q.perAlgo {
		s := AlgoStats{Count: agg.count, Failed: agg.failed}
		if agg.count > 0 {
			s.MeanWallMS = agg.totalWallMS / float64(agg.count)
		}
		m.PerAlgorithm[name] = s
	}
	q.mu.Unlock()

	q.sumMu.Lock()
	if wallCopy != nil {
		q.wallSum, q.wallSumGen = stats.Summarize(wallCopy), wallGen
	}
	if waitCopy != nil {
		q.waitSum, q.waitSumGen = stats.Summarize(waitCopy), waitGen
	}
	m.Wall, m.Wait = q.wallSum, q.waitSum
	q.sumMu.Unlock()
	return m
}
