package jobqueue

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"lopram/internal/core"
)

// Status is a job's lifecycle state. The states mirror the pal-thread
// states of §3.1: a queued job is "pending" (created, no processor), a
// running job is "activated", and like an activated pal-thread it is never
// preempted — it runs to completion, failure, or abandonment at its
// deadline.
type Status int32

const (
	// StatusQueued means admitted and waiting for a worker.
	StatusQueued Status = iota
	// StatusRunning means executing on a worker.
	StatusRunning
	// StatusDone means completed successfully; Result is available.
	StatusDone
	// StatusFailed means the run returned an error or exceeded its
	// deadline.
	StatusFailed
)

// String returns the status's wire name ("queued", "running", "done",
// "failed").
func (s Status) String() string {
	switch s {
	case StatusQueued:
		return "queued"
	case StatusRunning:
		return "running"
	case StatusDone:
		return "done"
	case StatusFailed:
		return "failed"
	}
	return fmt.Sprintf("Status(%d)", int32(s))
}

// MarshalJSON renders the status as its string form.
func (s Status) MarshalJSON() ([]byte, error) {
	return []byte(fmt.Sprintf("%q", s.String())), nil
}

// Spec describes one simulation job: run algorithm Algorithm at input size
// N with P processors on Engine, inputs derived from Seed.
type Spec struct {
	Algorithm string      `json:"algorithm"`
	N         int         `json:"n"`
	P         int         `json:"p,omitempty"` // 0 → core.ProcsFor(N)
	Engine    core.Engine `json:"engine"`
	Seed      uint64      `json:"seed"`
	// Priority selects the job's class by name; empty means the class
	// set's first (default) class. The class does not affect the result,
	// so it is not part of the cache key: a batch run's cached result
	// serves interactive dups.
	Priority Class `json:"priority,omitempty"`
	// Timeout caps the job's execution time; 0 selects the queue's
	// default. Serialized as nanoseconds.
	Timeout time.Duration `json:"timeout,omitempty"`
}

// Key is the result-cache identity of a spec: every field that determines
// the outcome. Two specs with equal keys produce identical results (inputs
// derive from Seed; engines are deterministic in their reported
// Steps/Work/Value/Check — only wall time varies).
type Key struct {
	Algorithm string
	N, P      int
	Engine    core.Engine
	Seed      uint64
}

// key returns the cache identity with defaults resolved.
func (s Spec) key() Key {
	p := s.P
	if p == 0 {
		p = core.ProcsFor(s.N)
	}
	return Key{Algorithm: s.Algorithm, N: s.N, P: p, Engine: s.Engine, Seed: s.Seed}
}

// String renders the spec compactly for logs and job names.
func (s Spec) String() string {
	return fmt.Sprintf("%s/n=%d/p=%d/%s/seed=%d", s.Algorithm, s.N, s.key().P, s.Engine, s.Seed)
}

// Result is the outcome delivered to the submitter.
type Result struct {
	core.Outcome
	// Wall is the execution wall-clock time of the run that produced
	// this result (for cached results: of the original run).
	Wall time.Duration `json:"wall"`
	// Cached reports that the result was served from the result cache
	// without executing.
	Cached bool `json:"cached,omitempty"`
}

// Job is a submitted work item. All methods are safe for concurrent use.
type Job struct {
	// ID is the queue-assigned identifier, unique within a Queue.
	ID uint64
	// Name identifies the work: Spec.String() for algorithm jobs, the
	// caller's name for func jobs.
	Name string
	// Spec is the algorithm spec; zero for func jobs.
	Spec Spec

	fn        func(ctx context.Context) error // func jobs only
	submitted time.Time
	// class is the priority class's index into the queue's class set.
	// The home shard is not stored: it is encoded in ID's low shardBits.
	class int

	// Flight-recorder fields. submitShard/submitEpoch/laneDepth are
	// written before the job is published to its run queue and
	// execShard/stealFrom by the executing worker before it spawns the
	// runner; the completion flush (which runs after the run finishes)
	// is the only reader, so the channel send and goroutine creation
	// order them without a lock.
	submitShard int
	submitEpoch uint64
	laneDepth   int
	execShard   int
	stealFrom   int

	// cost is the Submit-time cost prediction, zero unless a non-default
	// policy is active. Written before the job is published (same
	// discipline as the flight-recorder fields above); read by policy
	// views and the settle-time calibrator feed.
	cost CostEstimate

	// pooled marks a frame borrowed from the batch frame arena
	// (Batch.Submit): the ingest path skips ID retention for it and
	// Batch.Release recycles it. notify, set before the frame is
	// published, is the owning Batch, told once when the frame turns
	// terminal. Both are fixed for the frame's flight, so they need no
	// lock.
	pooled bool
	notify *Batch
	// pinned marks a pooled frame that escaped its batch lifecycle — a
	// single Submit returned it as a coalesced duplicate — so release
	// must leave it to the GC instead of recycling it under the escaped
	// holder. Set under the home shard's lock while the frame is still
	// in the inflight map, which orders the pin before any release (the
	// frame cannot be terminal, let alone settled and released, while
	// inflight still maps to it).
	pinned atomic.Bool
	// touches counts live references held by the execution machinery
	// (the dequeuing worker and its runner goroutine): runJob sets it
	// before the deadline race can fork and each side drops its count
	// after its last access, so release recycles a frame only when no
	// abandoned run or racing deadline loser can still write to it.
	touches atomic.Int32

	mu       sync.Mutex
	status   Status
	result   Result
	err      error
	started  time.Time
	finished time.Time
	// done is the completion channel, allocated lazily (doneChan) so the
	// pooled submit path costs no allocation when nobody selects on the
	// job; signaled records completion for waiters that arrive later.
	// chained holds pooled frames coalesced onto this in-flight job;
	// the completion flush completes them with this job's outcome.
	done     chan struct{}
	signaled bool
	chained  []*Job
}

func newJob(id uint64, name string, spec Spec, fn func(ctx context.Context) error, now time.Time) *Job {
	return &Job{ID: id, Name: name, Spec: spec, fn: fn, submitted: now,
		execShard: -1, stealFrom: -1, done: make(chan struct{})}
}

// Status returns the job's current state.
func (j *Job) Status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.status
}

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.doneChan() }

// doneChan returns the completion channel, allocating it on first use.
// Jobs built by newJob carry an eager channel; pooled batch frames defer
// the allocation to here, so a batch that never selects on individual
// jobs (Batch.Wait rides the batch token instead) pays nothing. A waiter
// arriving after completion gets an already-closed channel.
func (j *Job) doneChan() chan struct{} {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.done == nil {
		j.done = make(chan struct{})
		if j.signaled {
			close(j.done)
		}
	}
	return j.done
}

// Wait blocks until the job completes or ctx expires, then returns the
// job's result.
func (j *Job) Wait(ctx context.Context) (Result, error) {
	select {
	case <-j.doneChan():
		return j.Result()
	case <-ctx.Done():
		return Result{}, ctx.Err()
	}
}

// Result returns the outcome of a finished job; for queued or running jobs
// it returns ErrNotFinished.
func (j *Job) Result() (Result, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	switch j.status {
	case StatusDone:
		return j.result, nil
	case StatusFailed:
		return Result{}, j.err
	}
	return Result{}, ErrNotFinished
}

// markRunning transitions queued → running. It returns false if the job is
// already terminal (cannot happen under the queue's discipline, but the
// guard keeps the state machine locally checkable).
func (j *Job) markRunning(now time.Time) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.status != StatusQueued {
		return false
	}
	j.status = StatusRunning
	j.started = now
	return true
}

// markFinished transitions to a terminal state exactly once; late
// finishers (an abandoned run completing after its deadline already
// failed the job) return false and their result is dropped. It does not
// signal Done: the winning outcome settles the queue's caches and
// counters first — at the owning worker's completion flush — and only
// then signalDone fires, so a submitter whose Wait has returned can
// rely on the result cache already holding the outcome. Without the
// ordering, a duplicate submitted in the finish→flush window would find
// a stale in-flight entry instead of a cache hit (it still coalesces
// onto the terminal winner and is served its outcome at the flush).
func (j *Job) markFinished(res Result, err error, now time.Time) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.status == StatusDone || j.status == StatusFailed {
		return false
	}
	j.finished = now
	if err != nil {
		j.status = StatusFailed
		j.err = err
	} else {
		j.status = StatusDone
		j.result = res
	}
	return true
}

// signalDone marks the job's completion visible: it closes the done
// channel if one exists (later doneChan callers get a pre-closed one)
// and notifies the owning Batch, if any. Called exactly once per job,
// from the completion flush that published the winning outcome (or
// directly, for jobs that never enter the run queue).
func (j *Job) signalDone() {
	j.mu.Lock()
	j.signaled = true
	ch := j.done
	j.mu.Unlock()
	if ch != nil {
		close(ch)
	}
	if j.notify != nil {
		j.notify.jobDone()
	}
}

// completeCached resolves a job immediately from a cached result. Used for
// jobs that never enter the run queue.
func (j *Job) completeCached(res Result, now time.Time) {
	res.Cached = true
	j.mu.Lock()
	j.status = StatusDone
	j.result = res
	j.started = now
	j.finished = now
	j.mu.Unlock()
	j.signalDone()
}

// View is the JSON-serializable snapshot of a job, served by lopramd's
// status endpoint.
type View struct {
	ID        uint64    `json:"id"`
	Name      string    `json:"name"`
	Spec      *Spec     `json:"spec,omitempty"`
	Status    Status    `json:"status"`
	Result    *Result   `json:"result,omitempty"`
	Error     string    `json:"error,omitempty"`
	Submitted time.Time `json:"submitted"`
	Started   time.Time `json:"started,omitzero"`
	Finished  time.Time `json:"finished,omitzero"`
	// WaitMS and RunMS are the queueing and execution latencies in
	// milliseconds, populated for started / finished jobs.
	WaitMS float64 `json:"wait_ms,omitempty"`
	RunMS  float64 `json:"run_ms,omitempty"`
}

// View snapshots the job.
func (j *Job) View() View {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := View{ID: j.ID, Name: j.Name, Status: j.status, Submitted: j.submitted,
		Started: j.started, Finished: j.finished}
	if j.Spec.Algorithm != "" {
		spec := j.Spec
		v.Spec = &spec
	}
	if !j.started.IsZero() {
		v.WaitMS = float64(j.started.Sub(j.submitted)) / float64(time.Millisecond)
	}
	switch j.status {
	case StatusDone:
		res := j.result
		v.Result = &res
		v.RunMS = float64(j.finished.Sub(j.started)) / float64(time.Millisecond)
	case StatusFailed:
		v.Error = j.err.Error()
		v.RunMS = float64(j.finished.Sub(j.started)) / float64(time.Millisecond)
	}
	return v
}
