// Package policytest is the conformance harness for jobqueue decision
// policies: a reusable test suite every DequeuePolicy and
// AdmissionPolicy implementation — shipped or custom — must pass before
// the queue can trust it. RunDequeue and RunAdmission check the
// interface contracts the queue relies on (deterministic pure ordering,
// strict-class priority, liveness, rejection idempotence) first against
// synthetic fixtures and then against a live queue running the policy.
package policytest

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"testing"
	"time"

	"lopram/internal/jobqueue"
)

// fixtureViews builds a diverse set of job views covering the dimensions
// any shipped policy orders by: arrival, class, deadline (present and
// absent), and cost (unknown, units-only, calibrated wall).
func fixtureViews() []jobqueue.JobView {
	base := time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC)
	return []jobqueue.JobView{
		{ID: 1 << 6, Class: 0, ClassName: "interactive", Submitted: base,
			Deadline: time.Second,
			Cost:     jobqueue.CostEstimate{Known: true, Units: 100, Wall: 10 * time.Millisecond}},
		{ID: 2 << 6, Class: 0, ClassName: "interactive", Submitted: base.Add(time.Millisecond),
			Deadline: 100 * time.Millisecond,
			Cost:     jobqueue.CostEstimate{Known: true, Units: 1e6, Wall: 80 * time.Millisecond}},
		{ID: 3 << 6, Class: 1, ClassName: "batch", Submitted: base.Add(2 * time.Millisecond),
			Deadline: time.Minute,
			Cost:     jobqueue.CostEstimate{Known: true, Units: 50}},
		{ID: 4 << 6, Class: 1, ClassName: "batch", Submitted: base.Add(3 * time.Millisecond),
			Cost: jobqueue.CostEstimate{}},
		{ID: 5 << 6, Class: 0, ClassName: "interactive", Submitted: base.Add(4 * time.Millisecond),
			Deadline: time.Second,
			Cost:     jobqueue.CostEstimate{Known: true, Units: 100, Wall: 10 * time.Millisecond}},
		{ID: 6 << 6, Class: 1, ClassName: "batch", Submitted: base.Add(-time.Millisecond),
			Deadline: 5 * time.Millisecond,
			Cost:     jobqueue.CostEstimate{Known: true, Units: 3, Wall: time.Millisecond}},
	}
}

// RunDequeue checks one DequeuePolicy against the conformance contract:
//
//   - Before is deterministic, irreflexive and antisymmetric over a
//     fixture covering every dimension a policy may order by.
//   - On a live queue running the policy: every admitted job completes
//     below saturation (liveness), no job is invented (never dequeues
//     from an empty queue — executed never exceeds submitted), and
//     strict classes are never starved by weighted ones (every strict
//     job starts before any weighted job queued behind the same blocked
//     pool).
//
// The policy instance is used concurrently the way the queue uses it.
func RunDequeue(t *testing.T, p jobqueue.DequeuePolicy) {
	t.Helper()
	if p.Name() == "" {
		t.Fatalf("policy has an empty Name()")
	}
	views := fixtureViews()
	t.Run("ordering-contract", func(t *testing.T) {
		for i := range views {
			for j := range views {
				a, b := views[i], views[j]
				first := p.Before(&a, &b)
				for rep := 0; rep < 3; rep++ {
					a2, b2 := views[i], views[j]
					if got := p.Before(&a2, &b2); got != first {
						t.Fatalf("Before(view %d, view %d) not deterministic: %v then %v", i, j, first, got)
					}
				}
				if i == j && first {
					t.Fatalf("Before(view %d, view %d): not irreflexive", i, j)
				}
				if first && p.Before(&b, &a) {
					t.Fatalf("Before symmetric for views %d and %d: both orders report true", i, j)
				}
			}
		}
	})
	t.Run("liveness", func(t *testing.T) {
		q := jobqueue.New(jobqueue.Config{
			Workers: 4, Shards: 2, QueueDepth: 4096, CacheSize: -1,
			Policies: jobqueue.Policies{DequeuePolicy: p},
		})
		defer q.Close()
		const n = 64
		jobs := make([]*jobqueue.Job, 0, n)
		for i := 0; i < n; i++ {
			j, err := q.SubmitFunc(fmt.Sprintf("conf-%s-%d", p.Name(), i), func(context.Context) error { return nil })
			if err != nil {
				t.Fatalf("submit %d: %v", i, err)
			}
			jobs = append(jobs, j)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		for i, j := range jobs {
			if _, err := j.Wait(ctx); err != nil {
				t.Fatalf("job %d never completed below saturation: %v", i, err)
			}
		}
		m := q.Snapshot()
		if m.Completed+m.Failed > m.Submitted {
			t.Fatalf("executed %d jobs but only %d were submitted: dequeued from an empty queue",
				m.Completed+m.Failed, m.Submitted)
		}
	})
	t.Run("strict-priority", func(t *testing.T) {
		q := jobqueue.New(jobqueue.Config{
			Workers: 1, Shards: 1, QueueDepth: 4096, CacheSize: -1,
			Policies: jobqueue.Policies{DequeuePolicy: p},
		})
		defer q.Close()
		release := blockWorkers(t, q, 1)
		// Weighted (batch) jobs go in first so an arrival-order policy
		// would run them first if the queue did not enforce the strict
		// tier above the policy.
		type started struct {
			job   *jobqueue.Job
			batch bool
		}
		var all []started
		for i := 0; i < 6; i++ {
			j, err := q.Submit(jobqueue.Spec{Algorithm: "reduce", N: 64, P: 2, Engine: "sim",
				Seed: uint64(i), Priority: jobqueue.ClassBatch})
			if err != nil {
				t.Fatalf("submit weighted %d: %v", i, err)
			}
			all = append(all, started{j, true})
		}
		for i := 0; i < 6; i++ {
			j, err := q.Submit(jobqueue.Spec{Algorithm: "reduce", N: 64, P: 2, Engine: "sim",
				Seed: uint64(1000 + i), Priority: jobqueue.ClassInteractive})
			if err != nil {
				t.Fatalf("submit strict %d: %v", i, err)
			}
			all = append(all, started{j, false})
		}
		release()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		for _, s := range all {
			if _, err := s.job.Wait(ctx); err != nil {
				t.Fatalf("job %s never completed: %v", s.job.Name, err)
			}
		}
		sort.SliceStable(all, func(i, j int) bool {
			return all[i].job.View().Started.Before(all[j].job.View().Started)
		})
		seenBatch := false
		for _, s := range all {
			if s.batch {
				seenBatch = true
			} else if seenBatch {
				t.Fatalf("strict job %s started after a weighted job: strict tier starved", s.job.Name)
			}
		}
	})
}

// blockWorkers occupies every worker of q with a blocking func job
// (waiting until all of them are running) and returns the function that
// releases them — the window in which submitted jobs provably queue.
// SubmitFunc jobs run in the class set's first class, which is strict in
// the default set, so blockers cannot be queued behind the test jobs.
func blockWorkers(t *testing.T, q *jobqueue.Queue, workers int) (release func()) {
	t.Helper()
	gate := make(chan struct{})
	var running sync.WaitGroup
	running.Add(workers)
	for i := 0; i < workers; i++ {
		if _, err := q.SubmitFunc(fmt.Sprintf("blocker-%d", i), func(context.Context) error {
			running.Done()
			<-gate
			return nil
		}); err != nil {
			t.Fatalf("submit blocker %d: %v", i, err)
		}
	}
	running.Wait()
	return func() { close(gate) }
}

// RunAdmission checks one AdmissionPolicy against the conformance
// contract:
//
//   - A fresh request with lane headroom is admitted.
//   - A request at the structural lane bound is rejected with an error
//     wrapping jobqueue.ErrQueueFull (policies may only be more
//     restrictive than the bound, never admit past it).
//   - Rejection is idempotent: retrying the identical rejected request
//     at the same Now yields the identical decision — a rejecting Admit
//     consumed no budget.
//   - On a live queue running the policy, jobs submitted below the
//     policy's limits complete (admission does not wedge the queue).
//
// newPolicy must return a fresh instance per call so stateful policies
// (token buckets) start each check cold.
func RunAdmission(t *testing.T, newPolicy func() jobqueue.AdmissionPolicy) {
	t.Helper()
	now := time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC)
	fresh := jobqueue.AdmissionRequest{
		Class: 0, ClassName: "interactive", LaneUsed: 0, LaneDepth: 128,
		Deadline: time.Minute,
		Cost:     jobqueue.CostEstimate{Known: true, Units: 100, Wall: time.Millisecond},
		Now:      now,
	}
	t.Run("admits-with-headroom", func(t *testing.T) {
		p := newPolicy()
		if p.Name() == "" {
			t.Fatalf("policy has an empty Name()")
		}
		if err := p.Admit(fresh); err != nil {
			t.Fatalf("fresh request with lane headroom rejected: %v", err)
		}
	})
	t.Run("rejects-at-lane-bound", func(t *testing.T) {
		p := newPolicy()
		full := fresh
		full.LaneUsed = full.LaneDepth
		err := p.Admit(full)
		if err == nil {
			t.Fatalf("request at the lane bound admitted: policies must respect the structural bound")
		}
		if !errors.Is(err, jobqueue.ErrQueueFull) {
			t.Fatalf("lane-bound rejection does not wrap ErrQueueFull: %v", err)
		}
	})
	t.Run("rejection-idempotent", func(t *testing.T) {
		p := newPolicy()
		full := fresh
		full.LaneUsed = full.LaneDepth
		first := p.Admit(full)
		for i := 0; i < 3; i++ {
			err := p.Admit(full)
			if (err == nil) != (first == nil) || !errors.Is(err, jobqueue.ErrQueueFull) {
				t.Fatalf("retry %d of a rejected request decided differently: %v then %v", i, first, err)
			}
		}
		// The rejections must not have consumed budget: the original
		// admissible request still admits.
		if err := p.Admit(fresh); err != nil {
			t.Fatalf("admissible request rejected after rejected retries consumed budget: %v", err)
		}
	})
	t.Run("queue-integration", func(t *testing.T) {
		q := jobqueue.New(jobqueue.Config{
			Workers: 2, Shards: 1, QueueDepth: 1024, CacheSize: -1,
			Policies: jobqueue.Policies{AdmissionPolicy: newPolicy()},
		})
		defer q.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		// Sequential submits stay far below any shipped policy's rate
		// and depth limits.
		for i := 0; i < 16; i++ {
			j, err := q.Submit(jobqueue.Spec{Algorithm: "reduce", N: 64, P: 2, Engine: "sim", Seed: uint64(i)})
			if err != nil {
				t.Fatalf("submit %d rejected below the policy's limits: %v", i, err)
			}
			if _, err := j.Wait(ctx); err != nil {
				t.Fatalf("job %d never completed: %v", i, err)
			}
		}
	})
}
