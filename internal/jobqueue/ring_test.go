package jobqueue

import (
	"runtime"
	"sync"
	"testing"
)

func TestSubmitRingFIFO(t *testing.T) {
	r := newSubmitRing(8)
	if !r.empty() {
		t.Fatal("new ring not empty")
	}
	jobs := make([]*Job, 5)
	for i := range jobs {
		jobs[i] = &Job{ID: uint64(i + 1)}
		if st := r.publish(jobs[i]); st != ringOK {
			t.Fatalf("publish %d: status %v", i, st)
		}
	}
	if r.empty() {
		t.Fatal("ring with published frames reports empty")
	}
	for i := range jobs {
		j := r.pop()
		if j == nil || j.ID != uint64(i+1) {
			t.Fatalf("pop %d: got %v, want ID %d", i, j, i+1)
		}
	}
	if got := r.pop(); got != nil {
		t.Fatalf("pop on drained ring: got %v", got)
	}
	if !r.empty() {
		t.Fatal("drained ring not empty")
	}
}

func TestSubmitRingWrapAround(t *testing.T) {
	r := newSubmitRing(4)
	next := uint64(1)
	for lap := 0; lap < 5; lap++ {
		for i := 0; i < 3; i++ {
			if st := r.publish(&Job{ID: next}); st != ringOK {
				t.Fatalf("lap %d publish: status %v", lap, st)
			}
			next++
		}
		for i := 0; i < 3; i++ {
			j := r.pop()
			want := next - 3 + uint64(i)
			if j == nil || j.ID != want {
				t.Fatalf("lap %d pop: got %v, want ID %d", lap, j, want)
			}
		}
	}
}

func TestSubmitRingFullThenSeal(t *testing.T) {
	r := newSubmitRing(4)
	for i := 0; i < 4; i++ {
		if st := r.publish(&Job{ID: uint64(i + 1)}); st != ringOK {
			t.Fatalf("publish %d: status %v", i, st)
		}
	}
	if st := r.publish(&Job{ID: 99}); st != ringFull {
		t.Fatalf("publish on full ring: status %v, want ringFull", st)
	}
	backlog := r.seal()
	if len(backlog) != 4 {
		t.Fatalf("seal returned %d frames, want 4", len(backlog))
	}
	for i, j := range backlog {
		if j.ID != uint64(i+1) {
			t.Fatalf("seal backlog[%d] = ID %d, want %d (FIFO)", i, j.ID, i+1)
		}
	}
	if st := r.publish(&Job{ID: 100}); st != ringSealed {
		t.Fatalf("publish on sealed ring: status %v, want ringSealed", st)
	}
	if got := r.seal(); len(got) != 0 {
		t.Fatalf("second seal returned %d frames, want 0", len(got))
	}
}

// TestSubmitRingConcurrentPublish hammers the MPSC contract: many
// producers against one consumer, no frame lost or duplicated.
func TestSubmitRingConcurrentPublish(t *testing.T) {
	const producers = 8
	const perProducer = 500
	r := newSubmitRing(64)
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				j := &Job{ID: uint64(p*perProducer + i + 1)}
				for r.publish(j) != ringOK {
					runtime.Gosched() // full: let the consumer run
				}
			}
		}(p)
	}
	seen := make(map[uint64]bool, producers*perProducer)
	var mu sync.Mutex // consumer exclusivity, normally the shard lock
	popAll := func() {
		mu.Lock()
		defer mu.Unlock()
		for {
			j := r.pop()
			if j == nil {
				return
			}
			if seen[j.ID] {
				t.Errorf("frame %d consumed twice", j.ID)
			}
			seen[j.ID] = true
		}
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	for {
		popAll()
		select {
		case <-done:
			popAll()
			if len(seen) != producers*perProducer {
				t.Fatalf("consumed %d frames, want %d", len(seen), producers*perProducer)
			}
			return
		default:
		}
	}
}
