package jobqueue

import (
	"time"

	"lopram/internal/jobcost"
)

// costCalibrator adapts the jobcost oracle to the queue: it prices specs
// at Submit (units from the recurrence model, wall from the per-engine
// calibrated scale) and learns the scale from settled executions. Only
// built when a non-default policy is active, so the default wiring never
// touches the cost path.
type costCalibrator struct {
	cal *jobcost.Calibrator
}

func newCostCalibrator() *costCalibrator {
	return &costCalibrator{cal: jobcost.NewCalibrator()}
}

// estimate prices one algorithm spec. Func jobs and pairs outside the
// model return a zero (unknown) estimate — policies must treat those as
// unordered, not free.
func (c *costCalibrator) estimate(spec Spec, p int) CostEstimate {
	est := jobcost.Predict(spec.Algorithm, spec.Engine, spec.N, p)
	if !est.Known {
		return CostEstimate{}
	}
	return CostEstimate{
		Known: true,
		Units: est.Units,
		Wall:  c.cal.Wall(spec.Engine, est.Units),
	}
}

// observe feeds one executed job's measured wall time back into the
// per-engine scale. Called from settle for successful, non-func runs.
func (c *costCalibrator) observe(job *Job, wall time.Duration) {
	if job.fn != nil || !job.cost.Known {
		return
	}
	c.cal.Observe(job.Spec.Engine, job.cost.Units, wall)
}

// effectiveDeadline is the execution deadline the job will actually run
// under: its spec's timeout (the class default is already stamped in at
// Submit) or the queue-wide default.
func (q *Queue) effectiveDeadline(job *Job) time.Duration {
	if job.fn == nil && job.Spec.Timeout > 0 {
		return job.Spec.Timeout
	}
	return q.cfg.DefaultTimeout
}

// policyView builds the read-only snapshot a DequeuePolicy orders by.
func (q *Queue) policyView(job *Job) JobView {
	return JobView{
		ID:        job.ID,
		Class:     job.class,
		ClassName: q.classes.specs[job.class].Name,
		Submitted: job.submitted,
		Deadline:  q.effectiveDeadline(job),
		Cost:      job.cost,
	}
}
