package jobqueue

import (
	"context"
	"fmt"
	"hash/fnv"
	"sync"
	"sync/atomic"
	"time"

	"lopram/internal/core"
	"lopram/internal/jobcost"
)

// stealPoll is the fallback interval at which an idle worker re-sweeps
// the other shards for stealable work. The enqueue-time kick is the fast
// wake path; the poll only covers kick loss under pathological timing,
// so it can be slow enough to cost nothing on an idle queue. It also
// bounds how long an idle worker can sit on a superseded placement table
// before re-homing.
const stealPoll = 10 * time.Millisecond

// shard is one independent slice of the queue: its own run queues (one
// per priority class), worker pool, coalescing map, and result cache.
// All mutable state is guarded by mu except the atomic gauges and the
// lock-free cache read index; nothing on a shard is touched by another
// shard's submissions, so contention is confined to the traffic hashed
// here. (Latency rings and per-algorithm aggregates live on the
// workers' own metric shards — see workerMetrics — not here.)
type shard struct {
	idx int
	// runq holds the admitted-but-not-started jobs, one bounded FIFO per
	// priority class, indexed by class-set position. Workers drain
	// strict classes first, then the weighted classes round-robin.
	runq []chan *Job

	// ring is the shard's bounded MPSC submit ring: Batch.Submit
	// publishes pooled frames here without taking mu, and whoever holds
	// mu (a worker between dequeues, or a publisher helping out on a
	// full ring) drains them through the ingest pipeline. Sealed — and
	// its backlog re-homed — when the shard is retired or closed.
	ring *submitRing

	// laneDepths is each class lane's admission bound and laneUsed its
	// current admitted-but-not-started count. Admission is enforced by
	// the counter, not by channel capacity: a resize sizes the new
	// channels base depth + migrated backlog so migration can never be
	// refused, but laneUsed starts at the migrated count, so the
	// *admission* bound stays the configured depth across epochs.
	laneDepths []int
	laneUsed   []atomic.Int64

	mu     sync.Mutex
	closed bool
	// retired marks a shard swapped out of the placement table by a
	// resize: its keyed state has migrated (or is migrating) to the new
	// table. Writers and readers that catch the flag reload the table
	// and retry; only the executed/stolen counters stay meaningful.
	retired  bool
	byID     map[uint64]*Job
	retained []uint64 // submission order, for retention eviction
	inflight map[Key]*Job
	cache    *lru
	limit    int // retention bound for this shard

	// cacheIdx is the lock-free read side of the result cache: an atomic
	// pointer to an immutable snapshot of the LRU's contents, republished
	// by whoever mutates the cache under mu (republishReadIndex). Submit
	// and Batch.Submit serve cache hits from it without touching mu; a
	// hit races a concurrent insert/eviction/resize only by linearizing
	// before it, which is sound because cached results are immutable.
	// Nil when caching is disabled, after Close, and on retired shards.
	cacheIdx atomic.Pointer[map[Key]cached]

	pending  atomic.Int64 // jobs admitted here, not yet started
	executed atomic.Int64 // runs of jobs homed here (by any worker)
	stolen   atomic.Int64 // jobs this shard's workers took from other shards
}

// newShard builds one shard: depths are the per-class admission bounds,
// caps the per-class channel capacities (>= depths; nil means equal —
// only Resize passes larger caps, to hold a migrated backlog).
func newShard(idx int, depths, caps []int, cacheCap, retain int) *shard {
	s := &shard{
		idx:        idx,
		ring:       newSubmitRing(submitRingCap),
		runq:       make([]chan *Job, len(depths)),
		laneDepths: append([]int(nil), depths...),
		laneUsed:   make([]atomic.Int64, len(depths)),
		byID:       make(map[uint64]*Job),
		inflight:   make(map[Key]*Job),
		cache:      newLRU(cacheCap),
		limit:      retain,
	}
	if caps == nil {
		caps = depths
	}
	for c, cap := range caps {
		s.runq[c] = make(chan *Job, cap)
	}
	return s
}

// insertLocked registers the job for Get/Jobs and evicts over-retention
// terminal jobs; the caller holds s.mu.
func (s *shard) insertLocked(job *Job) {
	s.byID[job.ID] = job
	s.retained = append(s.retained, job.ID)
	s.trimRetention()
}

// ---- placement hashing ----

// hash is the shard-placement hash of a key: FNV-1a over every field, so
// placement is deterministic across queues and processes with the same
// shard count, and identical specs always meet on one shard.
func (k Key) hash() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	h.Write([]byte(k.Algorithm))
	h.Write([]byte{0})
	h.Write([]byte(k.Engine))
	h.Write([]byte{0})
	for _, v := range [...]uint64{uint64(int64(k.N)), uint64(int64(k.P)), k.Seed} {
		putUint64LE(&buf, v)
		h.Write(buf[:])
	}
	return h.Sum64()
}

func hashString(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}

func putUint64LE(buf *[8]byte, v uint64) {
	for i := 0; i < 8; i++ {
		buf[i] = byte(v >> (8 * i))
	}
}

// ---- the worker loop ----

// worker is the run loop of one pool worker, identified by its stable
// index into the pool. The worker's home shard is a function of the
// current placement table (workerHome: fair-share dealing, per-shard
// worker counts within one of each other); when a resize supersedes the
// table the worker re-homes against the new one and continues. Credits
// and rotation — the worker's DWRR fairness state — survive re-homing,
// so a resize does not reset the dequeue discipline mid-round.
func (q *Queue) worker(idx int) {
	defer q.workers.Done()
	ws := &workerState{wm: (*q.workerM.Load())[idx]}
	// Flush the completion buffer on the way out — registered after the
	// WaitGroup Done above so it runs first: Close's workers.Wait cannot
	// return while any worker still holds unpublished outcomes. The
	// runner lane closes with the worker: it is idle whenever the worker
	// is between jobs, so the close is never mid-run.
	defer func() {
		if ws.runner != nil {
			close(ws.runner)
		}
		if ws.deadline != nil {
			ws.deadline.Stop()
		}
	}()
	defer q.flushCompletions(ws)
	timer := time.NewTimer(stealPoll)
	defer timer.Stop()
	if q.deq != nil {
		// A non-default ordering policy replaces the whole native
		// discipline below with the policy-ordered sweep; the native path
		// runs untouched (and channel-blocking) when no policy is set.
		for {
			p := q.place.Load()
			if q.runEpochOrdered(p, idx, timer, ws) {
				return
			}
		}
	}
	credits := make([]int, len(q.classes.specs))
	rot := 0
	for {
		p := q.place.Load()
		if q.runEpoch(idx, p, credits, &rot, timer, ws) {
			return
		}
	}
}

// runEpoch runs the dequeue discipline against one placement table until
// the table is superseded by a resize (false: the caller re-homes) or the
// queue is closed and drained (true: the worker exits).
//
// Each probe of a class spans the whole table — the home shard's queue
// first, then every other shard's queue of the same class (a steal) — so
// class order is global, not per shard, and an idle shard's sweep for
// stealable work follows the same preference order its own dequeue
// discipline would serve next. The order itself:
//
//   - Strict classes (WeightStrict) are probed first, in set order, and
//     re-probed before every dequeue, so no weighted job starts anywhere
//     while a strict job waits anywhere — stolen work included: a thief
//     always takes a waiting strict job over any weighted one. With the
//     default class set this is exactly the original behavior:
//     interactive always before batch.
//   - Weighted classes share the remaining dequeues deficit-weighted
//     round-robin: each worker keeps a per-class credit balance,
//     replenished by Weight when every balance is spent; a dequeue costs
//     one credit, and a class found empty forfeits its remaining credits
//     for the round (work-conserving — an idle class never banks credit).
//     The steal sweep prefers the classes holding credit (the class the
//     thief is about to serve), falling back to the replenished scan
//     order on the second pass. Under sustained all-class load each round
//     starts Weight jobs per class, so class throughput is proportional
//     to weight and every weighted class keeps making progress.
//
// When nothing is runnable the worker blocks on the home lane of the
// highest-priority strict class (the set's first class when every class
// is weighted) plus the queue-wide kick (every enqueue, every class,
// publishes a kick), with a slow fallback poll; every other class rides
// the kick path rather than the blocking select so a wakeup always
// re-runs the full class discipline — a direct hand-off is only ever
// taken for the class nothing may outrank. Returns once the home lanes
// are closed and drained and a final sweep finds nothing: if the table
// is current that means shutdown; otherwise a resize closed the old
// lanes and the worker re-homes.
func (q *Queue) runEpoch(idx int, p *placement, credits []int, rot *int, timer *time.Timer, ws *workerState) bool {
	cs := &q.classes
	home := p.shards[workerHome(idx, len(p.shards), p.workers)]
	open := make([]bool, len(cs.specs)) // home lanes not yet closed
	for c := range open {
		open[c] = true
	}
	homeOpen := len(open)
	// blockClass is the one home lane the idle blocking select may
	// dequeue directly: the highest-priority strict class, whose direct
	// hand-off can never invert the dequeue discipline. Every other
	// class rides the kick, which re-runs the full discipline. An
	// all-weighted set blocks on its first class — credit-free, which
	// is sound because the select is only reached with every weighted
	// credit at zero (the DWRR passes forfeit on empty), so the hand-off
	// fires from a fully drained round.
	blockClass := 0
	if len(cs.strict) > 0 {
		blockClass = cs.strict[0]
	}

	// tryClass probes one class queue-wide: the home lane (non-blocking,
	// marking it on close), then the other shards' lanes.
	tryClass := func(c int) (*shard, *Job) {
		if open[c] {
			select {
			case job, ok := <-home.runq[c]:
				if !ok {
					open[c] = false
					homeOpen--
				} else {
					return home, job
				}
			default:
			}
		}
		return q.trySteal(p, home, c)
	}

	for {
		if q.place.Load() != p {
			return false // table superseded: re-home
		}
		// Ingest the home shard's ring backlog before each dequeue (a
		// lock-free emptiness probe when the batch path is idle), so
		// ring-published frames enter the class lanes in near-arrival
		// order relative to the locked submit path.
		q.drainRing(p, home)
		var owner *shard
		var job *Job
		for _, c := range cs.strict {
			if owner, job = tryClass(c); job != nil {
				break
			}
		}
		// Two DWRR passes: pass one may find only creditless backlogged
		// classes (credit-holders all empty, forfeiting to zero); the
		// second pass then replenishes and probes every weighted class,
		// so job == nil afterwards means all of them were truly empty.
		for pass := 0; pass < 2 && job == nil && len(cs.weighted) > 0; pass++ {
			spent := true
			for _, c := range cs.weighted {
				if credits[c] > 0 {
					spent = false
					break
				}
			}
			if spent {
				for _, c := range cs.weighted {
					credits[c] = cs.specs[c].Weight
				}
			}
			for i := 0; i < len(cs.weighted) && job == nil; i++ {
				w := (*rot + i) % len(cs.weighted)
				c := cs.weighted[w]
				if credits[c] <= 0 {
					continue
				}
				if owner, job = tryClass(c); job != nil {
					credits[c]--
					*rot = w // keep serving this class until its credit drains
					if credits[c] == 0 {
						*rot = (w + 1) % len(cs.weighted) // quantum spent: move on
					}
				} else {
					credits[c] = 0 // found empty: forfeit the round's remainder
				}
			}
		}
		if job != nil {
			// Chain the wakeup before going busy: this worker may hold
			// the only kick token while another shard's job (its own
			// kick dropped at capacity 1) waits for a sweep.
			q.kickWorkers()
			q.runJob(owner, home.idx, job, ws)
			continue
		}
		if homeOpen == 0 {
			// Home lanes closed, drained, and nothing left to steal. A
			// resize closes lanes only after publishing a new table, so
			// an unchanged table means shutdown.
			return q.place.Load() == p
		}
		// About to park: sweep every shard's ring, not just home's, so a
		// frame published to a shard whose own workers are all busy still
		// gets ingested promptly (the ring analogue of work stealing).
		swept := 0
		for _, s := range p.shards {
			swept += q.drainRing(p, s)
		}
		if swept > 0 {
			continue
		}
		// Parking with buffered completions would strand their waiters
		// until the next dequeue round; publish them first.
		q.flushCompletions(ws)
		var homeBlock chan *Job // nil (never ready) once closed
		if open[blockClass] {
			homeBlock = home.runq[blockClass]
		}
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		timer.Reset(stealPoll)
		select {
		case job, ok := <-homeBlock:
			if !ok {
				open[blockClass] = false
				homeOpen--
				continue
			}
			q.kickWorkers()
			q.runJob(home, home.idx, job, ws)
		case <-q.kick:
		case <-timer.C:
		}
	}
}

// trySteal sweeps the other shards' run queues of one class in rotor
// order from the thief's index and claims the first waiting job. Returns
// the shard the job was dequeued from so the run's execution accounting
// lands there.
func (q *Queue) trySteal(p *placement, thief *shard, class int) (*shard, *Job) {
	n := len(p.shards)
	for off := 1; off < n; off++ {
		t := p.shards[(thief.idx+off)%n]
		select {
		case job, ok := <-t.runq[class]:
			if ok {
				thief.stolen.Add(1)
				return t, job
			}
		default:
		}
	}
	return nil, nil
}

// ---- the ordered worker loop (non-default DequeuePolicy) ----

// runEpochOrdered is runEpoch's counterpart when a non-default
// DequeuePolicy is active: instead of per-class FIFO channels consumed
// in strict-then-DWRR order, every dequeue is a policy-ordered sweep of
// the whole table (pickOrdered). Strict classes keep their absolute,
// set-order priority; the policy orders jobs within each strict class
// and across the pooled weighted tier (DWRR weights are not honored by
// ordering policies — see DequeuePolicy). Returns true when the queue is
// shut down and drained, false when the table was superseded by a resize
// and the caller should re-home.
//
// Ordered workers never receive from a run-queue channel outside a
// shard's lock and never block on one: idle workers park on the
// queue-wide kick plus the fallback poll, and shutdown retires them via
// the shards' closed flags and a kick cascade (Close does not close the
// channels in this mode, so a sweep's putback can never hit a closed
// channel).
func (q *Queue) runEpochOrdered(p *placement, idx int, timer *time.Timer, ws *workerState) bool {
	home := p.shards[workerHome(idx, len(p.shards), p.workers)]
	for {
		if q.place.Load() != p {
			return false // table superseded: re-home
		}
		// Ring-published frames must enter the lanes before the ordered
		// sweep can rank them; sweep every shard (the pick below spans
		// the whole table anyway).
		for _, s := range p.shards {
			q.drainRing(p, s)
		}
		owner, job, homeClosed, valid := q.pickOrdered(p, home)
		if !valid {
			// A shard is mid-retirement; the new table is about to be
			// published (or already is — the loop head catches it).
			retryPlacement()
			continue
		}
		if job != nil {
			q.kickWorkers()
			q.runJob(owner, home.idx, job, ws)
			continue
		}
		if homeClosed {
			// Home is closed and a full sweep — every shard, every class,
			// under every shard lock — found nothing, so nothing admitted
			// before the closed flag remains. Chain the kick so the other
			// parked workers re-sweep and exit too.
			q.kickWorkers()
			return q.place.Load() == p
		}
		// About to park: publish buffered completions first (see runEpoch).
		q.flushCompletions(ws)
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		timer.Reset(stealPoll)
		select {
		case <-q.kick:
		case <-timer.C:
		}
	}
}

// pickOrdered selects the policy-best waiting job across the whole
// table. It locks every shard in index order (Submit and Resize each
// take one shard lock at a time, so the ascending multi-lock cannot
// deadlock) and, tier by tier, drains each lane, keeps the best job by
// q.deq.Before, and puts the rest back. The putback is safe because all
// senders and receivers of these channels run under the shard locks this
// sweep holds: the channel cannot be closed, filled, or reordered
// underneath it, and a putback lands behind the bounded drain window so
// it is never re-examined. valid is false when a shard was caught
// mid-retirement (back out, nothing touched on it); homeClosed reports
// the home shard's closed flag as observed under its lock.
func (q *Queue) pickOrdered(p *placement, home *shard) (owner *shard, job *Job, homeClosed, valid bool) {
	locked := 0
	for _, s := range p.shards {
		s.mu.Lock()
		locked++
		if s.retired {
			for _, t := range p.shards[:locked] {
				t.mu.Unlock()
			}
			return nil, nil, false, false
		}
	}
	defer func() {
		for _, s := range p.shards {
			s.mu.Unlock()
		}
	}()
	homeClosed = home.closed

	pick := func(classes []int) (*shard, *Job) {
		var bestS *shard
		var best *Job
		var bestView JobView
		for _, s := range p.shards {
			for _, c := range classes {
				n := len(s.runq[c])
				for i := 0; i < n; i++ {
					j := <-s.runq[c]
					if best == nil {
						best, bestS, bestView = j, s, q.policyView(j)
						continue
					}
					v := q.policyView(j)
					if q.deq.Before(&v, &bestView) {
						bestS.runq[best.class] <- best
						best, bestS, bestView = j, s, v
					} else {
						s.runq[c] <- j
					}
				}
			}
		}
		return bestS, best
	}

	cs := &q.classes
	for _, c := range cs.strict {
		if s, j := pick([]int{c}); j != nil {
			owner, job = s, j
			break
		}
	}
	if job == nil && len(cs.weighted) > 0 {
		owner, job = pick(cs.weighted)
	}
	if job != nil && owner != home {
		// Same accounting as trySteal: a job dequeued from another shard
		// counts as stolen by the worker's home.
		home.stolen.Add(1)
	}
	return owner, job, homeClosed, true
}

// ---- job execution ----

// runState carries one run's outcome from the runner goroutine back to
// the dequeuing worker: the runner computes res/err, records whether it
// won the job's terminal transition, and sends on done (buffered, one
// slot, exactly one receiver per run) — the writes happen-before the
// send, so the worker reads them race-free after receiving. The
// winner's outcome is then buffered on the worker's completion buffer
// rather than settled inline. Each worker reuses one runState across
// runs (ws.rs); only an abandoned run's state is dropped, because its
// done signal belongs to the background watcher.
type runState struct {
	done chan struct{}
	res  Result
	err  error
	won  bool
}

// runTask is one algorithm run handed to a worker's persistent runner
// lane: the job, the reply cell, and the run's start instant.
type runTask struct {
	job   *Job
	rs    *runState
	start time.Time
}

// inlineUnitWall is the per-unit wall-clock ceiling the inline gate
// prices predictions at: an order of magnitude above the slowest
// per-unit scale ever measured on the tracked engines (sim DP families
// run ~µs/unit), so a run the gate admits inline is pessimistically
// priced before the 10x margin is applied on top.
const inlineUnitWall = 10 * time.Microsecond

// runsInline reports whether a job is safe to execute on the dequeuing
// worker itself instead of the runner lane: the static cost model knows
// the spec, and even priced at inlineUnitWall with a further 10x margin
// the predicted run lands under its deadline. Such a run cannot
// plausibly need the abandonment machinery, so it skips the handoff,
// the deadline timer and the select entirely; the deadline is enforced
// after the fact instead. Func jobs and unknown specs always take the
// runner path, as does any job whose timeout is tight enough that
// abandonment is a live possibility.
func runsInline(job *Job, timeout time.Duration) bool {
	if job.fn != nil {
		return false
	}
	est := jobcost.Predict(job.Spec.Algorithm, job.Spec.Engine, job.Spec.N, job.Spec.key().P)
	if !est.Known {
		return false
	}
	// Float comparison: huge unit counts must not overflow the pricing
	// into a spuriously small Duration.
	return est.Units*float64(inlineUnitWall)*10 < float64(timeout)
}

// runnerLoop is a worker's persistent runner: it executes algorithm
// jobs handed over the lane one at a time, so the steady-state run
// path costs no goroutine spawn. The loop exits when the lane closes —
// at worker exit, or at detach when the worker abandons a
// deadline-blown run (the abandoned run finishes first; the worker
// opens a fresh lane for its next job).
func (q *Queue) runnerLoop(in chan runTask) {
	for t := range in {
		q.executeRun(t)
	}
}

// executeRun performs one algorithm run and signals the reply cell.
// The orphan count was taken by the dispatching worker; the deferred
// chain here mirrors the original per-job runner goroutine: release
// the pooled-frame touch, then signal done, then drop the orphan.
func (q *Queue) executeRun(t runTask) {
	defer q.orphans.Done()
	job, rs := t.job, t.rs
	defer func() { rs.done <- struct{}{} }()
	if job.pooled {
		defer job.touches.Add(-1)
	}
	o, err := core.RunAlgorithm(job.Spec.Algorithm, job.Spec.Engine, job.Spec.N, job.Spec.P, job.Spec.Seed)
	res := Result{Outcome: o}
	res.Wall = time.Since(t.start)
	rs.res, rs.err = res, err
	// Loses against the worker's deadline finish when the job was
	// abandoned; the computed result is dropped.
	rs.won = job.markFinished(res, err, time.Now())
}

// runJob executes one job under its deadline; owner is the shard the job
// was dequeued from and homeIdx the running worker's home shard (they
// differ when the job was stolen). The engine run itself is not
// preemptible (an activated job "remains active just like a standard
// thread"), so a blown deadline fails the job immediately; the worker
// then either abandons the run to finish in the background (its result
// dropped) if the orphan budget allows, or waits it out to bound total
// concurrency. The finished job's settle work is deferred to the
// worker's completion buffer (bufferCompletion/flushCompletions).
func (q *Queue) runJob(owner *shard, homeIdx int, job *Job, ws *workerState) {
	if job.fn != nil {
		// Publish buffered completions before running arbitrary code: a
		// func job may Submit a key whose unflushed winner sits in this
		// very buffer and Wait on it, which would deadlock — the terminal
		// job only signals at its owning flush.
		q.flushCompletions(ws)
	}
	q.pending.Add(-1)
	owner.pending.Add(-1)
	owner.laneUsed[job.class].Add(-1)
	owner.executed.Add(1)
	// Written before the runner goroutine exists and before any flush
	// can run; read only at the completion flush. A steal is a run by a
	// worker homed elsewhere: the origin is the shard it was dequeued
	// from.
	job.execShard = homeIdx
	if owner.idx != homeIdx {
		job.stealFrom = owner.idx
	}
	timeout := q.cfg.DefaultTimeout
	if job.Spec.Timeout > 0 {
		timeout = job.Spec.Timeout
	}
	inline := runsInline(job, timeout)

	if job.pooled {
		// Live references from here: this worker, plus the runner
		// goroutine below unless the run is inline. Each drops its count
		// after its last touch, so Batch.Release recycles the frame only
		// once neither an abandoned run nor a racing deadline loser can
		// still write to it.
		if inline {
			job.touches.Store(1)
		} else {
			job.touches.Store(2)
		}
		defer job.touches.Add(-1)
	}
	start := time.Now()
	if !job.markRunning(start) {
		return
	}
	q.running.Add(1)
	defer q.running.Add(-1)

	if inline {
		// The fast path: the run is predicted orders of magnitude under
		// its deadline, so the abandonment machinery cannot plausibly be
		// needed — execute on this worker with no handoff, no timer and
		// no select. The deadline still holds, enforced after the fact:
		// a mispredicted run that does blow it fails exactly like a
		// held-out deadline run whose orphan budget was exhausted (the
		// worker rode out the whole run either way).
		o, err := core.RunAlgorithm(job.Spec.Algorithm, job.Spec.Engine, job.Spec.N, job.Spec.P, job.Spec.Seed)
		res := Result{Outcome: o}
		res.Wall = time.Since(start)
		if res.Wall > timeout {
			terr := fmt.Errorf("jobqueue: job %s exceeded its %v deadline: %w", job.Name, timeout, context.DeadlineExceeded)
			if job.markFinished(Result{}, terr, time.Now()) {
				q.timeouts.Add(1)
				q.bufferCompletion(ws, job, Result{}, terr, res.Wall, start)
			}
			return
		}
		if job.markFinished(res, err, time.Now()) {
			q.bufferCompletion(ws, job, res, err, res.Wall, start)
		}
		return
	}

	rs := ws.rs
	if rs == nil {
		rs = &runState{done: make(chan struct{}, 1)}
	}
	ws.rs = nil // in flight; restored on every path where this worker receives done

	// Algorithm jobs never consume a context — the engines are not
	// preemptible — so they skip context.WithTimeout entirely: the
	// deadline is the worker's reusable timer, and the run itself goes
	// to the worker's persistent runner lane. Only func jobs, which do
	// take a cancellation context, pay for one (and for a one-shot
	// goroutine: a fn may block past its abandonment, and the lane must
	// stay free for cheap algorithm runs).
	var ctxDone <-chan struct{}
	var timerC <-chan time.Time
	q.orphans.Add(1)
	if job.fn != nil {
		ctx, cancel := context.WithTimeout(context.Background(), timeout)
		defer cancel()
		ctxDone = ctx.Done()
		go func() {
			defer q.orphans.Done()
			defer func() { rs.done <- struct{}{} }()
			if job.pooled {
				defer job.touches.Add(-1)
			}
			err := job.fn(ctx)
			res := Result{Wall: time.Since(start)}
			rs.res, rs.err = res, err
			// Loses against the worker's deadline finish when the job
			// was abandoned; the computed result is dropped.
			rs.won = job.markFinished(res, err, time.Now())
		}()
	} else {
		if ws.deadline == nil {
			ws.deadline = time.NewTimer(timeout)
		} else {
			ws.deadline.Reset(timeout)
		}
		timerC = ws.deadline.C
		if ws.runner == nil {
			// One slot so the dispatch never blocks (and never direct-
			// hands the P to the runner before this worker reaches its
			// deadline select); the protocol below keeps at most one
			// task in flight per lane.
			ws.runner = make(chan runTask, 1)
			go q.runnerLoop(ws.runner)
		}
		ws.runner <- runTask{job: job, rs: rs, start: start}
	}

	deadlined := false
	select {
	case <-rs.done:
	case <-ctxDone:
		deadlined = true
	case <-timerC:
		deadlined = true
	}
	if !deadlined {
		if timerC != nil {
			ws.deadline.Stop()
		}
		ws.rs = rs
		if rs.won {
			q.bufferCompletion(ws, job, rs.res, rs.err, rs.res.Wall, start)
		}
	} else {
		err := fmt.Errorf("jobqueue: job %s exceeded its %v deadline: %w", job.Name, timeout, context.DeadlineExceeded)
		if !job.markFinished(Result{}, err, time.Now()) {
			// The runner finished in the same instant and won; adopt its
			// outcome once rs.done publishes the fields.
			<-rs.done
			ws.rs = rs
			if rs.won {
				q.bufferCompletion(ws, job, rs.res, rs.err, rs.res.Wall, start)
			}
			return
		}
		q.timeouts.Add(1)
		q.bufferCompletion(ws, job, Result{}, err, time.Since(start), start)
		// The orphan budget: a worker may abandon a deadline-blown run
		// (leaving it to finish in the background) only while fewer than
		// 2× the current pool's runs are already abandoned, so hostile
		// timeout traffic cannot accumulate unbounded concurrent runs.
		// The abandoned gauge doubles as the budget counter — claimed by
		// CAS so a budget-exhausted worker never inflates the gauge even
		// transiently — and the limit reads the live table, so a pool
		// grown by Resize keeps its per-worker abandonment headroom.
		limit := int64(2 * q.place.Load().workers)
		abandoned := false
		for {
			cur := q.abandonedG.Load()
			if cur >= limit {
				break
			}
			if q.abandonedG.CompareAndSwap(cur, cur+1) {
				abandoned = true
				break
			}
		}
		if abandoned {
			// Budget claimed: abandon the run and free this worker. A
			// watcher returns the slot when the run drains; the runState
			// goes with it, and an abandoned algorithm run detaches the
			// runner lane too — its goroutine finishes the blown run and
			// exits, and the next dispatch opens a fresh lane.
			if job.fn == nil && ws.runner != nil {
				close(ws.runner)
				ws.runner = nil
			}
			q.orphans.Add(1)
			go func() {
				defer q.orphans.Done()
				<-rs.done
				q.abandonedG.Add(-1)
			}()
		} else {
			// Orphan budget exhausted: hold this worker until the run
			// completes so deadline abuse cannot stack up unbounded
			// concurrent runs. The wait can span the whole run; publish
			// the buffered completions (this timeout included) first so
			// their waiters are not held hostage to the abandoned run.
			q.flushCompletions(ws)
			<-rs.done
			ws.rs = rs
		}
	}
}
