package jobqueue

import (
	"context"
	"fmt"
	"hash/fnv"
	"sync"
	"sync/atomic"
	"time"

	"lopram/internal/core"
)

// stealPoll is the fallback interval at which an idle worker re-sweeps
// the other shards for stealable work. The enqueue-time kick is the fast
// wake path; the poll only covers kick loss under pathological timing,
// so it can be slow enough to cost nothing on an idle queue.
const stealPoll = 10 * time.Millisecond

// shard is one independent slice of the queue: its own run queues (one
// per priority class), worker pool, coalescing map, result cache, and
// metric rings. All mutable state is guarded by mu except the atomic
// gauges; nothing on a shard is touched by another shard's submissions,
// so contention is confined to the traffic hashed here.
type shard struct {
	idx int
	// runq holds the admitted-but-not-started jobs, one bounded FIFO per
	// priority class. Workers drain the interactive queue first.
	runq [numClasses]chan *Job

	mu        sync.Mutex
	closed    bool
	byID      map[uint64]*Job
	retained  []uint64 // submission order, for retention eviction
	inflight  map[Key]*Job
	cache     *lru
	limit     int                    // retention bound for this shard
	wall      sampleRing             // recent execution latencies (ms)
	wait      sampleRing             // recent queueing latencies (ms)
	classWall [numClasses]sampleRing // same, split by priority class
	classWait [numClasses]sampleRing
	perAlgo   map[string]*algoAggregate // keyed by algorithm (or func-job name)

	pending  atomic.Int64 // jobs admitted here, not yet started
	executed atomic.Int64 // runs of jobs homed here (by any worker)
	stolen   atomic.Int64 // jobs this shard's workers took from other shards
}

func newShard(idx, depth, batchDepth, cacheCap, retain int) *shard {
	s := &shard{
		idx:      idx,
		byID:     make(map[uint64]*Job),
		inflight: make(map[Key]*Job),
		cache:    newLRU(cacheCap),
		limit:    retain,
		perAlgo:  make(map[string]*algoAggregate),
	}
	s.runq[classInteractive] = make(chan *Job, depth)
	s.runq[classBatch] = make(chan *Job, batchDepth)
	return s
}

// insertLocked registers the job for Get/Jobs and evicts over-retention
// terminal jobs; the caller holds s.mu.
func (s *shard) insertLocked(job *Job) {
	s.byID[job.ID] = job
	s.retained = append(s.retained, job.ID)
	for len(s.retained) > s.limit {
		id := s.retained[0]
		old := s.byID[id]
		if old != nil {
			if st := old.Status(); st != StatusDone && st != StatusFailed {
				break // oldest job still in flight; retention resumes later
			}
			delete(s.byID, id)
		}
		s.retained = s.retained[1:]
	}
}

// ---- placement hashing ----

// hash is the shard-placement hash of a key: FNV-1a over every field, so
// placement is deterministic across queues and processes with the same
// shard count, and identical specs always meet on one shard.
func (k Key) hash() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	h.Write([]byte(k.Algorithm))
	h.Write([]byte{0})
	h.Write([]byte(k.Engine))
	h.Write([]byte{0})
	for _, v := range [...]uint64{uint64(int64(k.N)), uint64(int64(k.P)), k.Seed} {
		putUint64LE(&buf, v)
		h.Write(buf[:])
	}
	return h.Sum64()
}

func hashString(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}

func putUint64LE(buf *[8]byte, v uint64) {
	for i := 0; i < 8; i++ {
		buf[i] = byte(v >> (8 * i))
	}
}

// ---- the worker loop ----

// worker is the run loop of one pool worker homed on shard s. Dequeue
// order is strict class priority across the whole queue: the home
// shard's interactive queue, every other shard's interactive queue (a
// steal), then and only then the batch queues in the same home-first
// order — so no batch job starts anywhere while an interactive job
// waits anywhere. When nothing is runnable the worker blocks on its
// home interactive queue plus the queue-wide kick (every enqueue, batch
// included, publishes a kick), with a slow fallback poll; batch pickup
// rides the kick path rather than the blocking select so a wakeup
// always re-checks interactive work first. Exits once the home queues
// are closed and drained and a final sweep finds nothing.
func (q *Queue) worker(home *shard) {
	defer q.workers.Done()
	hi, lo := home.runq[classInteractive], home.runq[classBatch]
	timer := time.NewTimer(stealPoll)
	defer timer.Stop()
	for {
		if hi != nil {
			select {
			case job, ok := <-hi:
				if !ok {
					hi = nil
					continue
				}
				// Chain the wakeup before going busy: this worker may
				// hold the only kick token while another shard's job
				// (its own kick dropped at capacity 1) waits for a
				// sweep.
				q.kickWorkers()
				q.runJob(home, job)
				continue
			default:
			}
		}
		if owner, job := q.trySteal(home, classInteractive); job != nil {
			// Chain the wakeup: if more work is stealable, another idle
			// worker should find it while this one is busy running.
			q.kickWorkers()
			q.runJob(owner, job)
			continue
		}
		if lo != nil {
			select {
			case job, ok := <-lo:
				if !ok {
					lo = nil
					continue
				}
				q.kickWorkers()
				q.runJob(home, job)
				continue
			default:
			}
		}
		if owner, job := q.trySteal(home, classBatch); job != nil {
			q.kickWorkers()
			q.runJob(owner, job)
			continue
		}
		if hi == nil && lo == nil {
			// Closed, drained, and nothing left to steal.
			return
		}
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		timer.Reset(stealPoll)
		select {
		case job, ok := <-hi:
			if !ok {
				hi = nil
				continue
			}
			q.kickWorkers()
			q.runJob(home, job)
		case <-q.kick:
		case <-timer.C:
		}
	}
}

// trySteal sweeps the other shards' run queues of one class in rotor
// order from the thief's index and claims the first waiting job. Returns
// the job's home shard so settle updates the right cache and rings.
func (q *Queue) trySteal(thief *shard, class int) (*shard, *Job) {
	n := len(q.shards)
	for off := 1; off < n; off++ {
		t := q.shards[(thief.idx+off)%n]
		select {
		case job, ok := <-t.runq[class]:
			if ok {
				thief.stolen.Add(1)
				return t, job
			}
		default:
		}
	}
	return nil, nil
}

// ---- job execution ----

// runJob executes one job under its deadline; owner is the job's home
// shard (not necessarily the running worker's). The engine run itself is
// not preemptible (an activated job "remains active just like a standard
// thread"), so a blown deadline fails the job immediately; the worker
// then either abandons the run to finish in the background (its result
// dropped) if the orphan budget allows, or waits it out to bound total
// concurrency.
func (q *Queue) runJob(owner *shard, job *Job) {
	q.pending.Add(-1)
	owner.pending.Add(-1)
	owner.executed.Add(1)
	start := time.Now()
	if !job.markRunning(start) {
		return
	}
	q.running.Add(1)
	defer q.running.Add(-1)

	timeout := q.cfg.DefaultTimeout
	if job.Spec.Timeout > 0 {
		timeout = job.Spec.Timeout
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()

	runnerDone := make(chan struct{})
	q.orphans.Add(1)
	go func() {
		defer q.orphans.Done()
		defer close(runnerDone)
		var res Result
		var err error
		if job.fn != nil {
			err = job.fn(ctx)
		} else {
			var o core.Outcome
			o, err = core.RunAlgorithm(job.Spec.Algorithm, job.Spec.Engine, job.Spec.N, job.Spec.P, job.Spec.Seed)
			res = Result{Outcome: o}
		}
		res.Wall = time.Since(start)
		// Loses against the worker's deadline finish when the job was
		// abandoned; the computed result is dropped.
		if job.markFinished(res, err, time.Now()) {
			q.settle(owner, job, res, err, start)
			job.signalDone()
		}
	}()

	select {
	case <-runnerDone:
	case <-ctx.Done():
		err := fmt.Errorf("jobqueue: job %s exceeded its %v deadline: %w", job.Name, timeout, context.DeadlineExceeded)
		if !job.markFinished(Result{}, err, time.Now()) {
			// The runner finished in the same instant and won.
			return
		}
		q.timeouts.Add(1)
		q.settle(owner, job, Result{}, err, start)
		job.signalDone()
		select {
		case q.detach <- struct{}{}:
			// Budget available: abandon the run and free this worker. A
			// watcher returns the slot when the run drains.
			q.abandonedG.Add(1)
			q.orphans.Add(1)
			go func() {
				defer q.orphans.Done()
				<-runnerDone
				<-q.detach
				q.abandonedG.Add(-1)
			}()
		default:
			// Orphan budget exhausted: hold this worker until the run
			// completes so deadline abuse cannot stack up unbounded
			// concurrent runs.
			<-runnerDone
		}
	}
}

// settle updates cache, inflight tracking and aggregates on the job's
// home shard after it reaches a terminal state.
func (q *Queue) settle(owner *shard, job *Job, res Result, err error, start time.Time) {
	wall := time.Since(start)
	owner.mu.Lock()
	if job.fn == nil {
		key := job.Spec.key()
		if owner.inflight[key] == job {
			delete(owner.inflight, key)
		}
		if err == nil {
			owner.cache.put(key, res)
		}
	}
	owner.mu.Unlock()
	if err != nil {
		q.failed.Add(1)
		q.perClass[job.class].failed.Add(1)
	} else {
		q.completed.Add(1)
		q.perClass[job.class].completed.Add(1)
	}
	q.recordDone(owner, job, wall, err != nil)
}

// recordDone folds one terminal job into its home shard's latency rings
// (whole-shard and per-class) and per-algorithm aggregates.
func (q *Queue) recordDone(owner *shard, job *Job, wall time.Duration, failed bool) {
	name := job.Spec.Algorithm
	if name == "" {
		name = job.Name
	}
	wallMS := float64(wall) / float64(time.Millisecond)
	waitMS := 0.0
	job.mu.Lock()
	if !job.started.IsZero() {
		waitMS = float64(job.started.Sub(job.submitted)) / float64(time.Millisecond)
	}
	job.mu.Unlock()

	owner.mu.Lock()
	defer owner.mu.Unlock()
	owner.wall.add(wallMS)
	owner.wait.add(waitMS)
	owner.classWall[job.class].add(wallMS)
	owner.classWait[job.class].add(waitMS)
	agg := owner.perAlgo[name]
	if agg == nil {
		agg = &algoAggregate{}
		owner.perAlgo[name] = agg
	}
	agg.count++
	if failed {
		agg.failed++
	}
	agg.totalWallMS += wallMS
}
