package jobqueue

import (
	"context"
	"fmt"
	"hash/fnv"
	"sync"
	"sync/atomic"
	"time"

	"lopram/internal/core"
)

// stealPoll is the fallback interval at which an idle worker re-sweeps
// the other shards for stealable work. The enqueue-time kick is the fast
// wake path; the poll only covers kick loss under pathological timing,
// so it can be slow enough to cost nothing on an idle queue.
const stealPoll = 10 * time.Millisecond

// shard is one independent slice of the queue: its own run queues (one
// per priority class), worker pool, coalescing map, result cache, and
// metric rings. All mutable state is guarded by mu except the atomic
// gauges; nothing on a shard is touched by another shard's submissions,
// so contention is confined to the traffic hashed here.
type shard struct {
	idx int
	// runq holds the admitted-but-not-started jobs, one bounded FIFO per
	// priority class, indexed by class-set position. Workers drain
	// strict classes first, then the weighted classes round-robin.
	runq []chan *Job

	mu        sync.Mutex
	closed    bool
	byID      map[uint64]*Job
	retained  []uint64 // submission order, for retention eviction
	inflight  map[Key]*Job
	cache     *lru
	limit     int          // retention bound for this shard
	wall      sampleRing   // recent execution latencies (ms)
	wait      sampleRing   // recent queueing latencies (ms)
	classWall []sampleRing // same, split by priority class (set order)
	classWait []sampleRing
	perAlgo   map[string]*algoAggregate // keyed by algorithm (or func-job name)

	pending  atomic.Int64 // jobs admitted here, not yet started
	executed atomic.Int64 // runs of jobs homed here (by any worker)
	stolen   atomic.Int64 // jobs this shard's workers took from other shards
}

func newShard(idx int, depths []int, cacheCap, retain int) *shard {
	s := &shard{
		idx:       idx,
		runq:      make([]chan *Job, len(depths)),
		byID:      make(map[uint64]*Job),
		inflight:  make(map[Key]*Job),
		cache:     newLRU(cacheCap),
		limit:     retain,
		classWall: make([]sampleRing, len(depths)),
		classWait: make([]sampleRing, len(depths)),
		perAlgo:   make(map[string]*algoAggregate),
	}
	for c, depth := range depths {
		s.runq[c] = make(chan *Job, depth)
	}
	return s
}

// insertLocked registers the job for Get/Jobs and evicts over-retention
// terminal jobs; the caller holds s.mu.
func (s *shard) insertLocked(job *Job) {
	s.byID[job.ID] = job
	s.retained = append(s.retained, job.ID)
	for len(s.retained) > s.limit {
		id := s.retained[0]
		old := s.byID[id]
		if old != nil {
			if st := old.Status(); st != StatusDone && st != StatusFailed {
				break // oldest job still in flight; retention resumes later
			}
			delete(s.byID, id)
		}
		s.retained = s.retained[1:]
	}
}

// ---- placement hashing ----

// hash is the shard-placement hash of a key: FNV-1a over every field, so
// placement is deterministic across queues and processes with the same
// shard count, and identical specs always meet on one shard.
func (k Key) hash() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	h.Write([]byte(k.Algorithm))
	h.Write([]byte{0})
	h.Write([]byte(k.Engine))
	h.Write([]byte{0})
	for _, v := range [...]uint64{uint64(int64(k.N)), uint64(int64(k.P)), k.Seed} {
		putUint64LE(&buf, v)
		h.Write(buf[:])
	}
	return h.Sum64()
}

func hashString(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}

func putUint64LE(buf *[8]byte, v uint64) {
	for i := 0; i < 8; i++ {
		buf[i] = byte(v >> (8 * i))
	}
}

// ---- the worker loop ----

// worker is the run loop of one pool worker homed on shard home. Each
// probe of a class spans the whole queue — the home shard's queue first,
// then every other shard's queue of the same class (a steal) — so class
// order is global, not per shard. The order itself is the class set's
// dequeue discipline:
//
//   - Strict classes (WeightStrict) are probed first, in set order, and
//     re-probed before every dequeue, so no weighted job starts anywhere
//     while a strict job waits anywhere. With the default class set this
//     is exactly the original behavior: interactive always before batch.
//   - Weighted classes share the remaining dequeues deficit-weighted
//     round-robin: each worker keeps a per-class credit balance,
//     replenished by Weight when every balance is spent; a dequeue costs
//     one credit, and a class found empty forfeits its remaining credits
//     for the round (work-conserving — an idle class never banks credit).
//     Under sustained all-class load each round starts Weight jobs per
//     class, so class throughput is proportional to weight and every
//     weighted class keeps making progress.
//
// When nothing is runnable the worker blocks on the home lane of the
// highest-priority strict class (the set's first class when every class
// is weighted) plus the queue-wide kick (every enqueue, every class,
// publishes a kick), with a slow fallback poll; every other class rides
// the kick path rather than the blocking select so a wakeup always
// re-runs the full class discipline — a direct hand-off is only ever
// taken for the class nothing may outrank. Exits once the home queues
// are closed and drained and a final sweep finds nothing.
func (q *Queue) worker(home *shard) {
	defer q.workers.Done()
	cs := &q.classes
	open := make([]bool, len(cs.specs)) // home lanes not yet closed
	for c := range open {
		open[c] = true
	}
	homeOpen := len(open)
	credits := make([]int, len(cs.specs))
	rot := 0 // rotation offset into cs.weighted: the class being served
	// blockClass is the one home lane the idle blocking select may
	// dequeue directly: the highest-priority strict class, whose direct
	// hand-off can never invert the dequeue discipline. Every other
	// class rides the kick, which re-runs the full discipline. An
	// all-weighted set blocks on its first class — credit-free, which
	// is sound because the select is only reached with every weighted
	// credit at zero (the DWRR passes forfeit on empty), so the hand-off
	// fires from a fully drained round.
	blockClass := 0
	if len(cs.strict) > 0 {
		blockClass = cs.strict[0]
	}
	timer := time.NewTimer(stealPoll)
	defer timer.Stop()

	// tryClass probes one class queue-wide: the home lane (non-blocking,
	// marking it on close), then the other shards' lanes.
	tryClass := func(c int) (*shard, *Job) {
		if open[c] {
			select {
			case job, ok := <-home.runq[c]:
				if !ok {
					open[c] = false
					homeOpen--
				} else {
					return home, job
				}
			default:
			}
		}
		return q.trySteal(home, c)
	}

	for {
		var owner *shard
		var job *Job
		for _, c := range cs.strict {
			if owner, job = tryClass(c); job != nil {
				break
			}
		}
		// Two DWRR passes: pass one may find only creditless backlogged
		// classes (credit-holders all empty, forfeiting to zero); the
		// second pass then replenishes and probes every weighted class,
		// so job == nil afterwards means all of them were truly empty.
		for pass := 0; pass < 2 && job == nil && len(cs.weighted) > 0; pass++ {
			spent := true
			for _, c := range cs.weighted {
				if credits[c] > 0 {
					spent = false
					break
				}
			}
			if spent {
				for _, c := range cs.weighted {
					credits[c] = cs.specs[c].Weight
				}
			}
			for i := 0; i < len(cs.weighted) && job == nil; i++ {
				w := (rot + i) % len(cs.weighted)
				c := cs.weighted[w]
				if credits[c] <= 0 {
					continue
				}
				if owner, job = tryClass(c); job != nil {
					credits[c]--
					rot = w // keep serving this class until its credit drains
					if credits[c] == 0 {
						rot = (w + 1) % len(cs.weighted) // quantum spent: move on
					}
				} else {
					credits[c] = 0 // found empty: forfeit the round's remainder
				}
			}
		}
		if job != nil {
			// Chain the wakeup before going busy: this worker may hold
			// the only kick token while another shard's job (its own
			// kick dropped at capacity 1) waits for a sweep.
			q.kickWorkers()
			q.runJob(owner, job)
			continue
		}
		if homeOpen == 0 {
			// Closed, drained, and nothing left to steal.
			return
		}
		var homeBlock chan *Job // nil (never ready) once closed
		if open[blockClass] {
			homeBlock = home.runq[blockClass]
		}
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		timer.Reset(stealPoll)
		select {
		case job, ok := <-homeBlock:
			if !ok {
				open[blockClass] = false
				homeOpen--
				continue
			}
			q.kickWorkers()
			q.runJob(home, job)
		case <-q.kick:
		case <-timer.C:
		}
	}
}

// trySteal sweeps the other shards' run queues of one class in rotor
// order from the thief's index and claims the first waiting job. Returns
// the job's home shard so settle updates the right cache and rings.
func (q *Queue) trySteal(thief *shard, class int) (*shard, *Job) {
	n := len(q.shards)
	for off := 1; off < n; off++ {
		t := q.shards[(thief.idx+off)%n]
		select {
		case job, ok := <-t.runq[class]:
			if ok {
				thief.stolen.Add(1)
				return t, job
			}
		default:
		}
	}
	return nil, nil
}

// ---- job execution ----

// runJob executes one job under its deadline; owner is the job's home
// shard (not necessarily the running worker's). The engine run itself is
// not preemptible (an activated job "remains active just like a standard
// thread"), so a blown deadline fails the job immediately; the worker
// then either abandons the run to finish in the background (its result
// dropped) if the orphan budget allows, or waits it out to bound total
// concurrency.
func (q *Queue) runJob(owner *shard, job *Job) {
	q.pending.Add(-1)
	owner.pending.Add(-1)
	owner.executed.Add(1)
	start := time.Now()
	if !job.markRunning(start) {
		return
	}
	q.running.Add(1)
	defer q.running.Add(-1)

	timeout := q.cfg.DefaultTimeout
	if job.Spec.Timeout > 0 {
		timeout = job.Spec.Timeout
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()

	runnerDone := make(chan struct{})
	q.orphans.Add(1)
	go func() {
		defer q.orphans.Done()
		defer close(runnerDone)
		var res Result
		var err error
		if job.fn != nil {
			err = job.fn(ctx)
		} else {
			var o core.Outcome
			o, err = core.RunAlgorithm(job.Spec.Algorithm, job.Spec.Engine, job.Spec.N, job.Spec.P, job.Spec.Seed)
			res = Result{Outcome: o}
		}
		res.Wall = time.Since(start)
		// Loses against the worker's deadline finish when the job was
		// abandoned; the computed result is dropped.
		if job.markFinished(res, err, time.Now()) {
			q.settle(owner, job, res, err, start)
			job.signalDone()
		}
	}()

	select {
	case <-runnerDone:
	case <-ctx.Done():
		err := fmt.Errorf("jobqueue: job %s exceeded its %v deadline: %w", job.Name, timeout, context.DeadlineExceeded)
		if !job.markFinished(Result{}, err, time.Now()) {
			// The runner finished in the same instant and won.
			return
		}
		q.timeouts.Add(1)
		q.settle(owner, job, Result{}, err, start)
		job.signalDone()
		select {
		case q.detach <- struct{}{}:
			// Budget available: abandon the run and free this worker. A
			// watcher returns the slot when the run drains.
			q.abandonedG.Add(1)
			q.orphans.Add(1)
			go func() {
				defer q.orphans.Done()
				<-runnerDone
				<-q.detach
				q.abandonedG.Add(-1)
			}()
		default:
			// Orphan budget exhausted: hold this worker until the run
			// completes so deadline abuse cannot stack up unbounded
			// concurrent runs.
			<-runnerDone
		}
	}
}

// settle updates cache, inflight tracking and aggregates on the job's
// home shard after it reaches a terminal state.
func (q *Queue) settle(owner *shard, job *Job, res Result, err error, start time.Time) {
	wall := time.Since(start)
	owner.mu.Lock()
	if job.fn == nil {
		key := job.Spec.key()
		if owner.inflight[key] == job {
			delete(owner.inflight, key)
		}
		if err == nil {
			owner.cache.put(key, res)
		}
	}
	owner.mu.Unlock()
	if err != nil {
		q.failed.Add(1)
		q.perClass[job.class].failed.Add(1)
	} else {
		q.completed.Add(1)
		q.perClass[job.class].completed.Add(1)
	}
	q.recordDone(owner, job, wall, err != nil)
}

// recordDone folds one terminal job into its home shard's latency rings
// (whole-shard and per-class) and per-algorithm aggregates.
func (q *Queue) recordDone(owner *shard, job *Job, wall time.Duration, failed bool) {
	name := job.Spec.Algorithm
	if name == "" {
		name = job.Name
	}
	wallMS := float64(wall) / float64(time.Millisecond)
	waitMS := 0.0
	job.mu.Lock()
	if !job.started.IsZero() {
		waitMS = float64(job.started.Sub(job.submitted)) / float64(time.Millisecond)
	}
	job.mu.Unlock()

	owner.mu.Lock()
	defer owner.mu.Unlock()
	owner.wall.add(wallMS)
	owner.wait.add(waitMS)
	owner.classWall[job.class].add(wallMS)
	owner.classWait[job.class].add(waitMS)
	agg := owner.perAlgo[name]
	if agg == nil {
		agg = &algoAggregate{}
		owner.perAlgo[name] = agg
	}
	agg.count++
	if failed {
		agg.failed++
	}
	agg.totalWallMS += wallMS
}
