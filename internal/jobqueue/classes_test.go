package jobqueue

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"testing"
	"time"

	"lopram/internal/core"
)

func TestClassSetValidate(t *testing.T) {
	tooMany := make(ClassSet, MaxClasses+1)
	for i := range tooMany {
		tooMany[i] = ClassSpec{Name: Class(fmt.Sprintf("c%d", i)), Weight: 1}
	}
	cases := []struct {
		set  ClassSet
		want string
	}{
		{ClassSet{}, "empty"},
		{tooMany, "exceeds the limit"},
		{ClassSet{{Name: "", Weight: 1}}, "no name"},
		{ClassSet{{Name: "a:b", Weight: 1}}, "separator"},
		{ClassSet{{Name: "a", Weight: 1}, {Name: "a", Weight: 2}}, "duplicate"},
		{ClassSet{{Name: "a", Weight: -1}}, "negative weight"},
		{ClassSet{{Name: "a", Weight: 1, Quota: 1.5}}, "quota"},
	}
	for _, c := range cases {
		err := c.set.Validate()
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("Validate(%v) = %v, want error containing %q", c.set, err, c.want)
		}
	}
	if err := DefaultClasses(0.5).Validate(); err != nil {
		t.Errorf("default class set invalid: %v", err)
	}
}

func TestParseClassSet(t *testing.T) {
	cs, err := ParseClassSet("gold:strict, silver:2:0.5 ,bronze:1")
	if err != nil {
		t.Fatal(err)
	}
	want := ClassSet{
		{Name: "gold", Weight: WeightStrict},
		{Name: "silver", Weight: 2, Quota: 0.5},
		{Name: "bronze", Weight: 1},
	}
	if len(cs) != len(want) {
		t.Fatalf("parsed %d classes, want %d", len(cs), len(want))
	}
	for i := range want {
		if cs[i] != want[i] {
			t.Errorf("class %d = %+v, want %+v", i, cs[i], want[i])
		}
	}
	for _, bad := range []string{
		"", "gold", "gold:fast", "gold:-2", "gold:1:2.5", "gold:1:x", "gold:1:1:1",
		"gold:1,gold:2", "a b:1",
		// An explicit quota must honor the documented (0, 1] contract —
		// 0 must not silently resolve to a full-depth lane.
		"gold:1:0", "gold:1:-0.5",
	} {
		if _, err := ParseClassSet(bad); err == nil {
			t.Errorf("ParseClassSet(%q) accepted, want error", bad)
		}
	}
	// The flag syntax round-trips through String.
	if rt, err := ParseClassSet(cs.String()); err != nil {
		t.Errorf("round-trip parse of %q: %v", cs.String(), err)
	} else if len(rt) != len(cs) {
		t.Errorf("round-trip lost classes: %q", cs.String())
	}
}

// TestDefaultClassSetBackCompat: an empty Config.Classes resolves to the
// original two-class discipline — strict interactive over weight-1 batch
// with the BatchShare admission quota.
func TestDefaultClassSetBackCompat(t *testing.T) {
	q := New(Config{Workers: 1, BatchShare: 0.25})
	defer q.Close()
	cs := q.Classes()
	want := ClassSet{
		{Name: ClassInteractive, Weight: WeightStrict, Quota: 1},
		{Name: ClassBatch, Weight: 1, Quota: 0.25},
	}
	if len(cs) != 2 || cs[0] != want[0] || cs[1] != want[1] {
		t.Fatalf("default class set = %+v, want %+v", cs, want)
	}
	m := q.Snapshot()
	if len(m.Classes) != 2 || m.Classes[0].Name != ClassInteractive {
		t.Errorf("Metrics.Classes = %+v, want the default set", m.Classes)
	}
}

// TestUnknownClassRejected is the submit-time regression test: an unknown
// Priority is refused with ErrUnknownClass and an error that lists the
// valid class names, never silently mapped.
func TestUnknownClassRejected(t *testing.T) {
	q := New(Config{Workers: 1})
	defer q.Close()
	_, err := q.Submit(Spec{Algorithm: "reduce", N: 64, P: 2, Engine: "sim", Seed: 1,
		Priority: "carrier-pigeon"})
	if !errors.Is(err, ErrUnknownClass) {
		t.Fatalf("err = %v, want ErrUnknownClass", err)
	}
	for _, wantSub := range []string{"carrier-pigeon", "valid classes", "interactive", "batch"} {
		if !strings.Contains(err.Error(), wantSub) {
			t.Errorf("error %q does not mention %q", err, wantSub)
		}
	}
	if got := q.Snapshot().Rejected; got != 1 {
		t.Errorf("rejected = %d, want 1", got)
	}

	// Same contract on a custom set: the old class names are no longer
	// valid and the error names the configured ones.
	qc := New(Config{Workers: 1, Classes: ClassSet{{Name: "gold", Weight: 1}, {Name: "bronze", Weight: 1}}})
	defer qc.Close()
	_, err = qc.Submit(Spec{Algorithm: "reduce", N: 64, P: 2, Engine: "sim", Seed: 1,
		Priority: ClassBatch})
	if !errors.Is(err, ErrUnknownClass) || !strings.Contains(err.Error(), "gold, bronze") {
		t.Errorf("custom-set err = %v, want ErrUnknownClass listing gold, bronze", err)
	}
}

// TestNewPanicsOnInvalidClassSet: an invalid programmatic class set is a
// configuration bug and fails fast.
func TestNewPanicsOnInvalidClassSet(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New accepted a class set with a duplicate name")
		}
	}()
	New(Config{Classes: ClassSet{{Name: "a", Weight: 1}, {Name: "a", Weight: 1}}})
}

// blockWorkers occupies every worker of q with held func jobs so
// admitted jobs stay queued, and returns the release function.
func blockWorkers(t *testing.T, q *Queue, workers int) func() {
	t.Helper()
	release := make(chan struct{})
	for i := 0; i < workers; i++ {
		if _, err := q.SubmitFunc(fmt.Sprintf("blocker-%d", i), func(context.Context) error {
			<-release
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for q.Snapshot().Running < int64(workers) {
		if time.Now().After(deadline) {
			t.Fatal("workers never started the blockers")
		}
		time.Sleep(time.Millisecond)
	}
	return func() { close(release) }
}

// TestThreeClassQuotaAdmission: each class of a 3-class set is admitted
// only into its own Quota×depth lane, and rejections are accounted per
// class by name.
func TestThreeClassQuotaAdmission(t *testing.T) {
	q := New(Config{Workers: 1, Shards: 1, QueueDepth: 8, CacheSize: -1, Classes: ClassSet{
		{Name: "gold", Weight: WeightStrict, Quota: 1},
		{Name: "silver", Weight: 2, Quota: 0.5},
		{Name: "bronze", Weight: 1, Quota: 0.25},
	}})
	defer q.Close()
	release := blockWorkers(t, q, 1)
	defer release()

	seed := uint64(0)
	submit := func(class Class) error {
		seed++
		_, err := q.Submit(Spec{Algorithm: "reduce", N: 64, P: 2, Engine: "sim", Seed: seed, Priority: class})
		return err
	}
	// Lanes: gold 8, silver 4, bronze 2 slots.
	for _, c := range []struct {
		name Class
		lane int
	}{{"bronze", 2}, {"silver", 4}, {"gold", 8}} {
		for i := 0; i < c.lane; i++ {
			if err := submit(c.name); err != nil {
				t.Fatalf("%s %d/%d: %v", c.name, i+1, c.lane, err)
			}
		}
		if err := submit(c.name); !errors.Is(err, ErrQueueFull) {
			t.Fatalf("%s overflow: err = %v, want ErrQueueFull", c.name, err)
		}
	}
	m := q.Snapshot()
	for _, name := range []Class{"gold", "silver", "bronze"} {
		if got := m.PerClass[name].Rejected; got != 1 {
			t.Errorf("%s rejected = %d, want 1", name, got)
		}
	}
	if got := m.PerClass["silver"].Submitted; got != 4 {
		t.Errorf("silver submitted = %d, want 4", got)
	}
}

// startedOrder waits for the jobs and returns their classes in execution
// (start-time) order.
func startedOrder(t *testing.T, jobs []*Job) []Class {
	t.Helper()
	type rec struct {
		class   Class
		started time.Time
	}
	recs := make([]rec, 0, len(jobs))
	for _, j := range jobs {
		if _, err := j.Wait(context.Background()); err != nil {
			t.Fatalf("%s: %v", j.Name, err)
		}
		j.mu.Lock()
		recs = append(recs, rec{j.Spec.Priority, j.started})
		j.mu.Unlock()
	}
	sort.Slice(recs, func(i, j int) bool { return recs[i].started.Before(recs[j].started) })
	out := make([]Class, len(recs))
	for i, r := range recs {
		out[i] = r.class
	}
	return out
}

// TestThreeClassDequeueOrder: with one worker and a pre-loaded backlog, a
// strict class drains completely before any weighted class starts, and
// the weighted classes interleave in weight proportion.
func TestThreeClassDequeueOrder(t *testing.T) {
	q := New(Config{Workers: 1, Shards: 1, QueueDepth: 64, CacheSize: -1, Classes: ClassSet{
		{Name: "gold", Weight: WeightStrict},
		{Name: "silver", Weight: 2},
		{Name: "bronze", Weight: 1},
	}})
	defer q.Close()
	release := blockWorkers(t, q, 1)

	var jobs []*Job
	seed := uint64(0)
	enqueue := func(class Class, n int) {
		for i := 0; i < n; i++ {
			seed++
			j, err := q.Submit(Spec{Algorithm: "reduce", N: 64, P: 2, Engine: "sim", Seed: seed, Priority: class})
			if err != nil {
				t.Fatalf("%s: %v", class, err)
			}
			jobs = append(jobs, j)
		}
	}
	// Worst-case submission order: the strict class arrives last.
	enqueue("bronze", 3)
	enqueue("silver", 6)
	enqueue("gold", 4)
	release()

	order := startedOrder(t, jobs)
	for i, c := range order[:4] {
		if c != "gold" {
			t.Fatalf("start %d is %s, want all gold first (order %v)", i, c, order)
		}
	}
	// The weighted tail drains silver:bronze at 2:1 per round.
	want := []Class{"silver", "silver", "bronze", "silver", "silver", "bronze", "silver", "silver", "bronze"}
	for i, c := range order[4:] {
		if c != want[i] {
			t.Fatalf("weighted start %d is %s, want %s (order %v)", i, c, want[i], order)
		}
	}
}

// TestWeightedFairnessUnderSaturation is the starvation-bound test: under
// a saturating backlog of a weight-4 class, a weight-1 class still starts
// jobs at ~1/5 of the dequeue rate — proportional to its weight, never
// starved.
func TestWeightedFairnessUnderSaturation(t *testing.T) {
	q := New(Config{Workers: 1, Shards: 1, QueueDepth: 128, CacheSize: -1, Classes: ClassSet{
		{Name: "hi", Weight: 4},
		{Name: "lo", Weight: 1},
	}})
	defer q.Close()
	release := blockWorkers(t, q, 1)

	var jobs []*Job
	seed := uint64(0)
	for i := 0; i < 50; i++ {
		class := Class("hi")
		if i >= 40 {
			class = "lo"
		}
		seed++
		j, err := q.Submit(Spec{Algorithm: "reduce", N: 64, P: 2, Engine: "sim", Seed: seed, Priority: class})
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
	}
	release()

	order := startedOrder(t, jobs)
	const window = 25 // 5 full DWRR rounds of 4 hi + 1 lo
	loStarted := 0
	for _, c := range order[:window] {
		if c == "lo" {
			loStarted++
		}
	}
	// Expected share: weight 1 of 5 → 5 of 25; the 20% tolerance the A6
	// acceptance uses.
	if loStarted < 4 || loStarted > 6 {
		t.Errorf("lo started %d of the first %d dequeues, want 5±1 (order %v)", loStarted, window, order[:window])
	}
	if loStarted == 0 {
		t.Error("lo class starved under hi backlog")
	}
}

// TestStrictClassNotFirst: the discipline is set membership, not set
// position — a strict class declared after a weighted one still drains
// first, including across idle-worker wakeups (the blocking select may
// hand off directly only for the top strict class).
func TestStrictClassNotFirst(t *testing.T) {
	q := New(Config{Workers: 1, Shards: 1, QueueDepth: 32, CacheSize: -1, Classes: ClassSet{
		{Name: "bulk", Weight: 1},
		{Name: "urgent", Weight: WeightStrict},
	}})
	defer q.Close()
	release := blockWorkers(t, q, 1)

	var jobs []*Job
	submit := func(class Class, seed uint64) {
		j, err := q.Submit(Spec{Algorithm: "reduce", N: 64, P: 2, Engine: "sim", Seed: seed, Priority: class})
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
	}
	for i := uint64(0); i < 4; i++ {
		submit("bulk", i)
	}
	for i := uint64(10); i < 14; i++ {
		submit("urgent", i)
	}
	release()
	order := startedOrder(t, jobs)
	for i, c := range order {
		want := Class("urgent")
		if i >= 4 {
			want = "bulk"
		}
		if c != want {
			t.Fatalf("start %d is %s, want %s (order %v)", i, c, want, order)
		}
	}

	// Across an idle wakeup, an urgent job still goes first: with the
	// worker parked, submit urgent then bulk and check urgent starts
	// before bulk despite bulk being the set's first class.
	u, err := q.Submit(Spec{Algorithm: "reduce", N: 64, P: 2, Engine: "sim", Seed: 100, Priority: "urgent"})
	if err != nil {
		t.Fatal(err)
	}
	b, err := q.Submit(Spec{Algorithm: "reduce", N: 64, P: 2, Engine: "sim", Seed: 101, Priority: "bulk"})
	if err != nil {
		t.Fatal(err)
	}
	after := startedOrder(t, []*Job{u, b})
	if after[0] != "urgent" {
		t.Fatalf("idle wakeup started %s before urgent", after[0])
	}
}

// TestAllStrictClasses: a set with only strict classes degrades to
// multi-level strict priority in set order, with no weighted round-robin
// involved.
func TestAllStrictClasses(t *testing.T) {
	q := New(Config{Workers: 1, Shards: 1, QueueDepth: 32, CacheSize: -1, Classes: ClassSet{
		{Name: "p0", Weight: WeightStrict},
		{Name: "p1", Weight: WeightStrict},
	}})
	defer q.Close()
	release := blockWorkers(t, q, 1)

	var jobs []*Job
	for i := 0; i < 3; i++ {
		j, err := q.Submit(Spec{Algorithm: "reduce", N: 64, P: 2, Engine: "sim", Seed: uint64(i), Priority: "p1"})
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
	}
	for i := 0; i < 3; i++ {
		j, err := q.Submit(Spec{Algorithm: "reduce", N: 64, P: 2, Engine: "sim", Seed: uint64(10 + i), Priority: "p0"})
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
	}
	release()
	order := startedOrder(t, jobs)
	for i, c := range order {
		want := Class("p0")
		if i >= 3 {
			want = "p1"
		}
		if c != want {
			t.Fatalf("start %d is %s, want %s (order %v)", i, c, want, order)
		}
	}
}

// TestParseClassSetDeadline: the optional fourth field is the class's
// default per-job deadline, round-tripping through String.
func TestParseClassSetDeadline(t *testing.T) {
	cs, err := ParseClassSet("rt:strict:1:250ms,bulk:1")
	if err != nil {
		t.Fatal(err)
	}
	if cs[0].DefaultDeadline != 250*time.Millisecond {
		t.Errorf("rt deadline = %v, want 250ms", cs[0].DefaultDeadline)
	}
	if cs[1].DefaultDeadline != 0 {
		t.Errorf("bulk deadline = %v, want none", cs[1].DefaultDeadline)
	}
	if s := cs.String(); !strings.Contains(s, "250ms") {
		t.Errorf("String() = %q, want the deadline rendered", s)
	}
	if rt, err := ParseClassSet(cs.String()); err != nil || rt[0].DefaultDeadline != 250*time.Millisecond {
		t.Errorf("round trip of %q: %v, %+v", cs.String(), err, rt)
	}
	for _, bad := range []string{"rt:1:1:banana", "rt:1:1:-5ms", "rt:1:1:0s", "rt:1:1:1ms:x"} {
		if _, err := ParseClassSet(bad); err == nil {
			t.Errorf("ParseClassSet(%q) accepted, want error", bad)
		}
	}
	if err := (ClassSet{{Name: "x", Weight: 1, DefaultDeadline: -time.Second}}).Validate(); err == nil {
		t.Error("negative DefaultDeadline passed Validate")
	}
}

// TestClassDefaultDeadlineApplied: a submit without a spec timeout
// inherits its class's default deadline; an explicit spec timeout wins;
// classes without a default leave the queue-wide timeout in force.
func TestClassDefaultDeadlineApplied(t *testing.T) {
	q := New(Config{Workers: 1, Classes: ClassSet{
		{Name: "rt", Weight: WeightStrict, DefaultDeadline: 123 * time.Millisecond},
		{Name: "bulk", Weight: 1},
	}})
	defer q.Close()

	seed := uint64(0)
	submit := func(class Class, timeout time.Duration) *Job {
		t.Helper()
		seed++ // distinct keys: equal keys would coalesce across classes
		job, err := q.Submit(Spec{Algorithm: "reduce", N: 64, P: 2, Engine: core.EngineSim,
			Seed: seed, Priority: class, Timeout: timeout})
		if err != nil {
			t.Fatal(err)
		}
		return job
	}
	if job := submit("rt", 0); job.Spec.Timeout != 123*time.Millisecond {
		t.Errorf("rt job timeout = %v, want the class default 123ms", job.Spec.Timeout)
	}
	if job := submit("rt", time.Minute); job.Spec.Timeout != time.Minute {
		t.Errorf("explicit timeout = %v, want the spec's own 1m", job.Spec.Timeout)
	}
	if job := submit("bulk", 0); job.Spec.Timeout != 0 {
		t.Errorf("bulk job timeout = %v, want 0 (queue default applies at run time)", job.Spec.Timeout)
	}
	// The deadline actually binds: a class whose default is far below the
	// service time fails its jobs with DeadlineExceeded.
	qd := New(Config{Workers: 1, Classes: ClassSet{
		{Name: "doomed", Weight: 1, DefaultDeadline: time.Nanosecond},
	}})
	defer qd.Close()
	job, err := qd.Submit(Spec{Algorithm: "mergesort", N: 4096, Engine: core.EngineSim, Seed: 3, Priority: "doomed"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := job.Wait(context.Background()); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("err = %v, want DeadlineExceeded via the class default", err)
	}
}
