package jobqueue

import (
	"fmt"
	"runtime"
	"time"
)

// AutoscaleConfig opts the queue into contention-driven shard
// autoscaling: a controller goroutine samples the queue every Interval
// and resizes the placement table between Min and Max shards from the
// observed contention, so one binary serves a laptop and a big box
// without hand-tuning -shards — the LoPRAM stance (optimal speedup at a
// low, varying degree of parallelism, no per-machine p) applied to the
// serving layer.
//
// The controller's signal is the contention score sampled each tick:
//
//	score = pending jobs per shard + stolen/executed ratio of the tick
//
// Queue depth is demand the current table is not absorbing; the steal
// fraction (per-shard Executed vs Stolen imbalance, from the same
// counters Metrics.PerShard reports) is placement skew — keys piling
// onto few shards while the rest stay idle enough to steal. A score at
// or above ImbalanceHigh doubles the shard count (capped at Max); a
// score at or below ImbalanceLow on two consecutive ticks halves it
// (floored at Min) — the two thresholds plus the two-tick shrink
// hysteresis keep the controller from flapping on bursty traffic.
type AutoscaleConfig struct {
	// Min and Max bound the shard count the controller (and any manual
	// Resize while autoscaling is configured) may choose. Min defaults
	// to 1; Max defaults to the host's core count (at least Min), capped
	// at MaxShards.
	Min int `json:"min"`
	Max int `json:"max"`
	// Interval is the controller's sampling period. Default 250ms.
	Interval time.Duration `json:"interval_ns"`
	// ImbalanceHigh is the contention score at which the shard count
	// doubles. Default 4 (four queued jobs per shard, or equivalent
	// steal pressure).
	ImbalanceHigh float64 `json:"imbalance_high"`
	// ImbalanceLow is the contention score at or below which two
	// consecutive ticks halve the shard count. Default 0.5.
	ImbalanceLow float64 `json:"imbalance_low"`
}

// withDefaults fills the zero fields with the documented defaults.
func (a AutoscaleConfig) withDefaults() AutoscaleConfig {
	if a.Min <= 0 {
		a.Min = 1
	}
	if a.Max <= 0 {
		a.Max = runtime.GOMAXPROCS(0)
		if a.Max < a.Min {
			a.Max = a.Min
		}
	}
	if a.Max > MaxShards {
		a.Max = MaxShards
	}
	if a.Interval <= 0 {
		a.Interval = 250 * time.Millisecond
	}
	if a.ImbalanceHigh == 0 {
		a.ImbalanceHigh = 4
	}
	if a.ImbalanceLow == 0 {
		a.ImbalanceLow = 0.5
	}
	return a
}

// Validate checks the configuration after defaulting: ordered bounds
// within [1, MaxShards] and ordered positive thresholds. New panics on an
// invalid config (like an invalid ClassSet); validate user input first.
func (a AutoscaleConfig) Validate() error {
	a = a.withDefaults()
	if a.Min < 1 || a.Max > MaxShards || a.Min > a.Max {
		return fmt.Errorf("jobqueue: autoscale bounds [%d, %d] outside 1 <= min <= max <= %d", a.Min, a.Max, MaxShards)
	}
	if a.ImbalanceLow <= 0 || a.ImbalanceHigh <= a.ImbalanceLow {
		return fmt.Errorf("jobqueue: autoscale thresholds high=%g low=%g need high > low > 0", a.ImbalanceHigh, a.ImbalanceLow)
	}
	return nil
}

// execStolenTotals sums the executed/stolen counters across the retired
// history and the live shards of one coherent table (retiredTotals).
func (q *Queue) execStolenTotals() (exec, stolen int64) {
	p, exec, stolen := q.retiredTotals()
	for _, s := range p.shards {
		exec += s.executed.Load()
		stolen += s.stolen.Load()
	}
	return exec, stolen
}

// autoscaleLoop is the controller goroutine started by New when
// Config.Autoscale is set; Close stops it before tearing the queue down.
func (q *Queue) autoscaleLoop(cfg AutoscaleConfig) {
	defer q.scalerWG.Done()
	tick := time.NewTicker(cfg.Interval)
	defer tick.Stop()
	prevExec, prevStolen := q.execStolenTotals()
	lowTicks := 0
	for {
		select {
		case <-q.stopScaler:
			return
		case <-tick.C:
		}
		n := len(q.place.Load().shards)
		// A starting shard count outside [Min, Max] (New does not bound
		// Config.Shards by the autoscale config) would otherwise wedge
		// the controller: every halved/doubled target it proposes is
		// rejected by Resize's bounds check. Normalize into the bounds
		// first; from there the score logic takes over.
		if n > cfg.Max || n < cfg.Min {
			target := n
			if target > cfg.Max {
				target = cfg.Max
			}
			if target < cfg.Min {
				target = cfg.Min
			}
			_, _ = q.Resize(target)
			continue
		}
		exec, stolen := q.execStolenTotals()
		dExec, dStolen := exec-prevExec, stolen-prevStolen
		prevExec, prevStolen = exec, stolen
		score := float64(q.pending.Load()) / float64(n)
		if dExec > 0 && dStolen > 0 {
			score += float64(dStolen) / float64(dExec)
		}
		switch {
		case score >= cfg.ImbalanceHigh && n < cfg.Max:
			lowTicks = 0
			target := n * 2
			if target > cfg.Max {
				target = cfg.Max
			}
			// A racing Close can fail the resize; the loop exits on the
			// stop channel next iteration either way.
			_, _ = q.Resize(target)
		case score <= cfg.ImbalanceLow && n > cfg.Min:
			lowTicks++
			if lowTicks >= 2 {
				lowTicks = 0
				target := n / 2
				if target < cfg.Min {
					target = cfg.Min
				}
				_, _ = q.Resize(target)
			}
		default:
			lowTicks = 0
		}
	}
}
