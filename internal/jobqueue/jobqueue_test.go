package jobqueue

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"lopram/internal/core"
	"lopram/internal/workload"
)

// testSpecs returns a deterministic 100-job mixed workload: ≥3 algorithms
// × all three engines, with duplicates so the cache and coalescer see
// traffic. Sizes are kept small so the suite stays fast under -race.
func testSpecs() []Spec {
	r := workload.NewRNG(99)
	type pair struct {
		algo   string
		engine core.Engine
		maxN   int
	}
	pairs := []pair{
		{"mergesort", core.EngineSim, 4096},
		{"mergesort", core.EnginePalrt, 4096},
		{"mergesort", core.EnginePRAM, 1024},
		{"editdistance", core.EngineSim, 48},
		{"editdistance", core.EnginePalrt, 48},
		{"matrixchain", core.EngineSim, 24},
		{"matrixchain", core.EnginePalrt, 24},
		{"reduce", core.EngineSim, 4096},
		{"reduce", core.EnginePalrt, 4096},
		{"reduce", core.EnginePRAM, 1024},
		{"maxsubarray", core.EnginePalrt, 4096},
		{"prefixsums", core.EnginePRAM, 1024},
	}
	weights := make([]int, len(pairs))
	for i := range weights {
		weights[i] = 1
	}
	specs := make([]Spec, 0, 100)
	for len(specs) < 100 {
		if len(specs) > 0 && r.Float64() < 0.3 {
			specs = append(specs, specs[r.Intn(len(specs))])
			continue
		}
		p := pairs[workload.Choice(r, weights)]
		specs = append(specs, Spec{
			Algorithm: p.algo,
			N:         workload.LogUniform(r, 8, p.maxN),
			Engine:    p.engine,
			Seed:      r.Uint64() % 4,
		})
	}
	return specs
}

// TestEndToEnd is the e2e acceptance test: submit 100 mixed jobs, assert
// all complete, duplicates are served without re-execution, and the
// metrics add up. Run it with -race.
func TestEndToEnd(t *testing.T) {
	q := New(Config{Workers: 4, QueueDepth: 256, DefaultTimeout: 2 * time.Minute})
	defer q.Close()

	specs := testSpecs()
	var wg sync.WaitGroup
	results := make([]Result, len(specs))
	errs := make([]error, len(specs))
	for i, spec := range specs {
		job, err := q.Submit(spec)
		if err != nil {
			t.Fatalf("submit %v: %v", spec, err)
		}
		wg.Add(1)
		go func(i int, job *Job) {
			defer wg.Done()
			results[i], errs[i] = job.Wait(context.Background())
		}(i, job)
	}
	wg.Wait()

	for i, err := range errs {
		if err != nil {
			t.Errorf("job %d (%v) failed: %v", i, specs[i], err)
		}
	}

	// Identical specs must produce identical outcomes, however they were
	// served (executed, coalesced, or cached).
	byKey := make(map[Key]core.Outcome)
	for i, spec := range specs {
		key := spec.key()
		if prev, ok := byKey[key]; ok {
			if prev != results[i].Outcome {
				t.Errorf("spec %v: outcome diverged between duplicates: %+v vs %+v", spec, prev, results[i].Outcome)
			}
		} else {
			byKey[key] = results[i].Outcome
		}
	}

	m := q.Snapshot()
	if m.Submitted+m.Coalesced != int64(len(specs)) {
		t.Errorf("submitted %d + coalesced %d != %d requests", m.Submitted, m.Coalesced, len(specs))
	}
	if m.Failed != 0 || m.Timeouts != 0 || m.Rejected != 0 {
		t.Errorf("unexpected failures=%d timeouts=%d rejected=%d", m.Failed, m.Timeouts, m.Rejected)
	}
	dups := int64(len(specs) - len(byKey))
	if m.CacheHits+m.Coalesced != dups {
		t.Errorf("cache hits %d + coalesced %d != %d duplicate requests", m.CacheHits, m.Coalesced, dups)
	}
	if m.Completed != int64(len(byKey)) {
		t.Errorf("executed %d jobs, want %d (one per distinct key)", m.Completed, len(byKey))
	}
	if dups > 0 && m.HitRate == 0 {
		t.Errorf("hit rate 0 despite %d duplicate requests", dups)
	}
	if m.Wall.Count == 0 || m.Wall.P99 < m.Wall.P50 {
		t.Errorf("implausible wall summary: %+v", m.Wall)
	}
}

// TestCrossEngineAgreement: the sim and palrt engines must report the same
// scalar answer for the same (algorithm, n, seed) — the DP specs derive
// identical inputs from the seed.
func TestCrossEngineAgreement(t *testing.T) {
	q := New(Config{Workers: 2})
	defer q.Close()
	for _, algo := range []string{"editdistance", "lcs", "matrixchain"} {
		simJob, err := q.Submit(Spec{Algorithm: algo, N: 40, Engine: core.EngineSim, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		palJob, err := q.Submit(Spec{Algorithm: algo, N: 40, Engine: core.EnginePalrt, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		simRes, err := simJob.Wait(context.Background())
		if err != nil {
			t.Fatalf("%s/sim: %v", algo, err)
		}
		palRes, err := palJob.Wait(context.Background())
		if err != nil {
			t.Fatalf("%s/palrt: %v", algo, err)
		}
		if simRes.Value != palRes.Value {
			t.Errorf("%s: sim value %d != palrt value %d", algo, simRes.Value, palRes.Value)
		}
	}
}

func TestCacheHitOnResubmit(t *testing.T) {
	q := New(Config{Workers: 1})
	defer q.Close()
	spec := Spec{Algorithm: "mergesort", N: 1024, Engine: core.EngineSim, Seed: 3}

	first, err := q.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	res1, err := first.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res1.Cached {
		t.Fatal("first run reported cached")
	}

	second, err := q.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := second.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Cached {
		t.Fatal("resubmitted spec was not served from cache")
	}
	if res1.Outcome != res2.Outcome {
		t.Fatalf("cached outcome %+v != original %+v", res2.Outcome, res1.Outcome)
	}
	if m := q.Snapshot(); m.CacheHits != 1 {
		t.Fatalf("cache hits = %d, want 1", m.CacheHits)
	}
}

func TestCoalescingSharesOneRun(t *testing.T) {
	q := New(Config{Workers: 1})
	defer q.Close()

	// Block the single worker so duplicates pile up behind one in-flight
	// key.
	release := make(chan struct{})
	blocker, err := q.SubmitFunc("blocker", func(context.Context) error {
		<-release
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	spec := Spec{Algorithm: "reduce", N: 512, Engine: core.EngineSim, Seed: 1}
	a, err := q.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := q.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("duplicate in-flight submits returned distinct jobs")
	}
	close(release)
	if _, err := blocker.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	m := q.Snapshot()
	if m.Coalesced != 1 {
		t.Fatalf("coalesced = %d, want 1", m.Coalesced)
	}
}

func TestAdmissionControl(t *testing.T) {
	q := New(Config{Workers: 1, QueueDepth: 1})
	defer q.Close()

	// Invalid specs are rejected outright.
	bad := []Spec{
		{Algorithm: "nope", N: 16, Engine: core.EngineSim},
		{Algorithm: "mergesort", N: 16, Engine: "gpu"},
		{Algorithm: "mergesort", N: 0, Engine: core.EngineSim},
		{Algorithm: "mergesort", N: 1 << 20, Engine: core.EnginePRAM}, // over the engine's maxN
		{Algorithm: "quicksort", N: 16, Engine: core.EngineSim},       // unsupported engine for algo
		{Algorithm: "mergesort", N: 16, P: core.MaxProcs + 1, Engine: core.EngineSim},
	}
	for _, spec := range bad {
		if _, err := q.Submit(spec); err == nil {
			t.Errorf("spec %v was admitted, want rejection", spec)
		}
	}

	// Saturation: 1 worker blocked + depth-1 queue full → ErrQueueFull.
	release := make(chan struct{})
	defer close(release)
	if _, err := q.SubmitFunc("blocker", func(context.Context) error { <-release; return nil }); err != nil {
		t.Fatal(err)
	}
	// Wait for the worker to pick up the blocker so the queue slot frees.
	deadline := time.Now().Add(5 * time.Second)
	for q.Snapshot().Running == 0 {
		if time.Now().After(deadline) {
			t.Fatal("worker never started the blocker")
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := q.SubmitFunc("fills-queue", func(context.Context) error { return nil }); err != nil {
		t.Fatal(err)
	}
	_, err := q.SubmitFunc("overflow", func(context.Context) error { return nil })
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("err = %v, want ErrQueueFull", err)
	}
	if m := q.Snapshot(); m.Rejected < int64(len(bad))+1 {
		t.Errorf("rejected = %d, want >= %d", m.Rejected, len(bad)+1)
	}
}

func TestDeadlineAbandonsRun(t *testing.T) {
	q := New(Config{Workers: 1, DefaultTimeout: 20 * time.Millisecond})

	started := make(chan struct{})
	finished := make(chan struct{})
	job, err := q.SubmitFunc("slow", func(ctx context.Context) error {
		close(started)
		<-ctx.Done() // a cooperative job would stop here; hold on a bit longer
		time.Sleep(10 * time.Millisecond)
		close(finished)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	_, err = job.Wait(context.Background())
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	<-finished
	q.Close() // waits for the abandoned run to drain
	m := q.Snapshot()
	if m.Timeouts != 1 {
		t.Errorf("timeouts = %d, want 1", m.Timeouts)
	}
	if m.Abandoned != 0 {
		t.Errorf("abandoned gauge = %d after Close, want 0", m.Abandoned)
	}
}

func TestSubmitAfterClose(t *testing.T) {
	q := New(Config{Workers: 1})
	q.Close()
	if _, err := q.Submit(Spec{Algorithm: "mergesort", N: 16, Engine: core.EngineSim}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Submit after Close: err = %v, want ErrClosed", err)
	}
	if _, err := q.SubmitFunc("x", func(context.Context) error { return nil }); !errors.Is(err, ErrClosed) {
		t.Fatalf("SubmitFunc after Close: err = %v, want ErrClosed", err)
	}
	q.Close() // idempotent
}

func TestJobViewsAndRetention(t *testing.T) {
	q := New(Config{Workers: 2, Retain: 8})
	defer q.Close()
	for i := 0; i < 20; i++ {
		job, err := q.SubmitFunc(fmt.Sprintf("job-%d", i), func(context.Context) error { return nil })
		if err != nil {
			t.Fatal(err)
		}
		if _, err := job.Wait(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	views := q.Jobs(0)
	if len(views) > 8 {
		t.Fatalf("retained %d jobs, want <= 8", len(views))
	}
	// Newest first, all terminal with timings populated.
	for i, v := range views {
		if i > 0 && v.ID > views[i-1].ID {
			t.Fatalf("views not newest-first: %d after %d", v.ID, views[i-1].ID)
		}
		if v.Status != StatusDone {
			t.Fatalf("view %d: status %v", v.ID, v.Status)
		}
	}
	if _, ok := q.Get(views[0].ID); !ok {
		t.Fatal("most recent job not retrievable by ID")
	}
	if _, ok := q.Get(1); ok {
		t.Fatal("oldest job should have aged out of retention")
	}
}

func TestResultBeforeFinish(t *testing.T) {
	q := New(Config{Workers: 1})
	defer q.Close()
	release := make(chan struct{})
	job, err := q.SubmitFunc("held", func(context.Context) error { <-release; return nil })
	if err != nil {
		t.Fatal(err)
	}
	if _, err := job.Result(); !errors.Is(err, ErrNotFinished) {
		t.Fatalf("Result on running job: err = %v, want ErrNotFinished", err)
	}
	close(release)
	if _, err := job.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestAbandonmentBounded: deadline-blown runs may be abandoned only up to
// the orphan budget (2× workers); past that the worker waits the run out,
// so timeout abuse cannot stack unbounded concurrent runs.
func TestAbandonmentBounded(t *testing.T) {
	q := New(Config{Workers: 1, DefaultTimeout: 5 * time.Millisecond})

	var live atomic.Int64
	var peak atomic.Int64
	jobs := make([]*Job, 0, 6)
	for i := 0; i < 6; i++ {
		job, err := q.SubmitFunc(fmt.Sprintf("slow-%d", i), func(ctx context.Context) error {
			if n := live.Add(1); n > peak.Load() {
				peak.Store(n)
			}
			defer live.Add(-1)
			<-ctx.Done()
			time.Sleep(30 * time.Millisecond) // keep running past the deadline
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, job)
	}
	for _, job := range jobs {
		if _, err := job.Wait(context.Background()); !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("%s: err = %v, want DeadlineExceeded", job.Name, err)
		}
	}
	q.Close()
	m := q.Snapshot()
	if m.Timeouts != 6 {
		t.Errorf("timeouts = %d, want 6", m.Timeouts)
	}
	if m.Abandoned != 0 {
		t.Errorf("abandoned gauge = %d after Close, want 0", m.Abandoned)
	}
	// Budget is 2×workers = 2 orphans, plus the one run the worker holds.
	if p := peak.Load(); p > 3 {
		t.Errorf("peak concurrent runs = %d, want <= 3", p)
	}
	if live.Load() != 0 {
		t.Errorf("%d runs still live after Close", live.Load())
	}
}

// TestSampleRingWindow: the latency window inserts in O(1), keeps only the
// newest maxLatencySamples, and Snapshot's memoized summaries track it.
func TestSampleRingWindow(t *testing.T) {
	var r sampleRing
	for i := 0; i < maxLatencySamples+100; i++ {
		r.add(float64(i))
	}
	out := r.copyOut()
	if len(out) != maxLatencySamples {
		t.Fatalf("window holds %d samples, want %d", len(out), maxLatencySamples)
	}
	if r.gen != maxLatencySamples+100 {
		t.Fatalf("gen = %d, want %d", r.gen, maxLatencySamples+100)
	}
	min := out[0]
	for _, x := range out {
		if x < min {
			min = x
		}
	}
	if min != 100 {
		t.Fatalf("oldest retained sample = %g, want 100 (older overwritten FIFO)", min)
	}
}

// TestSnapshotSummariesMemoized: repeated Snapshots of an idle queue reuse
// the cached summary (same values) and reflect new completions when they
// happen; the palrt scheduler aggregate is carried along.
func TestSnapshotSummariesMemoized(t *testing.T) {
	q := New(Config{Workers: 2, CacheSize: -1})
	defer q.Close()

	run := func() {
		job, err := q.Submit(Spec{Algorithm: "reduce", N: 1 << 15, P: 2, Engine: core.EnginePalrt, Seed: 9})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := job.Wait(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	run()
	m1 := q.Snapshot()
	m2 := q.Snapshot()
	if m1.Wall != m2.Wall || m1.Wait != m2.Wait {
		t.Fatalf("idle snapshots diverged: %+v vs %+v", m1.Wall, m2.Wall)
	}
	if m1.Wall.Count != 1 {
		t.Fatalf("wall sample count = %d, want 1", m1.Wall.Count)
	}
	run() // cache disabled, so the duplicate spec executes again
	m3 := q.Snapshot()
	if m3.Wall.Count != 2 {
		t.Fatalf("wall sample count after second run = %d, want 2", m3.Wall.Count)
	}
	// An EnginePalrt job ran, so the process-wide scheduler aggregate must
	// have counted its offered children.
	if m3.Scheduler.Spawned+m3.Scheduler.Inlined == 0 {
		t.Fatal("scheduler aggregate empty after a palrt job")
	}
}
