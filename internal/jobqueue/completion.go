package jobqueue

import (
	"sync"
	"time"
)

// The lock-light completion path. A worker does not settle each finished
// job against its home shard individually: it accumulates outcomes in a
// per-worker completion buffer and publishes a whole buffer under one
// shard-lock acquisition per home shard (flushCompletions). Latency
// samples and per-algorithm aggregates never touch a shard at all — they
// land on the worker's own metric shard (workerMetrics), merged only by
// Snapshot. The per-job hot path therefore writes worker-local memory
// plus the existing atomics; shard mutexes are amortized over a flush.
//
// The flush contract: a job's signalDone (and so every Wait on it, and
// its batch's pending count) fires only from the flush that published
// its outcome — after the cache insert, inflight delete, counters and
// trace record. That is the PR 3 settle-before-signal ordering, widened
// from one job to a buffer: a submitter whose Wait returned can still
// rely on the result cache already holding the outcome.

// completionFlushK is the completion-buffer flush threshold: a worker
// publishes its buffered outcomes at K, or earlier whenever it would
// otherwise park, run arbitrary code (a func job), or block waiting out
// an abandoned run — any point where holding completions would delay
// their waiters indefinitely.
const completionFlushK = 32

// completion is one buffered finished-job outcome, carrying everything
// the flush needs so phase 2 never re-derives state from the job under
// its lock.
type completion struct {
	job *Job
	key Key // zero for func jobs
	// name keys the per-algorithm aggregate (the algorithm, or the func
	// job's name); cacheName is the job's full rendered name, stored in
	// the cache entry so hits never re-render it — rendered lazily at
	// cache-insert time for pooled frames that never carried one.
	name      string
	cacheName string
	res       Result
	err       error
	wallMS    float64
	waitMS    float64
	// shard/epoch/published are flush-local: the home-shard index under
	// the table a flush pass resolved, the epoch that pass published
	// under, and whether the keyed state has landed (a retired shard
	// makes the flush retry; already-published items are skipped).
	shard     int
	epoch     uint64
	published bool
}

// workerMetrics is one worker's metric shard: the latency rings and
// per-algorithm aggregates that used to live on the job's home shard.
// Only the owning worker writes (under mu, so Snapshot can read a
// coherent window); a resize neither moves nor resets them — the pool
// only grows, and samples stay where they were recorded.
type workerMetrics struct {
	mu        sync.Mutex
	wall      sampleRing
	wait      sampleRing
	classWall []sampleRing // indexed by class-set position
	classWait []sampleRing
	perAlgo   map[string]*algoAggregate
}

func newWorkerMetrics(numClasses int) *workerMetrics {
	return &workerMetrics{
		classWall: make([]sampleRing, numClasses),
		classWait: make([]sampleRing, numClasses),
		perAlgo:   make(map[string]*algoAggregate),
	}
}

// workerState is the per-worker completion state threaded through the
// dequeue loops: the outcome buffer and the worker's metric shard. It
// survives re-homing (a resize does not reset it); the worker's exit
// path flushes whatever remains before the pool's WaitGroup releases
// Close.
type workerState struct {
	buf []completion
	wm  *workerMetrics
	// Run-path scratch owned by shard.go's runJob: the persistent
	// runner lane for algorithm jobs, the reusable run reply cell, and
	// the per-worker deadline timer that stands in for a per-job
	// context.WithTimeout. All three are lazily built and survive
	// re-homing; an abandoned run drops the lane and the cell (their
	// signals belong to the background watcher by then).
	runner   chan runTask
	rs       *runState
	deadline *time.Timer
}

// bufferCompletion records one finished job on the worker's completion
// buffer, flushing at the K threshold. wall is the execution time to
// sample (the runner's measured wall for completed runs, the elapsed
// deadline for timeouts); start is when the run began, which with the
// job's submit time yields the queueing latency without touching job.mu.
func (q *Queue) bufferCompletion(ws *workerState, job *Job, res Result, err error, wall time.Duration, start time.Time) {
	name := job.Spec.Algorithm
	if name == "" {
		name = job.Name
	}
	var key Key
	if job.fn == nil {
		key = job.Spec.key()
	}
	ws.buf = append(ws.buf, completion{
		job:       job,
		key:       key,
		name:      name,
		cacheName: job.Name,
		res:       res,
		err:       err,
		wallMS:    float64(wall) / float64(time.Millisecond),
		waitMS:    float64(start.Sub(job.submitted)) / float64(time.Millisecond),
	})
	if len(ws.buf) >= completionFlushK {
		q.flushCompletions(ws)
	}
}

// flushCompletions publishes every buffered outcome. Two phases:
//
// Phase 1 lands the keyed state — inflight-entry delete and cache
// insert — on each outcome's home shard under the *current* placement
// table, one lock acquisition per home shard per pass, republishing the
// shard's lock-free read index once per dirtied shard. A shard caught
// mid-retirement is skipped and the pass retried against the new table
// (per-item published flags keep landed items from re-publishing), the
// same forwarding rule the per-job settle used: results land where
// duplicates will look for them.
//
// Phase 2 records the worker-local metrics (one lock on the worker's
// own metric shard for the whole buffer), then per item: completes the
// chained duplicate frames, feeds the cost calibrator, bumps the
// completion counters, emits the trace record, and only then calls
// signalDone — so everything a woken waiter may observe is already in
// place.
func (q *Queue) flushCompletions(ws *workerState) {
	if len(ws.buf) == 0 {
		return
	}
	for {
		p := q.place.Load()
		n := len(p.shards)
		unpublished := 0
		for i := range ws.buf {
			c := &ws.buf[i]
			if c.published {
				continue
			}
			if c.job.fn == nil {
				c.shard = shardIndexFor(c.key, n)
			} else {
				c.shard = shardIndexForName(c.job.Name, n)
			}
			unpublished++
		}
		if unpublished == 0 {
			break
		}
		retry := false
		for si := 0; si < n; si++ {
			hit := false
			for i := range ws.buf {
				if !ws.buf[i].published && ws.buf[i].shard == si {
					hit = true
					break
				}
			}
			if !hit {
				continue
			}
			s := p.shards[si]
			s.mu.Lock()
			if s.retired {
				s.mu.Unlock()
				retry = true
				continue
			}
			dirty := false
			for i := range ws.buf {
				c := &ws.buf[i]
				if c.published || c.shard != si {
					continue
				}
				if c.job.fn == nil {
					if s.inflight[c.key] == c.job {
						delete(s.inflight, c.key)
					}
					if c.err == nil && s.cache.cap > 0 {
						if c.cacheName == "" {
							// An untraced pooled frame never rendered its
							// name; pay for it once here so every future
							// hit is served without rendering.
							c.cacheName = c.job.Spec.String()
						}
						s.cache.put(c.key, c.cacheName, c.res)
						dirty = true
					}
				}
				c.epoch = p.epoch
				c.published = true
			}
			if dirty {
				s.republishReadIndex()
			}
			s.mu.Unlock()
		}
		if !retry {
			break
		}
		retryPlacement()
	}

	if ws.wm != nil {
		wm := ws.wm
		wm.mu.Lock()
		for i := range ws.buf {
			c := &ws.buf[i]
			wm.wall.add(c.wallMS)
			wm.wait.add(c.waitMS)
			wm.classWall[c.job.class].add(c.wallMS)
			wm.classWait[c.job.class].add(c.waitMS)
			agg := wm.perAlgo[c.name]
			if agg == nil {
				agg = &algoAggregate{}
				wm.perAlgo[c.name] = agg
			}
			agg.count++
			if c.err != nil {
				agg.failed++
			}
			agg.totalWallMS += c.wallMS
		}
		wm.mu.Unlock()
	}

	for i := range ws.buf {
		c := &ws.buf[i]
		job := c.job
		// Complete the pooled frames coalesced onto this job while it was
		// in flight. The inflight entry was removed in phase 1, so no
		// further frame can chain on; completing after the cache write
		// preserves the signal ordering for the chained waiters too.
		job.mu.Lock()
		chained := job.chained
		job.chained = nil
		job.mu.Unlock()
		if len(chained) > 0 {
			now := time.Now()
			for _, ch := range chained {
				ch.markFinished(c.res, c.err, now)
				ch.signalDone()
			}
		}
		if c.err == nil && q.cal != nil {
			q.cal.observe(job, c.res.Wall)
		}
		if c.err != nil {
			q.failed.Add(1)
			q.perClass[job.class].failed.Add(1)
		} else {
			q.completed.Add(1)
			q.perClass[job.class].completed.Add(1)
		}
		if q.rec != nil {
			q.recordExecuted(job, c.res, c.err, c.epoch)
		}
		job.signalDone()
		*c = completion{}
	}
	ws.buf = ws.buf[:0]
}

// republishReadIndex rebuilds the shard's lock-free cache read index
// from the locked LRU and publishes it atomically. The caller holds
// s.mu (or owns the shard exclusively: Resize builds unpublished
// tables lock-free). Skipped on closed shards — Close clears the index
// so post-shutdown submissions fall through to the locked path's
// ErrClosed — and when caching is disabled.
func (s *shard) republishReadIndex() {
	if s.closed || s.cache == nil || s.cache.cap <= 0 {
		return
	}
	m := make(map[Key]cached, s.cache.len())
	s.cache.each(func(k Key, name string, r Result) { m[k] = cached{name: name, res: r} })
	s.cacheIdx.Store(&m)
}
