package jobqueue

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"lopram/internal/core"
)

// waitRunning polls until exactly want jobs are running.
func waitRunning(t *testing.T, q *Queue, want int64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for q.running.Load() != want {
		if time.Now().After(deadline) {
			t.Fatalf("running = %d, want %d (workers never picked the blockers up)", q.running.Load(), want)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestResizeNoop: resizing to the current shard count changes nothing —
// same epoch, same table.
func TestResizeNoop(t *testing.T) {
	q := New(Config{Workers: 2, Shards: 2})
	defer q.Close()
	if got := q.Epoch(); got != 1 {
		t.Fatalf("fresh queue epoch = %d, want 1", got)
	}
	epoch, err := q.Resize(2)
	if err != nil {
		t.Fatalf("no-op resize: %v", err)
	}
	if epoch != 1 || q.Epoch() != 1 || q.NumShards() != 2 {
		t.Fatalf("no-op resize moved the table: epoch %d shards %d", q.Epoch(), q.NumShards())
	}
}

// TestResizeBounds: targets outside [1, MaxShards] are rejected, and with
// autoscaling configured, targets outside its [Min, Max] are rejected too.
func TestResizeBounds(t *testing.T) {
	q := New(Config{Workers: 2, Shards: 2})
	defer q.Close()
	for _, n := range []int{0, -1, MaxShards + 1} {
		if _, err := q.Resize(n); err == nil {
			t.Errorf("Resize(%d) accepted, want rejection", n)
		}
	}

	qa := New(Config{Workers: 2, Shards: 2, Autoscale: &AutoscaleConfig{Min: 2, Max: 4, Interval: time.Hour}})
	defer qa.Close()
	for _, n := range []int{1, 5} {
		_, err := qa.Resize(n)
		if err == nil || !strings.Contains(err.Error(), "autoscale bounds") {
			t.Errorf("Resize(%d) under Min=2/Max=4: err = %v, want autoscale-bounds rejection", n, err)
		}
	}
	if _, err := qa.Resize(3); err != nil {
		t.Errorf("Resize(3) within bounds: %v", err)
	}
}

// TestResizeAfterClose: a closed queue refuses to resize.
func TestResizeAfterClose(t *testing.T) {
	q := New(Config{Workers: 1})
	q.Close()
	if _, err := q.Resize(2); !errors.Is(err, ErrClosed) {
		t.Fatalf("Resize after Close: err = %v, want ErrClosed", err)
	}
}

// TestResizeMigratesState: results cached before a resize survive it (a
// resubmit is a cache hit, never a re-execution), old job IDs stay
// resolvable, the latency window carries over, and placement in the new
// epoch is the deterministic hash of the key.
func TestResizeMigratesState(t *testing.T) {
	q := New(Config{Workers: 2, Shards: 1, QueueDepth: 256})
	defer q.Close()

	specs := make([]Spec, 0, 24)
	for seed := uint64(0); seed < 24; seed++ {
		specs = append(specs, Spec{Algorithm: "reduce", N: 128, P: 2, Engine: core.EngineSim, Seed: seed})
	}
	ids := make([]uint64, len(specs))
	for i, spec := range specs {
		job, err := q.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = job.ID
		if _, err := job.Wait(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	before := q.Snapshot()

	epoch, err := q.Resize(4)
	if err != nil {
		t.Fatal(err)
	}
	if epoch != 2 || q.NumShards() != 4 {
		t.Fatalf("after resize: epoch %d shards %d, want 2 and 4", epoch, q.NumShards())
	}

	for i, spec := range specs {
		// Placement in the new epoch is the key hash modulo the new count.
		if got, want := q.ShardOf(spec), int(spec.key().hash()%4); got != want {
			t.Fatalf("spec %d placed on shard %d, want %d", i, got, want)
		}
		job, err := q.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		res, err := job.Wait(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if !res.Cached {
			t.Fatalf("spec %d re-executed after resize, want migrated cache hit", i)
		}
	}
	for i, id := range ids {
		if _, ok := q.Get(id); !ok {
			t.Errorf("pre-resize job %d (id %d) no longer resolvable", i, id)
		}
	}

	after := q.Snapshot()
	if after.Completed != before.Completed {
		t.Errorf("completed moved %d -> %d across resize: a job re-executed", before.Completed, after.Completed)
	}
	if after.CacheHits != before.CacheHits+int64(len(specs)) {
		t.Errorf("cache hits %d, want %d (every resubmit served from the migrated cache)",
			after.CacheHits, before.CacheHits+int64(len(specs)))
	}
	if after.Wall.Count != before.Wall.Count {
		t.Errorf("latency window %d -> %d samples across resize, want carried over", before.Wall.Count, after.Wall.Count)
	}
	if len(after.PerShard) != 4 {
		t.Errorf("per-shard table has %d entries, want 4", len(after.PerShard))
	}
}

// TestResizeCoalescesDuplicateAcrossMigration: a job admitted before a
// resize keeps coalescing duplicates submitted after it (the in-flight
// entry migrates with the key), and once it settles, a further duplicate
// is a cache hit — the job never runs twice.
func TestResizeCoalescesDuplicateAcrossMigration(t *testing.T) {
	q := New(Config{Workers: 4, Shards: 1, QueueDepth: 64})
	defer q.Close()

	// Hold all four workers so the spec job stays queued across the
	// resize.
	release := make(chan struct{})
	blockers := make([]*Job, 0, 4)
	for i := 0; i < 4; i++ {
		b, err := q.SubmitFunc(fmt.Sprintf("hold-%d", i), func(context.Context) error { <-release; return nil })
		if err != nil {
			t.Fatal(err)
		}
		blockers = append(blockers, b)
	}
	waitRunning(t, q, 4)

	spec := Spec{Algorithm: "reduce", N: 256, P: 2, Engine: core.EngineSim, Seed: 77}
	orig, err := q.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := q.Resize(4); err != nil {
		t.Fatal(err)
	}
	dup, err := q.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if dup != orig {
		t.Fatal("duplicate submitted across the resize did not coalesce onto the migrated in-flight job")
	}

	close(release)
	for _, b := range blockers {
		if _, err := b.Wait(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := orig.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	cached, err := q.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	res, err := cached.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Cached {
		t.Fatal("post-settle duplicate not served from the cache after resize")
	}
	m := q.Snapshot()
	if m.Coalesced != 1 || m.CacheHits != 1 {
		t.Errorf("coalesced=%d cacheHits=%d, want 1/1 (the spec ran exactly once)", m.Coalesced, m.CacheHits)
	}
}

// TestResizeUnderLoad is the live-elasticity stress: four submitters
// hammer a duplicate-heavy key space while the table resizes 1→4→2→3→1
// under them. No job may be lost, refused, failed, or executed twice —
// every distinct key runs exactly once, however many epochs it crossed.
// Run it with -race: every migration path crosses goroutines.
func TestResizeUnderLoad(t *testing.T) {
	q := New(Config{Workers: 4, Shards: 1, QueueDepth: 8192, CacheSize: 4096, DefaultTimeout: 2 * time.Minute})
	defer q.Close()

	const distinct = 40
	const perSubmitter = 150
	var wg sync.WaitGroup
	errs := make(chan error, 4)
	for sub := 0; sub < 4; sub++ {
		wg.Add(1)
		go func(sub int) {
			defer wg.Done()
			jobs := make([]*Job, 0, perSubmitter)
			for i := 0; i < perSubmitter; i++ {
				spec := Spec{Algorithm: "reduce", N: 128, P: 2, Engine: core.EngineSim,
					Seed: uint64((sub*perSubmitter + i) % distinct)}
				job, err := q.Submit(spec)
				if err != nil {
					errs <- fmt.Errorf("submitter %d: %v", sub, err)
					return
				}
				jobs = append(jobs, job)
			}
			for _, job := range jobs {
				if _, err := job.Wait(context.Background()); err != nil {
					errs <- fmt.Errorf("submitter %d wait: %v", sub, err)
					return
				}
			}
		}(sub)
	}
	for _, n := range []int{4, 2, 3, 1} {
		time.Sleep(2 * time.Millisecond)
		if _, err := q.Resize(n); err != nil {
			t.Fatalf("Resize(%d): %v", n, err)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	m := q.Snapshot()
	if m.Completed != distinct {
		t.Errorf("completed = %d, want %d (each distinct key exactly once across all epochs)", m.Completed, distinct)
	}
	if m.Failed != 0 || m.Rejected != 0 || m.Timeouts != 0 {
		t.Errorf("failed=%d rejected=%d timeouts=%d, want 0", m.Failed, m.Rejected, m.Timeouts)
	}
	if got := m.CacheHits + m.Coalesced; got != 4*perSubmitter-distinct {
		t.Errorf("hits+coalesced = %d, want %d (every duplicate served without execution)", got, 4*perSubmitter-distinct)
	}
	if m.Pending != 0 {
		t.Errorf("pending = %d after full drain, want 0", m.Pending)
	}
	if m.Epoch != 5 {
		t.Errorf("epoch = %d after four resizes, want 5", m.Epoch)
	}
}

// TestResizeSpawnsWorkers: growing the table past the worker count grows
// the pool so every shard keeps a home worker; shrinking never kills
// workers.
func TestResizeSpawnsWorkers(t *testing.T) {
	q := New(Config{Workers: 1, Shards: 1})
	defer q.Close()
	if m := q.Snapshot(); m.Workers != 1 {
		t.Fatalf("workers = %d, want 1", m.Workers)
	}
	if _, err := q.Resize(4); err != nil {
		t.Fatal(err)
	}
	if m := q.Snapshot(); m.Workers != 4 || m.Shards != 4 {
		t.Fatalf("after grow: workers=%d shards=%d, want 4/4", m.Workers, m.Shards)
	}
	if _, err := q.Resize(2); err != nil {
		t.Fatal(err)
	}
	if m := q.Snapshot(); m.Workers != 4 || m.Shards != 2 {
		t.Fatalf("after shrink: workers=%d shards=%d, want 4/2", m.Workers, m.Shards)
	}
	// The grown pool still serves traffic on the shrunk table.
	job, err := q.Submit(Spec{Algorithm: "reduce", N: 128, P: 2, Engine: core.EngineSim, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := job.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}

	// Regression: the widest possible grow from the narrowest pool. The
	// spawned workers must only ever see the published wide table — a
	// worker indexing its home on the old one-shard table panicked here.
	qw := New(Config{Workers: 1, Shards: 1})
	defer qw.Close()
	if _, err := qw.Resize(MaxShards); err != nil {
		t.Fatal(err)
	}
	for seed := uint64(0); seed < 16; seed++ {
		job, err := qw.Submit(Spec{Algorithm: "reduce", N: 64, P: 2, Engine: core.EngineSim, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := job.Wait(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	if m := qw.Snapshot(); m.Workers != MaxShards || m.Shards != MaxShards {
		t.Fatalf("after 1→%d grow: workers=%d shards=%d", MaxShards, m.Workers, m.Shards)
	}
}

// TestResizeKeepsAdmissionBound: the migrated backlog rides in extra
// channel capacity, not in extra admission slots — after a resize the
// lane still rejects at the configured depth, so high-load resizes never
// loosen backpressure.
func TestResizeKeepsAdmissionBound(t *testing.T) {
	q := New(Config{Workers: 2, Shards: 2, QueueDepth: 4, CacheSize: -1})
	defer q.Close()

	release := make(chan struct{})
	defer close(release)
	for _, name := range pinnedNames(0, 2, 2) {
		if _, err := q.SubmitFunc(name, func(context.Context) error { <-release; return nil }); err != nil {
			t.Fatal(err)
		}
	}
	waitRunning(t, q, 2)

	// Fill shard 1's interactive lane (per-shard depth 2) to the brim.
	queued := pinnedNames(1, 2, 2)
	for _, name := range queued {
		if _, err := q.SubmitFunc(name, func(context.Context) error { return nil }); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := q.SubmitFunc(pinnedNames(1, 2, 3)[2], func(context.Context) error { return nil }); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("pre-resize overflow: err = %v, want ErrQueueFull", err)
	}

	// Merge onto one shard: its interactive lane depth is 4 and it
	// inherits the 2-job backlog, so exactly 2 more admissions fit —
	// the 3rd must be refused even though the channel has migration
	// headroom.
	if _, err := q.Resize(1); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := q.SubmitFunc(fmt.Sprintf("post-resize-%d", i), func(context.Context) error { return nil }); err != nil {
			t.Fatalf("post-resize submit %d: %v", i, err)
		}
	}
	if _, err := q.SubmitFunc("post-resize-overflow", func(context.Context) error { return nil }); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("post-resize overflow: err = %v, want ErrQueueFull (migrated backlog must not widen admission)", err)
	}
}

// TestWorkerHomeFairShare: fair-share dealing puts every shard's worker
// count within one of every other's, and leaves no shard without a home
// worker whenever workers >= shards.
func TestWorkerHomeFairShare(t *testing.T) {
	for _, c := range []struct{ workers, shards int }{
		{1, 1}, {4, 4}, {5, 4}, {7, 3}, {10, 4}, {16, 5}, {9, 8}, {64, 64}, {65, 64}, {13, 6},
	} {
		counts := make([]int, c.shards)
		for idx := 0; idx < c.workers; idx++ {
			home := workerHome(idx, c.shards, c.workers)
			if home < 0 || home >= c.shards {
				t.Fatalf("workerHome(%d, %d, %d) = %d out of range", idx, c.shards, c.workers, home)
			}
			counts[home]++
		}
		min, max := counts[0], counts[0]
		for _, n := range counts {
			if n < min {
				min = n
			}
			if n > max {
				max = n
			}
		}
		if max-min > 1 {
			t.Errorf("workers=%d shards=%d: per-shard worker spread %v exceeds 1", c.workers, c.shards, counts)
		}
		if min < 1 {
			t.Errorf("workers=%d shards=%d: a shard has no home worker (%v)", c.workers, c.shards, counts)
		}
	}
}

// TestAutoscaleValidate: bounds and thresholds are checked after
// defaulting.
func TestAutoscaleValidate(t *testing.T) {
	if err := (AutoscaleConfig{}).Validate(); err != nil {
		t.Errorf("zero config (all defaults): %v", err)
	}
	if err := (AutoscaleConfig{Min: 5, Max: 2}).Validate(); err == nil {
		t.Error("min > max accepted")
	}
	if err := (AutoscaleConfig{ImbalanceHigh: 0.1, ImbalanceLow: 0.5}).Validate(); err == nil {
		t.Error("high <= low accepted")
	}
	if err := (AutoscaleConfig{Min: 1, Max: 8, Interval: time.Second}).Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

// TestAutoscaleNormalizesOutOfBoundsStart: a starting shard count above
// Max (New does not bound Config.Shards by the autoscale config) must be
// pulled into the bounds by the controller, not wedge it.
func TestAutoscaleNormalizesOutOfBoundsStart(t *testing.T) {
	q := New(Config{
		Workers: 8, Shards: 8,
		Autoscale: &AutoscaleConfig{Min: 1, Max: 4, Interval: 5 * time.Millisecond},
	})
	defer q.Close()
	deadline := time.Now().Add(10 * time.Second)
	for q.NumShards() > 4 {
		if time.Now().After(deadline) {
			t.Fatalf("controller never normalized shards=%d into [1, 4]", q.NumShards())
		}
		time.Sleep(time.Millisecond)
	}
}

// TestAutoscaleGrowsAndShrinks drives the controller end to end: a held
// backlog deepens the per-shard queues until the controller grows the
// table to Max, and a drained idle queue shrinks back to Min.
func TestAutoscaleGrowsAndShrinks(t *testing.T) {
	q := New(Config{
		Workers: 2, Shards: 1, QueueDepth: 4096, CacheSize: -1,
		Autoscale: &AutoscaleConfig{Min: 1, Max: 4, Interval: 5 * time.Millisecond, ImbalanceHigh: 2, ImbalanceLow: 0.5},
	})
	defer q.Close()

	// Hold both workers so submissions pile up as queue depth.
	release := make(chan struct{})
	for i := 0; i < 2; i++ {
		if _, err := q.SubmitFunc(fmt.Sprintf("hold-%d", i), func(context.Context) error { <-release; return nil }); err != nil {
			t.Fatal(err)
		}
	}
	waitRunning(t, q, 2)
	jobs := make([]*Job, 0, 32)
	for seed := uint64(0); seed < 32; seed++ {
		job, err := q.Submit(Spec{Algorithm: "reduce", N: 64, P: 2, Engine: core.EngineSim, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, job)
	}

	deadline := time.Now().Add(10 * time.Second)
	for q.NumShards() != 4 {
		if time.Now().After(deadline) {
			t.Fatalf("controller never grew the table: shards=%d pending=%d", q.NumShards(), q.pending.Load())
		}
		time.Sleep(time.Millisecond)
	}

	// Release and drain; an idle queue must shrink back to Min.
	close(release)
	for _, job := range jobs {
		if _, err := job.Wait(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	for q.NumShards() != 1 {
		if time.Now().After(deadline) {
			t.Fatalf("controller never shrank the idle table: shards=%d", q.NumShards())
		}
		time.Sleep(time.Millisecond)
	}
	m := q.Snapshot()
	if m.Autoscale == nil || m.Autoscale.Max != 4 {
		t.Errorf("metrics do not echo the autoscale config: %+v", m.Autoscale)
	}
	if m.Failed != 0 || m.Rejected != 0 {
		t.Errorf("failed=%d rejected=%d during autoscaling, want 0", m.Failed, m.Rejected)
	}
	if m.Epoch < 3 {
		t.Errorf("epoch = %d, want >= 3 (at least one grow and one shrink)", m.Epoch)
	}
}
