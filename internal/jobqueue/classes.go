package jobqueue

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"time"
)

// Class is a job's priority class, identified by name. The class set a
// queue serves is runtime configuration (Config.Classes): an ordered list
// of named classes, each with a dequeue weight and an admission quota.
// Admission control, run-queue order and latency accounting are all per
// class.
type Class string

const (
	// ClassInteractive is the latency-sensitive class of the default
	// class set and the default for specs that do not set a priority.
	ClassInteractive Class = "interactive"
	// ClassBatch is the throughput class of the default class set:
	// admitted only into its configured quota of each shard's queue depth
	// and drained only when no interactive work waits anywhere.
	ClassBatch Class = "batch"
)

// WeightStrict marks a class as strict-priority: workers drain it (in
// class-set order relative to other strict classes) before considering
// any weighted class, so it can starve everything below it. The default
// class set uses it for interactive — the degenerate "weights [∞, 1]"
// configuration that reproduces the original two-class behavior.
const WeightStrict = 0

// MaxClasses bounds the size of a class set. Sixteen is far above any
// realistic traffic taxonomy and keeps per-worker scheduling state tiny.
const MaxClasses = 16

// ErrUnknownClass reports that a submitted spec named a priority class
// the queue's class set does not contain. The error string lists the
// valid class names.
var ErrUnknownClass = errors.New("jobqueue: unknown priority class")

// ClassSpec configures one priority class of a queue's class set.
type ClassSpec struct {
	// Name identifies the class; Spec.Priority selects it by this name.
	Name Class `json:"name"`
	// Weight is the class's share of worker dequeues under contention.
	// Weighted classes (Weight >= 1) are drained deficit-weighted
	// round-robin: with every class backlogged, each worker starts
	// Weight jobs of this class per round, so class throughput is
	// proportional to weight and no weighted class starves.
	// WeightStrict (0) removes the class from the round-robin entirely:
	// it is drained ahead of every weighted class whenever it has work.
	Weight int `json:"weight"`
	// Quota sizes the class's admission lane as a fraction of each
	// shard's base queue depth (Config.QueueDepth / Config.Shards), in
	// (0, 1]; 0 selects 1.0. Every class keeps at least one slot. Lanes
	// are independent, so a flood in one class can never crowd another
	// class out of admission.
	Quota float64 `json:"quota"`
	// DefaultDeadline is the per-job execution deadline applied at
	// submit time to jobs of this class whose spec carries no Timeout of
	// its own; 0 (the default) defers to Config.DefaultTimeout. It lets
	// a latency-sensitive class fail fast while batch traffic keeps the
	// queue-wide default, without every submitter stamping timeouts.
	DefaultDeadline time.Duration `json:"default_deadline_ns,omitempty"`
}

// ClassSet is an ordered priority-class configuration. Order matters
// twice: strict classes are drained in set order, and the first class is
// the default for specs that do not name a priority (func jobs run there
// too).
type ClassSet []ClassSpec

// DefaultClasses returns the two-class set the queue uses when
// Config.Classes is empty: strict-priority interactive over weight-1
// batch confined to a batchShare admission quota. batchShare outside
// (0, 1] selects 0.5. This reproduces the original hard-coded
// interactive/batch behavior exactly.
func DefaultClasses(batchShare float64) ClassSet {
	if batchShare <= 0 || batchShare > 1 {
		batchShare = 0.5
	}
	return ClassSet{
		{Name: ClassInteractive, Weight: WeightStrict, Quota: 1},
		{Name: ClassBatch, Weight: 1, Quota: batchShare},
	}
}

// Validate checks the set: 1..MaxClasses classes, unique well-formed
// names, non-negative weights, quotas in [0, 1] (0 meaning "default to
// 1"). It does not mutate the set; New applies the quota default.
func (cs ClassSet) Validate() error {
	if len(cs) == 0 {
		return errors.New("jobqueue: class set is empty")
	}
	if len(cs) > MaxClasses {
		return fmt.Errorf("jobqueue: %d classes exceeds the limit of %d", len(cs), MaxClasses)
	}
	seen := make(map[Class]bool, len(cs))
	for i, c := range cs {
		if c.Name == "" {
			return fmt.Errorf("jobqueue: class %d has no name", i)
		}
		if strings.ContainsAny(string(c.Name), ":, \t\n") {
			return fmt.Errorf("jobqueue: class name %q contains a separator character", c.Name)
		}
		if seen[c.Name] {
			return fmt.Errorf("jobqueue: duplicate class name %q", c.Name)
		}
		seen[c.Name] = true
		if c.Weight < 0 {
			return fmt.Errorf("jobqueue: class %q has negative weight %d", c.Name, c.Weight)
		}
		if c.Quota < 0 || c.Quota > 1 {
			return fmt.Errorf("jobqueue: class %q quota %v outside [0, 1]", c.Name, c.Quota)
		}
		if c.DefaultDeadline < 0 {
			return fmt.Errorf("jobqueue: class %q has negative default deadline %v", c.Name, c.DefaultDeadline)
		}
	}
	return nil
}

// Index returns the position of the named class in the set.
func (cs ClassSet) Index(name Class) (int, bool) {
	for i, c := range cs {
		if c.Name == name {
			return i, true
		}
	}
	return 0, false
}

// Names returns the class names in set order, as a comma-separated list —
// the "valid classes" clause of rejection errors.
func (cs ClassSet) Names() string {
	names := make([]string, len(cs))
	for i, c := range cs {
		names[i] = string(c.Name)
	}
	return strings.Join(names, ", ")
}

// String renders the set in the -classes flag syntax
// ("name:weight:quota[:deadline],..." with "strict" for WeightStrict;
// the deadline segment appears only when a class sets one).
func (cs ClassSet) String() string {
	parts := make([]string, len(cs))
	for i, c := range cs {
		w := strconv.Itoa(c.Weight)
		if c.Weight == WeightStrict {
			w = "strict"
		}
		q := c.Quota
		if q == 0 {
			q = 1
		}
		parts[i] = fmt.Sprintf("%s:%s:%g", c.Name, w, q)
		if c.DefaultDeadline > 0 {
			parts[i] += ":" + c.DefaultDeadline.String()
		}
	}
	return strings.Join(parts, ",")
}

// ParseClassSet parses the -classes flag syntax: comma-separated
// "name:weight[:quota[:deadline]]" entries, where weight is a
// non-negative integer or the literal "strict" (WeightStrict), quota is
// a fraction in (0, 1] defaulting to 1, and deadline — the class's
// per-job default execution deadline — is a Go duration ("250ms", "1m")
// defaulting to none. The parsed set is validated.
func ParseClassSet(s string) (ClassSet, error) {
	var cs ClassSet
	for _, entry := range strings.Split(s, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		fields := strings.Split(entry, ":")
		if len(fields) < 2 || len(fields) > 4 {
			return nil, fmt.Errorf("jobqueue: class entry %q: want name:weight[:quota[:deadline]]", entry)
		}
		spec := ClassSpec{Name: Class(strings.TrimSpace(fields[0]))}
		w := strings.TrimSpace(fields[1])
		if w == "strict" {
			spec.Weight = WeightStrict
		} else {
			n, err := strconv.Atoi(w)
			if err != nil || n < 0 {
				return nil, fmt.Errorf("jobqueue: class %q: weight %q is not \"strict\" or a non-negative integer", spec.Name, w)
			}
			spec.Weight = n
		}
		if len(fields) >= 3 {
			q, err := strconv.ParseFloat(strings.TrimSpace(fields[2]), 64)
			if err != nil || q <= 0 || q > 1 {
				return nil, fmt.Errorf("jobqueue: class %q: quota %q outside (0, 1]", spec.Name, fields[2])
			}
			spec.Quota = q
		}
		if len(fields) == 4 {
			d, err := time.ParseDuration(strings.TrimSpace(fields[3]))
			if err != nil || d <= 0 {
				return nil, fmt.Errorf("jobqueue: class %q: deadline %q is not a positive duration", spec.Name, fields[3])
			}
			spec.DefaultDeadline = d
		}
		cs = append(cs, spec)
	}
	if err := cs.Validate(); err != nil {
		return nil, err
	}
	return cs, nil
}

// classSet is the queue's resolved view of its ClassSet: quota defaults
// applied, name→index map built, and the strict/weighted partition (both
// in set order) precomputed for the worker dequeue loop.
type classSet struct {
	specs    []ClassSpec
	index    map[Class]int
	strict   []int // classes drained ahead of the round-robin, in set order
	weighted []int // classes drained deficit-weighted round-robin, in set order
}

// resolveClasses validates and normalizes a ClassSet into its resolved
// form. A nil/empty set resolves to DefaultClasses(batchShare).
func resolveClasses(cs ClassSet, batchShare float64) (classSet, error) {
	if len(cs) == 0 {
		cs = DefaultClasses(batchShare)
	}
	if err := cs.Validate(); err != nil {
		return classSet{}, err
	}
	r := classSet{
		specs: append([]ClassSpec(nil), cs...),
		index: make(map[Class]int, len(cs)),
	}
	for i := range r.specs {
		if r.specs[i].Quota == 0 {
			r.specs[i].Quota = 1
		}
		r.index[r.specs[i].Name] = i
		if r.specs[i].Weight == WeightStrict {
			r.strict = append(r.strict, i)
		} else {
			r.weighted = append(r.weighted, i)
		}
	}
	return r, nil
}

// laneDepth sizes class c's admission lane on a shard with the given
// base depth: Quota × depth, at least one slot.
func (cs *classSet) laneDepth(c, depth int) int {
	d := int(cs.specs[c].Quota * float64(depth))
	if d < 1 {
		d = 1
	}
	return d
}
