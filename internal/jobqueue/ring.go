package jobqueue

import (
	"sync"
	"sync/atomic"
)

// submitRingCap is each shard's submit-ring capacity in frames (a power
// of two). Deep enough that a full ring means the drain side is saturated
// — at which point the publisher help-drains under the shard lock rather
// than spin — and shallow enough that a retired shard's sealed backlog
// stays a bounded re-home cost.
const submitRingCap = 1024

// ringStatus is the outcome of one publish attempt.
type ringStatus int

const (
	// ringOK: the frame is published and a drain will ingest it.
	ringOK ringStatus = iota
	// ringFull: every slot holds an unconsumed frame; the publisher
	// should help-drain under the shard lock and retry.
	ringFull
	// ringSealed: the shard was retired by a resize or closed by
	// shutdown; the publisher must re-resolve placement.
	ringSealed
)

// ringSlot is one cell of the ring. seq is the Vyukov sequence number
// that hands the slot back and forth between producers and the consumer:
// a producer claiming position t may publish into the slot when seq == t
// and marks the frame visible with seq = t+1; the consumer at position h
// consumes when seq == h+1 and recycles the slot with seq = h+capacity.
// job is plain (not atomic): the seq store/load pair orders it.
type ringSlot struct {
	seq atomic.Uint64
	job *Job
}

// submitRing is a bounded multi-producer single-consumer ring buffer: the
// lock-free publication side of a shard's batch ingest path. Producers
// (Batch.Submit on any goroutine) claim slots by CAS on tail without ever
// taking the shard lock; the single consumer — whoever holds the shard's
// mutex, a draining worker or a help-draining publisher — pops in FIFO
// order. The shard lock is what makes the consumer single.
//
// The seal protocol composes the ring with live resize and shutdown:
// producers hold mu.RLock across the whole claim-and-store so no partial
// publish can be in flight while seal holds mu exclusively, and seal
// (called only after the shard's retired/closed flag is set under the
// shard lock, which fences any in-progress locked drain) marks the ring
// closed to producers and drains every published frame for re-homing.
type submitRing struct {
	// mu is the seal gate only — it is never contended between
	// producers, which all hold the read side.
	mu     sync.RWMutex
	sealed bool
	mask   uint64
	slots  []ringSlot
	head   atomic.Uint64 // consumer position
	tail   atomic.Uint64 // producer claim position
}

// newSubmitRing builds a ring with capacity rounded up to a power of two.
func newSubmitRing(capacity int) *submitRing {
	n := 1
	for n < capacity {
		n <<= 1
	}
	r := &submitRing{mask: uint64(n - 1), slots: make([]ringSlot, n)}
	for i := range r.slots {
		r.slots[i].seq.Store(uint64(i))
	}
	return r
}

// publish offers one frame to the ring. Lock-free against other
// producers and the consumer; only seal excludes it.
func (r *submitRing) publish(job *Job) ringStatus {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if r.sealed {
		return ringSealed
	}
	for {
		t := r.tail.Load()
		slot := &r.slots[t&r.mask]
		seq := slot.seq.Load()
		switch {
		case seq == t:
			if r.tail.CompareAndSwap(t, t+1) {
				slot.job = job
				slot.seq.Store(t + 1)
				return ringOK
			}
		case seq < t:
			// The slot still holds last lap's frame: full.
			return ringFull
		default:
			// seq > t: tail moved under us; reload.
		}
	}
}

// pop removes the oldest published frame, or nil when none is visible.
// Single consumer: the caller holds the owning shard's mutex (with the
// shard neither retired nor closed), or is seal itself.
func (r *submitRing) pop() *Job {
	h := r.head.Load()
	slot := &r.slots[h&r.mask]
	if slot.seq.Load() != h+1 {
		return nil
	}
	job := slot.job
	slot.job = nil
	slot.seq.Store(h + uint64(len(r.slots)))
	r.head.Store(h + 1)
	return job
}

// empty is the consumer-side fast path: true when no published frame is
// visible. Safe to call without any lock (it only loads atomics), so the
// worker loop can skip the shard lock entirely on ring-idle iterations.
func (r *submitRing) empty() bool {
	h := r.head.Load()
	return r.slots[h&r.mask].seq.Load() != h+1
}

// seal closes the ring to producers and returns every published frame in
// FIFO order. Callable only after the owning shard's retired or closed
// flag has been set under the shard lock (so no locked drain is running
// or can start); the exclusive lock then waits out any in-flight publish,
// which means the drain below observes a fully consistent ring — no
// claimed-but-unpublished slot can exist.
func (r *submitRing) seal() []*Job {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.sealed = true
	var jobs []*Job
	for {
		j := r.pop()
		if j == nil {
			return jobs
		}
		jobs = append(jobs, j)
	}
}
