package jobqueue

import (
	"fmt"
	"runtime"
	"sort"
)

// placement is the epoch-versioned shard table: the single authority on
// which shard owns a key, a func-job name, or a job ID. It is immutable —
// a resize builds a whole new table and swaps it in atomically — so every
// reader works against one consistent epoch and "which shard?" has
// exactly one answer per epoch. Within an epoch, placement is a pure
// function of the key (hash modulo the shard count); across epochs, keys
// migrate with their cached results and in-flight entries (Resize).
type placement struct {
	// epoch counts placement generations, starting at 1 for the table
	// built by New and incremented by every successful Resize.
	epoch uint64
	// workers is the total worker count dealt across this table's shards
	// (it can only grow: a resize past the current count spawns more).
	workers int
	shards  []*shard
}

// shardIndexFor, shardIndexForName and shardIndexForID are the three
// routing rules of the system, shared verbatim between epoch lookups
// (the placement methods below) and resize migration — one source of
// truth, so migrated state can never land on a shard a lookup will not
// visit.

// shardIndexFor routes a spec key on an n-shard table.
func shardIndexFor(key Key, n int) int { return int(key.hash() % uint64(n)) }

// shardIndexForName routes a func job's name on an n-shard table.
func shardIndexForName(name string, n int) int { return int(hashString(name) % uint64(n)) }

// shardIndexForID routes a job ID on an n-shard table: the ID's birth
// shard index (its low shardBits) reduced modulo the current count —
// the rule resize migrates retention entries by, so the route stays
// valid across epochs.
func shardIndexForID(id uint64, n int) int { return int(id&(MaxShards-1)) % n }

// shardFor returns the home shard of a spec key in this epoch.
func (p *placement) shardFor(key Key) *shard {
	return p.shards[shardIndexFor(key, len(p.shards))]
}

// shardForName returns the home shard of a func job's name in this epoch.
func (p *placement) shardForName(name string) *shard {
	return p.shards[shardIndexForName(name, len(p.shards))]
}

// shardForID returns the shard retaining the job with the given ID in
// this epoch.
func (p *placement) shardForID(id uint64) *shard {
	return p.shards[shardIndexForID(id, len(p.shards))]
}

// workerHome deals worker idx its home shard: fair-share dealing, so
// every shard's worker count is within one of every other's (⌊W/N⌋ or
// ⌈W/N⌉, with the extras spread across the shard range instead of
// clustered on the low indices) and every shard gets at least one worker
// whenever workers >= shards.
func workerHome(idx, shards, workers int) int {
	return idx * shards / workers
}

// Epoch returns the current placement epoch: 1 at creation, +1 per
// successful resize. Placement is deterministic within an epoch — equal
// keys always map to one shard of the epoch's table.
func (q *Queue) Epoch() uint64 { return q.place.Load().epoch }

// NumShards returns the current shard count.
func (q *Queue) NumShards() int { return len(q.place.Load().shards) }

// Resize grows or shrinks the shard set to n, migrating state so that no
// admitted job is lost or re-executed and no cached result is orphaned:
//
//   - Completed results (the LRU caches) and in-flight coalescing entries
//     re-hash onto the new table, so a duplicate submitted after the swap
//     still cache-hits or coalesces.
//   - Admitted-but-unstarted jobs are drained from the old run queues and
//     re-enqueued on their new home shards in submission order (the new
//     lanes are sized base depth + migrated backlog, so migration can
//     never be refused by admission control).
//   - Jobs already running finish where they are; their completion flush
//     forwards through the new table (see flushCompletions), so the
//     result lands in the new home's cache.
//   - Latency samples and per-algorithm aggregates live on the workers'
//     metric shards, untouched by a resize, so merged Snapshot summaries
//     do not reset; retention entries re-route by ID.
//
// Concurrent Submit/Get/Wait observe either the old epoch or the new one,
// never a half-migrated table: old shards are retired first (late writers
// spin briefly and retry against the new table) and the new table is
// published before the old run queues close. Resizes are serialized; a
// resize to the current count is a no-op returning the current epoch.
// When autoscaling is configured, n must lie within its [Min, Max].
func (q *Queue) Resize(n int) (uint64, error) {
	q.resizeMu.Lock()
	defer q.resizeMu.Unlock()
	if q.isClosed() {
		return 0, ErrClosed
	}
	if n < 1 || n > MaxShards {
		return 0, fmt.Errorf("jobqueue: resize to %d shards outside [1, %d]", n, MaxShards)
	}
	if a := q.cfg.Autoscale; a != nil {
		if n < a.Min || n > a.Max {
			return 0, fmt.Errorf("jobqueue: resize to %d shards outside the autoscale bounds [%d, %d]", n, a.Min, a.Max)
		}
	}
	old := q.place.Load()
	if n == len(old.shards) {
		return old.epoch, nil // no-op: same table, same epoch
	}

	numClasses := len(q.classes.specs)

	// Retire the old shards: from here on no submit, settle or read lands
	// on them — late arrivals holding the old table spin until the new
	// one is published (see the retired checks in Submit, settle, Get,
	// Jobs and Snapshot). Retiring under each shard's lock fences any
	// critical section already in flight.
	for _, s := range old.shards {
		s.mu.Lock()
		s.retired = true
		s.mu.Unlock()
	}

	// Seal the retired shards' submit rings. From here on batch
	// publishers bounce off the seal and chase the new table; the frames
	// already published re-home below — after the keyed state has
	// migrated, so a re-homed frame still cache-hits and coalesces
	// against the entries that moved with its key. The seal is safe to
	// the single-consumer rule because the retired flag above fenced out
	// any locked drain in progress.
	var ringBacklog []*Job
	for _, s := range old.shards {
		ringBacklog = append(ringBacklog, s.ring.seal()...)
	}

	// Drain the admitted-but-unstarted backlog. Workers may race us for
	// individual jobs — whoever receives one owns it, so nothing is lost
	// or duplicated — and nothing new can be enqueued, so the drain
	// terminates. Jobs are bucketed by their new home shard and class.
	buckets := make([][][]*Job, n)
	for i := range buckets {
		buckets[i] = make([][]*Job, numClasses)
	}
	newIdx := func(job *Job) int {
		if job.fn == nil {
			return shardIndexFor(job.Spec.key(), n)
		}
		return shardIndexForName(job.Name, n)
	}
	for _, s := range old.shards {
		for c, ch := range s.runq {
		lane:
			for {
				select {
				case job := <-ch:
					s.pending.Add(-1)
					s.laneUsed[c].Add(-1)
					i := newIdx(job)
					buckets[i][c] = append(buckets[i][c], job)
				default:
					break lane
				}
			}
		}
	}
	for i := range buckets {
		for c := range buckets[i] {
			jobs := buckets[i][c]
			// IDs carry the global submission sequence in their high
			// bits: sorting restores submission order across the merged
			// old lanes.
			sort.Slice(jobs, func(a, b int) bool { return jobs[a].ID < jobs[b].ID })
		}
	}

	// Build the new table. Each lane's channel is sized admission depth
	// plus the migrated backlog headed there, so every drained job
	// re-enqueues without touching admission control; the admission
	// bound itself (the lane counter) stays the configured depth.
	depth := perShard(q.cfg.QueueDepth, n)
	cacheCap := 0
	if q.cfg.CacheSize > 0 {
		cacheCap = perShard(q.cfg.CacheSize, n)
	}
	retain := perShard(q.cfg.Retain, n)
	shards := make([]*shard, n)
	for i := 0; i < n; i++ {
		depths := make([]int, numClasses)
		caps := make([]int, numClasses)
		for c := range caps {
			depths[c] = q.classes.laneDepth(c, depth)
			caps[c] = depths[c] + len(buckets[i][c])
		}
		shards[i] = newShard(i, depths, caps, cacheCap, retain)
	}

	// Migrate each old shard's keyed state onto the new table. The new
	// shards are unpublished, so they need no locking yet. Latency
	// samples and per-algorithm aggregates do not migrate: they live on
	// the workers' metric shards, which a resize never touches.
	for _, s := range old.shards {
		s.mu.Lock()
		s.cache.each(func(k Key, name string, r Result) {
			shards[shardIndexFor(k, n)].cache.put(k, name, r)
		})
		for k, job := range s.inflight {
			shards[shardIndexFor(k, n)].inflight[k] = job
		}
		for _, id := range s.retained {
			ns := shards[shardIndexForID(id, n)]
			ns.retained = append(ns.retained, id)
			ns.byID[id] = s.byID[id]
		}
		// Free the migrated structures; only the executed/stolen
		// counters live on — the shard joins q.retiredShards below so
		// late increments from a racing dequeue are never lost from the
		// totals. The read index is cleared so a stale fast-path load
		// cannot outlive the shard by more than the pointer it already
		// holds (which still serves immutable, once-valid results).
		s.byID, s.inflight, s.retained = nil, nil, nil
		s.cache = newLRU(0)
		s.cacheIdx.Store(nil)
		s.mu.Unlock()
	}
	for _, ns := range shards {
		sort.Slice(ns.retained, func(a, b int) bool { return ns.retained[a] < ns.retained[b] })
		ns.trimRetention()
		for c := range buckets[ns.idx] {
			for _, job := range buckets[ns.idx][c] {
				ns.runq[c] <- job // fits by construction (lane sized above)
				ns.pending.Add(1)
				ns.laneUsed[c].Add(1)
			}
		}
	}
	// Re-home the sealed ring backlog through the full ingest pipeline on
	// the new (still unpublished, so lock-free) shards: the frames were
	// published but never admitted, so they go through cache, coalescing
	// and admission control like any fresh arrival — after the migrated
	// state and the re-enqueued backlog above, preserving their
	// publish-order position behind the already-admitted jobs. No frame
	// is lost: each is either admitted here or turned terminal by
	// admission control (ErrQueueFull), exactly as if it had drained
	// pre-resize.
	for _, j := range ringBacklog {
		q.ingestLocked(shards[shardIndexFor(j.Spec.key(), n)], old.epoch+1, j)
	}
	// Publish each new shard's lock-free read index now that its cache
	// holds the full migrated (plus re-ingested) contents, so fast-path
	// hits work from the first instant the table is visible.
	for _, ns := range shards {
		ns.republishReadIndex()
	}

	// A table wider than the worker pool would leave shards with no home
	// worker; grow the pool to keep the ≥1-worker-per-shard invariant.
	// The pool size is fixed before publication so the new table carries
	// it, but the new goroutines start only *after* the store below — a
	// worker with idx >= the old pool size must never see the old table,
	// whose workerHome would index past its shard slice.
	spawnFrom := q.totalWorkers
	if n > q.totalWorkers {
		q.totalWorkers = n
	}
	if q.totalWorkers > spawnFrom {
		// Grow the metric-shard slice before any new worker can start:
		// append-only, existing entries untouched, stored before the
		// spawns below so every worker finds its slot.
		wms := append([]*workerMetrics(nil), *q.workerM.Load()...)
		for i := spawnFrom; i < q.totalWorkers; i++ {
			wms = append(wms, newWorkerMetrics(numClasses))
		}
		q.workerM.Store(&wms)
	}

	// Publish, then close the old run queues: a worker blocked on an old
	// lane wakes on the close, sees the table moved, and re-homes. The
	// retired-generation rotation and the store happen under one
	// retiredMu critical section, so a reader that loads the table under
	// the same lock always sees the retired list holding exactly the
	// generation before its table — no window where the old epoch's
	// executed/stolen history is in neither place. The previous
	// generation is folded into the aggregate counters first (its racing
	// dequeues have long settled), so the list only ever holds one
	// generation and Snapshot / autoscaler ticks stay O(shards), not
	// O(total resizes).
	next := &placement{epoch: old.epoch + 1, workers: q.totalWorkers, shards: shards}
	q.retiredMu.Lock()
	for _, s := range q.retiredShards {
		q.retiredExec.Add(s.executed.Load())
		q.retiredStolen.Add(s.stolen.Load())
	}
	q.retiredShards = append(q.retiredShards[:0], old.shards...)
	q.place.Store(next)
	q.retiredMu.Unlock()
	for _, s := range old.shards {
		for _, ch := range s.runq {
			close(ch)
		}
	}
	for idx := spawnFrom; idx < q.totalWorkers; idx++ {
		q.workers.Add(1)
		go q.worker(idx)
	}
	q.kickWorkers()
	return next.epoch, nil
}

// trimRetention evicts terminal jobs beyond the shard's retention limit,
// oldest first, stopping at the first still-in-flight job. insertLocked
// applies it under s.mu on every insert; Resize applies it to unpublished
// shards (no lock needed) after merging several old shards' retention
// lists.
func (s *shard) trimRetention() {
	for len(s.retained) > s.limit {
		id := s.retained[0]
		if old := s.byID[id]; old != nil {
			if st := old.Status(); st != StatusDone && st != StatusFailed {
				break
			}
			delete(s.byID, id)
		}
		s.retained = s.retained[1:]
	}
}

// retiredTotals returns the current placement table together with the
// executed/stolen history of every shard retired before it. The table is
// loaded under retiredMu — Resize rotates the retired generation and
// publishes the new table under the same lock — so the history always
// pairs with the table: no epoch is counted twice or skipped, which is
// what keeps Metrics.Steals and the autoscaler's deltas monotonic.
func (q *Queue) retiredTotals() (p *placement, exec, stolen int64) {
	q.retiredMu.Lock()
	p = q.place.Load()
	exec = q.retiredExec.Load()
	stolen = q.retiredStolen.Load()
	for _, s := range q.retiredShards {
		exec += s.executed.Load()
		stolen += s.stolen.Load()
	}
	q.retiredMu.Unlock()
	return p, exec, stolen
}

// retryPlacement is the spin hint for readers and writers that caught a
// shard mid-retirement: yield, reload the table, try again. The window is
// the migration body of Resize — microseconds of copying, never I/O.
func retryPlacement() { runtime.Gosched() }
