package experiments

import (
	"context"
	"fmt"
	"sort"
	"time"

	"lopram/internal/jobqueue"
	"lopram/internal/trace"
)

// A6: tunable starvation bounds — the serving-layer ablation for the
// N-weighted-class generalization. A single worker faces a saturating
// pre-loaded backlog of three classes and drains it under
// deficit-weighted round-robin; the dequeue share each class receives
// must track its configured weight. Two weight assignments (one the
// reverse of the other) show the bound is configuration, not code: the
// same "bronze" traffic is throttled to 1/7 of dequeues in the first
// config and promoted to 4/7 in the second, and no class ever starves —
// the knob the old strict-priority dequeue (which the default
// interactive/batch set still reproduces via a strict class) did not
// have.
func A6(quick bool) Report {
	perClass := 28
	window := 21 // 3 full DWRR rounds of weight-sum 7
	if quick {
		perClass = 14
		window = 14
	}
	type config struct {
		label   string
		weights [3]int // gold, silver, bronze
	}
	configs := []config{
		{"4:2:1", [3]int{4, 2, 1}},
		{"1:2:4", [3]int{1, 2, 4}},
	}
	if quick {
		configs = configs[:1]
	}

	tb := trace.NewTable("weights", "class", "weight", "window starts", "share", "want", "err")
	pass := true
	verdict := ""
	for _, cfg := range configs {
		names := []jobqueue.Class{"gold", "silver", "bronze"}
		set := jobqueue.ClassSet{
			{Name: names[0], Weight: cfg.weights[0], Quota: 1},
			{Name: names[1], Weight: cfg.weights[1], Quota: 1},
			{Name: names[2], Weight: cfg.weights[2], Quota: 1},
		}
		starts, err := drainBacklog(set, perClass)
		if err != nil {
			return Report{ID: "A6", Title: "weighted-class starvation bounds",
				Pass: false, Verdict: fmt.Sprintf("config %s: %v", cfg.label, err)}
		}
		counts := make(map[jobqueue.Class]int)
		for _, c := range starts[:window] {
			counts[c]++
		}
		weightSum := cfg.weights[0] + cfg.weights[1] + cfg.weights[2]
		for i, name := range names {
			got := float64(counts[name]) / float64(window)
			want := float64(cfg.weights[i]) / float64(weightSum)
			relErr := (got - want) / want
			tb.AddRow(cfg.label, string(name), cfg.weights[i], counts[name],
				fmt.Sprintf("%.2f", got), fmt.Sprintf("%.2f", want), fmt.Sprintf("%+.0f%%", 100*relErr))
			if relErr < -0.20 || relErr > 0.20 {
				pass = false
				verdict = fmt.Sprintf("config %s: class %s share %.2f off its weight share %.2f by more than 20%%",
					cfg.label, name, got, want)
			}
			if counts[name] == 0 {
				pass = false
				verdict = fmt.Sprintf("config %s: class %s (weight %d) starved", cfg.label, name, cfg.weights[i])
			}
		}
	}
	if verdict == "" {
		verdict = fmt.Sprintf("per-class dequeue share tracks configured weight within 20%% in a %d-dequeue window under full backlog; lowest-weight class never starves", window)
	}
	return Report{
		ID:    "A6",
		Title: "weighted-class starvation bounds",
		Claim: "generalizing §3.1's fixed activation order to runtime weighted classes makes starvation bounds tunable: under saturation each class's throughput is proportional to its configured weight, and every weighted class keeps progressing",
		Table: tb, Pass: pass, Verdict: verdict,
	}
}

// drainBacklog builds a 1-worker, 1-shard queue over the class set,
// pre-loads perClass equal-cost jobs into every class while the worker
// is held, releases, and returns the classes of all jobs in start order
// — the dequeue sequence the worker chose.
func drainBacklog(set jobqueue.ClassSet, perClass int) ([]jobqueue.Class, error) {
	q := jobqueue.New(jobqueue.Config{
		Workers: 1, Shards: 1,
		QueueDepth: 4 * len(set) * perClass,
		CacheSize:  -1, // every job executes: starts measure dequeues
		Classes:    set,
	})
	defer q.Close()

	release := make(chan struct{})
	blocker, err := q.SubmitFunc("a6-blocker", func(context.Context) error {
		<-release
		return nil
	})
	if err != nil {
		return nil, err
	}
	deadline := time.Now().Add(10 * time.Second)
	for q.Snapshot().Running == 0 {
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("worker never started the blocker")
		}
		time.Sleep(time.Millisecond)
	}

	var jobs []*jobqueue.Job
	seed := uint64(0)
	for i := 0; i < perClass; i++ {
		for _, cs := range set {
			seed++
			job, err := q.Submit(jobqueue.Spec{
				Algorithm: "reduce", N: 256, P: 2, Engine: "sim",
				Seed: seed, Priority: cs.Name,
			})
			if err != nil {
				return nil, fmt.Errorf("submitting %s job: %w", cs.Name, err)
			}
			jobs = append(jobs, job)
		}
	}
	close(release)
	if _, err := blocker.Wait(context.Background()); err != nil {
		return nil, err
	}

	type rec struct {
		class jobqueue.Class
		view  jobqueue.View
	}
	recs := make([]rec, 0, len(jobs))
	for _, job := range jobs {
		if _, err := job.Wait(context.Background()); err != nil {
			return nil, fmt.Errorf("%s: %w", job.Name, err)
		}
		recs = append(recs, rec{job.Spec.Priority, job.View()})
	}
	sort.Slice(recs, func(i, j int) bool { return recs[i].view.Started.Before(recs[j].view.Started) })
	out := make([]jobqueue.Class, len(recs))
	for i, r := range recs {
		out[i] = r.class
	}
	return out, nil
}
