package experiments

import (
	"fmt"

	"lopram/internal/dp"
	"lopram/internal/sim"
	"lopram/internal/trace"
	"lopram/internal/workload"
)

// dpSimSteps runs Algorithm 1 for the spec on a p-processor simulator.
func dpSimSteps(s dp.Spec, p int) int64 {
	g := dp.BuildGraph(s)
	prog, _ := dp.Program(s, g, dp.SimOptions{})
	m := sim.New(sim.Config{P: p})
	return m.MustRun(prog).Steps
}

// E8: parallel DP over the edit-distance table (diagonal antichains) — the
// flagship §4.4 experiment: Algorithm 1 achieves near-optimal speedup.
func E8(quick bool) Report {
	r := workload.NewRNG(8)
	sizes := []int{48, 96, 144}
	procs := []int{1, 2, 4, 8}
	if quick {
		sizes = sizes[:2]
	}
	tb := trace.NewTable("string length", "cells", "longest chain", "p",
		"T_p (sim steps)", "speedup", "efficiency")
	pass := true
	for _, n := range sizes {
		a, b := workload.RelatedStrings(r, n, 4, n/8)
		spec := dp.NewEditDistance(a, b)
		g := dp.BuildGraph(spec)
		chain, _ := g.LongestChain()
		t1 := dpSimSteps(spec, 1)
		for _, p := range procs {
			tp := dpSimSteps(spec, p)
			speedup := float64(t1) / float64(tp)
			eff := speedup / float64(p)
			if p > 1 && (eff < 0.65 || speedup > float64(p)+1e-9) {
				pass = false
			}
			tb.AddRow(n, spec.Cells(), chain, p, tp,
				fmt.Sprintf("%.2f", speedup), fmt.Sprintf("%.2f", eff))
		}
	}
	return Report{
		ID:      "E8",
		Title:   "Parallel DP via Algorithm 1: edit distance (diagonal antichains)",
		Claim:   "§4.3/§4.4 — 2-D tables expose diagonal antichains; the counter scheduler attains speedup ≈ p for p = O(log n)",
		Table:   tb,
		Pass:    pass,
		Verdict: "efficiency ≥ 0.65 at every (n, p) with no superlinear artifacts",
	}
}

// E9: the degenerate 1-D chain — no speedup possible (§4.3).
func E9() Report {
	spec := dp.NewPrefixSum(make([]int64, 400))
	g := dp.BuildGraph(spec)
	pr, _ := g.ParallelismProfile()
	t1 := dpSimSteps(spec, 1)
	tb := trace.NewTable("p", "T_p (sim steps)", "speedup")
	pass := pr.CriticalPath == 400 && pr.MaxWidth == 1
	for _, p := range []int{1, 2, 4, 8, 16} {
		tp := dpSimSteps(spec, p)
		speedup := float64(t1) / float64(tp)
		if speedup > 1.05 {
			pass = false
		}
		tb.AddRow(p, tp, fmt.Sprintf("%.3f", speedup))
	}
	return Report{
		ID:      "E9",
		Title:   "1-D chain DP: the DAG is a path, no speedup",
		Claim:   "§4.3 — \"in certain cases, such as one dimensional dynamic programming, the DAG is a path and hence there is no speedup possible\"",
		Table:   tb,
		Pass:    pass,
		Verdict: fmt.Sprintf("critical path %d = cell count, max antichain width %d, speedup pinned at 1.0", pr.CriticalPath, pr.MaxWidth),
	}
}

// E10: interval DP (matrix chain ordering) — length-diagonal antichains with
// shrinking width; speedup still near p while the diagonal width exceeds p.
func E10(quick bool) Report {
	r := workload.NewRNG(10)
	sizes := []int{24, 40}
	if quick {
		sizes = sizes[:1]
	}
	tb := trace.NewTable("matrices", "cells", "antichain layers", "widest layer",
		"p", "T_p (sim)", "speedup", "efficiency")
	pass := true
	for _, n := range sizes {
		dims := workload.ChainDims(r, n, 4, 50)
		spec := dp.NewMatrixChain(dims)
		g := dp.BuildGraph(spec)
		pr, _ := g.ParallelismProfile()
		t1 := dpSimSteps(spec, 1)
		for _, p := range []int{1, 2, 4, 8} {
			tp := dpSimSteps(spec, p)
			speedup := float64(t1) / float64(tp)
			eff := speedup / float64(p)
			// The last p-1 diagonals have width < p, so perfect
			// efficiency is impossible; 0.55 reflects the profile.
			if p > 1 && (eff < 0.55 || speedup > float64(p)+1e-9) {
				pass = false
			}
			tb.AddRow(n, spec.Cells(), pr.CriticalPath, pr.MaxWidth, p, tp,
				fmt.Sprintf("%.2f", speedup), fmt.Sprintf("%.2f", eff))
		}
	}
	return Report{
		ID:      "E10",
		Title:   "Interval DP: matrix chain ordering (length-diagonal antichains)",
		Claim:   "§4.2–§4.4 — Bradford's problem family parallelizes through the generic DAG scheduler; antichains are the interval-length diagonals",
		Table:   tb,
		Pass:    pass,
		Verdict: "speedup tracks p while diagonal widths exceed p; efficiency ≥ 0.55 everywhere",
	}
}

// E14: parallel dependency-graph construction is perfectly parallel —
// O(m·n^d / p) as §4.4 claims.
func E14() Report {
	r := workload.NewRNG(14)
	a, b := workload.RelatedStrings(r, 128, 4, 16)
	spec := dp.NewEditDistance(a, b)
	steps := func(p int) int64 {
		m := sim.New(sim.Config{P: p})
		return m.MustRun(dp.BuildProgram(spec, p)).Steps
	}
	t1 := steps(1)
	tb := trace.NewTable("p", "build steps", "speedup", "efficiency")
	pass := true
	for _, p := range []int{1, 2, 4, 8, 16} {
		tp := steps(p)
		speedup := float64(t1) / float64(tp)
		eff := speedup / float64(p)
		if p > 1 && eff < 0.85 {
			pass = false
		}
		tb.AddRow(p, tp, fmt.Sprintf("%.2f", speedup), fmt.Sprintf("%.2f", eff))
	}
	return Report{
		ID:      "E14",
		Title:   "Parallel dependency-graph construction",
		Claim:   "§4.4 — \"the dependencies graph can be determined in parallel optimally by all p processors in time O(m·n^d/p)\"",
		Table:   tb,
		Pass:    pass,
		Verdict: "construction has no cross-cell dependencies: efficiency ≥ 0.85 at every p",
	}
}
