package experiments

import (
	"context"
	"fmt"

	"lopram/internal/jobqueue"
	"lopram/internal/scenario"
	"lopram/internal/trace"
)

// A5: the serving-layer ablation — one declarative scenario replayed
// against 1, 2 and 4 queue shards. The paper's scheduler arguments are
// about fixed-p machines; this is the same question one level up: does
// splitting the dispatch lock change what is computed? It must not — the
// executed-job count and hit rate are placement-invariant (key-hash
// placement keeps duplicates meeting on one shard), while throughput and
// steal counts are free to move with the shard count.
func A5(quick bool) Report {
	sp, ok := scenario.Builtin("cache-friendly-repeat")
	if !ok {
		return Report{ID: "A5", Title: "scenario replay across shard counts",
			Pass: false, Verdict: "builtin scenario cache-friendly-repeat missing"}
	}
	sp.Jobs = 150
	if quick {
		sp.Jobs = 60
	}

	tb := trace.NewTable("shards", "jobs", "executed", "hit rate", "steals", "jobs/sec")
	pass := true
	var baseExecuted int64
	var baseHitRate float64
	verdict := ""
	for _, shards := range []int{1, 2, 4} {
		sp.Shards = shards
		cfg := scenario.QueueConfig(sp)
		q := jobqueue.New(cfg)
		rep, err := scenario.Run(context.Background(), q, sp)
		q.Close()
		if err != nil {
			return Report{ID: "A5", Title: "scenario replay across shard counts",
				Pass: false, Verdict: fmt.Sprintf("replay at %d shards failed: %v", shards, err)}
		}
		tb.AddRow(shards, rep.Jobs, rep.Executed, fmt.Sprintf("%.0f%%", 100*rep.HitRate),
			rep.Steals, fmt.Sprintf("%.0f", rep.JobsPerSec))
		if rep.Failures != 0 || rep.Rejected != 0 {
			pass = false
			verdict = fmt.Sprintf("%d failures / %d rejections at %d shards", rep.Failures, rep.Rejected, shards)
		}
		if shards == 1 {
			baseExecuted, baseHitRate = rep.Executed, rep.HitRate
		} else if rep.Executed != baseExecuted || rep.HitRate != baseHitRate {
			pass = false
			verdict = fmt.Sprintf("shards=%d changed the traffic: executed %d (base %d), hit rate %.3f (base %.3f)",
				shards, rep.Executed, baseExecuted, rep.HitRate, baseHitRate)
		}
	}
	if verdict == "" {
		verdict = fmt.Sprintf("executed=%d and hit rate=%.0f%% identical across 1/2/4 shards; only timing moved",
			baseExecuted, 100*baseHitRate)
	}
	return Report{
		ID:    "A5",
		Title: "scenario replay across shard counts",
		Claim: "sharding the dispatch queue changes throughput, never the computation: executed jobs and hit rate are placement-invariant",
		Table: tb, Pass: pass, Verdict: verdict,
	}
}
