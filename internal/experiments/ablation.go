package experiments

import (
	"fmt"
	"runtime"
	"time"

	"lopram/internal/dandc"
	"lopram/internal/dp"
	"lopram/internal/palrt"
	"lopram/internal/sim"
	"lopram/internal/trace"
	"lopram/internal/workload"
)

// A1: spawn policy ablation — the paper's processor-bounded handoff (inline
// when no core is free) versus naive spawn-everything. Measures goroutine
// pressure and wall clock on real mergesort.
func A1(quick bool) Report {
	n := 1 << 20
	if quick {
		n = 1 << 18
	}
	r := workload.NewRNG(21)
	base := workload.Ints(r, n, 1<<30)
	p := runtime.GOMAXPROCS(0)
	if p > 8 {
		p = 8
	}

	// Work-stealing palthreads policy (the current runtime).
	rt := palrt.New(p)
	a := append([]int(nil), base...)
	start := time.Now()
	dandc.MergeSort(rt, a)
	palTime := time.Since(start)
	sched := rt.StatsSnapshot()

	// Permit-channel policy: the runtime this package used before the
	// deque scheduler — same §3.1 semantics, one goroutine per handoff.
	prt := palrt.NewPermit(p)
	c := append([]int(nil), base...)
	start = time.Now()
	permitMergeSort(prt, c, make([]int, len(c)))
	permitTime := time.Since(start)
	permitSpawned, permitInline := prt.Stats()

	// Naive policy: one goroutine per recursive call down to the grain.
	b := append([]int(nil), base...)
	start = time.Now()
	naiveMergeSort(b, make([]int, len(b)))
	naiveTime := time.Since(start)

	pass := dandc.IsSorted(a) && dandc.IsSorted(b) && dandc.IsSorted(c)
	tb := trace.NewTable("policy", "wall time", "children spawned", "run inline", "goroutines created")
	tb.AddRow("work-stealing deques (current)", palTime.Round(time.Microsecond),
		fmt.Sprintf("%d (%d stolen)", sched.Spawned, sched.Stolen), sched.Inlined, sched.WorkersStarted)
	tb.AddRow("permit channel (previous)", permitTime.Round(time.Microsecond),
		permitSpawned, permitInline, fmt.Sprintf("%d (one per spawn)", permitSpawned))
	tb.AddRow("always-spawn (naive)", naiveTime.Round(time.Microsecond),
		fmt.Sprintf("%d (one per call)", 2*(n/(1<<11))-1), 0, 2*(n/(1<<11))-1)

	return Report{
		ID:    "A1",
		Title: "Ablation: processor-bounded handoff vs spawn-everything",
		Claim: "design choice §3.1 — the scheduler never tests for free cores explicitly; the handoff naturally bounds live threads by p",
		Table: tb,
		Pass:  pass,
		Verdict: fmt.Sprintf("handoff kept live pal-threads ≤ %d (spawned %d, stolen %d, inlined %d) on %d worker goroutines; naive created thousands of goroutines for the same work",
			p, sched.Spawned, sched.Stolen, sched.Inlined, sched.WorkersStarted),
	}
}

// permitMergeSort is mergesort over the permit-channel baseline runtime,
// with the same grain as dandc.MergeSort's parallel recursion.
func permitMergeSort(rt *palrt.PermitRT, a, tmp []int) {
	if len(a) <= 1<<11 {
		dandc.MergeSortSeq(a)
		return
	}
	mid := len(a) / 2
	rt.Do(
		func() { permitMergeSort(rt, a[:mid], tmp[:mid]) },
		func() { permitMergeSort(rt, a[mid:], tmp[mid:]) },
	)
	mergeInto(a, tmp, mid)
}

func naiveMergeSort(a, tmp []int) {
	if len(a) <= 1<<11 {
		dandc.MergeSortSeq(a)
		return
	}
	mid := len(a) / 2
	palrt.AlwaysSpawn(
		func() { naiveMergeSort(a[:mid], tmp[:mid]) },
		func() { naiveMergeSort(a[mid:], tmp[mid:]) },
	)
	mergeInto(a, tmp, mid)
}

// mergeInto merges the sorted halves a[:mid] and a[mid:] through tmp.
func mergeInto(a, tmp []int, mid int) {
	i, j, k := 0, mid, 0
	for i < mid && j < len(a) {
		if a[j] < a[i] {
			tmp[k] = a[j]
			j++
		} else {
			tmp[k] = a[i]
			i++
		}
		k++
	}
	copy(tmp[k:], a[i:mid])
	copy(tmp[k+mid-i:], a[j:])
	copy(a, tmp)
}

// A2: DP scheduler ablation — Algorithm 1's counters vs the level-barrier
// antichain sweep, on the goroutine runtime (wall clock) and for table
// equality.
func A2(quick bool) Report {
	r := workload.NewRNG(22)
	n := 600
	if quick {
		n = 250
	}
	a, b := workload.RelatedStrings(r, n, 4, n/10)
	spec := dp.NewEditDistance(a, b)
	g := dp.BuildGraph(spec)
	p := runtime.GOMAXPROCS(0)
	if p > 8 {
		p = 8
	}

	start := time.Now()
	counterVals, err1 := dp.RunCounter(spec, g, p)
	counterTime := time.Since(start)

	rt := palrt.New(p)
	start = time.Now()
	levelVals, err2 := dp.RunLevels(spec, g, rt)
	levelTime := time.Since(start)

	pass := err1 == nil && err2 == nil
	for i := range counterVals {
		if counterVals[i] != levelVals[i] {
			pass = false
			break
		}
	}

	tb := trace.NewTable("scheduler", "wall time", "table cells", "result")
	tb.AddRow("Algorithm 1 counters", counterTime.Round(time.Microsecond), spec.Cells(),
		boolWord(err1 == nil, "ok", "error"))
	tb.AddRow("antichain level barrier", levelTime.Round(time.Microsecond), spec.Cells(),
		boolWord(err2 == nil, "ok", "error"))

	return Report{
		ID:      "A2",
		Title:   "Ablation: counter scheduler (Algorithm 1) vs level-barrier sweep",
		Claim:   "design choice §4.4 — counters avoid the per-level barrier; both compute the same table",
		Table:   tb,
		Pass:    pass,
		Verdict: "both schedulers produce identical tables; relative timing is host-dependent (barrier loses when antichains are narrow)",
	}
}

// A3: activation-order ablation on the simulator — preorder (paper default)
// vs FIFO vs LIFO global activation, holding the local handoff rules fixed.
func A3() Report {
	tb := trace.NewTable("program", "p", "preorder T_p", "fifo T_p", "lifo T_p")
	pass := true
	r := workload.NewRNG(23)

	edA, edB := workload.RelatedStrings(r, 32, 4, 5)
	// Each run needs a fresh program: DP programs carry per-run counter
	// state, so the factory is invoked once per (policy, p) pair.
	progs := []struct {
		name string
		mk   func() sim.Func
	}{
		{"mergesort n=256", func() sim.Func {
			cm := dandc.CostModel{Rec: dandc.Mergesort(), SpawnDepth: -1}
			return cm.Program(256)
		}},
		{"dp editdist 32×32", func() sim.Func {
			spec := dp.NewEditDistance(edA, edB)
			g := dp.BuildGraph(spec)
			prog, _ := dp.Program(spec, g, dp.SimOptions{})
			return prog
		}},
	}
	for _, pr := range progs {
		for _, p := range []int{2, 4, 8} {
			steps := map[sim.Policy]int64{}
			for _, pol := range []sim.Policy{sim.Preorder, sim.FIFO, sim.LIFO} {
				m := sim.New(sim.Config{P: p, Policy: pol})
				steps[pol] = m.MustRun(pr.mk()).Steps
			}
			// All policies must stay within Brent's window of each
			// other: the local handoff rules do the heavy lifting,
			// which is itself a finding worth recording.
			ratio := float64(steps[sim.LIFO]) / float64(steps[sim.Preorder])
			if ratio > 1.5 || ratio < 0.66 {
				pass = false
			}
			tb.AddRow(pr.name, p, steps[sim.Preorder], steps[sim.FIFO], steps[sim.LIFO])
		}
	}
	return Report{
		ID:      "A3",
		Title:   "Ablation: global activation order (preorder vs FIFO vs LIFO)",
		Claim:   "design choice §3.1 — default activation follows the preorder of the thread tree; alternatives consistent with greedy scheduling stay within a constant",
		Table:   tb,
		Pass:    pass,
		Verdict: "the parent→child handoff dominates scheduling; global order changes T_p by < 1.5× on both program shapes",
	}
}

// A4: counter representation ablation — plain per-edge accounting vs the
// §4.6 CREW-safe log p charge, quantifying the simulated cost of CREW
// correctness for Algorithm 1.
func A4() Report {
	r := workload.NewRNG(24)
	a, b := workload.RelatedStrings(r, 64, 4, 8)
	spec := dp.NewEditDistance(a, b)
	g := dp.BuildGraph(spec)
	tb := trace.NewTable("p", "plain counters T_p", "CREW-safe T_p", "slowdown", "log2(p) bound")
	pass := true
	for _, p := range []int{2, 4, 8, 16} {
		run := func(opt dp.SimOptions) int64 {
			prog, _ := dp.Program(spec, g, opt)
			m := sim.New(sim.Config{P: p})
			return m.MustRun(prog).Steps
		}
		plain := run(dp.SimOptions{})
		safe := run(dp.SimOptions{CrewCounters: true, P: p})
		slow := float64(safe) / float64(plain)
		bound := float64(ceilLog2(p))
		if bound < 1 {
			bound = 1
		}
		if safe < plain || slow > bound+0.01 {
			pass = false
		}
		tb.AddRow(p, plain, safe, fmt.Sprintf("%.2f", slow), bound)
	}
	return Report{
		ID:      "A4",
		Title:   "Ablation: plain vs CREW-safe counter updates",
		Claim:   "§4.6 — CREW-safe counter maintenance costs at most a log p factor over unguarded updates",
		Table:   tb,
		Pass:    pass,
		Verdict: "the CREW-safe charge slows Algorithm 1 by ≤ log2(p), never speeding it up",
	}
}
