package experiments

import (
	"fmt"
	"strings"

	"lopram/internal/dandc"
	"lopram/internal/master"
	"lopram/internal/sim"
	"lopram/internal/trace"
)

// msortFig is the Figure 1 cost model: unit divide/base work, free merge.
func msortFig(n int) sim.Func {
	return func(tc *sim.TC) {
		tc.Work(1)
		if n <= 1 {
			return
		}
		tc.Do(msortFig(n/2), msortFig(n-n/2))
	}
}

// E1 reproduces Figure 1: the execution tree of mergesort with n = 16 and
// p = 4 at time t = 6, plus the complete activation numbering.
func E1() Report {
	m := sim.New(sim.Config{P: 4, Trace: true})
	res := m.MustRun(msortFig(16))
	tr := res.Trace

	snapshot := trace.RenderTree(tr, 4, 6)
	labels := trace.RenderLabels(tr, 4)
	gantt := trace.Gantt(tr, res.Steps+1)

	// Verify every label of the figure.
	want := map[string]int64{"": 1, "0": 2, "1": 2, "0.0": 3, "0.1": 3, "1.0": 3, "1.1": 3}
	for _, x := range []string{"0.0", "0.1", "1.0", "1.1"} {
		want[x+".0"], want[x+".0.0"], want[x+".0.1"] = 4, 5, 6
		want[x+".1"], want[x+".1.0"], want[x+".1.1"] = 7, 8, 9
	}
	pass := true
	mismatches := 0
	for key, at := range want {
		n := tr.Node(parsePath(key)...)
		if n == nil || n.ActivatedAt != at {
			pass = false
			mismatches++
		}
	}

	tb := trace.NewTable("node (path)", "figure label", "simulated activation")
	for _, key := range []string{"", "0", "0.0", "0.0.0", "0.0.0.0", "0.0.0.1", "0.0.1", "0.0.1.0", "0.0.1.1"} {
		n := tr.Node(parsePath(key)...)
		tb.AddRow("root/"+key, want[key], n.ActivatedAt)
	}

	return Report{
		ID:    "E1",
		Title: "Figure 1: mergesort execution tree, n=16, p=4, snapshot at t=6",
		Claim: "§3.1 Fig. 1 — pal-request activation order and node colours of the palthreads mergesort",
		Table: tb,
		Extra: snapshot + "\nfull numbering:\n" + labels + "\nGantt:\n" + gantt,
		Pass:  pass,
		Verdict: fmt.Sprintf("all 31 node labels and the t=6 colour classes match the figure (%d mismatches)",
			mismatches),
	}
}

// E2 reproduces Figure 2: the spawn frontier of a divide-and-conquer
// execution sits at depth log_a p, with sequential execution below.
func E2() Report {
	tb := trace.NewTable("p", "frontier depth log2(p)", "distinct activation steps ≤ frontier",
		"staggered activations below frontier")
	pass := true
	var notes []string
	for _, p := range []int{2, 4, 8} {
		m := sim.New(sim.Config{P: p, Trace: true})
		cm := dandc.CostModel{Rec: dandc.Mergesort(), SpawnDepth: -1}
		res := m.MustRun(cm.Program(1 << 8))
		k := master.FrontierDepth(p, 2)

		byDepth := map[int]map[int64]bool{}
		for _, n := range res.Trace.Nodes() {
			d := len(n.Path)
			if byDepth[d] == nil {
				byDepth[d] = map[int64]bool{}
			}
			byDepth[d][n.ActivatedAt] = true
		}
		uniform := true
		for d := 0; d <= k; d++ {
			if len(byDepth[d]) != 1 {
				uniform = false
			}
		}
		staggered := len(byDepth[k+1]) > 1
		if !uniform || !staggered {
			pass = false
		}
		tb.AddRow(p, k, boolWord(uniform, "1 per level", "ragged"),
			boolWord(staggered, "yes", "no"))
		notes = append(notes, fmt.Sprintf("p=%d: levels 0..%d lock-step, level %d staggered",
			p, k, k+1))
	}
	return Report{
		ID:      "E2",
		Title:   "Figure 2: spawn frontier at a^k = p, sequential below",
		Claim:   "§4.1 Fig. 2 — threads spawn until a^k = p calls exist; thereafter each thread runs the sequential algorithm",
		Table:   tb,
		Pass:    pass,
		Verdict: strings.Join(notes, "; "),
	}
}

func boolWord(b bool, yes, no string) string {
	if b {
		return yes
	}
	return no
}

func parsePath(s string) []int32 {
	if s == "" {
		return nil
	}
	var path []int32
	cur := int32(0)
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == '.' {
			path = append(path, cur)
			cur = 0
			continue
		}
		cur = cur*10 + int32(s[i]-'0')
	}
	return path
}
