package experiments

import (
	"fmt"

	"lopram/internal/crew"
	"lopram/internal/dp"
	"lopram/internal/memo"
	"lopram/internal/palrt"
	"lopram/internal/trace"
	"lopram/internal/workload"
)

// E11: parallel memoization (§4.5) — exactly-once computation, bounded probe
// overhead, and laziness (only reachable sub-problems computed).
func E11() Report {
	r := workload.NewRNG(11)
	dims := workload.ChainDims(r, 18, 4, 40)
	spec := dp.NewMatrixChain(dims)
	root := spec.Cells() - 1
	reach := memo.Reachable(spec, root)
	var edges int64
	for v := 0; v < spec.Cells(); v++ {
		edges += int64(len(spec.Deps(v, nil)))
	}
	want := dp.MatrixChain(dims)

	tb := trace.NewTable("p", "computes", "reachable", "probes", "edge bound",
		"hits", "value correct")
	pass := true
	for _, p := range []int{1, 2, 4, 8} {
		rt := palrt.New(p)
		got, st := memo.Run(rt, spec, root)
		okVal := got == want
		okOnce := st.Computes == reach
		okProbe := st.Probes <= edges
		if !okVal || !okOnce || !okProbe {
			pass = false
		}
		tb.AddRow(p, st.Computes, reach, st.Probes, edges, st.Hits,
			boolWord(okVal, "yes", "NO"))
	}

	// Laziness: a sub-interval query must not touch the full table.
	n := len(dims) - 1
	subID := 0
	for l := 0; l < n/2; l++ {
		subID += n - l
	}
	rt := palrt.New(4)
	_, st := memo.Run(rt, spec, subID)
	lazyOK := st.Computes < int64(spec.Cells())
	if !lazyOK {
		pass = false
	}

	return Report{
		ID:    "E11",
		Title: "Parallel memoization: exactly-once, probe overhead, laziness",
		Claim: "§4.5 — each sub-problem computed once; at most k−1 probes for a value shared by k consumers; top-down evaluation touches only reachable sub-problems",
		Table: tb,
		Pass:  pass,
		Verdict: fmt.Sprintf("computes == reachable at every p; probes ≤ dependency edges; sub-interval query computed %d of %d cells",
			st.Computes, spec.Cells()),
	}
}

// E12: the CRCW-on-CREW combining tree costs exactly ⌈log₂ p⌉ steps per
// concurrent batch (§4.6's slowdown factor).
func E12() Report {
	tb := trace.NewTable("concurrent writers k", "combining steps", "⌈log2 k⌉", "CREW violations")
	pass := true
	for _, k := range []int{1, 2, 3, 4, 7, 8, 16, 32, 64} {
		mem := crew.NewMemory(4*k+4, crew.Record)
		tree, _ := crew.NewCombiningTree(mem, 0, k, crew.Sum)
		mem.Tick()
		for proc := 0; proc < k; proc++ {
			tree.Deposit(proc, proc, 1)
		}
		got, steps := tree.Combine(0)
		wantSteps := ceilLog2(k)
		ok := got == int64(k) && steps == wantSteps && len(mem.Violations()) == 0
		if k > 1 && steps != wantSteps {
			ok = false
		}
		if !ok {
			pass = false
		}
		tb.AddRow(k, steps, wantSteps, len(mem.Violations()))
	}
	return Report{
		ID:      "E12",
		Title:   "CRCW simulation on CREW: log p combining",
		Claim:   "§4.5/§4.6 — concurrent updates to one shared value serialize through standard CRCW-on-CREW simulation with an O(log p) factor (Fich–Ragde–Wigderson)",
		Table:   tb,
		Pass:    pass,
		Verdict: "combining steps equal ⌈log2 k⌉ at every width and the CREW auditor observes no violation",
	}
}

func ceilLog2(k int) int {
	if k <= 1 {
		return 0
	}
	l := 0
	for v := k - 1; v > 0; v >>= 1 {
		l++
	}
	return l
}
