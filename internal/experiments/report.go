// Package experiments implements the reproduction suite: one function per
// experiment of EXPERIMENTS.md (E1–E18) plus the design-choice ablations
// (A1–A8; A5 is the serving-layer scenario/sharding ablation, A6 the
// weighted-priority-class starvation-bound ablation, A7 the live
// shard-resize invariance ablation, A8 the cost-model calibration the
// predicted-cost scheduling policies rest on). Each
// returns a Report with the regenerated table and a Check verdict
// comparing the measured shape against the paper's claim, so both
// cmd/lopram-bench and the test suite consume the same code path.
package experiments

import (
	"fmt"
	"strings"

	"lopram/internal/trace"
)

// Report is the outcome of one experiment.
type Report struct {
	// ID is the experiment id (E1…E14, A1…A4).
	ID string
	// Title is a one-line description.
	Title string
	// Claim is the paper's claim being reproduced, with its section.
	Claim string
	// Table is the regenerated data.
	Table *trace.Table
	// Extra holds non-tabular artifacts (rendered trees, Gantt charts).
	Extra string
	// Pass reports whether the measured shape matches the claim.
	Pass bool
	// Verdict explains the pass/fail decision quantitatively.
	Verdict string
}

// String renders the report as a Markdown section.
func (r Report) String() string {
	var b strings.Builder
	status := "PASS"
	if !r.Pass {
		status = "FAIL"
	}
	fmt.Fprintf(&b, "## %s — %s [%s]\n\n", r.ID, r.Title, status)
	fmt.Fprintf(&b, "Paper claim: %s\n\n", r.Claim)
	if r.Table != nil {
		b.WriteString(r.Table.String())
		b.WriteString("\n")
	}
	if r.Extra != "" {
		b.WriteString("```\n")
		b.WriteString(r.Extra)
		if !strings.HasSuffix(r.Extra, "\n") {
			b.WriteString("\n")
		}
		b.WriteString("```\n\n")
	}
	fmt.Fprintf(&b, "Verdict: %s\n", r.Verdict)
	return b.String()
}

// SuiteIDs returns the ids of the full suite in canonical order:
// E1–E18 then the ablations A1–A8.
func SuiteIDs() []string {
	return []string{
		"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9",
		"E10", "E11", "E12", "E13", "E14", "E15", "E16", "E17", "E18",
		"A1", "A2", "A3", "A4", "A5", "A6", "A7", "A8",
	}
}

// All runs the entire suite in order. The quick flag trims the most
// expensive parameter sweeps (used by tests; cmd/lopram-bench runs full).
func All(quick bool) []Report {
	reports := make([]Report, 0, len(SuiteIDs()))
	for _, id := range SuiteIDs() {
		r, _ := ByID(id, quick)
		reports = append(reports, r)
	}
	return reports
}

// ByID returns the experiment with the given id, running it on demand.
func ByID(id string, quick bool) (Report, bool) {
	funcs := map[string]func() Report{
		"E1":  E1,
		"E2":  E2,
		"E3":  func() Report { return E3(quick) },
		"E4":  func() Report { return E4(quick) },
		"E5":  func() Report { return E5(quick) },
		"E6":  func() Report { return E6(quick) },
		"E7":  E7,
		"E8":  func() Report { return E8(quick) },
		"E9":  E9,
		"E10": func() Report { return E10(quick) },
		"E11": E11,
		"E12": E12,
		"E13": func() Report { return E13(quick) },
		"E14": E14,
		"E15": func() Report { return E15(quick) },
		"E16": E16,
		"E17": E17,
		"E18": E18,
		"A1":  func() Report { return A1(quick) },
		"A2":  func() Report { return A2(quick) },
		"A3":  A3,
		"A4":  A4,
		"A5":  func() Report { return A5(quick) },
		"A6":  func() Report { return A6(quick) },
		"A7":  func() Report { return A7(quick) },
		"A8":  func() Report { return A8(quick) },
	}
	f, ok := funcs[strings.ToUpper(id)]
	if !ok {
		return Report{}, false
	}
	return f(), true
}
