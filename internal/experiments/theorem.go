package experiments

import (
	"fmt"

	"lopram/internal/core"
	"lopram/internal/dandc"
	"lopram/internal/master"
	"lopram/internal/sim"
	"lopram/internal/trace"
)

// theoremSweep runs one Master-case recurrence across n and p, measuring
// simulated wall-clock against the exact Eq(3)/Eq(5) predictor and the
// theorem's speedup claim.
func theoremSweep(id, title, claim string, rec master.IntRec, mode dandc.MergeMode,
	sizes []int64, procs []int, wantOptimal bool, quick bool) Report {

	if quick {
		sizes = sizes[:1]
		procs = []int{1, 2, 4}
	}
	tb := trace.NewTable("n", "p", "T_seq", "T_p (sim)", "T_p (predicted)",
		"speedup", "efficiency", "theorem bound")
	pass := true
	worst := ""
	for _, n := range sizes {
		seq := rec.Seq(n)
		for _, p := range procs {
			frontier := master.FrontierDepth(p, rec.A)
			cm := dandc.CostModel{Rec: rec, Mode: mode, SpawnDepth: frontier + 2}
			if mode == dandc.ParMerge {
				cm.MergeChunks = p
			}
			m := sim.New(sim.Config{P: p})
			res := m.MustRun(cm.Program(n))

			predicted := int64(-1)
			if p == 1 || master.IsPowerOf(p, rec.A) {
				if mode == dandc.ParMerge {
					predicted = rec.ParParMerge(n, p)
				} else {
					predicted = rec.ParSeqMerge(n, p)
				}
				if res.Steps != predicted {
					pass = false
					worst = fmt.Sprintf("n=%d p=%d: sim %d != predicted %d", n, p, res.Steps, predicted)
				}
			}

			speedup := float64(seq) / float64(res.Steps)
			eff := speedup / float64(p)
			bound := "Θ(f(n))"
			if wantOptimal {
				bound = "O(T/p)"
				if speedup > float64(p)+1e-9 {
					pass = false
					worst = fmt.Sprintf("n=%d p=%d: superlinear %.2f", n, p, speedup)
				}
				if p > 1 && speedup < 0.5*float64(p) {
					pass = false
					worst = fmt.Sprintf("n=%d p=%d: speedup %.2f below p/2", n, p, speedup)
				}
			} else if p > 1 {
				// Case 3 sequential merge: T_p pinned to Θ(f(n)).
				f := rec.Merge(n)
				if float64(res.Steps) < float64(f) || float64(res.Steps) > 2.2*float64(f) {
					pass = false
					worst = fmt.Sprintf("n=%d p=%d: T_p=%d not within [f, 2.2f], f=%d", n, p, res.Steps, f)
				}
			}
			predStr := "-"
			if predicted >= 0 {
				predStr = fmt.Sprintf("%d", predicted)
			}
			tb.AddRow(n, p, seq, res.Steps, predStr,
				fmt.Sprintf("%.2f", speedup), fmt.Sprintf("%.2f", eff), bound)
		}
	}
	verdict := "simulated T_p equals the exact Eq(3)/Eq(5) predictor for p = a^k and the speedup shape matches the theorem"
	if !pass {
		verdict = "MISMATCH: " + worst
	}
	return Report{ID: id, Title: title, Claim: claim, Table: tb, Pass: pass, Verdict: verdict}
}

// E3: Theorem 1, Case 1 — T(n) = 4T(n/2) + n; leaves dominate; optimal
// speedup via the straightforward parallelization.
func E3(quick bool) Report {
	return theoremSweep("E3",
		"Theorem 1 Case 1: T(n) = 4T(n/2) + n",
		"§4.1 Eq. 4 Case 1 — f(n) = O(n^{log_b a - ε}) ⇒ T_p = O(T(n)/p)",
		dandc.Case1Rec(), dandc.SeqMerge,
		[]int64{1 << 10, 1 << 12, 1 << 14}, []int{1, 2, 4, 8, 16}, true, quick)
}

// E4: Theorem 1, Case 2 — mergesort.
func E4(quick bool) Report {
	return theoremSweep("E4",
		"Theorem 1 Case 2: T(n) = 2T(n/2) + n (mergesort)",
		"§4.1 Eq. 4 Case 2 — f(n) = Θ(n^{log_b a}) ⇒ T_p = O(T(n)/p)",
		dandc.Mergesort(), dandc.SeqMerge,
		[]int64{1 << 16, 1 << 18, 1 << 20}, []int{1, 2, 4, 8}, true, quick)
}

// E5: Theorem 1, Case 3 with sequential merging — no speedup.
func E5(quick bool) Report {
	return theoremSweep("E5",
		"Theorem 1 Case 3 (sequential merge): T(n) = 2T(n/2) + n²",
		"§4.1 Eq. 4 Case 3 — f(n) = Ω(n^{log_b a + ε}) with regularity ⇒ T_p = Θ(f(n)): no speedup",
		dandc.Case3Rec(), dandc.SeqMerge,
		[]int64{1 << 9, 1 << 11, 1 << 12}, []int{1, 2, 4, 8, 16}, false, quick)
}

// E6: Equation 5 — the same Case 3 recurrence with parallel merging regains
// optimal speedup Θ(f(n)/p).
func E6(quick bool) Report {
	return theoremSweep("E6",
		"Equation 5 (parallel merge): T(n) = 2T(n/2) + n²",
		"§4.1 Eq. 5 — parallelizable merge ⇒ T_p = Θ(f(n)/p): optimal speedup restored",
		dandc.Case3Rec(), dandc.ParMerge,
		[]int64{1 << 9, 1 << 11, 1 << 12}, []int{1, 2, 4, 8, 16}, true, quick)
}

// E7 probes the p = O(log n) premise (§3.2): with n fixed, speedup tracks p
// while p ≤ log₂ n and the marginal gain collapses as p grows past it, and
// the b^{log_a p} ≥ n saturation boundary of the Theorem 1 proof is where
// parallelism runs out entirely.
func E7() Report {
	rec := dandc.Mergesort()
	const n = int64(1 << 10) // log2 n = 10
	seq := rec.Seq(n)
	tb := trace.NewTable("p", "p ≤ log2(n)?", "T_p (sim)", "speedup",
		"marginal speedup vs previous p", "saturated (b^{log_a p} ≥ n)")
	pass := true
	var inModel, outModel []float64
	prev := float64(seq)
	for _, p := range []int{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024} {
		m := sim.New(sim.Config{P: p})
		frontier := master.FrontierDepth(p, rec.A)
		cm := dandc.CostModel{Rec: rec, SpawnDepth: frontier + 2}
		res := m.MustRun(cm.Program(n))
		speedup := float64(seq) / float64(res.Steps)
		marginal := prev / float64(res.Steps)
		prev = float64(res.Steps)
		within := core.WithinModel(p, int(n))
		sat := core.SpawnSaturated(float64(n), p, float64(rec.A), float64(rec.B))
		if within {
			inModel = append(inModel, speedup/float64(p))
		} else if p >= 64 {
			outModel = append(outModel, marginal)
		}
		tb.AddRow(p, boolWord(within, "yes", "no"), res.Steps,
			fmt.Sprintf("%.2f", speedup), fmt.Sprintf("%.3f", marginal),
			boolWord(sat, "yes", "no"))
	}
	// Within the model: efficiency ≥ 0.5. Far outside: marginal gain from
	// doubling p below 1.35 (diminishing returns).
	for _, e := range inModel {
		if e < 0.5 {
			pass = false
		}
	}
	for _, mg := range outModel {
		if mg > 1.35 {
			pass = false
		}
	}
	return Report{
		ID:    "E7",
		Title: "The p = O(log n) premise: speedup saturation past log n",
		Claim: "§3.2/§4.1 — the analysis assumes p = O(log n); beyond it the sequential component vanishes (b^{log_a p} ≥ n would need p ≥ n^{log_b a})",
		Table: tb,
		Pass:  pass,
		Verdict: fmt.Sprintf("efficiency ≥ 0.5 for all p ≤ log2(n); marginal speedup collapses toward 1 for p ≫ log n (n=%d)",
			n),
	}
}
