package experiments

import (
	"context"
	"fmt"

	"lopram/internal/jobqueue"
)

// wallClock lists the experiments whose verdicts depend on host wall-clock
// timing; QueueSuite runs them after the queue has drained so concurrent
// experiments cannot distort their measurements. Everything else measures
// deterministic simulated steps and parallelizes freely.
var wallClock = map[string]bool{"E13": true, "A8": true}

// QueueSuite runs the full reproduction suite (SuiteIDs order) through a
// job queue instead of sequentially: each experiment is one job dispatched
// across the queue's worker pool, so the suite doubles as a load test of
// the dispatch layer while the queue's admission control and deadlines
// apply to every experiment. Reports come back in canonical order. An
// error is returned only for dispatch failures (queue closed or saturated,
// experiment deadline exceeded); an experiment that runs and FAILs is a
// report, not an error.
func QueueSuite(q *jobqueue.Queue, quick bool) ([]Report, error) {
	ids := SuiteIDs()
	reports := make([]Report, len(ids))

	dispatch := func(pick func(id string) bool) error {
		jobs := make(map[int]*jobqueue.Job)
		for i, id := range ids {
			if !pick(id) {
				continue
			}
			i, id := i, id
			job, err := q.SubmitFunc("experiment:"+id, func(ctx context.Context) error {
				r, ok := ByID(id, quick)
				if !ok {
					return fmt.Errorf("unknown experiment %q", id)
				}
				reports[i] = r
				return nil
			})
			if err != nil {
				return fmt.Errorf("experiments: submitting %s: %w", id, err)
			}
			jobs[i] = job
		}
		for i, job := range jobs {
			if _, err := job.Wait(context.Background()); err != nil {
				return fmt.Errorf("experiments: running %s: %w", ids[i], err)
			}
		}
		return nil
	}

	// Phase 1: the deterministic experiments, fanned out across workers.
	if err := dispatch(func(id string) bool { return !wallClock[id] }); err != nil {
		return nil, err
	}
	// Phase 2: wall-clock experiments on a drained queue.
	if err := dispatch(func(id string) bool { return wallClock[id] }); err != nil {
		return nil, err
	}
	return reports, nil
}
