package experiments

import (
	"fmt"
	"runtime"
	"time"

	"lopram/internal/dandc"
	"lopram/internal/palrt"
	"lopram/internal/trace"
	"lopram/internal/workload"
)

// E13: the real-hardware shape check — wall-clock speedup of the goroutine
// runtime on the host for parallel mergesort and closest pair. Absolute
// numbers depend on the machine; the reproduction criterion is the shape:
// speedup grows with p and parallel beats sequential by a wide margin at the
// largest p (memory bandwidth, not the scheduler, caps sorting speedups on
// real hardware).
func E13(quick bool) Report {
	n := 1 << 21
	reps := 3
	if quick {
		n = 1 << 19
		reps = 1
	}
	host := runtime.GOMAXPROCS(0)
	if host < 2 {
		// A single-core host cannot exhibit wall-clock speedup, so the
		// shape check is vacuous; report the situation rather than a
		// spurious failure.
		return Report{
			ID:    "E13",
			Title: "Goroutine runtime wall-clock speedups on the host",
			Claim: "shape check — the palthreads construction yields real speedups on a multicore host for Case 1/2 algorithms, growing with p up to memory-bandwidth limits",
			Pass:  true,
			Verdict: fmt.Sprintf("host has %d core; wall-clock speedup is unmeasurable, shape check skipped "+
				"(the deterministic-simulator experiments E3–E6 cover the speedup claims)", host),
		}
	}
	procs := []int{1, 2, 4, 8, 16}
	var usable []int
	for _, p := range procs {
		if p <= host {
			usable = append(usable, p)
		}
	}

	r := workload.NewRNG(13)
	base := workload.Ints(r, n, 1<<30)
	pts := workload.Points(r, n/4)

	tb := trace.NewTable("algorithm", "n", "p", "wall time", "speedup vs p=1")
	pass := true

	// minAtMaxP is the per-algorithm floor on the speedup at the largest
	// p. Mergesort's merge is the only serial component, so it must clear
	// 1.5×. Closest pair additionally pays a serial Θ(n) y-split in its
	// divide step and is allocation-bound, so Eq. (3) with f(n) = Θ(n)
	// charged twice predicts a weaker constant; 1.25× is the shape floor.
	measure := func(name string, minAtMaxP float64, run func(p int)) {
		var t1 time.Duration
		var prevSpeedup float64
		for _, p := range usable {
			best := time.Duration(1<<62 - 1)
			for rep := 0; rep < reps; rep++ {
				start := time.Now()
				run(p)
				if d := time.Since(start); d < best {
					best = d
				}
			}
			if p == 1 {
				t1 = best
			}
			speedup := float64(t1) / float64(best)
			tb.AddRow(name, n, p, best.Round(time.Microsecond), fmt.Sprintf("%.2f", speedup))
			if p == usable[len(usable)-1] && speedup < minAtMaxP {
				pass = false // no parallel benefit at all: shape broken
			}
			if p > 1 && speedup < prevSpeedup*0.7 {
				pass = false // speedup collapsed when adding processors
			}
			prevSpeedup = speedup
		}
	}

	measure("mergesort", 1.5, func(p int) {
		a := append([]int(nil), base...)
		rt := palrt.New(p)
		if p == 1 {
			dandc.MergeSortSeq(a)
		} else {
			dandc.MergeSort(rt, a)
		}
	})
	measure("closest pair", 1.25, func(p int) {
		rt := palrt.New(p)
		if p == 1 {
			dandc.ClosestPairSeq(pts)
		} else {
			dandc.ClosestPair(rt, pts)
		}
	})

	return Report{
		ID:    "E13",
		Title: "Goroutine runtime wall-clock speedups on the host",
		Claim: "shape check — the palthreads construction yields real speedups on a multicore host for Case 1/2 algorithms, growing with p up to memory-bandwidth limits",
		Table: tb,
		Pass:  pass,
		Verdict: fmt.Sprintf("host has %d cores; speedup grows with p (mergesort ≥ 1.5×, closest pair ≥ 1.25× at max p; "+
			"closest pair carries a serial Θ(n) y-split per divide and is allocation-bound)", host),
	}
}
