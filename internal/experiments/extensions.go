package experiments

import (
	"fmt"
	"runtime"
	"time"

	"lopram/internal/dandc"
	"lopram/internal/dp"
	"lopram/internal/master"
	"lopram/internal/memo"
	"lopram/internal/network"
	"lopram/internal/palrt"
	"lopram/internal/pram"
	"lopram/internal/sim"
	"lopram/internal/trace"
	"lopram/internal/workload"
)

// E15: the decomposition, not the problem, owns the parallelism. Prefix
// sums as a 1-D DP is a chain (E9: speedup 1); the same function as a
// two-pass divide and conquer is a tree recurrence with optimal speedup.
// Measured on the simulator via cost models and on the host via wall clock.
func E15(quick bool) Report {
	tb := trace.NewTable("formulation", "engine", "p", "time", "speedup")
	pass := true

	// Simulator: chain DP.
	chainSpec := dp.NewPrefixSum(make([]int64, 300))
	g := dp.BuildGraph(chainSpec)
	chainT1 := int64(0)
	for _, p := range []int{1, 4, 8} {
		prog, _ := dp.Program(chainSpec, g, dp.SimOptions{})
		st := sim.New(sim.Config{P: p}).MustRun(prog).Steps
		if p == 1 {
			chainT1 = st
		}
		sp := float64(chainT1) / float64(st)
		if p > 1 && sp > 1.05 {
			pass = false
		}
		tb.AddRow("1-D DP (chain DAG)", "sim", p, fmt.Sprintf("%d steps", st), fmt.Sprintf("%.2f", sp))
	}

	// Simulator: D&C scan cost model — two passes of T(n)=2T(n/2)+1 with
	// leaf segments of grain work.
	scanRec := master.IntRec{
		A: 2, B: 2, Cutoff: 4,
		Divide: dandc.Unit,
		Merge:  dandc.Unit,
		Base:   func(n int64) int64 { return n },
	}
	var scanT1 int64
	for _, p := range []int{1, 4, 8} {
		frontier := master.FrontierDepth(p, 2)
		cm := dandc.CostModel{Rec: scanRec, SpawnDepth: frontier + 2}
		st := 2 * sim.New(sim.Config{P: p}).MustRun(cm.Program(300)).Steps // up + down sweeps
		if p == 1 {
			scanT1 = st
		}
		sp := float64(scanT1) / float64(st)
		if p == 8 && sp < 4 {
			pass = false
		}
		tb.AddRow("D&C two-pass scan", "sim", p, fmt.Sprintf("%d steps", st), fmt.Sprintf("%.2f", sp))
	}

	// Host wall clock for the real implementations.
	n := 1 << 24
	if quick {
		n = 1 << 22
	}
	r := workload.NewRNG(15)
	data := workload.Int64s(r, n)
	for i := range data {
		data[i] %= 1000
	}
	var t1 time.Duration
	host := runtime.GOMAXPROCS(0)
	for _, p := range []int{1, 4, 8} {
		if p > host {
			break
		}
		best := time.Duration(1<<62 - 1)
		for rep := 0; rep < 3; rep++ {
			rt := palrt.New(p)
			start := time.Now()
			if p == 1 {
				dandc.PrefixSumsSeq(data)
			} else {
				dandc.PrefixSums(rt, data)
			}
			if d := time.Since(start); d < best {
				best = d
			}
		}
		if p == 1 {
			t1 = best
		}
		sp := float64(t1) / float64(best)
		tb.AddRow("D&C two-pass scan", "host", p, best.Round(time.Microsecond), fmt.Sprintf("%.2f", sp))
	}

	return Report{
		ID:      "E15",
		Title:   "Chain DP vs two-pass D&C: same function, different DAG",
		Claim:   "§4.3 — the chain admits no speedup; reformulating the decomposition recovers it (the antichain structure of the chosen DAG is what the framework parallelizes)",
		Table:   tb,
		Pass:    pass,
		Verdict: "chain formulation pinned at speedup 1.0; D&C formulation reaches ≥ 4× at p=8 on the simulator",
	}
}

// E16: Brent-emulated PRAM algorithms vs native LoPRAM algorithms. The
// PRAM scan (Hillis–Steele) does Θ(n log n) work, so even under a perfect
// Brent emulation it loses a log n factor to the work-optimal LoPRAM scan —
// the quantitative core of the paper's §1/§2 motivation.
func E16() Report {
	const n = 1 << 12
	r := workload.NewRNG(16)
	in := workload.Int64s(r, n)
	for i := range in {
		in[i] %= 1000
	}

	tb := trace.NewTable("algorithm", "work", "span (steps)", "p", "T_p", "vs LoPRAM scan")
	pass := true

	// LoPRAM scan cost model: 2 passes, work ≈ 2n + 2·(#internal nodes).
	scanRec := master.IntRec{
		A: 2, B: 2, Cutoff: 4,
		Divide: dandc.Unit, Merge: dandc.Unit,
		Base: func(sz int64) int64 { return sz },
	}
	lopramT := map[int]int64{}
	for _, p := range []int{1, 4, 16} {
		frontier := master.FrontierDepth(p, 2)
		cm := dandc.CostModel{Rec: scanRec, SpawnDepth: frontier + 2}
		lopramT[p] = 2 * sim.New(sim.Config{P: p}).MustRun(cm.Program(n)).Steps
		tb.AddRow("LoPRAM D&C scan", 2*scanRec.Seq(n), "2·depth", p, lopramT[p], "1.00")
	}

	prog := pram.HillisSteele{Input: in}
	for _, p := range []int{1, 4, 16} {
		res := pram.Emulate(prog, p)
		// Correctness of the emulation.
		scan := prog.Scan(res)
		want := dandc.PrefixSumsSeq(in)
		for i := range want {
			if scan[i] != want[i] {
				pass = false
			}
		}
		ratio := float64(res.TimeP) / float64(lopramT[p])
		if ratio < 2 { // log2(4096) = 12; constants eat some of it
			pass = false
		}
		tb.AddRow("Brent-emulated Hillis–Steele", res.Work, res.Steps, p, res.TimeP,
			fmt.Sprintf("%.2f× slower", ratio))
	}

	// List ranking: same story for a pointer problem.
	lr := pram.ListRanking{Succ: chainSucc(n)}
	for _, p := range []int{4} {
		res := pram.Emulate(lr, p)
		seqWork := int64(n) // a RAM walks the list once
		tb.AddRow("Brent-emulated pointer jumping", res.Work, res.Steps, p, res.TimeP,
			fmt.Sprintf("PRAM work %d vs RAM %d", res.Work, seqWork))
		if res.Work < int64(n)*int64(log2int(n)) {
			pass = false
		}
	}

	return Report{
		ID:      "E16",
		Title:   "Brent's Lemma emulation of Θ(n)-processor PRAM algorithms",
		Claim:   "§1/§2 — classic PRAM algorithms are work-suboptimal (Θ(n log n) for Θ(n)-work problems); on p = O(log n) processors the Brent emulation loses the log factor that native LoPRAM algorithms keep",
		Table:   tb,
		Pass:    pass,
		Verdict: "emulated PRAM scan is ≥ 2× slower than the work-optimal LoPRAM scan at every p (asymptotically log n ×), while producing identical results",
	}
}

func chainSucc(n int) []int {
	next := make([]int, n)
	for i := 0; i < n-1; i++ {
		next[i] = i + 1
	}
	next[n-1] = n - 1
	return next
}

func log2int(v int) int {
	l := 0
	for v > 1 {
		v >>= 1
		l++
	}
	return l
}

// E17: the complete-graph realizability claim — wiring cost of full
// connectivity for p = ⌊log₂ n⌋ versus the PRAM's p = n.
func E17() Report {
	tb := trace.NewTable("n", "model", "p", "links", "degree", "diameter", "all-to-all rounds")
	pass := true
	for _, n := range []int{1 << 10, 1 << 16, 1 << 20, 1 << 30} {
		lop, pr := network.CompareModels(n)
		tb.AddRow(n, "LoPRAM complete graph", lop.P, lop.Links, lop.Degree, lop.Diameter, lop.AllToAll)
		tb.AddRow(n, "PRAM complete graph", pr.P, pr.Links, pr.Degree, pr.Diameter, pr.AllToAll)
		if lop.Links > int64(lop.P*lop.P) || pr.Links < int64(n/2)*int64(n/4) {
			pass = false
		}
	}
	// Contrast with cheaper topologies at LoPRAM scale: even they are
	// unnecessary — the complete graph is already tiny.
	for _, kind := range []network.Topology{network.Complete, network.Ring, network.Hypercube} {
		net, err := network.New(32, kind)
		if err != nil {
			pass = false
			continue
		}
		f := net.Feasible()
		tb.AddRow("p=32", kind.String(), f.P, f.Links, f.Degree, f.Diameter, f.AllToAll)
	}
	return Report{
		ID:      "E17",
		Title:   "Interconnect realizability: complete graph at p = O(log n)",
		Claim:   "§1 — \"with this bound in place a full processor network based on the complete graph is realizable\"; the PRAM's Θ(n) processors would need Θ(n²) links",
		Table:   tb,
		Pass:    pass,
		Verdict: "LoPRAM full connectivity costs O(log² n) links (≤ 435 even at n = 2³⁰) and 1-hop diameter; PRAM wiring grows quadratically in n",
	}
}

// E18: §4.5 memoization on the machine — step counts for the lazy top-down
// strategy against bottom-up Algorithm 1, including the laziness advantage
// on sub-queries and the exactly-once/probe accounting under determinism.
func E18() Report {
	r := workload.NewRNG(18)
	dims := workload.ChainDims(r, 16, 3, 25)
	spec := dp.NewMatrixChain(dims)
	full := spec.Cells() - 1
	n := len(dims) - 1
	subID := 0
	for l := 0; l < n/3; l++ {
		subID += n - l
	}
	want := dp.MatrixChain(dims)

	runMemo := func(root, p int) (int64, *memo.SimStats, int64) {
		prog, vals, stats := memo.Program(spec, root)
		m := sim.New(sim.Config{P: p})
		res := m.MustRun(prog)
		return vals[root], stats, res.Steps
	}
	runBottomUp := func(p int) int64 {
		g := dp.BuildGraph(spec)
		prog, _ := dp.Program(spec, g, dp.SimOptions{})
		m := sim.New(sim.Config{P: p})
		return m.MustRun(prog).Steps
	}

	tb := trace.NewTable("strategy", "query", "p", "steps", "computes", "probes", "hits")
	pass := true
	for _, p := range []int{1, 4, 8} {
		v, st, steps := runMemo(full, p)
		if v != want || st.Computes != memo.Reachable(spec, full) {
			pass = false
		}
		tb.AddRow("memoized (top-down)", "full chain", p, steps, st.Computes, st.Probes, st.Hits)
	}
	for _, p := range []int{1, 4, 8} {
		tb.AddRow("Algorithm 1 (bottom-up)", "full chain", p, runBottomUp(p), spec.Cells(), "-", "-")
	}
	subReach := memo.Reachable(spec, subID)
	for _, p := range []int{4} {
		_, st, steps := runMemo(subID, p)
		if st.Computes != subReach {
			pass = false
		}
		fullSteps := runBottomUp(p)
		if steps*2 > fullSteps {
			pass = false // laziness should save at least half on this sub-query
		}
		tb.AddRow("memoized (top-down)", fmt.Sprintf("prefix interval (%d cells)", subReach),
			p, steps, st.Computes, st.Probes, st.Hits)
	}

	return Report{
		ID:      "E18",
		Title:   "Simulated memoization (§4.5): lazy top-down vs bottom-up step counts",
		Claim:   "§4.5 — each sub-problem computed once with in-progress claims and notify-waits; memoization evaluates only reachable sub-problems, which bottom-up evaluation cannot",
		Table:   tb,
		Pass:    pass,
		Verdict: "values and exactly-once accounting hold at every p; the sub-query runs in < half the bottom-up steps",
	}
}
