package experiments

import (
	"strings"
	"testing"
	"time"

	"lopram/internal/jobqueue"
)

// TestAllExperimentsPass runs the complete suite in quick mode — dispatched
// through the job queue, so the reproduction suite doubles as a load test
// of the serving layer — and requires every reproduction to report PASS:
// this is the repository's end-to-end claim that the paper's results hold.
func TestAllExperimentsPass(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment suite skipped in -short mode")
	}
	q := jobqueue.New(jobqueue.Config{Workers: 4, DefaultTimeout: 10 * time.Minute})
	defer q.Close()
	reports, err := QueueSuite(q, true)
	if err != nil {
		t.Fatalf("dispatching the suite: %v", err)
	}
	ids := SuiteIDs()
	if len(reports) != len(ids) {
		t.Fatalf("got %d reports, want %d", len(reports), len(ids))
	}
	for i, rep := range reports {
		if rep.ID != ids[i] {
			t.Errorf("report %d: id %s, want %s (order must be canonical)", i, rep.ID, ids[i])
		}
		if !rep.Pass {
			t.Errorf("%s (%s) FAILED: %s\n%s", rep.ID, rep.Title, rep.Verdict, rep.String())
		}
	}
	if m := q.Snapshot(); m.Completed != int64(len(ids)) || m.Failed != 0 {
		t.Errorf("queue metrics: completed %d failed %d, want %d/0", m.Completed, m.Failed, len(ids))
	}
}

func TestReportRendering(t *testing.T) {
	rep := E9()
	out := rep.String()
	for _, want := range []string{"## E9", "PASS", "Paper claim:", "Verdict:", "| p "} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func TestByID(t *testing.T) {
	rep, ok := ByID("e9", true)
	if !ok || rep.ID != "E9" {
		t.Fatalf("ByID(e9) = %v, %v", rep.ID, ok)
	}
	if _, ok := ByID("E99", true); ok {
		t.Fatal("unknown id accepted")
	}
}

func TestFigure1ExtrasRendered(t *testing.T) {
	rep := E1()
	if !strings.Contains(rep.Extra, "[1]") || !strings.Contains(rep.Extra, "Gantt") {
		t.Fatalf("E1 extras incomplete:\n%s", rep.Extra)
	}
	if !rep.Pass {
		t.Fatalf("E1 failed: %s", rep.Verdict)
	}
}
