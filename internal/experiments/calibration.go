package experiments

import (
	"fmt"
	"sort"
	"time"

	"lopram/internal/core"
	"lopram/internal/jobcost"
	"lopram/internal/trace"
)

// A8: the cost-model calibration experiment behind the predicted-cost
// scheduling policies (jobqueue's sjf dequeue and the token-bucket
// admission's infeasibility shed). The policies assume jobcost.Predict's
// abstract work units are proportional to measured wall time per engine
// — one scale constant away from a clock. This experiment measures that
// claim: for each (algorithm, engine) series it runs log-spaced input
// sizes, regresses measured wall time against predicted units through
// the origin (jobcost.Fit), and reports the fitted ns/unit scale with
// R² and MAPE. High R² and low MAPE mean a single calibrated constant
// (what jobqueue's EWMA calibrator tracks online) turns the static
// predictor into a usable wall-clock oracle.
func A8(quick bool) Report {
	type series struct {
		algo   string
		engine core.Engine
		sizes  []int
	}
	// Series are chosen from the engines whose wall time actually grows
	// with the predicted units: palrt executes the real algorithm, pram
	// simulates the full n·lg²n network, and the sim engine's DP entries
	// build the whole Θ(n²) dependence graph. The sim engine's
	// divide-and-conquer entries are deliberately absent: they truncate
	// the program below the spawn frontier, so their wall time is nearly
	// size-independent even though their *simulated* step counts (what
	// Outcome.Steps reports, and what the paper's claims are about) are
	// exact — there is no wall clock there to calibrate against.
	// The editdistance sizes start at 192, not the engine's floor: the
	// fit is through the origin, so a fixed per-run setup cost (program
	// construction, simulator boot — magnified ~10x under the race
	// detector) shows up as pure relative error on the smallest points
	// and needs enough Θ(n²) work to amortize against.
	set := []series{
		{"editdistance", core.EngineSim, []int{192, 256, 384, 512}},
		{"mergesort", core.EnginePalrt, []int{1 << 13, 1 << 15, 1 << 17, 1 << 19}},
		{"prefixsums", core.EnginePalrt, []int{1 << 14, 1 << 16, 1 << 18, 1 << 20}},
		{"reduce", core.EnginePalrt, []int{1 << 14, 1 << 16, 1 << 18, 1 << 20}},
		{"mergesort", core.EnginePRAM, []int{1 << 8, 1 << 10, 1 << 12, 1 << 14}},
	}
	reps := 3
	if quick {
		reps = 1
		for i := range set {
			set[i].sizes = set[i].sizes[:3]
		}
	}

	const p = 4
	tb := trace.NewTable("engine", "algorithm", "points", "ns/unit", "R²", "MAPE")
	pass := true
	verdict := ""
	worstR2, worstMAPE := 1.0, 0.0
	for _, s := range set {
		var units, walls []float64
		for _, n := range s.sizes {
			est := jobcost.Predict(s.algo, s.engine, n, p)
			if !est.Known {
				return Report{ID: "A8", Title: "cost-model calibration",
					Pass: false, Verdict: fmt.Sprintf("%s/%s outside the cost model", s.algo, s.engine)}
			}
			// Median-of-reps wall time: one warm-up-free, outlier-robust
			// sample per size.
			samples := make([]float64, 0, reps)
			for r := 0; r < reps; r++ {
				start := time.Now()
				if _, err := core.RunAlgorithm(s.algo, s.engine, n, p, uint64(r+1)); err != nil {
					return Report{ID: "A8", Title: "cost-model calibration",
						Pass: false, Verdict: fmt.Sprintf("%s/%s n=%d: %v", s.algo, s.engine, n, err)}
				}
				samples = append(samples, float64(time.Since(start)))
			}
			sort.Float64s(samples)
			units = append(units, est.Units)
			walls = append(walls, samples[len(samples)/2])
		}
		scale, r2, mape, ok := jobcost.Fit(units, walls)
		if !ok {
			pass = false
			verdict = fmt.Sprintf("%s/%s: degenerate fit", s.algo, s.engine)
		}
		tb.AddRow(string(s.engine), s.algo, len(units),
			fmt.Sprintf("%.1f", scale), fmt.Sprintf("%.3f", r2), fmt.Sprintf("%.0f%%", 100*mape))
		if r2 < worstR2 {
			worstR2 = r2
		}
		if mape > worstMAPE {
			worstMAPE = mape
		}
	}
	// The bar: the fit must explain the variance (R² ≥ 0.9 — sizes span
	// orders of magnitude, so a wrong growth rate collapses R² hard) and
	// the per-point error must stay inside what an EWMA calibrator
	// absorbs (MAPE ≤ 50%).
	if worstR2 < 0.9 || worstMAPE > 0.5 {
		pass = false
	}
	if verdict == "" {
		verdict = fmt.Sprintf("worst-case fit across series: R²=%.3f, MAPE=%.0f%% (bar: R²≥0.9, MAPE≤50%%)",
			worstR2, 100*worstMAPE)
	}
	return Report{
		ID:    "A8",
		Title: "cost-model calibration: predicted units vs measured wall time",
		Claim: "per engine, jobcost's predicted work units are proportional to wall time — one fitted scale turns the static predictor into the wall-clock oracle the sjf/edf policies and the admission shed consume",
		Table: tb, Pass: pass, Verdict: verdict,
	}
}
