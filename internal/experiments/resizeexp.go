package experiments

import (
	"context"
	"fmt"

	"lopram/internal/jobqueue"
	"lopram/internal/scenario"
	"lopram/internal/trace"
)

// A7: live elasticity — the serving-layer ablation for the epoch-based
// placement table. The LoPRAM argument is that optimal speedup should
// survive a low, varying degree of parallelism without hand-tuning p;
// the serving analogue is a shard set that changes size mid-stream. The
// mid-run-resize scenario replays a duplicate-heavy stream across a
// 1→4→2 live resize, and the replay must be computation-invariant: no
// submission lost, every distinct key executed exactly once (in-flight
// coalescing entries and cached results migrate with their keys), every
// duplicate served without execution, and the final report identical in
// traffic accounting to a fixed-shard replay of the byte-identical
// stream. Placement itself must be deterministic per epoch: two queues
// taken through the same resize sequence place every key identically.
// Throughput across the three epochs is reported for context; on shared
// CI hosts it is informational, not gated.
func A7(quick bool) Report {
	title := "live shard resize invariance"
	sp, ok := scenario.Builtin("mid-run-resize")
	if !ok {
		return Report{ID: "A7", Title: title, Pass: false, Verdict: "builtin scenario mid-run-resize missing"}
	}
	if quick {
		sp.Jobs = 120
		sp.Resizes = []scenario.ResizeAt{{AtJob: 40, Shards: 4}, {AtJob: 80, Shards: 2}}
	}
	stream, err := scenario.Stream(sp)
	if err != nil {
		return Report{ID: "A7", Title: title, Pass: false, Verdict: fmt.Sprintf("stream expansion failed: %v", err)}
	}
	distinct := make(map[jobqueue.Key]bool)
	for _, js := range stream {
		distinct[jobqueue.Key{Algorithm: js.Algorithm, N: js.N, P: js.P, Engine: js.Engine, Seed: js.Seed}] = true
	}

	pass := true
	verdict := ""
	fail := func(format string, args ...any) {
		pass = false
		if verdict == "" {
			verdict = fmt.Sprintf(format, args...)
		}
	}

	q := jobqueue.New(scenario.QueueConfig(sp))
	rep, err := scenario.Run(context.Background(), q, sp)
	if err != nil {
		q.Close()
		return Report{ID: "A7", Title: title, Pass: false, Verdict: fmt.Sprintf("replay failed: %v", err)}
	}
	final := q.Snapshot()
	q.Close()

	tb := trace.NewTable("check", "got", "want")
	check := func(name string, got, want int64) {
		tb.AddRow(name, got, want)
		if got != want {
			fail("%s = %d, want %d", name, got, want)
		}
	}
	check("submissions issued", int64(rep.Jobs), int64(sp.Jobs))
	check("rejected", rep.Rejected, 0)
	check("failures", int64(rep.Failures), 0)
	check("executed (= distinct keys)", rep.Executed, int64(len(distinct)))
	check("hits+coalesced (= duplicates)", rep.CacheHits+rep.Coalesced, int64(sp.Jobs-len(distinct)))
	check("resizes applied", int64(rep.Resizes), 2)
	check("final epoch", int64(rep.Epoch), 3)
	check("final shard count", int64(final.Shards), 2)

	// Steady-state placement determinism per epoch: a second queue taken
	// through the same resize sequence (no traffic needed) must place
	// every key of the stream exactly where the first one would.
	qa := jobqueue.New(scenario.QueueConfig(sp))
	qb := jobqueue.New(scenario.QueueConfig(sp))
	for _, n := range []int{4, 2} {
		if _, err := qa.Resize(n); err != nil {
			fail("resize qa to %d: %v", n, err)
		}
		if _, err := qb.Resize(n); err != nil {
			fail("resize qb to %d: %v", n, err)
		}
	}
	placementOK := int64(1)
	if qa.Epoch() != qb.Epoch() {
		placementOK = 0
		fail("epochs diverged: %d vs %d", qa.Epoch(), qb.Epoch())
	}
	for _, js := range stream {
		if qa.ShardOf(js) != qb.ShardOf(js) {
			placementOK = 0
			fail("spec %v placed on shard %d vs %d at the same epoch", js, qa.ShardOf(js), qb.ShardOf(js))
			break
		}
	}
	qa.Close()
	qb.Close()
	check("placement deterministic per epoch", placementOK, 1)
	tb.AddRow("throughput (jobs/sec, informational)", fmt.Sprintf("%.0f", rep.JobsPerSec), "-")

	if verdict == "" {
		verdict = fmt.Sprintf("1→4→2 live resize preserved the computation exactly: %d distinct keys each executed once, %d duplicates served from migrated cache/coalescing state, placement deterministic at epoch %d",
			len(distinct), sp.Jobs-len(distinct), rep.Epoch)
	}
	return Report{
		ID:    "A7",
		Title: title,
		Claim: "the epoch-based placement table makes the shard count a runtime quantity the way LoPRAM makes p one: a live 1→4→2 resize under load loses no job, re-executes no key, serves no stale cache entry, and places keys deterministically per epoch",
		Table: tb, Pass: pass, Verdict: verdict,
	}
}
