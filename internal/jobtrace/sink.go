package jobtrace

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
)

// Sink receives completion records from a queue's flight recorder.
// Record is called from the recorder's single flusher goroutine, one
// record at a time, so a Sink needs no internal ordering — but it must
// be safe against calls from that goroutine while the owner reads
// whatever the sink accumulates. A slow sink does not block the queue:
// the recorder's bounded ring drops (and counts) records instead.
type Sink interface {
	Record(Record)
}

// SinkFunc adapts a function to the Sink interface.
type SinkFunc func(Record)

// Record calls f(r).
func (f SinkFunc) Record(r Record) { f(r) }

// MemorySink accumulates records in memory — the test sink. The zero
// value is ready to use.
type MemorySink struct {
	mu   sync.Mutex
	recs []Record
}

// Record appends r.
func (m *MemorySink) Record(r Record) {
	m.mu.Lock()
	m.recs = append(m.recs, r)
	m.mu.Unlock()
}

// Records returns a copy of everything recorded so far.
func (m *MemorySink) Records() []Record {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]Record(nil), m.recs...)
}

// Len returns how many records have been recorded.
func (m *MemorySink) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.recs)
}

// Writer is the JSONL sink: one JSON-encoded record per line, buffered.
// The queue never closes its sink — the owner that opened the
// underlying file calls Flush (and closes the file) after the queue is
// closed, which is when the recorder has drained.
type Writer struct {
	mu  sync.Mutex
	bw  *bufio.Writer
	n   int64
	err error
}

// NewWriter returns a JSONL writer over w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{bw: bufio.NewWriter(w)}
}

// Record encodes r as one JSON line. Encoding or write errors are
// sticky: the first one is kept (see Err) and later records are
// silently discarded, so a bad disk never panics the recorder.
func (w *Writer) Record(r Record) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return
	}
	data, err := json.Marshal(r)
	if err != nil {
		w.err = err
		return
	}
	data = append(data, '\n')
	if _, err := w.bw.Write(data); err != nil {
		w.err = err
		return
	}
	w.n++
}

// Flush writes out the buffer and returns the first error seen, if any.
func (w *Writer) Flush() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.bw.Flush(); err != nil && w.err == nil {
		w.err = err
	}
	return w.err
}

// Count returns how many records were successfully encoded.
func (w *Writer) Count() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.n
}

// Err returns the first encoding or write error, if any.
func (w *Writer) Err() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.err
}

// ReadAll parses a JSONL trace. Blank lines are skipped; a malformed
// line fails with its line number.
func ReadAll(r io.Reader) ([]Record, error) {
	var out []Record
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		data := bytes.TrimSpace(sc.Bytes())
		if len(data) == 0 {
			continue
		}
		var rec Record
		if err := json.Unmarshal(data, &rec); err != nil {
			return nil, fmt.Errorf("jobtrace: line %d: %w", line, err)
		}
		out = append(out, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// ReadFile parses the JSONL trace at path.
func ReadFile(path string) ([]Record, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	recs, err := ReadAll(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return recs, nil
}
