package jobtrace

import (
	"fmt"
	"io"
	"math"
	"sort"

	"lopram/internal/stats"
	"lopram/internal/trace"
)

// Thresholds gates a Diff: a zero field disables that check. Unmatched
// jobs (a key submitted more often in one trace than the other) always
// fail — two replays of one scenario stream must contain the same
// submission multiset regardless of build.
type Thresholds struct {
	// HitRatePoints is the allowed |hit-rate delta| in percentage
	// points (hit rate = submissions served without executing over all
	// non-rejected submissions).
	HitRatePoints float64
	// WaitP99Frac is the allowed fractional regression of the p99 queue
	// wait (B over A); WaitFloorMS is an absolute noise floor — a
	// regression smaller than it in milliseconds never fails, so
	// microsecond-scale waits cannot flake the gate.
	WaitP99Frac float64
	WaitFloorMS float64
	// RunP99Frac and RunFloorMS gate the p99 execution latency the same
	// way.
	RunP99Frac float64
	RunFloorMS float64
	// StealRatePoints is the allowed |steal-rate delta| in percentage
	// points (stolen executed records over executed records).
	StealRatePoints float64
	// PlacementFrac is the allowed fraction of matched pairs whose
	// submit shard differs between the traces.
	PlacementFrac float64
	// FairnessDeltaPoints is the allowed |executed-wait-share delta| per
	// class, in percentage points (0 disables). A class's wait share is
	// its summed executed queue wait over the side's total — the
	// fraction of all queueing the class absorbed. Under DWRR the share
	// vector is the steady-state fingerprint of the weight
	// configuration, so a share moving between two replays of one
	// scenario means the scheduler's fairness changed even when the
	// aggregate percentiles did not.
	FairnessDeltaPoints float64
	// Weights optionally names each class's configured DWRR weight.
	// When set, the per-class report carries the weight-share column
	// the wait shares can be read against. Informational only: the
	// fairness gate compares trace A to trace B, never either trace to
	// the configuration.
	Weights map[string]float64
}

// Side aggregates one trace (or one class's slice of it).
type Side struct {
	Jobs     int `json:"jobs"`
	Executed int `json:"executed"`
	Hits     int `json:"hits"`
	Coalesce int `json:"coalesce"`
	Rejected int `json:"rejected"`
	Failed   int `json:"failed"`
	Timeouts int `json:"timeouts"`
	Stolen   int `json:"stolen"`
	// HitRate is (hits+coalesce)/(jobs-rejected); StealRate is
	// stolen/executed.
	HitRate   float64 `json:"hit_rate"`
	StealRate float64 `json:"steal_rate"`
	// Wait/Run percentiles are over executed records only, in ms.
	WaitP50 float64 `json:"wait_p50"`
	WaitP99 float64 `json:"wait_p99"`
	RunP50  float64 `json:"run_p50"`
	RunP99  float64 `json:"run_p99"`
	// WaitTotalMS sums the executed records' queue waits — the raw
	// material of the per-class wait shares.
	WaitTotalMS float64 `json:"wait_total_ms"`
}

func sideOf(recs []Record) Side {
	var s Side
	var waits, runs []float64
	for _, r := range recs {
		s.Jobs++
		switch r.Disposition {
		case DispositionExecuted:
			s.Executed++
			waits = append(waits, r.WaitMS)
			runs = append(runs, r.RunMS)
			s.WaitTotalMS += r.WaitMS
			if r.StealOrigin >= 0 {
				s.Stolen++
			}
			switch r.Outcome {
			case OutcomeTimeout:
				s.Timeouts++
				s.Failed++
			case OutcomeError:
				s.Failed++
			}
		case DispositionHit:
			s.Hits++
		case DispositionCoalesce:
			s.Coalesce++
		case DispositionRejected:
			s.Rejected++
		}
	}
	if served := s.Jobs - s.Rejected; served > 0 {
		s.HitRate = float64(s.Hits+s.Coalesce) / float64(served)
	}
	if s.Executed > 0 {
		s.StealRate = float64(s.Stolen) / float64(s.Executed)
	}
	ws, rs := stats.Summarize(waits), stats.Summarize(runs)
	s.WaitP50, s.WaitP99 = ws.P50, ws.P99
	s.RunP50, s.RunP99 = rs.P50, rs.P99
	return s
}

// ClassDelta is one priority class's pair of aggregates, plus the
// class's executed-wait share of each side (its summed executed wait
// over the side's total). WeightShare is the class's share of the
// configured DWRR weights when Thresholds.Weights named them, else 0.
type ClassDelta struct {
	Class string `json:"class"`
	A     Side   `json:"a"`
	B     Side   `json:"b"`

	WaitShareA  float64 `json:"wait_share_a"`
	WaitShareB  float64 `json:"wait_share_b"`
	WeightShare float64 `json:"weight_share,omitempty"`
}

// ShardDelta compares one submit-shard's share of the placement.
type ShardDelta struct {
	Shard int `json:"shard"`
	// JobsA/JobsB count submissions placed on the shard; RunsA/RunsB
	// count executed records whose run was dequeued from it.
	JobsA, JobsB int
	RunsA, RunsB int
}

// DiffReport is the job-by-job comparison of two traces.
type DiffReport struct {
	A, B Side
	// Classes and Shards split the comparison; both are sorted.
	Classes []ClassDelta
	Shards  []ShardDelta
	// UnmatchedA/UnmatchedB count submissions of a key beyond the other
	// trace's count for that key; MatchedPairs is the joined rest.
	UnmatchedA, UnmatchedB int
	MatchedPairs           int
	// ExecMismatchKeys counts keys whose executed-record count differs
	// — a per-key caching/coalescing behavior change. Informational:
	// the aggregate shows up in the hit-rate delta, which is what the
	// threshold gates.
	ExecMismatchKeys int
	// PlacementMoved counts matched pairs whose submit shard differs.
	PlacementMoved int
	// Violations lists every threshold the comparison failed; empty
	// means the gate passes.
	Violations []string
}

// Failed reports whether any threshold was violated.
func (d *DiffReport) Failed() bool { return len(d.Violations) > 0 }

// Diff joins two traces job-by-job — records group by deterministic
// key, each group sorts by submission order (SubmitNS, then ID, then
// Seq), and the k-th submission of a key in A pairs with the k-th in B
// — then compares the aggregate, per-class and per-shard views against
// the thresholds.
func Diff(a, b []Record, th Thresholds) DiffReport {
	d := DiffReport{A: sideOf(a), B: sideOf(b)}

	groupA, groupB := groupByKey(a), groupByKey(b)
	for key, ga := range groupA {
		gb := groupB[key]
		n := len(ga)
		if len(gb) < n {
			n = len(gb)
		}
		d.UnmatchedA += len(ga) - n
		d.UnmatchedB += len(gb) - n
		d.MatchedPairs += n
		execA, execB := 0, 0
		for _, r := range ga {
			if r.Executed() {
				execA++
			}
		}
		for _, r := range gb {
			if r.Executed() {
				execB++
			}
		}
		if execA != execB {
			d.ExecMismatchKeys++
		}
		for i := 0; i < n; i++ {
			if ga[i].SubmitShard != gb[i].SubmitShard {
				d.PlacementMoved++
			}
		}
	}
	for key, gb := range groupB {
		if _, ok := groupA[key]; !ok {
			d.UnmatchedB += len(gb)
		}
	}

	d.Classes = classDeltas(a, b)
	fairnessShares(&d, th.Weights)
	d.Shards = shardDeltas(a, b)
	d.Violations = violations(&d, th)
	return d
}

// fairnessShares fills each class's executed-wait share per side, and
// its configured weight share when weights were given. Shares divide by
// the side's total executed wait; a side with no executed wait leaves
// every share 0, so a diff against an all-cached replay cannot divide
// by zero (or manufacture a fairness move out of nothing).
func fairnessShares(d *DiffReport, weights map[string]float64) {
	var weightSum float64
	for _, w := range weights {
		weightSum += w
	}
	for i := range d.Classes {
		c := &d.Classes[i]
		if d.A.WaitTotalMS > 0 {
			c.WaitShareA = c.A.WaitTotalMS / d.A.WaitTotalMS
		}
		if d.B.WaitTotalMS > 0 {
			c.WaitShareB = c.B.WaitTotalMS / d.B.WaitTotalMS
		}
		if weightSum > 0 {
			c.WeightShare = weights[c.Class] / weightSum
		}
	}
}

func groupByKey(recs []Record) map[string][]Record {
	groups := make(map[string][]Record)
	for _, r := range recs {
		groups[r.Key] = append(groups[r.Key], r)
	}
	for _, g := range groups {
		sort.Slice(g, func(i, j int) bool {
			if g[i].SubmitNS != g[j].SubmitNS {
				return g[i].SubmitNS < g[j].SubmitNS
			}
			if g[i].ID != g[j].ID {
				return g[i].ID < g[j].ID
			}
			return g[i].Seq < g[j].Seq
		})
	}
	return groups
}

func classDeltas(a, b []Record) []ClassDelta {
	byClass := func(recs []Record) map[string][]Record {
		m := make(map[string][]Record)
		for _, r := range recs {
			m[r.Class] = append(m[r.Class], r)
		}
		return m
	}
	ca, cb := byClass(a), byClass(b)
	names := make(map[string]bool)
	for c := range ca {
		names[c] = true
	}
	for c := range cb {
		names[c] = true
	}
	var out []ClassDelta
	for c := range names {
		out = append(out, ClassDelta{Class: c, A: sideOf(ca[c]), B: sideOf(cb[c])})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Class < out[j].Class })
	return out
}

func shardDeltas(a, b []Record) []ShardDelta {
	m := make(map[int]*ShardDelta)
	at := func(idx int) *ShardDelta {
		sd := m[idx]
		if sd == nil {
			sd = &ShardDelta{Shard: idx}
			m[idx] = sd
		}
		return sd
	}
	for _, r := range a {
		at(r.SubmitShard).JobsA++
		if r.Executed() && r.ExecShard >= 0 {
			at(r.ExecShard).RunsA++
		}
	}
	for _, r := range b {
		at(r.SubmitShard).JobsB++
		if r.Executed() && r.ExecShard >= 0 {
			at(r.ExecShard).RunsB++
		}
	}
	out := make([]ShardDelta, 0, len(m))
	for _, sd := range m {
		out = append(out, *sd)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Shard < out[j].Shard })
	return out
}

func violations(d *DiffReport, th Thresholds) []string {
	var v []string
	if d.UnmatchedA > 0 || d.UnmatchedB > 0 {
		v = append(v, fmt.Sprintf("traces do not contain the same submissions: %d only in A, %d only in B",
			d.UnmatchedA, d.UnmatchedB))
	}
	if th.HitRatePoints > 0 {
		if delta := math.Abs(d.B.HitRate-d.A.HitRate) * 100; delta > th.HitRatePoints {
			v = append(v, fmt.Sprintf("hit-rate delta %.2f points exceeds %.2f (A %.1f%% → B %.1f%%)",
				delta, th.HitRatePoints, 100*d.A.HitRate, 100*d.B.HitRate))
		}
	}
	if th.StealRatePoints > 0 {
		if delta := math.Abs(d.B.StealRate-d.A.StealRate) * 100; delta > th.StealRatePoints {
			v = append(v, fmt.Sprintf("steal-rate delta %.2f points exceeds %.2f (A %.1f%% → B %.1f%%)",
				delta, th.StealRatePoints, 100*d.A.StealRate, 100*d.B.StealRate))
		}
	}
	if msg := latencyRegression("p99 wait", d.A.WaitP99, d.B.WaitP99, th.WaitP99Frac, th.WaitFloorMS); msg != "" {
		v = append(v, msg)
	}
	if msg := latencyRegression("p99 run", d.A.RunP99, d.B.RunP99, th.RunP99Frac, th.RunFloorMS); msg != "" {
		v = append(v, msg)
	}
	if th.PlacementFrac > 0 && d.MatchedPairs > 0 {
		if frac := float64(d.PlacementMoved) / float64(d.MatchedPairs); frac > th.PlacementFrac {
			v = append(v, fmt.Sprintf("placement moved for %.1f%% of matched jobs, exceeds %.1f%% (%d of %d)",
				100*frac, 100*th.PlacementFrac, d.PlacementMoved, d.MatchedPairs))
		}
	}
	if th.FairnessDeltaPoints > 0 {
		for _, c := range d.Classes {
			if delta := math.Abs(c.WaitShareB-c.WaitShareA) * 100; delta > th.FairnessDeltaPoints {
				v = append(v, fmt.Sprintf("class %s executed-wait share moved %.2f points, exceeds %.2f (A %.1f%% → B %.1f%%)",
					c.Class, delta, th.FairnessDeltaPoints, 100*c.WaitShareA, 100*c.WaitShareB))
			}
		}
	}
	return v
}

// latencyRegression reports a violation when b regresses past a by more
// than frac AND by more than floorMS in absolute terms; empty when frac
// is 0 (disabled) or the regression is within bounds.
func latencyRegression(what string, a, b, frac, floorMS float64) string {
	if frac <= 0 {
		return ""
	}
	if b <= a*(1+frac) || b-a <= floorMS {
		return ""
	}
	return fmt.Sprintf("%s regressed %.0f%% (A %.3fms → B %.3fms), exceeds %.0f%% (+%.3fms floor)",
		what, 100*(b/a-1), a, b, 100*frac, floorMS)
}

// WriteText renders the comparison as the human-readable report
// cmd/tracediff prints: totals, then the per-class and per-shard
// tables, then any violations.
func (d *DiffReport) WriteText(w io.Writer) {
	fmt.Fprintf(w, "trace A: %d jobs (%d executed, %d hit, %d coalesce, %d rejected, %d failed) · trace B: %d jobs (%d executed, %d hit, %d coalesce, %d rejected, %d failed)\n",
		d.A.Jobs, d.A.Executed, d.A.Hits, d.A.Coalesce, d.A.Rejected, d.A.Failed,
		d.B.Jobs, d.B.Executed, d.B.Hits, d.B.Coalesce, d.B.Rejected, d.B.Failed)
	fmt.Fprintf(w, "joined %d pairs by key+sequence · unmatched A %d, B %d · exec-count mismatch on %d keys · placement moved %d\n",
		d.MatchedPairs, d.UnmatchedA, d.UnmatchedB, d.ExecMismatchKeys, d.PlacementMoved)
	fmt.Fprintf(w, "hit rate %.1f%% → %.1f%% · steal rate %.1f%% → %.1f%% · p99 wait %.3fms → %.3fms · p99 run %.3fms → %.3fms\n",
		100*d.A.HitRate, 100*d.B.HitRate, 100*d.A.StealRate, 100*d.B.StealRate,
		d.A.WaitP99, d.B.WaitP99, d.A.RunP99, d.B.RunP99)
	if len(d.Classes) > 0 {
		// The weight-share column only appears when weights were given
		// on the diff (any class carries a non-zero share).
		weighted := false
		for _, c := range d.Classes {
			if c.WeightShare > 0 {
				weighted = true
				break
			}
		}
		cols := []string{"class", "jobs A/B", "hit% A/B", "steal% A/B",
			"wait p50 A/B", "wait p99 A/B", "run p99 A/B", "wait-share% A/B"}
		if weighted {
			cols = append(cols, "weight%")
		}
		tb := trace.NewTable(cols...)
		for _, c := range d.Classes {
			row := []any{c.Class,
				fmt.Sprintf("%d/%d", c.A.Jobs, c.B.Jobs),
				fmt.Sprintf("%.1f/%.1f", 100*c.A.HitRate, 100*c.B.HitRate),
				fmt.Sprintf("%.1f/%.1f", 100*c.A.StealRate, 100*c.B.StealRate),
				fmt.Sprintf("%.2f/%.2f", c.A.WaitP50, c.B.WaitP50),
				fmt.Sprintf("%.2f/%.2f", c.A.WaitP99, c.B.WaitP99),
				fmt.Sprintf("%.2f/%.2f", c.A.RunP99, c.B.RunP99),
				fmt.Sprintf("%.1f/%.1f", 100*c.WaitShareA, 100*c.WaitShareB)}
			if weighted {
				row = append(row, fmt.Sprintf("%.1f", 100*c.WeightShare))
			}
			tb.AddRow(row...)
		}
		fmt.Fprint(w, tb.String())
	}
	if len(d.Shards) > 1 {
		tb := trace.NewTable("shard", "placed A/B", "ran A/B")
		for _, s := range d.Shards {
			tb.AddRow(s.Shard,
				fmt.Sprintf("%d/%d", s.JobsA, s.JobsB),
				fmt.Sprintf("%d/%d", s.RunsA, s.RunsB))
		}
		fmt.Fprint(w, tb.String())
	}
	if len(d.Violations) == 0 {
		fmt.Fprintln(w, "PASS: no threshold violations")
		return
	}
	for _, msg := range d.Violations {
		fmt.Fprintf(w, "FAIL: %s\n", msg)
	}
}
