package jobtrace

import (
	"bytes"
	"strings"
	"testing"
)

// rec builds a minimal executed record for diff tests.
func rec(key string, occurrence int64, disposition string, shard int, waitMS float64) Record {
	r := Record{
		Key:         key,
		Class:       "interactive",
		Disposition: disposition,
		SubmitShard: shard,
		ExecShard:   -1,
		StealOrigin: -1,
		SubmitNS:    occurrence, // submission order within the key group
		WaitMS:      waitMS,
	}
	if disposition == DispositionExecuted {
		r.ExecShard = shard
		r.Outcome = OutcomeOK
		r.RunMS = 1
	}
	return r
}

func TestDiffIdenticalTracesPass(t *testing.T) {
	a := []Record{
		rec("k1", 1, DispositionExecuted, 0, 10),
		rec("k1", 2, DispositionHit, 1, 0),
		rec("k2", 1, DispositionExecuted, 1, 20),
	}
	th := Thresholds{HitRatePoints: 2, WaitP99Frac: 0.25, WaitFloorMS: 5}
	d := Diff(a, a, th)
	if d.Failed() {
		t.Fatalf("self-diff failed: %v", d.Violations)
	}
	if d.MatchedPairs != 3 || d.UnmatchedA != 0 || d.UnmatchedB != 0 {
		t.Fatalf("matched %d, unmatched %d/%d, want 3 and 0/0", d.MatchedPairs, d.UnmatchedA, d.UnmatchedB)
	}
}

func TestDiffUnmatchedAlwaysFails(t *testing.T) {
	a := []Record{rec("k1", 1, DispositionExecuted, 0, 1)}
	b := []Record{
		rec("k1", 1, DispositionExecuted, 0, 1),
		rec("k1", 2, DispositionHit, 0, 0),
		rec("k2", 1, DispositionExecuted, 0, 1),
	}
	d := Diff(a, b, Thresholds{}) // every threshold disabled
	if !d.Failed() {
		t.Fatal("extra submissions in B must fail with all thresholds off")
	}
	if d.UnmatchedB != 2 {
		t.Fatalf("UnmatchedB = %d, want 2 (one extra k1, one unknown k2)", d.UnmatchedB)
	}
}

func TestDiffHitRateGate(t *testing.T) {
	// A: 2 of 4 served without execution; B: 1 of 4 — a 25-point move.
	a := []Record{
		rec("k1", 1, DispositionExecuted, 0, 1),
		rec("k1", 2, DispositionHit, 0, 0),
		rec("k2", 1, DispositionExecuted, 0, 1),
		rec("k2", 2, DispositionCoalesce, 0, 0),
	}
	b := []Record{
		rec("k1", 1, DispositionExecuted, 0, 1),
		rec("k1", 2, DispositionHit, 0, 0),
		rec("k2", 1, DispositionExecuted, 0, 1),
		rec("k2", 2, DispositionExecuted, 0, 1),
	}
	d := Diff(a, b, Thresholds{HitRatePoints: 2})
	if !d.Failed() {
		t.Fatal("a 25-point hit-rate drop must violate a 2-point threshold")
	}
	if !strings.Contains(strings.Join(d.Violations, "\n"), "hit-rate") {
		t.Fatalf("violations lack hit-rate message: %v", d.Violations)
	}
	if d.ExecMismatchKeys != 1 {
		t.Fatalf("ExecMismatchKeys = %d, want 1 (k2 executes twice in B)", d.ExecMismatchKeys)
	}
	if wide := Diff(a, b, Thresholds{HitRatePoints: 30}); wide.Failed() {
		t.Fatal("a 30-point allowance must absorb a 25-point move")
	}
}

func TestLatencyGateNeedsFractionAndFloor(t *testing.T) {
	mk := func(wait float64) []Record {
		return []Record{rec("k1", 1, DispositionExecuted, 0, wait)}
	}
	th := Thresholds{WaitP99Frac: 0.25, WaitFloorMS: 100}
	// +50% but only +2ms: under the floor, passes.
	if d := Diff(mk(4), mk(6), th); d.Failed() {
		t.Fatalf("2ms regression must stay under the 100ms floor: %v", d.Violations)
	}
	// +150ms but only +15%: under the fraction, passes.
	if d := Diff(mk(1000), mk(1150), th); d.Failed() {
		t.Fatalf("15%% regression must stay under the 25%% fraction: %v", d.Violations)
	}
	// +50% and +150ms: both exceeded, fails.
	if d := Diff(mk(300), mk(450), th); !d.Failed() {
		t.Fatal("a regression past both fraction and floor must fail")
	}
	// Gate disabled: any regression passes.
	if d := Diff(mk(1), mk(1000), Thresholds{}); d.Failed() {
		t.Fatalf("disabled gate must not fail: %v", d.Violations)
	}
}

func TestDiffPlacementGate(t *testing.T) {
	a := []Record{
		rec("k1", 1, DispositionExecuted, 0, 1),
		rec("k2", 1, DispositionExecuted, 1, 1),
	}
	b := []Record{
		rec("k1", 1, DispositionExecuted, 1, 1), // moved shard
		rec("k2", 1, DispositionExecuted, 1, 1),
	}
	d := Diff(a, b, Thresholds{PlacementFrac: 0.25})
	if d.PlacementMoved != 1 {
		t.Fatalf("PlacementMoved = %d, want 1", d.PlacementMoved)
	}
	if !d.Failed() {
		t.Fatal("half the jobs moving shard must violate a 25% placement threshold")
	}
	if wide := Diff(a, b, Thresholds{PlacementFrac: 0.75}); wide.Failed() {
		t.Fatal("a 75% allowance must absorb one of two jobs moving")
	}
}

// crec builds an executed record in a named class for fairness tests.
func crec(class, key string, occurrence int64, waitMS float64) Record {
	r := rec(key, occurrence, DispositionExecuted, 0, waitMS)
	r.Class = class
	return r
}

func TestFairnessDeltaGate(t *testing.T) {
	// A: interactive carries 30% of the executed wait, batch 70%.
	// B: an even 50/50 split — each class's share moves 20 points.
	a := []Record{
		crec("interactive", "ki", 1, 30),
		crec("batch", "kb", 1, 70),
	}
	b := []Record{
		crec("interactive", "ki", 1, 50),
		crec("batch", "kb", 1, 50),
	}
	d := Diff(a, b, Thresholds{FairnessDeltaPoints: 10})
	shares := map[string][2]float64{}
	for _, c := range d.Classes {
		shares[c.Class] = [2]float64{c.WaitShareA, c.WaitShareB}
	}
	if got := shares["interactive"]; got != [2]float64{0.3, 0.5} {
		t.Fatalf("interactive wait shares = %v, want [0.3 0.5]", got)
	}
	if got := shares["batch"]; got != [2]float64{0.7, 0.5} {
		t.Fatalf("batch wait shares = %v, want [0.7 0.5]", got)
	}
	if !d.Failed() {
		t.Fatal("a 20-point share move must violate a 10-point threshold")
	}
	if !strings.Contains(strings.Join(d.Violations, "\n"), "executed-wait share") {
		t.Fatalf("violations lack the fairness message: %v", d.Violations)
	}
	if wide := Diff(a, b, Thresholds{FairnessDeltaPoints: 25}); wide.Failed() {
		t.Fatalf("a 25-point allowance must absorb a 20-point move: %v", wide.Violations)
	}
	if self := Diff(a, a, Thresholds{FairnessDeltaPoints: 0.01}); self.Failed() {
		t.Fatalf("self-diff must hold every class's share exactly: %v", self.Violations)
	}
}

func TestFairnessGateSurvivesZeroWaitSide(t *testing.T) {
	// A side whose executed records all waited zero has no share
	// denominator; shares stay zero rather than going NaN, and the
	// gate compares against B's real shares without crashing.
	a := []Record{
		crec("interactive", "ki", 1, 0),
		crec("batch", "kb", 1, 0),
	}
	b := []Record{
		crec("interactive", "ki", 1, 10),
		crec("batch", "kb", 1, 90),
	}
	d := Diff(a, b, Thresholds{FairnessDeltaPoints: 50})
	for _, c := range d.Classes {
		if c.WaitShareA != 0 {
			t.Fatalf("class %s WaitShareA = %v on a zero-wait side, want 0", c.Class, c.WaitShareA)
		}
	}
	// batch moved 0 -> 90%: past the 50-point gate.
	if !d.Failed() {
		t.Fatal("a 90-point move must still violate a 50-point threshold")
	}
}

func TestFairnessWeightColumn(t *testing.T) {
	a := []Record{
		crec("interactive", "ki", 1, 40),
		crec("batch", "kb", 1, 60),
	}
	th := Thresholds{Weights: map[string]float64{"interactive": 4, "batch": 1}}
	d := Diff(a, a, th)
	for _, c := range d.Classes {
		want := 0.8
		if c.Class == "batch" {
			want = 0.2
		}
		if c.WeightShare != want {
			t.Fatalf("class %s WeightShare = %v, want %v", c.Class, c.WeightShare, want)
		}
	}
	var buf bytes.Buffer
	d.WriteText(&buf)
	for _, want := range []string{"wait-share% A/B", "weight%", "80.0", "20.0"} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("weighted report lacks %q:\n%s", want, buf.String())
		}
	}
	// Without weights the informational column stays out of the table.
	buf.Reset()
	unweighted := Diff(a, a, Thresholds{})
	unweighted.WriteText(&buf)
	if strings.Contains(buf.String(), "weight%") {
		t.Fatalf("unweighted report must not render the weight column:\n%s", buf.String())
	}
}

func TestWriterReaderRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	in := []Record{
		rec("mergesort/n=64/p=2/sim/seed=1", 1, DispositionExecuted, 0, 3.5),
		rec("mergesort/n=64/p=2/sim/seed=1", 2, DispositionHit, 0, 0),
	}
	in[0].Seq, in[1].Seq = 1, 2
	for _, r := range in {
		w.Record(r)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Count() != 2 {
		t.Fatalf("Count = %d, want 2", w.Count())
	}
	out, err := ReadAll(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 || out[0] != in[0] || out[1] != in[1] {
		t.Fatalf("round trip mismatch:\nin:  %+v\nout: %+v", in, out)
	}
}

func TestReadAllRejectsMalformedLine(t *testing.T) {
	_, err := ReadAll(strings.NewReader("{\"seq\":1}\nnot json\n"))
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("want a line-2 parse error, got %v", err)
	}
}
