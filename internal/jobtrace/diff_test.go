package jobtrace

import (
	"bytes"
	"strings"
	"testing"
)

// rec builds a minimal executed record for diff tests.
func rec(key string, occurrence int64, disposition string, shard int, waitMS float64) Record {
	r := Record{
		Key:         key,
		Class:       "interactive",
		Disposition: disposition,
		SubmitShard: shard,
		ExecShard:   -1,
		StealOrigin: -1,
		SubmitNS:    occurrence, // submission order within the key group
		WaitMS:      waitMS,
	}
	if disposition == DispositionExecuted {
		r.ExecShard = shard
		r.Outcome = OutcomeOK
		r.RunMS = 1
	}
	return r
}

func TestDiffIdenticalTracesPass(t *testing.T) {
	a := []Record{
		rec("k1", 1, DispositionExecuted, 0, 10),
		rec("k1", 2, DispositionHit, 1, 0),
		rec("k2", 1, DispositionExecuted, 1, 20),
	}
	th := Thresholds{HitRatePoints: 2, WaitP99Frac: 0.25, WaitFloorMS: 5}
	d := Diff(a, a, th)
	if d.Failed() {
		t.Fatalf("self-diff failed: %v", d.Violations)
	}
	if d.MatchedPairs != 3 || d.UnmatchedA != 0 || d.UnmatchedB != 0 {
		t.Fatalf("matched %d, unmatched %d/%d, want 3 and 0/0", d.MatchedPairs, d.UnmatchedA, d.UnmatchedB)
	}
}

func TestDiffUnmatchedAlwaysFails(t *testing.T) {
	a := []Record{rec("k1", 1, DispositionExecuted, 0, 1)}
	b := []Record{
		rec("k1", 1, DispositionExecuted, 0, 1),
		rec("k1", 2, DispositionHit, 0, 0),
		rec("k2", 1, DispositionExecuted, 0, 1),
	}
	d := Diff(a, b, Thresholds{}) // every threshold disabled
	if !d.Failed() {
		t.Fatal("extra submissions in B must fail with all thresholds off")
	}
	if d.UnmatchedB != 2 {
		t.Fatalf("UnmatchedB = %d, want 2 (one extra k1, one unknown k2)", d.UnmatchedB)
	}
}

func TestDiffHitRateGate(t *testing.T) {
	// A: 2 of 4 served without execution; B: 1 of 4 — a 25-point move.
	a := []Record{
		rec("k1", 1, DispositionExecuted, 0, 1),
		rec("k1", 2, DispositionHit, 0, 0),
		rec("k2", 1, DispositionExecuted, 0, 1),
		rec("k2", 2, DispositionCoalesce, 0, 0),
	}
	b := []Record{
		rec("k1", 1, DispositionExecuted, 0, 1),
		rec("k1", 2, DispositionHit, 0, 0),
		rec("k2", 1, DispositionExecuted, 0, 1),
		rec("k2", 2, DispositionExecuted, 0, 1),
	}
	d := Diff(a, b, Thresholds{HitRatePoints: 2})
	if !d.Failed() {
		t.Fatal("a 25-point hit-rate drop must violate a 2-point threshold")
	}
	if !strings.Contains(strings.Join(d.Violations, "\n"), "hit-rate") {
		t.Fatalf("violations lack hit-rate message: %v", d.Violations)
	}
	if d.ExecMismatchKeys != 1 {
		t.Fatalf("ExecMismatchKeys = %d, want 1 (k2 executes twice in B)", d.ExecMismatchKeys)
	}
	if wide := Diff(a, b, Thresholds{HitRatePoints: 30}); wide.Failed() {
		t.Fatal("a 30-point allowance must absorb a 25-point move")
	}
}

func TestLatencyGateNeedsFractionAndFloor(t *testing.T) {
	mk := func(wait float64) []Record {
		return []Record{rec("k1", 1, DispositionExecuted, 0, wait)}
	}
	th := Thresholds{WaitP99Frac: 0.25, WaitFloorMS: 100}
	// +50% but only +2ms: under the floor, passes.
	if d := Diff(mk(4), mk(6), th); d.Failed() {
		t.Fatalf("2ms regression must stay under the 100ms floor: %v", d.Violations)
	}
	// +150ms but only +15%: under the fraction, passes.
	if d := Diff(mk(1000), mk(1150), th); d.Failed() {
		t.Fatalf("15%% regression must stay under the 25%% fraction: %v", d.Violations)
	}
	// +50% and +150ms: both exceeded, fails.
	if d := Diff(mk(300), mk(450), th); !d.Failed() {
		t.Fatal("a regression past both fraction and floor must fail")
	}
	// Gate disabled: any regression passes.
	if d := Diff(mk(1), mk(1000), Thresholds{}); d.Failed() {
		t.Fatalf("disabled gate must not fail: %v", d.Violations)
	}
}

func TestDiffPlacementGate(t *testing.T) {
	a := []Record{
		rec("k1", 1, DispositionExecuted, 0, 1),
		rec("k2", 1, DispositionExecuted, 1, 1),
	}
	b := []Record{
		rec("k1", 1, DispositionExecuted, 1, 1), // moved shard
		rec("k2", 1, DispositionExecuted, 1, 1),
	}
	d := Diff(a, b, Thresholds{PlacementFrac: 0.25})
	if d.PlacementMoved != 1 {
		t.Fatalf("PlacementMoved = %d, want 1", d.PlacementMoved)
	}
	if !d.Failed() {
		t.Fatal("half the jobs moving shard must violate a 25% placement threshold")
	}
	if wide := Diff(a, b, Thresholds{PlacementFrac: 0.75}); wide.Failed() {
		t.Fatal("a 75% allowance must absorb one of two jobs moving")
	}
}

func TestWriterReaderRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	in := []Record{
		rec("mergesort/n=64/p=2/sim/seed=1", 1, DispositionExecuted, 0, 3.5),
		rec("mergesort/n=64/p=2/sim/seed=1", 2, DispositionHit, 0, 0),
	}
	in[0].Seq, in[1].Seq = 1, 2
	for _, r := range in {
		w.Record(r)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Count() != 2 {
		t.Fatalf("Count = %d, want 2", w.Count())
	}
	out, err := ReadAll(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 || out[0] != in[0] || out[1] != in[1] {
		t.Fatalf("round trip mismatch:\nin:  %+v\nout: %+v", in, out)
	}
}

func TestReadAllRejectsMalformedLine(t *testing.T) {
	_, err := ReadAll(strings.NewReader("{\"seq\":1}\nnot json\n"))
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("want a line-2 parse error, got %v", err)
	}
}
