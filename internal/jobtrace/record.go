// Package jobtrace defines the flight recorder's completion-record
// schema and the sinks it flows through: every job a jobqueue.Queue
// finishes (or refuses) emits one Record describing what actually
// happened to it — where it was placed, which shard ran it, under which
// placement epochs, how long it queued and ran, and how it was served
// (executed, cache hit, coalesced, rejected). Records are written as
// JSONL by Writer, captured in memory by MemorySink, read back by
// ReadAll, and compared build-to-build by Diff (the replay A/B gate
// behind cmd/tracediff).
package jobtrace

// Dispositions: how a submission was served. Every submission the queue
// accepts or refuses produces exactly one record with one of these.
const (
	// DispositionExecuted marks a job that ran on a worker (successfully
	// or not — see Outcome).
	DispositionExecuted = "executed"
	// DispositionHit marks a submission served from the result cache
	// without executing.
	DispositionHit = "hit"
	// DispositionCoalesce marks a submission merged onto an identical
	// in-flight job; the run it joined emits its own executed record.
	DispositionCoalesce = "coalesce"
	// DispositionRejected marks a submission refused by admission
	// control (its class lane was full).
	DispositionRejected = "rejected"
)

// Outcomes of an executed record.
const (
	// OutcomeOK means the run completed successfully.
	OutcomeOK = "ok"
	// OutcomeTimeout means the run blew its deadline and was failed
	// (and possibly abandoned to finish in the background).
	OutcomeTimeout = "timeout"
	// OutcomeError means the run returned an error.
	OutcomeError = "error"
)

// SchedCounters is the palrt work-stealing scheduler's breakdown for one
// run: pal-threads handed to the global pool, taken from other workers'
// deques, and inlined on the spawning worker. Present only on executed
// records of EnginePalrt jobs.
type SchedCounters struct {
	Spawned int64 `json:"spawned"`
	Stolen  int64 `json:"stolen"`
	Inlined int64 `json:"inlined"`
}

// Record is one job's completion record — the unit the flight recorder
// emits. Identity fields (Key, Algorithm..Seed, Class) are deterministic
// functions of the submitted spec; placement and timing fields describe
// what this run of this build actually did, so they differ between
// replays and are exactly what tracediff compares.
type Record struct {
	// Seq is the recorder's emission sequence number, assigned in the
	// order records were offered to the ring (1-based). A gap in the
	// delivered sequence identifies a dropped record.
	Seq uint64 `json:"seq"`
	// ID is the queue-assigned job ID. For coalesced submissions it is
	// the ID of the in-flight job the submission merged onto.
	ID uint64 `json:"id"`
	// Key is the job's deterministic identity: Spec.String() for
	// algorithm jobs ("algo/n=…/p=…/engine/seed=…"), the caller's name
	// for func jobs. Equal keys mean equal results; tracediff joins
	// traces on it.
	Key string `json:"key"`

	Algorithm string `json:"algorithm,omitempty"`
	Engine    string `json:"engine,omitempty"`
	N         int    `json:"n,omitempty"`
	P         int    `json:"p,omitempty"`
	Seed      uint64 `json:"seed"`

	// Class is the priority class the submission resolved to.
	Class string `json:"class"`
	// Disposition is how the submission was served (Disposition*).
	Disposition string `json:"disposition"`
	// Outcome is the executed run's result (Outcome*); empty for
	// non-executed dispositions except hit/coalesce, which report "ok".
	Outcome string `json:"outcome,omitempty"`
	// Error carries the failure message of a failed run.
	Error string `json:"error,omitempty"`

	// SubmitShard is the shard the submission hashed to under the
	// placement table at submit; ExecShard is the home shard of the
	// worker that ran the job (-1 when it never ran).
	SubmitShard int `json:"submit_shard"`
	ExecShard   int `json:"exec_shard"`
	// StealOrigin is the shard a stolen job was dequeued from, -1 when
	// the job ran on a worker homed to the shard that queued it.
	StealOrigin int `json:"steal_origin"`
	// EpochSubmit and EpochSettle are the placement-table epochs at
	// admission and at settle; they differ when a live resize moved the
	// table while the job was in flight.
	EpochSubmit uint64 `json:"epoch_submit"`
	EpochSettle uint64 `json:"epoch_settle"`
	// LaneDepth is how many admitted-but-not-started jobs of the same
	// class were already in the shard's lane when this one was admitted
	// (for rejected records: the lane bound it hit).
	LaneDepth int `json:"lane_depth"`

	// SubmitNS/StartNS/FinishNS are wall-clock Unix timestamps in
	// nanoseconds; Start/Finish are zero for never-started submissions.
	SubmitNS int64 `json:"submit_ns"`
	StartNS  int64 `json:"start_ns,omitempty"`
	FinishNS int64 `json:"finish_ns,omitempty"`
	// WaitMS is queueing latency (submit → start), RunMS execution
	// latency (start → finish), both in milliseconds.
	WaitMS float64 `json:"wait_ms"`
	RunMS  float64 `json:"run_ms"`

	// Sched is the palrt scheduler's counters for this run; nil for
	// non-palrt engines and non-executed dispositions.
	Sched *SchedCounters `json:"sched,omitempty"`
}

// Executed reports whether the record describes a run on a worker.
func (r Record) Executed() bool { return r.Disposition == DispositionExecuted }

// Dup reports whether the submission was served without executing — a
// cache hit or an in-flight coalesce.
func (r Record) Dup() bool {
	return r.Disposition == DispositionHit || r.Disposition == DispositionCoalesce
}
