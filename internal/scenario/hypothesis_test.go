package scenario

// The policy-hypothesis suite: executable checks of the scheduling
// claims the policy layer is built on. Each hypothesis is asserted
// strictly, per seed, on deterministic job streams (only placement and
// timing vary between replays):
//
//   - liveness: below saturation, every policy serves every submission —
//     nothing is starved, rejected or timed out;
//   - SJF beats FCFS on mean wait under a heavy-tailed size mix;
//   - EDF beats FCFS and the native discipline on response-time deadline
//     misses when urgent and relaxed traffic share one queue.
//
// The workloads are sized so the differentiation is structural (orders
// of magnitude of backlog), not a timing coincidence: a slower or faster
// host moves the numbers, not the inequalities.

import (
	"context"
	"testing"
	"time"

	"lopram/internal/jobqueue"
	"lopram/internal/jobtrace"
)

// runPolicyReplay replays sp on a fresh queue under the named dequeue
// policy and returns the report plus every completion record.
func runPolicyReplay(t *testing.T, sp Spec, policy string) (Report, []jobtrace.Record) {
	t.Helper()
	sp.DequeuePolicy = policy
	var sink jobtrace.MemorySink
	cfg := QueueConfig(sp)
	cfg.TraceSink = &sink
	q := jobqueue.New(cfg)
	rep, err := Run(context.Background(), q, sp)
	// Close drains the flight recorder before Records is read.
	q.Close()
	if err != nil {
		t.Fatalf("scenario %s under %s: %v", sp.Name, policy, err)
	}
	return rep, sink.Records()
}

// hypothesisSeeds: every hypothesis must hold strictly at each of these
// stream seeds, not on average over them.
var hypothesisSeeds = []uint64{2, 7, 13}

// TestHypothesisPolicyLiveness: below saturation every dequeue policy —
// and the token-bucket admission under its default budget — serves the
// complete stream: no rejection, no failure, no timeout, and the
// recorder accounts for every submission. This is the no-starvation
// bound: even the job a policy ranks last is served once the queue
// drains, because policies only order the backlog, never drop from it.
func TestHypothesisPolicyLiveness(t *testing.T) {
	base := Spec{
		Name:      "liveness-mix",
		Jobs:      32,
		Clients:   8,
		SeedSpace: 1 << 20,
		Mix: []MixEntry{
			{Algorithm: "reduce", Engine: "palrt", Weight: 4, MinN: 64, MaxN: 1 << 12},
			{Algorithm: "mergesort", Engine: "palrt", Weight: 1, MinN: 1 << 14, MaxN: 1 << 16},
		},
		Workers: 2,
		Shards:  2,
	}
	for _, policy := range jobqueue.DequeuePolicyNames() {
		t.Run(policy, func(t *testing.T) {
			for _, seed := range hypothesisSeeds {
				sp := deepCopy(base)
				sp.Seed = seed
				// The default token budget (256/s, burst 64) is above this
				// stream's arrival rate, so admission must stay invisible.
				sp.AdmissionPolicy = "token-bucket"
				rep, recs := runPolicyReplay(t, sp, policy)
				if rep.Jobs != sp.Jobs || rep.Rejected != 0 || rep.Failures != 0 || rep.Timeouts != 0 {
					t.Fatalf("seed %d: jobs %d/%d, rejected %d, failures %d, timeouts %d — starved or shed below saturation",
						seed, rep.Jobs, sp.Jobs, rep.Rejected, rep.Failures, rep.Timeouts)
				}
				if len(recs) != sp.Jobs {
					t.Fatalf("seed %d: recorder saw %d of %d submissions", seed, len(recs), sp.Jobs)
				}
				for _, r := range recs {
					if r.Disposition == jobtrace.DispositionRejected {
						t.Fatalf("seed %d: %s rejected below saturation", seed, r.Key)
					}
				}
			}
		})
	}
}

// meanExecutedWait averages queueing latency over the records that
// actually ran (hits and coalesces wait on the original run, not in a
// lane, so they would dilute both sides of the comparison equally).
func meanExecutedWait(t *testing.T, recs []jobtrace.Record) float64 {
	t.Helper()
	var sum float64
	var n int
	for _, r := range recs {
		if r.Executed() {
			sum += r.WaitMS
			n++
		}
	}
	if n == 0 {
		t.Fatal("no executed records")
	}
	return sum / float64(n)
}

// TestHypothesisSJFBeatsFCFSMeanWait: on a heavy-tailed mix — many
// small reductions, a few sorts three orders of magnitude larger — the
// predicted-cost SJF policy must deliver a strictly lower mean wait
// than FCFS, per seed. This is the classic SJF claim: under FCFS the
// small jobs queue behind whichever giant arrived first; SJF runs the
// cheap work first and the giants absorb the wait instead.
func TestHypothesisSJFBeatsFCFSMeanWait(t *testing.T) {
	base := Spec{
		Name:      "sjf-heavy-tail",
		Jobs:      24,
		Clients:   8,
		SeedSpace: 1 << 20,
		Mix: []MixEntry{
			{Algorithm: "reduce", Engine: "palrt", Weight: 6, MinN: 64, MaxN: 1 << 10},
			{Algorithm: "mergesort", Engine: "palrt", Weight: 1, MinN: 1 << 17, MaxN: 1 << 18},
		},
		// One worker, one shard: pure queueing discipline, no placement
		// or stealing noise in the comparison.
		Workers: 1,
		Shards:  1,
	}
	for _, seed := range hypothesisSeeds {
		sp := deepCopy(base)
		sp.Seed = seed
		_, fcfsRecs := runPolicyReplay(t, sp, "fcfs")
		sp = deepCopy(base)
		sp.Seed = seed
		_, sjfRecs := runPolicyReplay(t, sp, "sjf")
		fcfs := meanExecutedWait(t, fcfsRecs)
		sjf := meanExecutedWait(t, sjfRecs)
		t.Logf("seed %d: mean executed wait fcfs %.2fms, sjf %.2fms", seed, fcfs, sjf)
		if sjf >= fcfs {
			t.Errorf("seed %d: SJF mean wait %.2fms not below FCFS %.2fms on a heavy tail", seed, sjf, fcfs)
		}
	}
}

// deadlineMisses counts response-time deadline misses: submissions
// whose submit→finish span exceeded their class's deadline. This is
// the client-visible miss (queueing included), not the queue's
// execution timeout — which must never fire here, or the policies
// would be compared on truncated runs.
func deadlineMisses(t *testing.T, recs []jobtrace.Record, deadlines map[string]time.Duration) int {
	t.Helper()
	misses := 0
	for _, r := range recs {
		if r.Outcome == jobtrace.OutcomeTimeout {
			t.Fatalf("%s hit its execution timeout; the deadline mix must stay execution-feasible", r.Key)
		}
		d, ok := deadlines[r.Class]
		if !ok {
			t.Fatalf("record %s in unexpected class %q", r.Key, r.Class)
		}
		if r.FinishNS == 0 {
			continue // served instantly (cache hit) — cannot miss
		}
		if time.Duration(r.FinishNS-r.SubmitNS) > d {
			misses++
		}
	}
	return misses
}

// TestHypothesisEDFBeatsFCFSAndDefaultOnMisses: when urgent traffic
// (tight per-class deadline, tiny jobs) shares one worker with relaxed
// traffic (loose deadline, jobs two orders heavier), EDF must produce
// strictly fewer response-time deadline misses than FCFS and than the
// native weighted discipline, per seed. FCFS makes urgent jobs wait out
// the full backlog; the native DWRR gives the urgent class only its
// weight share; EDF serves whatever deadline expires first, so urgent
// jobs overtake every queued sort and at most await one residual run.
func TestHypothesisEDFBeatsFCFSAndDefaultOnMisses(t *testing.T) {
	const urgentDeadline = 75 * time.Millisecond
	const relaxedDeadline = 30 * time.Second
	deadlines := map[string]time.Duration{"urgent": urgentDeadline, "relaxed": relaxedDeadline}
	base := Spec{
		Name:      "deadline-mix",
		Jobs:      36,
		Clients:   12,
		SeedSpace: 1 << 20,
		// Both classes weighted (no strict tier): the policies alone
		// decide who goes first, which is exactly what is under test.
		// The class deadlines are execution budgets too, so they must —
		// and do — sit far above each class's actual service time.
		Classes: jobqueue.ClassSet{
			{Name: "urgent", Weight: 1, DefaultDeadline: urgentDeadline},
			{Name: "relaxed", Weight: 1, DefaultDeadline: relaxedDeadline},
		},
		Mix: []MixEntry{
			{Algorithm: "reduce", Engine: "sim", Weight: 1, MinN: 64, MaxN: 256, Priority: "urgent"},
			{Algorithm: "mergesort", Engine: "palrt", Weight: 1, MinN: 1 << 17, MaxN: 1 << 18, Priority: "relaxed"},
		},
		Workers: 1,
		Shards:  1,
	}
	for _, seed := range hypothesisSeeds {
		missesOf := func(policy string) int {
			sp := deepCopy(base)
			sp.Seed = seed
			_, recs := runPolicyReplay(t, sp, policy)
			return deadlineMisses(t, recs, deadlines)
		}
		edf, fcfs, def := missesOf("edf"), missesOf("fcfs"), missesOf("default")
		t.Logf("seed %d: deadline misses edf %d, fcfs %d, default %d", seed, edf, fcfs, def)
		if edf >= fcfs {
			t.Errorf("seed %d: EDF misses %d not below FCFS %d", seed, edf, fcfs)
		}
		if edf >= def {
			t.Errorf("seed %d: EDF misses %d not below the native discipline's %d", seed, edf, def)
		}
	}
}
