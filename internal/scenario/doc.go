// Package scenario turns "hit the serving system with realistic traffic"
// into a declarative, reproducible artifact. A Spec names an arrival
// process (closed-loop client population, or an open-loop Poisson stream
// at a constant, linearly ramping, or diurnally oscillating rate), a
// weighted algorithm/engine/size mix, a duplicate fraction, a
// priority-class set with per-entry class pinning, a target queue
// shape, and an optional schedule of live shard resizes at stream
// offsets; Stream expands it into the exact deterministic job sequence it
// denotes; and Run replays that sequence against a live jobqueue.Queue,
// returning a Report with per-priority-class latency percentiles,
// throughput, hit rate and per-shard steal counts.
//
// Everything downstream of the seed is deterministic: the same Spec
// always expands to the same jobs with the same cache-key population
// (and, for the open-loop arrivals, the same arrival schedule), so two
// replays on fresh queues report the same job count and hit rate —
// which is what makes scenarios usable as regression probes, not just
// demos. Builtins returns the named scenario catalogue (uniform-small,
// heavy-tail, cache-friendly-repeat, deadline-storm,
// priority-inversion-probe, ramp-surge, diurnal-wave, mid-run-resize,
// all-engines-sweep); cmd/lopramd replays them with -scenario and serves
// the catalogue at /v1/scenarios.
package scenario
