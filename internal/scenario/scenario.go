package scenario

import (
	"fmt"
	"time"

	"lopram/internal/core"
	"lopram/internal/jobqueue"
	"lopram/internal/workload"
)

// Arrival processes a Spec can declare.
const (
	// ArrivalClosed is a closed-loop client population: Clients requests
	// are kept in flight, and each completion immediately triggers the
	// next submission. Throughput self-regulates to the system's
	// capacity, so closed scenarios cannot overrun admission control.
	ArrivalClosed = "closed"
	// ArrivalOpen is an open-loop Poisson stream: submissions arrive at
	// RatePerSec on exponentially spaced gaps regardless of completions,
	// so an underprovisioned queue visibly rejects or queues up — the
	// shape real external traffic has.
	ArrivalOpen = "open"
	// ArrivalRamp is an open-loop Poisson stream whose rate ramps
	// linearly from RampStartPerSec to RatePerSec over RampDuration and
	// then holds — the launch-surge (or, ramping down, the drain) shape
	// that probes how admission and stealing absorb a rate change.
	ArrivalRamp = "ramp"
	// ArrivalDiurnal is an open-loop Poisson stream whose rate
	// oscillates sinusoidally around RatePerSec with relative amplitude
	// DiurnalAmplitude and period DiurnalPeriod — a compressed
	// day/night traffic cycle.
	ArrivalDiurnal = "diurnal"
)

// Ingest paths a Spec can declare.
const (
	// IngestSingle submits one job per Queue.Submit call — the default,
	// and the path the arrival processes shape.
	IngestSingle = "single"
	// IngestBatch submits jobs through the queue's pooled batch-first
	// path (Queue.NewBatch) in BatchSize groups, each group settling
	// before the next is published. Batch ingest ignores the arrival
	// process and client window: it measures the submit path's
	// throughput, so the driver pushes as fast as the queue drains.
	IngestBatch = "batch"
)

// Spec declares one load scenario. The zero values of most fields select
// defaults (see Validate); Seed pins every random choice, so a Spec is a
// complete, reproducible description of a traffic pattern.
type Spec struct {
	// Name identifies the scenario in catalogues and reports.
	Name string `json:"name"`
	// Description says what the scenario is probing for.
	Description string `json:"description,omitempty"`
	// Seed drives every random choice (mix, sizes, duplicates, priority
	// rolls, arrival gaps). Same seed, same traffic.
	Seed uint64 `json:"seed"`
	// Jobs is the total number of submissions to issue.
	Jobs int `json:"jobs"`
	// Arrival selects the arrival process: ArrivalClosed (default),
	// ArrivalOpen, ArrivalRamp or ArrivalDiurnal.
	Arrival string `json:"arrival,omitempty"`
	// RatePerSec is the mean Poisson arrival rate for the open-loop
	// arrivals: the constant rate (ArrivalOpen), the post-ramp rate
	// (ArrivalRamp), or the cycle's base rate (ArrivalDiurnal).
	RatePerSec float64 `json:"rate_per_sec,omitempty"`
	// RampStartPerSec is ArrivalRamp's initial rate; the rate moves
	// linearly from here to RatePerSec over RampDuration. Must be
	// positive (start a surge from a trickle, not from zero).
	RampStartPerSec float64 `json:"ramp_start_per_sec,omitempty"`
	// RampDuration is how long ArrivalRamp takes to reach RatePerSec.
	RampDuration time.Duration `json:"ramp_duration_ns,omitempty"`
	// DiurnalAmplitude is ArrivalDiurnal's relative swing in [0, 1):
	// the rate peaks at RatePerSec×(1+amplitude) and troughs at
	// RatePerSec×(1−amplitude). Default 0.5.
	DiurnalAmplitude float64 `json:"diurnal_amplitude,omitempty"`
	// DiurnalPeriod is ArrivalDiurnal's cycle length.
	DiurnalPeriod time.Duration `json:"diurnal_period_ns,omitempty"`
	// Clients is the closed-loop population size (in-flight window) for
	// ArrivalClosed. Default 16.
	Clients int `json:"clients,omitempty"`
	// Ingest selects the submit path: IngestSingle (default, one Submit
	// per job, shaped by Arrival) or IngestBatch (the pooled batch-first
	// path in BatchSize groups; Arrival and Clients do not apply).
	Ingest string `json:"ingest,omitempty"`
	// BatchSize is IngestBatch's group size; default 64. Only valid with
	// batch ingest.
	BatchSize int `json:"batch_size,omitempty"`
	// DupFraction is the probability that a submission re-issues an
	// earlier spec verbatim — the duplicate traffic the result cache and
	// coalescer exist for.
	DupFraction float64 `json:"dup_fraction,omitempty"`
	// BatchFraction is the probability that a job whose mix entry does
	// not pin a priority is submitted in the batch class; the rest are
	// interactive.
	BatchFraction float64 `json:"batch_fraction,omitempty"`
	// SeedSpace bounds the per-job input seeds to [0, SeedSpace): a
	// small space produces organic duplicates on top of DupFraction.
	// Default 8.
	SeedSpace uint64 `json:"seed_space,omitempty"`
	// Timeout is the per-job deadline stamped on every generated spec;
	// 0 leaves the queue's default in force.
	Timeout time.Duration `json:"timeout_ns,omitempty"`
	// Mix is the weighted traffic composition. Empty means the full
	// catalogue: every algorithm on every engine it supports, uniformly
	// weighted.
	Mix []MixEntry `json:"mix,omitempty"`
	// Classes is the priority-class set the scenario's queue should
	// serve; empty means the default interactive/batch pair. Mix-entry
	// Priority pins and BatchFraction are validated against this set at
	// expansion, and QueueConfig passes it to the queue it shapes.
	Classes jobqueue.ClassSet `json:"classes,omitempty"`
	// Shards and Workers are the queue shape the scenario wants when the
	// harness builds a queue for it (QueueConfig); 0 defers to the
	// harness's own configuration.
	Shards  int `json:"shards,omitempty"`
	Workers int `json:"workers,omitempty"`
	// DequeuePolicy and AdmissionPolicy select the queue's decision
	// policies for the replay (jobqueue.DequeuePolicyNames /
	// AdmissionPolicyNames list the valid values; admission accepts
	// token-bucket[:RATE[:BURST]]). Empty means the native defaults. The
	// policies shape the queue, never the job stream: Stream's output is
	// policy-independent, which is what makes policy A/B replays of one
	// scenario byte-comparable.
	DequeuePolicy   string `json:"dequeue_policy,omitempty"`
	AdmissionPolicy string `json:"admission_policy,omitempty"`
	// Resizes schedules live placement-table changes during the replay:
	// each entry resizes the queue to Shards shards immediately before
	// the submission at stream offset AtJob. Entries must be ordered by
	// AtJob. Because the job stream is independent of the shard count,
	// a resized replay submits byte-identical traffic — only placement
	// moves — which is what lets the replay assert that no job is lost,
	// duplicated or mis-cached across a live resize.
	Resizes []ResizeAt `json:"resizes,omitempty"`
}

// ResizeAt is one scheduled live resize inside a scenario replay.
type ResizeAt struct {
	// AtJob is the 0-based submission offset before which the resize
	// fires; it must lie in [0, Spec.Jobs).
	AtJob int `json:"at_job"`
	// Shards is the placement-table size to resize to, in
	// [1, jobqueue.MaxShards].
	Shards int `json:"shards"`
}

// MixEntry is one weighted slice of a scenario's traffic. Empty Algorithm
// means every catalogue algorithm; empty Engine means every engine the
// algorithm supports; the entry expands to the cross product.
type MixEntry struct {
	Algorithm string `json:"algorithm,omitempty"`
	Engine    string `json:"engine,omitempty"`
	// Weight is the entry's relative probability per expanded
	// (algorithm, engine) pair. Default 1.
	Weight int `json:"weight,omitempty"`
	// MinN and MaxN bound the log-uniform input-size draw. Defaults: 16
	// and the engine's admission limit capped at 65536; both are clamped
	// to the engine's limit.
	MinN int `json:"min_n,omitempty"`
	MaxN int `json:"max_n,omitempty"`
	// Priority pins every job from this entry to a class; empty rolls
	// per job against Spec.BatchFraction. Pinning lets a scenario give
	// its classes different traffic shapes (the priority-inversion probe
	// floods batch with heavy jobs while interactive stays small).
	Priority jobqueue.Class `json:"priority,omitempty"`
}

// pair is one concrete (algorithm, engine) slice of the expanded mix.
type pair struct {
	algo     string
	engine   core.Engine
	weight   int
	minN     int
	maxN     int
	priority jobqueue.Class
}

// sizeCap keeps default size draws in the interactive range; entries
// wanting the engine's full admission limit set MaxN explicitly.
const sizeCap = 1 << 16

// Validate checks the spec and fills defaults in place (it is called by
// Stream and Run; standalone use is for fail-fast config loading).
func (s *Spec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("scenario: missing name")
	}
	if s.Jobs <= 0 {
		return fmt.Errorf("scenario %s: jobs must be positive, got %d", s.Name, s.Jobs)
	}
	switch s.Arrival {
	case "":
		s.Arrival = ArrivalClosed
	case ArrivalClosed, ArrivalOpen, ArrivalRamp, ArrivalDiurnal:
	default:
		return fmt.Errorf("scenario %s: unknown arrival %q (want %q, %q, %q or %q)",
			s.Name, s.Arrival, ArrivalClosed, ArrivalOpen, ArrivalRamp, ArrivalDiurnal)
	}
	if s.Arrival != ArrivalClosed && s.RatePerSec <= 0 {
		return fmt.Errorf("scenario %s: %s arrival needs rate_per_sec > 0", s.Name, s.Arrival)
	}
	if s.Arrival == ArrivalRamp {
		if s.RampStartPerSec <= 0 {
			return fmt.Errorf("scenario %s: ramp arrival needs ramp_start_per_sec > 0", s.Name)
		}
		if s.RampDuration <= 0 {
			return fmt.Errorf("scenario %s: ramp arrival needs ramp_duration_ns > 0", s.Name)
		}
	}
	if s.Arrival == ArrivalDiurnal {
		if s.DiurnalAmplitude == 0 {
			s.DiurnalAmplitude = 0.5
		}
		if s.DiurnalAmplitude < 0 || s.DiurnalAmplitude >= 1 {
			return fmt.Errorf("scenario %s: diurnal_amplitude %v outside [0, 1)", s.Name, s.DiurnalAmplitude)
		}
		if s.DiurnalPeriod <= 0 {
			return fmt.Errorf("scenario %s: diurnal arrival needs diurnal_period_ns > 0", s.Name)
		}
	}
	if s.Clients <= 0 {
		s.Clients = 16
	}
	switch s.Ingest {
	case "", IngestSingle:
		if s.BatchSize != 0 {
			return fmt.Errorf("scenario %s: batch_size needs ingest %q", s.Name, IngestBatch)
		}
	case IngestBatch:
		if s.BatchSize < 0 {
			return fmt.Errorf("scenario %s: batch_size must be positive, got %d", s.Name, s.BatchSize)
		}
		if s.BatchSize == 0 {
			s.BatchSize = 64
		}
	default:
		return fmt.Errorf("scenario %s: unknown ingest %q (want %q or %q)",
			s.Name, s.Ingest, IngestSingle, IngestBatch)
	}
	if s.DupFraction < 0 || s.DupFraction >= 1 {
		return fmt.Errorf("scenario %s: dup_fraction %v outside [0, 1)", s.Name, s.DupFraction)
	}
	if s.BatchFraction < 0 || s.BatchFraction > 1 {
		return fmt.Errorf("scenario %s: batch_fraction %v outside [0, 1]", s.Name, s.BatchFraction)
	}
	if len(s.Classes) > 0 {
		if err := s.Classes.Validate(); err != nil {
			return fmt.Errorf("scenario %s: %w", s.Name, err)
		}
	}
	classes := s.classSet()
	if s.BatchFraction > 0 {
		if _, ok := classes.Index(jobqueue.ClassBatch); !ok {
			return fmt.Errorf("scenario %s: batch_fraction %v needs a %q class in the set (have: %s)",
				s.Name, s.BatchFraction, jobqueue.ClassBatch, classes.Names())
		}
	}
	if s.SeedSpace == 0 {
		s.SeedSpace = 8
	}
	if _, err := jobqueue.ParseDequeuePolicy(s.DequeuePolicy); err != nil {
		return fmt.Errorf("scenario %s: %w", s.Name, err)
	}
	if _, err := jobqueue.ParseAdmissionPolicy(s.AdmissionPolicy); err != nil {
		return fmt.Errorf("scenario %s: %w", s.Name, err)
	}
	for i, r := range s.Resizes {
		if r.AtJob < 0 || r.AtJob >= s.Jobs {
			return fmt.Errorf("scenario %s: resizes[%d]: at_job %d outside [0, %d)", s.Name, i, r.AtJob, s.Jobs)
		}
		if r.Shards < 1 || r.Shards > jobqueue.MaxShards {
			return fmt.Errorf("scenario %s: resizes[%d]: %d shards outside [1, %d]", s.Name, i, r.Shards, jobqueue.MaxShards)
		}
		if i > 0 && r.AtJob < s.Resizes[i-1].AtJob {
			return fmt.Errorf("scenario %s: resizes[%d]: at_job %d out of order (previous %d)", s.Name, i, r.AtJob, s.Resizes[i-1].AtJob)
		}
	}
	for i, e := range s.Mix {
		if e.Algorithm != "" && core.EnginesFor(e.Algorithm) == nil {
			return fmt.Errorf("scenario %s: mix[%d]: unknown algorithm %q", s.Name, i, e.Algorithm)
		}
		if e.Engine != "" {
			if _, err := core.ParseEngine(e.Engine); err != nil {
				return fmt.Errorf("scenario %s: mix[%d]: %v", s.Name, i, err)
			}
		}
		if e.Weight < 0 {
			return fmt.Errorf("scenario %s: mix[%d]: negative weight", s.Name, i)
		}
		if e.Priority != "" {
			if _, ok := classes.Index(e.Priority); !ok {
				return fmt.Errorf("scenario %s: mix[%d]: unknown priority %q (valid classes: %s)",
					s.Name, i, e.Priority, classes.Names())
			}
		}
	}
	if _, err := s.pairs(); err != nil {
		return err
	}
	return nil
}

// classSet is the effective priority-class set: the spec's own, or the
// queue default when none is declared.
func (s *Spec) classSet() jobqueue.ClassSet {
	if len(s.Classes) > 0 {
		return s.Classes
	}
	return jobqueue.DefaultClasses(0)
}

// pairs expands the mix into concrete weighted (algorithm, engine)
// slices, in deterministic catalogue order.
func (s *Spec) pairs() ([]pair, error) {
	mix := s.Mix
	if len(mix) == 0 {
		mix = []MixEntry{{}}
	}
	var out []pair
	for i, e := range mix {
		algos := []string{e.Algorithm}
		if e.Algorithm == "" {
			algos = core.Algorithms()
		}
		expanded := false
		for _, algo := range algos {
			engines := core.EnginesFor(algo)
			if e.Engine != "" {
				engines = []core.Engine{core.Engine(e.Engine)}
			}
			for _, eng := range engines {
				limit := core.MaxN(algo, eng)
				if limit == 0 {
					if e.Algorithm != "" && e.Engine != "" {
						return nil, fmt.Errorf("scenario %s: mix[%d]: %s does not run on engine %s", s.Name, i, algo, eng)
					}
					continue // wildcard expansion skips unsupported pairs
				}
				p := pair{algo: algo, engine: eng, weight: e.Weight, minN: e.MinN, maxN: e.MaxN, priority: e.Priority}
				if p.weight == 0 {
					p.weight = 1
				}
				if p.maxN <= 0 || p.maxN > limit {
					p.maxN = limit
					if e.MaxN <= 0 && p.maxN > sizeCap {
						p.maxN = sizeCap
					}
				}
				if p.minN <= 0 {
					p.minN = 16
				}
				if p.minN > p.maxN {
					p.minN = p.maxN
				}
				out = append(out, p)
				expanded = true
			}
		}
		if !expanded {
			return nil, fmt.Errorf("scenario %s: mix[%d] expands to no runnable (algorithm, engine) pair", s.Name, i)
		}
	}
	return out, nil
}

// Stream expands the scenario into the exact job sequence it denotes:
// Jobs specs in submission order, duplicates and priorities resolved.
// The stream is a pure function of the spec — same spec, same stream —
// which is what makes scenario replays comparable across runs and hosts.
func Stream(s Spec) ([]jobqueue.Spec, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	pairs, err := s.pairs()
	if err != nil {
		return nil, err
	}
	weights := make([]int, len(pairs))
	for i, p := range pairs {
		weights[i] = p.weight
	}
	// Unpinned entries default to the class set's first class, with the
	// BatchFraction roll (always drawn, so streams are byte-identical
	// across class configurations) diverting into the batch class.
	defaultClass := s.classSet()[0].Name
	r := workload.NewRNG(s.Seed)
	specs := make([]jobqueue.Spec, 0, s.Jobs)
	for len(specs) < s.Jobs {
		if len(specs) > 0 && r.Float64() < s.DupFraction {
			// Re-issue an earlier spec verbatim, class included.
			specs = append(specs, specs[r.Intn(len(specs))])
			continue
		}
		p := pairs[workload.Choice(r, weights)]
		class := p.priority
		if class == "" {
			class = defaultClass
			if r.Float64() < s.BatchFraction {
				class = jobqueue.ClassBatch
			}
		}
		specs = append(specs, jobqueue.Spec{
			Algorithm: p.algo,
			N:         workload.LogUniform(r, p.minN, p.maxN),
			Engine:    p.engine,
			Seed:      r.Uint64() % s.SeedSpace,
			Priority:  class,
			Timeout:   s.Timeout,
		})
	}
	return specs, nil
}

// QueueConfig returns the queue shape a standalone replay of the scenario
// should run against: the spec's shard/worker targets, a queue depth that
// accommodates the arrival process, and a result cache big enough that no
// key the scenario re-requests can be evicted — which is what pins the
// replay's hit rate to the spec instead of to cache timing.
func QueueConfig(s Spec) jobqueue.Config {
	// Fill defaults (notably Clients) so the depth math below sees the
	// same numbers Run will; an invalid spec is Run's error to report.
	_ = s.Validate()
	// The cache never-evicts guarantee must hold at every shard count
	// the replay passes through: size it for the widest table.
	shards := s.Shards
	if shards < 1 {
		shards = 1
	}
	for _, r := range s.Resizes {
		if r.Shards > shards {
			shards = r.Shards
		}
	}
	cfg := jobqueue.Config{
		Workers: s.Workers,
		Shards:  s.Shards,
		// The scenario's own class set (validated by Validate); nil
		// keeps the queue's default interactive/batch pair.
		Classes: append(jobqueue.ClassSet(nil), s.Classes...),
		// The scenario's decision policies; empty strings are the native
		// defaults (Validate already vetted the names).
		Policies: jobqueue.Policies{Dequeue: s.DequeuePolicy, Admission: s.AdmissionPolicy},
		// The queue slices the cache evenly per shard but key hashing
		// need not be even, so give every shard a full Jobs-sized slice:
		// then no shard can evict a key the scenario will re-request,
		// whatever the skew.
		CacheSize: shards * (s.Jobs + 64),
		// Scenarios probing deadlines declare their own Timeout; the
		// queue default only has to keep a hung replay from running
		// forever, so it stays far above any honest job's service time
		// (race-detector CI runs included).
		DefaultTimeout: 10 * time.Minute,
	}
	if s.Jobs+s.Clients > 1024 {
		cfg.QueueDepth = s.Jobs + s.Clients
	}
	return cfg
}
