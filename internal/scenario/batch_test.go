package scenario

import (
	"context"
	"testing"

	"lopram/internal/jobqueue"
)

// TestBatchIngestReplay: the pooled batch driver replays a scenario —
// live resizes included — with every submission accounted for: served
// (executed, hit, or coalesced) or rejected, never lost.
func TestBatchIngestReplay(t *testing.T) {
	sp := Spec{
		Name:        "batch-ingest-replay",
		Seed:        7,
		Jobs:        300,
		Ingest:      IngestBatch,
		BatchSize:   32,
		DupFraction: 0.4,
		Mix:         []MixEntry{{Algorithm: "reduce", Engine: "sim", MaxN: 256}},
		Workers:     2,
		Resizes:     []ResizeAt{{AtJob: 100, Shards: 4}, {AtJob: 200, Shards: 2}},
	}
	q := jobqueue.New(QueueConfig(sp))
	defer q.Close()
	rep, err := Run(context.Background(), q, sp)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Jobs != sp.Jobs {
		t.Errorf("jobs = %d, want %d", rep.Jobs, sp.Jobs)
	}
	if rep.Failures != 0 || rep.Rejected != 0 {
		t.Errorf("failures=%d rejected=%d, want 0/0", rep.Failures, rep.Rejected)
	}
	if rep.Resizes != 2 {
		t.Errorf("resizes = %d, want 2", rep.Resizes)
	}
	if served := rep.Executed + rep.CacheHits + rep.Coalesced; served != int64(sp.Jobs) {
		t.Errorf("executed %d + hits %d + coalesced %d = %d, want %d",
			rep.Executed, rep.CacheHits, rep.Coalesced, served, sp.Jobs)
	}
	if rep.CacheHits+rep.Coalesced == 0 {
		t.Error("duplicate-heavy batch replay served nothing from cache or coalescer")
	}
}

// TestBatchIngestMatchesSingle: the same spec replayed through both
// ingest paths serves the identical job stream — total served and the
// executed count (one per distinct key, given an uncapped cache) agree.
func TestBatchIngestMatchesSingle(t *testing.T) {
	base := Spec{
		Name:        "batch-vs-single",
		Seed:        11,
		Jobs:        200,
		DupFraction: 0.3,
		SeedSpace:   4,
		Mix:         []MixEntry{{Algorithm: "reduce", Engine: "sim", MaxN: 128}},
		Workers:     2,
	}
	run := func(sp Spec) Report {
		t.Helper()
		q := jobqueue.New(QueueConfig(sp))
		defer q.Close()
		rep, err := Run(context.Background(), q, sp)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	single := run(base)
	batched := base
	batched.Ingest = IngestBatch
	batch := run(batched)
	if single.Jobs != batch.Jobs {
		t.Fatalf("jobs diverged: single %d, batch %d", single.Jobs, batch.Jobs)
	}
	singleServed := single.Executed + single.CacheHits + single.Coalesced
	batchServed := batch.Executed + batch.CacheHits + batch.Coalesced
	if singleServed != batchServed {
		t.Errorf("served diverged: single %d, batch %d", singleServed, batchServed)
	}
	// With a never-evicting cache each distinct key executes exactly
	// once, whatever the ingest path: hit/coalesce split may differ,
	// executed must not.
	if single.Executed != batch.Executed {
		t.Errorf("executed diverged: single %d, batch %d", single.Executed, batch.Executed)
	}
}

// TestValidateIngest: the ingest field's validation rules.
func TestValidateIngest(t *testing.T) {
	valid := func() Spec { return Spec{Name: "v", Jobs: 10} }
	sp := valid()
	sp.Ingest = "carrier-pigeon"
	if err := sp.Validate(); err == nil {
		t.Error("unknown ingest accepted")
	}
	sp = valid()
	sp.BatchSize = 8
	if err := sp.Validate(); err == nil {
		t.Error("batch_size without batch ingest accepted")
	}
	sp = valid()
	sp.Ingest = IngestBatch
	sp.BatchSize = -1
	if err := sp.Validate(); err == nil {
		t.Error("negative batch_size accepted")
	}
	sp = valid()
	sp.Ingest = IngestBatch
	if err := sp.Validate(); err != nil {
		t.Fatalf("batch ingest rejected: %v", err)
	}
	if sp.BatchSize != 64 {
		t.Errorf("batch_size default = %d, want 64", sp.BatchSize)
	}
	sp = valid()
	sp.Ingest = IngestSingle
	if err := sp.Validate(); err != nil {
		t.Errorf("explicit single ingest rejected: %v", err)
	}
}
