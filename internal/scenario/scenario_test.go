package scenario

import (
	"context"
	"reflect"
	"strings"
	"testing"
	"time"

	"lopram/internal/core"
	"lopram/internal/jobqueue"
	"lopram/internal/stats"
)

// TestBuiltinsValidateAndExpand: every catalogue entry is a complete,
// valid spec whose stream expands to exactly Jobs admissible job specs.
func TestBuiltinsValidateAndExpand(t *testing.T) {
	all := Builtins()
	if len(all) < 6 {
		t.Fatalf("catalogue has %d scenarios, want >= 6", len(all))
	}
	seen := make(map[string]bool)
	for _, sp := range all {
		if seen[sp.Name] {
			t.Errorf("duplicate scenario name %q", sp.Name)
		}
		seen[sp.Name] = true
		if sp.Description == "" {
			t.Errorf("%s: missing description", sp.Name)
		}
		stream, err := Stream(sp)
		if err != nil {
			t.Errorf("%s: %v", sp.Name, err)
			continue
		}
		if len(stream) != sp.Jobs {
			t.Errorf("%s: stream has %d jobs, want %d", sp.Name, len(stream), sp.Jobs)
		}
		for _, js := range stream {
			if err := core.ValidateSpec(js.Algorithm, js.Engine, js.N, js.P); err != nil {
				t.Errorf("%s: generated inadmissible spec %v: %v", sp.Name, js, err)
				break
			}
			if js.Priority != jobqueue.ClassInteractive && js.Priority != jobqueue.ClassBatch {
				t.Errorf("%s: generated spec without a class: %v", sp.Name, js)
				break
			}
		}
		if _, ok := Builtin(sp.Name); !ok {
			t.Errorf("Builtin(%q) not found", sp.Name)
		}
	}
	if _, ok := Builtin("no-such-scenario"); ok {
		t.Error("Builtin returned an unknown scenario")
	}
}

// TestStreamDeterminism: the stream is a pure function of the spec.
func TestStreamDeterminism(t *testing.T) {
	for _, sp := range Builtins() {
		a, err := Stream(sp)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Stream(sp)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s: two expansions of one spec diverged", sp.Name)
		}
		sp.Seed++
		c, err := Stream(sp)
		if err != nil {
			t.Fatal(err)
		}
		if reflect.DeepEqual(a, c) {
			t.Errorf("%s: changing the seed did not change the stream", sp.Name)
		}
	}
}

// TestValidateRejects: malformed specs fail fast with telling errors.
func TestValidateRejects(t *testing.T) {
	cases := []struct {
		spec Spec
		want string
	}{
		{Spec{Jobs: 10}, "missing name"},
		{Spec{Name: "x"}, "jobs must be positive"},
		{Spec{Name: "x", Jobs: 1, Arrival: "fractal"}, "unknown arrival"},
		{Spec{Name: "x", Jobs: 1, Arrival: ArrivalOpen}, "rate_per_sec"},
		{Spec{Name: "x", Jobs: 1, DupFraction: 1.5}, "dup_fraction"},
		{Spec{Name: "x", Jobs: 1, BatchFraction: -1}, "batch_fraction"},
		{Spec{Name: "x", Jobs: 1, Mix: []MixEntry{{Algorithm: "nope"}}}, "unknown algorithm"},
		{Spec{Name: "x", Jobs: 1, Mix: []MixEntry{{Engine: "gpu"}}}, "unknown engine"},
		{Spec{Name: "x", Jobs: 1, Mix: []MixEntry{{Algorithm: "quicksort", Engine: "sim"}}}, "does not run on"},
		{Spec{Name: "x", Jobs: 1, Mix: []MixEntry{{Priority: "vip"}}}, "unknown priority"},
		{Spec{Name: "x", Jobs: 1, Arrival: ArrivalRamp, RatePerSec: 100}, "ramp_start_per_sec"},
		{Spec{Name: "x", Jobs: 1, Arrival: ArrivalRamp, RatePerSec: 100, RampStartPerSec: 10}, "ramp_duration_ns"},
		{Spec{Name: "x", Jobs: 1, Arrival: ArrivalRamp, RampStartPerSec: 10, RampDuration: time.Second}, "rate_per_sec"},
		{Spec{Name: "x", Jobs: 1, Arrival: ArrivalDiurnal, RatePerSec: 100}, "diurnal_period_ns"},
		{Spec{Name: "x", Jobs: 1, Arrival: ArrivalDiurnal, RatePerSec: 100, DiurnalPeriod: time.Second, DiurnalAmplitude: 1.5}, "diurnal_amplitude"},
		{Spec{Name: "x", Jobs: 1, Classes: jobqueue.ClassSet{{Name: "a", Weight: 1}, {Name: "a", Weight: 1}}}, "duplicate"},
		{Spec{Name: "x", Jobs: 1, BatchFraction: 0.5, Classes: jobqueue.ClassSet{{Name: "gold", Weight: 1}}}, "needs a \"batch\" class"},
		{Spec{Name: "x", Jobs: 1, Classes: jobqueue.ClassSet{{Name: "gold", Weight: 1}},
			Mix: []MixEntry{{Priority: jobqueue.ClassBatch}}}, "unknown priority"},
	}
	for _, c := range cases {
		err := c.spec.Validate()
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("Validate(%+v) = %v, want error containing %q", c.spec, err, c.want)
		}
	}
}

// replay runs the named builtin on a fresh queue shaped by QueueConfig,
// shrunk to jobs submissions (0 keeps the builtin's count) so the test
// suite exercises the full machinery without the CLI-sized run times.
func replay(t *testing.T, name string, jobs int) Report {
	t.Helper()
	sp, ok := Builtin(name)
	if !ok {
		t.Fatalf("no builtin %q", name)
	}
	if jobs > 0 {
		sp.Jobs = jobs
	}
	q := jobqueue.New(QueueConfig(sp))
	defer q.Close()
	rep, err := Run(context.Background(), q, sp)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	return rep
}

// TestReplayDeterminism is the acceptance test for scenario replays: the
// same seed on a fresh queue yields the same job count, execution count
// and cache hit rate — timing may move, the traffic may not.
func TestReplayDeterminism(t *testing.T) {
	a := replay(t, "cache-friendly-repeat", 150)
	b := replay(t, "cache-friendly-repeat", 150)
	if a.Jobs != b.Jobs || a.Jobs != 150 {
		t.Errorf("job counts diverged: %d vs %d (want 150)", a.Jobs, b.Jobs)
	}
	if a.Executed != b.Executed {
		t.Errorf("executed diverged: %d vs %d", a.Executed, b.Executed)
	}
	if a.HitRate != b.HitRate {
		t.Errorf("hit rate diverged: %v vs %v", a.HitRate, b.HitRate)
	}
	// 75% declared duplicates over a 2-value seed space: the replay must
	// be overwhelmingly served without execution.
	if a.HitRate < 0.5 {
		t.Errorf("hit rate %.2f, want >= 0.5 for the repeat-heavy scenario", a.HitRate)
	}
	// The closed-loop window guarantees that duplicates referencing
	// positions older than the window find a settled, cached result —
	// actual cache hits, not just in-flight coalesces. (Regression: an
	// unvalidated arrival mode once turned the window off and every
	// duplicate coalesced.)
	if a.CacheHits == 0 {
		t.Error("no cache hits: the closed-loop window is not holding submissions back")
	}
	if a.Failures != 0 || a.Rejected != 0 {
		t.Errorf("failures=%d rejected=%d, want 0", a.Failures, a.Rejected)
	}
}

// TestUniformSmallReplay: the smoke scenario completes cleanly on its
// declared 4-shard queue and fills the per-class and per-shard report.
func TestUniformSmallReplay(t *testing.T) {
	rep := replay(t, "uniform-small", 60)
	if rep.Jobs != 60 || rep.Failures != 0 || rep.Rejected != 0 {
		t.Fatalf("jobs=%d failures=%d rejected=%d, want 60/0/0", rep.Jobs, rep.Failures, rep.Rejected)
	}
	if rep.Executed == 0 || rep.Executed > 60 {
		t.Errorf("executed = %d, want in (0, 60]", rep.Executed)
	}
	if len(rep.PerShard) != 4 {
		t.Errorf("report covers %d shards, want 4", len(rep.PerShard))
	}
	cs, ok := rep.PerClass[jobqueue.ClassInteractive]
	if !ok || cs.Wall.Count == 0 {
		t.Errorf("interactive class summary missing or empty: %+v", rep.PerClass)
	}
	var sb strings.Builder
	rep.WriteText(&sb)
	for _, want := range []string{"uniform-small", "p99", "| interactive ", "shards:"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("report text missing %q:\n%s", want, sb.String())
		}
	}
}

// TestWriteTextAlignsLongClassNames: the per-class block computes its
// column widths from the data, so a class name longer than the old
// fixed 12-char field keeps every table line the same width.
func TestWriteTextAlignsLongClassNames(t *testing.T) {
	rep := Report{
		Scenario: "alignment-probe",
		PerClass: map[jobqueue.Class]jobqueue.ClassStats{
			"interactive-latency-sensitive-tier": {Submitted: 7, Wall: stats.Summary{Count: 7, P50: 1.5}},
			"b":                                  {Submitted: 31234, Wall: stats.Summary{Count: 3, P50: 120.25}},
		},
	}
	var sb strings.Builder
	rep.WriteText(&sb)
	var widths []int
	for _, line := range strings.Split(sb.String(), "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "|") {
			widths = append(widths, len([]rune(line)))
		}
	}
	if len(widths) != 4 { // header, rule, two class rows
		t.Fatalf("expected 4 table lines, got %d:\n%s", len(widths), sb.String())
	}
	for _, w := range widths {
		if w != widths[0] {
			t.Errorf("table lines have unequal widths %v:\n%s", widths, sb.String())
			break
		}
	}
	if !strings.Contains(sb.String(), "interactive-latency-sensitive-tier") {
		t.Errorf("long class name missing from report:\n%s", sb.String())
	}
}

// TestOpenArrival: a small open-loop Poisson replay issues every job on
// its schedule and terminates.
func TestOpenArrival(t *testing.T) {
	sp := Spec{
		Name:       "open-probe",
		Seed:       11,
		Jobs:       40,
		Arrival:    ArrivalOpen,
		RatePerSec: 4000,
		Mix:        []MixEntry{{Algorithm: "reduce", Engine: "sim", MaxN: 256}},
	}
	q := jobqueue.New(QueueConfig(sp))
	defer q.Close()
	rep, err := Run(context.Background(), q, sp)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Jobs != 40 {
		t.Errorf("jobs = %d, want 40", rep.Jobs)
	}
	if rep.Elapsed <= 0 {
		t.Error("no elapsed time recorded")
	}
}

// TestShapedArrivalReplays: the ramp and diurnal builtins issue every
// job on their shaped schedules and terminate cleanly; the stream (and so
// the class mix) is identical to a closed replay of the same spec.
func TestShapedArrivalReplays(t *testing.T) {
	for _, name := range []string{"ramp-surge", "diurnal-wave"} {
		sp, ok := Builtin(name)
		if !ok {
			t.Fatalf("no builtin %q", name)
		}
		sp.Jobs = 40
		// Compress the shapes so the test replays in well under a second
		// while still sweeping the whole rate range.
		switch sp.Arrival {
		case ArrivalRamp:
			sp.RampDuration = 100 * time.Millisecond
		case ArrivalDiurnal:
			sp.DiurnalPeriod = 50 * time.Millisecond
		}
		q := jobqueue.New(QueueConfig(sp))
		rep, err := Run(context.Background(), q, sp)
		q.Close()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if rep.Jobs != 40 {
			t.Errorf("%s: jobs = %d, want 40", name, rep.Jobs)
		}
		if rep.Failures != 0 {
			t.Errorf("%s: %d failures", name, rep.Failures)
		}
		if rep.Elapsed <= 0 {
			t.Errorf("%s: no elapsed time", name)
		}
	}
}

// TestCustomClassSetReplay: a scenario can declare its own class set;
// pinned entries land in it and the per-class report is keyed by the
// custom names.
func TestCustomClassSetReplay(t *testing.T) {
	sp := Spec{
		Name: "three-tier",
		Seed: 21,
		Jobs: 45,
		Classes: jobqueue.ClassSet{
			{Name: "gold", Weight: 4},
			{Name: "silver", Weight: 2},
			{Name: "bronze", Weight: 1, Quota: 0.5},
		},
		Mix: []MixEntry{
			{Algorithm: "reduce", Engine: "sim", MaxN: 128, Priority: "gold"},
			{Algorithm: "reduce", Engine: "palrt", MaxN: 128, Priority: "silver"},
			{Algorithm: "mergesort", Engine: "sim", MaxN: 128, Priority: "bronze"},
		},
		Workers: 2,
	}
	stream, err := Stream(sp)
	if err != nil {
		t.Fatal(err)
	}
	for _, js := range stream {
		switch js.Priority {
		case "gold", "silver", "bronze":
		default:
			t.Fatalf("stream produced class %q outside the declared set", js.Priority)
		}
	}
	q := jobqueue.New(QueueConfig(sp))
	defer q.Close()
	rep, err := Run(context.Background(), q, sp)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failures != 0 || rep.Rejected != 0 {
		t.Fatalf("failures=%d rejected=%d, want 0/0", rep.Failures, rep.Rejected)
	}
	var submitted int64
	for _, name := range []jobqueue.Class{"gold", "silver", "bronze"} {
		submitted += rep.PerClass[name].Submitted
	}
	if submitted == 0 {
		t.Errorf("per-class report empty for the custom set: %+v", rep.PerClass)
	}
	// An unpinned entry defaults to the set's first class.
	sp.Mix = []MixEntry{{Algorithm: "reduce", Engine: "sim", MaxN: 128}}
	stream, err = Stream(sp)
	if err != nil {
		t.Fatal(err)
	}
	if stream[0].Priority != "gold" {
		t.Errorf("unpinned entry got class %q, want the default gold", stream[0].Priority)
	}
}

// TestRunCancellation: a cancelled context stops the replay promptly with
// the context's error.
func TestRunCancellation(t *testing.T) {
	sp, _ := Builtin("uniform-small")
	q := jobqueue.New(QueueConfig(sp))
	defer q.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	if _, err := Run(ctx, q, sp); err == nil {
		t.Fatal("cancelled replay reported no error")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancelled replay took %v to return", elapsed)
	}
}

// TestValidateRejectsResizes: malformed resize schedules fail fast.
func TestValidateRejectsResizes(t *testing.T) {
	cases := []struct {
		resizes []ResizeAt
		want    string
	}{
		{[]ResizeAt{{AtJob: -1, Shards: 2}}, "at_job"},
		{[]ResizeAt{{AtJob: 10, Shards: 2}}, "at_job"},
		{[]ResizeAt{{AtJob: 1, Shards: 0}}, "shards"},
		{[]ResizeAt{{AtJob: 1, Shards: jobqueue.MaxShards + 1}}, "shards"},
		{[]ResizeAt{{AtJob: 5, Shards: 2}, {AtJob: 1, Shards: 4}}, "out of order"},
	}
	for _, c := range cases {
		sp := Spec{Name: "x", Jobs: 10, Resizes: c.resizes}
		err := sp.Validate()
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("Validate(resizes=%v) = %v, want error containing %q", c.resizes, err, c.want)
		}
	}
}

// streamKeys counts the distinct result-cache identities in a stream.
// Priority and Timeout are not part of the identity; P is derived
// deterministically from N when unset, so (algorithm, n, engine, seed)
// is exact for scenario-generated specs.
func streamKeys(stream []jobqueue.Spec) int {
	type key struct {
		algo   string
		n      int
		engine string
		seed   uint64
	}
	seen := make(map[key]bool)
	for _, js := range stream {
		seen[key{js.Algorithm, js.N, string(js.Engine), js.Seed}] = true
	}
	return len(seen)
}

// TestMidRunResizeReplay is the acceptance test for live elasticity: the
// builtin replays its full stream across a 1→4→2 resize sequence and no
// job may be lost (every submission accounted), duplicated (every
// distinct key executes exactly once) or mis-cached (every duplicate is
// served without execution); the post-resize report is deterministic and
// matches a fixed-shard replay of the identical stream.
func TestMidRunResizeReplay(t *testing.T) {
	sp, ok := Builtin("mid-run-resize")
	if !ok {
		t.Fatal("no builtin mid-run-resize")
	}
	stream, err := Stream(sp)
	if err != nil {
		t.Fatal(err)
	}
	distinct := int64(streamKeys(stream))

	a := replay(t, "mid-run-resize", 0)
	if a.Jobs != sp.Jobs || a.Failures != 0 || a.Rejected != 0 {
		t.Fatalf("jobs=%d failures=%d rejected=%d, want %d/0/0 (no job lost)", a.Jobs, a.Failures, a.Rejected, sp.Jobs)
	}
	if a.Resizes != 2 || a.Epoch != 3 {
		t.Errorf("resizes=%d epoch=%d, want 2 applied resizes ending at epoch 3", a.Resizes, a.Epoch)
	}
	if a.Executed != distinct {
		t.Errorf("executed = %d, want %d (each distinct key exactly once across all epochs)", a.Executed, distinct)
	}
	if served := a.CacheHits + a.Coalesced; served != int64(sp.Jobs)-distinct {
		t.Errorf("hits+coalesced = %d, want %d (every duplicate served without execution)", served, int64(sp.Jobs)-distinct)
	}
	if len(a.PerShard) != 2 {
		t.Errorf("final per-shard table has %d entries, want 2", len(a.PerShard))
	}

	// Deterministic across replays, and equal in traffic accounting to a
	// fixed-shard replay of the byte-identical stream.
	b := replay(t, "mid-run-resize", 0)
	if a.Executed != b.Executed || a.HitRate != b.HitRate {
		t.Errorf("replays diverged: executed %d vs %d, hit rate %v vs %v", a.Executed, b.Executed, a.HitRate, b.HitRate)
	}
	fixed := sp
	fixed.Resizes = nil
	fixed.Shards = 2
	q := jobqueue.New(QueueConfig(fixed))
	defer q.Close()
	c, err := Run(context.Background(), q, fixed)
	if err != nil {
		t.Fatal(err)
	}
	if c.Executed != a.Executed || c.HitRate != a.HitRate {
		t.Errorf("resized replay changed the traffic: executed %d (fixed %d), hit rate %v (fixed %v)",
			a.Executed, c.Executed, a.HitRate, c.HitRate)
	}

	// The report renders the resize line.
	var sb strings.Builder
	a.WriteText(&sb)
	if !strings.Contains(sb.String(), "live resizes: 2") {
		t.Errorf("report text missing the resize line:\n%s", sb.String())
	}
}
