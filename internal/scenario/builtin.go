package scenario

import (
	"sort"
	"time"

	"lopram/internal/jobqueue"
)

// builtins is the named scenario catalogue. Each entry is a complete
// Spec: replaying a builtin needs nothing but its name and a queue.
var builtins = []Spec{
	{
		Name:        "uniform-small",
		Description: "Baseline mixed traffic: every sim/palrt algorithm at small sizes, uniform weights, a moderate duplicate fraction. The smoke scenario every queue change should keep flat.",
		Seed:        1,
		Jobs:        200,
		Clients:     16,
		DupFraction: 0.25,
		Mix: []MixEntry{
			// The sim engine's DP entries do Θ(n²) model bookkeeping per
			// run, so "small" is smaller there than on the real runtime;
			// the palrt cap keeps the cubic matrixchain entry small too.
			{Engine: "sim", MaxN: 96},
			{Engine: "palrt", MaxN: 256},
		},
		Shards:  4,
		Workers: 4,
	},
	{
		Name:        "heavy-tail",
		Description: "Log-uniform sizes up to the engines' admission limits: a few huge jobs dominate service time while small jobs queue behind them — the head-of-line shape that makes work stealing and sharding earn their keep.",
		Seed:        2,
		Jobs:        80,
		Clients:     8,
		DupFraction: 0.1,
		SeedSpace:   32,
		Mix: []MixEntry{
			{Algorithm: "mergesort", Engine: "palrt", MaxN: 1 << 18},
			{Algorithm: "quicksort", Engine: "palrt", MaxN: 1 << 18},
			{Algorithm: "reduce", Engine: "palrt", MaxN: 1 << 19},
			{Algorithm: "prefixsums", Engine: "palrt", MaxN: 1 << 19},
			{Algorithm: "mergesort", Engine: "sim", MaxN: 1 << 16},
		},
		Shards:  4,
		Workers: 4,
	},
	{
		Name:        "cache-friendly-repeat",
		Description: "Repeat-heavy traffic (75% duplicates over a tiny seed space): almost everything should be served from the result cache or coalesced onto an in-flight run. Probes the memoization path; hit rate is the acceptance number.",
		Seed:        3,
		Jobs:        300,
		Clients:     16,
		DupFraction: 0.75,
		SeedSpace:   2,
		Mix: []MixEntry{
			{Engine: "sim", MaxN: 96},
			{Engine: "palrt", MaxN: 128},
		},
		Shards:  2,
		Workers: 4,
	},
	{
		Name:        "deadline-storm",
		Description: "Every job carries a deadline far below its service time: all traffic blows its deadline and the orphan budget must bound abandoned runs. Probes timeout accounting and backpressure, not throughput.",
		Seed:        4,
		Jobs:        60,
		Clients:     8,
		Timeout:     2 * time.Millisecond,
		Mix: []MixEntry{
			{Algorithm: "mergesort", Engine: "palrt", MinN: 1 << 15, MaxN: 1 << 17},
			{Algorithm: "editdistance", Engine: "palrt", MinN: 512, MaxN: 1 << 11},
		},
		Shards:  2,
		Workers: 4,
	},
	{
		Name:        "priority-inversion-probe",
		Description: "A 4:1 flood of heavy batch sorts with sparse small interactive probes riding on top: per-class admission and interactive-first dequeueing should hold the interactive wait percentiles far below batch. The per-class report is the verdict.",
		Seed:        5,
		Jobs:        120,
		Clients:     12,
		Mix: []MixEntry{
			{Algorithm: "mergesort", Engine: "palrt", Weight: 4, MinN: 1 << 14, MaxN: 1 << 16, Priority: jobqueue.ClassBatch},
			{Algorithm: "reduce", Engine: "sim", Weight: 1, MinN: 64, MaxN: 256, Priority: jobqueue.ClassInteractive},
		},
		Shards:  2,
		Workers: 2,
	},
	{
		Name:            "ramp-surge",
		Description:     "An open-loop launch surge: the Poisson arrival rate ramps linearly from a 100/s trickle to 2000/s over 1.5s while the job mix stays small. Probes how per-class admission lanes and work stealing absorb a rate change instead of a steady state.",
		Seed:            7,
		Jobs:            150,
		Arrival:         ArrivalRamp,
		RampStartPerSec: 100,
		RatePerSec:      2000,
		RampDuration:    1500 * time.Millisecond,
		DupFraction:     0.2,
		Mix: []MixEntry{
			{Engine: "sim", MaxN: 96},
			{Engine: "palrt", MaxN: 128},
		},
		Shards:  2,
		Workers: 4,
	},
	{
		Name:             "diurnal-wave",
		Description:      "A compressed day/night cycle: open-loop arrivals oscillate ±70% around 600/s with a 150ms period, so the replay crosses two full peaks and troughs. The batch fraction rides along, probing how the weighted dequeue treats a tidal backlog.",
		Seed:             8,
		Jobs:             180,
		Arrival:          ArrivalDiurnal,
		RatePerSec:       600,
		DiurnalAmplitude: 0.7,
		DiurnalPeriod:    150 * time.Millisecond,
		DupFraction:      0.15,
		BatchFraction:    0.3,
		Mix: []MixEntry{
			{Engine: "sim", MaxN: 96},
			{Engine: "palrt", MaxN: 128},
		},
		Shards:  2,
		Workers: 4,
	},
	{
		Name:        "mid-run-resize",
		Description: "Live elasticity probe: a duplicate-heavy closed-loop mix starts on one shard, grows to four a third of the way in, then shrinks to two — asserting that no job is lost, duplicated or served a stale cache entry across live placement swaps. Executed count and hit rate must match a fixed-shard replay of the same stream.",
		Seed:        9,
		Jobs:        240,
		Clients:     16,
		DupFraction: 0.35,
		SeedSpace:   4,
		Mix: []MixEntry{
			{Engine: "sim", MaxN: 96},
			{Engine: "palrt", MaxN: 128},
		},
		Shards:  1,
		Workers: 4,
		Resizes: []ResizeAt{
			{AtJob: 80, Shards: 4},
			{AtJob: 160, Shards: 2},
		},
	},
	{
		Name:        "all-engines-sweep",
		Description: "The whole catalogue across all three engines, pram baseline included, at defaulted sizes — the coverage scenario that exercises every (algorithm, engine) dispatch path in one replay.",
		Seed:        6,
		Jobs:        120,
		Clients:     16,
		DupFraction: 0.2,
		Mix: []MixEntry{
			{Engine: "sim"},
			{Engine: "palrt"},
			{Engine: "pram", MaxN: 1 << 12},
		},
		Shards:  4,
		Workers: 4,
	},
}

// Builtins returns the named scenario catalogue, sorted by name. Every
// entry is a deep copy (Mix included); mutating it does not affect the
// catalogue.
func Builtins() []Spec {
	out := make([]Spec, 0, len(builtins))
	for _, s := range builtins {
		out = append(out, deepCopy(s))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Builtin returns a deep copy of the named built-in scenario.
func Builtin(name string) (Spec, bool) {
	for _, s := range builtins {
		if s.Name == name {
			return deepCopy(s), true
		}
	}
	return Spec{}, false
}

// deepCopy detaches a spec from the catalogue's backing arrays so
// callers can customize it (shrink Jobs, retarget Shards, edit Mix or
// Classes) without corrupting the shared catalogue.
func deepCopy(s Spec) Spec {
	s.Mix = append([]MixEntry(nil), s.Mix...)
	s.Classes = append(jobqueue.ClassSet(nil), s.Classes...)
	return s
}
