package scenario

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"lopram/internal/jobqueue"
	"lopram/internal/stats"
	"lopram/internal/trace"
	"lopram/internal/workload"
)

// Report is the outcome of one scenario replay. Counter fields are deltas
// across the run (valid on a shared live queue); the latency summaries
// come from the queue's metric rings, so on a queue that served other
// traffic they include that traffic's samples too — replay against a
// fresh queue (QueueConfig) when the percentiles must be scenario-only.
type Report struct {
	Scenario string        `json:"scenario"`
	Jobs     int           `json:"jobs"`     // submissions issued
	Rejected int64         `json:"rejected"` // refused by admission control
	Failures int           `json:"failures"` // jobs that ran and failed (incl. deadlines)
	Elapsed  time.Duration `json:"elapsed"`
	// JobsPerSec is issued jobs over elapsed wall time.
	JobsPerSec float64 `json:"jobs_per_sec"`

	// Resizes counts the scheduled live resizes applied during the
	// replay; Epoch is the queue's placement epoch after it (creation is
	// epoch 1 and each applied resize adds one, so on a fresh queue
	// Epoch = 1 + Resizes + any autoscaler activity).
	Resizes int    `json:"resizes,omitempty"`
	Epoch   uint64 `json:"epoch,omitempty"`

	Executed  int64 `json:"executed"`
	CacheHits int64 `json:"cache_hits"`
	Coalesced int64 `json:"coalesced"`
	Timeouts  int64 `json:"timeouts"`
	Steals    int64 `json:"steals"`
	// HitRate is the served-without-execution fraction over this run's
	// traffic: (cache hits + coalesced) / (those + cache misses).
	HitRate float64 `json:"hit_rate"`

	// PerClass carries each priority class's latency percentiles — the
	// acceptance signal for priority scheduling (interactive p99 staying
	// flat under batch pressure).
	PerClass map[jobqueue.Class]jobqueue.ClassStats `json:"per_class"`
	PerShard []jobqueue.ShardStats                  `json:"per_shard,omitempty"`
	Wall     stats.Summary                          `json:"wall_ms"`
	Wait     stats.Summary                          `json:"wait_ms"`
}

// Progress is one periodic snapshot of a replay in flight, delivered to
// RunOptions.Progress — the payload behind lopramd's NDJSON streaming.
type Progress struct {
	Scenario string `json:"scenario"`
	// Total is the stream length; Submitted counts submissions issued
	// so far (rejections included), Done the submissions that reached a
	// terminal state, Rejected the admission refusals.
	Total     int     `json:"total"`
	Submitted int     `json:"submitted"`
	Done      int     `json:"done"`
	Rejected  int64   `json:"rejected"`
	Resizes   int     `json:"resizes,omitempty"`
	ElapsedMS float64 `json:"elapsed_ms"`
}

// RunOptions customizes a replay. The zero value reproduces Run.
type RunOptions struct {
	// Progress, when set, is called with a periodic snapshot of the
	// replay from a dedicated goroutine; the final call happens before
	// RunWith returns. It must be safe to call concurrently with the
	// submitting goroutines' work but is never called concurrently with
	// itself.
	Progress func(Progress)
	// ProgressEvery is the snapshot interval; default 500ms.
	ProgressEvery time.Duration
}

// Run replays the scenario against q: expands the deterministic job
// stream, submits it under the declared arrival process, waits for every
// admitted job, and reports. Job-level failures (deadlines, admission
// rejections) are reported, not errors; an error means the replay itself
// could not proceed (invalid spec, closed queue, cancelled context).
func Run(ctx context.Context, q *jobqueue.Queue, s Spec) (Report, error) {
	return RunWith(ctx, q, s, RunOptions{})
}

// RunWith is Run with progress reporting: opts.Progress receives
// periodic snapshots of the replay while it runs.
func RunWith(ctx context.Context, q *jobqueue.Queue, s Spec, opts RunOptions) (Report, error) {
	// Validate fills the defaults (arrival mode, client window, seed
	// space) into this copy — the arrival logic below depends on them,
	// not just Stream.
	if err := s.Validate(); err != nil {
		return Report{}, err
	}
	stream, err := Stream(s)
	if err != nil {
		return Report{}, err
	}
	before := q.Snapshot()
	// Arrival gaps come from their own stream so the job mix stays
	// byte-identical between open and closed replays of one spec.
	gapRNG := workload.NewRNG(s.Seed ^ 0x9e3779b97f4a7c15)

	start := time.Now()
	report := Report{Scenario: s.Name}
	// The live counters are atomics so the progress goroutine can read
	// them mid-replay; fill copies them into the report before any
	// return.
	var submitted, done, rejected, resizes atomic.Int64
	fill := func() {
		report.Jobs = int(submitted.Load())
		report.Rejected = rejected.Load()
		report.Resizes = int(resizes.Load())
	}
	if opts.Progress != nil {
		snap := func() Progress {
			return Progress{
				Scenario:  s.Name,
				Total:     len(stream),
				Submitted: int(submitted.Load()),
				Done:      int(done.Load()),
				Rejected:  rejected.Load(),
				Resizes:   int(resizes.Load()),
				ElapsedMS: float64(time.Since(start)) / float64(time.Millisecond),
			}
		}
		every := opts.ProgressEvery
		if every <= 0 {
			every = 500 * time.Millisecond
		}
		stopProg := make(chan struct{})
		progDone := make(chan struct{})
		go func() {
			defer close(progDone)
			ticker := time.NewTicker(every)
			defer ticker.Stop()
			for {
				select {
				case <-ticker.C:
					opts.Progress(snap())
				case <-stopProg:
					opts.Progress(snap())
					return
				}
			}
		}()
		// Synchronous shutdown: the final snapshot is delivered before
		// RunWith returns, and never after.
		defer func() {
			close(stopProg)
			<-progDone
		}()
	}
	var failures atomic.Int64
	if s.Ingest == IngestBatch {
		// Batch ingest: publish the stream through the pooled batch-first
		// path in BatchSize groups. Scheduled resizes still fire at their
		// stream offsets — the pending group settles first, so a resize
		// never races its own group's outcomes — and admission refusals
		// are outcomes read from the settled slots, exactly as the
		// single-submit path counts its Submit errors.
		b := q.NewBatch()
		flush := func() error {
			if b.Len() == 0 {
				return nil
			}
			if err := b.Wait(ctx); err != nil {
				// Frames are still in flight: by the arena contract the
				// batch must not be released; leak it to the GC.
				return err
			}
			for i := 0; i < b.Len(); i++ {
				if _, err := b.Outcome(i); err != nil {
					switch {
					case errors.Is(err, jobqueue.ErrQueueFull), errors.Is(err, jobqueue.ErrDeadlineInfeasible):
						rejected.Add(1)
						continue // rejected slots never reach a terminal run
					default:
						failures.Add(1)
					}
				}
				done.Add(1)
			}
			b.Release()
			b = q.NewBatch()
			return nil
		}
		nextResize := 0
		for i, spec := range stream {
			if err := ctx.Err(); err != nil {
				fill()
				return report, err
			}
			if nextResize < len(s.Resizes) && s.Resizes[nextResize].AtJob == i {
				if err := flush(); err != nil {
					fill()
					return report, err
				}
				for nextResize < len(s.Resizes) && s.Resizes[nextResize].AtJob == i {
					if _, err := q.Resize(s.Resizes[nextResize].Shards); err != nil {
						fill()
						return report, fmt.Errorf("scenario %s: resize to %d shards at job %d: %w",
							s.Name, s.Resizes[nextResize].Shards, i, err)
					}
					resizes.Add(1)
					nextResize++
				}
			}
			if err := b.Submit(spec); err != nil {
				// Scenario streams are valid by construction, so a Submit
				// error here is the queue refusing outright (ErrClosed) —
				// a replay error, like the single path's abort. Settle
				// what was published before reporting it.
				submitted.Add(1)
				_ = flush()
				fill()
				return report, fmt.Errorf("scenario %s: submitting %s: %w", s.Name, spec, err)
			}
			submitted.Add(1)
			if b.Len() >= s.BatchSize {
				if err := flush(); err != nil {
					fill()
					return report, err
				}
			}
		}
		if err := flush(); err != nil {
			fill()
			return report, err
		}
		return finishReport(q, before, start, &report, fill, &failures)
	}
	// sched is the cumulative scheduled arrival time of the open-loop
	// variants. Rate shaping (ramp, diurnal) evaluates the instantaneous
	// rate at the *scheduled* clock, not the wall clock, so the arrival
	// schedule — like the job stream — is a pure function of the spec.
	var sched time.Duration
	nextGap := func() time.Duration {
		rate := s.RatePerSec
		switch s.Arrival {
		case ArrivalRamp:
			rate = workload.RampRate(sched, s.RampDuration, s.RampStartPerSec, s.RatePerSec)
		case ArrivalDiurnal:
			rate = workload.DiurnalRate(sched, s.DiurnalPeriod, s.RatePerSec, s.DiurnalAmplitude)
		}
		gap := workload.ExpSpacing(gapRNG, rate)
		sched += gap
		return gap
	}
	// Closed-loop window: a counting semaphore of Clients slots, each
	// released by whichever job finishes next — any completion triggers
	// the next submission, so a slow head-of-line job occupies one slot,
	// not the whole window. (Open arrival ignores the window: that is
	// the point of open-loop load.)
	window := make(chan struct{}, s.Clients)
	var waiters sync.WaitGroup
	watch := func(job *jobqueue.Job) {
		defer waiters.Done()
		if _, err := job.Wait(ctx); err != nil && ctx.Err() == nil {
			failures.Add(1)
		}
		done.Add(1)
		if s.Arrival == ArrivalClosed {
			<-window
		}
	}

	nextResize := 0
	for i, spec := range stream {
		if err := ctx.Err(); err != nil {
			waiters.Wait()
			fill()
			return report, err
		}
		// Scheduled live resizes fire at their stream offset, before the
		// submission: the traffic is identical either way, only the
		// placement table moves under it.
		for nextResize < len(s.Resizes) && s.Resizes[nextResize].AtJob == i {
			if _, err := q.Resize(s.Resizes[nextResize].Shards); err != nil {
				waiters.Wait()
				fill()
				return report, fmt.Errorf("scenario %s: resize to %d shards at job %d: %w",
					s.Name, s.Resizes[nextResize].Shards, i, err)
			}
			resizes.Add(1)
			nextResize++
		}
		if s.Arrival != ArrivalClosed {
			select {
			case <-time.After(nextGap()):
			case <-ctx.Done():
				waiters.Wait()
				fill()
				return report, ctx.Err()
			}
		} else {
			select {
			case window <- struct{}{}:
			case <-ctx.Done():
				waiters.Wait()
				fill()
				return report, ctx.Err()
			}
		}
		job, err := q.Submit(spec)
		switch {
		// Admission refusals — lane quotas, rate limits (both wrap
		// ErrQueueFull) and deadline-infeasibility sheds — are outcomes of
		// the replay, not replay errors.
		case errors.Is(err, jobqueue.ErrQueueFull), errors.Is(err, jobqueue.ErrDeadlineInfeasible):
			rejected.Add(1)
			submitted.Add(1)
			if s.Arrival == ArrivalClosed {
				<-window
			}
			continue
		case err != nil:
			waiters.Wait()
			fill()
			return report, fmt.Errorf("scenario %s: submitting %s: %w", s.Name, spec, err)
		}
		submitted.Add(1)
		waiters.Add(1)
		go watch(job)
	}
	waiters.Wait()
	if err := ctx.Err(); err != nil {
		fill()
		return report, err
	}
	return finishReport(q, before, start, &report, fill, &failures)
}

// finishReport closes out a completed replay: it copies the live
// counters into the report (fill), stamps the elapsed time and computes
// the queue-counter deltas and latency summaries since before.
func finishReport(q *jobqueue.Queue, before jobqueue.Metrics, start time.Time, report *Report, fill func(), failures *atomic.Int64) (Report, error) {
	fill()
	report.Failures = int(failures.Load())
	report.Elapsed = time.Since(start)
	if secs := report.Elapsed.Seconds(); secs > 0 {
		report.JobsPerSec = float64(report.Jobs) / secs
	}

	after := q.Snapshot()
	report.Executed = (after.Completed + after.Failed) - (before.Completed + before.Failed)
	report.CacheHits = after.CacheHits - before.CacheHits
	report.Coalesced = after.Coalesced - before.Coalesced
	report.Timeouts = after.Timeouts - before.Timeouts
	report.Steals = after.Steals - before.Steals
	served := report.CacheHits + report.Coalesced
	if total := served + (after.CacheMisses - before.CacheMisses); total > 0 {
		report.HitRate = float64(served) / float64(total)
	}
	report.PerClass = after.PerClass
	report.PerShard = after.PerShard
	report.Wall = after.Wall
	report.Wait = after.Wait
	report.Epoch = after.Epoch
	return *report, nil
}

// WriteText renders the report as the human-readable serving summary
// lopramd prints in -scenario mode.
func (r Report) WriteText(w io.Writer) {
	fmt.Fprintf(w, "scenario %s: %d jobs in %v (%.1f jobs/sec)\n",
		r.Scenario, r.Jobs, r.Elapsed.Round(time.Millisecond), r.JobsPerSec)
	if r.Resizes > 0 {
		fmt.Fprintf(w, "  live resizes: %d (placement epoch %d at finish)\n", r.Resizes, r.Epoch)
	}
	fmt.Fprintf(w, "  executed %d · cache hits %d · coalesced %d · hit rate %.0f%% · rejected %d · failures %d · timeouts %d · steals %d\n",
		r.Executed, r.CacheHits, r.Coalesced, 100*r.HitRate, r.Rejected, r.Failures, r.Timeouts, r.Steals)
	fmt.Fprintf(w, "  exec latency ms: p50 %.2f · p95 %.2f · p99 %.2f · max %.2f\n",
		r.Wall.P50, r.Wall.P95, r.Wall.P99, r.Wall.Max)
	fmt.Fprintf(w, "  queue wait ms:   p50 %.2f · p95 %.2f · p99 %.2f · max %.2f\n",
		r.Wait.P50, r.Wait.P95, r.Wait.P99, r.Wait.Max)
	classes := make([]jobqueue.Class, 0, len(r.PerClass))
	for class := range r.PerClass {
		classes = append(classes, class)
	}
	sort.Slice(classes, func(i, j int) bool { return classes[i] < classes[j] })
	// The per-class block is a trace.Table so column widths come from
	// the data — class names of any length stay aligned.
	tb := trace.NewTable("class", "submitted",
		"wall p50", "wall p95", "wall p99", "wait p50", "wait p95", "wait p99")
	rows := 0
	for _, class := range classes {
		cs := r.PerClass[class]
		if cs.Submitted == 0 && cs.Wall.Count == 0 {
			continue
		}
		tb.AddRow(string(class), cs.Submitted,
			fmt.Sprintf("%.2f", cs.Wall.P50), fmt.Sprintf("%.2f", cs.Wall.P95), fmt.Sprintf("%.2f", cs.Wall.P99),
			fmt.Sprintf("%.2f", cs.Wait.P50), fmt.Sprintf("%.2f", cs.Wait.P95), fmt.Sprintf("%.2f", cs.Wait.P99))
		rows++
	}
	if rows > 0 {
		for _, line := range strings.Split(strings.TrimRight(tb.String(), "\n"), "\n") {
			fmt.Fprintf(w, "  %s\n", line)
		}
	}
	if len(r.PerShard) > 1 {
		fmt.Fprintf(w, "  shards:")
		for _, st := range r.PerShard {
			fmt.Fprintf(w, " [%d] exec %d steal %d", st.Shard, st.Executed, st.Stolen)
		}
		fmt.Fprintln(w)
	}
}
