package scenario

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"lopram/internal/jobqueue"
	"lopram/internal/jobtrace"
)

var updateGolden = flag.Bool("update", false, "rewrite golden trace projections")

// traceScenario replays a builtin with a JSONL trace writer attached
// and returns the parsed records plus the queue's trace stats.
func traceScenario(t *testing.T, name string) (Report, []jobtrace.Record, int64, int64) {
	t.Helper()
	sp, ok := Builtin(name)
	if !ok {
		t.Fatalf("builtin %s missing", name)
	}
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	tw := jobtrace.NewWriter(f)
	cfg := QueueConfig(sp)
	cfg.TraceSink = tw
	q := jobqueue.New(cfg)
	rep, err := Run(context.Background(), q, sp)
	q.Close()
	if err != nil {
		t.Fatalf("replay %s: %v", name, err)
	}
	if err := tw.Flush(); err != nil {
		t.Fatalf("flushing trace: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	recs, err := jobtrace.ReadFile(path)
	if err != nil {
		t.Fatalf("reading trace back: %v", err)
	}
	emitted, dropped := q.TraceStats()
	return rep, recs, emitted, dropped
}

// canonicalDisposition collapses the timing-dependent hit/coalesce
// split: whether a duplicate found its original already cached or
// still in flight depends on scheduling, but that it was served
// without execution does not.
func canonicalDisposition(d string) string {
	if d == jobtrace.DispositionHit || d == jobtrace.DispositionCoalesce {
		return "dup"
	}
	return d
}

// TestTraceGoldenCacheFriendlyRepeat pins down the JSONL schema and the
// deterministic projection of a complete trace of the
// cache-friendly-repeat builtin at its fixed seed: record cardinality,
// the field set every record carries, and the sorted multiset of
// (disposition, class, key) — everything about the trace that must not
// depend on scheduling — are compared against a committed golden file.
// Regenerate with: go test ./internal/scenario -run Golden -update
func TestTraceGoldenCacheFriendlyRepeat(t *testing.T) {
	_, recs, emitted, dropped := traceScenario(t, "cache-friendly-repeat")
	if dropped != 0 {
		t.Fatalf("%d records dropped; the default ring must hold a 300-job scenario", dropped)
	}
	if emitted != 300 || len(recs) != 300 {
		t.Fatalf("emitted %d, read back %d records, want exactly one per submission (300)", emitted, len(recs))
	}

	// Schema stability: every record must carry the core identity and
	// placement fields under their wire names, and executed records the
	// timing fields too. A rename or deletion breaks replay tooling.
	for i, r := range recs {
		b, err := json.Marshal(r)
		if err != nil {
			t.Fatal(err)
		}
		var m map[string]any
		if err := json.Unmarshal(b, &m); err != nil {
			t.Fatal(err)
		}
		required := []string{"seq", "id", "key", "seed", "class", "disposition",
			"submit_shard", "exec_shard", "steal_origin", "epoch_submit", "epoch_settle",
			"lane_depth", "submit_ns", "wait_ms", "run_ms"}
		if r.Disposition == jobtrace.DispositionExecuted {
			required = append(required, "start_ns", "finish_ns", "outcome")
		}
		for _, key := range required {
			if _, ok := m[key]; !ok {
				t.Fatalf("record %d (%s) lacks wire field %q: %s", i, r.Disposition, key, b)
			}
		}
	}

	// Seq must be a dense 1..N sequence: with zero drops the emission
	// counter and the sink stream see the same records.
	seqs := make([]int, 0, len(recs))
	for _, r := range recs {
		seqs = append(seqs, int(r.Seq))
	}
	sort.Ints(seqs)
	for i, s := range seqs {
		if s != i+1 {
			t.Fatalf("seq gap: position %d holds %d", i, s)
		}
	}

	lines := make([]string, 0, len(recs))
	for _, r := range recs {
		lines = append(lines, fmt.Sprintf("%s %s %s", canonicalDisposition(r.Disposition), r.Class, r.Key))
	}
	sort.Strings(lines)
	got := strings.Join(lines, "\n") + "\n"

	golden := filepath.Join("testdata", "cache-friendly-repeat.trace.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden (regenerate with -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("trace projection drifted from %s (regenerate with -update if intended)", golden)
		gl := strings.Split(got, "\n")
		wl := strings.Split(string(want), "\n")
		for i := 0; i < len(gl) || i < len(wl); i++ {
			var g, w string
			if i < len(gl) {
				g = gl[i]
			}
			if i < len(wl) {
				w = wl[i]
			}
			if g != w {
				t.Fatalf("first divergence at line %d:\n  got:  %s\n  want: %s", i+1, g, w)
			}
		}
	}
}

// TestTraceFairnessSharesPriorityInversionProbe replays the
// weighted-class builtin (a 4:1 batch flood with interactive probes on
// top) and checks the trace tells the scheduling story the class
// configuration promises: interactive jobs, drained strictly first,
// wait less per executed job than batch; the per-class executed-wait
// shares a self-diff computes cover the whole trace and are identical
// on both sides, so the tracediff fairness gate passes at its
// tightest setting on a same-build same-seed replay.
func TestTraceFairnessSharesPriorityInversionProbe(t *testing.T) {
	_, recs, _, dropped := traceScenario(t, "priority-inversion-probe")
	if dropped != 0 {
		t.Fatalf("%d records dropped", dropped)
	}
	waitSum := map[string]float64{}
	execs := map[string]int{}
	for _, r := range recs {
		if r.Disposition != jobtrace.DispositionExecuted {
			continue
		}
		waitSum[r.Class] += r.WaitMS
		execs[r.Class]++
	}
	if execs["interactive"] == 0 || execs["batch"] == 0 {
		t.Fatalf("trace must execute both classes, got %v", execs)
	}
	meanI := waitSum["interactive"] / float64(execs["interactive"])
	meanB := waitSum["batch"] / float64(execs["batch"])
	if meanI >= meanB {
		t.Errorf("interactive mean executed wait %.3fms is not below batch %.3fms — strict-priority dequeue not visible in the trace", meanI, meanB)
	}

	d := jobtrace.Diff(recs, recs, jobtrace.Thresholds{FairnessDeltaPoints: 0.01})
	if d.Failed() {
		t.Fatalf("self-diff must pass the tightest fairness gate: %v", d.Violations)
	}
	var shareSumA, shareSumB float64
	for _, c := range d.Classes {
		if c.WaitShareA != c.WaitShareB {
			t.Errorf("class %s shares differ on a self-diff: %v vs %v", c.Class, c.WaitShareA, c.WaitShareB)
		}
		shareSumA += c.WaitShareA
		shareSumB += c.WaitShareB
	}
	for side, sum := range map[string]float64{"A": shareSumA, "B": shareSumB} {
		if sum < 0.999 || sum > 1.001 {
			t.Errorf("side %s class shares sum to %v, want 1 (every executed wait attributed to a class)", side, sum)
		}
	}
}

// TestTraceMidRunResizeEpochs replays the mid-run-resize builtin
// (1 -> 4 -> 2 shards) with the recorder attached and asserts every
// record's placement story is coherent across the live swaps: settle
// epoch never precedes submit epoch, every epoch is one the replay
// actually reached, the submit shard fits the submit epoch's table
// width, each key executes exactly once, and duplicates settle as
// hit or coalesce — never rejected, never re-executed.
func TestTraceMidRunResizeEpochs(t *testing.T) {
	rep, recs, emitted, dropped := traceScenario(t, "mid-run-resize")
	if dropped != 0 {
		t.Fatalf("%d records dropped", dropped)
	}
	if emitted != 240 || len(recs) != 240 {
		t.Fatalf("emitted %d, read %d, want one record per submission (240)", emitted, len(recs))
	}
	if rep.Resizes != 2 {
		t.Fatalf("replay applied %d resizes, want 2", rep.Resizes)
	}

	// Epoch 1 is creation (1 shard); the scheduled resizes to 4 and 2
	// shards produce epochs 2 and 3. The autoscaler is off under
	// QueueConfig, so no other epoch can appear.
	widths := map[uint64]int{1: 1, 2: 4, 3: 2}
	execPerKey := make(map[string]int)
	dups := 0
	for _, r := range recs {
		if r.EpochSettle < r.EpochSubmit {
			t.Errorf("record %s settled at epoch %d before its submit epoch %d", r.Key, r.EpochSettle, r.EpochSubmit)
		}
		for _, ep := range []uint64{r.EpochSubmit, r.EpochSettle} {
			if _, ok := widths[ep]; !ok {
				t.Errorf("record %s carries epoch %d, outside the replay's 1..3", r.Key, ep)
			}
		}
		if w := widths[r.EpochSubmit]; r.SubmitShard < 0 || r.SubmitShard >= w {
			t.Errorf("record %s submit shard %d outside epoch %d's %d-shard table", r.Key, r.SubmitShard, r.EpochSubmit, w)
		}
		switch r.Disposition {
		case jobtrace.DispositionExecuted:
			execPerKey[r.Key]++
			// The exec shard is resolved when the run starts, which may be
			// an epoch earlier than the settle — it only has to fit the
			// widest table the replay ever had.
			if r.ExecShard < 0 || r.ExecShard >= 4 {
				t.Errorf("record %s exec shard %d outside any placement the replay reached", r.Key, r.ExecShard)
			}
		case jobtrace.DispositionHit, jobtrace.DispositionCoalesce:
			dups++
		default:
			t.Errorf("record %s disposition %q: a dup-only closed-loop replay must not reject", r.Key, r.Disposition)
		}
	}
	for key, n := range execPerKey {
		if n != 1 {
			t.Errorf("key %s executed %d times across the resizes, want exactly once", key, n)
		}
	}
	// Every duplicate's key must trace back to an execution.
	for _, r := range recs {
		if r.Disposition == jobtrace.DispositionExecuted {
			continue
		}
		if execPerKey[r.Key] == 0 {
			t.Errorf("dup record %s has no executed record for its key", r.Key)
		}
	}
	if int64(dups) != rep.CacheHits+rep.Coalesced {
		t.Errorf("trace holds %d dup records, report says %d hits + %d coalesced", dups, rep.CacheHits, rep.Coalesced)
	}
	if int64(len(execPerKey)) != rep.Executed {
		t.Errorf("trace holds %d executed keys, report says %d executions", len(execPerKey), rep.Executed)
	}
}
