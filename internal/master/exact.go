package master

// This file provides exact integer-valued evaluators for the recurrences the
// simulator executes. Where Recurrence works with real-valued asymptotics,
// IntRec mirrors the simulator's cost model step for step, so tests can
// assert *equality* between predicted and simulated wall-clock times (for
// processor counts of the form p = a^k, where the greedy frontier schedule
// of Figure 2 is perfectly balanced).

// IntRec is an integer divide-and-conquer cost recurrence:
//
//	T(n) = Divide(n) + a·T(⌈n/b⌉) + Merge(n)   for n > Cutoff,
//	T(n) = Base(n)                              for n ≤ Cutoff.
type IntRec struct {
	A, B   int
	Cutoff int64
	Divide func(n int64) int64
	Merge  func(n int64) int64
	Base   func(n int64) int64
}

// Child returns the subproblem size, ⌈n/b⌉.
func (r IntRec) Child(n int64) int64 {
	b := int64(r.B)
	return (n + b - 1) / b
}

// Seq returns the exact sequential time T(n). Results are memoized per call
// via an internal map because uneven divisions can revisit sizes.
func (r IntRec) Seq(n int64) int64 {
	memo := make(map[int64]int64)
	return r.seq(n, memo)
}

func (r IntRec) seq(n int64, memo map[int64]int64) int64 {
	if n <= r.Cutoff {
		return r.Base(n)
	}
	if v, ok := memo[n]; ok {
		return v
	}
	v := r.Divide(n) + int64(r.A)*r.seq(r.Child(n), memo) + r.Merge(n)
	memo[n] = v
	return v
}

// ParSeqMerge returns the exact wall-clock time of the greedy LoPRAM
// schedule with sequential merging on p processors, valid for p = a^k
// (balanced frontier): above the frontier all a^i level-i nodes run
// simultaneously, below it each frontier thread runs sequentially.
//
//	T_p(n) = Divide(n) + T_{p/a}(⌈n/b⌉) + Merge(n),  T_1 = Seq.
func (r IntRec) ParSeqMerge(n int64, p int) int64 {
	if p <= 1 || n <= r.Cutoff {
		return r.Seq(n)
	}
	return r.Divide(n) + r.ParSeqMerge(r.Child(n), p/r.A) + r.Merge(n)
}

// ParParMerge is the Equation (5) variant: the merge at a node splits into
// q equal chunks, where q is the processor share of the node's subtree, so
// it costs ⌈Merge(n)/q⌉ wall-clock steps.
func (r IntRec) ParParMerge(n int64, p int) int64 {
	if p <= 1 || n <= r.Cutoff {
		return r.Seq(n)
	}
	m := r.Merge(n)
	q := int64(p)
	return r.Divide(n) + r.ParParMerge(r.Child(n), p/r.A) + (m+q-1)/q
}

// IsPowerOf reports whether p == base^k for some integer k >= 0.
func IsPowerOf(p, base int) bool {
	if p < 1 || base < 2 {
		return false
	}
	for p%base == 0 {
		p /= base
	}
	return p == 1
}

// FrontierDepth returns ⌈log_a p⌉: the recursion depth at which the number
// of subproblems first reaches p (the spawn frontier of Figure 2).
func FrontierDepth(p, a int) int {
	if p <= 1 {
		return 0
	}
	d, have := 0, 1
	for have < p {
		have *= a
		d++
	}
	return d
}
