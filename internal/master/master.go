// Package master implements the classical Master theorem and the paper's
// parallel Master theorem (Theorem 1 and Equation 5): the machinery that
// classifies a divide-and-conquer recurrence
//
//	T(n) = a·T(n/b) + f(n)
//
// and predicts both its sequential growth and its wall-clock time on a
// LoPRAM with p = O(log n) processors, under sequential merging (Eq. 3/4)
// and under parallel merging (Eq. 5).
package master

import (
	"fmt"
	"math"
)

// Case is a Master theorem case.
type Case int

const (
	// Inapplicable: f does not fall into any of the three cases (e.g. it
	// straddles the critical exponent by a sub-polynomial factor).
	Inapplicable Case = iota
	// Case1: f(n) = O(n^{log_b a - ε}); leaves dominate, T = Θ(n^{log_b a}).
	Case1
	// Case2: f(n) = Θ(n^{log_b a}); T = Θ(n^{log_b a} log n).
	Case2
	// Case3: f(n) = Ω(n^{log_b a + ε}) with the regularity condition
	// a·f(n/b) ≤ c·f(n); root dominates, T = Θ(f(n)).
	Case3
)

func (c Case) String() string {
	switch c {
	case Case1:
		return "case 1"
	case Case2:
		return "case 2"
	case Case3:
		return "case 3"
	}
	return "inapplicable"
}

// Recurrence describes T(n) = a·T(n/b) + f(n) with the driving function
// restricted to the polylogarithmic family f(n) = C · n^E · (log₂ n)^K,
// which covers every recurrence in the paper and allows exact symbolic
// classification. Base cases cost Base work units each and apply for n <= Cutoff.
type Recurrence struct {
	A float64 // number of subproblems, a >= 1
	B float64 // shrink factor, b > 1

	C float64 // multiplicative constant of f
	E float64 // polynomial exponent of f
	K float64 // power of log n in f

	Cutoff float64 // n at or below which the base case applies (>= 1)
	Base   float64 // cost of a base case
}

// Validate reports whether the recurrence parameters are admissible.
func (r Recurrence) Validate() error {
	if r.A < 1 {
		return fmt.Errorf("master: a = %v < 1", r.A)
	}
	if r.B <= 1 {
		return fmt.Errorf("master: b = %v <= 1", r.B)
	}
	if r.Cutoff < 1 {
		return fmt.Errorf("master: cutoff = %v < 1", r.Cutoff)
	}
	if r.C < 0 || r.Base < 0 {
		return fmt.Errorf("master: negative cost")
	}
	return nil
}

// F evaluates the driving (divide + merge) cost at size n.
func (r Recurrence) F(n float64) float64 {
	if n < 1 {
		return 0
	}
	l := 1.0
	if r.K != 0 {
		lg := math.Log2(n)
		if lg < 1 {
			lg = 1 // avoid log 1 = 0 killing the term at tiny n
		}
		l = math.Pow(lg, r.K)
	}
	return r.C * math.Pow(n, r.E) * l
}

// CriticalExponent returns log_b a, the exponent against which f is compared.
func (r Recurrence) CriticalExponent() float64 {
	return math.Log(r.A) / math.Log(r.B)
}

// Classify returns the Master theorem case of the recurrence. With f in the
// polylog family the classification is exact:
//
//   - E < log_b a                 → Case 1 (any K),
//   - E = log_b a and K = 0       → Case 2,
//   - E > log_b a                 → Case 3 (regularity a/b^E < 1 holds
//     automatically for polynomial f; a polylog factor K ≥ 0 does not
//     disturb it),
//   - E = log_b a and K ≠ 0       → Inapplicable under the classical
//     three-case statement used by the paper.
func (r Recurrence) Classify() Case {
	crit := r.CriticalExponent()
	const eps = 1e-9
	switch {
	case r.E < crit-eps:
		return Case1
	case r.E > crit+eps:
		return Case3
	case r.K == 0:
		return Case2
	default:
		return Inapplicable
	}
}

// Regular reports whether the regularity condition a·f(n/b) ≤ c·f(n) holds
// for some c < 1 (needed by Case 3). For the polylog family this reduces to
// a / b^E < 1.
func (r Recurrence) Regular() bool {
	return r.A/math.Pow(r.B, r.E) < 1-1e-12
}

// SeqTime evaluates the sequential recurrence T(n) numerically by direct
// level-sum evaluation:
//
//	T(n) = Σ_{i=0}^{d-1} a^i f(n/b^i) + a^d · Base,  d = ⌈log_b(n/Cutoff)⌉.
//
// This is the exact solution of the continuous recurrence and tracks the Θ
// bound with its true constants, which the experiments compare against.
func (r Recurrence) SeqTime(n float64) float64 {
	if n <= r.Cutoff {
		return r.Base
	}
	total := 0.0
	size := n
	weight := 1.0
	for size > r.Cutoff {
		total += weight * r.F(size)
		weight *= r.A
		size /= r.B
	}
	total += weight * r.Base
	return total
}

// ParTimeSeqMerge evaluates Equation (3) of the paper: the wall-clock time
// on p processors when each merge runs sequentially on one processor,
//
//	T_p(n) = T(n / b^{log_a p}) + Σ_{i=0}^{log_a(p)-1} f(n / b^i).
//
// For p = 1 it reduces to SeqTime.
func (r Recurrence) ParTimeSeqMerge(n float64, p int) float64 {
	if p <= 1 {
		return r.SeqTime(n)
	}
	depth := math.Log(float64(p)) / math.Log(r.A) // log_a p
	total := r.SeqTime(n / math.Pow(r.B, depth))
	size := n
	for i := 0.0; i < depth; i++ {
		total += r.F(size)
		size /= r.B
	}
	return total
}

// ParTimeParMerge evaluates the Equation (5) variant: merges at level i are
// themselves parallelized with optimal speedup, so the level-i merge phase
// costs (a^i/p)·f(n/b^i) (at least one step's worth once a^i ≥ p):
//
//	T_p(n) = T(n / b^{log_a p}) + Σ_{i=0}^{log_a(p)-1} (a^i/p)·f(n / b^i).
func (r Recurrence) ParTimeParMerge(n float64, p int) float64 {
	if p <= 1 {
		return r.SeqTime(n)
	}
	depth := math.Log(float64(p)) / math.Log(r.A)
	total := r.SeqTime(n / math.Pow(r.B, depth))
	size := n
	ai := 1.0
	for i := 0.0; i < depth; i++ {
		total += ai / float64(p) * r.F(size)
		size /= r.B
		ai *= r.A
	}
	return total
}

// PredictedSpeedup returns the Theorem 1 speedup prediction for the
// recurrence on p processors: p for Cases 1 and 2, Θ(1) (namely
// T(n)/f(n)·(1-c/a)-ish constants, reported as SeqTime/f) for Case 3 under
// sequential merging.
func (r Recurrence) PredictedSpeedup(n float64, p int, parallelMerge bool) float64 {
	switch r.Classify() {
	case Case1, Case2:
		return float64(p)
	case Case3:
		if parallelMerge {
			return float64(p) // Eq. 5: Θ(f(n)/p)
		}
		return r.SeqTime(n) / r.F(n) // a constant ≥ 1
	default:
		return math.NaN()
	}
}

// ThetaString returns the human-readable Θ bound of the sequential time,
// per Equation (2) of the paper.
func (r Recurrence) ThetaString() string {
	crit := r.CriticalExponent()
	switch r.Classify() {
	case Case1:
		return fmt.Sprintf("Θ(n^%.3g)", crit)
	case Case2:
		return fmt.Sprintf("Θ(n^%.3g · log n)", crit)
	case Case3:
		return fmt.Sprintf("Θ(f(n)) = Θ(n^%.3g · log^%.3g n)", r.E, r.K)
	default:
		return "no Master-theorem bound"
	}
}

// ParallelThetaString returns the Θ bound for T_p per Theorem 1 (sequential
// merging) or Eq. 5 (parallel merging).
func (r Recurrence) ParallelThetaString(parallelMerge bool) string {
	switch r.Classify() {
	case Case1, Case2:
		return "O(T(n)/p)"
	case Case3:
		if parallelMerge {
			return "Θ(f(n)/p)"
		}
		return "Θ(f(n))"
	default:
		return "no Master-theorem bound"
	}
}
