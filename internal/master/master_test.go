package master

import (
	"math"
	"testing"
	"testing/quick"
)

func rec(a, b, c, e, k float64) Recurrence {
	return Recurrence{A: a, B: b, C: c, E: e, K: k, Cutoff: 1, Base: 1}
}

func TestClassify(t *testing.T) {
	cases := []struct {
		name string
		r    Recurrence
		want Case
	}{
		{"mergesort 2T(n/2)+n", rec(2, 2, 1, 1, 0), Case2},
		{"strassen 7T(n/2)+n^2", rec(7, 2, 1, 2, 0), Case1},
		{"karatsuba 3T(n/2)+n", rec(3, 2, 1, 1, 0), Case1},
		{"binary search T(n/2)+1", rec(1, 2, 1, 0, 0), Case2},
		{"case3 2T(n/2)+n^2", rec(2, 2, 1, 2, 0), Case3},
		{"4T(n/2)+n", rec(4, 2, 1, 1, 0), Case1},
		{"regularity gap 2T(n/2)+n log n", rec(2, 2, 1, 1, 1), Inapplicable},
		{"case3 with log 2T(n/2)+n^2 log n", rec(2, 2, 1, 2, 1), Case3},
	}
	for _, c := range cases {
		if got := c.r.Classify(); got != c.want {
			t.Errorf("%s: got %v, want %v", c.name, got, c.want)
		}
	}
}

func TestValidate(t *testing.T) {
	if err := rec(2, 2, 1, 1, 0).Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Recurrence{
		{A: 0.5, B: 2, Cutoff: 1},
		{A: 2, B: 1, Cutoff: 1},
		{A: 2, B: 2, Cutoff: 0},
		{A: 2, B: 2, Cutoff: 1, C: -1},
	}
	for i, r := range bad {
		if err := r.Validate(); err == nil {
			t.Errorf("bad recurrence %d validated", i)
		}
	}
}

func TestRegular(t *testing.T) {
	if !rec(2, 2, 1, 2, 0).Regular() {
		t.Error("2T(n/2)+n²: regularity should hold (a/b² = 1/2)")
	}
	if rec(4, 2, 1, 1, 0).Regular() {
		t.Error("4T(n/2)+n: a/b = 2 ≥ 1, regularity must fail")
	}
}

// TestSeqTimeTracksTheta checks that the numeric evaluator grows with the
// closed-form exponent of its Master case: the log-log slope over a decade
// of n must match within 5%.
func TestSeqTimeTracksTheta(t *testing.T) {
	cases := []struct {
		r         Recurrence
		wantSlope float64
	}{
		{rec(2, 2, 1, 1, 0), 1},            // Case 2: n log n → slope ~1 + o(1)
		{rec(4, 2, 1, 1, 0), 2},            // Case 1: n²
		{rec(7, 2, 1, 2, 0), math.Log2(7)}, // Case 1: n^2.807
		{rec(2, 2, 1, 2, 0), 2},            // Case 3: n²
	}
	for i, c := range cases {
		n1, n2 := 1<<14, 1<<20
		t1 := c.r.SeqTime(float64(n1))
		t2 := c.r.SeqTime(float64(n2))
		slope := math.Log(t2/t1) / math.Log(float64(n2)/float64(n1))
		tol := 0.08
		if c.r.Classify() == Case2 {
			tol = 0.15 // the log factor inflates the finite-n slope
		}
		if math.Abs(slope-c.wantSlope) > c.wantSlope*tol+0.05 {
			t.Errorf("case %d: slope = %.3f, want ≈ %.3f", i, slope, c.wantSlope)
		}
	}
}

// TestParTimeOptimalSpeedup: for Cases 1 and 2, Theorem 1 claims
// T_p(n) = O(T(n)/p). At finite n the constant is visible (the Σf(n/bⁱ)
// merge term adds ≈ 2n for mergesort), so the test asserts exactly the
// theorem: the ratio T_p/(T/p) is bounded by a small constant, never below
// 1 (no superlinear speedup), and decreases toward 1 as n grows.
func TestParTimeOptimalSpeedup(t *testing.T) {
	for _, r := range []Recurrence{rec(2, 2, 1, 1, 0), rec(4, 2, 1, 1, 0)} {
		for _, p := range []int{2, 4, 8, 16} {
			ratioAt := func(n float64) float64 {
				return r.ParTimeSeqMerge(n, p) / (r.SeqTime(n) / float64(p))
			}
			small, large := ratioAt(1<<22), ratioAt(1<<40)
			for _, ratio := range []float64{small, large} {
				if ratio < 0.99 {
					t.Errorf("a=%v p=%d: superlinear ratio %.3f", r.A, p, ratio)
				}
				if ratio > 2.5 {
					t.Errorf("a=%v p=%d: ratio %.3f not O(T/p) with small constant", r.A, p, ratio)
				}
			}
			if large > small+0.01 {
				t.Errorf("a=%v p=%d: ratio grew with n (%.3f → %.3f), should approach 1",
					r.A, p, small, large)
			}
		}
	}
}

// TestParTimeCase3NoSpeedup: Case 3 with sequential merging is stuck at
// Θ(f(n)) regardless of p.
func TestParTimeCase3NoSpeedup(t *testing.T) {
	r := rec(2, 2, 1, 2, 0)
	n := float64(1 << 20)
	f := r.F(n)
	for _, p := range []int{2, 4, 16} {
		par := r.ParTimeSeqMerge(n, p)
		if par < f {
			t.Errorf("p=%d: T_p = %g below f(n) = %g", p, par, f)
		}
		if par > 2.5*f {
			t.Errorf("p=%d: T_p = %g not Θ(f(n)) = %g", p, par, f)
		}
	}
	// And the speedup is flat: doubling p barely moves T_p.
	t4, t16 := r.ParTimeSeqMerge(n, 4), r.ParTimeSeqMerge(n, 16)
	if t4/t16 > 1.5 {
		t.Errorf("sequential-merge Case 3 sped up: T_4/T_16 = %.2f", t4/t16)
	}
}

// TestParTimeCase3ParallelMergeSpeedup: Equation 5 restores speedup ≈ p.
func TestParTimeCase3ParallelMergeSpeedup(t *testing.T) {
	r := rec(2, 2, 1, 2, 0)
	n := float64(1 << 20)
	seq := r.SeqTime(n)
	for _, p := range []int{2, 4, 8, 16} {
		par := r.ParTimeParMerge(n, p)
		speedup := seq / par
		if speedup < 0.7*float64(p) || speedup > 1.1*float64(p) {
			t.Errorf("p=%d: speedup = %.2f, want ≈ %d", p, speedup, p)
		}
	}
}

func TestParTimeP1Reduces(t *testing.T) {
	r := rec(2, 2, 1, 1, 0)
	n := 4096.0
	if r.ParTimeSeqMerge(n, 1) != r.SeqTime(n) {
		t.Error("ParTimeSeqMerge(n,1) != SeqTime(n)")
	}
	if r.ParTimeParMerge(n, 1) != r.SeqTime(n) {
		t.Error("ParTimeParMerge(n,1) != SeqTime(n)")
	}
}

func TestPredictedSpeedup(t *testing.T) {
	if s := rec(2, 2, 1, 1, 0).PredictedSpeedup(1e6, 8, false); s != 8 {
		t.Errorf("Case 2 prediction = %v, want 8", s)
	}
	if s := rec(2, 2, 1, 2, 0).PredictedSpeedup(1e6, 8, true); s != 8 {
		t.Errorf("Case 3 parallel-merge prediction = %v, want 8", s)
	}
	s := rec(2, 2, 1, 2, 0).PredictedSpeedup(1e6, 8, false)
	if s < 1 || s > 3 {
		t.Errorf("Case 3 sequential-merge prediction = %v, want small constant", s)
	}
}

func TestThetaStrings(t *testing.T) {
	if got := rec(2, 2, 1, 1, 0).ThetaString(); got != "Θ(n^1 · log n)" {
		t.Errorf("ThetaString = %q", got)
	}
	if got := rec(2, 2, 1, 2, 0).ParallelThetaString(false); got != "Θ(f(n))" {
		t.Errorf("ParallelThetaString = %q", got)
	}
	if got := rec(2, 2, 1, 2, 0).ParallelThetaString(true); got != "Θ(f(n)/p)" {
		t.Errorf("ParallelThetaString = %q", got)
	}
	if got := rec(2, 2, 1, 1, 0).ParallelThetaString(false); got != "O(T(n)/p)" {
		t.Errorf("ParallelThetaString = %q", got)
	}
}

func TestIntRecSeqMergesort(t *testing.T) {
	// T(n) = 2T(n/2) + n + 1, T(1) = 1 has closed form n log2 n + 2n - 1
	// for powers of two.
	r := IntRec{A: 2, B: 2, Cutoff: 1,
		Divide: func(int64) int64 { return 1 },
		Merge:  func(n int64) int64 { return n },
		Base:   func(int64) int64 { return 1 },
	}
	for _, n := range []int64{1, 2, 4, 8, 64, 1024} {
		want := int64(0)
		if n == 1 {
			want = 1
		} else {
			lg := int64(math.Round(math.Log2(float64(n))))
			want = n*lg + 2*n - 1
		}
		if got := r.Seq(n); got != want {
			t.Errorf("Seq(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestIntRecParEquation3(t *testing.T) {
	// For p = 2^k the greedy schedule matches Equation (3) exactly:
	// T_p(n) = T(n/2^k) + Σ_{i<k} f(n/2^i) with f = divide + merge.
	r := IntRec{A: 2, B: 2, Cutoff: 1,
		Divide: func(int64) int64 { return 1 },
		Merge:  func(n int64) int64 { return n },
		Base:   func(int64) int64 { return 1 },
	}
	n := int64(1 << 12)
	for _, p := range []int{2, 4, 8, 16} {
		k := FrontierDepth(p, 2)
		want := r.Seq(n >> uint(k))
		for i := 0; i < k; i++ {
			sz := n >> uint(i)
			want += 1 + sz // divide + merge at level i
		}
		if got := r.ParSeqMerge(n, p); got != want {
			t.Errorf("p=%d: ParSeqMerge = %d, Equation(3) = %d", p, got, want)
		}
	}
}

func TestIsPowerOf(t *testing.T) {
	for p, want := range map[int]bool{1: true, 2: true, 3: false, 4: true, 6: false, 8: true, 1024: true} {
		if got := IsPowerOf(p, 2); got != want {
			t.Errorf("IsPowerOf(%d,2) = %v", p, got)
		}
	}
	if !IsPowerOf(9, 3) || IsPowerOf(12, 3) {
		t.Error("base-3 powers misclassified")
	}
	if IsPowerOf(0, 2) || IsPowerOf(-4, 2) {
		t.Error("non-positive p accepted")
	}
}

func TestFrontierDepth(t *testing.T) {
	for _, c := range []struct{ p, a, want int }{
		{1, 2, 0}, {2, 2, 1}, {3, 2, 2}, {4, 2, 2}, {5, 2, 3},
		{8, 2, 3}, {7, 7, 1}, {49, 7, 2}, {16, 4, 2},
	} {
		if got := FrontierDepth(c.p, c.a); got != c.want {
			t.Errorf("FrontierDepth(%d,%d) = %d, want %d", c.p, c.a, got, c.want)
		}
	}
}

func TestParMonotoneInP(t *testing.T) {
	r := IntRec{A: 2, B: 2, Cutoff: 1,
		Divide: func(int64) int64 { return 1 },
		Merge:  func(n int64) int64 { return n },
		Base:   func(int64) int64 { return 1 },
	}
	err := quick.Check(func(raw uint8) bool {
		n := int64(64) << (raw % 8)
		last := r.ParSeqMerge(n, 1)
		for _, p := range []int{2, 4, 8} {
			cur := r.ParSeqMerge(n, p)
			if cur > last {
				return false
			}
			last = cur
		}
		return true
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}
