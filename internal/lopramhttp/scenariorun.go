package lopramhttp

import (
	"encoding/json"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"lopram/internal/jobqueue"
	"lopram/internal/jobtrace"
	"lopram/internal/scenario"
)

// Scenarios as a service: POST /v1/scenarios/{name}/run and
// POST /v1/scenarios/run execute a load scenario against a sandboxed
// queue and stream NDJSON progress, optional per-job completion
// records, and the final report.

// scenarioEvent is one NDJSON line of a streamed scenario run: exactly
// one of the fields is set. Progress lines arrive periodically, record
// lines (with ?trace=1) as jobs settle, and the stream ends with one
// report (success) or error line.
type scenarioEvent struct {
	Progress *scenario.Progress `json:"progress,omitempty"`
	Record   *jobtrace.Record   `json:"record,omitempty"`
	Report   *scenario.Report   `json:"report,omitempty"`
	Error    string             `json:"error,omitempty"`
}

// ndjsonStream serializes concurrent event writers (the progress
// goroutine, the recorder flusher, the handler) onto one connection,
// flushing after every line so clients see events as they happen.
type ndjsonStream struct {
	mu sync.Mutex
	w  io.Writer
	fl http.Flusher
}

func (s *ndjsonStream) send(ev scenarioEvent) {
	data, err := json.Marshal(ev)
	if err != nil {
		return
	}
	data = append(data, '\n')
	s.mu.Lock()
	defer s.mu.Unlock()
	_, _ = s.w.Write(data)
	if s.fl != nil {
		s.fl.Flush()
	}
}

// streamScenarioRun executes sp against a fresh sandboxed queue and
// streams NDJSON events until the final report. Query parameters:
// ?jobs=N caps the stream length, ?progress_ms=N sets the progress
// interval (default 500), ?trace=1 additionally streams every
// completion record. sem bounds concurrent runs; a run that cannot
// acquire it is refused with 409.
func streamScenarioRun(w http.ResponseWriter, r *http.Request, sp scenario.Spec, sem chan struct{}) {
	if v := r.URL.Query().Get("jobs"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			writeErr(w, http.StatusBadRequest, codeBadRequest, "jobs must be a positive integer")
			return
		}
		if n < sp.Jobs {
			sp.Jobs = n
		}
	}
	every := 500 * time.Millisecond
	if v := r.URL.Query().Get("progress_ms"); v != "" {
		ms, err := strconv.Atoi(v)
		if err != nil || ms <= 0 {
			writeErr(w, http.StatusBadRequest, codeBadRequest, "progress_ms must be a positive integer")
			return
		}
		every = time.Duration(ms) * time.Millisecond
	}
	if err := sp.Validate(); err != nil {
		// queueErr classifies validation failures too: an unknown policy
		// name in a posted spec gets code "unknown_policy".
		status, code := queueErr(err)
		writeErr(w, status, code, err.Error())
		return
	}
	select {
	case sem <- struct{}{}:
		defer func() { <-sem }()
	default:
		writeErr(w, http.StatusConflict, codeConflict, "a scenario run is already in progress; retry when it finishes")
		return
	}

	stream := &ndjsonStream{w: w}
	if fl, ok := w.(http.Flusher); ok {
		stream.fl = fl
	}
	cfg := scenario.QueueConfig(sp)
	if r.URL.Query().Get("trace") != "" {
		cfg.TraceSink = jobtrace.SinkFunc(func(rec jobtrace.Record) {
			stream.send(scenarioEvent{Record: &rec})
		})
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)

	sandbox := jobqueue.New(cfg)
	rep, err := scenario.RunWith(r.Context(), sandbox, sp, scenario.RunOptions{
		ProgressEvery: every,
		Progress: func(p scenario.Progress) {
			stream.send(scenarioEvent{Progress: &p})
		},
	})
	// Close drains the flight recorder, so with ?trace=1 every record
	// line lands before the final report line.
	sandbox.Close()
	if err != nil {
		stream.send(scenarioEvent{Error: err.Error()})
		return
	}
	stream.send(scenarioEvent{Report: &rep})
}
