package lopramhttp

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"strings"

	"lopram/internal/jobqueue"
	"lopram/internal/wire"
)

// The binary flavor of POST /v1/jobs:stream: same route, same
// micro-batch semantics as the NDJSON loop, but specs and results
// travel as length-prefixed frames (internal/wire) instead of JSON
// lines. The loop decodes every spec frame into one reused Spec and
// stamps it straight into a pooled job frame (Batch.SubmitSpec), and
// flushes each settled micro-batch's result frames with a single
// vectored Write — so a steady-state stream costs zero allocations
// per job on the server.

// isWireRequest reports whether the request opted into the binary
// framing via Content-Type (parameters after ';' are ignored).
func isWireRequest(r *http.Request) bool {
	ct := r.Header.Get("Content-Type")
	if i := strings.IndexByte(ct, ';'); i >= 0 {
		ct = ct[:i]
	}
	return strings.TrimSpace(ct) == wire.ContentType
}

// appendWireResult encodes the i-th outcome of a settled batch as a
// result frame for global index idx. Must run before Release — the
// frames recycle.
func appendWireResult(out []byte, b *jobqueue.Batch, i, idx int) []byte {
	res, err := b.Outcome(i)
	if err != nil {
		_, code := queueErr(err)
		return wire.AppendResultError(out, idx, b.ID(i), code, err.Error())
	}
	return wire.AppendResult(out, idx, b.ID(i), res)
}

// handleWireStream serves the binary flavor of POST /v1/jobs:stream.
// The exchange starts with a hello in each direction (client first;
// a version the server does not speak is refused with an in-band
// error frame). Then each client spec frame occupies one result slot,
// micro-batches of streamChunk settle together, and each settled
// micro-batch's result frames flush as one Write in submission order.
// A malformed frame ends the stream with one error frame carrying the
// offending spec index; a clean EOF ends it with a done trailer. The
// response streams with 200 up front, mirroring the NDJSON contract:
// everything after the first byte is reported in-band.
func handleWireStream(q *jobqueue.Queue, w http.ResponseWriter, r *http.Request) {
	// Full duplex for the same reason as the NDJSON loop: result
	// frames start flowing while spec frames are still being read.
	_ = http.NewResponseController(w).EnableFullDuplex()
	w.Header().Set("Content-Type", wire.ContentType)
	w.WriteHeader(http.StatusOK)
	fl, _ := w.(http.Flusher)
	out := wire.GetBuf()
	defer func() { wire.PutBuf(out) }()
	// flushOut writes the pending frames as one vectored Write and
	// reports whether the client is still there.
	flushOut := func() bool {
		if len(out) == 0 {
			return true
		}
		_, err := w.Write(out)
		out = out[:0]
		if fl != nil {
			fl.Flush()
		}
		return err == nil
	}

	br := wire.GetReader(r.Body)
	defer wire.PutReader(br)
	typ, payload, err := wire.ReadFrame(br)
	if err != nil || typ != wire.TypeHello {
		out = wire.AppendError(out, 0, codeBadRequest, "binary stream must open with a hello frame")
		flushOut()
		return
	}
	ver, err := wire.DecodeHello(payload)
	if err != nil {
		out = wire.AppendError(out, 0, codeBadRequest, "bad hello frame: "+err.Error())
		flushOut()
		return
	}
	if ver != wire.Version {
		out = wire.AppendError(out, 0, codeBadRequest,
			fmt.Sprintf("unsupported wire version %d (server speaks %d)", ver, wire.Version))
		flushOut()
		return
	}
	out = wire.AppendHello(out, wire.Version)
	if !flushOut() {
		return
	}

	codec := wire.NewCodec(q.Classes())
	ctx, cancel := context.WithTimeout(r.Context(), waitCap)
	defer cancel()

	b := q.NewBatch()
	base := 0 // global index of the micro-batch's first spec
	// flush settles the current micro-batch and appends its result
	// frames; one Write carries them all. On a wait failure the batch
	// leaks to the GC by contract and the stream ends.
	flush := func() bool {
		if b.Len() == 0 {
			return true
		}
		if err := b.Wait(ctx); err != nil {
			out = wire.AppendError(out, base, codeUnavailable, "stream abandoned before settling: "+err.Error())
			b = nil
			flushOut()
			return false
		}
		for i := 0; i < b.Len(); i++ {
			out = appendWireResult(out, b, i, base+i)
		}
		base += b.Len()
		b.Release()
		b = q.NewBatch()
		return flushOut()
	}

	line := 0 // spec frames accepted so far; the index error frames carry
	var spec jobqueue.Spec
	for {
		typ, payload, err := wire.ReadFrame(br)
		if err == io.EOF {
			break
		}
		if err != nil {
			if !flush() {
				return
			}
			out = wire.AppendError(out, line, codeBadRequest, "bad frame: "+err.Error())
			flushOut()
			return
		}
		if typ != wire.TypeSpec {
			if !flush() {
				return
			}
			out = wire.AppendError(out, line, codeBadRequest,
				fmt.Sprintf("unexpected frame type %#x (want a spec frame)", typ))
			flushOut()
			return
		}
		if err := codec.DecodeSpec(payload, &spec); err != nil {
			if !flush() {
				return
			}
			out = wire.AppendError(out, line, codeBadRequest, "bad spec frame: "+err.Error())
			flushOut()
			return
		}
		_ = b.SubmitSpec(&spec) // submission errors surface through the slot
		line++
		if b.Len() == streamChunk {
			if !flush() {
				return
			}
		}
	}
	if !flush() {
		return
	}
	out = wire.AppendDone(out, base)
	flushOut()
}
