package lopramhttp

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"lopram/internal/jobqueue"
	"lopram/internal/wire"
)

// The fuzz targets drive the two new request decoders through the full
// handler stack: whatever the body, the response must be well-formed
// JSON (an error envelope or a result set), and the handler must never
// panic. One long-lived queue serves every iteration — constructing a
// worker pool per input would drown the fuzzing loop.

var (
	fuzzOnce sync.Once
	fuzzMux  *http.ServeMux
)

func fuzzHandler() *http.ServeMux {
	fuzzOnce.Do(func() {
		fuzzMux = NewMux(jobqueue.New(jobqueue.Config{Workers: 2, QueueDepth: 1 << 12}))
	})
	return fuzzMux
}

// FuzzBatchSubmit feeds arbitrary bodies to POST /v1/jobs:batch:
// malformed JSON, truncated arrays and oversized batches must come back
// as one {error, code} envelope, valid arrays as a settled result set —
// never a panic, never a non-JSON body.
func FuzzBatchSubmit(f *testing.F) {
	f.Add([]byte(`[{"algorithm":"reduce","n":64,"p":2,"engine":"sim","seed":1}]`))
	f.Add([]byte(`[]`))
	f.Add([]byte(`[{"algorithm":"nope","n":-3,"engine":"x"},{"algorithm":"reduce","n":64,"p":2,"engine":"sim","priority":"batch"}]`))
	f.Add([]byte(`[{"algorithm":"reduce","n":64,"p":2,"engine":"sim"`))
	f.Add([]byte(`{"algorithm":"reduce","n":64}`))
	f.Add([]byte(`[null,1,"two",[3]]`))
	f.Fuzz(func(t *testing.T, body []byte) {
		req := httptest.NewRequest(http.MethodPost, "/v1/jobs:batch", bytes.NewReader(body))
		w := httptest.NewRecorder()
		fuzzHandler().ServeHTTP(w, req)
		checkBatchResponse(t, w)
	})
}

// checkBatchResponse asserts the batch contract on one recorded
// response: a 200 carries a count+jobs result set, everything else the
// uniform error envelope.
func checkBatchResponse(t *testing.T, w *httptest.ResponseRecorder) {
	t.Helper()
	switch w.Code {
	case http.StatusOK:
		var out struct {
			Count int               `json:"count"`
			Jobs  []json.RawMessage `json:"jobs"`
		}
		if err := json.Unmarshal(w.Body.Bytes(), &out); err != nil {
			t.Fatalf("200 with unparsable body %q: %v", w.Body.Bytes(), err)
		}
		if out.Count != len(out.Jobs) {
			t.Fatalf("count %d != %d jobs", out.Count, len(out.Jobs))
		}
	case http.StatusBadRequest, http.StatusRequestEntityTooLarge, http.StatusServiceUnavailable:
		var env struct {
			Error string `json:"error"`
			Code  string `json:"code"`
		}
		if err := json.Unmarshal(w.Body.Bytes(), &env); err != nil {
			t.Fatalf("status %d with unparsable envelope %q: %v", w.Code, w.Body.Bytes(), err)
		}
		if env.Error == "" || env.Code == "" {
			t.Fatalf("status %d envelope missing error/code: %q", w.Code, w.Body.Bytes())
		}
	default:
		t.Fatalf("unexpected status %d: %q", w.Code, w.Body.Bytes())
	}
}

// FuzzNDJSONStream feeds arbitrary bodies to POST /v1/jobs:stream: the
// response is always a 200 NDJSON stream whose every line parses as
// JSON, ending in either the done trailer or one error envelope line —
// truncated streams and garbage lines must not panic the handler.
func FuzzNDJSONStream(f *testing.F) {
	f.Add([]byte("{\"algorithm\":\"reduce\",\"n\":64,\"p\":2,\"engine\":\"sim\",\"seed\":1}\n{\"algorithm\":\"reduce\",\"n\":64,\"p\":2,\"engine\":\"sim\",\"seed\":2}\n"))
	f.Add([]byte("\n\n  \t\n"))
	f.Add([]byte("}{ not json\n"))
	f.Add([]byte("{\"algorithm\":\"reduce\",\"n\":64,\"p\":2,\"engine\":\"sim\"}\nnull\n"))
	f.Add([]byte("{\"algorithm\":\"re"))
	f.Add([]byte(""))
	f.Fuzz(func(t *testing.T, body []byte) {
		req := httptest.NewRequest(http.MethodPost, "/v1/jobs:stream", bytes.NewReader(body))
		w := httptest.NewRecorder()
		fuzzHandler().ServeHTTP(w, req)
		if w.Code != http.StatusOK {
			t.Fatalf("stream status = %d, want 200 (errors are in-band)", w.Code)
		}
		sc := bufio.NewScanner(bytes.NewReader(w.Body.Bytes()))
		checkNDJSONStream(t, sc)
	})
}

// checkNDJSONStream asserts the NDJSON response contract on a scanned
// body: every line parses as JSON, and the stream ends in exactly one
// trailer or error envelope line.
func checkNDJSONStream(t *testing.T, sc *bufio.Scanner) {
	t.Helper()
	sc.Buffer(make([]byte, 64<<10), maxStreamLine+4096)
	ended := false
	for sc.Scan() {
		if ended {
			t.Fatalf("line after the stream ended: %q", sc.Bytes())
		}
		var line struct {
			Done   bool   `json:"done"`
			Error  string `json:"error"`
			Status string `json:"status"`
		}
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("unparsable response line %q: %v", sc.Bytes(), err)
		}
		// A result line (it has a status) can carry a per-job error;
		// only the bare envelope or the trailer ends the stream.
		if line.Done || (line.Error != "" && line.Status == "") {
			ended = true
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("scanning response: %v", err)
	}
	if !ended {
		t.Fatal("stream ended without a trailer or error line")
	}
}

// wireSeed builds a valid binary request: hello + the given specs.
func wireSeed(specs ...jobqueue.Spec) []byte {
	codec := wire.NewCodec(jobqueue.DefaultClasses(0))
	body := wire.AppendHello(nil, wire.Version)
	for i := range specs {
		var err error
		if body, err = codec.AppendSpec(body, &specs[i]); err != nil {
			panic(err)
		}
	}
	return body
}

// FuzzWireStream feeds arbitrary bodies to the binary flavor of
// POST /v1/jobs:stream: whatever the bytes, the handler must not
// panic, must answer 200 (errors are in-band), and the response must
// be a well-formed frame sequence — a lone error frame for a refused
// opening, or hello + one result frame per accepted spec, terminated
// by a done trailer whose count matches or by one error frame.
// Truncated frames, oversized length prefixes and bad versions are all
// rejected through that same shape.
func FuzzWireStream(f *testing.F) {
	valid := wireSeed(
		jobqueue.Spec{Algorithm: "reduce", N: 64, P: 2, Engine: "sim", Seed: 1},
		jobqueue.Spec{Algorithm: "mergesort", N: 128, P: 2, Engine: "sim", Seed: 2, Priority: "batch"},
	)
	f.Add(valid)
	f.Add(wireSeed()) // hello, no specs
	f.Add([]byte{})
	f.Add(valid[:len(valid)-3])                       // truncated mid-frame
	f.Add(wire.AppendHello(nil, 99))                  // future version
	f.Add([]byte(`{"algorithm":"reduce","n":64}`))    // JSON under the wrong content type
	f.Add(append(wire.AppendHello(nil, wire.Version), // oversized length prefix
		0xff, 0xff, 0xff, 0x7f))
	f.Add(append(wire.AppendHello(nil, wire.Version), // unknown frame type
		0x02, 0x7f, 0x00))
	f.Add(append(wire.AppendHello(nil, wire.Version), // out-of-range algorithm id
		0x08, wire.TypeSpec, 0xc8, 0x01, 0x01, 0x08, 0x01, 0x01, 0x00))
	f.Add(wireSeed(jobqueue.Spec{Algorithm: "reduce", N: 64, P: 65, Engine: "sim"})) // refused at admission
	f.Fuzz(func(t *testing.T, body []byte) {
		req := httptest.NewRequest(http.MethodPost, "/v1/jobs:stream", bytes.NewReader(body))
		req.Header.Set("Content-Type", wire.ContentType)
		w := httptest.NewRecorder()
		fuzzHandler().ServeHTTP(w, req)
		if w.Code != http.StatusOK {
			t.Fatalf("stream status = %d, want 200 (errors are in-band)", w.Code)
		}
		br := wire.NewReader(bytes.NewReader(w.Body.Bytes()))
		sawHello, results, ended := false, 0, false
		for i := 0; ; i++ {
			typ, payload, err := wire.ReadFrame(br)
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatalf("response frame %d is malformed: %v (body %x)", i, err, w.Body.Bytes())
			}
			if ended {
				t.Fatalf("frame type %#x after the stream ended", typ)
			}
			switch typ {
			case wire.TypeHello:
				if i != 0 {
					t.Fatalf("hello at frame %d", i)
				}
				ver, err := wire.DecodeHello(payload)
				if err != nil || ver != wire.Version {
					t.Fatalf("bad server hello: %d, %v", ver, err)
				}
				sawHello = true
			case wire.TypeResult:
				if !sawHello {
					t.Fatal("result frame before hello")
				}
				var r wire.Result
				if err := wireFuzzCodec().DecodeResult(payload, &r); err != nil {
					t.Fatalf("bad result frame: %v", err)
				}
				if r.Index != results {
					t.Fatalf("result index %d at position %d", r.Index, results)
				}
				results++
			case wire.TypeDone:
				if !sawHello {
					t.Fatal("done trailer before hello")
				}
				jobs, err := wire.DecodeDone(payload)
				if err != nil {
					t.Fatalf("bad trailer: %v", err)
				}
				if jobs != results {
					t.Fatalf("trailer reports %d jobs, stream carried %d results", jobs, results)
				}
				ended = true
			case wire.TypeError:
				if _, _, _, err := wire.DecodeError(payload); err != nil {
					t.Fatalf("bad error frame: %v", err)
				}
				ended = true
			default:
				t.Fatalf("unknown response frame type %#x", typ)
			}
		}
		if !ended {
			t.Fatalf("stream ended without a trailer or error frame: %x", w.Body.Bytes())
		}
	})
}

var (
	wireFuzzOnce sync.Once
	wireFuzzCdc  *wire.Codec
)

// wireFuzzCodec is the response-side codec for the fuzz checks (the
// fuzz queue serves the default class set).
func wireFuzzCodec() *wire.Codec {
	wireFuzzOnce.Do(func() { wireFuzzCdc = wire.NewCodec(jobqueue.DefaultClasses(0)) })
	return wireFuzzCdc
}
