package lopramhttp

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"lopram/internal/jobqueue"
)

// The fuzz targets drive the two new request decoders through the full
// handler stack: whatever the body, the response must be well-formed
// JSON (an error envelope or a result set), and the handler must never
// panic. One long-lived queue serves every iteration — constructing a
// worker pool per input would drown the fuzzing loop.

var (
	fuzzOnce sync.Once
	fuzzMux  *http.ServeMux
)

func fuzzHandler() *http.ServeMux {
	fuzzOnce.Do(func() {
		fuzzMux = NewMux(jobqueue.New(jobqueue.Config{Workers: 2, QueueDepth: 1 << 12}))
	})
	return fuzzMux
}

// FuzzBatchSubmit feeds arbitrary bodies to POST /v1/jobs:batch:
// malformed JSON, truncated arrays and oversized batches must come back
// as one {error, code} envelope, valid arrays as a settled result set —
// never a panic, never a non-JSON body.
func FuzzBatchSubmit(f *testing.F) {
	f.Add([]byte(`[{"algorithm":"reduce","n":64,"p":2,"engine":"sim","seed":1}]`))
	f.Add([]byte(`[]`))
	f.Add([]byte(`[{"algorithm":"nope","n":-3,"engine":"x"},{"algorithm":"reduce","n":64,"p":2,"engine":"sim","priority":"batch"}]`))
	f.Add([]byte(`[{"algorithm":"reduce","n":64,"p":2,"engine":"sim"`))
	f.Add([]byte(`{"algorithm":"reduce","n":64}`))
	f.Add([]byte(`[null,1,"two",[3]]`))
	f.Fuzz(func(t *testing.T, body []byte) {
		req := httptest.NewRequest(http.MethodPost, "/v1/jobs:batch", bytes.NewReader(body))
		w := httptest.NewRecorder()
		fuzzHandler().ServeHTTP(w, req)
		checkBatchResponse(t, w)
	})
}

// checkBatchResponse asserts the batch contract on one recorded
// response: a 200 carries a count+jobs result set, everything else the
// uniform error envelope.
func checkBatchResponse(t *testing.T, w *httptest.ResponseRecorder) {
	t.Helper()
	switch w.Code {
	case http.StatusOK:
		var out struct {
			Count int               `json:"count"`
			Jobs  []json.RawMessage `json:"jobs"`
		}
		if err := json.Unmarshal(w.Body.Bytes(), &out); err != nil {
			t.Fatalf("200 with unparsable body %q: %v", w.Body.Bytes(), err)
		}
		if out.Count != len(out.Jobs) {
			t.Fatalf("count %d != %d jobs", out.Count, len(out.Jobs))
		}
	case http.StatusBadRequest, http.StatusRequestEntityTooLarge, http.StatusServiceUnavailable:
		var env struct {
			Error string `json:"error"`
			Code  string `json:"code"`
		}
		if err := json.Unmarshal(w.Body.Bytes(), &env); err != nil {
			t.Fatalf("status %d with unparsable envelope %q: %v", w.Code, w.Body.Bytes(), err)
		}
		if env.Error == "" || env.Code == "" {
			t.Fatalf("status %d envelope missing error/code: %q", w.Code, w.Body.Bytes())
		}
	default:
		t.Fatalf("unexpected status %d: %q", w.Code, w.Body.Bytes())
	}
}

// FuzzNDJSONStream feeds arbitrary bodies to POST /v1/jobs:stream: the
// response is always a 200 NDJSON stream whose every line parses as
// JSON, ending in either the done trailer or one error envelope line —
// truncated streams and garbage lines must not panic the handler.
func FuzzNDJSONStream(f *testing.F) {
	f.Add([]byte("{\"algorithm\":\"reduce\",\"n\":64,\"p\":2,\"engine\":\"sim\",\"seed\":1}\n{\"algorithm\":\"reduce\",\"n\":64,\"p\":2,\"engine\":\"sim\",\"seed\":2}\n"))
	f.Add([]byte("\n\n  \t\n"))
	f.Add([]byte("}{ not json\n"))
	f.Add([]byte("{\"algorithm\":\"reduce\",\"n\":64,\"p\":2,\"engine\":\"sim\"}\nnull\n"))
	f.Add([]byte("{\"algorithm\":\"re"))
	f.Add([]byte(""))
	f.Fuzz(func(t *testing.T, body []byte) {
		req := httptest.NewRequest(http.MethodPost, "/v1/jobs:stream", bytes.NewReader(body))
		w := httptest.NewRecorder()
		fuzzHandler().ServeHTTP(w, req)
		if w.Code != http.StatusOK {
			t.Fatalf("stream status = %d, want 200 (errors are in-band)", w.Code)
		}
		sc := bufio.NewScanner(bytes.NewReader(w.Body.Bytes()))
		sc.Buffer(make([]byte, 64<<10), maxStreamLine+4096)
		ended := false
		for sc.Scan() {
			if ended {
				t.Fatalf("line after the stream ended: %q", sc.Bytes())
			}
			var line struct {
				Done   bool   `json:"done"`
				Error  string `json:"error"`
				Status string `json:"status"`
			}
			if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
				t.Fatalf("unparsable response line %q: %v", sc.Bytes(), err)
			}
			// A result line (it has a status) can carry a per-job error;
			// only the bare envelope or the trailer ends the stream.
			if line.Done || (line.Error != "" && line.Status == "") {
				ended = true
			}
		}
		if err := sc.Err(); err != nil {
			t.Fatalf("scanning response: %v", err)
		}
		if !ended {
			t.Fatalf("stream ended without a trailer or error line: %q", w.Body.Bytes())
		}
	})
}
