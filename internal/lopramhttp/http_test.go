package lopramhttp

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"lopram/internal/jobqueue"
)

func testServer(t *testing.T, cfg jobqueue.Config) *httptest.Server {
	t.Helper()
	q := jobqueue.New(cfg)
	t.Cleanup(q.Close)
	srv := httptest.NewServer(NewMux(q))
	t.Cleanup(srv.Close)
	return srv
}

func postJSON(t *testing.T, url, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

// TestBatchEndpoint: a mixed array — valid specs settle with results in
// submission order, an invalid spec occupies its slot with an error and
// code instead of failing the request.
func TestBatchEndpoint(t *testing.T) {
	srv := testServer(t, jobqueue.Config{Workers: 2})
	body := `[
		{"algorithm":"reduce","n":64,"p":2,"engine":"sim","seed":1},
		{"algorithm":"no-such-algorithm","n":64,"engine":"sim"},
		{"algorithm":"reduce","n":64,"p":2,"engine":"sim","seed":2}
	]`
	resp := postJSON(t, srv.URL+"/v1/jobs:batch", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	var out struct {
		Count int `json:"count"`
		Jobs  []struct {
			Index  int              `json:"index"`
			ID     uint64           `json:"id"`
			Status string           `json:"status"`
			Result *jobqueue.Result `json:"result"`
			Error  string           `json:"error"`
			Code   string           `json:"code"`
		} `json:"jobs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Count != 3 || len(out.Jobs) != 3 {
		t.Fatalf("count = %d, jobs = %d, want 3/3", out.Count, len(out.Jobs))
	}
	for i, j := range out.Jobs {
		if j.Index != i {
			t.Errorf("jobs[%d].index = %d", i, j.Index)
		}
	}
	for _, i := range []int{0, 2} {
		j := out.Jobs[i]
		if j.Status != "done" || j.Result == nil || j.ID == 0 {
			t.Errorf("jobs[%d] = %+v, want settled result with an ID", i, j)
		}
	}
	if bad := out.Jobs[1]; bad.Status != "failed" || bad.Error == "" || bad.Code != "bad_request" {
		t.Errorf("jobs[1] = %+v, want failed with bad_request", bad)
	}
}

// TestBatchEndpointDuplicates: duplicate specs in one batch coalesce or
// hit the cache but every slot still settles with the same value.
func TestBatchEndpointDuplicates(t *testing.T) {
	srv := testServer(t, jobqueue.Config{Workers: 2})
	var specs []string
	for i := 0; i < 12; i++ {
		specs = append(specs, fmt.Sprintf(`{"algorithm":"reduce","n":64,"p":2,"engine":"sim","seed":%d}`, i%3))
	}
	resp := postJSON(t, srv.URL+"/v1/jobs:batch", "["+strings.Join(specs, ",")+"]")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	var out struct {
		Count int `json:"count"`
		Jobs  []struct {
			Result *jobqueue.Result `json:"result"`
		} `json:"jobs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Count != 12 {
		t.Fatalf("count = %d, want 12", out.Count)
	}
	valueBySeed := map[uint64]int64{}
	for i, j := range out.Jobs {
		if j.Result == nil {
			t.Fatalf("jobs[%d] unsettled: %+v", i, j)
		}
		seed := uint64(i % 3)
		if v, ok := valueBySeed[seed]; ok && v != j.Result.Value {
			t.Errorf("seed %d value diverged: %v vs %v", seed, v, j.Result.Value)
		}
		valueBySeed[seed] = j.Result.Value
	}
}

// TestBatchEndpointEmpty: an empty array is a 200 with zero slots.
func TestBatchEndpointEmpty(t *testing.T) {
	srv := testServer(t, jobqueue.Config{Workers: 1})
	resp := postJSON(t, srv.URL+"/v1/jobs:batch", `[]`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	var out struct {
		Count int               `json:"count"`
		Jobs  []json.RawMessage `json:"jobs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Count != 0 || len(out.Jobs) != 0 {
		t.Fatalf("count = %d, jobs = %v, want empty", out.Count, out.Jobs)
	}
}

// TestBatchEndpointMalformed: non-array bodies and truncated arrays are
// a 400 envelope, submitted nothing.
func TestBatchEndpointMalformed(t *testing.T) {
	srv := testServer(t, jobqueue.Config{Workers: 1})
	for _, body := range []string{
		`{"algorithm":"reduce"}`, // an object, not an array
		`[{"algorithm":"reduce","n":64`,
		`not json at all`,
		``,
		`[{"n": "sixty-four"}]`,
	} {
		resp := postJSON(t, srv.URL+"/v1/jobs:batch", body)
		var env struct {
			Error string `json:"error"`
			Code  string `json:"code"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
			t.Fatalf("body %q: decoding envelope: %v", body, err)
		}
		if resp.StatusCode != http.StatusBadRequest || env.Code != "bad_request" || env.Error == "" {
			t.Errorf("body %q: status %d code %q error %q, want 400 bad_request",
				body, resp.StatusCode, env.Code, env.Error)
		}
	}
}

// TestBatchEndpointTooLarge: one spec past maxBatchJobs refuses the
// whole request with 413 / batch_too_large before submitting anything.
func TestBatchEndpointTooLarge(t *testing.T) {
	srv := testServer(t, jobqueue.Config{Workers: 1})
	var buf bytes.Buffer
	buf.WriteByte('[')
	for i := 0; i <= maxBatchJobs; i++ {
		if i > 0 {
			buf.WriteByte(',')
		}
		fmt.Fprintf(&buf, `{"algorithm":"reduce","n":64,"p":2,"engine":"sim","seed":%d}`, i)
	}
	buf.WriteByte(']')
	resp := postJSON(t, srv.URL+"/v1/jobs:batch", buf.String())
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d, want 413", resp.StatusCode)
	}
	var env struct {
		Code string `json:"code"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatal(err)
	}
	if env.Code != "batch_too_large" {
		t.Fatalf("code = %q, want batch_too_large", env.Code)
	}
}

// TestStreamEndpoint: NDJSON in, indexed NDJSON out across multiple
// micro-batches, blank keepalive lines skipped, trailer last.
func TestStreamEndpoint(t *testing.T) {
	srv := testServer(t, jobqueue.Config{Workers: 2})
	const jobs = streamChunk*2 + 5 // three micro-batches, last partial
	var buf bytes.Buffer
	for i := 0; i < jobs; i++ {
		fmt.Fprintf(&buf, `{"algorithm":"reduce","n":64,"p":2,"engine":"sim","seed":%d}`+"\n", i%7)
		if i%10 == 0 {
			buf.WriteString("\n") // keepalive
		}
	}
	resp, err := http.Post(srv.URL+"/v1/jobs:stream", "application/x-ndjson", &buf)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	sc := bufio.NewScanner(resp.Body)
	next := 0
	sawTrailer := false
	for sc.Scan() {
		var line struct {
			Index  *int             `json:"index"`
			Status string           `json:"status"`
			Result *jobqueue.Result `json:"result"`
			Error  string           `json:"error"`
			Done   bool             `json:"done"`
			Jobs   int              `json:"jobs"`
		}
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("bad response line %q: %v", sc.Text(), err)
		}
		if line.Done {
			sawTrailer = true
			if line.Jobs != jobs {
				t.Errorf("trailer jobs = %d, want %d", line.Jobs, jobs)
			}
			continue
		}
		if sawTrailer {
			t.Fatalf("line after trailer: %q", sc.Text())
		}
		if line.Index == nil || *line.Index != next {
			t.Fatalf("result line %q: want index %d", sc.Text(), next)
		}
		if line.Status != "done" || line.Result == nil || line.Error != "" {
			t.Errorf("line %d = %q, want a settled result", next, sc.Text())
		}
		next++
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if next != jobs || !sawTrailer {
		t.Fatalf("got %d result lines (want %d), trailer %v", next, jobs, sawTrailer)
	}
}

// TestStreamEndpointMalformedLine: a garbage line settles the pending
// micro-batch, reports one indexed error envelope line, and ends the
// stream — no trailer.
func TestStreamEndpointMalformedLine(t *testing.T) {
	srv := testServer(t, jobqueue.Config{Workers: 2})
	var buf bytes.Buffer
	for i := 0; i < 3; i++ {
		fmt.Fprintf(&buf, `{"algorithm":"reduce","n":64,"p":2,"engine":"sim","seed":%d}`+"\n", i)
	}
	buf.WriteString("}{ not json\n")
	buf.WriteString(`{"algorithm":"reduce","n":64,"p":2,"engine":"sim","seed":9}` + "\n")
	resp, err := http.Post(srv.URL+"/v1/jobs:stream", "application/x-ndjson", &buf)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	var lines []map[string]any
	for sc.Scan() {
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("bad response line %q: %v", sc.Text(), err)
		}
		lines = append(lines, m)
	}
	if len(lines) != 4 {
		t.Fatalf("got %d lines %v, want 3 results + 1 error", len(lines), lines)
	}
	last := lines[3]
	if last["code"] != "bad_request" || last["index"] != float64(3) || last["done"] == true {
		t.Fatalf("last line = %v, want indexed bad_request error", last)
	}
	for i, m := range lines[:3] {
		if m["index"] != float64(i) || m["status"] != "done" {
			t.Errorf("line %d = %v, want settled result", i, m)
		}
	}
}

// TestSubmitWait: POST /v1/jobs?wait=1 answers 200 with the settled
// result in one round trip.
func TestSubmitWait(t *testing.T) {
	srv := testServer(t, jobqueue.Config{Workers: 1})
	resp := postJSON(t, srv.URL+"/v1/jobs?wait=1", `{"algorithm":"reduce","n":64,"p":2,"engine":"sim","seed":3}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	var view struct {
		Status string           `json:"status"`
		Result *jobqueue.Result `json:"result"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		t.Fatal(err)
	}
	if view.Status != "done" || view.Result == nil {
		t.Fatalf("view = %+v, want done with result", view)
	}
}
