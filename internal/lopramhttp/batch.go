package lopramhttp

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"

	"lopram/internal/jobqueue"
	"lopram/internal/wire"
)

// Batch-first ingest: the two high-throughput submit shapes. Both ride
// the queue's pooled Batch path (jobqueue.Queue.NewBatch), so a
// steady-state client costs the server zero allocations per job, and
// both answer only after the submitted jobs settle — the batched
// wait/result shape of one POST /v1/jobs?wait=1 per spec, without the
// per-request round trip.

const (
	// maxBatchJobs caps one POST /v1/jobs:batch request (and one
	// pending NDJSON error report's index space); larger arrays are
	// refused with 413 / batch_too_large before any job is submitted.
	maxBatchJobs = 4096
	// streamChunk is the micro-batch size of POST /v1/jobs:stream:
	// specs are submitted and settled in groups of this many lines, so
	// result lines flow while the client is still producing.
	streamChunk = 64
	// maxStreamLine bounds one NDJSON request line (a single job spec
	// comfortably fits; a line this long is a protocol error).
	maxStreamLine = 1 << 20
)

// jobResult is one job's slot in a batch or stream response: the index
// pairs it with the submission order, and exactly one of result or
// error/code is set once the job settled.
type jobResult struct {
	Index  int              `json:"index"`
	ID     uint64           `json:"id,omitempty"`
	Status jobqueue.Status  `json:"status"`
	Result *jobqueue.Result `json:"result,omitempty"`
	Error  string           `json:"error,omitempty"`
	Code   string           `json:"code,omitempty"`
}

// batchResponse is the POST /v1/jobs:batch reply: one jobResult per
// submitted spec, in submission order.
type batchResponse struct {
	Count int         `json:"count"`
	Jobs  []jobResult `json:"jobs"`
}

// streamTrailer is the final line of a POST /v1/jobs:stream response.
type streamTrailer struct {
	Done bool `json:"done"`
	Jobs int  `json:"jobs"`
}

// decodeSpecArray incrementally decodes a JSON array of job specs,
// refusing arrays longer than max without buffering them. The error
// return carries the HTTP status and envelope code to refuse with.
func decodeSpecArray(r io.Reader, max int) ([]jobqueue.Spec, int, string, error) {
	dec := json.NewDecoder(r)
	tok, err := dec.Token()
	if err != nil {
		return nil, http.StatusBadRequest, codeBadRequest, fmt.Errorf("bad request body: %v", err)
	}
	if delim, ok := tok.(json.Delim); !ok || delim != '[' {
		return nil, http.StatusBadRequest, codeBadRequest, errors.New("bad request body: want a JSON array of job specs")
	}
	var specs []jobqueue.Spec
	for dec.More() {
		if len(specs) == max {
			return nil, http.StatusRequestEntityTooLarge, codeBatchTooLarge,
				fmt.Errorf("batch exceeds %d jobs; split it or use /v1/jobs:stream", max)
		}
		var sp jobqueue.Spec
		if err := dec.Decode(&sp); err != nil {
			return nil, http.StatusBadRequest, codeBadRequest, fmt.Errorf("bad spec at index %d: %v", len(specs), err)
		}
		specs = append(specs, sp)
	}
	if _, err := dec.Token(); err != nil { // the closing ']'
		return nil, http.StatusBadRequest, codeBadRequest, fmt.Errorf("bad request body: %v", err)
	}
	return specs, 0, "", nil
}

// settledResult reads the i-th outcome of a settled batch into the
// response slot for global index idx. Must run before Release — the
// frames recycle.
func settledResult(b *jobqueue.Batch, i, idx int) jobResult {
	out := jobResult{Index: idx, ID: b.ID(i)}
	res, err := b.Outcome(i)
	if err != nil {
		out.Status = jobqueue.StatusFailed
		out.Error = err.Error()
		_, out.Code = queueErr(err)
		return out
	}
	out.Status = jobqueue.StatusDone
	r := res
	out.Result = &r
	return out
}

// handleBatch serves POST /v1/jobs:batch: decode the spec array, submit
// it through one pooled batch, wait for every job to settle, answer
// with the outcome array. Jobs refused at admission (queue_full,
// deadline_infeasible, unknown_class, ...) occupy their slot with an
// error + code instead of failing the whole request.
func handleBatch(q *jobqueue.Queue, w http.ResponseWriter, r *http.Request) {
	specs, status, code, err := decodeSpecArray(r.Body, maxBatchJobs)
	if err != nil {
		writeErr(w, status, code, err.Error())
		return
	}
	resp := batchResponse{Count: len(specs), Jobs: []jobResult{}}
	if len(specs) == 0 {
		writeJSONCompact(w, http.StatusOK, resp)
		return
	}
	b := q.NewBatch()
	for _, sp := range specs {
		// Submission errors surface through the slot's Outcome.
		_ = b.Submit(sp)
	}
	ctx, cancel := context.WithTimeout(r.Context(), waitCap)
	defer cancel()
	if err := b.Wait(ctx); err != nil {
		// Frames still in flight: the batch must not be released (the
		// arena refills itself). The client is gone or out of patience.
		writeErr(w, http.StatusServiceUnavailable, codeUnavailable,
			fmt.Sprintf("batch abandoned before settling: %v", err))
		return
	}
	for i := range specs {
		resp.Jobs = append(resp.Jobs, settledResult(b, i, i))
	}
	b.Release()
	writeJSONCompact(w, http.StatusOK, resp)
}

// handleStream serves POST /v1/jobs:stream: a persistent NDJSON submit
// connection. Each request line is one job spec; specs are submitted in
// pooled micro-batches of streamChunk and, as each micro-batch settles,
// one {"index": N, ...} result line per job is written back in
// submission order. A malformed line ends the stream with one error
// envelope line (carrying the line's index); a clean EOF ends it with
// {"done": true, "jobs": N}. The response streams with 200 up front, so
// protocol errors after the first byte are reported in-band.
func handleStream(q *jobqueue.Queue, w http.ResponseWriter, r *http.Request) {
	// The handler keeps reading spec lines after result lines start
	// flowing; without full duplex the HTTP/1 server discards the
	// unread request body at the first response write. (The error is
	// ignored: HTTP/2 is duplex natively and rejects the call.)
	_ = http.NewResponseController(w).EnableFullDuplex()
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	fl, _ := w.(http.Flusher)
	// Result lines accumulate in a pooled buffer (shared with the
	// binary flavor) and each settled micro-batch flushes as a single
	// vectored Write, instead of one Write+Flush per line.
	lines := bytes.NewBuffer(wire.GetBuf())
	defer func() { wire.PutBuf(lines.Bytes()[:0]) }()
	enc := json.NewEncoder(lines)
	// emit writes the buffered lines (plus v, if non-nil) in one Write.
	emit := func(v any) bool {
		if v != nil {
			_ = enc.Encode(v)
		}
		if lines.Len() == 0 {
			return true
		}
		_, err := w.Write(lines.Bytes())
		lines.Reset()
		if fl != nil {
			fl.Flush()
		}
		return err == nil
	}
	ctx, cancel := context.WithTimeout(r.Context(), waitCap)
	defer cancel()

	sc := bufio.NewScanner(r.Body)
	sc.Buffer(make([]byte, 64<<10), maxStreamLine)

	b := q.NewBatch()
	base := 0 // global index of the micro-batch's first spec
	// flush settles the current micro-batch and streams its results. On
	// a wait failure the batch leaks to the GC by contract and the
	// stream ends; flush reports whether to continue.
	flush := func() bool {
		if b.Len() == 0 {
			return true
		}
		if err := b.Wait(ctx); err != nil {
			emit(map[string]string{"error": fmt.Sprintf("stream abandoned before settling: %v", err), "code": codeUnavailable})
			b = nil
			return false
		}
		for i := 0; i < b.Len(); i++ {
			_ = enc.Encode(settledResult(b, i, base+i))
		}
		base += b.Len()
		b.Release()
		b = q.NewBatch()
		return emit(nil)
	}

	line := 0
	for sc.Scan() {
		raw := sc.Bytes()
		if len(raw) == 0 || allSpace(raw) {
			continue // blank lines are keepalives
		}
		var sp jobqueue.Spec
		if err := json.Unmarshal(raw, &sp); err != nil {
			if !flush() {
				return
			}
			emit(map[string]any{"index": line, "error": fmt.Sprintf("bad spec line: %v", err), "code": codeBadRequest})
			return
		}
		_ = b.Submit(sp) // submission errors surface through the slot
		line++
		if b.Len() == streamChunk {
			if !flush() {
				return
			}
		}
	}
	if err := sc.Err(); err != nil {
		if !flush() {
			return
		}
		emit(map[string]any{"index": base, "error": fmt.Sprintf("bad stream: %v", err), "code": codeBadRequest})
		return
	}
	if !flush() {
		return
	}
	emit(streamTrailer{Done: true, Jobs: base})
}

// allSpace reports whether the line is only ASCII whitespace.
func allSpace(b []byte) bool {
	for _, c := range b {
		if c != ' ' && c != '\t' && c != '\r' {
			return false
		}
	}
	return true
}
