// Package lopramhttp is lopramd's HTTP surface: the JSON/NDJSON handler
// set over one jobqueue.Queue, split out of the daemon binary so the
// endpoints are testable (and fuzzable) without flag parsing or a
// listener. NewMux builds the full routing table; cmd/lopramd mounts it
// verbatim.
//
// The surface has three ingest shapes, in increasing throughput order:
//
//   - POST /v1/jobs — one spec per request/response round trip
//     (?wait=1 blocks until the job settles);
//   - POST /v1/jobs:batch — a JSON array of specs submitted through the
//     queue's pooled batch path, answered with one result array after
//     every job settles;
//   - POST /v1/jobs:stream — a persistent streaming connection: one
//     spec in, one indexed result out, submitted in pooled
//     micro-batches so a slow producer still pipelines. The default
//     wire is NDJSON; a request with Content-Type
//     application/x-lopram-frame opts the connection into the
//     length-prefixed binary framing (internal/wire) on the same
//     route and semantics.
//
// Every error response is the uniform JSON envelope {"error": <message>,
// "code": <machine-readable code>} — see docs/API.md for the code table.
package lopramhttp

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"lopram/internal/core"
	"lopram/internal/jobqueue"
	"lopram/internal/scenario"
)

// waitCap bounds every blocking wait the surface offers (?wait=1, batch
// and stream settles), so an abandoned connection cannot hold a handler
// goroutine forever.
const waitCap = 5 * time.Minute

// NewMux builds the daemon's HTTP surface over one queue.
func NewMux(q *jobqueue.Queue) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		var spec jobqueue.Spec
		if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
			writeErr(w, http.StatusBadRequest, codeBadRequest, fmt.Sprintf("bad request body: %v", err))
			return
		}
		job, err := q.Submit(spec)
		if err != nil {
			// Invalid specs — jobqueue.ErrUnknownClass included, whose
			// message lists the valid class names — are the client's
			// fault (400); saturation/rate rejections are retryable 429s
			// and only shutdown is a 503 (queueErr).
			status, code := queueErr(err)
			writeErr(w, status, code, err.Error())
			return
		}
		if r.URL.Query().Get("wait") != "" {
			ctx, cancel := context.WithTimeout(r.Context(), waitCap)
			defer cancel()
			// Result/error are reported through the view below.
			_, _ = job.Wait(ctx)
		}
		status := http.StatusAccepted
		if job.Status() == jobqueue.StatusDone {
			status = http.StatusOK // cache hit or ?wait=1: complete on reply
		}
		writeJSON(w, status, job.View())
	})
	mux.HandleFunc("POST /v1/jobs:batch", func(w http.ResponseWriter, r *http.Request) {
		handleBatch(q, w, r)
	})
	mux.HandleFunc("POST /v1/jobs:stream", func(w http.ResponseWriter, r *http.Request) {
		// One route, two wire flavors: the binary framing is opt-in per
		// connection via Content-Type; everything else gets NDJSON.
		if isWireRequest(r) {
			handleWireStream(q, w, r)
			return
		}
		handleStream(q, w, r)
	})
	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		id, err := strconv.ParseUint(r.PathValue("id"), 10, 64)
		if err != nil {
			writeErr(w, http.StatusBadRequest, codeBadRequest, "bad job id")
			return
		}
		job, ok := q.Get(id)
		if !ok {
			writeErr(w, http.StatusNotFound, codeNotFound, "no such job (it may have aged out)")
			return
		}
		if r.URL.Query().Get("wait") != "" {
			ctx, cancel := context.WithTimeout(r.Context(), waitCap)
			defer cancel()
			// Result/error are reported through the view below.
			_, _ = job.Wait(ctx)
		}
		writeJSON(w, http.StatusOK, job.View())
	})
	mux.HandleFunc("GET /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		limit := 100
		if s := r.URL.Query().Get("limit"); s != "" {
			if v, err := strconv.Atoi(s); err == nil {
				limit = v
			}
		}
		writeJSON(w, http.StatusOK, q.Jobs(limit))
	})
	mux.HandleFunc("POST /v1/resize", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Shards int `json:"shards"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeErr(w, http.StatusBadRequest, codeBadRequest, fmt.Sprintf("bad request body: %v", err))
			return
		}
		epoch, err := q.Resize(req.Shards)
		if err != nil {
			// Out-of-bounds targets are the client's fault (400); only
			// shutdown is a 503.
			status, code := queueErr(err)
			writeErr(w, status, code, err.Error())
			return
		}
		// Report the count this resize produced, not a re-read of the
		// live queue — under -autoscale the controller may already have
		// moved the table again, and epoch/shards must pair up.
		writeJSON(w, http.StatusOK, map[string]any{"epoch": epoch, "shards": req.Shards})
	})
	mux.HandleFunc("GET /v1/algorithms", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, catalogueView())
	})
	mux.HandleFunc("GET /v1/classes", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, q.Classes())
	})
	mux.HandleFunc("GET /v1/scenarios", func(w http.ResponseWriter, _ *http.Request) {
		// Initialized non-nil so an empty catalogue encodes as [] and
		// clients can always range over the response.
		out := []map[string]any{}
		for _, sp := range scenario.Builtins() {
			out = append(out, map[string]any{
				"name":        sp.Name,
				"description": sp.Description,
				"jobs":        sp.Jobs,
				"arrival":     arrivalOf(sp),
			})
		}
		writeJSON(w, http.StatusOK, out)
	})
	mux.HandleFunc("GET /v1/scenarios/{name}", func(w http.ResponseWriter, r *http.Request) {
		sp, ok := scenario.Builtin(r.PathValue("name"))
		if !ok {
			writeErr(w, http.StatusNotFound, codeNotFound, "no such scenario (GET /v1/scenarios lists the catalogue)")
			return
		}
		writeJSON(w, http.StatusOK, sp)
	})
	mux.HandleFunc("GET /v1/policies", func(w http.ResponseWriter, _ *http.Request) {
		deq, adm := q.PolicyNames()
		writeJSON(w, http.StatusOK, map[string]any{
			"dequeue":             deq,
			"admission":           adm,
			"available_dequeue":   jobqueue.DequeuePolicyNames(),
			"available_admission": jobqueue.AdmissionPolicyNames(),
		})
	})
	// Scenario runs execute against their own sandboxed queue (sized by
	// scenario.QueueConfig), never the serving queue q, so a load test
	// cannot evict the daemon's cache or occupy its admission lanes. One
	// at a time: a second concurrent run gets 409.
	scenarioSem := make(chan struct{}, 1)
	mux.HandleFunc("POST /v1/scenarios/{name}/run", func(w http.ResponseWriter, r *http.Request) {
		sp, ok := scenario.Builtin(r.PathValue("name"))
		if !ok {
			writeErr(w, http.StatusNotFound, codeNotFound, "no such scenario (GET /v1/scenarios lists the catalogue)")
			return
		}
		streamScenarioRun(w, r, sp, scenarioSem)
	})
	mux.HandleFunc("POST /v1/scenarios/run", func(w http.ResponseWriter, r *http.Request) {
		var sp scenario.Spec
		if err := json.NewDecoder(r.Body).Decode(&sp); err != nil {
			writeErr(w, http.StatusBadRequest, codeBadRequest, fmt.Sprintf("bad request body: %v", err))
			return
		}
		streamScenarioRun(w, r, sp, scenarioSem)
	})
	mux.HandleFunc("GET /v1/metrics", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, q.Snapshot())
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	return mux
}

func arrivalOf(sp scenario.Spec) string {
	if sp.Arrival == "" {
		return scenario.ArrivalClosed
	}
	return sp.Arrival
}

func catalogueView() []map[string]any {
	// Initialized non-nil so an empty catalogue encodes as [], not null.
	out := []map[string]any{}
	for _, name := range core.Algorithms() {
		engines := core.EnginesFor(name)
		maxN := make(map[string]int, len(engines))
		for _, e := range engines {
			maxN[string(e)] = core.MaxN(name, e)
		}
		out = append(out, map[string]any{
			"algorithm": name,
			"engines":   engines,
			"max_n":     maxN,
		})
	}
	return out
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// writeJSONCompact is writeJSON without indentation, for the bulk
// ingest envelopes: a 4096-slot batch response is machine-consumed, and
// pretty-printing it costs more encoder time than the payload itself.
// The NDJSON stream path is compact by construction (one line per job).
func writeJSONCompact(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// Machine-readable error codes carried in every error envelope, so
// clients can branch without parsing messages. The human-readable
// "error" field stays the place for details (valid names, limits).
const (
	codeBadRequest         = "bad_request"
	codeBatchTooLarge      = "batch_too_large"
	codeUnknownClass       = "unknown_class"
	codeUnknownPolicy      = "unknown_policy"
	codeNotFound           = "not_found"
	codeConflict           = "conflict"
	codeQueueFull          = "queue_full"
	codeDeadlineInfeasible = "deadline_infeasible"
	codeUnavailable        = "unavailable"
)

// writeErr writes the daemon's uniform JSON error envelope:
// {"error": <message>, "code": <machine-readable code>}.
func writeErr(w http.ResponseWriter, status int, code, msg string) {
	writeJSON(w, status, map[string]string{"error": msg, "code": code})
}

// queueErr maps a queue/scenario error onto the envelope's status and
// code: saturation and rate limits are retryable 429s, shutdown is a
// 503, and everything else — unknown classes and policies included — is
// the client's 400.
func queueErr(err error) (status int, code string) {
	switch {
	case errors.Is(err, jobqueue.ErrDeadlineInfeasible):
		return http.StatusTooManyRequests, codeDeadlineInfeasible
	case errors.Is(err, jobqueue.ErrQueueFull):
		return http.StatusTooManyRequests, codeQueueFull
	case errors.Is(err, jobqueue.ErrClosed):
		return http.StatusServiceUnavailable, codeUnavailable
	case errors.Is(err, jobqueue.ErrUnknownClass):
		return http.StatusBadRequest, codeUnknownClass
	case errors.Is(err, jobqueue.ErrUnknownPolicy):
		return http.StatusBadRequest, codeUnknownPolicy
	}
	return http.StatusBadRequest, codeBadRequest
}
