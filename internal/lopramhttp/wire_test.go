package lopramhttp

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"lopram/internal/core"
	"lopram/internal/jobqueue"
	"lopram/internal/jobtrace"
	"lopram/internal/scenario"
	"lopram/internal/wire"
)

// postWire sends raw bytes to /v1/jobs:stream with the binary content
// type and returns the full response body.
func postWire(t *testing.T, url string, body []byte) (int, string, []byte) {
	t.Helper()
	resp, err := http.Post(url+"/v1/jobs:stream", wire.ContentType, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header.Get("Content-Type"), out
}

// respFrame is one parsed response frame (payload copied out of the
// reader buffer).
type respFrame struct {
	typ     byte
	payload []byte
}

// parseFrames splits a response body into frames, failing on framing
// errors — the handler's contract is that every response is a
// well-formed frame sequence no matter what the request was.
func parseFrames(t *testing.T, body []byte) []respFrame {
	t.Helper()
	br := wire.NewReader(bytes.NewReader(body))
	var out []respFrame
	for {
		typ, p, err := wire.ReadFrame(br)
		if err == io.EOF {
			return out
		}
		if err != nil {
			t.Fatalf("response frame %d: %v (body %x)", len(out), err, body)
		}
		out = append(out, respFrame{typ, append([]byte(nil), p...)})
	}
}

// TestWireStreamEndpoint drives the binary flavor end to end through
// raw frames: hello negotiation, per-slot results in submission order
// (an invalid spec occupies its slot as a failed result), and the done
// trailer.
func TestWireStreamEndpoint(t *testing.T) {
	srv := testServer(t, jobqueue.Config{Workers: 2})
	codec := wire.NewCodec(jobqueue.DefaultClasses(0))

	specs := []jobqueue.Spec{
		{Algorithm: "reduce", N: 64, P: 2, Engine: core.EngineSim, Seed: 1},
		{Algorithm: "reduce", N: 64, P: 65, Engine: core.EngineSim, Seed: 1}, // p > MaxProcs: refused at admission
		{Algorithm: "reduce", N: 64, P: 2, Engine: core.EngineSim, Seed: 1},  // dup of slot 0
	}
	body := wire.AppendHello(nil, wire.Version)
	var err error
	for i := range specs {
		if body, err = codec.AppendSpec(body, &specs[i]); err != nil {
			t.Fatal(err)
		}
	}
	status, ct, resp := postWire(t, srv.URL, body)
	if status != http.StatusOK || ct != wire.ContentType {
		t.Fatalf("status %d, content type %q; want 200 %q", status, ct, wire.ContentType)
	}
	frames := parseFrames(t, resp)
	if len(frames) != 5 {
		t.Fatalf("got %d frames, want hello + 3 results + done", len(frames))
	}
	if frames[0].typ != wire.TypeHello {
		t.Fatalf("frame 0 type %#x, want hello", frames[0].typ)
	}
	if ver, err := wire.DecodeHello(frames[0].payload); err != nil || ver != wire.Version {
		t.Fatalf("server hello = %d, %v", ver, err)
	}
	var results []wire.Result
	for _, f := range frames[1:4] {
		if f.typ != wire.TypeResult {
			t.Fatalf("frame type %#x, want result", f.typ)
		}
		var r wire.Result
		if err := codec.DecodeResult(f.payload, &r); err != nil {
			t.Fatal(err)
		}
		results = append(results, r)
	}
	for i, r := range results {
		if r.Index != i {
			t.Fatalf("result %d carries index %d", i, r.Index)
		}
	}
	if !results[0].Done || results[0].ID == 0 {
		t.Fatalf("slot 0 = %+v, want done with an id", results[0])
	}
	if results[1].Done || results[1].Code != "bad_request" || !strings.Contains(results[1].Err, "p must be") {
		t.Fatalf("slot 1 = %+v, want a bad_request failure", results[1])
	}
	if !results[2].Done {
		t.Fatalf("slot 2 = %+v, want done", results[2])
	}
	if results[0].Res.Value != results[2].Res.Value || results[0].Res.Check != results[2].Res.Check {
		t.Fatalf("dup outcome diverged: %+v vs %+v", results[0].Res, results[2].Res)
	}
	if frames[4].typ != wire.TypeDone {
		t.Fatalf("last frame type %#x, want done", frames[4].typ)
	}
	if jobs, err := wire.DecodeDone(frames[4].payload); err != nil || jobs != 3 {
		t.Fatalf("trailer = %d, %v; want 3", jobs, err)
	}
}

// TestWireClientRoundTrip exercises the same exchange through
// wire.Client — the path lopram-bench and the benchmark use.
func TestWireClientRoundTrip(t *testing.T) {
	srv := testServer(t, jobqueue.Config{Workers: 2})
	for _, proto := range []string{wire.ProtoBinary, wire.ProtoJSON} {
		t.Run(proto, func(t *testing.T) {
			cl, err := wire.NewClient(srv.Client(), srv.URL, proto, nil)
			if err != nil {
				t.Fatal(err)
			}
			specs := []jobqueue.Spec{
				{Algorithm: "reduce", N: 64, P: 2, Engine: core.EngineSim, Seed: 7},
				{Algorithm: "reduce", N: 128, P: 2, Engine: core.EngineSim, Seed: 8},
			}
			results, err := cl.Stream(specs)
			if err != nil {
				t.Fatal(err)
			}
			if len(results) != 2 {
				t.Fatalf("got %d results, want 2", len(results))
			}
			for i, r := range results {
				if r.Index != i || !r.Done || r.ID == 0 {
					t.Fatalf("result %d = %+v, want done with an id", i, r)
				}
				if r.Res.Work == 0 {
					t.Fatalf("result %d outcome = %+v, want sim work", i, r.Res)
				}
			}
		})
	}
}

// TestWireStreamRejects covers the in-band refusals: every bad opening
// gets a 200 with a single well-formed error frame carrying
// bad_request, never a panic or a naked connection drop.
func TestWireStreamRejects(t *testing.T) {
	srv := testServer(t, jobqueue.Config{Workers: 1})
	cases := []struct {
		name    string
		body    []byte
		wantMsg string
	}{
		{"empty body", nil, "hello"},
		{"json body with wire content type", []byte(`{"algorithm":"reduce"}`), "hello"},
		{"bad magic", func() []byte {
			b := wire.AppendHello(nil, wire.Version)
			b[2] = 'X' // inside the magic
			return b
		}(), "hello"},
		{"future version", wire.AppendHello(nil, 99), "unsupported wire version 99"},
		{"unknown frame after hello", append(wire.AppendHello(nil, wire.Version), 0x02, 0x7f, 0x00), "unexpected frame type"},
		{"truncated frame after hello", append(wire.AppendHello(nil, wire.Version), 0x50, wire.TypeSpec), "bad frame"},
		{"oversized frame after hello", append(wire.AppendHello(nil, wire.Version), 0xff, 0xff, 0xff, 0x7f), "bad frame"},
		// length 8, then: type, algID=200 (uvarint 0xc8 0x01), engine 1,
		// n=8, p=1, seed=1, flags 0 — a well-framed spec with an
		// out-of-range algorithm id.
		{"bad spec ids", append(wire.AppendHello(nil, wire.Version),
			0x08, wire.TypeSpec, 0xc8, 0x01, 0x01, 0x08, 0x01, 0x01, 0x00), "bad spec frame"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			status, _, resp := postWire(t, srv.URL, tc.body)
			if status != http.StatusOK {
				t.Fatalf("status %d, want 200 (errors are in-band)", status)
			}
			frames := parseFrames(t, resp)
			last := frames[len(frames)-1]
			if last.typ != wire.TypeError {
				t.Fatalf("last frame type %#x, want error (frames: %d)", last.typ, len(frames))
			}
			_, code, msg, err := wire.DecodeError(last.payload)
			if err != nil {
				t.Fatal(err)
			}
			if code != codeBadRequest {
				t.Fatalf("code %q, want %q", code, codeBadRequest)
			}
			if !strings.Contains(msg, tc.wantMsg) {
				t.Fatalf("message %q does not mention %q", msg, tc.wantMsg)
			}
		})
	}
}

// TestWireContentNegotiation pins the opt-in rule: parameters on the
// media type still select binary, and everything else still gets
// NDJSON on the same route.
func TestWireContentNegotiation(t *testing.T) {
	srv := testServer(t, jobqueue.Config{Workers: 1})
	resp, err := http.Post(srv.URL+"/v1/jobs:stream", wire.ContentType+"; v=1",
		bytes.NewReader(wire.AppendHello(nil, wire.Version)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != wire.ContentType {
		t.Fatalf("parameterized content type drew %q, want the binary flavor", ct)
	}
	resp2, err := http.Post(srv.URL+"/v1/jobs:stream", "application/x-ndjson", strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if ct := resp2.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("NDJSON request drew %q", ct)
	}
}

// replaySignature is the scheduling-independent projection of a trace:
// the sorted multiset of (disposition, class, key) with the
// timing-dependent hit/coalesce split collapsed to "dup" — the same
// projection the golden trace test pins.
func replaySignature(recs []jobtrace.Record) []string {
	lines := make([]string, 0, len(recs))
	for _, r := range recs {
		d := r.Disposition
		if d == jobtrace.DispositionHit || d == jobtrace.DispositionCoalesce {
			d = "dup"
		}
		lines = append(lines, fmt.Sprintf("%s %s %s", d, r.Class, r.Key))
	}
	sort.Strings(lines)
	return lines
}

// tracedQueue builds a queue for the scenario with a JSONL trace writer
// attached; done() closes the queue, flushes, and returns the records.
func tracedQueue(t *testing.T, sp scenario.Spec) (*jobqueue.Queue, func() []jobtrace.Record) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	tw := jobtrace.NewWriter(f)
	cfg := scenario.QueueConfig(sp)
	cfg.TraceSink = tw
	q := jobqueue.New(cfg)
	return q, func() []jobtrace.Record {
		q.Close()
		if err := tw.Flush(); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
		recs, err := jobtrace.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		return recs
	}
}

// TestCrossProtocolEquivalence proves the binary wire is semantically
// invisible: replaying cache-friendly-repeat's exact job stream over
// the binary protocol produces the same replay signature — executed
// exactly once per key, every duplicate served without execution, same
// classes — as the NDJSON protocol and as in-process ingest.
func TestCrossProtocolEquivalence(t *testing.T) {
	sp, ok := scenario.Builtin("cache-friendly-repeat")
	if !ok {
		t.Fatal("builtin cache-friendly-repeat missing")
	}
	specs, err := scenario.Stream(sp)
	if err != nil {
		t.Fatal(err)
	}

	// In-process arm: the scenario runner's own ingest.
	q, done := tracedQueue(t, sp)
	if _, err := scenario.Run(context.Background(), q, sp); err != nil {
		t.Fatal(err)
	}
	want := replaySignature(done())

	for _, proto := range []string{wire.ProtoJSON, wire.ProtoBinary} {
		t.Run(proto, func(t *testing.T) {
			q, done := tracedQueue(t, sp)
			srv := httptest.NewServer(NewMux(q))
			defer srv.Close()
			cl, err := wire.NewClient(srv.Client(), srv.URL, proto, q.Classes())
			if err != nil {
				t.Fatal(err)
			}
			results, err := cl.Stream(specs)
			if err != nil {
				t.Fatal(err)
			}
			if len(results) != len(specs) {
				t.Fatalf("got %d results for %d specs", len(results), len(specs))
			}
			for i, r := range results {
				if !r.Done {
					t.Fatalf("slot %d failed: %s (%s)", i, r.Err, r.Code)
				}
			}
			got := replaySignature(done())
			if len(got) != len(want) {
				t.Fatalf("signature has %d lines, in-process has %d", len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("signature diverges from in-process at line %d:\n  got:  %s\n  want: %s", i, got[i], want[i])
				}
			}
		})
	}
}
