package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMeanStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); m != 5 {
		t.Fatalf("mean = %v", m)
	}
	if s := StdDev(xs); math.Abs(s-2.138) > 0.01 {
		t.Fatalf("stddev = %v", s)
	}
	if Mean(nil) != 0 || StdDev(nil) != 0 || StdDev([]float64{1}) != 0 {
		t.Fatal("degenerate inputs mishandled")
	}
}

func TestGeoMean(t *testing.T) {
	if g := GeoMean([]float64{1, 100}); math.Abs(g-10) > 1e-9 {
		t.Fatalf("geomean = %v", g)
	}
	if GeoMean(nil) != 0 {
		t.Fatal("empty geomean")
	}
}

func TestLinearFitExact(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{3, 5, 7, 9} // y = 2x + 1
	f := LinearFit(xs, ys)
	if math.Abs(f.Slope-2) > 1e-12 || math.Abs(f.Intercept-1) > 1e-12 {
		t.Fatalf("fit = %+v", f)
	}
	if f.R2 < 0.999999 {
		t.Fatalf("R2 = %v", f.R2)
	}
}

func TestLinearFitDegenerate(t *testing.T) {
	f := LinearFit([]float64{5, 5, 5}, []float64{1, 2, 3})
	if f.Slope != 0 {
		t.Fatalf("vertical data slope = %v", f.Slope)
	}
	if LinearFit(nil, nil) != (Fit{}) {
		t.Fatal("empty fit not zero")
	}
}

func TestLinearFitPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	LinearFit([]float64{1}, []float64{1, 2})
}

func TestLogLogSlopeRecoverExponent(t *testing.T) {
	// y = 3 x^2.5 exactly.
	var xs, ys []float64
	for _, x := range []float64{2, 4, 8, 16, 32} {
		xs = append(xs, x)
		ys = append(ys, 3*math.Pow(x, 2.5))
	}
	f := LogLogSlope(xs, ys)
	if math.Abs(f.Slope-2.5) > 1e-9 {
		t.Fatalf("slope = %v, want 2.5", f.Slope)
	}
}

func TestLogLogSlopePanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	LogLogSlope([]float64{1, 0}, []float64{1, 1})
}

func TestSpeedup(t *testing.T) {
	s := NewSpeedup(4, 100, 25)
	if s.Achieved != 4 || s.Eff != 1 {
		t.Fatalf("speedup = %+v", s)
	}
	z := NewSpeedup(4, 100, 0)
	if z.Achieved != 0 {
		t.Fatalf("zero-time speedup = %+v", z)
	}
}

func TestWithinFactor(t *testing.T) {
	if !WithinFactor(10, 10, 1) || !WithinFactor(11, 10, 1.2) || WithinFactor(13, 10, 1.2) {
		t.Fatal("WithinFactor misbehaves")
	}
	// Factor below 1 is normalized.
	if !WithinFactor(11, 10, 0.8) {
		t.Fatal("factor normalization broken")
	}
}

func TestFitRecoversRandomLines(t *testing.T) {
	err := quick.Check(func(m8, b8 int8) bool {
		m, b := float64(m8), float64(b8)
		xs := []float64{0, 1, 2, 3, 4, 5}
		ys := make([]float64, len(xs))
		for i, x := range xs {
			ys[i] = m*x + b
		}
		f := LinearFit(xs, ys)
		return math.Abs(f.Slope-m) < 1e-9 && math.Abs(f.Intercept-b) < 1e-9
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4} // unsorted on purpose; must not be mutated
	if got := Percentile(xs, 50); got != 3 {
		t.Fatalf("p50 = %g, want 3", got)
	}
	if got := Percentile(xs, 0); got != 1 {
		t.Fatalf("p0 = %g, want 1", got)
	}
	if got := Percentile(xs, 100); got != 5 {
		t.Fatalf("p100 = %g, want 5", got)
	}
	if got := Percentile(xs, 25); got != 2 {
		t.Fatalf("p25 = %g, want 2", got)
	}
	if got := Percentile([]float64{1, 2}, 75); got != 1.75 {
		t.Fatalf("interpolated p75 = %g, want 1.75", got)
	}
	if xs[0] != 5 {
		t.Fatal("Percentile mutated its input")
	}
	if got := Percentile(nil, 50); got != 0 {
		t.Fatalf("empty p50 = %g", got)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	if s.Count != 10 || s.Min != 1 || s.Max != 10 {
		t.Fatalf("bad extremes: %+v", s)
	}
	if s.Mean != 5.5 {
		t.Fatalf("mean = %g", s.Mean)
	}
	if s.P50 != 5.5 {
		t.Fatalf("p50 = %g", s.P50)
	}
	if !(s.P50 <= s.P90 && s.P90 <= s.P95 && s.P95 <= s.P99 && s.P99 <= s.Max) {
		t.Fatalf("percentiles not monotone: %+v", s)
	}
	if z := Summarize(nil); z != (Summary{}) {
		t.Fatalf("empty summary not zero: %+v", z)
	}
}
