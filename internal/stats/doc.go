// Package stats is the statistical toolkit shared by the experiment
// suite and the serving layer: least-squares log-log slope fitting (to
// estimate the empirical exponent of a measured growth curve and compare
// it with a theorem's predicted exponent), speedup aggregation, and the
// percentile summaries (Percentile, Summarize, Summary) that
// internal/jobqueue's latency metrics and every scenario report are
// built from.
package stats
