package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the sample standard deviation of xs (0 for fewer than two
// samples).
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)-1))
}

// GeoMean returns the geometric mean of xs (all entries must be positive).
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}

// Fit holds a least-squares line fit y = Slope·x + Intercept with its
// coefficient of determination.
type Fit struct {
	Slope, Intercept, R2 float64
}

// LinearFit fits a least-squares line through (xs, ys). It panics on
// mismatched lengths and returns a zero fit for fewer than two points.
func LinearFit(xs, ys []float64) Fit {
	if len(xs) != len(ys) {
		panic("stats: mismatched sample lengths")
	}
	n := float64(len(xs))
	if len(xs) < 2 {
		return Fit{}
	}
	mx, my := Mean(xs), Mean(ys)
	var sxx, sxy, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		return Fit{Intercept: my}
	}
	slope := sxy / sxx
	fit := Fit{Slope: slope, Intercept: my - slope*mx}
	if syy > 0 {
		fit.R2 = sxy * sxy / (sxx * syy)
	} else {
		fit.R2 = 1
	}
	_ = n
	return fit
}

// LogLogSlope fits log(y) against log(x) and returns the slope: the
// empirical polynomial exponent of y's growth in x. All samples must be
// positive.
func LogLogSlope(xs, ys []float64) Fit {
	lx := make([]float64, len(xs))
	ly := make([]float64, len(ys))
	for i := range xs {
		if xs[i] <= 0 || ys[i] <= 0 {
			panic(fmt.Sprintf("stats: non-positive sample (%g, %g) in log-log fit", xs[i], ys[i]))
		}
		lx[i] = math.Log(xs[i])
		ly[i] = math.Log(ys[i])
	}
	return LinearFit(lx, ly)
}

// Speedup holds a measured speedup point.
type Speedup struct {
	P        int
	T1, Tp   float64
	Achieved float64 // T1 / Tp
	Eff      float64 // Achieved / P
}

// NewSpeedup computes the derived fields.
func NewSpeedup(p int, t1, tp float64) Speedup {
	s := Speedup{P: p, T1: t1, Tp: tp}
	if tp > 0 {
		s.Achieved = t1 / tp
	}
	if p > 0 {
		s.Eff = s.Achieved / float64(p)
	}
	return s
}

// Percentile returns the q-th percentile (q in [0, 100]) of xs by linear
// interpolation between closest ranks. It returns 0 for empty input and
// does not modify xs.
func Percentile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return percentileSorted(sorted, q)
}

// percentileSorted is Percentile on an already-sorted sample.
func percentileSorted(sorted []float64, q float64) float64 {
	if q <= 0 {
		return sorted[0]
	}
	if q >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := q / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Summary condenses a latency (or any) sample into the aggregates a serving
// layer reports: count, mean, spread, and tail percentiles.
type Summary struct {
	Count  int     `json:"count"`
	Mean   float64 `json:"mean"`
	StdDev float64 `json:"stddev"`
	Min    float64 `json:"min"`
	Max    float64 `json:"max"`
	P50    float64 `json:"p50"`
	P90    float64 `json:"p90"`
	P95    float64 `json:"p95"`
	P99    float64 `json:"p99"`
}

// Summarize computes a Summary of xs (zero Summary for empty input). It
// sorts one copy of the sample and derives all order statistics from it.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return Summary{
		Count:  len(sorted),
		Mean:   Mean(sorted),
		StdDev: StdDev(sorted),
		Min:    sorted[0],
		Max:    sorted[len(sorted)-1],
		P50:    percentileSorted(sorted, 50),
		P90:    percentileSorted(sorted, 90),
		P95:    percentileSorted(sorted, 95),
		P99:    percentileSorted(sorted, 99),
	}
}

// WithinFactor reports whether got is within factor f of want (f >= 1):
// want/f <= got <= want·f.
func WithinFactor(got, want, f float64) bool {
	if f < 1 {
		f = 1 / f
	}
	return got >= want/f && got <= want*f
}
