// Package stats provides the small statistical toolkit the experiment suite
// needs: least-squares log-log slope fitting (to estimate the empirical
// exponent of a measured growth curve and compare it with a theorem's
// predicted exponent), speedup aggregation, and summary statistics.
package stats

import (
	"fmt"
	"math"
)

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the sample standard deviation of xs (0 for fewer than two
// samples).
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)-1))
}

// GeoMean returns the geometric mean of xs (all entries must be positive).
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}

// Fit holds a least-squares line fit y = Slope·x + Intercept with its
// coefficient of determination.
type Fit struct {
	Slope, Intercept, R2 float64
}

// LinearFit fits a least-squares line through (xs, ys). It panics on
// mismatched lengths and returns a zero fit for fewer than two points.
func LinearFit(xs, ys []float64) Fit {
	if len(xs) != len(ys) {
		panic("stats: mismatched sample lengths")
	}
	n := float64(len(xs))
	if len(xs) < 2 {
		return Fit{}
	}
	mx, my := Mean(xs), Mean(ys)
	var sxx, sxy, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		return Fit{Intercept: my}
	}
	slope := sxy / sxx
	fit := Fit{Slope: slope, Intercept: my - slope*mx}
	if syy > 0 {
		fit.R2 = sxy * sxy / (sxx * syy)
	} else {
		fit.R2 = 1
	}
	_ = n
	return fit
}

// LogLogSlope fits log(y) against log(x) and returns the slope: the
// empirical polynomial exponent of y's growth in x. All samples must be
// positive.
func LogLogSlope(xs, ys []float64) Fit {
	lx := make([]float64, len(xs))
	ly := make([]float64, len(ys))
	for i := range xs {
		if xs[i] <= 0 || ys[i] <= 0 {
			panic(fmt.Sprintf("stats: non-positive sample (%g, %g) in log-log fit", xs[i], ys[i]))
		}
		lx[i] = math.Log(xs[i])
		ly[i] = math.Log(ys[i])
	}
	return LinearFit(lx, ly)
}

// Speedup holds a measured speedup point.
type Speedup struct {
	P        int
	T1, Tp   float64
	Achieved float64 // T1 / Tp
	Eff      float64 // Achieved / P
}

// NewSpeedup computes the derived fields.
func NewSpeedup(p int, t1, tp float64) Speedup {
	s := Speedup{P: p, T1: t1, Tp: tp}
	if tp > 0 {
		s.Achieved = t1 / tp
	}
	if p > 0 {
		s.Eff = s.Achieved / float64(p)
	}
	return s
}

// WithinFactor reports whether got is within factor f of want (f >= 1):
// want/f <= got <= want·f.
func WithinFactor(got, want, f float64) bool {
	if f < 1 {
		f = 1 / f
	}
	return got >= want/f && got <= want*f
}
