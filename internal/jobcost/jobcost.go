// Package jobcost predicts the execution cost of a catalogue job from
// its (algorithm, engine, n, p) spec before it runs, using the same
// master-theorem recurrences (internal/master) the reproduction's
// experiments validate. Predictions come in two layers:
//
//   - Predict returns abstract work units — the recurrence's solved cost
//     for the engine's execution shape (sequential work for the
//     simulator, the p-processor parallel time for palrt, emulated total
//     work for PRAM). Units are exact up to a per-engine constant, so
//     they order jobs of one engine correctly on their own.
//
//   - Calibrator learns that per-engine constant (nanoseconds per unit)
//     online from observed completions, turning units into wall-clock
//     predictions that are comparable across engines and against
//     deadlines. It starts from conservative priors and converges by
//     exponentially weighted averaging.
//
// Fit regresses predicted units against measured wall times offline —
// the calibration experiment (A8) uses it to report how well the oracle
// tracks reality per engine (R², MAPE).
package jobcost

import (
	"math"
	"sync"
	"time"

	"lopram/internal/core"
	"lopram/internal/master"
)

// Estimate is a predicted cost in abstract work units. Known is false
// when the (algorithm, engine) pair is outside the model — callers must
// treat such jobs as unordered rather than free.
type Estimate struct {
	Known bool
	Units float64
}

// dandcRec returns the divide-and-conquer recurrence T(n) = a·T(n/b) +
// c·n^e used by the catalogue's cost-model families.
func dandcRec(a, b, c, e float64) master.Recurrence {
	return master.Recurrence{A: a, B: b, C: c, E: e, Cutoff: 16, Base: 16}
}

// Predict returns the cost model's work-unit estimate for one catalogue
// job. The units follow the engine's execution shape:
//
//   - sim runs the whole program on a single-host simulator, so units
//     are the sequential work T(n) (every simulated step costs host
//     time regardless of the simulated p).
//   - palrt executes on p real processors, so units are the recurrence's
//     p-processor parallel time (work/p plus the critical path).
//   - pram Brent-emulates every op on the host, so units are the PRAM
//     program's total work.
//
// Unknown algorithm/engine pairs return a zero Estimate.
func Predict(algorithm string, engine core.Engine, n, p int) Estimate {
	if n <= 0 {
		return Estimate{}
	}
	if p < 1 {
		p = 1
	}
	fn, fp := float64(n), float64(p)
	lg := math.Log2(math.Max(fn, 2))

	known := func(u float64) Estimate {
		if u <= 0 || math.IsInf(u, 0) || math.IsNaN(u) {
			return Estimate{}
		}
		return Estimate{Known: true, Units: u}
	}

	switch algorithm {
	case "mergesort", "quicksort", "closestpair", "maxsubarray":
		// The Θ(n log n) D&C family: T(n) = 2T(n/2) + n (Case 2).
		rec := dandcRec(2, 2, 1, 1)
		switch engine {
		case core.EngineSim:
			return known(rec.SeqTime(fn))
		case core.EnginePalrt:
			return known(rec.ParTimeSeqMerge(fn, p))
		case core.EnginePRAM:
			// Batcher's bitonic network: Θ(n log² n) total work, all of
			// it executed by the Brent emulator.
			return known(fn * lg * lg)
		}
	case "reduce":
		// Binary tree reduction: T(n) = 2T(n/2) + 1, work Θ(n).
		rec := master.Recurrence{A: 2, B: 2, C: 1, E: 0, Cutoff: 1, Base: 1}
		switch engine {
		case core.EngineSim:
			return known(rec.SeqTime(fn))
		case core.EnginePalrt:
			return known(fn/fp + lg)
		case core.EnginePRAM:
			return known(2 * fn)
		}
	case "prefixsums":
		switch engine {
		case core.EnginePalrt:
			// Work-optimal two-pass scan: 2n work, log n path.
			return known(2*fn/fp + lg)
		case core.EnginePRAM:
			// Hillis–Steele: Θ(n log n) emulated work.
			return known(fn * lg)
		}
	case "editdistance", "lcs":
		// Θ(n²) DP cells; palrt sweeps ~2n antidiagonal waves.
		switch engine {
		case core.EngineSim:
			return known(fn * fn)
		case core.EnginePalrt:
			return known(fn*fn/fp + 2*fn)
		}
	case "knapsack":
		// n items × 4n capacity cells.
		switch engine {
		case core.EngineSim:
			return known(4 * fn * fn)
		case core.EnginePalrt:
			return known(4*fn*fn/fp + fn)
		}
	case "matrixchain":
		// Interval DP: Σ_len (n−len)·len ≈ n³/6 cell work, n waves.
		switch engine {
		case core.EngineSim:
			return known(fn * fn * fn / 6)
		case core.EnginePalrt:
			return known(fn*fn*fn/(6*fp) + fn*fn)
		}
	}
	return Estimate{}
}

// Per-engine ns-per-unit priors: deliberately rough (the Calibrator
// replaces them after a handful of observations), but the right order of
// magnitude on a current host so cold-start deadline shedding errs
// toward admitting. The simulator interprets each unit through the
// scheduler loop; palrt and the PRAM emulator run closer to the metal.
const (
	priorSimNS   = 150
	priorPalrtNS = 15
	priorPRAMNS  = 30
	fallbackNS   = 50
)

func priorNS(engine core.Engine) float64 {
	switch engine {
	case core.EngineSim:
		return priorSimNS
	case core.EnginePalrt:
		return priorPalrtNS
	case core.EnginePRAM:
		return priorPRAMNS
	}
	return fallbackNS
}

// ewmaAlpha is the weight of one new observation in the calibrated
// scale: high enough to converge within ~10 jobs, low enough that one
// descheduled outlier cannot swing predictions by more than ~a third.
const ewmaAlpha = 0.3

// Calibrator learns nanoseconds-per-unit per engine from observed
// completions, turning Predict's units into wall-clock estimates. Safe
// for concurrent use; the zero value is not ready — use NewCalibrator.
type Calibrator struct {
	mu    sync.Mutex
	scale map[core.Engine]float64
}

// NewCalibrator returns a calibrator holding only the static priors.
func NewCalibrator() *Calibrator {
	return &Calibrator{scale: make(map[core.Engine]float64)}
}

// Observe feeds one completed job's (predicted units, measured wall)
// pair into the engine's scale estimate. Non-positive inputs are
// ignored.
func (c *Calibrator) Observe(engine core.Engine, units float64, wall time.Duration) {
	if units <= 0 || wall <= 0 {
		return
	}
	ratio := float64(wall.Nanoseconds()) / units
	c.mu.Lock()
	if cur, ok := c.scale[engine]; ok {
		c.scale[engine] = (1-ewmaAlpha)*cur + ewmaAlpha*ratio
	} else {
		c.scale[engine] = ratio
	}
	c.mu.Unlock()
}

// NSPerUnit returns the engine's current nanoseconds-per-unit scale —
// the calibrated estimate once at least one observation has arrived,
// the static prior before.
func (c *Calibrator) NSPerUnit(engine core.Engine) float64 {
	c.mu.Lock()
	s, ok := c.scale[engine]
	c.mu.Unlock()
	if ok {
		return s
	}
	return priorNS(engine)
}

// Wall converts units into a predicted wall-clock duration at the
// engine's current scale.
func (c *Calibrator) Wall(engine core.Engine, units float64) time.Duration {
	if units <= 0 {
		return 0
	}
	return time.Duration(units * c.NSPerUnit(engine))
}

// Fit regresses wall = scale·units through the origin by least squares
// and reports the fit quality: scale in the wall slice's own time unit
// per work unit, R² (coefficient of determination against the mean
// model), and MAPE (mean absolute percentage error of the fitted
// predictions). It needs at least two samples with positive units and
// wall; otherwise ok is false.
func Fit(units, wall []float64) (scale, r2, mape float64, ok bool) {
	if len(units) != len(wall) {
		return 0, 0, 0, false
	}
	var su2, suw float64
	n := 0
	for i := range units {
		if units[i] <= 0 || wall[i] <= 0 {
			continue
		}
		su2 += units[i] * units[i]
		suw += units[i] * wall[i]
		n++
	}
	if n < 2 || su2 == 0 {
		return 0, 0, 0, false
	}
	scale = suw / su2
	var mean float64
	for i := range wall {
		if units[i] <= 0 || wall[i] <= 0 {
			continue
		}
		mean += wall[i]
	}
	mean /= float64(n)
	var ssRes, ssTot, ape float64
	for i := range units {
		if units[i] <= 0 || wall[i] <= 0 {
			continue
		}
		pred := scale * units[i]
		ssRes += (wall[i] - pred) * (wall[i] - pred)
		ssTot += (wall[i] - mean) * (wall[i] - mean)
		ape += math.Abs(wall[i]-pred) / wall[i]
	}
	if ssTot > 0 {
		r2 = 1 - ssRes/ssTot
	} else if ssRes == 0 {
		r2 = 1
	}
	mape = ape / float64(n)
	return scale, r2, mape, true
}
