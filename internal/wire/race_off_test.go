//go:build !race

package wire

// raceEnabled reports whether the race detector is compiled in; allocation
// tests skip under it because its instrumentation allocates.
const raceEnabled = false
