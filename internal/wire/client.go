package wire

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"

	"lopram/internal/jobqueue"
)

// Stream protocol names, as spelled by lopram-bench -wire.
const (
	// ProtoJSON selects the NDJSON flavor of POST /v1/jobs:stream —
	// the server default.
	ProtoJSON = "json"
	// ProtoBinary selects the length-prefixed binary flavor.
	ProtoBinary = "binary"
)

// Client submits job specs over POST /v1/jobs:stream in either wire
// flavor. Both flavors build the whole request body up front (pooled
// buffers, append-style encoders), POST it, and parse the streamed
// response into []Result — so the two arms of a benchmark or an A/B
// replay differ only in codec, never in request shape.
type Client struct {
	// HTTP is the underlying client; nil means http.DefaultClient.
	HTTP *http.Client
	// Base is the server root, e.g. "http://127.0.0.1:8080".
	Base string
	// Proto is ProtoJSON or ProtoBinary.
	Proto string
	// Codec translates names to wire ids (binary flavor only). Its
	// class table must match the serving queue's class set.
	Codec *Codec
}

// NewClient builds a stream client for the given server root and
// protocol. classes is the serving queue's class set (nil if no spec
// will name a priority class); it only matters for ProtoBinary.
func NewClient(httpc *http.Client, base, proto string, classes jobqueue.ClassSet) (*Client, error) {
	switch proto {
	case ProtoJSON, ProtoBinary:
	default:
		return nil, fmt.Errorf("wire: unknown protocol %q (want %q or %q)", proto, ProtoJSON, ProtoBinary)
	}
	return &Client{
		HTTP:  httpc,
		Base:  strings.TrimSuffix(base, "/"),
		Proto: proto,
		Codec: NewCodec(classes),
	}, nil
}

// Stream submits the specs in order over one POST /v1/jobs:stream
// request and returns the settled results in the same order. In-band
// server errors (a bad spec, an abandoned stream, a version mismatch)
// come back as the error; results settled before the error are still
// returned alongside it.
func (c *Client) Stream(specs []jobqueue.Spec) ([]Result, error) {
	if c.Proto == ProtoBinary {
		return c.streamBinary(specs)
	}
	return c.streamJSON(specs)
}

// httpc returns the effective HTTP client.
func (c *Client) httpc() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// post sends body as one POST /v1/jobs:stream request and checks for a
// streaming 200.
func (c *Client) post(contentType string, body []byte) (*http.Response, error) {
	resp, err := c.httpc().Post(c.Base+"/v1/jobs:stream", contentType, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		defer resp.Body.Close()
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<10))
		return nil, fmt.Errorf("wire: POST /v1/jobs:stream: %s: %s", resp.Status, bytes.TrimSpace(msg))
	}
	return resp, nil
}

// streamBinary speaks the length-prefixed protocol: hello + one spec
// frame per job out, hello + result frames + trailer back.
func (c *Client) streamBinary(specs []jobqueue.Spec) ([]Result, error) {
	body := GetBuf()
	defer PutBuf(body)
	body = AppendHello(body, Version)
	var err error
	for i := range specs {
		if body, err = c.Codec.AppendSpec(body, &specs[i]); err != nil {
			return nil, fmt.Errorf("wire: spec %d: %w", i, err)
		}
	}
	resp, err := c.post(ContentType, body)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	br := GetReader(resp.Body)
	defer PutReader(br)

	typ, payload, err := ReadFrame(br)
	if err != nil {
		return nil, fmt.Errorf("wire: reading server hello: %w", err)
	}
	switch typ {
	case TypeHello:
		ver, err := DecodeHello(payload)
		if err != nil {
			return nil, fmt.Errorf("wire: bad server hello: %w", err)
		}
		if ver != Version {
			return nil, fmt.Errorf("wire: server speaks version %d, client speaks %d", ver, Version)
		}
	case TypeError:
		idx, code, msg, derr := DecodeError(payload)
		if derr != nil {
			return nil, fmt.Errorf("wire: bad server error frame: %w", derr)
		}
		return nil, fmt.Errorf("wire: server error at index %d: %s (%s)", idx, msg, code)
	default:
		return nil, fmt.Errorf("wire: server opened with frame type %#x, want hello", typ)
	}

	results := make([]Result, 0, len(specs))
	for {
		typ, payload, err := ReadFrame(br)
		if err != nil {
			if err == io.EOF {
				return results, fmt.Errorf("wire: stream ended without a trailer")
			}
			return results, fmt.Errorf("wire: reading results: %w", err)
		}
		switch typ {
		case TypeResult:
			var r Result
			if err := c.Codec.DecodeResult(payload, &r); err != nil {
				return results, fmt.Errorf("wire: bad result frame: %w", err)
			}
			results = append(results, r)
		case TypeError:
			idx, code, msg, derr := DecodeError(payload)
			if derr != nil {
				return results, fmt.Errorf("wire: bad server error frame: %w", derr)
			}
			return results, fmt.Errorf("wire: server error at index %d: %s (%s)", idx, msg, code)
		case TypeDone:
			jobs, derr := DecodeDone(payload)
			if derr != nil {
				return results, fmt.Errorf("wire: bad trailer: %w", derr)
			}
			if jobs != len(results) {
				return results, fmt.Errorf("wire: trailer reports %d jobs, got %d results", jobs, len(results))
			}
			// Drain to EOF so the transport returns the connection to
			// its idle pool instead of redialing the next stream.
			_, _ = io.Copy(io.Discard, resp.Body)
			return results, nil
		default:
			return results, fmt.Errorf("wire: unexpected frame type %#x in response", typ)
		}
	}
}

// jsonLine is the superset of every NDJSON response line: a result
// line carries status, an error envelope carries error/code without a
// status, and the trailer carries done/jobs.
type jsonLine struct {
	Index  int              `json:"index"`
	ID     uint64           `json:"id"`
	Status string           `json:"status"`
	Result *jobqueue.Result `json:"result"`
	Error  string           `json:"error"`
	Code   string           `json:"code"`
	Done   bool             `json:"done"`
	Jobs   int              `json:"jobs"`
}

// streamJSON speaks the NDJSON flavor: one spec line per job out, one
// result line per job plus a trailer back.
func (c *Client) streamJSON(specs []jobqueue.Spec) ([]Result, error) {
	body := GetBuf()
	defer PutBuf(body)
	bb := bytes.NewBuffer(body)
	enc := json.NewEncoder(bb)
	for i := range specs {
		if err := enc.Encode(&specs[i]); err != nil {
			return nil, fmt.Errorf("wire: encoding spec %d: %w", i, err)
		}
	}
	resp, err := c.post("application/x-ndjson", bb.Bytes())
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()

	results := make([]Result, 0, len(specs))
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64<<10), 1<<20)
	for sc.Scan() {
		if len(bytes.TrimSpace(sc.Bytes())) == 0 {
			continue
		}
		var line jsonLine
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			return results, fmt.Errorf("wire: bad response line: %w", err)
		}
		switch {
		case line.Done:
			if line.Jobs != len(results) {
				return results, fmt.Errorf("wire: trailer reports %d jobs, got %d results", line.Jobs, len(results))
			}
			// Drain to EOF so the transport returns the connection to
			// its idle pool instead of redialing the next stream.
			_, _ = io.Copy(io.Discard, resp.Body)
			return results, nil
		case line.Status != "":
			r := Result{Index: line.Index, ID: line.ID, Code: line.Code, Err: line.Error}
			if line.Status == jobqueue.StatusDone.String() {
				r.Done = true
				if line.Result != nil {
					r.Res = *line.Result
				}
			}
			results = append(results, r)
		default:
			return results, fmt.Errorf("wire: server error at index %d: %s (%s)", line.Index, line.Error, line.Code)
		}
	}
	if err := sc.Err(); err != nil {
		return results, fmt.Errorf("wire: reading response: %w", err)
	}
	return results, fmt.Errorf("wire: stream ended without a trailer")
}
