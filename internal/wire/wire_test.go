package wire

import (
	"bufio"
	"bytes"
	"context"
	"io"
	"strings"
	"testing"
	"time"

	"lopram/internal/core"
	"lopram/internal/jobqueue"
)

// testClasses is a three-class weighted set exercising class ids 0..2.
var testClasses = jobqueue.ClassSet{
	{Name: "gold", Weight: 4},
	{Name: "silver", Weight: 2},
	{Name: "bronze", Weight: 1},
}

// readOne frames the encoded bytes through ReadFrame, checking exactly
// one frame is present.
func readOne(t *testing.T, frame []byte) (byte, []byte) {
	t.Helper()
	br := NewReader(bytes.NewReader(frame))
	typ, payload, err := ReadFrame(br)
	if err != nil {
		t.Fatalf("ReadFrame: %v", err)
	}
	if _, _, err := ReadFrame(br); err != io.EOF {
		t.Fatalf("trailing frame: got err %v, want io.EOF", err)
	}
	return typ, payload
}

// TestSpecRoundTripCatalogue is the codec property test: every
// catalogue (algorithm, engine) pair, crossed with every class id
// (and no class) and with/without a deadline, must survive
// encode → decode exactly, and re-encoding the decoded spec must
// reproduce the original frame byte for byte.
func TestSpecRoundTripCatalogue(t *testing.T) {
	c := NewCodec(testClasses)
	classes := []jobqueue.Class{""}
	for _, cs := range testClasses {
		classes = append(classes, cs.Name)
	}
	for _, alg := range core.Algorithms() {
		for _, eng := range core.EnginesFor(alg) {
			for _, class := range classes {
				for _, deadline := range []time.Duration{0, 250 * time.Millisecond} {
					spec := jobqueue.Spec{
						Algorithm: alg,
						N:         1 << 10,
						P:         3,
						Engine:    eng,
						Seed:      0xdecafbad,
						Priority:  class,
						Timeout:   deadline,
					}
					frame, err := c.AppendSpec(nil, &spec)
					if err != nil {
						t.Fatalf("AppendSpec(%v): %v", spec, err)
					}
					typ, payload := readOne(t, frame)
					if typ != TypeSpec {
						t.Fatalf("frame type %#x, want spec", typ)
					}
					var got jobqueue.Spec
					if err := c.DecodeSpec(payload, &got); err != nil {
						t.Fatalf("DecodeSpec(%v): %v", spec, err)
					}
					if got != spec {
						t.Fatalf("round trip changed the spec:\n in  %+v\n out %+v", spec, got)
					}
					again, err := c.AppendSpec(nil, &got)
					if err != nil {
						t.Fatalf("re-encode: %v", err)
					}
					if !bytes.Equal(frame, again) {
						t.Fatalf("re-encode not byte-identical:\n in  %x\n out %x", frame, again)
					}
				}
			}
		}
	}
}

func TestHelloRoundTrip(t *testing.T) {
	typ, payload := readOne(t, AppendHello(nil, Version))
	if typ != TypeHello {
		t.Fatalf("type %#x, want hello", typ)
	}
	ver, err := DecodeHello(payload)
	if err != nil || ver != Version {
		t.Fatalf("DecodeHello = %d, %v; want %d, nil", ver, err, Version)
	}
}

func TestResultRoundTrip(t *testing.T) {
	c := NewCodec(nil)
	res := jobqueue.Result{
		Outcome: core.Outcome{Steps: 123, Work: -7, Threads: 5, Value: -99, Check: 0xfeedface},
		Wall:    42 * time.Millisecond,
		Cached:  true,
	}
	typ, payload := readOne(t, AppendResult(nil, 17, 901, res))
	if typ != TypeResult {
		t.Fatalf("type %#x, want result", typ)
	}
	var got Result
	if err := c.DecodeResult(payload, &got); err != nil {
		t.Fatalf("DecodeResult: %v", err)
	}
	want := Result{Index: 17, ID: 901, Done: true, Res: res}
	if got != want {
		t.Fatalf("result round trip:\n got  %+v\n want %+v", got, want)
	}

	typ, payload = readOne(t, AppendResultError(nil, 3, 0, "queue_full", "no room"))
	if typ != TypeResult {
		t.Fatalf("type %#x, want result", typ)
	}
	if err := c.DecodeResult(payload, &got); err != nil {
		t.Fatalf("DecodeResult(failed): %v", err)
	}
	want = Result{Index: 3, Done: false, Code: "queue_full", Err: "no room"}
	if got != want {
		t.Fatalf("failed result round trip:\n got  %+v\n want %+v", got, want)
	}
}

func TestErrorAndDoneRoundTrip(t *testing.T) {
	typ, payload := readOne(t, AppendError(nil, 9, "bad_request", "boom"))
	if typ != TypeError {
		t.Fatalf("type %#x, want error", typ)
	}
	idx, code, msg, err := DecodeError(payload)
	if err != nil || idx != 9 || code != "bad_request" || msg != "boom" {
		t.Fatalf("DecodeError = %d %q %q %v", idx, code, msg, err)
	}

	typ, payload = readOne(t, AppendDone(nil, 256))
	if typ != TypeDone {
		t.Fatalf("type %#x, want done", typ)
	}
	jobs, err := DecodeDone(payload)
	if err != nil || jobs != 256 {
		t.Fatalf("DecodeDone = %d, %v", jobs, err)
	}
}

// TestReadFrameRejects covers the framing guards: empty frames,
// oversized length prefixes, and input ending mid-frame.
func TestReadFrameRejects(t *testing.T) {
	cases := []struct {
		name string
		in   []byte
		want error
	}{
		{"empty frame", []byte{0x00}, ErrEmptyFrame},
		{"oversized length", append([]byte{0xff, 0xff, 0xff, 0x7f}, make([]byte, 16)...), ErrFrameTooLarge},
		{"truncated payload", []byte{0x05, TypeSpec, 0x01}, io.ErrUnexpectedEOF},
		{"truncated length", []byte{0x80}, io.ErrUnexpectedEOF},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			br := NewReader(bytes.NewReader(tc.in))
			_, _, err := ReadFrame(br)
			if err != tc.want {
				t.Fatalf("ReadFrame(%x) err = %v, want %v", tc.in, err, tc.want)
			}
		})
	}
}

// TestDecodeSpecRejects covers the decoder guards: out-of-range ids,
// unknown flag bits, truncation and trailing garbage.
func TestDecodeSpecRejects(t *testing.T) {
	c := NewCodec(testClasses)
	spec := jobqueue.Spec{Algorithm: "reduce", N: 8, P: 1, Engine: core.EnginePRAM, Seed: 1}
	frame, err := c.AppendSpec(nil, &spec)
	if err != nil {
		t.Fatal(err)
	}
	_, good := readOne(t, frame)

	mutate := func(f func(p []byte) []byte) error {
		p := f(append([]byte(nil), good...))
		var s jobqueue.Spec
		return c.DecodeSpec(p, &s)
	}
	if err := mutate(func(p []byte) []byte { p[0] = 200; return p }); err == nil ||
		!strings.Contains(err.Error(), "algorithm id") {
		t.Errorf("bad algorithm id: err = %v", err)
	}
	if err := mutate(func(p []byte) []byte { p[1] = 9; return p }); err == nil ||
		!strings.Contains(err.Error(), "engine id") {
		t.Errorf("bad engine id: err = %v", err)
	}
	if err := mutate(func(p []byte) []byte { p[len(p)-1] = 0xf0; return p }); err == nil ||
		!strings.Contains(err.Error(), "flag bits") {
		t.Errorf("bad flags: err = %v", err)
	}
	if err := mutate(func(p []byte) []byte { return p[:len(p)-2] }); err != ErrTruncated {
		t.Errorf("truncated: err = %v, want ErrTruncated", err)
	}
	if err := mutate(func(p []byte) []byte { return append(p, 0x00) }); err != ErrTrailingBytes {
		t.Errorf("trailing: err = %v, want ErrTrailingBytes", err)
	}

	// A class id beyond the codec's class set.
	spec.Priority = "bronze"
	frame, err = c.AppendSpec(nil, &spec)
	if err != nil {
		t.Fatal(err)
	}
	_, withClass := readOne(t, frame)
	p := append([]byte(nil), withClass...)
	p[len(p)-1] = 7 // class id field is last
	var s jobqueue.Spec
	if err := c.DecodeSpec(p, &s); err == nil || !strings.Contains(err.Error(), "class id") {
		t.Errorf("bad class id: err = %v", err)
	}
}

// TestAppendSpecRejects covers the encode-side name checks.
func TestAppendSpecRejects(t *testing.T) {
	c := NewCodec(nil)
	for _, spec := range []jobqueue.Spec{
		{Algorithm: "nope", Engine: core.EngineSim},
		{Algorithm: "reduce", Engine: "warp"},
		{Algorithm: "reduce", Engine: core.EngineSim, Priority: "gold"},
	} {
		b, err := c.AppendSpec(nil, &spec)
		if err == nil {
			t.Errorf("AppendSpec(%+v): want error", spec)
		}
		if len(b) != 0 {
			t.Errorf("AppendSpec(%+v): buffer grew on error", spec)
		}
	}
}

func TestDecodeHelloRejects(t *testing.T) {
	if _, err := DecodeHello([]byte{'X', 'W', 0x01}); err != ErrBadMagic {
		t.Errorf("bad magic: err = %v", err)
	}
	if _, err := DecodeHello([]byte{'L'}); err != ErrTruncated {
		t.Errorf("short hello: err = %v", err)
	}
}

func TestNewClientRejectsUnknownProto(t *testing.T) {
	if _, err := NewClient(nil, "http://x", "msgpack", nil); err == nil {
		t.Fatal("want error for unknown protocol")
	}
}

// TestDecodeSubmitZeroAllocs pins the tentpole's steady-state property:
// decoding a spec frame and submitting it through the pooled batch path
// allocates nothing per job once the arena and result cache are warm.
// The spec is primed into the result cache first, so the whole
// decode → SubmitSpec → Wait → Outcome → Release cycle is exercised
// without touching worker timing.
func TestDecodeSubmitZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counting is meaningless under -race")
	}
	q := jobqueue.New(jobqueue.Config{Workers: 1, QueueDepth: 64, CacheSize: 64})
	defer q.Close()

	spec := jobqueue.Spec{Algorithm: "reduce", N: 8, P: 1, Engine: core.EnginePRAM, Seed: 42}
	j, err := q.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}

	codec := NewCodec(q.Classes())
	frame, err := codec.AppendSpec(nil, &spec)
	if err != nil {
		t.Fatal(err)
	}
	br := NewReader(nil)
	ctx := context.Background()
	var decoded jobqueue.Spec
	cycle := func() {
		br.Reset(bytes.NewReader(frame))
		typ, payload, err := ReadFrame(br)
		if err != nil || typ != TypeSpec {
			t.Fatalf("ReadFrame = %#x, %v", typ, err)
		}
		if err := codec.DecodeSpec(payload, &decoded); err != nil {
			t.Fatal(err)
		}
		b := q.NewBatch()
		if err := b.SubmitSpec(&decoded); err != nil {
			t.Fatal(err)
		}
		if err := b.Wait(ctx); err != nil {
			t.Fatal(err)
		}
		res, err := b.Outcome(0)
		if err != nil || !res.Cached {
			t.Fatalf("Outcome = %+v, %v; want a cache hit", res, err)
		}
		b.Release()
	}
	cycle() // warm the frame and batch pools
	// bytes.NewReader escapes into br; hoist it out of the measured
	// loop the way a real ingest loop holds one reader per connection.
	rd := bytes.NewReader(frame)
	cycleWarm := func() {
		rd.Reset(frame)
		br.Reset(rd)
		typ, payload, err := ReadFrame(br)
		if err != nil || typ != TypeSpec {
			t.Fatalf("ReadFrame = %#x, %v", typ, err)
		}
		if err := codec.DecodeSpec(payload, &decoded); err != nil {
			t.Fatal(err)
		}
		b := q.NewBatch()
		if err := b.SubmitSpec(&decoded); err != nil {
			t.Fatal(err)
		}
		if err := b.Wait(ctx); err != nil {
			t.Fatal(err)
		}
		if _, err := b.Outcome(0); err != nil {
			t.Fatal(err)
		}
		b.Release()
	}
	cycleWarm()
	if allocs := testing.AllocsPerRun(200, cycleWarm); allocs != 0 {
		t.Fatalf("decode→submit cycle allocates %.1f per job, want 0", allocs)
	}
}

// TestEncodeResultZeroAllocs pins the server's result-side symmetry:
// appending result frames into a warm buffer allocates nothing.
func TestEncodeResultZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counting is meaningless under -race")
	}
	res := jobqueue.Result{
		Outcome: core.Outcome{Steps: 9, Work: 100, Value: -5, Check: 77},
		Wall:    time.Millisecond,
	}
	buf := make([]byte, 0, 4096)
	if allocs := testing.AllocsPerRun(200, func() {
		buf = buf[:0]
		for i := 0; i < 64; i++ {
			buf = AppendResult(buf, i, uint64(i+1), res)
		}
	}); allocs != 0 {
		t.Fatalf("AppendResult allocates %.1f per micro-batch, want 0", allocs)
	}
}

// TestReadFrameZeroCopy confirms the documented aliasing: the payload
// ReadFrame returns points into the bufio buffer, not a copy.
func TestReadFrameZeroCopy(t *testing.T) {
	frame := AppendDone(nil, 7)
	br := bufio.NewReaderSize(bytes.NewReader(frame), MaxFramePayload+16)
	if _, err := br.Peek(len(frame)); err != nil {
		t.Fatal(err)
	}
	inner, _ := br.Peek(len(frame))
	_, payload, err := ReadFrame(br)
	if err != nil {
		t.Fatal(err)
	}
	if &payload[0] != &inner[2] { // skip length prefix + type byte
		t.Fatal("payload does not alias the bufio buffer")
	}
}
