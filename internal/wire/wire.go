// Package wire implements the length-prefixed binary framing for the
// job stream: a versioned codec that carries job specs and results as
// compact frames instead of JSON lines. A frame is a uvarint payload
// length followed by the payload; the payload's first byte is the frame
// type and the rest is the type's fixed field sequence (uvarints,
// zigzag varints and length-prefixed strings — see docs/API.md for the
// byte-level layout). Algorithms, engines and priority classes travel
// as small integer ids resolved against the catalogue and the serving
// queue's class set by a Codec, so a spec frame is ~15 bytes and
// decoding one allocates nothing: every decoded string is interned.
//
// The package provides append-style encoders (AppendHello, AppendSpec,
// AppendResult, ...) that write into caller-supplied buffers — use
// GetBuf/PutBuf for pooled ones — and a zero-copy frame reader
// (ReadFrame) whose payloads alias the bufio buffer. Client is the
// caller side: it speaks the binary protocol or its NDJSON sibling
// over POST /v1/jobs:stream. JSON remains the default on the wire;
// the binary protocol is opt-in per connection via Content-Type.
package wire

import (
	"bufio"
	"encoding/binary"
	"errors"
	"io"
	"sync"
)

// Version is the protocol version this package speaks. A client opens
// its stream with a hello frame carrying the version; the server echoes
// its own hello when it accepts and answers with an error frame when it
// does not. Version changes renumber frame layouts, never silently
// reinterpret them.
const Version = 1

// ContentType is the MIME type that selects the binary protocol on
// POST /v1/jobs:stream. Requests without it get the NDJSON stream.
const ContentType = "application/x-lopram-frame"

// MaxFramePayload bounds a single frame's payload (type byte included).
// Every legitimate frame is tens of bytes; the bound exists so a
// corrupt or hostile length prefix cannot make the reader buffer
// unbounded input.
const MaxFramePayload = 1 << 16

// Frame types. The type byte is the first byte of every payload.
const (
	// TypeHello opens a stream in each direction: magic "LW" plus the
	// speaker's protocol version.
	TypeHello = 0x01
	// TypeSpec is one job spec (client → server).
	TypeSpec = 0x02
	// TypeResult is one settled job outcome (server → client).
	TypeResult = 0x03
	// TypeError is an in-band terminal error (server → client): the
	// stream ends after it, mirroring the NDJSON error line.
	TypeError = 0x04
	// TypeDone is the stream trailer (server → client): total jobs
	// settled, confirming the stream ended cleanly.
	TypeDone = 0x05
)

// Result status bytes inside a TypeResult payload.
const (
	statusDone   = 0
	statusFailed = 1
)

// helloMagic guards against a JSON body (or any other stray bytes)
// being misread as a binary stream: "LW" is not valid leading JSON.
var helloMagic = [2]byte{'L', 'W'}

// Framing errors. ReadFrame and the decoders return these (sometimes
// wrapped with detail); they are sentinels so the hot path never
// formats error strings.
var (
	// ErrFrameTooLarge reports a length prefix above MaxFramePayload.
	ErrFrameTooLarge = errors.New("wire: frame exceeds the payload bound")
	// ErrEmptyFrame reports a zero-length payload (no type byte).
	ErrEmptyFrame = errors.New("wire: empty frame")
	// ErrTruncated reports a payload shorter than its field sequence.
	ErrTruncated = errors.New("wire: truncated frame payload")
	// ErrTrailingBytes reports payload bytes after the last field —
	// a framing bug or version skew, never tolerated silently.
	ErrTrailingBytes = errors.New("wire: trailing bytes after the last field")
	// ErrBadMagic reports a hello frame that does not open with "LW".
	ErrBadMagic = errors.New("wire: bad hello magic")
	// ErrUnknownType reports a frame type byte the decoder has no
	// layout for.
	ErrUnknownType = errors.New("wire: unknown frame type")
)

// ReadFrame reads one frame and returns its type byte and payload. The
// payload aliases br's internal buffer: it is valid only until the next
// read on br, which is exactly the decode-then-advance discipline the
// ingest loop follows — nothing is copied per frame. br must have a
// buffer of at least MaxFramePayload bytes (NewReader sizes one). A
// clean end of input returns io.EOF; input ending mid-frame returns
// io.ErrUnexpectedEOF.
func ReadFrame(br *bufio.Reader) (typ byte, payload []byte, err error) {
	n, err := binary.ReadUvarint(br)
	if err != nil {
		if err == io.ErrUnexpectedEOF {
			return 0, nil, io.ErrUnexpectedEOF
		}
		return 0, nil, err
	}
	if n == 0 {
		return 0, nil, ErrEmptyFrame
	}
	if n > MaxFramePayload {
		return 0, nil, ErrFrameTooLarge
	}
	p, err := br.Peek(int(n))
	if err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return 0, nil, err
	}
	if _, err := br.Discard(int(n)); err != nil {
		return 0, nil, err
	}
	return p[0], p[1:], nil
}

// NewReader wraps r in a bufio.Reader sized for ReadFrame's zero-copy
// Peek: the buffer holds a maximal frame plus its length prefix.
func NewReader(r io.Reader) *bufio.Reader {
	return bufio.NewReaderSize(r, MaxFramePayload+binary.MaxVarintLen64)
}

// readerPool recycles the (large, MaxFramePayload-sized) bufio readers
// across stream requests.
var readerPool = sync.Pool{
	New: func() any { return NewReader(nil) },
}

// GetReader borrows a frame-sized bufio.Reader reset to r.
func GetReader(r io.Reader) *bufio.Reader {
	br := readerPool.Get().(*bufio.Reader)
	br.Reset(r)
	return br
}

// PutReader returns a reader borrowed with GetReader. The caller must
// not touch it (or any payload aliasing its buffer) afterwards.
func PutReader(br *bufio.Reader) {
	br.Reset(nil)
	readerPool.Put(br)
}

// bufPool recycles encode buffers. Stored as *[]byte so Put does not
// allocate a slice-header box per call.
var bufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 4096)
		return &b
	},
}

// GetBuf borrows an empty encode buffer from the shared pool. Both
// stream flavors flush through these: the binary path appends frames,
// the NDJSON path appends encoded lines.
func GetBuf() []byte {
	return (*bufPool.Get().(*[]byte))[:0]
}

// PutBuf returns a buffer borrowed with GetBuf. Buffers that grew past
// a megabyte are dropped instead, so one oversized response does not
// pin its high-water mark in the pool forever.
func PutBuf(b []byte) {
	if cap(b) == 0 || cap(b) > 1<<20 {
		return
	}
	b = b[:0]
	bufPool.Put(&b)
}

// finishFrame converts b[start:] — a payload appended in place — into a
// complete frame by inserting the uvarint length prefix at start. The
// payload shifts right by the prefix width (a memmove of tens of
// bytes); nothing allocates.
func finishFrame(b []byte, start int) []byte {
	payload := len(b) - start
	var pfx [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(pfx[:], uint64(payload))
	b = append(b, pfx[:n]...)
	copy(b[start+n:], b[start:start+payload])
	copy(b[start:], pfx[:n])
	return b
}

// appendString appends a length-prefixed string: uvarint byte count,
// then the bytes.
func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// reader is a payload cursor: sequential field reads with a single
// error check at each step. All reads are bounds-checked against the
// payload; none allocate.
type reader struct {
	b   []byte
	off int
}

func (r *reader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		return 0, ErrTruncated
	}
	r.off += n
	return v, nil
}

func (r *reader) varint() (int64, error) {
	v, n := binary.Varint(r.b[r.off:])
	if n <= 0 {
		return 0, ErrTruncated
	}
	r.off += n
	return v, nil
}

func (r *reader) byte() (byte, error) {
	if r.off >= len(r.b) {
		return 0, ErrTruncated
	}
	c := r.b[r.off]
	r.off++
	return c, nil
}

// str reads a length-prefixed string. It copies (strings are immutable;
// the payload buffer is not) — callers on the zero-alloc path never
// carry string fields.
func (r *reader) str() (string, error) {
	n, err := r.uvarint()
	if err != nil {
		return "", err
	}
	if n > uint64(len(r.b)-r.off) {
		return "", ErrTruncated
	}
	s := string(r.b[r.off : r.off+int(n)])
	r.off += int(n)
	return s, nil
}

// done checks that the cursor consumed the payload exactly.
func (r *reader) done() error {
	if r.off != len(r.b) {
		return ErrTrailingBytes
	}
	return nil
}

// AppendHello appends a hello frame for the given protocol version.
func AppendHello(b []byte, version uint64) []byte {
	start := len(b)
	b = append(b, TypeHello, helloMagic[0], helloMagic[1])
	b = binary.AppendUvarint(b, version)
	return finishFrame(b, start)
}

// DecodeHello parses a hello payload and returns the peer's version.
func DecodeHello(payload []byte) (uint64, error) {
	r := reader{b: payload}
	m0, err := r.byte()
	if err != nil {
		return 0, err
	}
	m1, err := r.byte()
	if err != nil {
		return 0, err
	}
	if m0 != helloMagic[0] || m1 != helloMagic[1] {
		return 0, ErrBadMagic
	}
	v, err := r.uvarint()
	if err != nil {
		return 0, err
	}
	return v, r.done()
}

// AppendError appends an in-band error frame: the index of the spec
// that triggered it (the count of specs accepted before it, mirroring
// the NDJSON error line's index), a machine-readable code and a
// human-readable message.
func AppendError(b []byte, index int, code, msg string) []byte {
	start := len(b)
	b = append(b, TypeError)
	b = binary.AppendUvarint(b, uint64(index))
	b = appendString(b, code)
	b = appendString(b, msg)
	return finishFrame(b, start)
}

// DecodeError parses an error payload.
func DecodeError(payload []byte) (index int, code, msg string, err error) {
	r := reader{b: payload}
	idx, err := r.uvarint()
	if err != nil {
		return 0, "", "", err
	}
	if code, err = r.str(); err != nil {
		return 0, "", "", err
	}
	if msg, err = r.str(); err != nil {
		return 0, "", "", err
	}
	return int(idx), code, msg, r.done()
}

// AppendDone appends the stream trailer with the settled job count.
func AppendDone(b []byte, jobs int) []byte {
	start := len(b)
	b = append(b, TypeDone)
	b = binary.AppendUvarint(b, uint64(jobs))
	return finishFrame(b, start)
}

// DecodeDone parses a trailer payload and returns the job count.
func DecodeDone(payload []byte) (int, error) {
	r := reader{b: payload}
	jobs, err := r.uvarint()
	if err != nil {
		return 0, err
	}
	return int(jobs), r.done()
}
