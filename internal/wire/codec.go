package wire

import (
	"encoding/binary"
	"fmt"
	"time"

	"lopram/internal/core"
	"lopram/internal/jobqueue"
)

// Spec frame flag bits.
const (
	specHasClass    = 1 << 0 // a class id field follows the fixed fields
	specHasDeadline = 1 << 1 // a deadline field follows the class id
)

// Result frame flag bits.
const (
	resultCached = 1 << 0 // the outcome was served from the result cache
)

// Engine ids are protocol constants (not derived from catalogue order),
// so old captures stay decodable if the engine set grows.
const (
	engineSim   = 0
	enginePalrt = 1
	enginePRAM  = 2
)

// engineID maps an engine name to its wire id.
func engineID(e core.Engine) (byte, bool) {
	switch e {
	case core.EngineSim:
		return engineSim, true
	case core.EnginePalrt:
		return enginePalrt, true
	case core.EnginePRAM:
		return enginePRAM, true
	}
	return 0, false
}

// engineByID maps a wire id back to the interned engine constant.
func engineByID(id byte) (core.Engine, bool) {
	switch id {
	case engineSim:
		return core.EngineSim, true
	case enginePalrt:
		return core.EnginePalrt, true
	case enginePRAM:
		return core.EnginePRAM, true
	}
	return "", false
}

// Codec translates between wire ids and the catalogue's names. The
// algorithm table is the sorted catalogue (core.Algorithms()), shared
// by every codec; the class table is the serving queue's class set in
// set order — the same order /v1/classes reports — so both sides of a
// connection agree on ids by construction. Decoded specs carry the
// codec's interned strings: decoding a spec frame allocates nothing.
//
// A Codec is immutable after NewCodec and safe for concurrent use.
type Codec struct {
	algs    []string
	algID   map[string]uint64
	classes []jobqueue.Class
	classID map[jobqueue.Class]uint64
}

// NewCodec builds a codec over the algorithm catalogue and the given
// class set (the serving queue's — pass q.Classes() server-side, the
// scenario's configured set client-side; nil means specs never carry a
// class id and decode rejects any).
func NewCodec(classes jobqueue.ClassSet) *Codec {
	c := &Codec{
		algs:    core.Algorithms(),
		classID: make(map[jobqueue.Class]uint64, len(classes)),
	}
	c.algID = make(map[string]uint64, len(c.algs))
	for i, name := range c.algs {
		c.algID[name] = uint64(i)
	}
	for i, cs := range classes {
		c.classes = append(c.classes, cs.Name)
		c.classID[cs.Name] = uint64(i)
	}
	return c
}

// AppendSpec appends a spec frame. The spec's algorithm (and class, if
// set) must exist in the codec's tables; the error reports which name
// is missing and b is returned ungrown. Zero P, Priority and Timeout
// are defaults and travel as absent fields, so a spec round-trips
// byte-identically: encode(decode(f)) == f and decode(encode(s)) == s.
func (c *Codec) AppendSpec(b []byte, s *jobqueue.Spec) ([]byte, error) {
	algID, ok := c.algID[s.Algorithm]
	if !ok {
		return b, fmt.Errorf("wire: algorithm %q is not in the catalogue", s.Algorithm)
	}
	engID, ok := engineID(s.Engine)
	if !ok {
		return b, fmt.Errorf("wire: unknown engine %q", s.Engine)
	}
	var flags byte
	var classID uint64
	if s.Priority != "" {
		classID, ok = c.classID[s.Priority]
		if !ok {
			return b, fmt.Errorf("wire: class %q is not in the codec's class set", s.Priority)
		}
		flags |= specHasClass
	}
	if s.Timeout != 0 {
		flags |= specHasDeadline
	}
	start := len(b)
	b = append(b, TypeSpec)
	b = binary.AppendUvarint(b, algID)
	b = append(b, engID)
	b = binary.AppendUvarint(b, uint64(s.N))
	b = binary.AppendUvarint(b, uint64(s.P))
	b = binary.AppendUvarint(b, s.Seed)
	b = append(b, flags)
	if flags&specHasClass != 0 {
		b = binary.AppendUvarint(b, classID)
	}
	if flags&specHasDeadline != 0 {
		b = binary.AppendUvarint(b, uint64(s.Timeout))
	}
	return finishFrame(b, start), nil
}

// DecodeSpec parses a spec payload into *s, overwriting every field.
// All strings are interned (codec tables, engine constants): the call
// allocates nothing, so the ingest loop can decode into one reused
// Spec per stream. Unknown ids, unknown flag bits and trailing bytes
// are errors — the strictness is what makes version skew loud.
func (c *Codec) DecodeSpec(payload []byte, s *jobqueue.Spec) error {
	r := reader{b: payload}
	algID, err := r.uvarint()
	if err != nil {
		return err
	}
	if algID >= uint64(len(c.algs)) {
		return fmt.Errorf("wire: algorithm id %d out of range (catalogue has %d)", algID, len(c.algs))
	}
	engID, err := r.byte()
	if err != nil {
		return err
	}
	engine, ok := engineByID(engID)
	if !ok {
		return fmt.Errorf("wire: unknown engine id %d", engID)
	}
	n, err := r.uvarint()
	if err != nil {
		return err
	}
	p, err := r.uvarint()
	if err != nil {
		return err
	}
	seed, err := r.uvarint()
	if err != nil {
		return err
	}
	flags, err := r.byte()
	if err != nil {
		return err
	}
	if flags&^(specHasClass|specHasDeadline) != 0 {
		return fmt.Errorf("wire: unknown spec flag bits %#x", flags)
	}
	*s = jobqueue.Spec{
		Algorithm: c.algs[algID],
		N:         int(n),
		P:         int(p),
		Engine:    engine,
		Seed:      seed,
	}
	if flags&specHasClass != 0 {
		classID, err := r.uvarint()
		if err != nil {
			return err
		}
		if classID >= uint64(len(c.classes)) {
			return fmt.Errorf("wire: class id %d out of range (class set has %d)", classID, len(c.classes))
		}
		s.Priority = c.classes[classID]
	}
	if flags&specHasDeadline != 0 {
		d, err := r.uvarint()
		if err != nil {
			return err
		}
		s.Timeout = time.Duration(d)
	}
	return r.done()
}

// AppendResult appends a settled-job result frame: slot index, queue
// id, and the outcome's scalar fields (value, check, steps, work,
// threads, wall time, cached bit). The palrt scheduler breakdown
// (Outcome.Sched) does not travel — it is diagnostic detail the JSON
// protocol carries for humans; binary clients wanting it can re-query
// /v1/jobs. res is taken by value so the batch's outcome never escapes
// to the heap on this path.
func AppendResult(b []byte, index int, id uint64, res jobqueue.Result) []byte {
	start := len(b)
	b = append(b, TypeResult)
	b = binary.AppendUvarint(b, uint64(index))
	b = binary.AppendUvarint(b, id)
	b = append(b, statusDone)
	var flags byte
	if res.Cached {
		flags |= resultCached
	}
	b = append(b, flags)
	b = binary.AppendVarint(b, res.Value)
	b = binary.AppendUvarint(b, res.Check)
	b = binary.AppendVarint(b, res.Steps)
	b = binary.AppendVarint(b, res.Work)
	b = binary.AppendUvarint(b, uint64(res.Threads))
	b = binary.AppendUvarint(b, uint64(res.Wall))
	return finishFrame(b, start)
}

// AppendResultError appends a failed-job result frame: slot index,
// queue id (0 if the job was refused before ingest), the error code
// from the HTTP error taxonomy and the error message.
func AppendResultError(b []byte, index int, id uint64, code, msg string) []byte {
	start := len(b)
	b = append(b, TypeResult)
	b = binary.AppendUvarint(b, uint64(index))
	b = binary.AppendUvarint(b, id)
	b = append(b, statusFailed)
	b = appendString(b, code)
	b = appendString(b, msg)
	return finishFrame(b, start)
}

// Result is a decoded result frame: one settled job as the client sees
// it. Done distinguishes the two layouts — outcome fields for settled
// successes, code/message for failures.
type Result struct {
	// Index is the job's slot in submission order.
	Index int
	// ID is the queue-assigned job id (0 for jobs refused at ingest).
	ID uint64
	// Done reports success; Res is valid only when it is true.
	Done bool
	// Res is the job's outcome (success only).
	Res jobqueue.Result
	// Code is the machine-readable error code (failure only).
	Code string
	// Err is the human-readable error message (failure only).
	Err string
}

// DecodeResult parses a result payload into *r, overwriting every
// field. Failed results carry strings and therefore allocate; the
// success path does not.
func (c *Codec) DecodeResult(payload []byte, out *Result) error {
	r := reader{b: payload}
	idx, err := r.uvarint()
	if err != nil {
		return err
	}
	id, err := r.uvarint()
	if err != nil {
		return err
	}
	status, err := r.byte()
	if err != nil {
		return err
	}
	*out = Result{Index: int(idx), ID: id}
	switch status {
	case statusDone:
		out.Done = true
		flags, err := r.byte()
		if err != nil {
			return err
		}
		if flags&^resultCached != 0 {
			return fmt.Errorf("wire: unknown result flag bits %#x", flags)
		}
		out.Res.Cached = flags&resultCached != 0
		if out.Res.Value, err = r.varint(); err != nil {
			return err
		}
		if out.Res.Check, err = r.uvarint(); err != nil {
			return err
		}
		if out.Res.Steps, err = r.varint(); err != nil {
			return err
		}
		if out.Res.Work, err = r.varint(); err != nil {
			return err
		}
		threads, err := r.uvarint()
		if err != nil {
			return err
		}
		out.Res.Threads = int(threads)
		wall, err := r.uvarint()
		if err != nil {
			return err
		}
		out.Res.Wall = time.Duration(wall)
	case statusFailed:
		if out.Code, err = r.str(); err != nil {
			return err
		}
		if out.Err, err = r.str(); err != nil {
			return err
		}
	default:
		return fmt.Errorf("wire: unknown result status %d", status)
	}
	return r.done()
}
