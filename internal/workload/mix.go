package workload

// This file provides the mix-synthesis primitives the job-dispatch layer
// uses to turn "run a mixed workload" into a concrete deterministic stream
// of job parameters: weighted categorical choice (which algorithm/engine)
// and log-uniform sizing (input sizes spread evenly across orders of
// magnitude, the shape real request traffic has).

// Choice returns an index in [0, len(weights)) with probability
// proportional to weights[i]. Zero-weight entries are never chosen. It
// panics if weights is empty or the total weight is not positive.
func Choice(r *RNG, weights []int) int {
	total := 0
	for _, w := range weights {
		if w < 0 {
			panic("workload: negative weight in Choice")
		}
		total += w
	}
	if total <= 0 {
		panic("workload: Choice requires positive total weight")
	}
	x := r.Intn(total)
	for i, w := range weights {
		if x < w {
			return i
		}
		x -= w
	}
	// Unreachable: x < total = Σw guarantees the loop returns.
	return len(weights) - 1
}

// LogUniform returns an integer in [lo, hi] whose logarithm is uniformly
// distributed: sizes 10 and 1000 are equally likely to be the magnitude,
// which is how request sizes spread in practice. It panics if lo < 1 or
// lo > hi.
func LogUniform(r *RNG, lo, hi int) int {
	if lo < 1 || lo > hi {
		panic("workload: invalid LogUniform bounds")
	}
	if lo == hi {
		return lo
	}
	// Pick a bit length uniformly, then a value uniformly within the
	// intersection of that bit length's range and [lo, hi]. Integer-only
	// (no math.Log) so the stream is bit-for-bit reproducible across
	// architectures.
	loBits, hiBits := bitLen(lo), bitLen(hi)
	for {
		b := loBits + r.Intn(hiBits-loBits+1)
		blo, bhi := 1<<(b-1), 1<<b-1
		if blo < lo {
			blo = lo
		}
		if bhi > hi {
			bhi = hi
		}
		if blo > bhi {
			continue
		}
		return blo + r.Intn(bhi-blo+1)
	}
}

func bitLen(x int) int {
	n := 0
	for x > 0 {
		x >>= 1
		n++
	}
	return n
}
