package workload

import "testing"

// TestGeneratorDeterminism: every generator must produce an identical
// stream from an identical seed — the property the job layer's result
// cache keys on.
func TestGeneratorDeterminism(t *testing.T) {
	type draw func(r *RNG) any
	draws := map[string]draw{
		"Ints":           func(r *RNG) any { out := Ints(r, 50, 1000); return [2]int{out[0], out[49]} },
		"Int64s":         func(r *RNG) any { out := Int64s(r, 50); return out[49] },
		"Floats":         func(r *RNG) any { out := Floats(r, 50); return out[49] },
		"NearlySorted":   func(r *RNG) any { out := NearlySorted(r, 50, 10); return [2]int{out[0], out[49]} },
		"String":         func(r *RNG) any { return String(r, 64, 8) },
		"RelatedStrings": func(r *RNG) any { a, b := RelatedStrings(r, 64, 4, 8); return a + "|" + b },
		"ChainDims":      func(r *RNG) any { out := ChainDims(r, 10, 2, 30); return [2]int{out[0], out[10]} },
		"Points":         func(r *RNG) any { return Points(r, 20)[19] },
		"Weights":        func(r *RNG) any { w, v := Weights(r, 20, 9, 99); return [2]int{w[19], v[19]} },
		"Choice":         func(r *RNG) any { return Choice(r, []int{1, 2, 3, 4}) },
		"LogUniform":     func(r *RNG) any { return LogUniform(r, 4, 4096) },
	}
	for name, d := range draws {
		if a, b := d(NewRNG(77)), d(NewRNG(77)); a != b {
			t.Errorf("%s: same seed, different draws: %v vs %v", name, a, b)
		}
		if a, b := d(NewRNG(77)), d(NewRNG(78)); a == b {
			t.Logf("%s: adjacent seeds coincided (possible, but suspicious): %v", name, a)
		}
	}
}

func TestChoiceDistribution(t *testing.T) {
	r := NewRNG(5)
	counts := make([]int, 3)
	weights := []int{1, 0, 3}
	for i := 0; i < 4000; i++ {
		counts[Choice(r, weights)]++
	}
	if counts[1] != 0 {
		t.Fatalf("zero-weight entry chosen %d times", counts[1])
	}
	// E[counts[2]] = 3000; a 3:1 ratio should be unmistakable.
	if counts[2] < 2*counts[0] {
		t.Fatalf("weights ignored: %v", counts)
	}
}

func TestChoicePanics(t *testing.T) {
	for _, weights := range [][]int{nil, {0, 0}, {-1, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Choice(%v) did not panic", weights)
				}
			}()
			Choice(NewRNG(1), weights)
		}()
	}
}

func TestLogUniformBounds(t *testing.T) {
	r := NewRNG(9)
	lowMag, highMag := 0, 0
	for i := 0; i < 2000; i++ {
		v := LogUniform(r, 16, 1<<16)
		if v < 16 || v > 1<<16 {
			t.Fatalf("value %d out of [16, %d]", v, 1<<16)
		}
		if v < 256 {
			lowMag++
		}
		if v >= 1<<12 {
			highMag++
		}
	}
	// Log-uniform: the bottom four octaves and the top four octaves each
	// get ≈ a third of the mass; a uniform distribution would put < 1%
	// below 256.
	if lowMag < 200 || highMag < 200 {
		t.Fatalf("distribution not log-spread: %d below 256, %d above 4096", lowMag, highMag)
	}
	if v := LogUniform(r, 7, 7); v != 7 {
		t.Fatalf("degenerate range returned %d", v)
	}
}

func TestLogUniformPanics(t *testing.T) {
	for _, bounds := range [][2]int{{0, 5}, {10, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("LogUniform%v did not panic", bounds)
				}
			}()
			LogUniform(NewRNG(1), bounds[0], bounds[1])
		}()
	}
}
