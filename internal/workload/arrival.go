package workload

import (
	"math"
	"time"
)

// ExpSpacing returns one exponentially distributed inter-arrival gap for
// an open-loop Poisson arrival process with the given mean rate (events
// per second): the time to wait before the next arrival. Drawing every
// gap from the same RNG stream makes a whole arrival schedule
// reproducible from one seed. It panics if ratePerSec is not positive.
func ExpSpacing(r *RNG, ratePerSec float64) time.Duration {
	if ratePerSec <= 0 {
		panic("workload: ExpSpacing requires a positive rate")
	}
	// Inverse-CDF sampling; 1-Float64() keeps the argument of Log away
	// from zero (Float64 is in [0,1)).
	gap := -math.Log(1-r.Float64()) / ratePerSec
	return time.Duration(gap * float64(time.Second))
}

// RampRate is the instantaneous arrival rate at elapsed time t of a
// linear ramp from startPerSec to endPerSec over duration; past the
// ramp the rate holds at endPerSec. Feeding it into ExpSpacing gap by
// gap (rate held constant across each gap) yields a reproducible
// piecewise approximation of a non-homogeneous Poisson ramp — the
// traffic surge (or drain, when startPerSec > endPerSec) shape. It
// panics unless both rates are positive and duration is positive.
func RampRate(t, duration time.Duration, startPerSec, endPerSec float64) float64 {
	if startPerSec <= 0 || endPerSec <= 0 {
		panic("workload: RampRate requires positive rates")
	}
	if duration <= 0 {
		panic("workload: RampRate requires a positive duration")
	}
	if t >= duration {
		return endPerSec
	}
	frac := float64(t) / float64(duration)
	if frac < 0 {
		frac = 0
	}
	return startPerSec + (endPerSec-startPerSec)*frac
}

// DiurnalRate is the instantaneous arrival rate at elapsed time t of a
// sinusoidal day/night cycle: basePerSec scaled by
// 1 + amplitude·sin(2πt/period), so the rate peaks at base·(1+amplitude)
// and troughs at base·(1−amplitude) once per period. amplitude must be
// in [0, 1) so the rate stays positive. It panics on a non-positive
// base or period or an out-of-range amplitude.
func DiurnalRate(t, period time.Duration, basePerSec, amplitude float64) float64 {
	if basePerSec <= 0 {
		panic("workload: DiurnalRate requires a positive base rate")
	}
	if period <= 0 {
		panic("workload: DiurnalRate requires a positive period")
	}
	if amplitude < 0 || amplitude >= 1 {
		panic("workload: DiurnalRate amplitude outside [0, 1)")
	}
	phase := 2 * math.Pi * float64(t) / float64(period)
	return basePerSec * (1 + amplitude*math.Sin(phase))
}
