package workload

import (
	"math"
	"time"
)

// ExpSpacing returns one exponentially distributed inter-arrival gap for
// an open-loop Poisson arrival process with the given mean rate (events
// per second): the time to wait before the next arrival. Drawing every
// gap from the same RNG stream makes a whole arrival schedule
// reproducible from one seed. It panics if ratePerSec is not positive.
func ExpSpacing(r *RNG, ratePerSec float64) time.Duration {
	if ratePerSec <= 0 {
		panic("workload: ExpSpacing requires a positive rate")
	}
	// Inverse-CDF sampling; 1-Float64() keeps the argument of Log away
	// from zero (Float64 is in [0,1)).
	gap := -math.Log(1-r.Float64()) / ratePerSec
	return time.Duration(gap * float64(time.Second))
}
