package workload

import (
	"math"
	"testing"
	"time"
)

func TestExpSpacingMeanAndDeterminism(t *testing.T) {
	r := NewRNG(7)
	const rate = 1000.0
	var total time.Duration
	const n = 20000
	for i := 0; i < n; i++ {
		g := ExpSpacing(r, rate)
		if g < 0 {
			t.Fatalf("negative gap %v", g)
		}
		total += g
	}
	mean := total.Seconds() / n
	if math.Abs(mean-1/rate) > 0.1/rate {
		t.Errorf("mean gap %v, want ~%v", mean, 1/rate)
	}
	a, b := NewRNG(7), NewRNG(7)
	for i := 0; i < 100; i++ {
		if ExpSpacing(a, rate) != ExpSpacing(b, rate) {
			t.Fatal("same seed produced different gap streams")
		}
	}
}

func TestRampRate(t *testing.T) {
	d := time.Second
	if got := RampRate(0, d, 100, 900); got != 100 {
		t.Errorf("rate at t=0 is %v, want 100", got)
	}
	if got := RampRate(d/2, d, 100, 900); math.Abs(got-500) > 1e-9 {
		t.Errorf("rate at midpoint is %v, want 500", got)
	}
	for _, tt := range []time.Duration{d, 2 * d} {
		if got := RampRate(tt, d, 100, 900); got != 900 {
			t.Errorf("rate at t=%v is %v, want to hold at 900", tt, got)
		}
	}
	// A ramp down interpolates the same way.
	if got := RampRate(d/4, d, 800, 400); math.Abs(got-700) > 1e-9 {
		t.Errorf("ramp-down rate at t/4 is %v, want 700", got)
	}
	for _, f := range []func(){
		func() { RampRate(0, d, 0, 900) },
		func() { RampRate(0, d, 100, -1) },
		func() { RampRate(0, 0, 100, 900) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid RampRate arguments did not panic")
				}
			}()
			f()
		}()
	}
}

func TestDiurnalRate(t *testing.T) {
	p := time.Second
	if got := DiurnalRate(0, p, 500, 0.8); math.Abs(got-500) > 1e-9 {
		t.Errorf("rate at phase 0 is %v, want the base 500", got)
	}
	if got := DiurnalRate(p/4, p, 500, 0.8); math.Abs(got-900) > 1e-6 {
		t.Errorf("peak rate is %v, want 900", got)
	}
	if got := DiurnalRate(3*p/4, p, 500, 0.8); math.Abs(got-100) > 1e-6 {
		t.Errorf("trough rate is %v, want 100", got)
	}
	// The rate never goes non-positive for amplitude < 1.
	for i := 0; i < 100; i++ {
		if got := DiurnalRate(time.Duration(i)*p/100, p, 500, 0.99); got <= 0 {
			t.Fatalf("rate %v at step %d, want > 0", got, i)
		}
	}
	for _, f := range []func(){
		func() { DiurnalRate(0, p, 0, 0.5) },
		func() { DiurnalRate(0, 0, 500, 0.5) },
		func() { DiurnalRate(0, p, 500, 1) },
		func() { DiurnalRate(0, p, 500, -0.1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid DiurnalRate arguments did not panic")
				}
			}()
			f()
		}()
	}
}
