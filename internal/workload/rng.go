package workload

import "math/bits"

// RNG is a splitmix64 pseudo-random number generator. The zero value is a
// valid generator seeded with 0; use NewRNG to seed explicitly. splitmix64
// passes BigCrush and is the generator used to seed xoshiro in reference
// implementations, which is more than adequate for workload synthesis.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed. Two generators with the same
// seed produce identical streams.
func NewRNG(seed uint64) *RNG {
	return &RNG{state: seed}
}

// Uint64 returns the next value of the stream.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Int63 returns a non-negative int64.
func (r *RNG) Int63() int64 {
	return int64(r.Uint64() >> 1)
}

// Intn returns an int uniformly distributed in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("workload: Intn called with non-positive n")
	}
	// Lemire's multiply-shift rejection method avoids modulo bias.
	bound := uint64(n)
	threshold := (-bound) % bound
	for {
		hi, lo := bits.Mul64(r.Uint64(), bound)
		if lo >= threshold {
			return int(hi)
		}
	}
}

// Float64 returns a float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Perm returns a pseudo-random permutation of [0, n) using Fisher–Yates.
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}
