package workload

// Ints returns n pseudo-random ints in [0, bound) drawn from the stream.
func Ints(r *RNG, n, bound int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = r.Intn(bound)
	}
	return out
}

// Int64s returns n pseudo-random non-negative int64 values.
func Int64s(r *RNG, n int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = r.Int63()
	}
	return out
}

// Floats returns n pseudo-random float64 values in [0, 1).
func Floats(r *RNG, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = r.Float64()
	}
	return out
}

// NearlySorted returns a sorted slice of length n with swaps random adjacent
// transpositions applied, modelling the almost-sorted inputs that adaptive
// sorts care about.
func NearlySorted(r *RNG, n, swaps int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	for s := 0; s < swaps; s++ {
		if n < 2 {
			break
		}
		i := r.Intn(n - 1)
		out[i], out[i+1] = out[i+1], out[i]
	}
	return out
}

// Reversed returns n, n-1, ..., 1 — the adversarial input for naive
// quicksort pivoting.
func Reversed(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = n - i
	}
	return out
}

// String returns a pseudo-random string of length n over the first k letters
// of the lowercase alphabet. k is clamped to [1, 26].
func String(r *RNG, n, k int) string {
	if k < 1 {
		k = 1
	}
	if k > 26 {
		k = 26
	}
	b := make([]byte, n)
	for i := range b {
		b[i] = byte('a' + r.Intn(k))
	}
	return string(b)
}

// RelatedStrings returns two strings of length n over a k-letter alphabet
// where the second is derived from the first by applying edits random
// single-character substitutions, insertions and deletions. This produces
// string pairs with a controlled edit distance upper bound, exercising the
// interesting regime of the edit-distance DP.
func RelatedStrings(r *RNG, n, k, edits int) (string, string) {
	a := []byte(String(r, n, k))
	b := append([]byte(nil), a...)
	for e := 0; e < edits && len(b) > 0; e++ {
		switch r.Intn(3) {
		case 0: // substitute
			i := r.Intn(len(b))
			b[i] = byte('a' + r.Intn(max(k, 1)))
		case 1: // delete
			i := r.Intn(len(b))
			b = append(b[:i], b[i+1:]...)
		default: // insert
			i := r.Intn(len(b) + 1)
			b = append(b[:i], append([]byte{byte('a' + r.Intn(max(k, 1)))}, b[i:]...)...)
		}
	}
	return string(a), string(b)
}

// Matrix returns an n×n matrix of float64 in [0, 1) in row-major order.
func Matrix(r *RNG, n int) []float64 {
	return Floats(r, n*n)
}

// ChainDims returns n+1 matrix dimensions in [lo, hi] for an n-matrix chain
// multiplication instance. It panics if lo > hi or n < 1.
func ChainDims(r *RNG, n, lo, hi int) []int {
	if lo > hi || n < 1 {
		panic("workload: invalid ChainDims parameters")
	}
	dims := make([]int, n+1)
	for i := range dims {
		dims[i] = lo + r.Intn(hi-lo+1)
	}
	return dims
}

// Points returns n pseudo-random points in the unit square.
func Points(r *RNG, n int) []Point {
	pts := make([]Point, n)
	for i := range pts {
		pts[i] = Point{X: r.Float64(), Y: r.Float64()}
	}
	return pts
}

// Point is a point in the plane, used by the closest-pair workloads.
type Point struct {
	X, Y float64
}

// Weights returns n item weights in [1, maxW] and values in [1, maxV] for
// knapsack instances.
func Weights(r *RNG, n, maxW, maxV int) (weights, values []int) {
	weights = make([]int, n)
	values = make([]int, n)
	for i := range weights {
		weights[i] = 1 + r.Intn(maxW)
		values[i] = 1 + r.Intn(maxV)
	}
	return weights, values
}

// BSTFrequencies returns n access probabilities summing (approximately) to 1
// for optimal-BST instances, plus the raw positive weights used to derive
// them. Using integer weights keeps the DP exact.
func BSTFrequencies(r *RNG, n, maxW int) []int {
	w := make([]int, n)
	for i := range w {
		w[i] = 1 + r.Intn(maxW)
	}
	return w
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
