// Package workload synthesizes deterministic traffic: every input an
// experiment, benchmark, test or load scenario consumes is derived from
// an explicit splitmix64 stream (RNG), so each run is reproducible
// bit-for-bit across runs and machines without importing math/rand.
//
// Three layers build on the stream:
//
//   - Input generators (Ints, Floats, String, RelatedStrings, Points,
//     Matrix, ChainDims, Weights, …) produce the concrete problem
//     instances the algorithm catalogue runs on.
//   - Mix primitives (Choice, LogUniform) turn "a mixed workload" into a
//     concrete deterministic stream of job parameters: weighted
//     categorical choice for which algorithm/engine, log-uniform sizing
//     for how big — the shape real request traffic has.
//   - Arrival primitives (ExpSpacing, with RampRate and DiurnalRate
//     shaping the instantaneous rate) schedule when jobs arrive, giving
//     internal/scenario its reproducible open-loop Poisson streams and
//     their ramping and day/night-cycle variants.
package workload
