package workload

import (
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at %d", i)
		}
	}
}

func TestRNGSeedSensitivity(t *testing.T) {
	a, b := NewRNG(1), NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical values", same)
	}
}

func TestIntnRange(t *testing.T) {
	r := NewRNG(7)
	err := quick.Check(func(nRaw uint16) bool {
		n := int(nRaw%1000) + 1
		v := r.Intn(n)
		return v >= 0 && v < n
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	// Coarse uniformity: 10 buckets over 100k draws should each hold
	// close to 10%.
	r := NewRNG(99)
	const draws = 100000
	var buckets [10]int
	for i := 0; i < draws; i++ {
		buckets[r.Intn(10)]++
	}
	for b, c := range buckets {
		if c < draws/10-draws/100 || c > draws/10+draws/100 {
			t.Errorf("bucket %d: %d draws, expected ~%d", b, c, draws/10)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", f)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRNG(5)
	err := quick.Check(func(nRaw uint8) bool {
		n := int(nRaw % 64)
		p := r.Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestIntnCoversFullRange(t *testing.T) {
	// Every value of a small range must eventually appear.
	r := NewRNG(31)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		seen[r.Intn(7)] = true
	}
	for v := 0; v < 7; v++ {
		if !seen[v] {
			t.Errorf("value %d never drawn", v)
		}
	}
}

func TestNearlySorted(t *testing.T) {
	r := NewRNG(11)
	a := NearlySorted(r, 100, 5)
	inversions := 0
	for i := 1; i < len(a); i++ {
		if a[i-1] > a[i] {
			inversions++
		}
	}
	if inversions > 5 {
		t.Fatalf("%d inversions after 5 swaps", inversions)
	}
	// All values present exactly once.
	seen := make([]bool, 100)
	for _, v := range a {
		if seen[v] {
			t.Fatalf("duplicate %d", v)
		}
		seen[v] = true
	}
}

func TestReversed(t *testing.T) {
	a := Reversed(5)
	want := []int{5, 4, 3, 2, 1}
	for i := range want {
		if a[i] != want[i] {
			t.Fatalf("Reversed(5) = %v", a)
		}
	}
}

func TestStringAlphabet(t *testing.T) {
	r := NewRNG(13)
	s := String(r, 1000, 4)
	for _, c := range s {
		if c < 'a' || c > 'd' {
			t.Fatalf("character %q outside 4-letter alphabet", c)
		}
	}
	if len(s) != 1000 {
		t.Fatalf("len = %d", len(s))
	}
}

func TestRelatedStringsEditBound(t *testing.T) {
	r := NewRNG(17)
	a, b := RelatedStrings(r, 200, 6, 10)
	if len(a) != 200 {
		t.Fatalf("len(a) = %d", len(a))
	}
	// Each edit changes the length by at most one.
	diff := len(a) - len(b)
	if diff < -10 || diff > 10 {
		t.Fatalf("length drift %d exceeds edit budget", diff)
	}
}

func TestChainDims(t *testing.T) {
	r := NewRNG(19)
	dims := ChainDims(r, 8, 5, 20)
	if len(dims) != 9 {
		t.Fatalf("len = %d", len(dims))
	}
	for _, d := range dims {
		if d < 5 || d > 20 {
			t.Fatalf("dim %d out of [5,20]", d)
		}
	}
}

func TestWeights(t *testing.T) {
	r := NewRNG(23)
	ws, vs := Weights(r, 50, 10, 100)
	if len(ws) != 50 || len(vs) != 50 {
		t.Fatal("length mismatch")
	}
	for i := range ws {
		if ws[i] < 1 || ws[i] > 10 || vs[i] < 1 || vs[i] > 100 {
			t.Fatalf("item %d out of range: w=%d v=%d", i, ws[i], vs[i])
		}
	}
}
