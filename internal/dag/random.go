package dag

import "lopram/internal/workload"

// RandomLayered returns a DAG with the given layer widths where every vertex
// in layer i+1 depends on between 1 and maxDeps vertices of layer i. Layered
// DAGs model DP tables with clean antichain structure and are used by the
// property tests to validate the Mirsky partition against a known ground
// truth.
func RandomLayered(r *workload.RNG, widths []int, maxDeps int) *Graph {
	total := 0
	for _, w := range widths {
		total += w
	}
	g := New(total)
	start := make([]int, len(widths)+1)
	for i, w := range widths {
		start[i+1] = start[i] + w
	}
	for i := 1; i < len(widths); i++ {
		for v := start[i]; v < start[i+1]; v++ {
			prevW := widths[i-1]
			deps := 1
			if maxDeps > 1 {
				deps = 1 + r.Intn(maxDeps)
			}
			if deps > prevW {
				deps = prevW
			}
			seen := make(map[int]bool, deps)
			for len(seen) < deps {
				u := start[i-1] + r.Intn(prevW)
				if !seen[u] {
					seen[u] = true
					g.AddEdge(u, v)
				}
			}
		}
	}
	return g
}

// RandomDAG returns a DAG on n vertices where each ordered pair (u, v) with
// u < v carries an edge with probability prob. Edges always point from lower
// to higher id, guaranteeing acyclicity.
func RandomDAG(r *workload.RNG, n int, prob float64) *Graph {
	g := New(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if r.Float64() < prob {
				g.AddEdge(u, v)
			}
		}
	}
	return g
}

// Chain returns the path DAG 0→1→…→n-1, the degenerate one-dimensional DP of
// §4.3 for which no speedup is possible (the whole poset is a single chain).
func Chain(n int) *Graph {
	g := New(n)
	for v := 1; v < n; v++ {
		g.AddEdge(v-1, v)
	}
	return g
}

// Diagonal2D returns the dependency DAG of a standard 2-D table DP such as
// edit distance: cell (i,j) depends on (i-1,j), (i,j-1) and (i-1,j-1).
// Vertices are numbered i*cols+j. Its antichains are the anti-diagonals,
// giving longest chain rows+cols-1.
func Diagonal2D(rows, cols int) *Graph {
	g := New(rows * cols)
	id := func(i, j int) int { return i*cols + j }
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			if i > 0 {
				g.AddEdge(id(i-1, j), id(i, j))
			}
			if j > 0 {
				g.AddEdge(id(i, j-1), id(i, j))
			}
			if i > 0 && j > 0 {
				g.AddEdge(id(i-1, j-1), id(i, j))
			}
		}
	}
	return g
}

// CompleteBinaryTree returns the in-tree of a complete binary recursion of
// the given height: leaves feed parents, parents feed grandparents, with the
// root as the unique sink. It models the merge phase of a divide-and-conquer
// computation. Height 0 is a single vertex.
func CompleteBinaryTree(height int) *Graph {
	n := (1 << (height + 1)) - 1
	g := New(n)
	// Heap numbering: node k has children 2k+1, 2k+2; edges point child→parent.
	for k := 0; k < n; k++ {
		if 2*k+1 < n {
			g.AddEdge(2*k+1, k)
		}
		if 2*k+2 < n {
			g.AddEdge(2*k+2, k)
		}
	}
	return g
}
