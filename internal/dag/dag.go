// Package dag implements the directed-acyclic-graph / poset substrate used by
// the LoPRAM dynamic-programming framework (paper §4.3–§4.6).
//
// The paper schedules a DP computation by viewing the dependency graph of the
// table cells as a partially ordered set: cells in an antichain are
// independent and may execute in the same parallel round, and by the dual of
// Dilworth's theorem (Mirsky's theorem) the minimum number of antichains
// needed to cover the poset equals the length of its longest chain. This
// package provides exactly those primitives: construction, topological order,
// longest-chain computation, the Mirsky antichain partition, and the
// parallelism profile used to predict speedups.
package dag

import (
	"errors"
	"fmt"
)

// Graph is a DAG over vertices 0..N-1 stored as forward adjacency lists.
// Edge u→v means "v depends on u": u must be computed before v. This is the
// *reversed* dependency graph in the paper's terminology (§4.4 step (ii)),
// i.e. edges point in execution order from prerequisite to dependent.
type Graph struct {
	n   int
	adj [][]int32
	in  []int32 // in-degree of each vertex
}

// New returns an empty graph on n vertices.
func New(n int) *Graph {
	if n < 0 {
		panic("dag: negative vertex count")
	}
	return &Graph{
		n:   n,
		adj: make([][]int32, n),
		in:  make([]int32, n),
	}
}

// N returns the number of vertices.
func (g *Graph) N() int { return g.n }

// AddEdge inserts the edge u→v (u before v). Duplicate edges are allowed and
// counted separately; the scheduler tolerates them because counters are
// decremented once per edge. Panics on out-of-range vertices or self-loops.
func (g *Graph) AddEdge(u, v int) {
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		panic(fmt.Sprintf("dag: edge (%d,%d) out of range [0,%d)", u, v, g.n))
	}
	if u == v {
		panic(fmt.Sprintf("dag: self-loop at %d", u))
	}
	g.adj[u] = append(g.adj[u], int32(v))
	g.in[v]++
}

// Succ returns the successors of u (vertices that depend on u). The returned
// slice is owned by the graph and must not be modified.
func (g *Graph) Succ(u int) []int32 { return g.adj[u] }

// InDegree returns the in-degree of v.
func (g *Graph) InDegree(v int) int { return int(g.in[v]) }

// InDegrees returns a fresh copy of all in-degrees, ready to be used as the
// dependency counters of the paper's Algorithm 1.
func (g *Graph) InDegrees() []int32 {
	out := make([]int32, g.n)
	copy(out, g.in)
	return out
}

// Edges returns the total number of edges.
func (g *Graph) Edges() int {
	total := 0
	for _, a := range g.adj {
		total += len(a)
	}
	return total
}

// Sources returns the vertices with in-degree zero, in increasing order.
// These are the base cases of the DP (§4.4): computation starts here.
func (g *Graph) Sources() []int {
	var s []int
	for v := 0; v < g.n; v++ {
		if g.in[v] == 0 {
			s = append(s, v)
		}
	}
	return s
}

// ErrCycle is returned by TopoSort and Levels when the graph has a cycle and
// is therefore not a valid dependency DAG.
var ErrCycle = errors.New("dag: graph contains a cycle")

// TopoSort returns a topological order of the vertices (Kahn's algorithm).
// Among ready vertices, lower ids come first, making the order deterministic.
func (g *Graph) TopoSort() ([]int, error) {
	indeg := g.InDegrees()
	// A simple FIFO over a sorted seed set gives a deterministic order
	// without the cost of a priority queue; determinism of the *set* of
	// rounds is what matters for the scheduler, not a total order.
	queue := make([]int, 0, g.n)
	for v := 0; v < g.n; v++ {
		if indeg[v] == 0 {
			queue = append(queue, v)
		}
	}
	order := make([]int, 0, g.n)
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		order = append(order, u)
		for _, v := range g.adj[u] {
			indeg[v]--
			if indeg[v] == 0 {
				queue = append(queue, int(v))
			}
		}
	}
	if len(order) != g.n {
		return nil, ErrCycle
	}
	return order, nil
}

// Levels computes the Mirsky antichain partition: level(v) = length of the
// longest chain ending at v (0-based). All vertices with the same level form
// an antichain, the partition has exactly LongestChain layers, and no smaller
// antichain cover exists (Mirsky's theorem, the dual of Dilworth cited in
// §4.3). The returned slice maps vertex → level.
func (g *Graph) Levels() ([]int, error) {
	order, err := g.TopoSort()
	if err != nil {
		return nil, err
	}
	level := make([]int, g.n)
	for _, u := range order {
		for _, v := range g.adj[u] {
			if level[u]+1 > level[int(v)] {
				level[int(v)] = level[u] + 1
			}
		}
	}
	return level, nil
}

// Antichains groups vertices by Mirsky level. Layer i contains every vertex
// whose longest incoming chain has i edges; processing layers in order
// respects all dependencies, and within a layer all vertices are pairwise
// incomparable (independent).
func (g *Graph) Antichains() ([][]int, error) {
	level, err := g.Levels()
	if err != nil {
		return nil, err
	}
	maxL := -1
	for _, l := range level {
		if l > maxL {
			maxL = l
		}
	}
	layers := make([][]int, maxL+1)
	for v, l := range level {
		layers[l] = append(layers[l], v)
	}
	return layers, nil
}

// LongestChain returns the number of vertices on the longest chain of the
// poset (the critical-path length). By Mirsky's theorem this equals the
// minimum number of antichains covering the poset, and therefore lower-bounds
// the number of parallel rounds any scheduler needs. Zero for an empty graph.
func (g *Graph) LongestChain() (int, error) {
	if g.n == 0 {
		return 0, nil
	}
	level, err := g.Levels()
	if err != nil {
		return 0, err
	}
	maxL := 0
	for _, l := range level {
		if l > maxL {
			maxL = l
		}
	}
	return maxL + 1, nil
}

// Reverse returns the graph with every edge flipped. The paper's pipeline
// (§4.4) first records, for each cell, the cells it *reads from* (the
// dependencies graph), then reverses it to obtain the execution DAG; this is
// that reversal step.
func (g *Graph) Reverse() *Graph {
	r := New(g.n)
	for u := 0; u < g.n; u++ {
		for _, v := range g.adj[u] {
			r.AddEdge(int(v), u)
		}
	}
	return r
}

// Comparable reports whether u precedes v in the partial order (there is a
// directed path u→…→v). It runs a DFS from u; intended for tests and small
// verification runs, not for hot paths.
func (g *Graph) Comparable(u, v int) bool {
	if u == v {
		return false
	}
	seen := make([]bool, g.n)
	stack := []int{u}
	seen[u] = true
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, y := range g.adj[x] {
			if int(y) == v {
				return true
			}
			if !seen[y] {
				seen[y] = true
				stack = append(stack, int(y))
			}
		}
	}
	return false
}

// Profile describes the parallelism available in a DAG when every vertex
// costs one work unit: per-antichain widths, the critical path, and the
// resulting ideal speedup bound min(p, width) aggregated over layers.
type Profile struct {
	Vertices     int   // total work
	CriticalPath int   // longest chain (minimum rounds)
	Widths       []int // size of each antichain layer
	MaxWidth     int   // widest layer (peak parallelism)
}

// ParallelismProfile computes the Profile of g.
func (g *Graph) ParallelismProfile() (Profile, error) {
	layers, err := g.Antichains()
	if err != nil {
		return Profile{}, err
	}
	p := Profile{Vertices: g.n, CriticalPath: len(layers)}
	for _, l := range layers {
		p.Widths = append(p.Widths, len(l))
		if len(l) > p.MaxWidth {
			p.MaxWidth = len(l)
		}
	}
	return p, nil
}

// IdealTime returns the number of rounds needed to execute the profile with
// p processors under level-by-level scheduling with unit-cost vertices:
// Σ ceil(width_i / p). It is the quantity the antichain argument of §4.3
// bounds, and the denominator of the predicted speedup.
func (pr Profile) IdealTime(p int) int {
	if p < 1 {
		panic("dag: IdealTime requires p >= 1")
	}
	t := 0
	for _, w := range pr.Widths {
		t += (w + p - 1) / p
	}
	return t
}

// IdealSpeedup returns Vertices / IdealTime(p): the speedup a level scheduler
// achieves on p processors with unit-cost vertices.
func (pr Profile) IdealSpeedup(p int) float64 {
	t := pr.IdealTime(p)
	if t == 0 {
		return 0
	}
	return float64(pr.Vertices) / float64(t)
}
