package dag

import (
	"testing"
	"testing/quick"

	"lopram/internal/workload"
)

func TestTopoSortRespectsEdges(t *testing.T) {
	r := workload.NewRNG(1)
	for trial := 0; trial < 20; trial++ {
		g := RandomDAG(r, 60, 0.1)
		order, err := g.TopoSort()
		if err != nil {
			t.Fatal(err)
		}
		pos := make([]int, g.N())
		for i, v := range order {
			pos[v] = i
		}
		for u := 0; u < g.N(); u++ {
			for _, v := range g.Succ(u) {
				if pos[u] >= pos[int(v)] {
					t.Fatalf("trial %d: edge %d→%d violated", trial, u, v)
				}
			}
		}
	}
}

func TestTopoSortDetectsCycle(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 0)
	if _, err := g.TopoSort(); err != ErrCycle {
		t.Fatalf("err = %v, want ErrCycle", err)
	}
	if _, err := g.Levels(); err != ErrCycle {
		t.Fatalf("Levels err = %v, want ErrCycle", err)
	}
}

func TestSelfLoopPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("AddEdge(1,1) did not panic")
		}
	}()
	New(2).AddEdge(1, 1)
}

func TestOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("AddEdge out of range did not panic")
		}
	}()
	New(2).AddEdge(0, 5)
}

// TestMirskyPartition verifies the three defining properties of the
// antichain partition on random DAGs: it partitions the vertex set, layers
// are antichains, and the number of layers equals the longest chain
// (Mirsky's theorem — the dual of Dilworth cited in §4.3 of the paper).
func TestMirskyPartition(t *testing.T) {
	r := workload.NewRNG(2)
	for trial := 0; trial < 10; trial++ {
		g := RandomDAG(r, 40, 0.15)
		layers, err := g.Antichains()
		if err != nil {
			t.Fatal(err)
		}
		seen := make([]bool, g.N())
		for _, layer := range layers {
			for _, v := range layer {
				if seen[v] {
					t.Fatalf("vertex %d in two layers", v)
				}
				seen[v] = true
			}
		}
		for v, ok := range seen {
			if !ok {
				t.Fatalf("vertex %d missing from partition", v)
			}
		}
		// Antichain property: no two vertices in a layer comparable.
		for li, layer := range layers {
			for i := 0; i < len(layer); i++ {
				for j := i + 1; j < len(layer); j++ {
					if g.Comparable(layer[i], layer[j]) || g.Comparable(layer[j], layer[i]) {
						t.Fatalf("layer %d: %d and %d comparable", li, layer[i], layer[j])
					}
				}
			}
		}
		lc, err := g.LongestChain()
		if err != nil {
			t.Fatal(err)
		}
		if lc != len(layers) {
			t.Fatalf("longest chain %d != layer count %d (Mirsky violated)", lc, len(layers))
		}
	}
}

func TestLayeredGroundTruth(t *testing.T) {
	r := workload.NewRNG(3)
	widths := []int{3, 5, 2, 7, 1}
	g := RandomLayered(r, widths, 3)
	layers, err := g.Antichains()
	if err != nil {
		t.Fatal(err)
	}
	if len(layers) != len(widths) {
		t.Fatalf("layers = %d, want %d", len(layers), len(widths))
	}
	for i, w := range widths {
		if len(layers[i]) != w {
			t.Fatalf("layer %d width = %d, want %d", i, len(layers[i]), w)
		}
	}
}

func TestChainProfile(t *testing.T) {
	g := Chain(10)
	pr, err := g.ParallelismProfile()
	if err != nil {
		t.Fatal(err)
	}
	if pr.CriticalPath != 10 {
		t.Fatalf("critical path = %d, want 10", pr.CriticalPath)
	}
	if pr.MaxWidth != 1 {
		t.Fatalf("max width = %d, want 1", pr.MaxWidth)
	}
	// §4.3: a path admits no speedup — ideal time equals work for any p.
	for _, p := range []int{1, 2, 8} {
		if got := pr.IdealTime(p); got != 10 {
			t.Fatalf("IdealTime(%d) = %d, want 10", p, got)
		}
	}
	if s := pr.IdealSpeedup(4); s != 1 {
		t.Fatalf("IdealSpeedup(4) = %v, want 1", s)
	}
}

func TestDiagonal2DAntichains(t *testing.T) {
	g := Diagonal2D(4, 6)
	pr, err := g.ParallelismProfile()
	if err != nil {
		t.Fatal(err)
	}
	// Anti-diagonals: rows+cols-1 layers, max width min(rows, cols).
	if pr.CriticalPath != 4+6-1 {
		t.Fatalf("critical path = %d, want 9", pr.CriticalPath)
	}
	if pr.MaxWidth != 4 {
		t.Fatalf("max width = %d, want 4", pr.MaxWidth)
	}
	if pr.Vertices != 24 {
		t.Fatalf("vertices = %d, want 24", pr.Vertices)
	}
}

func TestCompleteBinaryTreeChain(t *testing.T) {
	g := CompleteBinaryTree(4)
	lc, err := g.LongestChain()
	if err != nil {
		t.Fatal(err)
	}
	if lc != 5 {
		t.Fatalf("longest chain = %d, want 5", lc)
	}
	// Exactly one sink: the root.
	sinks := 0
	for v := 0; v < g.N(); v++ {
		if len(g.Succ(v)) == 0 {
			sinks++
		}
	}
	if sinks != 1 {
		t.Fatalf("sinks = %d, want 1", sinks)
	}
}

func TestReverseInvolution(t *testing.T) {
	r := workload.NewRNG(4)
	g := RandomDAG(r, 30, 0.2)
	rr := g.Reverse().Reverse()
	if rr.N() != g.N() || rr.Edges() != g.Edges() {
		t.Fatal("double reverse changed size")
	}
	// Same adjacency as multisets.
	for u := 0; u < g.N(); u++ {
		a := append([]int32(nil), g.Succ(u)...)
		b := append([]int32(nil), rr.Succ(u)...)
		if len(a) != len(b) {
			t.Fatalf("vertex %d: degree changed", u)
		}
		count := map[int32]int{}
		for _, v := range a {
			count[v]++
		}
		for _, v := range b {
			count[v]--
		}
		for _, c := range count {
			if c != 0 {
				t.Fatalf("vertex %d: adjacency changed", u)
			}
		}
	}
}

func TestReverseFlipsComparability(t *testing.T) {
	r := workload.NewRNG(5)
	g := RandomDAG(r, 20, 0.2)
	rev := g.Reverse()
	for u := 0; u < g.N(); u++ {
		for v := 0; v < g.N(); v++ {
			if u == v {
				continue
			}
			if g.Comparable(u, v) != rev.Comparable(v, u) {
				t.Fatalf("reachability not flipped for (%d,%d)", u, v)
			}
		}
	}
}

func TestSourcesMatchInDegrees(t *testing.T) {
	r := workload.NewRNG(6)
	err := quick.Check(func(seed uint16) bool {
		rr := workload.NewRNG(uint64(seed))
		g := RandomDAG(rr, 25, 0.1)
		srcSet := map[int]bool{}
		for _, s := range g.Sources() {
			srcSet[s] = true
		}
		for v := 0; v < g.N(); v++ {
			if (g.InDegree(v) == 0) != srcSet[v] {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 50})
	if err != nil {
		t.Fatal(err)
	}
	_ = r
}

func TestIdealTimeCeiling(t *testing.T) {
	pr := Profile{Vertices: 10, CriticalPath: 2, Widths: []int{7, 3}}
	if got := pr.IdealTime(4); got != 2+1 {
		t.Fatalf("IdealTime(4) = %d, want 3", got)
	}
	if got := pr.IdealTime(1); got != 10 {
		t.Fatalf("IdealTime(1) = %d, want 10", got)
	}
}

func TestInDegreesCopy(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 2)
	d := g.InDegrees()
	d[2] = 99
	if g.InDegree(2) != 1 {
		t.Fatal("InDegrees did not return a copy")
	}
}

func TestDuplicateEdgesCounted(t *testing.T) {
	g := New(2)
	g.AddEdge(0, 1)
	g.AddEdge(0, 1)
	if g.InDegree(1) != 2 {
		t.Fatalf("in-degree = %d, want 2 (duplicates counted)", g.InDegree(1))
	}
	if g.Edges() != 2 {
		t.Fatalf("edges = %d, want 2", g.Edges())
	}
	// Still topologically sortable.
	if _, err := g.TopoSort(); err != nil {
		t.Fatal(err)
	}
}

func TestEmptyGraph(t *testing.T) {
	g := New(0)
	if lc, err := g.LongestChain(); err != nil || lc != 0 {
		t.Fatalf("LongestChain = %d, %v", lc, err)
	}
	order, err := g.TopoSort()
	if err != nil || len(order) != 0 {
		t.Fatalf("TopoSort = %v, %v", order, err)
	}
}
