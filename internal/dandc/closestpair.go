package dandc

import (
	"math"
	"sort"

	"lopram/internal/palrt"
	"lopram/internal/workload"
)

// Closest pair of points: the classical O(n log n) divide and conquer with
// T(n) = 2T(n/2) + Θ(n) (Case 2 like mergesort). The recursion on the two
// halves runs as a palthreads block; the strip check is the merge.

// ClosestPairSeq returns the minimum squared distance between any two of the
// given points (at least two required) using the sequential algorithm.
func ClosestPairSeq(pts []workload.Point) float64 {
	px := preparePoints(pts)
	py := append([]workload.Point(nil), px...)
	sortByY(py)
	return cpRec(nil, px, py, 0)
}

// ClosestPair is the parallel version on rt.
func ClosestPair(rt *palrt.RT, pts []workload.Point) float64 {
	px := preparePoints(pts)
	py := append([]workload.Point(nil), px...)
	sortByY(py)
	return cpRec(rt, px, py, cpThreshold)
}

const cpThreshold = 1 << 10

// sortByY orders points by increasing y coordinate.
func sortByY(pts []workload.Point) {
	sort.Slice(pts, func(i, j int) bool { return pts[i].Y < pts[j].Y })
}

func preparePoints(pts []workload.Point) []workload.Point {
	if len(pts) < 2 {
		panic("dandc: closest pair needs at least two points")
	}
	px := append([]workload.Point(nil), pts...)
	sort.Slice(px, func(i, j int) bool {
		if px[i].X != px[j].X {
			return px[i].X < px[j].X
		}
		return px[i].Y < px[j].Y
	})
	return px
}

// cpRec computes the closest pair of px (sorted by x) using py (the same
// points sorted by y). grain <= 0 or len <= grain forces sequential descent.
func cpRec(rt *palrt.RT, px, py []workload.Point, grain int) float64 {
	n := len(px)
	if n <= 3 {
		best := math.Inf(1)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if d := distSq(px[i], px[j]); d < best {
					best = d
				}
			}
		}
		return best
	}
	mid := n / 2
	midX := px[mid].X
	left, right := px[:mid], px[mid:]

	// Split py into the y-sorted subsequences of each half. Points with
	// x == midX are routed by comparing against the exact boundary
	// element to keep the split consistent with px's tie-breaking.
	ly := make([]workload.Point, 0, mid)
	ry := make([]workload.Point, 0, n-mid)
	for _, p := range py {
		if lessXY(p, px[mid]) {
			ly = append(ly, p)
		} else {
			ry = append(ry, p)
		}
	}

	var dl, dr float64
	if rt != nil && n > grain {
		rt.Do(
			func() { dl = cpRec(rt, left, ly, grain) },
			func() { dr = cpRec(rt, right, ry, grain) },
		)
	} else {
		dl = cpRec(nil, left, ly, 0)
		dr = cpRec(nil, right, ry, 0)
	}
	d := math.Min(dl, dr)

	// Strip check: points within sqrt(d) of the dividing line, in y
	// order; each needs comparing against at most 7 successors.
	dd := math.Sqrt(d)
	strip := make([]workload.Point, 0, 32)
	for _, p := range py {
		if p.X >= midX-dd && p.X <= midX+dd {
			strip = append(strip, p)
		}
	}
	for i := range strip {
		for j := i + 1; j < len(strip) && strip[j].Y-strip[i].Y < dd; j++ {
			if ds := distSq(strip[i], strip[j]); ds < d {
				d = ds
				dd = math.Sqrt(d)
			}
		}
	}
	return d
}

func lessXY(a, b workload.Point) bool {
	if a.X != b.X {
		return a.X < b.X
	}
	return a.Y < b.Y
}

func distSq(a, b workload.Point) float64 {
	dx, dy := a.X-b.X, a.Y-b.Y
	return dx*dx + dy*dy
}

// BruteForceClosest is the O(n²) oracle used by the tests.
func BruteForceClosest(pts []workload.Point) float64 {
	best := math.Inf(1)
	for i := 0; i < len(pts); i++ {
		for j := i + 1; j < len(pts); j++ {
			if d := distSq(pts[i], pts[j]); d < best {
				best = d
			}
		}
	}
	return best
}
