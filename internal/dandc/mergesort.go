package dandc

import (
	"sort"

	"lopram/internal/palrt"
)

// sortThreshold is the subproblem size below which the parallel sorts fall
// back to the sequential algorithm. It bounds pal-thread overhead per the
// usual grain-size rule; correctness does not depend on its value, and the
// tests exercise tiny thresholds explicitly.
const sortThreshold = 1 << 11

// MergeSortSeq sorts a in place with the classical sequential mergesort the
// paper's §3.1 example parallelizes. It allocates one temp buffer.
func MergeSortSeq(a []int) {
	tmp := make([]int, len(a))
	msortSeq(a, tmp)
}

func msortSeq(a, tmp []int) {
	if len(a) <= 32 {
		insertionSort(a)
		return
	}
	mid := len(a) / 2
	msortSeq(a[:mid], tmp[:mid])
	msortSeq(a[mid:], tmp[mid:])
	mergeInto(a[:mid], a[mid:], tmp)
	copy(a, tmp)
}

// MergeSort sorts a in place on the runtime: the §3.1 program
//
//	palthreads { m_sort(left); m_sort(right); }
//	merge(...)
//
// with a sequential merge (the Theorem 1, Case 2 setting).
func MergeSort(rt *palrt.RT, a []int) {
	mergeSortGrain(rt, a, sortThreshold, false)
}

// MergeSortParMerge is MergeSort with the merge phase parallelized by
// balanced binary splitting (the Equation 5 setting). For mergesort the
// distinction does not change the asymptotic speedup — Case 2 is already
// work-optimal — but it demonstrates the construction and tightens constants.
func MergeSortParMerge(rt *palrt.RT, a []int) {
	mergeSortGrain(rt, a, sortThreshold, true)
}

// mergeSortGrain exposes the grain size for tests.
func mergeSortGrain(rt *palrt.RT, a []int, grain int, parMerge bool) {
	if grain < 2 {
		grain = 2
	}
	tmp := make([]int, len(a))
	msortPar(rt, a, tmp, grain, parMerge)
}

func msortPar(rt *palrt.RT, a, tmp []int, grain int, parMerge bool) {
	if len(a) <= grain {
		msortSeq(a, tmp)
		return
	}
	mid := len(a) / 2
	rt.Do(
		func() { msortPar(rt, a[:mid], tmp[:mid], grain, parMerge) },
		func() { msortPar(rt, a[mid:], tmp[mid:], grain, parMerge) },
	)
	if parMerge {
		parallelMerge(rt, a[:mid], a[mid:], tmp, grain)
	} else {
		mergeInto(a[:mid], a[mid:], tmp)
	}
	copy(a, tmp)
}

// mergeInto merges sorted x and y into out (len(out) == len(x)+len(y)).
func mergeInto(x, y, out []int) {
	i, j, k := 0, 0, 0
	for i < len(x) && j < len(y) {
		if y[j] < x[i] {
			out[k] = y[j]
			j++
		} else {
			out[k] = x[i]
			i++
		}
		k++
	}
	copy(out[k:], x[i:])
	copy(out[k+len(x)-i:], y[j:])
}

// parallelMerge merges sorted x and y into out using the classic
// divide-and-conquer merge: split the larger input at its median, binary
// search the partner, and merge the two halves as independent pal-threads.
// Span O(log² n), work O(n) — an optimal-speedup merge for p = O(log n).
func parallelMerge(rt *palrt.RT, x, y, out []int, grain int) {
	if len(x)+len(y) <= grain {
		mergeInto(x, y, out)
		return
	}
	if len(x) < len(y) {
		x, y = y, x
	}
	if len(x) == 0 {
		return
	}
	mx := len(x) / 2
	pivot := x[mx]
	// my = first index of y with y[my] >= pivot keeps the merge stable
	// with respect to x-before-y ordering of equal keys.
	my := sort.SearchInts(y, pivot)
	rt.Do(
		func() { parallelMerge(rt, x[:mx], y[:my], out[:mx+my], grain) },
		func() { parallelMerge(rt, x[mx:], y[my:], out[mx+my:], grain) },
	)
}

func insertionSort(a []int) {
	for i := 1; i < len(a); i++ {
		v := a[i]
		j := i - 1
		for j >= 0 && a[j] > v {
			a[j+1] = a[j]
			j--
		}
		a[j+1] = v
	}
}

// IsSorted reports whether a is in non-decreasing order.
func IsSorted(a []int) bool {
	for i := 1; i < len(a); i++ {
		if a[i-1] > a[i] {
			return false
		}
	}
	return true
}
