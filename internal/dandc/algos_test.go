package dandc

import (
	"testing"
	"testing/quick"

	"lopram/internal/palrt"
	"lopram/internal/workload"
)

func TestMergeSortMatchesSeq(t *testing.T) {
	r := workload.NewRNG(1)
	rt := palrt.New(8)
	for _, n := range []int{0, 1, 2, 3, 31, 100, 1000, 50000} {
		a := workload.Ints(r, n, 1000)
		b := append([]int(nil), a...)
		MergeSortSeq(a)
		mergeSortGrain(rt, b, 16, false) // tiny grain exercises parallel paths
		if !IsSorted(a) || !IsSorted(b) {
			t.Fatalf("n=%d: not sorted", n)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("n=%d: mismatch at %d", n, i)
			}
		}
	}
}

func TestMergeSortParMerge(t *testing.T) {
	r := workload.NewRNG(2)
	rt := palrt.New(8)
	for _, n := range []int{2, 17, 256, 10000} {
		a := workload.Ints(r, n, 50) // many duplicates stress the merge split
		b := append([]int(nil), a...)
		MergeSortSeq(a)
		mergeSortGrain(rt, b, 8, true)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("n=%d: parallel-merge mismatch at %d: %d vs %d", n, i, a[i], b[i])
			}
		}
	}
}

func TestMergeSortAdversarialInputs(t *testing.T) {
	rt := palrt.New(4)
	for _, a := range [][]int{
		workload.Reversed(1000),
		make([]int, 500), // all equal
		workload.NearlySorted(workload.NewRNG(3), 1000, 20),
	} {
		b := append([]int(nil), a...)
		MergeSort(rt, b)
		if !IsSorted(b) {
			t.Fatal("not sorted")
		}
		// Multiset preserved: compare against sequential sort of a.
		MergeSortSeq(a)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("multiset changed at %d", i)
			}
		}
	}
}

func TestQuickSortMatchesSeq(t *testing.T) {
	r := workload.NewRNG(4)
	rt := palrt.New(8)
	for _, n := range []int{0, 1, 2, 33, 1000, 30000} {
		a := workload.Ints(r, n, 100)
		b := append([]int(nil), a...)
		QuickSortSeq(a)
		quickSortGrain(rt, b, 16)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("n=%d: mismatch at %d", n, i)
			}
		}
	}
}

func TestQuickSortProperty(t *testing.T) {
	rt := palrt.New(4)
	err := quick.Check(func(a []int) bool {
		b := append([]int(nil), a...)
		quickSortGrain(rt, b, 8)
		if !IsSorted(b) {
			return false
		}
		counts := map[int]int{}
		for _, v := range a {
			counts[v]++
		}
		for _, v := range b {
			counts[v]--
		}
		for _, c := range counts {
			if c != 0 {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPolyMulOracle(t *testing.T) {
	a := []int64{1, 2, 3}
	b := []int64{4, 5}
	// (1+2x+3x²)(4+5x) = 4+13x+22x²+15x³
	got := PolyMulSeq(a, b)
	want := []int64{4, 13, 22, 15}
	if len(got) != len(want) {
		t.Fatalf("len = %d", len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("coef %d = %d, want %d", i, got[i], want[i])
		}
	}
	if PolyMulSeq(nil, b) != nil || PolyMulSeq(a, nil) != nil {
		t.Fatal("empty operand should give nil")
	}
}

func TestKaratsubaMatchesSchoolbook(t *testing.T) {
	r := workload.NewRNG(5)
	rt := palrt.New(8)
	for _, pair := range [][2]int{{1, 1}, {5, 3}, {64, 64}, {200, 130}, {501, 500}, {1000, 1}} {
		a := make([]int64, pair[0])
		b := make([]int64, pair[1])
		for i := range a {
			a[i] = int64(r.Intn(2001) - 1000)
		}
		for i := range b {
			b[i] = int64(r.Intn(2001) - 1000)
		}
		want := PolyMulSeq(a, b)
		for name, got := range map[string][]int64{
			"seq": KaratsubaSeq(a, b),
			"par": Karatsuba(rt, a, b),
		} {
			if len(got) != len(want) {
				t.Fatalf("%s sizes %v: len %d want %d", name, pair, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%s sizes %v: coef %d = %d, want %d", name, pair, i, got[i], want[i])
				}
			}
		}
	}
}

func TestStrassenMatchesSchoolbook(t *testing.T) {
	r := workload.NewRNG(6)
	rt := palrt.New(8)
	for _, n := range []int{1, 2, 7, 16, 65, 128, 150} {
		a := Mat{N: n, Data: workload.Floats(r, n*n)}
		b := Mat{N: n, Data: workload.Floats(r, n*n)}
		want := MatMulSeq(a, b)
		seq := StrassenSeq(a, b)
		par := Strassen(rt, a, b)
		if !MatEqual(want, seq, 1e-9*float64(n)) {
			t.Fatalf("n=%d: sequential Strassen diverged", n)
		}
		if !MatEqual(want, par, 1e-9*float64(n)) {
			t.Fatalf("n=%d: parallel Strassen diverged", n)
		}
	}
}

func TestStrassenPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on size mismatch")
		}
	}()
	StrassenSeq(NewMat(2), NewMat(3))
}

func TestClosestPairMatchesBruteForce(t *testing.T) {
	r := workload.NewRNG(7)
	rt := palrt.New(8)
	for _, n := range []int{2, 3, 10, 100, 500} {
		pts := workload.Points(r, n)
		want := BruteForceClosest(pts)
		seq := ClosestPairSeq(pts)
		par := cpPar(rt, pts)
		if seq != want {
			t.Fatalf("n=%d: seq %v != brute %v", n, seq, want)
		}
		if par != want {
			t.Fatalf("n=%d: par %v != brute %v", n, par, want)
		}
	}
}

// cpPar forces the parallel path with a tiny grain.
func cpPar(rt *palrt.RT, pts []workload.Point) float64 {
	px := preparePoints(pts)
	py := append([]workload.Point(nil), px...)
	sortByY(py)
	return cpRec(rt, px, py, 4)
}

func TestClosestPairClusteredPoints(t *testing.T) {
	// Points on a near-vertical line force everything into the strip.
	rt := palrt.New(4)
	r := workload.NewRNG(8)
	pts := make([]workload.Point, 200)
	for i := range pts {
		pts[i] = workload.Point{X: 0.5 + r.Float64()*1e-6, Y: r.Float64()}
	}
	want := BruteForceClosest(pts)
	if got := cpPar(rt, pts); got != want {
		t.Fatalf("strip-heavy input: %v != %v", got, want)
	}
}

func TestMaxSubarrayMatchesKadane(t *testing.T) {
	r := workload.NewRNG(9)
	rt := palrt.New(8)
	for _, n := range []int{1, 2, 17, 1000, 65536} {
		a := make([]int, n)
		for i := range a {
			a[i] = r.Intn(201) - 100
		}
		want := MaxSubarraySeq(a)
		got := msRec(rt, a, 16).best
		if got != want {
			t.Fatalf("n=%d: %d != %d", n, got, want)
		}
	}
}

func TestMaxSubarrayAllNegative(t *testing.T) {
	rt := palrt.New(4)
	a := []int{-5, -2, -9, -3}
	if got := MaxSubarray(rt, a); got != -2 {
		t.Fatalf("got %d, want -2 (best single element)", got)
	}
}

func TestMaxSubarrayProperty(t *testing.T) {
	rt := palrt.New(4)
	err := quick.Check(func(raw []int8) bool {
		if len(raw) == 0 {
			return true
		}
		a := make([]int, len(raw))
		for i, v := range raw {
			a[i] = int(v)
		}
		// Oracle: O(n²) enumeration.
		best := a[0]
		for i := range a {
			sum := 0
			for j := i; j < len(a); j++ {
				sum += a[j]
				if sum > best {
					best = sum
				}
			}
		}
		return msRec(rt, a, 4).best == best
	}, &quick.Config{MaxCount: 300})
	if err != nil {
		t.Fatal(err)
	}
}

func TestInsertionSortTiny(t *testing.T) {
	a := []int{3, 1, 2}
	insertionSort(a)
	if a[0] != 1 || a[1] != 2 || a[2] != 3 {
		t.Fatalf("a = %v", a)
	}
	insertionSort(nil) // must not panic
}

func TestPartitionPlacesPivot(t *testing.T) {
	r := workload.NewRNG(10)
	for trial := 0; trial < 100; trial++ {
		a := workload.Ints(r, 3+r.Intn(50), 30)
		p := partition(a)
		for i := 0; i < p; i++ {
			if a[i] > a[p] {
				t.Fatalf("left element %d > pivot %d", a[i], a[p])
			}
		}
		for i := p + 1; i < len(a); i++ {
			if a[i] < a[p] {
				t.Fatalf("right element %d < pivot %d", a[i], a[p])
			}
		}
	}
}
