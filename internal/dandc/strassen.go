package dandc

import "lopram/internal/palrt"

// Strassen matrix multiplication: T(n) = 7T(n/2) + Θ(n²), Case 1 with
// critical exponent log₂7 ≈ 2.807. The seven recursive products of each
// level run as one palthreads block.

// Mat is a dense row-major square matrix.
type Mat struct {
	N    int
	Data []float64
}

// NewMat returns a zero n×n matrix.
func NewMat(n int) Mat {
	return Mat{N: n, Data: make([]float64, n*n)}
}

// At returns the element at row i, column j.
func (m Mat) At(i, j int) float64 { return m.Data[i*m.N+j] }

// Set assigns the element at row i, column j.
func (m Mat) Set(i, j int, v float64) { m.Data[i*m.N+j] = v }

// MatMulSeq returns a·b with the schoolbook ikj algorithm; the correctness
// oracle for Strassen.
func MatMulSeq(a, b Mat) Mat {
	n := a.N
	c := NewMat(n)
	for i := 0; i < n; i++ {
		arow := a.Data[i*n : (i+1)*n]
		crow := c.Data[i*n : (i+1)*n]
		for k := 0; k < n; k++ {
			aik := arow[k]
			if aik == 0 {
				continue
			}
			brow := b.Data[k*n : (k+1)*n]
			for j := 0; j < n; j++ {
				crow[j] += aik * brow[j]
			}
		}
	}
	return c
}

// strassenCutoff is the size at which the recursion switches to schoolbook.
const strassenCutoff = 64

// StrassenSeq multiplies a and b (n must be equal for both) sequentially.
func StrassenSeq(a, b Mat) Mat {
	return strassenTop(nil, a, b)
}

// Strassen multiplies a and b with the seven sub-products per level run as
// a palthreads block on rt.
func Strassen(rt *palrt.RT, a, b Mat) Mat {
	return strassenTop(rt, a, b)
}

func strassenTop(rt *palrt.RT, a, b Mat) Mat {
	if a.N != b.N {
		panic("dandc: Strassen requires equal square matrices")
	}
	n := a.N
	// Pad to the next power of two; Strassen's index arithmetic needs
	// clean halving.
	m := 1
	for m < n {
		m *= 2
	}
	if m == n {
		return strassen(rt, a, b)
	}
	ap, bp := NewMat(m), NewMat(m)
	for i := 0; i < n; i++ {
		copy(ap.Data[i*m:i*m+n], a.Data[i*n:(i+1)*n])
		copy(bp.Data[i*m:i*m+n], b.Data[i*n:(i+1)*n])
	}
	cp := strassen(rt, ap, bp)
	c := NewMat(n)
	for i := 0; i < n; i++ {
		copy(c.Data[i*n:(i+1)*n], cp.Data[i*m:i*m+n])
	}
	return c
}

func strassen(rt *palrt.RT, a, b Mat) Mat {
	n := a.N
	if n <= strassenCutoff {
		return MatMulSeq(a, b)
	}
	h := n / 2
	a11, a12, a21, a22 := quadrants(a)
	b11, b12, b21, b22 := quadrants(b)

	var m1, m2, m3, m4, m5, m6, m7 Mat
	prods := []func(){
		func() { m1 = strassen(rt, matAdd(a11, a22), matAdd(b11, b22)) },
		func() { m2 = strassen(rt, matAdd(a21, a22), b11) },
		func() { m3 = strassen(rt, a11, matSub(b12, b22)) },
		func() { m4 = strassen(rt, a22, matSub(b21, b11)) },
		func() { m5 = strassen(rt, matAdd(a11, a12), b22) },
		func() { m6 = strassen(rt, matSub(a21, a11), matAdd(b11, b12)) },
		func() { m7 = strassen(rt, matSub(a12, a22), matAdd(b21, b22)) },
	}
	if rt != nil {
		rt.Do(prods...)
	} else {
		for _, p := range prods {
			p()
		}
	}

	c := NewMat(n)
	for i := 0; i < h; i++ {
		for j := 0; j < h; j++ {
			k := i*h + j
			c.Data[i*n+j] = m1.Data[k] + m4.Data[k] - m5.Data[k] + m7.Data[k]
			c.Data[i*n+j+h] = m3.Data[k] + m5.Data[k]
			c.Data[(i+h)*n+j] = m2.Data[k] + m4.Data[k]
			c.Data[(i+h)*n+j+h] = m1.Data[k] - m2.Data[k] + m3.Data[k] + m6.Data[k]
		}
	}
	return c
}

// quadrants copies the four n/2 quadrants of m into fresh matrices.
func quadrants(m Mat) (q11, q12, q21, q22 Mat) {
	n := m.N
	h := n / 2
	q11, q12, q21, q22 = NewMat(h), NewMat(h), NewMat(h), NewMat(h)
	for i := 0; i < h; i++ {
		copy(q11.Data[i*h:(i+1)*h], m.Data[i*n:i*n+h])
		copy(q12.Data[i*h:(i+1)*h], m.Data[i*n+h:(i+1)*n])
		copy(q21.Data[i*h:(i+1)*h], m.Data[(i+h)*n:(i+h)*n+h])
		copy(q22.Data[i*h:(i+1)*h], m.Data[(i+h)*n+h:(i+h+1)*n])
	}
	return q11, q12, q21, q22
}

func matAdd(a, b Mat) Mat {
	c := NewMat(a.N)
	for i, v := range a.Data {
		c.Data[i] = v + b.Data[i]
	}
	return c
}

func matSub(a, b Mat) Mat {
	c := NewMat(a.N)
	for i, v := range a.Data {
		c.Data[i] = v - b.Data[i]
	}
	return c
}

// MatEqual reports whether a and b agree within tol elementwise.
func MatEqual(a, b Mat, tol float64) bool {
	if a.N != b.N {
		return false
	}
	for i, v := range a.Data {
		d := v - b.Data[i]
		if d < -tol || d > tol {
			return false
		}
	}
	return true
}
