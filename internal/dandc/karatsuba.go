package dandc

import "lopram/internal/palrt"

// Polynomial multiplication: the classical Karatsuba recurrence
// T(n) = 3T(n/2) + Θ(n), a Case 1 instance (critical exponent log₂3 ≈ 1.585
// beats the linear combine), so Theorem 1 promises optimal speedup from the
// straightforward parallelization of the three half-size products.

// PolyMulSeq returns the product of polynomials a and b given as coefficient
// slices (a[i] is the coefficient of x^i). The schoolbook O(n²) algorithm;
// the correctness oracle for the Karatsuba implementations.
func PolyMulSeq(a, b []int64) []int64 {
	if len(a) == 0 || len(b) == 0 {
		return nil
	}
	out := make([]int64, len(a)+len(b)-1)
	for i, ai := range a {
		if ai == 0 {
			continue
		}
		for j, bj := range b {
			out[i+j] += ai * bj
		}
	}
	return out
}

// karatsubaCutoff is the size below which the recursion uses schoolbook
// multiplication.
const karatsubaCutoff = 48

// KaratsubaSeq multiplies polynomials a and b with sequential Karatsuba.
func KaratsubaSeq(a, b []int64) []int64 {
	return karatsuba(nil, a, b)
}

// Karatsuba multiplies polynomials a and b, running the three recursive
// products of each level as a palthreads block.
func Karatsuba(rt *palrt.RT, a, b []int64) []int64 {
	return karatsuba(rt, a, b)
}

// karatsuba dispatches on rt: nil means sequential.
func karatsuba(rt *palrt.RT, a, b []int64) []int64 {
	if len(a) == 0 || len(b) == 0 {
		return nil
	}
	if len(a) < len(b) {
		a, b = b, a
	}
	if len(b) <= karatsubaCutoff {
		return PolyMulSeq(a, b)
	}
	m := (len(a) + 1) / 2
	a0, a1 := a[:m], a[m:]
	b0, b1 := b, []int64(nil)
	if len(b) > m {
		b0, b1 = b[:m], b[m:]
	}

	var z0, z1, z2 []int64
	s0 := polyAdd(a0, a1)
	s1 := polyAdd(b0, b1)
	if rt != nil {
		rt.Do(
			func() { z0 = karatsuba(rt, a0, b0) },
			func() { z2 = karatsuba(rt, a1, b1) },
			func() { z1 = karatsuba(rt, s0, s1) },
		)
	} else {
		z0 = karatsuba(nil, a0, b0)
		z2 = karatsuba(nil, a1, b1)
		z1 = karatsuba(nil, s0, s1)
	}

	// result = z0 + (z1 - z0 - z2)·x^m + z2·x^2m
	out := make([]int64, len(a)+len(b)-1)
	for i, v := range z0 {
		out[i] += v
	}
	for i, v := range z2 {
		out[2*m+i] += v
	}
	// mid may carry trailing zero coefficients past the true degree when
	// the split is uneven (len(a) odd); skipping zeros keeps the indexing
	// in range without trimming.
	mid := polySub(polySub(z1, z0), z2)
	for i, v := range mid {
		if v == 0 {
			continue
		}
		out[m+i] += v
	}
	return out
}

func polyAdd(a, b []int64) []int64 {
	if len(b) > len(a) {
		a, b = b, a
	}
	out := make([]int64, len(a))
	copy(out, a)
	for i, v := range b {
		out[i] += v
	}
	return out
}

func polySub(a, b []int64) []int64 {
	n := len(a)
	if len(b) > n {
		n = len(b)
	}
	out := make([]int64, n)
	copy(out, a)
	for i, v := range b {
		out[i] -= v
	}
	return out
}
