package dandc

import (
	"math"
	"math/cmplx"

	"lopram/internal/palrt"
)

// Fast Fourier transform: the canonical Case 2 recurrence
// T(n) = 2T(n/2) + Θ(n) after mergesort. The two half-size transforms of
// each level run as a palthreads block; the butterfly combine is the merge.

// FFTSeq returns the discrete Fourier transform of x (len a power of two)
// using sequential radix-2 Cooley–Tukey.
func FFTSeq(x []complex128) []complex128 {
	requirePow2(len(x))
	out := append([]complex128(nil), x...)
	fftRec(nil, out, 1)
	return out
}

// FFT is the parallel version on rt.
func FFT(rt *palrt.RT, x []complex128) []complex128 {
	requirePow2(len(x))
	out := append([]complex128(nil), x...)
	fftRec(rt, out, 1)
	return out
}

// IFFT returns the inverse transform (normalized by 1/n).
func IFFT(rt *palrt.RT, x []complex128) []complex128 {
	requirePow2(len(x))
	conj := make([]complex128, len(x))
	for i, v := range x {
		conj[i] = cmplx.Conj(v)
	}
	fftRec(rt, conj, 1)
	inv := 1 / float64(len(x))
	for i, v := range conj {
		conj[i] = cmplx.Conj(v) * complex(inv, 0)
	}
	return conj
}

const fftGrain = 1 << 9

// fftRec transforms a in place. stride bookkeeping is avoided by splitting
// into even/odd copies — clarity over constant factors, as everywhere in
// this repository the asymptotic shape is what the experiments check.
func fftRec(rt *palrt.RT, a []complex128, depth int) {
	n := len(a)
	if n == 1 {
		return
	}
	even := make([]complex128, n/2)
	odd := make([]complex128, n/2)
	for i := 0; i < n/2; i++ {
		even[i] = a[2*i]
		odd[i] = a[2*i+1]
	}
	if rt != nil && n > fftGrain {
		rt.Do(
			func() { fftRec(rt, even, depth+1) },
			func() { fftRec(rt, odd, depth+1) },
		)
	} else {
		fftRec(nil, even, depth+1)
		fftRec(nil, odd, depth+1)
	}
	ang := -2 * math.Pi / float64(n)
	for k := 0; k < n/2; k++ {
		w := cmplx.Rect(1, ang*float64(k))
		t := w * odd[k]
		a[k] = even[k] + t
		a[k+n/2] = even[k] - t
	}
}

// DFTSlow is the O(n²) direct transform: the correctness oracle.
func DFTSlow(x []complex128) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		var sum complex128
		for j := 0; j < n; j++ {
			ang := -2 * math.Pi * float64(k) * float64(j) / float64(n)
			sum += x[j] * cmplx.Rect(1, ang)
		}
		out[k] = sum
	}
	return out
}

// Convolve multiplies two real-coefficient polynomials via FFT, rounding the
// result to the nearest integers. Coefficients must stay small enough for
// float64 exactness (|result| < 2^52).
func Convolve(rt *palrt.RT, a, b []int64) []int64 {
	if len(a) == 0 || len(b) == 0 {
		return nil
	}
	size := 1
	for size < len(a)+len(b)-1 {
		size *= 2
	}
	ca := make([]complex128, size)
	cb := make([]complex128, size)
	for i, v := range a {
		ca[i] = complex(float64(v), 0)
	}
	for i, v := range b {
		cb[i] = complex(float64(v), 0)
	}
	var fa, fb []complex128
	if rt != nil {
		rt.Do(
			func() { fa = FFT(rt, ca) },
			func() { fb = FFT(rt, cb) },
		)
	} else {
		fa, fb = FFTSeq(ca), FFTSeq(cb)
	}
	for i := range fa {
		fa[i] *= fb[i]
	}
	prod := IFFT(rt, fa)
	out := make([]int64, len(a)+len(b)-1)
	for i := range out {
		out[i] = int64(math.Round(real(prod[i])))
	}
	return out
}

func requirePow2(n int) {
	if n == 0 || n&(n-1) != 0 {
		panic("dandc: FFT length must be a power of two")
	}
}
