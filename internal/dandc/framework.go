package dandc

import "lopram/internal/palrt"

// Generic divide-and-conquer framework: the programmable face of §4.1. A
// user describes a recurrence once — how to divide, when to stop, how to
// combine — and Run executes it with the palthreads discipline on any
// runtime, with the same "no explicit processor test" property as the
// hand-written algorithms: a child is offered to an idle processor and runs
// inline otherwise.
//
// The Theorem 1 consequences carry over directly: if the recurrence falls in
// Master Cases 1 or 2 the execution is work-optimal on p = O(log n)
// processors; in Case 3 the combine dominates and should itself use
// runtime parallelism (rt.For) to reach the Equation 5 bound.

// Rec describes a divide-and-conquer recurrence over inputs In and outputs
// Out.
type Rec[In, Out any] struct {
	// IsBase reports whether the input should be solved directly.
	IsBase func(In) bool
	// Solve handles base cases.
	Solve func(In) Out
	// Divide splits the input into a ≥ 1 subproblems.
	Divide func(In) []In
	// Combine merges the subproblem outputs (same order as Divide). It
	// receives the original input for context (sizes, pivots, …) and a
	// runtime handle so Case 3 combines can parallelize internally.
	Combine func(rt *palrt.RT, in In, parts []Out) Out
}

// Run executes the recurrence on the runtime. Each level's subproblems form
// one palthreads block.
func Run[In, Out any](rt *palrt.RT, r Rec[In, Out], in In) Out {
	if r.IsBase(in) {
		return r.Solve(in)
	}
	subs := r.Divide(in)
	parts := make([]Out, len(subs))
	jobs := make([]func(), len(subs))
	for i := range subs {
		i := i
		jobs[i] = func() { parts[i] = Run(rt, r, subs[i]) }
	}
	rt.Do(jobs...)
	return r.Combine(rt, in, parts)
}

// RunSeq executes the recurrence sequentially (the T(n) baseline). The
// Combine still receives rt (possibly nil-processor, single-permit) so the
// same Rec value can be reused; pass palrt.New(1).
func RunSeq[In, Out any](rt *palrt.RT, r Rec[In, Out], in In) Out {
	if r.IsBase(in) {
		return r.Solve(in)
	}
	subs := r.Divide(in)
	parts := make([]Out, len(subs))
	for i := range subs {
		parts[i] = RunSeq(rt, r, subs[i])
	}
	return r.Combine(rt, in, parts)
}
