package dandc

import (
	"testing"

	"lopram/internal/master"
	"lopram/internal/sim"
)

// runSteps executes the cost model on a p-processor machine and returns the
// simulated wall-clock.
func runSteps(t *testing.T, cm CostModel, n int64, p int) int64 {
	t.Helper()
	m := sim.New(sim.Config{P: p})
	res, err := m.Run(cm.Program(n))
	if err != nil {
		t.Fatal(err)
	}
	return res.Steps
}

// TestSeqSimMatchesRecurrence: on one processor the simulator's wall-clock
// equals the sequential recurrence exactly, for all three Master cases.
func TestSeqSimMatchesRecurrence(t *testing.T) {
	recs := map[string]master.IntRec{
		"case1 4T(n/2)+n":  Case1Rec(),
		"case2 2T(n/2)+n":  Mergesort(),
		"case3 2T(n/2)+n²": Case3Rec(),
	}
	for name, rec := range recs {
		for _, n := range []int64{1, 2, 8, 64, 256} {
			cm := CostModel{Rec: rec, SpawnDepth: -1}
			got := runSteps(t, cm, n, 1)
			want := rec.Seq(n)
			if got != want {
				t.Errorf("%s n=%d: sim %d, recurrence %d", name, n, got, want)
			}
		}
	}
}

// TestTheorem1ExactSeqMerge: for p = 2^k the simulated wall-clock equals the
// Equation (3) greedy schedule exactly — the strongest form of the Theorem 1
// reproduction (experiments E3–E5).
func TestTheorem1ExactSeqMerge(t *testing.T) {
	recs := map[string]master.IntRec{
		"case1": Case1Rec(),
		"case2": Mergesort(),
		"case3": Case3Rec(),
	}
	for name, rec := range recs {
		for _, p := range []int{1, 2, 4, 8, 16} {
			if !master.IsPowerOf(p, rec.A) && p != 1 {
				continue // balanced-frontier predictor needs p = a^k
			}
			sizes := []int64{64, 256, 1024}
			if rec.A > 2 {
				sizes = []int64{64, 256} // full spawn of a=4 at n=1024 is a million threads
			}
			for _, n := range sizes {
				cm := CostModel{Rec: rec, SpawnDepth: -1}
				got := runSteps(t, cm, n, p)
				want := rec.ParSeqMerge(n, p)
				if got != want {
					t.Errorf("%s n=%d p=%d: sim %d, Eq(3) %d", name, n, p, got, want)
				}
			}
		}
	}
}

// TestTheorem1ExactParMerge: the Equation (5) variant with chunked parallel
// merging also matches its predictor exactly (experiment E6).
func TestTheorem1ExactParMerge(t *testing.T) {
	rec := Case3Rec()
	for _, p := range []int{2, 4, 8} {
		for _, n := range []int64{64, 256, 1024} {
			cm := CostModel{Rec: rec, Mode: ParMerge, MergeChunks: p, SpawnDepth: -1}
			got := runSteps(t, cm, n, p)
			want := rec.ParParMerge(n, p)
			if got != want {
				t.Errorf("n=%d p=%d: sim %d, Eq(5) %d", n, p, got, want)
			}
		}
	}
}

// TestTruncationInvariance: truncating thread creation below the spawn
// frontier does not change the schedule when the frontier is balanced
// (p = a^k): the truncated subtrees run sequentially on one processor either
// way. For ragged p the schedules differ — full spawning lets a processor
// that finishes early steal pending threads inside a busy subtree — but only
// within a modest constant, which the second half asserts.
func TestTruncationInvariance(t *testing.T) {
	recs := []master.IntRec{Case1Rec(), Mergesort(), Case3Rec()}
	for _, rec := range recs {
		for _, p := range []int{1, 2, 3, 4, 7, 8} {
			frontier := master.FrontierDepth(p, rec.A)
			balanced := p == 1 || master.IsPowerOf(p, rec.A)
			n := int64(256)
			a := runSteps(t, CostModel{Rec: rec, SpawnDepth: -1}, n, p)
			for slack := 0; slack <= 2; slack++ {
				trunc := CostModel{Rec: rec, SpawnDepth: frontier + slack}
				b := runSteps(t, trunc, n, p)
				if balanced && a != b {
					t.Errorf("a=%d p=%d slack=%d: full %d != truncated %d",
						rec.A, p, slack, a, b)
				}
				ratio := float64(b) / float64(a)
				if ratio < 1/1.5 || ratio > 1.5 {
					t.Errorf("a=%d p=%d slack=%d: truncated/full = %.2f outside [0.67, 1.5]",
						rec.A, p, slack, ratio)
				}
			}
		}
	}
}

// TestCase3FlatSpeedup: sequential merging in Case 3 gives Θ(f(n)) wall
// clock — growing p must not help beyond the small constant the theorem
// allows (experiment E5's assertion).
func TestCase3FlatSpeedup(t *testing.T) {
	rec := Case3Rec()
	n := int64(1 << 12)
	f := n * n
	seq := rec.Seq(n)
	for _, p := range []int{2, 4, 8, 16} {
		tp := runSteps(t, CostModel{Rec: rec, SpawnDepth: 8}, n, p)
		if tp < f {
			t.Errorf("p=%d: T_p = %d below f(n) = %d", p, tp, f)
		}
		if tp > 2*f {
			t.Errorf("p=%d: T_p = %d above 2·f(n) = %d, not Θ(f(n))", p, tp, 2*f)
		}
		speedup := float64(seq) / float64(tp)
		if speedup > 2.1 {
			t.Errorf("p=%d: speedup %.2f too high for sequential-merge Case 3", p, speedup)
		}
	}
}

// TestCase12OptimalSpeedup: Cases 1 and 2 achieve speedup within a small
// constant of p on the simulator (experiments E3, E4).
func TestCase12OptimalSpeedup(t *testing.T) {
	for name, rec := range map[string]master.IntRec{"case1": Case1Rec(), "case2": Mergesort()} {
		// Case 2's speedup constant approaches 1 only as log n outgrows
		// p (the merge sum costs ≈ 2n against T(n)/p ≈ n·log(n)/p), so
		// the linear-merge recurrence needs a larger n to clear the
		// 0.6·p bar; for p near log n the model premise itself is at
		// its boundary.
		n := int64(1 << 14)
		if rec.A == 2 {
			n = 1 << 20
		}
		seq := rec.Seq(n)
		for _, p := range []int{2, 4, 8} {
			frontier := master.FrontierDepth(p, rec.A)
			tp := runSteps(t, CostModel{Rec: rec, SpawnDepth: frontier + 1}, n, p)
			speedup := float64(seq) / float64(tp)
			if speedup < 0.60*float64(p) {
				t.Errorf("%s p=%d: speedup %.2f below 0.6·p", name, p, speedup)
			}
			if speedup > float64(p)+0.01 {
				t.Errorf("%s p=%d: superlinear speedup %.2f", name, p, speedup)
			}
		}
	}
}

// TestFigureRecThreads: the figure cost model spawns the full call tree
// (2n-1 threads for size n), matching the paper's mergesort example.
func TestFigureRecThreads(t *testing.T) {
	m := sim.New(sim.Config{P: 4})
	cm := CostModel{Rec: FigureRec(), SpawnDepth: -1}
	res, err := m.Run(cm.Program(16))
	if err != nil {
		t.Fatal(err)
	}
	if res.Threads != 31 {
		t.Errorf("threads = %d, want 31", res.Threads)
	}
}

// TestFrontierShape reproduces Figure 2: with p = a^k processors the
// activation tree spawns pal-threads down to depth exactly k and every
// deeper call runs inside its ancestor thread (experiment E2).
func TestFrontierShape(t *testing.T) {
	for _, p := range []int{2, 4, 8} {
		m := sim.New(sim.Config{P: p, Trace: true})
		cm := CostModel{Rec: Mergesort(), SpawnDepth: -1}
		res, err := m.Run(cm.Program(1 << 8))
		if err != nil {
			t.Fatal(err)
		}
		k := master.FrontierDepth(p, 2)
		// Count distinct activation instants per depth: above the
		// frontier all nodes of a level activate at the same step;
		// below it activations are staggered by sequential execution.
		byDepth := map[int]map[int64]bool{}
		for _, n := range res.Trace.Nodes() {
			d := len(n.Path)
			if byDepth[d] == nil {
				byDepth[d] = map[int64]bool{}
			}
			byDepth[d][n.ActivatedAt] = true
		}
		for d := 0; d <= k; d++ {
			if len(byDepth[d]) != 1 {
				t.Errorf("p=%d depth %d (≤ frontier %d): %d distinct activation steps, want 1",
					p, d, k, len(byDepth[d]))
			}
		}
		if len(byDepth[k+1]) <= 1 {
			t.Errorf("p=%d depth %d (> frontier): activations not staggered", p, k+1)
		}
	}
}
