package dandc

import (
	"testing"
	"testing/quick"

	"lopram/internal/palrt"
	"lopram/internal/workload"
)

// sumRec sums a slice through the generic framework.
func sumRec() Rec[[]int64, int64] {
	return Rec[[]int64, int64]{
		IsBase: func(a []int64) bool { return len(a) <= 64 },
		Solve: func(a []int64) int64 {
			var s int64
			for _, v := range a {
				s += v
			}
			return s
		},
		Divide: func(a []int64) [][]int64 {
			mid := len(a) / 2
			return [][]int64{a[:mid], a[mid:]}
		},
		Combine: func(_ *palrt.RT, _ []int64, parts []int64) int64 {
			return parts[0] + parts[1]
		},
	}
}

func TestFrameworkSum(t *testing.T) {
	r := workload.NewRNG(1)
	rt := palrt.New(8)
	a := workload.Int64s(r, 100000)
	var want int64
	for i := range a {
		a[i] %= 1000
		want += a[i]
	}
	if got := Run(rt, sumRec(), a); got != want {
		t.Fatalf("parallel framework sum = %d, want %d", got, want)
	}
	if got := RunSeq(rt, sumRec(), a); got != want {
		t.Fatalf("sequential framework sum = %d, want %d", got, want)
	}
}

// msRec is the max-subarray recurrence expressed in the framework; it must
// agree with the hand-written version.
func msFrameworkRec() Rec[[]int, msInfo] {
	return Rec[[]int, msInfo]{
		IsBase: func(a []int) bool { return len(a) <= 32 },
		Solve:  msSeq,
		Divide: func(a []int) [][]int {
			mid := len(a) / 2
			return [][]int{a[:mid], a[mid:]}
		},
		Combine: func(_ *palrt.RT, _ []int, parts []msInfo) msInfo {
			return msCombine(parts[0], parts[1])
		},
	}
}

func TestFrameworkMaxSubarray(t *testing.T) {
	r := workload.NewRNG(2)
	rt := palrt.New(8)
	for trial := 0; trial < 10; trial++ {
		n := 1 + r.Intn(5000)
		a := make([]int, n)
		for i := range a {
			a[i] = r.Intn(201) - 100
		}
		got := Run(rt, msFrameworkRec(), a).best
		want := MaxSubarraySeq(a)
		if got != want {
			t.Fatalf("trial %d: framework %d, oracle %d", trial, got, want)
		}
	}
}

// TestFrameworkMergesort sorts through the framework with a three-way split,
// exercising a != 2 and an rt-using Combine.
func TestFrameworkMergesort(t *testing.T) {
	rec := Rec[[]int, []int]{
		IsBase: func(a []int) bool { return len(a) <= 16 },
		Solve: func(a []int) []int {
			out := append([]int(nil), a...)
			insertionSort(out)
			return out
		},
		Divide: func(a []int) [][]int {
			third := len(a) / 3
			return [][]int{a[:third], a[third : 2*third], a[2*third:]}
		},
		Combine: func(rt *palrt.RT, _ []int, parts [][]int) []int {
			// Merge three sorted runs pairwise, the second merge in
			// parallel chunks.
			tmp := make([]int, len(parts[0])+len(parts[1]))
			mergeInto(parts[0], parts[1], tmp)
			out := make([]int, len(tmp)+len(parts[2]))
			parallelMerge(rt, tmp, parts[2], out, 64)
			return out
		},
	}
	r := workload.NewRNG(3)
	rt := palrt.New(8)
	for _, n := range []int{1, 17, 1000, 20000} {
		a := workload.Ints(r, n, 500)
		got := Run(rt, rec, a)
		want := append([]int(nil), a...)
		MergeSortSeq(want)
		if len(got) != len(want) {
			t.Fatalf("n=%d: len %d", n, len(got))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("n=%d: mismatch at %d", n, i)
			}
		}
	}
}

func TestFrameworkParallelEqualsSequential(t *testing.T) {
	rt := palrt.New(6)
	rec := sumRec()
	err := quick.Check(func(raw []int32) bool {
		a := make([]int64, len(raw))
		for i, v := range raw {
			a[i] = int64(v)
		}
		return Run(rt, rec, a) == RunSeq(rt, rec, a)
	}, &quick.Config{MaxCount: 100})
	if err != nil {
		t.Fatal(err)
	}
}

func TestFrameworkBaseOnly(t *testing.T) {
	rt := palrt.New(2)
	rec := sumRec()
	if got := Run(rt, rec, []int64{1, 2, 3}); got != 6 {
		t.Fatalf("base-only run = %d", got)
	}
}
