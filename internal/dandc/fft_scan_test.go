package dandc

import (
	"math"
	"math/cmplx"
	"testing"
	"testing/quick"

	"lopram/internal/palrt"
	"lopram/internal/workload"
)

func complexClose(a, b []complex128, tol float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if cmplx.Abs(a[i]-b[i]) > tol {
			return false
		}
	}
	return true
}

func TestFFTMatchesDFT(t *testing.T) {
	r := workload.NewRNG(1)
	rt := palrt.New(8)
	for _, n := range []int{1, 2, 8, 64, 512} {
		x := make([]complex128, n)
		for i := range x {
			x[i] = complex(r.Float64()*2-1, r.Float64()*2-1)
		}
		want := DFTSlow(x)
		if got := FFTSeq(x); !complexClose(got, want, 1e-8*float64(n)) {
			t.Fatalf("n=%d: sequential FFT diverged", n)
		}
		if got := FFT(rt, x); !complexClose(got, want, 1e-8*float64(n)) {
			t.Fatalf("n=%d: parallel FFT diverged", n)
		}
	}
}

func TestFFTParallelPathExercised(t *testing.T) {
	// Sizes above the grain force Do blocks; compare against sequential.
	r := workload.NewRNG(2)
	rt := palrt.New(8)
	n := 1 << 12
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(r.Float64(), 0)
	}
	if !complexClose(FFT(rt, x), FFTSeq(x), 1e-7) {
		t.Fatal("parallel path diverged")
	}
}

func TestIFFTInverts(t *testing.T) {
	r := workload.NewRNG(3)
	rt := palrt.New(4)
	for _, n := range []int{4, 256, 2048} {
		x := make([]complex128, n)
		for i := range x {
			x[i] = complex(r.Float64()*10-5, r.Float64()*10-5)
		}
		back := IFFT(rt, FFT(rt, x))
		if !complexClose(back, x, 1e-8*float64(n)) {
			t.Fatalf("n=%d: IFFT∘FFT != id", n)
		}
	}
}

func TestFFTPanicsOnNonPow2(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on n=12")
		}
	}()
	FFTSeq(make([]complex128, 12))
}

func TestConvolveMatchesSchoolbook(t *testing.T) {
	r := workload.NewRNG(4)
	rt := palrt.New(8)
	for _, pair := range [][2]int{{1, 1}, {7, 3}, {100, 60}, {1000, 1000}} {
		a := make([]int64, pair[0])
		b := make([]int64, pair[1])
		for i := range a {
			a[i] = int64(r.Intn(201) - 100)
		}
		for i := range b {
			b[i] = int64(r.Intn(201) - 100)
		}
		want := PolyMulSeq(a, b)
		got := Convolve(rt, a, b)
		if len(got) != len(want) {
			t.Fatalf("sizes %v: len %d want %d", pair, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("sizes %v: coef %d = %d, want %d", pair, i, got[i], want[i])
			}
		}
	}
	if Convolve(rt, nil, []int64{1}) != nil {
		t.Fatal("empty operand")
	}
}

func TestPrefixSumsMatchesSeq(t *testing.T) {
	r := workload.NewRNG(5)
	rt := palrt.New(8)
	for _, n := range []int{0, 1, 2, 3, 100, 4096, 100000} {
		a := make([]int64, n)
		for i := range a {
			a[i] = int64(r.Intn(2001) - 1000)
		}
		want := PrefixSumsSeq(a)
		got := prefixGrain(rt, a, 16) // tiny grain exercises deep recursion
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("n=%d: prefix[%d] = %d, want %d", n, i, got[i], want[i])
			}
		}
	}
}

func TestPrefixSumsProperty(t *testing.T) {
	rt := palrt.New(4)
	err := quick.Check(func(raw []int32) bool {
		a := make([]int64, len(raw))
		for i, v := range raw {
			a[i] = int64(v)
		}
		got := prefixGrain(rt, a, 8)
		want := PrefixSumsSeq(a)
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Fatal(err)
	}
}

func TestReduceSum(t *testing.T) {
	r := workload.NewRNG(6)
	rt := palrt.New(8)
	a := make([]int64, 100000)
	var want int64
	for i := range a {
		a[i] = int64(r.Intn(1000))
		want += a[i]
	}
	if got := ReduceSum(rt, a); got != want {
		t.Fatalf("sum = %d, want %d", got, want)
	}
	if ReduceSum(rt, nil) != 0 {
		t.Fatal("empty sum")
	}
}

func TestReduceGrainPath(t *testing.T) {
	rt := palrt.New(4)
	a := []int64{1, 2, 3, 4, 5}
	if got := reduceRec(rt, a, 1); got != 15 {
		t.Fatalf("sum = %d", got)
	}
}

func TestFFTKnownTransform(t *testing.T) {
	// FFT of [1, 1, 1, 1] = [4, 0, 0, 0].
	x := []complex128{1, 1, 1, 1}
	got := FFTSeq(x)
	want := []complex128{4, 0, 0, 0}
	if !complexClose(got, want, 1e-12) {
		t.Fatalf("got %v", got)
	}
	// FFT of the delta is all ones.
	got = FFTSeq([]complex128{1, 0, 0, 0})
	for _, v := range got {
		if cmplx.Abs(v-1) > 1e-12 {
			t.Fatalf("delta transform %v", got)
		}
	}
	// Parseval: Σ|x|² = (1/n)Σ|X|².
	r := workload.NewRNG(7)
	xr := make([]complex128, 64)
	var ex float64
	for i := range xr {
		xr[i] = complex(r.Float64(), 0)
		ex += real(xr[i]) * real(xr[i])
	}
	X := FFTSeq(xr)
	var eX float64
	for _, v := range X {
		eX += real(v)*real(v) + imag(v)*imag(v)
	}
	if math.Abs(ex-eX/64) > 1e-9 {
		t.Fatalf("Parseval violated: %v vs %v", ex, eX/64)
	}
}
