// Package dandc implements the divide-and-conquer side of the paper (§4.1):
// abstract cost-model programs for the simulator that realize any Master
// recurrence T(n) = a·T(n/b) + f(n) as a pal-thread computation (used by the
// Theorem 1 experiments), and real parallel algorithms on the goroutine
// runtime (mergesort, quicksort, Karatsuba, Strassen, closest pair, maximum
// subarray) whose recursive structure is the straightforward parallelization
// the paper advocates.
package dandc

import (
	"lopram/internal/master"
	"lopram/internal/sim"
)

// MergeMode selects how a cost-model node accounts its merge phase.
type MergeMode int

const (
	// SeqMerge charges the merge as one sequential Work segment on the
	// node's processor: the Theorem 1 setting.
	SeqMerge MergeMode = iota
	// ParMerge splits the merge into chunks executed as a nested
	// palthreads block, modelling a merge that parallelizes with optimal
	// speedup: the Equation (5) setting.
	ParMerge
)

// CostModel turns an integer recurrence into a simulator program. The
// program is the "straightforward parallelization" of §4.1: each recursive
// call becomes a pal-thread; nothing in the program inspects the number of
// processors to decide whether to spawn.
type CostModel struct {
	Rec master.IntRec
	// Mode selects sequential or parallel merging.
	Mode MergeMode
	// SpawnDepth truncates thread creation below the given recursion
	// depth, accounting the remaining subtree as one sequential Work
	// segment (its exact Seq time). A negative value spawns every call,
	// as the paper's mergesort example does. Truncation at or below the
	// spawn frontier of Figure 2 does not change the schedule — the
	// truncated subtrees would have run sequentially on one processor
	// anyway — and keeps the simulation affordable for large n;
	// TestTruncationInvariance verifies the equivalence.
	SpawnDepth int
	// MergeChunks is the number of chunks a ParMerge node at depth d
	// splits into: max(1, MergeChunks/a^d), i.e. the processor share of
	// the node's subtree when MergeChunks = p. Ignored for SeqMerge.
	MergeChunks int
}

// Program returns the simulator program computing the recurrence at size n.
func (c CostModel) Program(n int64) sim.Func {
	seqMemo := make(map[int64]int64)
	return c.node(n, 0, 1, seqMemo)
}

func (c CostModel) node(n int64, depth int, aPowDepth int64, seqMemo map[int64]int64) sim.Func {
	return func(tc *sim.TC) {
		r := c.Rec
		if n <= r.Cutoff {
			tc.Work(r.Base(n))
			return
		}
		if c.SpawnDepth >= 0 && depth >= c.SpawnDepth {
			tc.Work(seqTimeMemo(r, n, seqMemo))
			return
		}
		tc.Work(r.Divide(n))
		kids := make([]sim.Func, r.A)
		nextPow := aPowDepth * int64(r.A)
		for i := range kids {
			kids[i] = c.node(r.Child(n), depth+1, nextPow, seqMemo)
		}
		tc.Do(kids...)

		m := r.Merge(n)
		if m <= 0 {
			return
		}
		chunks := int64(1)
		if c.Mode == ParMerge {
			chunks = int64(c.MergeChunks) / aPowDepth
		}
		if chunks <= 1 {
			tc.Work(m)
			return
		}
		per := (m + chunks - 1) / chunks
		var jobs []sim.Func
		for rem := m; rem > 0; rem -= per {
			w := per
			if rem < per {
				w = rem
			}
			unit := w
			jobs = append(jobs, func(tc *sim.TC) { tc.Work(unit) })
		}
		tc.Do(jobs...)
	}
}

// seqTimeMemo is IntRec.Seq sharing one memo map across the whole program
// build, since truncated subtrees revisit the same sizes.
func seqTimeMemo(r master.IntRec, n int64, memo map[int64]int64) int64 {
	if n <= r.Cutoff {
		return r.Base(n)
	}
	if v, ok := memo[n]; ok {
		return v
	}
	v := r.Divide(n) + int64(r.A)*seqTimeMemo(r, r.Child(n), memo) + r.Merge(n)
	memo[n] = v
	return v
}

// Unit is the n-independent unit cost function used by several recurrences.
func Unit(int64) int64 { return 1 }

// Zero is the zero cost function.
func Zero(int64) int64 { return 0 }

// Linear returns f(n) = n.
func Linear(n int64) int64 { return n }

// Quadratic returns f(n) = n².
func Quadratic(n int64) int64 { return n * n }

// Mergesort is the canonical Case 2 recurrence T(n) = 2T(n/2) + n with unit
// divide and base costs (the merge dominates).
func Mergesort() master.IntRec {
	return master.IntRec{
		A: 2, B: 2, Cutoff: 1,
		Divide: Unit, Merge: Linear, Base: Unit,
	}
}

// Case1Rec is T(n) = 4T(n/2) + n: leaves dominate (critical exponent 2 > 1),
// the shape of a classical matrix-multiplication recurrence.
func Case1Rec() master.IntRec {
	return master.IntRec{
		A: 4, B: 2, Cutoff: 1,
		Divide: Unit, Merge: Linear, Base: Unit,
	}
}

// Case3Rec is T(n) = 2T(n/2) + n²: the root's merge dominates (critical
// exponent 1 < 2) and the regularity condition holds (a/b² = 1/2 < 1).
func Case3Rec() master.IntRec {
	return master.IntRec{
		A: 2, B: 2, Cutoff: 1,
		Divide: Unit, Merge: Quadratic, Base: Unit,
	}
}

// FigureRec is the cost model under which the simulator reproduces Figure 1:
// unit divide/base cost, free merge.
func FigureRec() master.IntRec {
	return master.IntRec{
		A: 2, B: 2, Cutoff: 1,
		Divide: Unit, Merge: Zero, Base: Unit,
	}
}
