package dandc

import "lopram/internal/palrt"

// QuickSortSeq sorts a in place with median-of-three quicksort, falling back
// to insertion sort on small segments.
func QuickSortSeq(a []int) {
	qsortSeq(a)
}

func qsortSeq(a []int) {
	for len(a) > 32 {
		p := partition(a)
		// Recurse on the smaller side to bound stack depth.
		if p < len(a)-p-1 {
			qsortSeq(a[:p])
			a = a[p+1:]
		} else {
			qsortSeq(a[p+1:])
			a = a[:p]
		}
	}
	insertionSort(a)
}

// QuickSort sorts a in place, running the two recursive calls of each
// partition as a palthreads block. Unlike mergesort the subproblem sizes are
// data-dependent, which exercises the scheduler's dynamic processor handoff
// (an unbalanced split leaves one child's processor free early for the
// pending threads of the other).
func QuickSort(rt *palrt.RT, a []int) {
	quickSortGrain(rt, a, sortThreshold)
}

func quickSortGrain(rt *palrt.RT, a []int, grain int) {
	if grain < 2 {
		grain = 2
	}
	qsortPar(rt, a, grain)
}

func qsortPar(rt *palrt.RT, a []int, grain int) {
	if len(a) <= grain {
		qsortSeq(a)
		return
	}
	p := partition(a)
	left, right := a[:p], a[p+1:]
	rt.Do(
		func() { qsortPar(rt, left, grain) },
		func() { qsortPar(rt, right, grain) },
	)
}

// partition rearranges a around a median-of-three pivot and returns the
// pivot's final index.
func partition(a []int) int {
	n := len(a)
	m := n / 2
	// Order a[0], a[m], a[n-1]; use the median as pivot, parked at n-1.
	if a[m] < a[0] {
		a[m], a[0] = a[0], a[m]
	}
	if a[n-1] < a[0] {
		a[n-1], a[0] = a[0], a[n-1]
	}
	if a[n-1] < a[m] {
		a[n-1], a[m] = a[m], a[n-1]
	}
	a[m], a[n-2] = a[n-2], a[m]
	pivot := a[n-2]
	i := 0
	for j := 0; j < n-2; j++ {
		if a[j] < pivot {
			a[i], a[j] = a[j], a[i]
			i++
		}
	}
	a[i], a[n-2] = a[n-2], a[i]
	return i
}
