package dandc

import (
	"sync/atomic"

	"lopram/internal/palrt"
)

// Selection (k-th smallest) by quickselect: expected T(n) = T(n/2) + Θ(n).
// With a = 1 there is only one recursive call, so the palthreads construction
// offers no tree parallelism at all — selection is the real-algorithm face
// of Theorem 1's Case 3 wall: all the time is in the partition (the "merge"),
// and only parallelizing the partition itself (Equation 5 style, via rt.For)
// buys any speedup.

// SelectSeq returns the k-th smallest element of a (0-based) without
// modifying a. It panics if k is out of range.
func SelectSeq(a []int, k int) int {
	if k < 0 || k >= len(a) {
		panic("dandc: selection index out of range")
	}
	buf := append([]int(nil), a...)
	return quickselect(buf, k)
}

func quickselect(a []int, k int) int {
	for len(a) > 32 {
		p := partition(a)
		switch {
		case k == p:
			return a[p]
		case k < p:
			a = a[:p]
		default:
			a = a[p+1:]
			k -= p + 1
		}
	}
	insertionSort(a)
	return a[k]
}

// Select returns the k-th smallest element using a parallel three-way
// partition on rt: each level classifies elements against the pivot with a
// parallel counting pass and a parallel scatter pass (both rt.For loops),
// then recurses into the single surviving side. The recursion depth is
// O(log n) in expectation and every level's Θ(n) work parallelizes, so
// T_p(n) = Θ(n/p + log² n) — the Equation 5 escape from Case 3.
func Select(rt *palrt.RT, a []int, k int) int {
	if k < 0 || k >= len(a) {
		panic("dandc: selection index out of range")
	}
	buf := append([]int(nil), a...)
	tmp := make([]int, len(a))
	return pselect(rt, buf, tmp, k)
}

const selectGrain = 1 << 13

func pselect(rt *palrt.RT, a, tmp []int, k int) int {
	for len(a) > selectGrain {
		pivot := medianOfThree(a)

		// Pass 1: per-chunk counts of {less, equal} classifications.
		chunks := 4 * rt.P()
		per := (len(a) + chunks - 1) / chunks
		if per < 1 {
			per = 1
		}
		nChunks := (len(a) + per - 1) / per
		less := make([]int, nChunks)
		equal := make([]int, nChunks)
		rt.For(0, nChunks, 1, func(clo, chi int) {
			for c := clo; c < chi; c++ {
				lo, hi := c*per, (c+1)*per
				if hi > len(a) {
					hi = len(a)
				}
				var l, e int
				for _, v := range a[lo:hi] {
					if v < pivot {
						l++
					} else if v == pivot {
						e++
					}
				}
				less[c], equal[c] = l, e
			}
		})

		// Exclusive prefix offsets for the three regions.
		totalLess, totalEqual := 0, 0
		lessOff := make([]int, nChunks)
		equalOff := make([]int, nChunks)
		greaterOff := make([]int, nChunks)
		for c := 0; c < nChunks; c++ {
			lessOff[c] = totalLess
			totalLess += less[c]
		}
		for c := 0; c < nChunks; c++ {
			equalOff[c] = totalEqual
			totalEqual += equal[c]
		}
		greaterBase := totalLess + totalEqual
		g := 0
		for c := 0; c < nChunks; c++ {
			lo, hi := c*per, (c+1)*per
			if hi > len(a) {
				hi = len(a)
			}
			greaterOff[c] = g
			g += (hi - lo) - less[c] - equal[c]
		}

		// Pass 2: parallel scatter into tmp.
		rt.For(0, nChunks, 1, func(clo, chi int) {
			for c := clo; c < chi; c++ {
				lo, hi := c*per, (c+1)*per
				if hi > len(a) {
					hi = len(a)
				}
				li := lessOff[c]
				ei := totalLess + equalOff[c]
				gi := greaterBase + greaterOff[c]
				for _, v := range a[lo:hi] {
					switch {
					case v < pivot:
						tmp[li] = v
						li++
					case v == pivot:
						tmp[ei] = v
						ei++
					default:
						tmp[gi] = v
						gi++
					}
				}
			}
		})

		switch {
		case k < totalLess:
			a, tmp = tmp[:totalLess], a[:totalLess]
		case k < totalLess+totalEqual:
			return pivot
		default:
			n := len(a)
			a, tmp = tmp[greaterBase:n], a[greaterBase:n]
			k -= greaterBase
		}
	}
	return quickselect(append([]int(nil), a...), k)
}

func medianOfThree(a []int) int {
	n := len(a)
	x, y, z := a[0], a[n/2], a[n-1]
	if x > y {
		x, y = y, x
	}
	if y > z {
		y = z
		if x > y {
			y = x
		}
	}
	return y
}

// Median returns the lower median via parallel selection.
func Median(rt *palrt.RT, a []int) int {
	return Select(rt, a, (len(a)-1)/2)
}

// CountLess counts elements of a strictly below bound in parallel; a small
// data-parallel utility used by tests and examples to cross-check Select.
func CountLess(rt *palrt.RT, a []int, bound int) int {
	var total atomic.Int64
	rt.For(0, len(a), selectGrain, func(lo, hi int) {
		c := 0
		for _, v := range a[lo:hi] {
			if v < bound {
				c++
			}
		}
		total.Add(int64(c))
	})
	return int(total.Load())
}
