package dandc

import "lopram/internal/palrt"

// Parallel prefix sums (scan). Experiment E9 shows that prefix sums written
// as a one-dimensional DP form a chain DAG with no speedup — §4.3's
// degenerate case. This file is the counterpoint the paper's framework
// implies: *reformulated* as a two-pass divide and conquer (up-sweep
// building a tree of segment totals, down-sweep distributing offsets), the
// same function becomes a tree computation with optimal speedup. The
// lesson — the DAG of the chosen decomposition, not the problem, determines
// the parallelism — is measured by E15.

// PrefixSumsSeq fills out[i] = Σ a[..i] (inclusive scan) sequentially.
func PrefixSumsSeq(a []int64) []int64 {
	out := make([]int64, len(a))
	var run int64
	for i, v := range a {
		run += v
		out[i] = run
	}
	return out
}

// scanGrain is the leaf segment size of the parallel scan.
const scanGrain = 1 << 12

// PrefixSums computes the inclusive scan with the two-pass algorithm on rt.
func PrefixSums(rt *palrt.RT, a []int64) []int64 {
	return prefixGrain(rt, a, scanGrain)
}

func prefixGrain(rt *palrt.RT, a []int64, grain int) []int64 {
	out := make([]int64, len(a))
	if len(a) == 0 {
		return out
	}
	if grain < 1 {
		grain = 1
	}
	root := scanUp(rt, a, out, grain)
	scanDown(rt, out, root, 0, grain)
	return out
}

// scanNode records the total of one recursion segment so the down-sweep
// knows each left sibling's contribution without re-reduction.
type scanNode struct {
	total       int64
	left, right *scanNode
}

// scanUp computes leaf-local inclusive scans into out and returns the
// segment-total tree.
func scanUp(rt *palrt.RT, a, out []int64, grain int) *scanNode {
	if len(a) <= grain || rt == nil {
		var run int64
		for i, v := range a {
			run += v
			out[i] = run
		}
		return &scanNode{total: run}
	}
	mid := len(a) / 2
	node := &scanNode{}
	rt.Do(
		func() { node.left = scanUp(rt, a[:mid], out[:mid], grain) },
		func() { node.right = scanUp(rt, a[mid:], out[mid:], grain) },
	)
	node.total = node.left.total + node.right.total
	return node
}

// scanDown adds, to every element, the sum of all elements left of its leaf
// segment.
func scanDown(rt *palrt.RT, out []int64, node *scanNode, offset int64, grain int) {
	if node.left == nil { // leaf
		if offset == 0 {
			return
		}
		for i := range out {
			out[i] += offset
		}
		return
	}
	mid := len(out) / 2
	rt.Do(
		func() { scanDown(rt, out[:mid], node.left, offset, grain) },
		func() { scanDown(rt, out[mid:], node.right, offset+node.left.total, grain) },
	)
}

// ReduceSum computes Σ a in parallel by tree reduction — the up-sweep alone.
func ReduceSum(rt *palrt.RT, a []int64) int64 {
	if len(a) == 0 {
		return 0
	}
	return reduceRec(rt, a, scanGrain)
}

func reduceRec(rt *palrt.RT, a []int64, grain int) int64 {
	if len(a) <= grain || rt == nil {
		var s int64
		for _, v := range a {
			s += v
		}
		return s
	}
	mid := len(a) / 2
	var l, r int64
	rt.Do(
		func() { l = reduceRec(rt, a[:mid], grain) },
		func() { r = reduceRec(rt, a[mid:], grain) },
	)
	return l + r
}
