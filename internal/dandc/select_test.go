package dandc

import (
	"sort"
	"testing"
	"testing/quick"

	"lopram/internal/palrt"
	"lopram/internal/workload"
)

func TestSelectSeqMatchesSort(t *testing.T) {
	r := workload.NewRNG(1)
	for trial := 0; trial < 20; trial++ {
		n := 1 + r.Intn(500)
		a := workload.Ints(r, n, 100)
		sorted := append([]int(nil), a...)
		sort.Ints(sorted)
		k := r.Intn(n)
		if got := SelectSeq(a, k); got != sorted[k] {
			t.Fatalf("trial %d: Select(%d) = %d, want %d", trial, k, got, sorted[k])
		}
	}
}

func TestSelectParallelMatchesSort(t *testing.T) {
	r := workload.NewRNG(2)
	rt := palrt.New(8)
	for _, n := range []int{1, 50, 10000, 1 << 16} {
		a := workload.Ints(r, n, 1000) // heavy duplicates stress 3-way split
		sorted := append([]int(nil), a...)
		sort.Ints(sorted)
		for _, k := range []int{0, n / 3, n / 2, n - 1} {
			if got := Select(rt, a, k); got != sorted[k] {
				t.Fatalf("n=%d k=%d: got %d, want %d", n, k, got, sorted[k])
			}
		}
	}
}

func TestSelectDoesNotMutate(t *testing.T) {
	r := workload.NewRNG(3)
	rt := palrt.New(4)
	a := workload.Ints(r, 1000, 50)
	before := append([]int(nil), a...)
	Select(rt, a, 500)
	SelectSeq(a, 500)
	for i := range a {
		if a[i] != before[i] {
			t.Fatal("input mutated")
		}
	}
}

func TestSelectPanicsOutOfRange(t *testing.T) {
	for _, k := range []int{-1, 3} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("k=%d: no panic", k)
				}
			}()
			SelectSeq([]int{1, 2, 3}, k)
		}()
	}
}

func TestSelectProperty(t *testing.T) {
	rt := palrt.New(4)
	err := quick.Check(func(raw []int16, kRaw uint16) bool {
		if len(raw) == 0 {
			return true
		}
		a := make([]int, len(raw))
		for i, v := range raw {
			a[i] = int(v)
		}
		k := int(kRaw) % len(a)
		got := Select(rt, a, k)
		// Defining property: exactly k' ≤ k elements are < got and at
		// least k+1 elements are ≤ got.
		below, atMost := 0, 0
		for _, v := range a {
			if v < got {
				below++
			}
			if v <= got {
				atMost++
			}
		}
		return below <= k && atMost > k
	}, &quick.Config{MaxCount: 300})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMedian(t *testing.T) {
	rt := palrt.New(4)
	if m := Median(rt, []int{5, 1, 3}); m != 3 {
		t.Fatalf("median = %d, want 3", m)
	}
	if m := Median(rt, []int{4, 2, 6, 8}); m != 4 { // lower median
		t.Fatalf("median = %d, want 4", m)
	}
}

func TestCountLess(t *testing.T) {
	r := workload.NewRNG(4)
	rt := palrt.New(6)
	a := workload.Ints(r, 100000, 1000)
	want := 0
	for _, v := range a {
		if v < 500 {
			want++
		}
	}
	if got := CountLess(rt, a, 500); got != want {
		t.Fatalf("CountLess = %d, want %d", got, want)
	}
}

// TestSelectConsistentWithCount ties the two utilities together on large
// parallel runs.
func TestSelectConsistentWithCount(t *testing.T) {
	r := workload.NewRNG(5)
	rt := palrt.New(8)
	a := workload.Ints(r, 1<<17, 1<<20)
	k := len(a) / 2
	v := Select(rt, a, k)
	if below := CountLess(rt, a, v); below > k {
		t.Fatalf("%d elements below the %d-th order statistic", below, k)
	}
}
