package dandc

import "lopram/internal/palrt"

// Maximum subarray sum: the divide-and-conquer formulation with
// T(n) = 2T(n/2) + Θ(n) (Case 2). It returns the maximum sum over all
// non-empty contiguous subarrays. Kadane's linear scan is the sequential
// oracle; the D&C version exists to exercise a Case 2 recurrence whose merge
// (the crossing computation) is inherently a scan.

// MaxSubarraySeq returns the maximum subarray sum via Kadane's algorithm.
// It panics on an empty slice.
func MaxSubarraySeq(a []int) int {
	if len(a) == 0 {
		panic("dandc: MaxSubarraySeq on empty slice")
	}
	best, cur := a[0], a[0]
	for _, v := range a[1:] {
		if cur < 0 {
			cur = v
		} else {
			cur += v
		}
		if cur > best {
			best = cur
		}
	}
	return best
}

// msInfo carries the four quantities the D&C combine needs.
type msInfo struct {
	total  int // sum of the whole segment
	prefix int // best sum of a prefix
	suffix int // best sum of a suffix
	best   int // best sum of any subarray
}

// MaxSubarray returns the maximum subarray sum computing the two halves as a
// palthreads block. It panics on an empty slice.
func MaxSubarray(rt *palrt.RT, a []int) int {
	if len(a) == 0 {
		panic("dandc: MaxSubarray on empty slice")
	}
	return msRec(rt, a, maxSubGrain).best
}

const maxSubGrain = 1 << 12

func msRec(rt *palrt.RT, a []int, grain int) msInfo {
	if len(a) <= grain || rt == nil {
		return msSeq(a)
	}
	mid := len(a) / 2
	var l, r msInfo
	rt.Do(
		func() { l = msRec(rt, a[:mid], grain) },
		func() { r = msRec(rt, a[mid:], grain) },
	)
	return msCombine(l, r)
}

func msSeq(a []int) msInfo {
	info := msInfo{total: a[0], prefix: a[0], suffix: a[0], best: a[0]}
	for _, v := range a[1:] {
		info = msCombine(info, msInfo{total: v, prefix: v, suffix: v, best: v})
	}
	return info
}

func msCombine(l, r msInfo) msInfo {
	return msInfo{
		total:  l.total + r.total,
		prefix: maxInt(l.prefix, l.total+r.prefix),
		suffix: maxInt(r.suffix, r.total+l.suffix),
		best:   maxInt(maxInt(l.best, r.best), l.suffix+r.prefix),
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
