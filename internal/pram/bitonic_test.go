package pram

import (
	"sort"
	"testing"

	"lopram/internal/workload"
)

func TestBitonicSorts(t *testing.T) {
	r := workload.NewRNG(1)
	for _, n := range []int{2, 4, 16, 256, 1024} {
		in := workload.Int64s(r, n)
		for i := range in {
			in[i] %= 10000
		}
		prog := BitonicSort{Input: in}
		res := Emulate(prog, 8)
		got := prog.Sorted(res)
		want := append([]int64(nil), in...)
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("n=%d: pos %d = %d, want %d", n, i, got[i], want[i])
			}
		}
	}
}

func TestBitonicStructure(t *testing.T) {
	// n = 2^k: log n · (log n + 1)/2 layers of exactly n/2 comparators.
	n := 256
	in := make([]int64, n)
	res := Emulate(BitonicSort{Input: in}, 4)
	wantSteps := 8 * 9 / 2
	if res.Steps != wantSteps {
		t.Fatalf("steps = %d, want %d", res.Steps, wantSteps)
	}
	if res.Work != int64(wantSteps)*int64(n/2) {
		t.Fatalf("work = %d, want %d", res.Work, int64(wantSteps)*int64(n/2))
	}
}

func TestBitonicBrentEnvelope(t *testing.T) {
	r := workload.NewRNG(2)
	in := workload.Int64s(r, 512)
	prog := BitonicSort{Input: in}
	for _, p := range []int{1, 3, 16, 10000} {
		res := Emulate(prog, p)
		if res.TimeP > res.BrentBound(p) || res.TimeP < int64(res.Steps) {
			t.Fatalf("p=%d: TimeP %d outside Brent envelope [span %d, %d]",
				p, res.TimeP, res.Steps, res.BrentBound(p))
		}
	}
}

func TestBitonicSingleElement(t *testing.T) {
	res := Emulate(BitonicSort{Input: []int64{7}}, 2)
	if res.Steps != 0 || res.Mem[0] != 7 {
		t.Fatalf("degenerate sort: %+v", res)
	}
}

func TestBitonicAdversarial(t *testing.T) {
	// Reverse-sorted and all-equal inputs.
	n := 128
	rev := make([]int64, n)
	for i := range rev {
		rev[i] = int64(n - i)
	}
	prog := BitonicSort{Input: rev}
	got := prog.Sorted(Emulate(prog, 4))
	for i := range got {
		if got[i] != int64(i+1) {
			t.Fatalf("reverse input: pos %d = %d", i, got[i])
		}
	}
	eq := make([]int64, n)
	prog2 := BitonicSort{Input: eq}
	got2 := prog2.Sorted(Emulate(prog2, 4))
	for i := range got2 {
		if got2[i] != 0 {
			t.Fatalf("all-equal input corrupted at %d", i)
		}
	}
}
