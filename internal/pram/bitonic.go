package pram

// BitonicSort is Batcher's bitonic sorting network as a PRAM program:
// O(log² n) steps of n/2 compare-exchange operations each, Θ(n log² n)
// total work — a third classic of the Θ(n)-processor style the paper
// contrasts with (work-suboptimal by a log² n factor against sequential
// mergesort's Θ(n log n)… per comparator; against the Θ(n log n) total of a
// comparison sort it loses one log factor). n must be a power of two.
//
// Every step's compare-exchanges touch disjoint element pairs, so the
// program is EREW-legal and the Brent emulation applies unchanged.
type BitonicSort struct {
	Input []int64
}

// Memory returns a copy of the input.
func (b BitonicSort) Memory() []int64 { return b.Input }

// Next returns the step'th layer of the network. Layers are enumerated in
// the standard (k, j) double loop: k = 2, 4, …, n (block size), j = k/2,
// k/4, …, 1 (partner distance).
func (b BitonicSort) Next(step int, mem []int64) []Op {
	n := len(b.Input)
	if n < 2 {
		return nil
	}
	// Decode step → (k, j).
	s := step
	for k := 2; k <= n; k *= 2 {
		for j := k / 2; j > 0; j /= 2 {
			if s > 0 {
				s--
				continue
			}
			k, j := k, j
			var ops []Op
			for i := 0; i < n; i++ {
				partner := i ^ j
				if partner <= i {
					continue // one op per pair
				}
				up := i&k == 0 // ascending block?
				i := i
				ops = append(ops, func(m []int64) {
					if (m[i] > m[partner]) == up {
						m[i], m[partner] = m[partner], m[i]
					}
				})
			}
			return ops
		}
	}
	return nil
}

// Sorted extracts the sorted array from an emulated result.
func (b BitonicSort) Sorted(res Result) []int64 {
	out := make([]int64, len(b.Input))
	copy(out, res.Mem)
	return out
}
