package pram

import (
	"testing"

	"lopram/internal/workload"
)

func TestSumReduction(t *testing.T) {
	r := workload.NewRNG(1)
	for _, n := range []int{1, 2, 8, 64, 1024} {
		in := workload.Int64s(r, n)
		var want int64
		for i := range in {
			in[i] %= 1000
			want += in[i]
		}
		for _, p := range []int{1, 2, 4, 8} {
			res := Emulate(SumReduction{Input: in}, p)
			if res.Mem[0] != want {
				t.Fatalf("n=%d p=%d: sum = %d, want %d", n, p, res.Mem[0], want)
			}
			if res.Work != int64(n-1) && n > 1 {
				t.Fatalf("n=%d: work = %d, want %d (work-optimal reduction)", n, res.Work, n-1)
			}
			if res.TimeP > res.BrentBound(p) {
				t.Fatalf("n=%d p=%d: TimeP %d exceeds Brent bound %d", n, p, res.TimeP, res.BrentBound(p))
			}
		}
	}
}

func TestHillisSteeleScan(t *testing.T) {
	r := workload.NewRNG(2)
	for _, n := range []int{1, 2, 7, 100, 512} {
		in := workload.Int64s(r, n)
		for i := range in {
			in[i] %= 1000
		}
		want := make([]int64, n)
		var run int64
		for i, v := range in {
			run += v
			want[i] = run
		}
		prog := HillisSteele{Input: in}
		res := Emulate(prog, 4)
		got := prog.Scan(res)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("n=%d: scan[%d] = %d, want %d", n, i, got[i], want[i])
			}
		}
	}
}

// TestHillisSteeleWorkSuboptimal pins the Θ(n log n) work of the PRAM scan:
// the quantitative basis of the paper's criticism (E16 builds the table).
func TestHillisSteeleWorkSuboptimal(t *testing.T) {
	n := 1 << 10
	in := make([]int64, n)
	res := Emulate(HillisSteele{Input: in}, 8)
	// 10 steps × (n+1) ops.
	if res.Steps != 10 {
		t.Fatalf("steps = %d, want 10", res.Steps)
	}
	wantWork := int64(10 * (n + 1))
	if res.Work != wantWork {
		t.Fatalf("work = %d, want %d = Θ(n log n)", res.Work, wantWork)
	}
}

func TestListRanking(t *testing.T) {
	// Build a list 3 → 1 → 4 → 0 → 2(tail): ranks are distance to tail.
	next := []int{2, 4, 2, 1, 0}
	// 3→1, 1→4, 4→0, 0→2, 2 tail. Ranks: 3:4, 1:3, 4:2, 0:1, 2:0.
	prog := ListRanking{Succ: next}
	res := Emulate(prog, 2)
	ranks := prog.Ranks(res)
	want := []int64{1, 3, 0, 4, 2}
	for i := range want {
		if ranks[i] != want[i] {
			t.Fatalf("rank[%d] = %d, want %d (all: %v)", i, ranks[i], want[i], ranks)
		}
	}
}

func TestListRankingRandom(t *testing.T) {
	r := workload.NewRNG(3)
	for trial := 0; trial < 10; trial++ {
		n := 2 + r.Intn(60)
		perm := r.Perm(n)
		// perm defines the list order: perm[0] is head … perm[n-1] tail.
		next := make([]int, n)
		for i := 0; i < n-1; i++ {
			next[perm[i]] = perm[i+1]
		}
		next[perm[n-1]] = perm[n-1]
		prog := ListRanking{Succ: next}
		res := Emulate(prog, 4)
		ranks := prog.Ranks(res)
		for pos, node := range perm {
			want := int64(n - 1 - pos)
			if ranks[node] != want {
				t.Fatalf("trial %d: node %d rank = %d, want %d", trial, node, ranks[node], want)
			}
		}
	}
}

// TestBrentLemma: for every program and p, TimeP ≤ W/p + S and
// TimeP ≥ max(W/p, S) — the two-sided Brent envelope.
func TestBrentLemma(t *testing.T) {
	r := workload.NewRNG(4)
	in := workload.Int64s(r, 256)
	for i := range in {
		in[i] %= 100
	}
	progs := []Program{
		SumReduction{Input: in},
		HillisSteele{Input: in},
		ListRanking{Succ: chain(256)},
	}
	for pi, prog := range progs {
		for _, p := range []int{1, 2, 3, 8, 16, 1000} {
			res := Emulate(prog, p)
			if res.TimeP > res.BrentBound(p) {
				t.Fatalf("prog %d p=%d: TimeP %d > Brent %d", pi, p, res.TimeP, res.BrentBound(p))
			}
			if res.TimeP < int64(res.Steps) {
				t.Fatalf("prog %d p=%d: TimeP %d below span %d", pi, p, res.TimeP, res.Steps)
			}
			if res.TimeP < res.Work/int64(p) {
				t.Fatalf("prog %d p=%d: TimeP %d below W/p", pi, p, res.TimeP)
			}
		}
	}
}

func chain(n int) []int {
	next := make([]int, n)
	for i := 0; i < n-1; i++ {
		next[i] = i + 1
	}
	next[n-1] = n - 1
	return next
}

func TestEmulatePanicsOnBadP(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on p=0")
		}
	}()
	Emulate(SumReduction{Input: []int64{1}}, 0)
}

func TestEmulateDoesNotMutateInput(t *testing.T) {
	in := []int64{1, 2, 3, 4}
	Emulate(SumReduction{Input: in}, 2)
	if in[0] != 1 {
		t.Fatal("input mutated")
	}
}
