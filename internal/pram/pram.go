// Package pram implements the classical PRAM baseline the paper positions
// LoPRAM against (§1–§2): algorithms designed for Θ(n) processors, emulated
// on a machine with only p processors via Brent's Lemma [Brent 1974] — "if
// the number of processors available in practice was smaller, the Θ(n)
// processor solution could be emulated using Brent's Lemma".
//
// A PRAM program is a sequence of synchronous parallel steps; each step is a
// batch of independent unit-cost operations on a shared memory. Emulation on
// p processors costs Σᵢ ⌈opsᵢ/p⌉ ≤ W/p + S steps (W total work, S steps) —
// Brent's bound, which Emulate reports and the tests verify.
//
// The catalogue includes the textbook PRAM algorithms whose *work
// sub-optimality* motivates the paper: Hillis–Steele prefix sums and
// pointer-jumping list ranking both do Θ(n log n) work for an Θ(n)-work
// problem, so even a perfect Brent emulation loses a log n factor to the
// work-optimal LoPRAM algorithms (experiment E16).
package pram

import "fmt"

// Op is one unit-cost PRAM operation. Operations within a step must be
// independent: they may read anything written in earlier steps and must
// write disjoint cells (EREW/CREW discipline is the program's duty; the
// batch executor applies all reads before any write via operation-local
// staging where the algorithm requires it).
type Op func(mem []int64)

// Program is a PRAM algorithm: a generator of synchronous steps. Next
// returns the operation batch of the next step, or nil when the program is
// complete.
type Program interface {
	// Memory returns the initial shared memory contents.
	Memory() []int64
	// Next returns the next step's operations, or nil at the end. Steps
	// may depend on memory contents (the executor passes the live
	// memory).
	Next(step int, mem []int64) []Op
}

// Result summarises an emulated execution.
type Result struct {
	// Steps is the PRAM program's step count S (its depth/span).
	Steps int
	// Work is the total operation count W.
	Work int64
	// TimeP is the emulated wall-clock on p processors: Σ ⌈opsᵢ/p⌉.
	TimeP int64
	// Mem is the final memory.
	Mem []int64
}

// BrentBound returns W/p + S, the Brent's Lemma upper bound on TimeP.
func (r Result) BrentBound(p int) int64 {
	return r.Work/int64(p) + int64(r.Steps)
}

// Emulate runs the program on p emulated processors and returns the result.
// Within each step, operations execute in batches of p; operations in the
// same step observe the memory as of the step's start for cells they stage
// through their closure reads — programs in this package are written so that
// every step's reads and writes are disjoint, making batch order irrelevant.
func Emulate(prog Program, p int) Result {
	if p < 1 {
		panic(fmt.Sprintf("pram: invalid processor count %d", p))
	}
	mem := append([]int64(nil), prog.Memory()...)
	var res Result
	for step := 0; ; step++ {
		ops := prog.Next(step, mem)
		if ops == nil {
			break
		}
		res.Steps++
		res.Work += int64(len(ops))
		res.TimeP += int64((len(ops) + p - 1) / p)
		for _, op := range ops {
			op(mem)
		}
	}
	res.Mem = mem
	return res
}

// ---- Catalogue ----

// SumReduction is the classical Θ(n)-processor PRAM tree reduction: log₂ n
// steps, n/2ⁱ operations at step i, total work n−1 (work-optimal). The sum
// ends in cell 0. n must be a power of two.
type SumReduction struct {
	Input []int64
}

// Memory returns a copy of the input.
func (s SumReduction) Memory() []int64 { return s.Input }

// Next returns the step's pairwise additions.
func (s SumReduction) Next(step int, mem []int64) []Op {
	n := len(s.Input)
	stride := 1 << uint(step+1)
	if stride > n {
		return nil
	}
	half := stride / 2
	var ops []Op
	for i := 0; i+half < n; i += stride {
		i := i
		ops = append(ops, func(m []int64) { m[i] += m[i+half] })
	}
	return ops
}

// HillisSteele is the classic PRAM inclusive scan: ⌈log₂ n⌉ steps with
// Θ(n) operations each — Θ(n log n) work, *not* work-optimal. It is the
// canonical example of the PRAM style the paper criticizes: simple,
// shallow, and wasteful of work.
type HillisSteele struct {
	Input []int64
}

// Memory lays out [input | scratch] so each step reads generation g and
// writes generation g+1 without read/write overlap.
func (h HillisSteele) Memory() []int64 {
	mem := make([]int64, 2*len(h.Input)+1)
	copy(mem, h.Input)
	return mem
}

// Next returns the step's shifted additions.
func (h HillisSteele) Next(step int, mem []int64) []Op {
	n := len(h.Input)
	offset := 1 << uint(step)
	if offset >= n {
		return nil
	}
	// generation parity selects which half is "current".
	cur, nxt := 0, n
	if step%2 == 1 {
		cur, nxt = n, 0
	}
	ops := make([]Op, 0, n)
	for i := 0; i < n; i++ {
		i := i
		ops = append(ops, func(m []int64) {
			v := m[cur+i]
			if i >= offset {
				v += m[cur+i-offset]
			}
			m[nxt+i] = v
		})
	}
	// The last cell records which half holds the final generation.
	ops = append(ops, func(m []int64) { m[2*n] = int64(nxt) })
	return ops
}

// Scan extracts the final prefix sums from an emulated HillisSteele result.
func (h HillisSteele) Scan(res Result) []int64 {
	n := len(h.Input)
	base := int(res.Mem[2*n])
	out := make([]int64, n)
	copy(out, res.Mem[base:base+n])
	return out
}

// ListRanking ranks a linked list by pointer jumping: each node learns its
// distance to the list's end in ⌈log₂ n⌉ steps of n operations each —
// Θ(n log n) work for a problem a sequential RAM solves in Θ(n).
// Succ[i] is the successor index, with Succ[i] == i marking the tail.
type ListRanking struct {
	Succ []int
}

// Memory lays out [next | rank | scratchNext | scratchRank].
func (l ListRanking) Memory() []int64 {
	n := len(l.Succ)
	mem := make([]int64, 4*n)
	for i, nx := range l.Succ {
		mem[i] = int64(nx)
		if nx == i {
			mem[n+i] = 0
		} else {
			mem[n+i] = 1
		}
	}
	return mem
}

// Next returns one pointer-jumping half-round: even steps jump (reading the
// live pointers, writing the scratch generation), odd steps publish the
// scratch generation back. Splitting keeps every operation unit-cost and
// every step's reads and writes disjoint.
func (l ListRanking) Next(step int, mem []int64) []Op {
	n := len(l.Succ)
	round := step / 2
	if 1<<uint(round) >= n {
		return nil
	}
	ops := make([]Op, 0, n)
	if step%2 == 0 {
		for i := 0; i < n; i++ {
			i := i
			ops = append(ops, func(m []int64) {
				nx := int(m[i])
				m[2*n+i] = m[nx] // next = next.next
				if nx == i {
					m[3*n+i] = m[n+i]
				} else {
					m[3*n+i] = m[n+i] + m[n+nx] // rank += rank(next)
				}
			})
		}
		return ops
	}
	for i := 0; i < n; i++ {
		i := i
		ops = append(ops, func(m []int64) {
			m[i] = m[2*n+i]
			m[n+i] = m[3*n+i]
		})
	}
	return ops
}

// Ranks extracts node ranks (distance to tail) from an emulated result.
func (l ListRanking) Ranks(res Result) []int64 {
	n := len(l.Succ)
	out := make([]int64, n)
	copy(out, res.Mem[n:2*n])
	return out
}
