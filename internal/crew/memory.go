// Package crew models the LoPRAM memory system of §3 of the paper: a
// Concurrent-Read Exclusive-Write shared memory in which semaphores and
// automatic serialization on shared variables are available transparently,
// and an unserialized concurrent write has undefined behaviour ("including
// suspension of execution").
//
// The package provides three layers:
//
//   - Memory: an audited word-addressed store for the discrete-time
//     simulator. Every access carries a processor id and the simulator's
//     clock epoch; the auditor detects CREW violations (two writes, or a
//     read and a write, to the same cell in the same step) and can be asked
//     to either record them or abort, matching the paper's undefined-
//     behaviour clause.
//   - Serialized: a transparently serialized variable for the goroutine
//     runtime — the "semaphores and automatic serialization" of §3.
//   - CombiningTree / SimulateCRCW*: the standard CRCW-on-CREW simulation
//     with O(log p) slowdown cited in §4.5/§4.6 (Fich–Ragde–Wigderson), used
//     when many processors must update one counter concurrently.
package crew

import (
	"fmt"
	"sync"
)

// Violation records a CREW access conflict: two processors touched the same
// cell in the same step and at least one access was a write.
type Violation struct {
	Epoch      int64
	Addr       int
	ProcA      int // earlier accessor in program order this step
	ProcB      int // conflicting accessor
	WriteWrite bool
}

func (v Violation) String() string {
	kind := "read-write"
	if v.WriteWrite {
		kind = "write-write"
	}
	return fmt.Sprintf("crew: %s conflict at addr %d, epoch %d (procs %d, %d)",
		kind, v.Addr, v.Epoch, v.ProcA, v.ProcB)
}

// Policy selects what Memory does when it observes a CREW violation.
type Policy int

const (
	// Record logs the violation and continues; tests inspect the log.
	Record Policy = iota
	// Abort panics on the first violation — the paper's "suspension of
	// execution" semantics.
	Abort
)

// Memory is a CREW-audited word store for the simulator. It is not itself
// safe for concurrent use by multiple goroutines: the simulator is
// single-threaded and interleaves processor accesses deterministically, so
// auditing is done with plain fields. (The goroutine runtime uses Serialized
// and the race detector instead.)
type Memory struct {
	vals      []int64
	lastRead  []int64 // epoch of the most recent read of each cell, or -1
	readProc  []int32
	lastWrite []int64 // epoch of the most recent write, or -1
	writeProc []int32

	epoch      int64
	policy     Policy
	violations []Violation

	reads, writes int64 // access counters for the experiment tables
}

// NewMemory returns a zeroed memory of size words operating under the given
// violation policy.
func NewMemory(size int, policy Policy) *Memory {
	m := &Memory{
		vals:      make([]int64, size),
		lastRead:  make([]int64, size),
		readProc:  make([]int32, size),
		lastWrite: make([]int64, size),
		writeProc: make([]int32, size),
		policy:    policy,
	}
	for i := range m.lastRead {
		m.lastRead[i] = -1
		m.lastWrite[i] = -1
	}
	return m
}

// Size returns the number of words.
func (m *Memory) Size() int { return len(m.vals) }

// Tick advances the memory to the next time step. The simulator calls this
// once per machine step; accesses in different epochs never conflict.
func (m *Memory) Tick() { m.epoch++ }

// Epoch returns the current step number.
func (m *Memory) Epoch() int64 { return m.epoch }

// Read returns the value at addr, auditing the access for processor proc.
func (m *Memory) Read(proc, addr int) int64 {
	m.reads++
	if m.lastWrite[addr] == m.epoch && int(m.writeProc[addr]) != proc {
		m.violate(Violation{Epoch: m.epoch, Addr: addr,
			ProcA: int(m.writeProc[addr]), ProcB: proc})
	}
	m.lastRead[addr] = m.epoch
	m.readProc[addr] = int32(proc)
	return m.vals[addr]
}

// Write stores v at addr, auditing the access for processor proc.
func (m *Memory) Write(proc, addr int, v int64) {
	m.writes++
	if m.lastWrite[addr] == m.epoch && int(m.writeProc[addr]) != proc {
		m.violate(Violation{Epoch: m.epoch, Addr: addr,
			ProcA: int(m.writeProc[addr]), ProcB: proc, WriteWrite: true})
	}
	if m.lastRead[addr] == m.epoch && int(m.readProc[addr]) != proc {
		m.violate(Violation{Epoch: m.epoch, Addr: addr,
			ProcA: int(m.readProc[addr]), ProcB: proc})
	}
	m.lastWrite[addr] = m.epoch
	m.writeProc[addr] = int32(proc)
	m.vals[addr] = v
}

// Peek returns the value at addr without auditing; for test assertions only.
func (m *Memory) Peek(addr int) int64 { return m.vals[addr] }

// Poke sets the value at addr without auditing; for test setup only.
func (m *Memory) Poke(addr int, v int64) { m.vals[addr] = v }

// Violations returns the violations recorded so far (Record policy).
func (m *Memory) Violations() []Violation { return m.violations }

// Accesses returns the cumulative read and write counts.
func (m *Memory) Accesses() (reads, writes int64) { return m.reads, m.writes }

func (m *Memory) violate(v Violation) {
	if m.policy == Abort {
		panic(v.String())
	}
	m.violations = append(m.violations, v)
}

// Serialized is a transparently serialized shared variable for the goroutine
// runtime: the runtime analogue of the paper's hardware/software serialization
// on shared variables. The zero value holds the zero value of T.
type Serialized[T any] struct {
	mu  sync.Mutex
	val T
}

// Load returns the current value.
func (s *Serialized[T]) Load() T {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.val
}

// Store replaces the value.
func (s *Serialized[T]) Store(v T) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.val = v
}

// Update applies f to the value atomically and returns the new value.
func (s *Serialized[T]) Update(f func(T) T) T {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.val = f(s.val)
	return s.val
}

// Semaphore is a counting semaphore, one of the primitives §3 guarantees.
type Semaphore struct {
	slots chan struct{}
}

// NewSemaphore returns a semaphore with the given number of permits.
func NewSemaphore(permits int) *Semaphore {
	s := &Semaphore{slots: make(chan struct{}, permits)}
	for i := 0; i < permits; i++ {
		s.slots <- struct{}{}
	}
	return s
}

// Acquire takes a permit, blocking until one is available.
func (s *Semaphore) Acquire() { <-s.slots }

// TryAcquire takes a permit if one is immediately available.
func (s *Semaphore) TryAcquire() bool {
	select {
	case <-s.slots:
		return true
	default:
		return false
	}
}

// Release returns a permit.
func (s *Semaphore) Release() { s.slots <- struct{}{} }
