package crew

// This file implements the CRCW-on-CREW simulation used by §4.5 and §4.6 of
// the paper: when k processors must concurrently update a single shared
// value (e.g. the dependency counter of a popular DP cell, or the "in
// progress" marker of a memoized sub-problem), a CREW machine serializes the
// updates through a binary combining tree in O(log p) steps per concurrent
// batch — the "standard techniques for simulating a CRCW with a CREW PRAM"
// the paper cites from Fich, Ragde and Wigderson.

// CombineFunc merges two contributions; it must be associative so that the
// combining tree may apply it in any bracketing.
type CombineFunc func(a, b int64) int64

// Sum is the canonical combine for fetch-and-add style counters.
func Sum(a, b int64) int64 { return a + b }

// Max combines by maximum (priority-CRCW write resolution).
func Max(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// Min combines by minimum.
func Min(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// SimulateCRCW combines the per-processor contributions into a single value
// using a binary combining tree and returns the result together with the
// number of CREW time steps consumed: ceil(log2(k)) rounds for k
// contributions (0 steps for k <= 1). Each round halves the number of live
// values; within a round every cell is written by exactly one processor and
// read by exactly one processor, so the round is CREW-legal in one step.
func SimulateCRCW(contrib []int64, combine CombineFunc) (result int64, steps int) {
	k := len(contrib)
	if k == 0 {
		return 0, 0
	}
	buf := append([]int64(nil), contrib...)
	for len(buf) > 1 {
		half := (len(buf) + 1) / 2
		for i := 0; i < len(buf)/2; i++ {
			buf[i] = combine(buf[2*i], buf[2*i+1])
		}
		if len(buf)%2 == 1 {
			buf[half-1] = buf[len(buf)-1]
		}
		buf = buf[:half]
		steps++
	}
	return buf[0], steps
}

// SimulateBroadcast models the inverse fan-out: one value propagated to k
// processors on a CREW machine. Because CREW allows concurrent reads, a
// broadcast costs a single step for any k >= 1; the function exists so that
// experiment code can account for it explicitly and so the asymmetry with
// CRCW writes is visible in the tables.
func SimulateBroadcast(k int) (steps int) {
	if k <= 0 {
		return 0
	}
	return 1
}

// CombiningTree is an audited combining tree living inside a simulator
// Memory. It occupies 2*width-1 consecutive words starting at base (heap
// layout, root at base). Processors deposit contributions at the leaves and
// a log-depth sweep combines them to the root, ticking the memory clock once
// per level so the CREW auditor sees each level as one time step.
type CombiningTree struct {
	mem     *Memory
	base    int
	width   int // number of leaf slots; power of two
	combine CombineFunc
}

// NewCombiningTree allocates a combining tree with at least the requested
// number of leaves (rounded up to a power of two) inside mem at base.
// It returns the tree and the first free address after it.
func NewCombiningTree(mem *Memory, base, leaves int, combine CombineFunc) (*CombiningTree, int) {
	width := 1
	for width < leaves {
		width *= 2
	}
	t := &CombiningTree{mem: mem, base: base, width: width, combine: combine}
	return t, base + 2*width - 1
}

// Words returns the number of memory words the tree occupies.
func (t *CombiningTree) Words() int { return 2*t.width - 1 }

// leafAddr returns the address of leaf i.
func (t *CombiningTree) leafAddr(i int) int { return t.base + t.width - 1 + i }

// Deposit writes processor proc's contribution into leaf slot i. Distinct
// processors must use distinct slots; that is what makes the concurrent
// deposit CREW-legal in one step.
func (t *CombiningTree) Deposit(proc, i int, v int64) {
	t.mem.Write(proc, t.leafAddr(i), v)
}

// Combine sweeps the tree bottom-up, consuming ceil(log2(width)) memory
// epochs, and returns the combined value now stored at the root. The sweep
// is performed on behalf of the processors proc0..proc0+width/2-1 in the
// first level and narrower sets above, mirroring how a real CREW machine
// would schedule it.
func (t *CombiningTree) Combine(proc0 int) (int64, int) {
	steps := 0
	for level := t.width; level > 1; level /= 2 {
		t.mem.Tick()
		steps++
		// Nodes at this level start at index level-1 (heap order) and
		// there are `level` of them; pairs combine into their parents.
		firstChild := t.base + level - 1
		firstParent := t.base + level/2 - 1
		for i := 0; i < level/2; i++ {
			proc := proc0 + i
			a := t.mem.Read(proc, firstChild+2*i)
			b := t.mem.Read(proc, firstChild+2*i+1)
			t.mem.Write(proc, firstParent+i, t.combine(a, b))
		}
	}
	t.mem.Tick()
	return t.mem.Read(proc0, t.base), steps
}

// Reset zeroes all slots without auditing (test/setup helper).
func (t *CombiningTree) Reset() {
	for i := 0; i < t.Words(); i++ {
		t.mem.Poke(t.base+i, 0)
	}
}
