package crew

import (
	"strings"
	"sync"
	"testing"
	"testing/quick"
)

func TestConcurrentReadsAllowed(t *testing.T) {
	m := NewMemory(4, Record)
	m.Poke(0, 7)
	// Many processors read the same cell in one step: legal under CREW.
	for proc := 0; proc < 8; proc++ {
		if got := m.Read(proc, 0); got != 7 {
			t.Fatalf("read = %d", got)
		}
	}
	if len(m.Violations()) != 0 {
		t.Fatalf("violations = %v", m.Violations())
	}
}

func TestWriteWriteViolation(t *testing.T) {
	m := NewMemory(4, Record)
	m.Write(0, 1, 10)
	m.Write(1, 1, 20) // same cell, same epoch, different processor
	vs := m.Violations()
	if len(vs) != 1 || !vs[0].WriteWrite {
		t.Fatalf("violations = %v", vs)
	}
	if vs[0].Addr != 1 {
		t.Fatalf("addr = %d", vs[0].Addr)
	}
}

func TestReadWriteViolation(t *testing.T) {
	m := NewMemory(4, Record)
	m.Read(0, 2)
	m.Write(1, 2, 5) // write racing an earlier read in the same step
	vs := m.Violations()
	if len(vs) != 1 || vs[0].WriteWrite {
		t.Fatalf("violations = %v", vs)
	}
}

func TestWriteThenReadSameStepViolation(t *testing.T) {
	m := NewMemory(4, Record)
	m.Write(0, 3, 1)
	m.Read(1, 3)
	if len(m.Violations()) != 1 {
		t.Fatalf("violations = %v", m.Violations())
	}
}

func TestTickSeparatesEpochs(t *testing.T) {
	m := NewMemory(4, Record)
	m.Write(0, 1, 10)
	m.Tick()
	m.Write(1, 1, 20) // next step: no conflict
	if len(m.Violations()) != 0 {
		t.Fatalf("violations = %v", m.Violations())
	}
	if m.Peek(1) != 20 {
		t.Fatalf("value = %d", m.Peek(1))
	}
}

func TestSameProcessorRewrite(t *testing.T) {
	// A processor may read and rewrite its own cell within a step.
	m := NewMemory(2, Record)
	m.Write(0, 0, 1)
	m.Read(0, 0)
	m.Write(0, 0, 2)
	if len(m.Violations()) != 0 {
		t.Fatalf("violations = %v", m.Violations())
	}
}

func TestAbortPolicyPanics(t *testing.T) {
	// The paper: unserialized concurrent writes have undefined behaviour
	// "including suspension of execution" — the Abort policy.
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("no panic under Abort policy")
		}
		if !strings.Contains(r.(string), "write-write") {
			t.Fatalf("panic = %v", r)
		}
	}()
	m := NewMemory(4, Abort)
	m.Write(0, 1, 10)
	m.Write(1, 1, 20)
}

func TestAccessCounters(t *testing.T) {
	m := NewMemory(4, Record)
	m.Write(0, 0, 1)
	m.Tick()
	m.Read(0, 0)
	m.Read(0, 0)
	r, w := m.Accesses()
	if r != 2 || w != 1 {
		t.Fatalf("accesses = %d reads, %d writes", r, w)
	}
}

func TestSimulateCRCWSum(t *testing.T) {
	contrib := []int64{1, 2, 3, 4, 5}
	got, steps := SimulateCRCW(contrib, Sum)
	if got != 15 {
		t.Fatalf("sum = %d", got)
	}
	if steps != 3 { // ceil(log2 5)
		t.Fatalf("steps = %d, want 3", steps)
	}
}

func TestSimulateCRCWLogSteps(t *testing.T) {
	// steps == ceil(log2 k): the §4.6 slowdown factor.
	for k, want := range map[int]int{1: 0, 2: 1, 3: 2, 4: 2, 5: 3, 8: 3, 9: 4, 16: 4, 17: 5} {
		contrib := make([]int64, k)
		_, steps := SimulateCRCW(contrib, Sum)
		if steps != want {
			t.Errorf("k=%d: steps = %d, want %d", k, steps, want)
		}
	}
}

func TestSimulateCRCWCombiners(t *testing.T) {
	contrib := []int64{5, -3, 9, 2}
	if v, _ := SimulateCRCW(contrib, Max); v != 9 {
		t.Fatalf("max = %d", v)
	}
	if v, _ := SimulateCRCW(contrib, Min); v != -3 {
		t.Fatalf("min = %d", v)
	}
	if v, steps := SimulateCRCW(nil, Sum); v != 0 || steps != 0 {
		t.Fatalf("empty = %d, %d", v, steps)
	}
}

func TestSimulateCRCWSumProperty(t *testing.T) {
	err := quick.Check(func(vals []int64) bool {
		// Bound magnitudes to avoid overflow noise.
		var want int64
		for i := range vals {
			vals[i] %= 1 << 40
			want += vals[i]
		}
		got, _ := SimulateCRCW(vals, Sum)
		return got == want
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestSimulateBroadcast(t *testing.T) {
	if s := SimulateBroadcast(100); s != 1 {
		t.Fatalf("broadcast steps = %d, want 1 (CREW allows concurrent reads)", s)
	}
	if s := SimulateBroadcast(0); s != 0 {
		t.Fatalf("empty broadcast steps = %d", s)
	}
}

func TestCombiningTreeAudited(t *testing.T) {
	m := NewMemory(64, Abort) // Abort: any CREW violation in the sweep panics
	tree, next := NewCombiningTree(m, 0, 8, Sum)
	if next != 15 {
		t.Fatalf("next addr = %d, want 15", next)
	}
	m.Tick()
	for proc := 0; proc < 8; proc++ {
		tree.Deposit(proc, proc, int64(proc+1))
	}
	got, steps := tree.Combine(0)
	if got != 36 {
		t.Fatalf("combined = %d, want 36", got)
	}
	if steps != 3 {
		t.Fatalf("steps = %d, want 3", steps)
	}
}

func TestCombiningTreeRoundsUpWidth(t *testing.T) {
	m := NewMemory(64, Record)
	tree, _ := NewCombiningTree(m, 0, 5, Sum)
	if tree.Words() != 15 { // rounded to 8 leaves
		t.Fatalf("words = %d, want 15", tree.Words())
	}
	m.Tick()
	for proc := 0; proc < 5; proc++ {
		tree.Deposit(proc, proc, 2)
	}
	got, _ := tree.Combine(0)
	if got != 10 {
		t.Fatalf("combined = %d, want 10", got)
	}
	if len(m.Violations()) != 0 {
		t.Fatalf("violations = %v", m.Violations())
	}
}

func TestSerialized(t *testing.T) {
	var s Serialized[int]
	var wg sync.WaitGroup
	for i := 0; i < 100; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.Update(func(v int) int { return v + 1 })
		}()
	}
	wg.Wait()
	if got := s.Load(); got != 100 {
		t.Fatalf("value = %d, want 100", got)
	}
	s.Store(7)
	if got := s.Load(); got != 7 {
		t.Fatalf("value = %d, want 7", got)
	}
}

func TestSemaphore(t *testing.T) {
	s := NewSemaphore(2)
	s.Acquire()
	if !s.TryAcquire() {
		t.Fatal("second permit unavailable")
	}
	if s.TryAcquire() {
		t.Fatal("third permit granted")
	}
	s.Release()
	if !s.TryAcquire() {
		t.Fatal("released permit unavailable")
	}
}

func TestSemaphoreBlocksAndWakes(t *testing.T) {
	s := NewSemaphore(1)
	s.Acquire()
	done := make(chan struct{})
	go func() {
		s.Acquire()
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("Acquire did not block")
	default:
	}
	s.Release()
	<-done
}
