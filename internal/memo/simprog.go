package memo

import (
	"lopram/internal/dp"
	"lopram/internal/sim"
)

// Simulated memoization: §4.5 executed on the deterministic machine, so the
// strategy's step counts can be compared with bottom-up Algorithm 1. The
// program follows the paper's protocol literally:
//
//   - the first thread to need a sub-problem claims it and creates a
//     pal-thread for it ("a new thread is launched to compute it and this is
//     recorded in the object M as in progress");
//   - a thread probing an in-progress entry "registers a notify condition on
//     solution" — here, an Await on the cell's Future;
//   - the thread continues through its remaining sub-problems before
//     waiting ("continues with all other subproblems yi until all of the
//     subproblems are active or solved").
//
// Because the machine is deterministic, the division into claims, hits and
// probes is reproducible, and SimStats reports it.

// SimStats is the §4.5 accounting of a simulated memoized run.
type SimStats struct {
	// Computes is the number of sub-problems claimed and computed.
	Computes int64
	// Probes counts lookups that found an in-progress entry and awaited.
	Probes int64
	// Hits counts lookups that found a solved entry.
	Hits int64
}

// cell states in the simulated store
const (
	simEmpty int8 = iota
	simInProgress
	simSolved
)

// Program builds a simulator program that evaluates cell root of the spec
// top-down with memoization. vals and stats are filled during the run;
// inspect them after Machine.Run returns. The program is single-use.
//
// Cost model: each cell charges Spec.Cost(v) for its computation, plus one
// unit per dependency lookup (the probe overhead §4.5 discusses is thereby
// visible in the wall clock, not only in the stats).
func Program(s dp.Spec, root int) (prog sim.Func, vals []int64, stats *SimStats) {
	n := s.Cells()
	vals = make([]int64, n)
	stats = &SimStats{}
	state := make([]int8, n)
	futs := make([]*sim.Future, n)
	get := func(x int) int64 { return vals[x] }

	var fetch func(v int) sim.Func
	fetch = func(v int) sim.Func {
		return func(tc *sim.TC) {
			deps := s.Deps(v, nil)
			var kids []sim.Func
			var awaits []*sim.Future
			if len(deps) > 0 {
				// One unit per dependency lookup.
				tc.Work(int64(len(deps)))
				for _, d := range deps {
					switch state[d] {
					case simEmpty:
						state[d] = simInProgress
						futs[d] = tc.NewFuture()
						kids = append(kids, fetch(d))
					case simInProgress:
						stats.Probes++
						awaits = append(awaits, futs[d])
					default:
						stats.Hits++
					}
				}
			}
			tc.Do(kids...)
			for _, f := range awaits {
				tc.Await(f)
			}
			tc.Work(s.Cost(v))
			vals[v] = s.Compute(v, get)
			state[v] = simSolved
			stats.Computes++
			if futs[v] != nil {
				tc.Resolve(futs[v])
			}
		}
	}

	prog = func(tc *sim.TC) {
		state[root] = simInProgress
		futs[root] = tc.NewFuture()
		fetch(root)(tc)
	}
	return prog, vals, stats
}
