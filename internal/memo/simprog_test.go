package memo

import (
	"testing"

	"lopram/internal/dp"
	"lopram/internal/sim"
	"lopram/internal/workload"
)

func runSimMemo(t *testing.T, s dp.Spec, root, p int) ([]int64, *SimStats, int64) {
	t.Helper()
	prog, vals, stats := Program(s, root)
	m := sim.New(sim.Config{P: p})
	res, err := m.Run(prog)
	if err != nil {
		t.Fatal(err)
	}
	return vals, stats, res.Steps
}

func TestSimMemoMatrixChain(t *testing.T) {
	r := workload.NewRNG(1)
	dims := workload.ChainDims(r, 12, 3, 25)
	spec := dp.NewMatrixChain(dims)
	root := spec.Cells() - 1
	want := dp.MatrixChain(dims)
	for _, p := range []int{1, 2, 4, 8} {
		vals, stats, _ := runSimMemo(t, spec, root, p)
		if vals[root] != want {
			t.Fatalf("p=%d: value %d, want %d", p, vals[root], want)
		}
		if stats.Computes != Reachable(spec, root) {
			t.Fatalf("p=%d: computes %d, reachable %d", p, stats.Computes, Reachable(spec, root))
		}
	}
}

func TestSimMemoEditDistance(t *testing.T) {
	r := workload.NewRNG(2)
	a, b := workload.RelatedStrings(r, 24, 4, 6)
	spec := dp.NewEditDistance(a, b)
	root := spec.Cells() - 1
	for _, p := range []int{1, 4} {
		vals, stats, _ := runSimMemo(t, spec, root, p)
		if vals[root] != dp.EditDistance(a, b) {
			t.Fatalf("p=%d: distance %d, want %d", p, vals[root], dp.EditDistance(a, b))
		}
		if stats.Computes != int64(spec.Cells()) {
			t.Fatalf("p=%d: computes %d, want all %d", p, stats.Computes, spec.Cells())
		}
	}
}

// TestSimMemoLazy: a sub-query touches only reachable cells, in time
// proportional to them — laziness with step counts.
func TestSimMemoLazy(t *testing.T) {
	r := workload.NewRNG(3)
	dims := workload.ChainDims(r, 16, 3, 25)
	spec := dp.NewMatrixChain(dims)
	n := len(dims) - 1
	subID := 0
	for l := 0; l < 4; l++ {
		subID += n - l
	}
	_, stats, subSteps := runSimMemo(t, spec, subID, 4)
	if stats.Computes != Reachable(spec, subID) {
		t.Fatalf("computes %d, reachable %d", stats.Computes, Reachable(spec, subID))
	}
	_, _, fullSteps := runSimMemo(t, spec, spec.Cells()-1, 4)
	if subSteps*3 > fullSteps {
		t.Fatalf("sub-query %d steps not ≪ full %d", subSteps, fullSteps)
	}
}

// TestSimMemoDeterministic: the probe/hit division is reproducible.
func TestSimMemoDeterministic(t *testing.T) {
	r := workload.NewRNG(4)
	dims := workload.ChainDims(r, 10, 3, 25)
	spec := dp.NewMatrixChain(dims)
	root := spec.Cells() - 1
	_, s1, t1 := runSimMemo(t, spec, root, 4)
	_, s2, t2 := runSimMemo(t, spec, root, 4)
	if *s1 != *s2 || t1 != t2 {
		t.Fatalf("nondeterministic: %+v/%d vs %+v/%d", s1, t1, s2, t2)
	}
}

// TestSimMemoSpeedup: the memoized evaluation parallelizes (the amount
// depends on the DAG's antichains, per §4.5's closing remark).
func TestSimMemoSpeedup(t *testing.T) {
	r := workload.NewRNG(5)
	a, b := workload.RelatedStrings(r, 48, 4, 8)
	spec := dp.NewEditDistance(a, b)
	root := spec.Cells() - 1
	_, _, t1 := runSimMemo(t, spec, root, 1)
	_, _, t8 := runSimMemo(t, spec, root, 8)
	speedup := float64(t1) / float64(t8)
	if speedup < 2 {
		t.Fatalf("p=8 speedup = %.2f, want ≥ 2", speedup)
	}
	if speedup > 8.01 {
		t.Fatalf("superlinear speedup %.2f", speedup)
	}
}

// TestSimMemoChainFlat: memoizing a chain cannot speed it up either.
func TestSimMemoChainFlat(t *testing.T) {
	spec := dp.NewPrefixSum(make([]int64, 200))
	root := spec.Cells() - 1
	_, _, t1 := runSimMemo(t, spec, root, 1)
	_, _, t8 := runSimMemo(t, spec, root, 8)
	if float64(t1)/float64(t8) > 1.05 {
		t.Fatalf("chain memoization sped up: %d → %d", t1, t8)
	}
}

func TestFutureBasics(t *testing.T) {
	// Resolve-before-await and await-then-resolve both work; double
	// resolve fails the run.
	m := sim.New(sim.Config{P: 2})
	res := m.MustRun(func(tc *sim.TC) {
		f := tc.NewFuture()
		tc.Spawn(func(tc *sim.TC) {
			tc.Work(5)
			tc.Resolve(f)
		})
		tc.Await(f) // waits for the spawned thread
		tc.Work(1)
	})
	if res.Steps != 6 {
		t.Fatalf("steps = %d, want 6 (await released the processor)", res.Steps)
	}

	m2 := sim.New(sim.Config{P: 1})
	_, err := m2.Run(func(tc *sim.TC) {
		f := tc.NewFuture()
		tc.Resolve(f)
		tc.Await(f) // immediate return
		tc.Resolve(f)
	})
	if err == nil {
		t.Fatal("double resolve not rejected")
	}
}

func TestAwaitUnresolvedDeadlocks(t *testing.T) {
	m := sim.New(sim.Config{P: 2})
	_, err := m.Run(func(tc *sim.TC) {
		f := tc.NewFuture()
		tc.Await(f) // nobody will resolve it
	})
	if err != sim.ErrDeadlock {
		t.Fatalf("err = %v, want ErrDeadlock", err)
	}
}
