// Package memo implements the parallel memoization strategy of §4.5 of the
// paper: the DP recursion is executed top-down; the first thread to reach a
// sub-problem claims it by marking it "in progress" and computes it, threads
// that probe an in-progress entry register for notification and wait, and
// solved entries are reused directly. Every sub-problem is therefore
// computed exactly once, and the probe overhead is at most k−1 probes for a
// value shared by k consumers — both properties are asserted by the tests.
//
// Problems are given as dp.Spec values: memoization and the bottom-up
// framework of package dp are the two evaluation strategies for the same
// Equation (6) specification, mirroring the paper's presentation.
package memo

import (
	"sync"
	"sync/atomic"

	"lopram/internal/dp"
	"lopram/internal/palrt"
)

// cell states
const (
	empty int32 = iota
	inProgress
	solved
)

// Stats reports the §4.5 accounting of a memoized run.
type Stats struct {
	// Computes is the number of sub-problems actually computed; it equals
	// the number of sub-problems reachable from the root.
	Computes int64
	// Probes is the number of lookups that found a value in progress and
	// had to wait — the overhead factor §4.5 discusses ("as many as k−1
	// probes for the value").
	Probes int64
	// Hits is the number of lookups that found a solved value.
	Hits int64
}

// Table is the memoization store: tri-state cells with a notification
// channel per in-progress cell.
type Table struct {
	spec  dp.Spec
	state []atomic.Int32
	vals  []int64
	done  []chan struct{}

	computes atomic.Int64
	probes   atomic.Int64
	hits     atomic.Int64

	mu sync.Mutex // guards lazy done-channel creation
}

// NewTable returns an empty memo table for the spec.
func NewTable(s dp.Spec) *Table {
	n := s.Cells()
	return &Table{
		spec:  s,
		state: make([]atomic.Int32, n),
		vals:  make([]int64, n),
		done:  make([]chan struct{}, n),
	}
}

// doneCh returns the notification channel of cell v, creating it if needed.
func (t *Table) doneCh(v int) chan struct{} {
	t.mu.Lock()
	ch := t.done[v]
	if ch == nil {
		ch = make(chan struct{})
		t.done[v] = ch
	}
	t.mu.Unlock()
	return ch
}

// Stats returns the accounting so far.
func (t *Table) Stats() Stats {
	return Stats{
		Computes: t.computes.Load(),
		Probes:   t.probes.Load(),
		Hits:     t.hits.Load(),
	}
}

// Value returns the solved value of cell v; valid only after a Run that
// reached v.
func (t *Table) Value(v int) int64 { return t.vals[v] }

// Run evaluates cell root top-down on the runtime and returns its value.
// Unresolved dependencies of a claimed cell are fetched as a palthreads
// block, so independent sub-problems descend in parallel; dependencies found
// in progress are waited on, per §4.5.
func Run(rt *palrt.RT, s dp.Spec, root int) (int64, Stats) {
	t := NewTable(s)
	v := t.fetch(rt, root)
	return v, t.Stats()
}

// RunOn is Run against an existing table (for incremental queries).
func RunOn(rt *palrt.RT, t *Table, root int) int64 {
	return t.fetch(rt, root)
}

func (t *Table) fetch(rt *palrt.RT, v int) int64 {
	switch t.state[v].Load() {
	case solved:
		t.hits.Add(1)
		return t.vals[v]
	case inProgress:
		// Another thread owns the computation: register on its
		// notification and wait (the paper's "registers a notify
		// condition on solution").
		t.probes.Add(1)
		<-t.doneCh(v)
		return t.vals[v]
	}
	if !t.state[v].CompareAndSwap(empty, inProgress) {
		// Lost the claim race; resolve via the owner.
		return t.fetch(rt, v)
	}

	deps := t.spec.Deps(v, nil)
	if len(deps) > 0 {
		jobs := make([]func(), len(deps))
		for i, d := range deps {
			d := d
			jobs[i] = func() { t.fetch(rt, d) }
		}
		rt.Do(jobs...)
	}

	val := t.spec.Compute(v, func(x int) int64 { return t.vals[x] })
	t.vals[v] = val
	t.computes.Add(1)
	t.state[v].Store(solved)
	close(t.doneCh(v))
	return val
}

// RunSeq is the sequential memoized baseline: same top-down order, one
// processor, no claim protocol.
func RunSeq(s dp.Spec, root int) (int64, Stats) {
	n := s.Cells()
	state := make([]int32, n)
	vals := make([]int64, n)
	var computes int64
	var visit func(v int) int64
	visit = func(v int) int64 {
		if state[v] == solved {
			return vals[v]
		}
		for _, d := range s.Deps(v, nil) {
			visit(d)
		}
		vals[v] = s.Compute(v, func(x int) int64 { return vals[x] })
		state[v] = solved
		computes++
		return vals[v]
	}
	out := visit(root)
	return out, Stats{Computes: computes}
}

// Reachable returns the number of cells reachable from root through Deps —
// the expected Computes count of any memoized run.
func Reachable(s dp.Spec, root int) int64 {
	seen := make([]bool, s.Cells())
	stack := []int{root}
	seen[root] = true
	var count int64
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		count++
		for _, d := range s.Deps(v, nil) {
			if !seen[d] {
				seen[d] = true
				stack = append(stack, d)
			}
		}
	}
	return count
}
