package memo

import (
	"testing"

	"lopram/internal/dp"
	"lopram/internal/palrt"
	"lopram/internal/workload"
)

func TestMemoMatchesBottomUp(t *testing.T) {
	r := workload.NewRNG(1)
	dims := workload.ChainDims(r, 14, 5, 30)
	spec := dp.NewMatrixChain(dims)
	root := spec.Cells() - 1
	want := dp.MatrixChain(dims)
	for _, p := range []int{1, 2, 4, 8} {
		rt := palrt.New(p)
		got, st := Run(rt, spec, root)
		if got != want {
			t.Fatalf("p=%d: got %d, want %d", p, got, want)
		}
		if st.Computes != Reachable(spec, root) {
			t.Fatalf("p=%d: computed %d cells, reachable %d", p, st.Computes, Reachable(spec, root))
		}
	}
}

func TestMemoEditDistance(t *testing.T) {
	r := workload.NewRNG(2)
	a, b := workload.RelatedStrings(r, 60, 4, 12)
	spec := dp.NewEditDistance(a, b)
	root := spec.Cells() - 1
	rt := palrt.New(6)
	got, st := Run(rt, spec, root)
	if want := dp.EditDistance(a, b); got != want {
		t.Fatalf("got %d, want %d", got, want)
	}
	// The whole table is reachable from the corner.
	if st.Computes != int64(spec.Cells()) {
		t.Fatalf("computed %d, want %d", st.Computes, spec.Cells())
	}
}

// TestEachCellComputedOnce: the claim protocol guarantees exactly-once
// computation even under maximal contention. Run many rounds to give races
// a chance.
func TestEachCellComputedOnce(t *testing.T) {
	r := workload.NewRNG(3)
	for trial := 0; trial < 20; trial++ {
		dims := workload.ChainDims(r, 10, 2, 20)
		spec := dp.NewMatrixChain(dims)
		root := spec.Cells() - 1
		rt := palrt.New(8)
		_, st := Run(rt, spec, root)
		if st.Computes != Reachable(spec, root) {
			t.Fatalf("trial %d: %d computes, %d reachable", trial, st.Computes, Reachable(spec, root))
		}
	}
}

// TestProbeBound: §4.5's overhead bound — if k threads need a value, at most
// k−1 probe it while in progress. Summed over all cells, probes cannot
// exceed the number of dependency edges minus the cells computed (each cell
// is demanded at least once without a probe: by its claimant).
func TestProbeBound(t *testing.T) {
	r := workload.NewRNG(4)
	spec := dp.NewMatrixChain(workload.ChainDims(r, 12, 2, 20))
	root := spec.Cells() - 1
	var edges int64
	for v := 0; v < spec.Cells(); v++ {
		edges += int64(len(spec.Deps(v, nil)))
	}
	for _, p := range []int{2, 4, 8} {
		rt := palrt.New(p)
		_, st := Run(rt, spec, root)
		if st.Probes > edges {
			t.Fatalf("p=%d: %d probes exceed %d edges", p, st.Probes, edges)
		}
	}
}

func TestSequentialMemoNoProbes(t *testing.T) {
	r := workload.NewRNG(5)
	spec := dp.NewMatrixChain(workload.ChainDims(r, 10, 2, 20))
	root := spec.Cells() - 1
	got, st := RunSeq(spec, root)
	if wantV := mustSeqValue(t, spec, root); got != wantV {
		t.Fatalf("got %d, want %d", got, wantV)
	}
	if st.Probes != 0 {
		t.Fatalf("sequential run recorded %d probes", st.Probes)
	}
	if st.Computes != Reachable(spec, root) {
		t.Fatalf("computes = %d, want %d", st.Computes, Reachable(spec, root))
	}
}

func mustSeqValue(t *testing.T, s dp.Spec, root int) int64 {
	t.Helper()
	vals, err := dp.RunSeq(s)
	if err != nil {
		t.Fatal(err)
	}
	return vals[root]
}

// TestMemoOnlyComputesReachable: querying a sub-interval leaves unrelated
// cells untouched (memoization's laziness — the advantage §4.2 notes it can
// have over bottom-up evaluation).
func TestMemoOnlyComputesReachable(t *testing.T) {
	r := workload.NewRNG(6)
	dims := workload.ChainDims(r, 16, 2, 20)
	spec := dp.NewMatrixChain(dims)
	rt := palrt.New(4)
	// Query a short prefix interval: cells touching later matrices must
	// remain uncomputed. Packed id of interval (0,3): intervals of length
	// l start at Σ_{k<l}(n-k), so id = (n) + (n-1) + (n-2) + 0.
	n := len(dims) - 1
	id := 0
	for l := 0; l < 3; l++ {
		id += n - l
	}
	got, st := Run(rt, spec, id)
	reach := Reachable(spec, id)
	if st.Computes != reach {
		t.Fatalf("computes = %d, want %d", st.Computes, reach)
	}
	if reach >= int64(spec.Cells()) {
		t.Fatalf("sub-query reached the whole table (%d cells)", reach)
	}
	// And the value matches the full bottom-up table.
	vals, err := dp.RunSeq(spec)
	if err != nil {
		t.Fatal(err)
	}
	if got != vals[id] {
		t.Fatalf("sub-query value %d, want %d", got, vals[id])
	}
}

func TestRunOnIncremental(t *testing.T) {
	r := workload.NewRNG(7)
	spec := dp.NewFib(60)
	tbl := NewTable(spec)
	rt := palrt.New(4)
	if got := RunOn(rt, tbl, 40); got != dp.Fib(40) {
		t.Fatalf("F(40) = %d", got)
	}
	before := tbl.Stats().Computes
	// Extending to 60 must only compute the 20 new cells.
	if got := RunOn(rt, tbl, 60); got != dp.Fib(60) {
		t.Fatalf("F(60) = %d", got)
	}
	after := tbl.Stats().Computes
	if after-before != 20 {
		t.Fatalf("incremental query recomputed %d cells, want 20", after-before)
	}
	_ = r
}

func TestValueAccessor(t *testing.T) {
	spec := dp.NewFib(10)
	rt := palrt.New(2)
	tbl := NewTable(spec)
	RunOn(rt, tbl, 10)
	if tbl.Value(10) != dp.Fib(10) {
		t.Fatalf("Value(10) = %d", tbl.Value(10))
	}
	if tbl.Value(7) != dp.Fib(7) {
		t.Fatalf("Value(7) = %d", tbl.Value(7))
	}
}

func TestHitsCounted(t *testing.T) {
	// Fib: cell i is demanded by i+1 and i+2; after the claimant, later
	// lookups are hits or probes — with p=1 everything is sequential so
	// they must all be hits.
	spec := dp.NewFib(30)
	rt := palrt.New(1)
	_, st := Run(rt, spec, 30)
	if st.Probes != 0 {
		t.Fatalf("p=1 run has %d probes", st.Probes)
	}
	if st.Hits == 0 {
		t.Fatal("no memoization hits recorded")
	}
}
