package sim

import (
	"container/heap"
	"errors"
	"fmt"

	"lopram/internal/crew"
)

// Policy selects the order in which the scheduler activates pending threads
// that have no local claim on a processor (i.e. beyond the parent-to-child
// handoffs of §3.1, which always apply).
type Policy int

const (
	// Preorder activates the pending thread that comes first in the
	// preorder traversal of the activation tree — the paper's default.
	Preorder Policy = iota
	// FIFO activates pending threads in global creation order; the paper
	// notes activation must be "consistent with order of creation", and
	// FIFO is the simplest such order. Used by the ablation study.
	FIFO
	// LIFO activates the most recently created pending thread first
	// (depth-first flavour). Not creation-order consistent; it exists to
	// quantify how much the paper's ordering rule matters.
	LIFO
)

func (p Policy) String() string {
	switch p {
	case Preorder:
		return "preorder"
	case FIFO:
		return "fifo"
	case LIFO:
		return "lifo"
	}
	return fmt.Sprintf("Policy(%d)", int(p))
}

// Config configures a Machine.
type Config struct {
	// P is the number of processors; it must be >= 1. The LoPRAM premise
	// is p = O(log n), but the machine itself accepts any p so that the
	// experiments can probe what happens when the premise is violated.
	P int
	// Policy is the global activation order (default Preorder).
	Policy Policy
	// Trace enables recording of per-thread timestamps and per-processor
	// busy intervals. Figure reproduction and the Gantt renderer need it;
	// large benchmark runs can leave it off.
	Trace bool
}

// Machine is a deterministic LoPRAM simulator. A Machine is single-use
// per Run call but may Run multiple programs sequentially; it is not safe
// for concurrent use.
type Machine struct {
	p      int
	policy Policy
	trace  bool

	now        int64
	threads    []*thread
	pending    *pendingQueue
	events     eventHeap
	running    int
	live       int       // created and not yet done (pal + standard)
	resumables []*thread // waiting parents whose block completed, FIFO
	std        stdPool   // live standard threads (§3.1)

	freeProcs []int // stack of free processor ids

	totalWork int64
	procBusy  []int64 // per-processor busy step counts

	memWords  int
	memPolicy crew.Policy
	mem       *crew.Memory

	traceRec *Trace
}

// New returns a machine with the given configuration.
func New(cfg Config) *Machine {
	if cfg.P < 1 {
		panic("sim: Config.P must be >= 1")
	}
	return &Machine{p: cfg.P, policy: cfg.Policy, trace: cfg.Trace}
}

// P returns the processor count.
func (m *Machine) P() int { return m.p }

// Result summarises a completed run.
type Result struct {
	// Steps is the simulated wall-clock time T_p: the step at which the
	// last thread finished.
	Steps int64
	// Work is the total declared work Σ Work(k) across all threads. For a
	// one-processor run Steps == Work + idle gaps (there are none), so
	// Work equals the sequential time of the same program when its
	// recursion shape is processor-independent.
	Work int64
	// Threads is the number of pal-threads created, including the root.
	Threads int
	// ProcBusy is the per-processor busy step count; Σ ProcBusy == Work.
	ProcBusy []int64
	// Trace is the recorded event trace, nil unless Config.Trace was set.
	Trace *Trace
}

// Utilization returns Work / (Steps * p): the fraction of processor-steps
// spent on declared work.
func (r Result) Utilization(p int) float64 {
	if r.Steps == 0 {
		return 0
	}
	return float64(r.Work) / float64(r.Steps*int64(p))
}

// ErrDeadlock is returned when threads remain but none can make progress.
// A well-formed LoPRAM program cannot deadlock (children always eventually
// receive the parent's processor), so this indicates a program bug.
var ErrDeadlock = errors.New("sim: deadlock — live threads but no runnable work")

// threadPanic wraps a panic raised inside a thread body so Run can convert
// it into an error while letting unrelated scheduler panics propagate.
type threadPanic struct{ val any }

// ErrThreadPanic is wrapped by the error Run returns when a thread body
// panicked (e.g. a CREW Abort-policy violation).
var ErrThreadPanic = errors.New("sim: thread body panicked")

// Run executes the program whose root pal-thread body is main and returns
// the run summary. Time starts at step 1 with the root active, matching the
// numbering of Figure 1 of the paper.
//
// A panic inside any thread body — including the CREW auditor's Abort
// policy — aborts the run and is returned as an error wrapping
// ErrThreadPanic. Threads still live at that point are abandoned (their
// goroutines stay parked), so a machine that returned this error should not
// be reused.
func (m *Machine) Run(main Func) (res Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			if tp, ok := r.(threadPanic); ok {
				err = fmt.Errorf("%w: %v", ErrThreadPanic, tp.val)
				return
			}
			panic(r)
		}
	}()
	m.now = 1
	m.threads = m.threads[:0]
	m.pending = newPendingQueue(m.policy)
	m.events = m.events[:0]
	m.running = 0
	m.live = 0
	m.resumables = m.resumables[:0]
	m.std = stdPool{}
	m.totalWork = 0
	if m.memWords > 0 {
		m.mem = crew.NewMemory(m.memWords, m.memPolicy)
	}
	m.freeProcs = m.freeProcs[:0]
	for i := m.p - 1; i >= 0; i-- {
		m.freeProcs = append(m.freeProcs, i)
	}
	m.procBusy = make([]int64, m.p)
	if m.trace {
		m.traceRec = newTrace(m.p)
	} else {
		m.traceRec = nil
	}

	root := m.newThread(nil, 0, main)
	root.createdAt = m.now
	m.pending.push(root)

	for {
		// Global assignment phase: control-returns to completed-block
		// parents come first (§3.1: "control is returned to the
		// parent"), then free processors go to the earliest pending
		// thread under the configured policy.
		for len(m.freeProcs) > 0 {
			if parent := m.popResumable(); parent != nil {
				proc := m.freeProcs[len(m.freeProcs)-1]
				m.freeProcs = m.freeProcs[:len(m.freeProcs)-1]
				m.resume(parent, proc)
				continue
			}
			th := m.pending.pop()
			if th == nil {
				break
			}
			m.activate(th)
		}

		if m.running == 0 && m.std.busy() == 0 {
			if m.live == 0 {
				break // all threads done
			}
			// Live threads remain but none can run: a pending
			// thread lost in a malformed queue, or threads awaiting
			// a future nobody will resolve.
			return Result{}, ErrDeadlock
		}

		// Standard threads share whatever processors the pal-threads
		// leave free (§3.1 multitasking); with none free they stall
		// until the next pal event.
		if m.std.busy() > 0 {
			if f := len(m.freeProcs); f > 0 {
				m.advanceStd(f)
				m.drainEventsAt(m.now)
				continue
			}
			if len(m.events) == 0 {
				// Every processor is held by pal-threads that
				// will never complete a work segment: the
				// standard threads are starved forever.
				return Result{}, ErrDeadlock
			}
		}

		// Advance the clock to the next completion event and service
		// every thread completing at that instant, in id order (the
		// heap is keyed by (time, id) so pops are deterministic).
		m.now = m.events[0].at
		m.drainEventsAt(m.now)
	}

	res = Result{
		Steps:    m.lastDone(),
		Work:     m.totalWork,
		Threads:  len(m.threads),
		ProcBusy: append([]int64(nil), m.procBusy...),
		Trace:    m.traceRec,
	}
	return res, nil
}

// drainEventsAt services every pal-thread whose work segment completes at
// time t, in id order.
func (m *Machine) drainEventsAt(t int64) {
	for len(m.events) > 0 && m.events[0].at == t {
		ev := heap.Pop(&m.events).(event)
		th := ev.th
		if th.busy != t || th.state != Running {
			continue // stale entry
		}
		m.service(th)
	}
}

// MustRun is Run but panics on error; for tests and benchmarks.
func (m *Machine) MustRun(main Func) Result {
	r, err := m.Run(main)
	if err != nil {
		panic(err)
	}
	return r
}

func (m *Machine) lastDone() int64 {
	var last int64
	for _, th := range m.threads {
		if th.doneAt > last {
			last = th.doneAt
		}
	}
	// doneAt records the instant the thread finished; the elapsed wall
	// clock is that instant minus the start instant (time starts at 1).
	if last == 0 {
		return 0
	}
	return last - 1
}

func (m *Machine) newThread(parent *thread, childIdx int, body Func) *thread {
	th := &thread{
		id:          len(m.threads),
		parent:      parent,
		childIdx:    childIdx,
		seq:         int64(len(m.threads)),
		state:       Pending,
		proc:        -1,
		resume:      make(chan struct{}),
		yield:       make(chan struct{}),
		createdAt:   m.now,
		activatedAt: -1,
		doneAt:      -1,
	}
	if parent != nil {
		th.path = make([]int32, len(parent.path)+1)
		copy(th.path, parent.path)
		th.path[len(parent.path)] = int32(childIdx)
		parent.children = append(parent.children, th)
	}
	m.threads = append(m.threads, th)
	m.live++
	th.start(m, body)
	if m.traceRec != nil {
		m.traceRec.noteCreated(th, m.now)
	}
	return th
}

// activate assigns a free processor to the pending thread th and services it
// until it blocks, finishes, or becomes busy with work.
func (m *Machine) activate(th *thread) {
	proc := m.freeProcs[len(m.freeProcs)-1]
	m.freeProcs = m.freeProcs[:len(m.freeProcs)-1]
	m.activateOn(th, proc)
}

func (m *Machine) activateOn(th *thread, proc int) {
	th.state = Running
	th.proc = proc
	th.activatedAt = m.now
	m.running++
	m.pending.remove(th)
	if m.traceRec != nil {
		m.traceRec.noteActivated(th, m.now)
	}
	m.service(th)
}

// service resumes th's body and processes its requests until the thread
// becomes busy (Work), suspends (Do), or finishes. It must be called with
// th Running and holding a processor.
func (m *Machine) service(th *thread) {
	for {
		th.resume <- struct{}{}
		<-th.yield
		req := th.req
		switch req.kind {
		case reqWork:
			th.busy = m.now + req.units
			m.totalWork += req.units
			m.procBusy[th.proc] += req.units
			if m.traceRec != nil {
				m.traceRec.noteBusy(th, m.now, req.units)
			}
			heap.Push(&m.events, event{at: th.busy, id: th.id, th: th})
			return

		case reqSpawn:
			for _, body := range req.children {
				child := m.newThread(th, len(th.children), body)
				m.pending.push(child)
			}
			// Parent keeps its processor and continues.

		case reqLaunch:
			for _, body := range req.children {
				m.launchStd(th, body)
			}
			// Standard children start multitasking immediately;
			// the parent keeps its processor and continues.

		case reqDo:
			first := len(th.children)
			for _, body := range req.children {
				child := m.newThread(th, len(th.children), body)
				m.pending.push(child)
			}
			th.blockOpen = true
			th.blockRemaining = len(req.children)
			th.pendingHead = first
			th.state = Waiting
			m.running--
			proc := th.proc
			th.proc = -1
			// §3.1: "the processor is assigned sequentially to the
			// children, in order of creation" — hand this processor
			// straight to the first pending child of the block.
			m.routeProc(proc, th)
			return

		case reqPanic:
			panic(threadPanic{val: req.panicVal})

		case reqResolve:
			m.handleResolve(req.fut)
			// The thread keeps its processor and continues.

		case reqAwait:
			f := req.fut
			if f.resolved {
				continue // resolved between the check and the yield
			}
			f.waiters = append(f.waiters, th)
			th.state = Waiting
			m.running--
			proc := th.proc
			th.proc = -1
			m.routeProc(proc, th)
			return

		case reqDone:
			th.state = Done
			th.doneAt = m.now
			m.running--
			m.live--
			proc := th.proc
			th.proc = -1
			if m.traceRec != nil {
				m.traceRec.noteDone(th, m.now)
			}
			parent := th.parent
			if parent != nil && parent.blockOpen {
				parent.blockRemaining--
			}
			m.routeProc(proc, th)
			// If the completed block's parent was not resumed
			// directly (the processor went to a pending thread),
			// queue the control-return so the next freed processor
			// picks it up.
			if parent != nil && parent.state == Waiting && parent.blockOpen &&
				parent.blockRemaining == 0 && !parent.resumable {
				parent.resumable = true
				m.resumables = append(m.resumables, parent)
			}
			return
		}
	}
}

// routeProc disposes of a processor freed by thread th (which just waited or
// finished), applying the local handoff rules of §3.1 before falling back to
// the global queue:
//
//  1. th's own earliest pending child (waiting parents hand their processor
//     to their first child; finished threads hand it to a pending child they
//     spawned with nowait);
//  2. the next pending child of th's parent, in creation order (sibling
//     handoff: "the processor is assigned sequentially to the children");
//  3. if the parent's block is fully complete, the parent itself ("control
//     is returned to the parent");
//  4. otherwise the processor returns to the free pool and the main loop's
//     global assignment phase applies the configured policy.
func (m *Machine) routeProc(proc int, th *thread) {
	if child := nextPendingChild(th); child != nil {
		m.activateOn(child, proc)
		return
	}
	if parent := th.parent; parent != nil {
		if child := nextPendingChild(parent); child != nil {
			m.activateOn(child, proc)
			return
		}
		if parent.state == Waiting && parent.blockOpen && parent.blockRemaining == 0 {
			m.resume(parent, proc)
			return
		}
	}
	if waiting := m.popResumable(); waiting != nil {
		m.resume(waiting, proc)
		return
	}
	m.freeProcs = append(m.freeProcs, proc)
}

// resume restarts a Waiting thread whose block has fully completed, giving
// it the processor (§3.1's "control is returned to the parent").
func (m *Machine) resume(parent *thread, proc int) {
	parent.blockOpen = false
	parent.resumable = false
	parent.state = Running
	parent.proc = proc
	m.running++
	if m.traceRec != nil {
		m.traceRec.noteResumed(parent, m.now)
	}
	m.service(parent)
}

// popResumable returns the next queued control-return whose parent is still
// waiting, discarding stale entries (threads already resumed directly).
func (m *Machine) popResumable() *thread {
	for len(m.resumables) > 0 {
		th := m.resumables[0]
		m.resumables = m.resumables[1:]
		if th.resumable && th.state == Waiting {
			return th
		}
	}
	return nil
}

// nextPendingChild returns th's earliest still-pending child, advancing the
// pendingHead cursor past non-pending entries, or nil.
func nextPendingChild(th *thread) *thread {
	for th.pendingHead < len(th.children) {
		c := th.children[th.pendingHead]
		if c.state == Pending {
			return c
		}
		th.pendingHead++
	}
	return nil
}

// event is a completion event: thread th finishes its Work segment at `at`.
type event struct {
	at int64
	id int
	th *thread
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].id < h[j].id
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }

var _ heap.Interface = (*eventHeap)(nil)
